// Pipeline: a three-stage coupled chain source -> filter -> sink, showing a
// program that both imports and exports. The source produces a noisy field;
// the filter imports it, applies a local smoothing stencil, and exports the
// result on its own (coarser) time scale; the sink imports the smoothed
// field. Each stage is a parallel program with its own decomposition, wired
// only by the configuration file.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
)

const coupling = `
source local builtin 2
filter local builtin 2
sink   local builtin 1
#
source.raw    filter.raw    REGL 1.0
filter.smooth sink.smooth   REGL 2.0
`

func main() {
	var (
		n     = flag.Int("n", 32, "grid size")
		ticks = flag.Int("ticks", 60, "source export count")
	)
	flag.Parse()

	cfg, err := config.ParseString(coupling)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(cfg, core.Options{BuddyHelp: true, Timeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	source, filter, sink := fw.MustProgram("source"), fw.MustProgram("filter"), fw.MustProgram("sink")
	srcLayout, _ := decomp.NewRowBlock(*n, *n, 2)
	fltLayout, _ := decomp.NewColBlock(*n, *n, 2) // redistribution between stages
	snkLayout, _ := decomp.NewRowBlock(*n, *n, 1)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(source.DefineRegion("raw", srcLayout))
	must(filter.DefineRegion("raw", fltLayout))
	must(filter.DefineRegion("smooth", fltLayout))
	must(sink.DefineRegion("smooth", snkLayout))
	must(fw.Start())

	var wg sync.WaitGroup

	// Source: a drifting interference pattern, exported every tick.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := source.Process(rank)
			block, _ := p.Block("raw")
			data := make([]float64, block.Area())
			for k := 1; k <= *ticks; k++ {
				t := float64(k)
				i := 0
				for r := block.R0; r < block.R1; r++ {
					for c := block.C0; c < block.C1; c++ {
						data[i] = math.Sin(float64(r)/3+t/5) * math.Cos(float64(c)/4-t/7)
						i++
					}
				}
				must(p.Export("raw", t, data))
			}
		}(rank)
	}

	// Filter: import raw every 2 ticks, smooth, export on a half-rate clock.
	filterOuts := *ticks / 2
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := filter.Process(rank)
			block, _ := p.Block("raw")
			raw := make([]float64, block.Area())
			smooth := make([]float64, block.Area())
			for j := 1; j <= filterOuts; j++ {
				res, err := p.Import("raw", float64(2*j), raw)
				must(err)
				if !res.Matched {
					log.Fatalf("filter: no raw field @%d", 2*j)
				}
				smoothInto(block, raw, smooth)
				must(p.Export("smooth", float64(2*j), smooth))
			}
		}(rank)
	}

	// Sink: import the smoothed field every 4 source ticks and report its
	// range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := sink.Process(0)
		dst := make([]float64, *n**n)
		for j := 1; j <= *ticks/4; j++ {
			reqTS := float64(4 * j)
			res, err := p.Import("smooth", reqTS, dst)
			must(err)
			if !res.Matched {
				log.Fatalf("sink: no smooth field @%g", reqTS)
			}
			lo, hi := dst[0], dst[0]
			for _, v := range dst {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			fmt.Printf("sink: smooth@%g in [%.4f, %.4f]\n", res.MatchTS, lo, hi)
		}
	}()

	wg.Wait()
	must(fw.Err())
	fmt.Println("pipeline done")
}

// smoothInto applies a 3x3 box filter within the local block (block-local
// boundary handling keeps the example short; a production filter would halo
// exchange first).
func smoothInto(block decomp.Rect, src, dst []float64) {
	w := block.Cols()
	hgt := block.Rows()
	at := func(r, c int) float64 {
		if r < 0 {
			r = 0
		}
		if r >= hgt {
			r = hgt - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= w {
			c = w - 1
		}
		return src[r*w+c]
	}
	for r := 0; r < hgt; r++ {
		for c := 0; c < w; c++ {
			sum := 0.0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					sum += at(r+dr, c+dc)
				}
			}
			dst[r*w+c] = sum / 9
		}
	}
}
