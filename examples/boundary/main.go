// Boundary: two physical models coupled only across a shared interface
// strip — the "shared boundaries ... between physical models" of the paper's
// introduction. An "atmosphere" model exports its full field every step, but
// the connection's rect window restricts the transfer to the four interface
// rows the "ocean" model needs as surface forcing. The ocean imports the
// strip on its own coarser schedule, pastes it into its forcing and
// integrates diffusion below the interface.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/sim"
)

func main() {
	var (
		n      = flag.Int("n", 32, "grid size")
		strip  = flag.Int("strip", 4, "interface rows coupled")
		epochs = flag.Int("epochs", 5, "coupling epochs")
		ratio  = flag.Int("ratio", 10, "atmosphere steps per ocean epoch")
	)
	flag.Parse()

	coupling := fmt.Sprintf(`
atm   local builtin 2
ocean local builtin 2
#
atm.sfc ocean.sfc REGL 2.5 rect=0:0:%d:%d
`, *strip, *n)
	cfg, err := config.ParseString(coupling)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(cfg, core.Options{BuddyHelp: true, Timeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	atm, ocean := fw.MustProgram("atm"), fw.MustProgram("ocean")
	la, _ := decomp.NewColBlock(*n, *n, 2)
	lo, _ := decomp.NewRowBlock(*n, *n, 2)
	if err := atm.DefineRegion("sfc", la); err != nil {
		log.Fatal(err)
	}
	if err := ocean.DefineRegion("sfc", lo); err != nil {
		log.Fatal(err)
	}
	if err := fw.Start(); err != nil {
		log.Fatal(err)
	}

	exports := (*epochs + 1) * *ratio
	var wg sync.WaitGroup

	// Atmosphere: a drifting wave field exported every fine step.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := atm.Process(rank)
			block, _ := p.Block("sfc")
			data := make([]float64, block.Area())
			for k := 1; k <= exports; k++ {
				t := float64(k)
				i := 0
				for r := block.R0; r < block.R1; r++ {
					for c := block.C0; c < block.C1; c++ {
						data[i] = math.Sin(t/9+float64(c)/5) * math.Exp(-float64(r)/8)
						i++
					}
				}
				if err := p.Export("sfc", t, data); err != nil {
					log.Fatal(err)
				}
			}
		}(rank)
	}

	// Ocean: import the interface strip once per epoch; use it as surface
	// forcing for a diffusion solve.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := ocean.Process(rank)
			block, _ := p.Block("sfc")
			solver, err := sim.NewHeatSolver(p.Comm(), lo, rank, -1)
			if err != nil {
				log.Fatal(err)
			}
			solver.SetInitial(func(x, y float64) float64 { return 0 })
			surface := make([]float64, block.Area())
			forcing := make([]float64, block.Area())
			for j := 1; j <= *epochs; j++ {
				res, err := p.Import("sfc", float64(j**ratio), surface)
				if err != nil {
					log.Fatal(err)
				}
				if !res.Matched {
					log.Fatalf("ocean: no surface field @%d", j**ratio)
				}
				// The imported strip drives the forcing; rows outside the
				// window stay zero (only rank 0's block intersects it when
				// strip <= n/2).
				copy(forcing, surface)
				if err := solver.SetForcing(forcing); err != nil {
					log.Fatal(err)
				}
				for s := 0; s < *ratio; s++ {
					if err := solver.Step(); err != nil {
						log.Fatal(err)
					}
				}
				peak, err := solver.MaxAbs()
				if err != nil {
					log.Fatal(err)
				}
				if rank == 0 {
					fmt.Printf("epoch %d: surface strip @%g, ocean peak %.6f\n", j, res.MatchTS, peak)
				}
			}
		}(rank)
	}

	wg.Wait()
	if err := fw.Err(); err != nil {
		log.Fatal(err)
	}

	stats, err := atm.Process(1).ExportStats("sfc")
	if err != nil {
		log.Fatal(err)
	}
	st := stats["ocean.sfc"]
	fmt.Printf("atmosphere rank 1: %d exports, %d memcpys, %d skips, %d strip transfers\n",
		st.Exports, st.Copies, st.Skips, st.Sends)
}
