// Diffusion: the paper's micro-benchmark workload with real numerics.
// Program F (4 processes, 2x2 blocks) computes the forcing field f(t,x,y)
// and exports it every step; program U (4 processes, row bands) solves
// u_tt = u_xx + u_yy + f with the leapfrog scheme, importing a fresh forcing
// field every 20 solver steps under approximate matching (REGL, tol 2.5).
// One process of F is artificially slowed; with buddy-help it skips the
// buffering of forcing versions that can never be matched.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/sim"
)

const coupling = `
F local builtin 4
U local builtin 4
#
F.f U.f REGL 2.5
`

func main() {
	var (
		n     = flag.Int("n", 64, "grid size (n x n interior points; paper: 1024)")
		steps = flag.Int("steps", 200, "U solver steps")
		every = flag.Int("every", 20, "U imports a fresh forcing every this many steps")
		buddy = flag.Bool("buddy", true, "enable buddy-help")
		slow  = flag.Duration("slow", 2*time.Millisecond, "extra per-export work of F's slow process")
	)
	flag.Parse()

	cfg, err := config.ParseString(coupling)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(cfg, core.Options{BuddyHelp: *buddy, Timeout: 2 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	progF, progU := fw.MustProgram("F"), fw.MustProgram("U")
	fLayout, err := decomp.NewBlock2D(*n, *n, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	uLayout, err := decomp.NewRowBlock(*n, *n, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := progF.DefineRegion("f", fLayout); err != nil {
		log.Fatal(err)
	}
	if err := progU.DefineRegion("f", uLayout); err != nil {
		log.Fatal(err)
	}
	if err := fw.Start(); err != nil {
		log.Fatal(err)
	}

	// F runs on a finer time scale than U's import epochs (multi-resolution
	// coupling): ten forcing steps of 0.1 per coupled exchange, continuing
	// one epoch past U's last request so every request resolves.
	requests := *steps / *every
	exports := (requests + 1) * 10
	var wg sync.WaitGroup

	// Program F: sample and export the forcing field at ts = 0.1, 0.2, ...
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := progF.Process(rank)
			field := sim.NewField(fLayout, rank, sim.PulseForcing)
			buf := make([]float64, field.Block.Area())
			for k := 1; k <= exports; k++ {
				ts := float64(k) / 10
				field.Sample(ts, buf)
				if rank == 3 {
					time.Sleep(*slow) // p_s: the slow process
				}
				if err := p.Export("f", ts, buf); err != nil {
					log.Fatal(err)
				}
			}
		}(rank)
	}

	// Program U: leapfrog wave solve, importing forcing every `every` steps.
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := progU.Process(rank)
			solver, err := sim.NewWaveSolver(p.Comm(), uLayout, rank, -1)
			if err != nil {
				log.Fatal(err)
			}
			solver.SetInitial(
				func(x, y float64) float64 { return 0 },
				func(x, y float64) float64 { return 0 },
			)
			forcing := make([]float64, solver.Block().Area())
			for k := 0; k < *steps; k++ {
				if k%*every == 0 {
					// Coupled exchange: ask for the forcing at the coupled
					// time k/every+1 (each import epoch advances one unit).
					reqTS := float64(k / *every + 1)
					res, err := p.Import("f", reqTS, forcing)
					if err != nil {
						log.Fatal(err)
					}
					if res.Matched {
						if err := solver.SetForcing(forcing); err != nil {
							log.Fatal(err)
						}
						if rank == 0 {
							fmt.Printf("step %4d: imported forcing @%g (requested @%g)\n",
								k, res.MatchTS, reqTS)
						}
					}
				}
				if err := solver.Step(); err != nil {
					log.Fatal(err)
				}
			}
			norm, err := solver.L2Norm()
			if err != nil {
				log.Fatal(err)
			}
			if rank == 0 {
				fmt.Printf("U finished %d steps, t=%.4f, |u|_2 = %.6f\n", *steps, solver.Time(), norm)
			}
		}(rank)
	}

	wg.Wait()
	if err := fw.Err(); err != nil {
		log.Fatal(err)
	}

	stats, err := progF.Process(3).ExportStats("f")
	if err != nil {
		log.Fatal(err)
	}
	st := stats["U.f"]
	fmt.Printf("slow process p_s: %d exports, %d memcpys, %d skips, %d transfers, T_ub %v\n",
		st.Exports, st.Copies, st.Skips, st.Sends, st.UnnecessaryTime.Round(time.Microsecond))
}
