// Quickstart: the smallest complete coupling. A 2-process producer exports a
// distributed 8x8 field once per simulated time unit; a 2-process consumer
// imports it at coarser times under approximate matching (REGL, tolerance
// 0.5) — the consumer never needs to know who produces the data or when
// exactly it was produced.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
)

const coupling = `
producer local builtin 2
consumer local builtin 2
#
producer.field consumer.field REGL 0.5
`

func main() {
	cfg, err := config.ParseString(coupling)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(cfg, core.Options{BuddyHelp: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	const n = 8
	producer, consumer := fw.MustProgram("producer"), fw.MustProgram("consumer")
	prodLayout, _ := decomp.NewRowBlock(n, n, 2) // producer: row bands
	consLayout, _ := decomp.NewColBlock(n, n, 2) // consumer: column bands (MxN!)
	if err := producer.DefineRegion("field", prodLayout); err != nil {
		log.Fatal(err)
	}
	if err := consumer.DefineRegion("field", consLayout); err != nil {
		log.Fatal(err)
	}
	if err := fw.Start(); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup

	// Producer processes: export the field at t = 1, 2, ..., 12.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := producer.Process(rank)
			block, _ := p.Block("field")
			data := make([]float64, block.Area())
			for t := 1.0; t <= 12; t++ {
				i := 0
				for r := block.R0; r < block.R1; r++ {
					for c := block.C0; c < block.C1; c++ {
						data[i] = t*100 + float64(r*n+c)
						i++
					}
				}
				if err := p.Export("field", t, data); err != nil {
					log.Fatal(err)
				}
			}
		}(rank)
	}

	// Consumer processes: import at t = 4.2 and 9.7. With REGL/0.5 the
	// first request's acceptable region [3.7, 4.2] contains the export at 4
	// (MATCH); the second's region [9.2, 9.7] contains no export, so the
	// framework answers NO MATCH once the producers have passed it.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := consumer.Process(rank)
			block, _ := p.Block("field")
			dst := make([]float64, block.Area())
			for _, t := range []float64{4.2, 9.7} {
				res, err := p.Import("field", t, dst)
				if err != nil {
					log.Fatal(err)
				}
				if rank == 0 {
					if res.Matched {
						fmt.Printf("import @%.1f -> matched export @%g (corner value %.0f)\n",
							t, res.MatchTS, dst[0])
					} else {
						fmt.Printf("import @%.1f -> NO MATCH within tolerance\n", t)
					}
				}
			}
		}(rank)
	}

	wg.Wait()
	if err := fw.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart done")
}
