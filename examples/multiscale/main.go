// Multiscale: a fine-time-scale source program coupled to a coarse diffusion
// model — the regime the paper's Section 4.1 motivates ("multiple objects
// exported ... fall in one acceptable region, which can easily occur in
// coupling physical simulation components that act on different time
// scales").
//
// The source program emits a heating field every fine tick; the heat program
// imports one field per coarse epoch and integrates u_t = lap u + f between
// exchanges. The source's processes are data sources in the paper's sense —
// they compute their fields without exchanging data with their peers every
// step — which is exactly the condition the paper gives (end of Section 5)
// for the fastest process to run ahead and make buddy-help effective. The
// example runs the coupling twice, buddy-help on and off, and prints the
// unnecessary-buffering (T_ub, Equations (1)-(2)) comparison for the slowest
// source process.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/sim"
)

const coupling = `
src  local builtin 2
heat local builtin 2
#
src.q heat.q REGL 40
`

func main() {
	var (
		n       = flag.Int("n", 48, "grid size")
		epochs  = flag.Int("epochs", 6, "coarse coupling epochs")
		ratio   = flag.Int("ratio", 100, "fine source ticks per coarse epoch")
		slowDur = flag.Duration("slow", 500*time.Microsecond, "extra work of the slow source process")
	)
	flag.Parse()

	withStats, err := run(*n, *epochs, *ratio, *slowDur, true)
	if err != nil {
		log.Fatal(err)
	}
	withoutStats, err := run(*n, *epochs, *ratio, *slowDur, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nslowest source process, buffering summary (paper Eq. (1)-(2)):")
	row := func(name string, st buffer.Stats) {
		fmt.Printf("  %-10s exports %-5d memcpys %-5d skips %-5d transfers %-3d unnecessary %-4d T_ub %v\n",
			name, st.Exports, st.Copies, st.Skips, st.Sends, st.UnnecessaryCopies,
			st.UnnecessaryTime.Round(time.Microsecond))
	}
	row("buddy on", withStats)
	row("buddy off", withoutStats)
	fmt.Printf("  buddy-help removed %d memcpys and %v of T_ub\n",
		withoutStats.Copies-withStats.Copies,
		(withoutStats.UnnecessaryTime - withStats.UnnecessaryTime).Round(time.Microsecond))
}

func run(n, epochs, ratio int, slowDur time.Duration, buddy bool) (buffer.Stats, error) {
	cfg, err := config.ParseString(coupling)
	if err != nil {
		return buffer.Stats{}, err
	}
	fw, err := core.New(cfg, core.Options{BuddyHelp: buddy, Timeout: 2 * time.Minute})
	if err != nil {
		return buffer.Stats{}, err
	}
	defer fw.Close()

	src, heat := fw.MustProgram("src"), fw.MustProgram("heat")
	srcLayout, err := decomp.NewColBlock(n, n, 2)
	if err != nil {
		return buffer.Stats{}, err
	}
	heatLayout, err := decomp.NewRowBlock(n, n, 2)
	if err != nil {
		return buffer.Stats{}, err
	}
	if err := src.DefineRegion("q", srcLayout); err != nil {
		return buffer.Stats{}, err
	}
	if err := heat.DefineRegion("q", heatLayout); err != nil {
		return buffer.Stats{}, err
	}
	if err := fw.Start(); err != nil {
		return buffer.Stats{}, err
	}

	exports := (epochs + 1) * ratio // run one epoch past the last request
	var wg sync.WaitGroup
	var runErr error
	var errOnce sync.Once
	fail := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err; fw.Close() })
		}
	}

	// Source program: fine-scale heating field, one export per tick. Rank 1
	// is the slow process p_s.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := src.Process(rank)
			field := sim.NewField(srcLayout, rank, sim.PulseForcing)
			buf := make([]float64, field.Block.Area())
			for k := 1; k <= exports; k++ {
				field.Sample(float64(k)/float64(ratio), buf)
				if rank == 1 {
					time.Sleep(slowDur)
				}
				if err := p.Export("q", float64(k), buf); err != nil {
					fail(err)
					return
				}
			}
		}(rank)
	}

	// Heat program: one import per epoch, then `ratio` diffusion steps with
	// the imported heating as forcing.
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := heat.Process(rank)
			solver, err := sim.NewHeatSolver(p.Comm(), heatLayout, rank, -1)
			if err != nil {
				fail(err)
				return
			}
			solver.SetInitial(func(x, y float64) float64 { return 0 })
			forcing := make([]float64, solver.Block().Area())
			for j := 1; j <= epochs; j++ {
				res, err := p.Import("q", float64(j*ratio), forcing)
				if err != nil {
					fail(err)
					return
				}
				if !res.Matched {
					fail(fmt.Errorf("heat: no heating field @%d", j*ratio))
					return
				}
				if err := solver.SetForcing(forcing); err != nil {
					fail(err)
					return
				}
				for s := 0; s < ratio; s++ {
					if err := solver.Step(); err != nil {
						fail(err)
						return
					}
				}
				// MaxAbs is collective: every rank must participate.
				peak, err := solver.MaxAbs()
				if err != nil {
					fail(err)
					return
				}
				if rank == 0 && buddy {
					fmt.Printf("epoch %d: imported q@%g, heat peak %.6f\n", j, res.MatchTS, peak)
				}
			}
		}(rank)
	}

	wg.Wait()
	if runErr != nil {
		return buffer.Stats{}, runErr
	}
	if err := fw.Err(); err != nil {
		return buffer.Stats{}, err
	}
	stats, err := src.Process(1).ExportStats("q")
	if err != nil {
		return buffer.Stats{}, err
	}
	return stats["heat.q"].Stats, nil
}
