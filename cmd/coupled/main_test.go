package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/testutil"
)

func writeCfg(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.cfg")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleProcess(t *testing.T) {
	cfg := writeCfg(t, "A local b 2\nB local b 2\n#\nA.x B.x REGL 2.5\n")
	if err := run(cfg, "", "", 16, 30, 10, true, false, 200*time.Millisecond, 0, "", 0, false, "", false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunPipelineConfig(t *testing.T) {
	cfg := writeCfg(t, `
src local b 1
mid local b 2
out local b 1
#
src.a mid.a REGL 1.0
mid.b out.b REGL 1.0
`)
	if err := run(cfg, "", "", 8, 20, 5, true, false, 0, 0, "", 0, false, "", false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadConfigPath(t *testing.T) {
	if err := run("/nonexistent/x.cfg", "", "", 8, 10, 5, true, false, 0, 0, "", 0, false, "", false, "", false, ""); err == nil {
		t.Error("missing config accepted")
	}
}

func TestRunProgramNeedsRouter(t *testing.T) {
	cfg := writeCfg(t, "A local b 1\nB local b 1\n#\nA.x B.x REGL 1\n")
	if err := run(cfg, "A", "", 8, 10, 5, true, false, 0, 0, "", 0, false, "", false, "", false, ""); err == nil {
		t.Error("-program without -router accepted")
	}
}

// TestRunWithObservability runs a coupling with the introspection server and
// span tracing on, checks the exit-time trace dump is valid Chrome trace
// JSON, and verifies the HTTP server and trace rings leak no goroutines.
func TestRunWithObservability(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := writeCfg(t, "A local b 2\nB local b 2\n#\nA.x B.x REGL 2.5\n")
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run(cfg, "", "", 16, 30, 10, true, false, 0, 0, "", 0, false, "127.0.0.1:0", true, out, false, ""); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace output does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace output has no events")
	}
}

// TestRunCheckpointRestore runs a coupling for 20 steps with checkpoints
// every 10, then restores from the checkpoint directory and resumes for the
// remaining 10 steps of a 30-step schedule.
func TestRunCheckpointRestore(t *testing.T) {
	cfg := writeCfg(t, "A local b 2\nB local b 2\n#\nA.x B.x REGL 2.5\n")
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := run(cfg, "", "", 16, 20, 10, true, false, 0, 0, dir, 10, false, "", false, "", false, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "A.ckpt")); err != nil {
		t.Fatalf("no checkpoint written for A: %v", err)
	}
	if err := run(cfg, "", "", 16, 30, 10, true, false, 0, 0, dir, 10, true, "", false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRestoreNeedsDir(t *testing.T) {
	cfg := writeCfg(t, "A local b 1\nB local b 1\n#\nA.x B.x REGL 1\n")
	if err := run(cfg, "", "", 8, 10, 5, true, false, 0, 0, "", 0, true, "", false, "", false, ""); err == nil {
		t.Error("-restore without -checkpoint-dir accepted")
	}
}

func TestRolesOf(t *testing.T) {
	cfgPath := writeCfg(t, `
A local b 1
B local b 1
C local b 1
#
A.x B.x REGL 1
B.y C.y REGL 1
`)
	if err := run(cfgPath, "", "", 8, 20, 5, false, true, 0, 0, "", 0, false, "", false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithDiag runs a coupling with coupling-aware diagnosis on (board +
// flight recorder wired per program) and checks a clean run still completes
// and leaves no dumps behind (dumps are crash/SIGQUIT artifacts).
func TestRunWithDiag(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := writeCfg(t, "A local b 2\nB local b 2\n#\nA.x B.x REGL 2.5\n")
	dir := t.TempDir()
	if err := run(cfg, "", "", 16, 30, 10, true, false, 0, 0, "", 0, false, "", false, "", true, dir); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("clean diag run left %d files in flight dir", len(ents))
	}
}
