// Command coupled runs a coupling configuration file (the paper's Figure 2
// format) with synthetic data-parallel programs: every program named in a
// connection's export side exports a time-varying analytic field each
// iteration, and every import side imports on its own (coarser) schedule.
// It demonstrates the framework's headline property: the coupling lives
// entirely in the configuration file — the same program code runs under any
// wiring.
//
// Example configuration (see testdata/ and the paper's Figure 2):
//
//	F local builtin 4
//	U local builtin 8
//	#
//	F.f U.f REGL 2.5
//
// Usage:
//
//	coupled -config coupling.cfg -steps 100 -every 10
//
// Distributed mode runs each program in its own OS process against a shared
// router (the paper's one-binary-per-component deployment):
//
//	coupled -router-listen 127.0.0.1:7000                    # terminal 0
//	coupled -config c.cfg -program F -router 127.0.0.1:7000  # terminal 1
//	coupled -config c.cfg -program U -router 127.0.0.1:7000  # terminal 2
//
// Crash recovery takes collective-sequence checkpoints and lets a killed
// component restart from its last checkpoint and rejoin the survivors:
//
//	coupled -config c.cfg -program U -router ... -checkpoint-dir ckpt -checkpoint-every 10
//	# kill -9 the U process mid-run, then:
//	coupled -config c.cfg -program U -router ... -checkpoint-dir ckpt -restore
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/obsv"
	"repro/internal/recover"
	"repro/internal/transport"
)

func main() {
	var (
		cfgPath = flag.String("config", "", "coupling configuration file (Figure 2 format)")
		program = flag.String("program", "", "run only this program, joining peers over -router (distributed mode)")
		router  = flag.String("router", "", "address of a running coupling router (with -program)")
		listen  = flag.String("router-listen", "", "run a coupling router on this address and block")
		gridN   = flag.Int("n", 64, "global array size per region (n x n)")
		steps   = flag.Int("steps", 100, "exporter iterations per program")
		every   = flag.Int("every", 10, "importer requests once per this many exporter steps")
		buddy   = flag.Bool("buddy", true, "enable buddy-help")
		verbose = flag.Bool("v", false, "print per-import match lines")
		hb      = flag.Duration("heartbeat", 0,
			"rep heartbeat interval: detect a dead peer program within 2x this (0 = disabled)")
		retries = flag.Int("maxretries", 0,
			"distributed mode: reconnect to the router up to this many times after a connection "+
				"failure, replaying unacknowledged messages (0 = fail on first loss)")
		ckptDir = flag.String("checkpoint-dir", "",
			"enable crash recovery: persist collective-sequence checkpoints for the hosted "+
				"programs under this directory")
		ckptEvery = flag.Int("checkpoint-every", 10,
			"checkpoint once per this many steps (with -checkpoint-dir; a collective schedule "+
				"— every process of a program checkpoints at the same step)")
		restore = flag.Bool("restore", false,
			"restore the hosted programs from their last checkpoint in -checkpoint-dir, rejoin "+
				"the surviving peers, and resume the step loop after the checkpointed step")
		obsvAddr = flag.String("obsv-addr", "",
			"serve live introspection on this address: /metrics (Prometheus), /trace (Chrome "+
				"trace JSON), /statusz, /debug/pprof")
		obsvTrace = flag.Bool("obsv-trace", false,
			"record protocol spans (dump at /trace or with -trace-out; piggybacks trace IDs on the wire)")
		traceOut = flag.String("trace-out", "",
			"write the recorded span trace as Chrome trace JSON to this file on exit (implies -obsv-trace)")
		diagOn = flag.Bool("diag", false,
			"enable coupling-aware diagnosis: per-collective straggler attribution (/diag/stragglers, "+
				"statusz diag: section) and a crash-safe flight recorder (dumped on peer death or SIGQUIT)")
		flightDir = flag.String("flight-dir", "",
			"directory for flight-recorder dumps (with -diag; default: the OS temp directory)")
	)
	flag.Parse()
	if *listen != "" {
		r, err := transport.StartTCPRouter(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coupled:", err)
			os.Exit(1)
		}
		fmt.Printf("coupling router listening on %s\n", r.ListenAddr())
		select {} // serve until killed
	}
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "coupled: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*cfgPath, *program, *router, *gridN, *steps, *every, *buddy, *verbose, *hb, *retries,
		*ckptDir, *ckptEvery, *restore, *obsvAddr, *obsvTrace || *traceOut != "", *traceOut,
		*diagOn, *flightDir); err != nil {
		fmt.Fprintln(os.Stderr, "coupled:", err)
		os.Exit(1)
	}
}

// roles derived from the configuration: which regions each program exports
// and imports.
type role struct {
	exports []string
	imports []string
}

func rolesOf(cfg *config.Config) map[string]*role {
	out := make(map[string]*role)
	for _, p := range cfg.Programs {
		out[p.Name] = &role{}
	}
	for _, c := range cfg.Connections {
		er := out[c.Export.Program]
		if !contains(er.exports, c.Export.Region) {
			er.exports = append(er.exports, c.Export.Region)
		}
		ir := out[c.Import.Program]
		if !contains(ir.imports, c.Import.Region) {
			ir.imports = append(ir.imports, c.Import.Region)
		}
	}
	return out
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func run(cfgPath, program, router string, gridN, steps, every int, buddy, verbose bool,
	heartbeat time.Duration, maxRetries int, ckptDir string, ckptEvery int, restore bool,
	obsvAddr string, tracing bool, traceOut string, diagOn bool, flightDir string) error {
	cfg, err := config.ParseFile(cfgPath)
	if err != nil {
		return err
	}
	opts := core.Options{
		BuddyHelp: buddy, Timeout: 2 * time.Minute, Heartbeat: heartbeat,
		Diag: diagOn, FlightDir: flightDir,
	}
	// Restart epoch: 0 for a fresh start; a restore learns it from the saved
	// checkpoint before the transport session is built, so peers can tell the
	// new incarnation's session from the dead one's.
	var epoch uint64
	if ckptDir != "" {
		store, err := recover.NewDirStore(ckptDir)
		if err != nil {
			return err
		}
		opts.Recovery = &core.RecoveryOptions{Store: store, Restore: restore, Every: ckptEvery}
		if restore && program != "" {
			ck, err := store.Load(program)
			if err != nil {
				return err
			}
			if ck == nil {
				// Without a checkpoint there is no restart epoch: the fresh
				// session would collide with the peers' memory of the dead one.
				return fmt.Errorf("-restore: no checkpoint for %s in %s", program, ckptDir)
			}
			epoch = ck.Epoch + 1
		}
	} else if restore {
		return fmt.Errorf("-restore needs -checkpoint-dir")
	}
	var obs *obsv.Observer
	if obsvAddr != "" || tracing {
		obs = obsv.New(obsv.Config{Tracing: tracing})
		opts.Obsv = obs
	}
	if obsvAddr != "" {
		srv, err := obsv.Serve(obsvAddr, obs)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s (/metrics /trace /statusz /debug/pprof)\n", srv.Addr())
	}
	var fw *core.Framework
	if program != "" {
		if router == "" {
			return fmt.Errorf("-program needs -router")
		}
		tcp := transport.NewTCPNetwork(router)
		tcp.SessionEpoch = epoch
		opts.Network = tcp
		if maxRetries > 0 {
			tcp.MaxRetries = maxRetries
		}
		if maxRetries > 0 || opts.Recovery != nil {
			// Reconnection alone redials the router; the reliable layer on top
			// replays whatever the dead socket swallowed, exactly once. Crash
			// recovery needs it too: rejoin resets sessions per restart epoch.
			opts.Network = transport.NewReliableNetwork(tcp, transport.ReliableConfig{
				SessionEpoch: uint32(epoch),
			})
		}
		fw, err = core.Join(cfg, program, opts)
	} else {
		fw, err = core.New(cfg, opts)
	}
	if err != nil {
		return err
	}
	defer fw.Close()

	if diagOn {
		// SIGQUIT preserves its kill semantics but writes the flight rings
		// first: the crashed run's last protocol events, decodable with
		// `couplebench coupleflight <files>`.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGQUIT)
		defer signal.Stop(sigc)
		go func() {
			<-sigc
			paths, err := fw.DumpFlight("SIGQUIT")
			if err != nil {
				fmt.Fprintln(os.Stderr, "coupled: flight dump:", err)
			}
			for _, p := range paths {
				fmt.Fprintf(os.Stderr, "coupled: flight dump written to %s\n", p)
			}
			os.Exit(2)
		}()
	}

	roles := rolesOf(cfg)
	if program != "" {
		// Distributed mode: only our own program's processes run here.
		for name := range roles {
			if name != program {
				delete(roles, name)
			}
		}
	}
	// Define one RowBlock region per referenced region name.
	for name, r := range roles {
		prog := fw.MustProgram(name)
		for _, reg := range append(append([]string{}, r.exports...), r.imports...) {
			layout, err := decomp.NewRowBlock(gridN, gridN, prog.Procs())
			if err != nil {
				return fmt.Errorf("program %s: %w", name, err)
			}
			if err := prog.DefineRegion(reg, layout); err != nil {
				return err
			}
		}
	}
	if err := fw.Start(); err != nil {
		return err
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []error
	report := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		failures = append(failures, err)
		mu.Unlock()
	}

	names := make([]string, 0, len(roles))
	for name := range roles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		prog := fw.MustProgram(name)
		if seq, ok := prog.RestoredSeq(); ok {
			fmt.Printf("%s: restored from checkpoint seq %d (epoch %d), resuming at step %d\n",
				name, seq, prog.Epoch(), seq+1)
		}
	}

	for _, name := range names {
		r := roles[name]
		prog := fw.MustProgram(name)
		for rank := 0; rank < prog.Procs(); rank++ {
			wg.Add(1)
			go func(name string, r *role, rank int) {
				defer wg.Done()
				report(runProcess(fw, name, r, rank, steps, every, verbose))
			}(name, r, rank)
		}
	}
	wg.Wait()
	if err := fw.Err(); err != nil {
		return err
	}
	if len(failures) > 0 {
		return failures[0]
	}
	if program != "" {
		// Distributed mode: linger so peers that are still importing can
		// collect their answers and data before this component tears down
		// (shutdown coordination between independently developed programs is
		// application-level; FinishRegion has already resolved every pending
		// request).
		time.Sleep(2 * time.Second)
	}

	// Summaries.
	for _, name := range names {
		r := roles[name]
		prog := fw.MustProgram(name)
		for _, reg := range r.exports {
			stats, err := prog.Process(prog.Procs() - 1).ExportStats(reg)
			if err != nil {
				continue
			}
			imps := make([]string, 0, len(stats))
			for imp := range stats {
				imps = append(imps, imp)
			}
			sort.Strings(imps)
			for _, imp := range imps {
				st := stats[imp]
				fmt.Printf("%s.%s -> %s: %d exports, %d memcpys, %d skips, %d transfers, T_ub %v, pipeline stall %v (last rank)\n",
					name, reg, imp, st.Exports, st.Copies, st.Skips, st.Sends,
					st.UnnecessaryTime.Round(time.Microsecond),
					time.Duration(st.Pipeline.ExportStallNanos).Round(time.Microsecond))
			}
		}
		ps := prog.ProtocolStats()
		line := fmt.Sprintf("%s: %d data messages", name, ps.DataMessages)
		if ps.DataDropped > 0 {
			line += fmt.Sprintf(", %d dropped", ps.DataDropped)
		}
		if ev := prog.Evictions(); ev > 0 {
			line += fmt.Sprintf(", %d versions evicted for dead peers", ev)
		}
		fc := prog.Process(0).Comm().Instruments().FailureCounts()
		if fc["agreed"] > 0 || fc["revokes"] > 0 || fc["shrinks"] > 0 {
			line += fmt.Sprintf(", rank failures: %d agreed / %d revokes / %d shrinks",
				fc["agreed"], fc["revokes"], fc["shrinks"])
		}
		fmt.Println(line)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("span trace written to %s (load in Perfetto or chrome://tracing)\n", traceOut)
	}
	return nil
}

// runProcess drives one process: export all export-regions every step,
// import all import-regions every `every` steps.
func runProcess(fw *core.Framework, name string, r *role, rank, steps, every int, verbose bool) error {
	prog := fw.MustProgram(name)
	p := prog.Process(rank)

	type expState struct {
		region string
		block  decomp.Rect
		data   []float64
	}
	var exps []expState
	for _, reg := range r.exports {
		block, err := p.Block(reg)
		if err != nil {
			return err
		}
		exps = append(exps, expState{region: reg, block: block, data: make([]float64, block.Area())})
	}
	type impState struct {
		region string
		block  decomp.Rect
		dst    []float64
	}
	var imps []impState
	for _, reg := range r.imports {
		block, err := p.Block(reg)
		if err != nil {
			return err
		}
		imps = append(imps, impState{region: reg, block: block, dst: make([]float64, block.Area())})
	}

	// With -restore, the step loop resumes right after the checkpointed
	// collective sequence number (every rank restores the same one).
	start := 1
	if seq, ok := prog.RestoredSeq(); ok {
		start = int(seq) + 1
	}
	ckptEvery := fw.CheckpointEvery()
	importCycles := steps / every
	for k := start; k <= steps; k++ {
		ts := float64(k)
		for _, e := range exps {
			fill(e.block, ts, e.data)
			if err := p.Export(e.region, ts, e.data); err != nil {
				return fmt.Errorf("%s:%d export %s@%g: %w", name, rank, e.region, ts, err)
			}
		}
		if len(imps) > 0 && k%every == 0 && k/every <= importCycles {
			// Request slightly behind the exporters (ts-0.5) so the final
			// request is still decidable from the exports that will exist.
			req := ts - 0.5
			for i := range imps {
				im := &imps[i]
				res, err := p.Import(im.region, req, im.dst)
				if err != nil {
					return fmt.Errorf("%s:%d import %s@%g: %w", name, rank, im.region, req, err)
				}
				if verbose && rank == 0 {
					if res.Matched {
						fmt.Printf("%s imported %s@%g -> matched D@%g\n", name, im.region, req, res.MatchTS)
					} else {
						fmt.Printf("%s imported %s@%g -> NO MATCH\n", name, im.region, req)
					}
				}
			}
		}
		if ckptEvery > 0 && k%ckptEvery == 0 {
			if err := p.Checkpoint(uint64(k)); err != nil {
				return fmt.Errorf("%s:%d checkpoint @%d: %w", name, rank, k, err)
			}
		}
	}
	// End of stream: resolve any requests still pending on our exports.
	for _, e := range exps {
		if err := p.FinishRegion(e.region); err != nil {
			return fmt.Errorf("%s:%d finish %s: %w", name, rank, e.region, err)
		}
	}
	return nil
}

// fill writes a recognizable analytic field for timestamp ts.
func fill(block decomp.Rect, ts float64, dst []float64) {
	i := 0
	for r := block.R0; r < block.R1; r++ {
		for c := block.C0; c < block.C1; c++ {
			dst[i] = math.Sin(ts/7) * float64(r+c)
			i++
		}
	}
}
