package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/collective"
	"repro/internal/harness"
)

// collectivesReport is the schema of the JSON file -collectives writes
// (BENCH_PR8.json in the repository). It snapshots the collective engine's
// three headline properties — the ring/Rabenseifner AllReduce beats recursive
// doubling >= 2x on large vectors with bit-identical results, the steady-state
// hot path allocates nothing, and the Hunold-style performance guidelines all
// hold — so CI can verify them without re-deriving.
type collectivesReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// SteadyState times one full-group in-place AllReduce per op (8 ranks,
	// 8 KiB vectors, buffer reuse on); AllocsPerOp must be 0 for both
	// algorithms.
	SteadyStateRD   benchResult `json:"allreduce_steady_state_rd"`
	SteadyStateRing benchResult `json:"allreduce_steady_state_ring"`

	// Comparison is the 1 MiB x 8-rank head-to-head; Speedup must be >= 2
	// and Identical true.
	Comparison *harness.AllReduceComparison `json:"allreduce_rd_vs_ring"`

	// Guidelines is the performance-guidelines sweep; every entry must hold.
	Guidelines *harness.GuidelinesReport `json:"guidelines"`

	// TunedTable is the dispatch table produced by the self-tuning sweep on
	// this machine (informational; the static defaults ship in the binary).
	TunedTable *collective.Table `json:"tuned_table"`
}

// runCollectives runs the collective benchmark suite and writes the JSON
// report to path, failing loudly if any acceptance property regressed.
func runCollectives(path string) error {
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	report := collectivesReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fmt.Println("steady-state allocation benchmarks (8 ranks x 8 KiB, one group op per benchmark op):")
	row := func(name string, r benchResult) {
		fmt.Printf("  %-28s %10d ops   %8d ns/op   %4d allocs/op   %6d B/op\n",
			name, r.N, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	report.SteadyStateRD = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.CollectiveAllReduceBench(b, 8, 1024, collective.RecursiveDoubling)
	}))
	row("allreduce-rd", report.SteadyStateRD)
	report.SteadyStateRing = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.CollectiveAllReduceBench(b, 8, 1024, collective.Ring)
	}))
	row("allreduce-ring", report.SteadyStateRing)

	fmt.Println("rd vs ring AllReduce (1 MiB vectors, 8 ranks):")
	cmp, err := harness.CompareAllReduce(8, 1<<17, 8, 3)
	if err != nil {
		return err
	}
	report.Comparison = cmp
	fmt.Printf("  %s\n", cmp)

	fmt.Println("performance guidelines:")
	gl, err := harness.RunGuidelines(harness.GuidelinesConfig{})
	if err != nil {
		return err
	}
	report.Guidelines = gl
	for _, g := range gl.Guidelines {
		fmt.Printf("  %s\n", g)
	}

	fmt.Println("self-tuning sweep (8 ranks):")
	tuned, err := harness.RunTune(8, collective.TuneConfig{})
	if err != nil {
		return err
	}
	report.TunedTable = tuned
	fmt.Printf("  rd->ring crossover: allreduce %d B, reducescatter %d B\n",
		tuned.AllReduceRingBytes, tuned.ReduceScatterRingBytes)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// The acceptance gates, checked here so a -collectives run (and the CI
	// job wrapping it) fails loudly instead of silently recording a
	// regression in the report.
	if a := report.SteadyStateRD.AllocsPerOp; a != 0 {
		return fmt.Errorf("steady-state rd AllReduce allocates %d per op, want 0", a)
	}
	if a := report.SteadyStateRing.AllocsPerOp; a != 0 {
		return fmt.Errorf("steady-state ring AllReduce allocates %d per op, want 0", a)
	}
	if !cmp.Identical {
		return fmt.Errorf("rd and ring AllReduce results are not bit-identical")
	}
	if cmp.Speedup < 2.0 {
		return fmt.Errorf("ring AllReduce speedup %.2fx at %d B x %d ranks, want >= 2.0x",
			cmp.Speedup, cmp.Bytes, cmp.Ranks)
	}
	if !gl.Identical {
		return fmt.Errorf("guideline algorithm pairs disagree bitwise")
	}
	if !gl.Holds() {
		return fmt.Errorf("performance guidelines violated (see report)")
	}
	return nil
}
