package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/harness"
)

// benchReport is the schema of the JSON file -bench writes (BENCH_PR2.json
// in the repository). It snapshots the allocation behaviour of the export
// hot path and the wire savings of message coalescing, so CI can verify the
// two headline properties — 0 allocs/op at steady state and a >= 3x frame
// reduction with byte-identical match results — without re-deriving them.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks benchSection  `json:"benchmarks"`
	Framing    framingReport `json:"framing"`
}

type benchSection struct {
	// StoreSteadyState is the pooled buffered-export path (the Figure-4
	// memcpy) at steady state; AllocsPerOp must be 0.
	StoreSteadyState benchResult `json:"store_steady_state"`
	// FrameRoundTrip is the TCP transport's binary codec (encode into a
	// reused buffer + zero-copy decode); AllocsPerOp must be 0.
	FrameRoundTrip benchResult `json:"frame_round_trip"`
	// RepRoundTrip is a rep-to-rep control round trip through the
	// coalescing transport with a window of outstanding requests.
	RepRoundTrip benchResult `json:"rep_round_trip_coalesced"`
	// ObsvDisabled prices the data plane's per-job observability sequence
	// with tracing off (the production default; AllocsPerOp must be 0);
	// ObsvTraced adds the lock-free span record.
	ObsvDisabled benchResult `json:"obsv_overhead_disabled"`
	ObsvTraced   benchResult `json:"obsv_overhead_traced"`
}

type benchResult struct {
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// framingReport compares one coupled Figure-4 run without and with message
// coalescing: frames on the wire, payload bytes, and the proof that the
// optimization is semantics-preserving (identical match results and import
// checksums) and does not disturb the buffering behaviour (T_ub).
type framingReport struct {
	GridN           int     `json:"grid_n"`
	ExporterProcs   int     `json:"exporter_procs"`
	ImporterProcs   int     `json:"importer_procs"`
	Exports         int     `json:"exports"`
	BaselineFrames  int64   `json:"baseline_frames"`
	CoalescedFrames int64   `json:"coalesced_frames"`
	FrameReduction  float64 `json:"frame_reduction"`
	Batches         int64   `json:"coalesced_batches"`
	BatchedMsgs     int64   `json:"coalesced_batched_msgs"`
	BaselineBytes   int64   `json:"baseline_wire_bytes"`
	CoalescedBytes  int64   `json:"coalesced_wire_bytes"`
	Matched         int     `json:"matched_requests"`
	Identical       bool    `json:"match_results_identical"`
	TubBaselineUS   int64   `json:"t_ub_baseline_us"`
	TubCoalescedUS  int64   `json:"t_ub_coalesced_us"`
}

func toBenchResult(r testing.BenchmarkResult) benchResult {
	out := benchResult{
		N:           r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return out
}

// runBench runs the allocation benchmarks and the coalescing comparison and
// writes the JSON report to path.
func runBench(path string) error {
	// Fail on an unwritable report path now, not after a minute of
	// benchmarking.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	report := benchReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fmt.Println("allocation benchmarks:")
	row := func(name string, r benchResult) {
		fmt.Printf("  %-28s %10d ops   %8d ns/op   %4d allocs/op   %6d B/op\n",
			name, r.N, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	report.Benchmarks.StoreSteadyState = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.StoreSteadyStateBench(b, 512*512)
	}))
	row("store-steady-state", report.Benchmarks.StoreSteadyState)
	report.Benchmarks.FrameRoundTrip = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.FrameRoundTripBench(b)
	}))
	row("frame-round-trip", report.Benchmarks.FrameRoundTrip)
	report.Benchmarks.RepRoundTrip = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.RepRoundTripBench(b)
	}))
	row("rep-round-trip-coalesced", report.Benchmarks.RepRoundTrip)
	report.Benchmarks.ObsvDisabled = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.ObsvOverheadBench(b, false)
	}))
	row("obsv-overhead-disabled", report.Benchmarks.ObsvDisabled)
	report.Benchmarks.ObsvTraced = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.ObsvOverheadBench(b, true)
	}))
	row("obsv-overhead-traced", report.Benchmarks.ObsvTraced)

	fmt.Println("message-coalescing comparison (coupled Figure-4 run, uncoalesced vs coalesced):")
	cfg := harness.DefaultFramingConfig()
	cmp, err := harness.RunFramingComparison(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", cmp)
	base, coal := cmp.Baseline, cmp.Coalesced
	report.Framing = framingReport{
		GridN:           cfg.GridN,
		ExporterProcs:   cfg.ExporterProcs,
		ImporterProcs:   cfg.ImporterProcs,
		Exports:         cfg.Exports,
		BaselineFrames:  base.Frames.Frames,
		CoalescedFrames: coal.Frames.Frames,
		FrameReduction:  cmp.FrameReduction(),
		Batches:         coal.Frames.Batches,
		BatchedMsgs:     coal.Frames.Batched,
		BaselineBytes:   base.Frames.PayloadBytes,
		CoalescedBytes:  coal.Frames.PayloadBytes,
		Matched:         base.Matched,
		Identical:       cmp.Identical(),
		TubBaselineUS:   base.TUb().Microseconds(),
		TubCoalescedUS:  coal.TUb().Microseconds(),
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// The two headline acceptance properties, checked here so a -bench run
	// (and the CI smoke job wrapping it) fails loudly instead of silently
	// recording a regression in the report.
	if a := report.Benchmarks.StoreSteadyState.AllocsPerOp; a != 0 {
		return fmt.Errorf("store steady state allocates %d per op, want 0", a)
	}
	if a := report.Benchmarks.ObsvDisabled.AllocsPerOp; a != 0 {
		return fmt.Errorf("disabled observability path allocates %d per op, want 0", a)
	}
	if !report.Framing.Identical {
		return fmt.Errorf("coalesced run diverged from baseline (matched %d vs %d, checksums differ)",
			coal.Matched, base.Matched)
	}
	return nil
}
