package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/collective"
	"repro/internal/harness"
	"repro/internal/obsv/diag"
)

// diagReport is the schema of the JSON file -diag writes (BENCH_PR9.json in
// the repository). It snapshots the coupling-aware diagnosis acceptance
// properties — one delayed rank is fingered as the straggler for >= 95% of
// operations, the attribution trailer costs <= 5% on the headline AllReduce
// latency, and with diagnosis off the steady-state hot path still allocates
// nothing — so CI can verify them without re-deriving.
type diagReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Diag is the attribution accuracy + trailer overhead measurement.
	Diag *harness.DiagReport `json:"diag"`

	// SteadyStateOff re-checks the PR 8 baseline with diagnosis off:
	// AllocsPerOp must stay 0.
	SteadyStateOff benchResult `json:"allreduce_steady_state_diag_off"`
}

// runDiagBench runs the diagnosis benchmark suite, writes the JSON report to
// path and the sample flight dump to flightOut (skipped when empty), failing
// loudly if an acceptance gate regressed.
func runDiagBench(path, flightOut string) error {
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	report := diagReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fmt.Println("straggler attribution + trailer overhead (8 ranks x 8 KiB, rank 5 delayed 1ms):")
	rep, err := harness.RunDiag(harness.DiagConfig{FlightOut: flightOut})
	if err != nil {
		return err
	}
	report.Diag = rep
	fmt.Printf("  %s\n", rep)
	if flightOut != "" {
		fmt.Printf("  sample flight dump written to %s\n", flightOut)
	}

	fmt.Println("steady-state AllReduce with diagnosis off (the PR 8 zero-alloc baseline):")
	report.SteadyStateOff = toBenchResult(testing.Benchmark(func(b *testing.B) {
		harness.CollectiveAllReduceBench(b, 8, 1024, collective.RecursiveDoubling)
	}))
	fmt.Printf("  %-28s %10d ops   %8d ns/op   %4d allocs/op\n",
		"allreduce-rd-diag-off", report.SteadyStateOff.N,
		report.SteadyStateOff.NsPerOp, report.SteadyStateOff.AllocsPerOp)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// Acceptance gates.
	if rep.Fraction < 0.95 {
		return fmt.Errorf("slow rank fingered in %.1f%% of attributed ops, want >= 95%%", 100*rep.Fraction)
	}
	if rep.TopRank != rep.SlowRank {
		return fmt.Errorf("top straggler rank %d, want the delayed rank %d", rep.TopRank, rep.SlowRank)
	}
	if rep.OverheadPct > 5.0 {
		return fmt.Errorf("attribution trailer costs %.1f%% on the headline AllReduce, want <= 5%%", rep.OverheadPct)
	}
	if a := report.SteadyStateOff.AllocsPerOp; a != 0 {
		return fmt.Errorf("with diagnosis off the steady-state AllReduce allocates %d per op, want 0", a)
	}
	return nil
}

// runCoupleflight is the `couplebench coupleflight <dump.cpfl>...` decoder:
// it reads each flight dump and prints one merged timeline, ordered by the
// recorders' (virtual or wall) clock across programs and ranks.
func runCoupleflight(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("usage: couplebench coupleflight <dump.cpfl>...")
	}
	dumps := make([]*diag.Dump, 0, len(paths))
	for _, path := range paths {
		d, err := diag.ReadDump(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dumps = append(dumps, d)
	}
	return diag.WriteTimeline(os.Stdout, dumps...)
}
