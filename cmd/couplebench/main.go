// Command couplebench reproduces the paper's Figure 4 micro-benchmark: the
// per-iteration data-export time of the slowest process p_s of the forcing
// program F, coupled to importer programs U of 4, 8, 16 and 32 processes
// (configurations a-d), plus the buddy-help T_ub ablation (Equations (1)-(2))
// and the optimal-state-onset sweep.
//
// Examples:
//
//	couplebench -figure all            # the four Figure 4 configurations
//	couplebench -figure c -csv c.csv   # one configuration + CSV series
//	couplebench -tub                   # buddy-help on/off ablation
//	couplebench -onset 2,4,8,16,32     # optimal-state onset sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/plot"
)

var figureProcs = map[string]int{"a": 4, "b": 8, "c": 16, "d": 32}

func main() {
	// Subcommand form: `couplebench coupleflight <dump.cpfl>...` decodes
	// flight-recorder dumps into one merged cross-rank timeline.
	if len(os.Args) > 1 && os.Args[1] == "coupleflight" {
		if err := runCoupleflight(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}
	var (
		figure    = flag.String("figure", "all", "Figure 4 configuration: a, b, c, d or all")
		gridN     = flag.Int("n", 256, "global array is n x n (paper: 1024)")
		exports   = flag.Int("exports", 1001, "number of exports (paper: 1001)")
		every     = flag.Int("every", 20, "one request per this many exports (paper: 20)")
		tol       = flag.Float64("tol", 2.5, "match tolerance (paper: 2.5, REGL)")
		buddy     = flag.Bool("buddy", true, "enable the buddy-help optimization")
		runs      = flag.Int("runs", 1, "runs to average (paper: 6)")
		fast      = flag.Duration("fast", 200*time.Microsecond, "per-export compute of the fast F processes")
		slow      = flag.Duration("slow", time.Millisecond, "per-export compute of the slow process p_s")
		uwork     = flag.Duration("uwork", 300*time.Millisecond, "program U's total per-iteration compute")
		csvPath   = flag.String("csv", "", "write the per-iteration series to this CSV file")
		svgPath   = flag.String("svg", "", "render the per-iteration series to this SVG file")
		tub       = flag.Bool("tub", false, "run the buddy-help on/off T_ub ablation instead")
		onset     = flag.String("onset", "", "comma-separated importer process counts for the optimal-state-onset sweep")
		syncImp   = flag.Bool("sync", false, "synchronize importer processes each iteration (models a real solver's halo exchange)")
		ratio     = flag.String("ratio", "", "comma-separated tolerances for the tolerance-ratio sweep (buddy on/off saving curve)")
		latsw     = flag.String("latsweep", "", "comma-separated one-way network latencies (e.g. 0,100us,1ms) for the latency ablation")
		bench     = flag.String("bench", "", "run the allocation/framing benchmark suite and write the JSON report to this file (e.g. BENCH_PR2.json)")
		overlap   = flag.String("overlap", "", "run the sync-vs-async export overlap comparison and write the JSON report to this file (e.g. BENCH_PR3.json)")
		collcts   = flag.String("collectives", "", "run the collective-operation benchmark suite (rd vs ring, zero-alloc, guidelines, tuning) and write the JSON report to this file (e.g. BENCH_PR8.json)")
		recovery  = flag.Bool("recovery", false, "run the crash-recovery comparison (checkpoint overhead + kill-and-restart) instead")
		diagRpt   = flag.String("diag", "", "run the coupling-aware diagnosis suite (straggler attribution accuracy, trailer overhead, diag-off zero-alloc) and write the JSON report to this file (e.g. BENCH_PR9.json)")
		ftRpt     = flag.String("ft", "", "run the fault-tolerant-collectives suite (detection/agreement/shrink latency, mid-agreement kill, shrunk zero-alloc) and write the JSON report to this file (e.g. BENCH_PR10.json)")
		flightOut = flag.String("flight-out", "", "with -diag: also write a sample flight-recorder dump to this file (decode with `couplebench coupleflight`)")
		obsvAddr  = flag.String("obsv-addr", "",
			"serve live introspection of the figure run on this address: /metrics, /trace, /statusz, /debug/pprof (enables span tracing)")
		traceJSON = flag.String("trace-json", "",
			"write the figure run's protocol span trace as Chrome trace JSON to this file (enables span tracing)")
	)
	flag.Parse()

	if *bench != "" {
		if err := runBench(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}

	if *overlap != "" {
		if err := runOverlap(*overlap); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}

	if *collcts != "" {
		if err := runCollectives(*collcts); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}

	if *recovery {
		if err := runRecovery(64); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}

	if *diagRpt != "" {
		if err := runDiagBench(*diagRpt, *flightOut); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}

	if *ftRpt != "" {
		if err := runFT(*ftRpt); err != nil {
			fmt.Fprintln(os.Stderr, "couplebench:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*figure, *gridN, *exports, *every, *tol, *buddy, *runs, *fast, *slow, *uwork, *csvPath, *svgPath, *tub, *onset, *syncImp, *ratio, *latsw, *obsvAddr, *traceJSON); err != nil {
		fmt.Fprintln(os.Stderr, "couplebench:", err)
		os.Exit(1)
	}
}

func baseConfig(procs, gridN, exports, every int, tol float64, buddy bool, runs int, fast, slow, uwork time.Duration, syncImp bool) harness.Figure4Config {
	cfg := harness.DefaultFigure4(procs)
	cfg.SyncImporter = syncImp
	cfg.GridN = gridN
	cfg.Exports = exports
	cfg.MatchEvery = every
	cfg.Tolerance = tol
	cfg.BuddyHelp = buddy
	cfg.Runs = runs
	cfg.FastWork = fast
	cfg.SlowWork = slow
	cfg.ImporterWork = uwork
	return cfg
}

func run(figure string, gridN, exports, every int, tol float64, buddy bool, runs int,
	fast, slow, uwork time.Duration, csvPath, svgPath string, tub bool, onset string, syncImp bool, ratio, latsw string,
	obsvAddr, traceJSON string) error {

	var obs *obsv.Observer
	if obsvAddr != "" || traceJSON != "" {
		obs = obsv.New(obsv.Config{Tracing: true})
	}
	if obsvAddr != "" {
		srv, err := obsv.Serve(obsvAddr, obs)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s (/metrics /trace /statusz /debug/pprof)\n", srv.Addr())
	}

	mk := func(procs int) harness.Figure4Config {
		cfg := baseConfig(procs, gridN, exports, every, tol, buddy, runs, fast, slow, uwork, syncImp)
		cfg.Obsv = obs
		return cfg
	}

	if latsw != "" {
		var lats []time.Duration
		for _, s := range strings.Split(latsw, ",") {
			s = strings.TrimSpace(s)
			if s == "0" {
				lats = append(lats, 0)
				continue
			}
			d, err := time.ParseDuration(s)
			if err != nil {
				return fmt.Errorf("bad -latsweep entry %q", s)
			}
			lats = append(lats, d)
		}
		points, err := harness.RunLatencySweep(mk(figureProcs["d"]), lats)
		if err != nil {
			return err
		}
		fmt.Println("network-latency ablation (buddy-help saving vs one-way latency):")
		fmt.Printf("%-10s %-14s %-16s %s\n", "latency", "memcpys(on)", "memcpys(off)", "saved")
		for _, pt := range points {
			fmt.Printf("%-10v %-14d %-16d %d\n", pt.Latency, pt.CopiesWith, pt.CopiesWithout, pt.Saved)
		}
		return nil
	}

	if ratio != "" {
		var tols []float64
		for _, s := range strings.Split(ratio, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -ratio entry %q", s)
			}
			tols = append(tols, v)
		}
		points, err := harness.RunRatioSweep(mk(figureProcs["d"]), tols)
		if err != nil {
			return err
		}
		fmt.Println("tolerance-ratio sweep (buddy-help saving vs region size / request spacing):")
		fmt.Printf("%-10s %-8s %-14s %-16s %-12s %s\n", "tolerance", "ratio", "memcpys(on)", "memcpys(off)", "saved", "T_ub(off)")
		for _, pt := range points {
			fmt.Printf("%-10g %-8.3g %-14d %-16d %-12.1f%% %v\n",
				pt.Tolerance, pt.Ratio, pt.CopiesWith, pt.CopiesWithout,
				100*pt.SavedFraction, pt.TubWithout.Round(time.Microsecond))
		}
		return nil
	}

	if onset != "" {
		var procs []int
		for _, s := range strings.Split(onset, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -onset entry %q", s)
			}
			procs = append(procs, v)
		}
		points, err := harness.RunOptimalStateOnset(mk(procs[0]), procs)
		if err != nil {
			return err
		}
		fmt.Println("optimal-state onset sweep (generalizes Figure 4(c) vs 4(d)):")
		fmt.Printf("%-8s %-12s %-14s %-14s\n", "U procs", "settle iter", "mean export", "tail export")
		for _, pt := range points {
			fmt.Printf("%-8d %-12d %-14v %-14v\n", pt.ImporterProcs, pt.Settle, pt.MeanExport, pt.TailExport)
		}
		return nil
	}

	if tub {
		cfg := mk(figureProcs["d"])
		if figure != "all" {
			if p, ok := figureProcs[figure]; ok {
				cfg = mk(p)
			}
		}
		res, err := harness.RunTub(cfg)
		if err != nil {
			return err
		}
		printTub(res)
		return nil
	}

	var figures []string
	if figure == "all" {
		figures = []string{"a", "b", "c", "d"}
	} else {
		if _, ok := figureProcs[figure]; !ok {
			return fmt.Errorf("unknown figure %q (want a, b, c, d or all)", figure)
		}
		figures = []string{figure}
	}

	var series []*metrics.Series
	for _, f := range figures {
		cfg := mk(figureProcs[f])
		cfg.Name = fmt.Sprintf("fig4%s-U%d", f, cfg.ImporterProcs)
		start := time.Now()
		res, err := harness.RunFigure4(cfg)
		if err != nil {
			return fmt.Errorf("figure 4(%s): %w", f, err)
		}
		printFigure(f, res, time.Since(start))
		series = append(series, res.ExportTimes)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := metrics.WriteCSVMulti(f, series...); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", csvPath)
	}
	if svgPath != "" {
		chart := plot.Chart{
			Title:  "Figure 4: data-export time of the slowest process p_s",
			XLabel: "iteration",
			YLabel: "export time (ms)",
		}
		for _, s := range series {
			ps := plot.Series{Name: s.Name}
			for i := 0; i < s.Len(); i++ {
				ps.X = append(ps.X, float64(i))
				ps.Y = append(ps.Y, float64(s.At(i).Microseconds())/1000)
			}
			chart.Series = append(chart.Series, ps)
		}
		svg, err := chart.SVG()
		if err != nil {
			return err
		}
		if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
	if traceJSON != "" {
		f, err := os.Create(traceJSON)
		if err != nil {
			return err
		}
		if err := obs.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (load in Perfetto or chrome://tracing)\n", traceJSON)
	}
	return nil
}

func printFigure(f string, res *harness.Figure4Result, elapsed time.Duration) {
	s := res.ExportTimes
	st := res.SlowStats
	fmt.Printf("\nFigure 4(%s): importer U with %d processes (%s wall)\n", f, res.Cfg.ImporterProcs, elapsed.Round(time.Millisecond))
	fmt.Printf("  export time of p_s per iteration: %s\n", s.Sparkline(72))
	fmt.Printf("  head(0..%d) %v   tail %v   settle @ iteration %d\n",
		res.Cfg.MatchEvery, s.Window(0, res.Cfg.MatchEvery),
		s.Window(s.Len()-res.Cfg.MatchEvery, s.Len()), res.Settle)
	fmt.Printf("  p_s buffer: %d exports, %d memcpys, %d skips, %d sends, %d unnecessary copies (T_ub %v)\n",
		st.Exports, st.Copies, st.Skips, st.Sends, st.UnnecessaryCopies, st.UnnecessaryTime.Round(time.Microsecond))
	pl := res.SlowPipeline
	fmt.Printf("  p_s data plane: %d jobs, %d data sends, %d flushes, export stall %v, peak queue depth %d\n",
		pl.Jobs, pl.DataSends, pl.Flushes, time.Duration(pl.ExportStallNanos).Round(time.Microsecond), pl.PeakQueueDepth)
	fmt.Printf("  matched %d of %d requests\n", res.Matched, res.Cfg.Exports/res.Cfg.MatchEvery)
	ep, ip := res.ExporterProto, res.ImporterProto
	fmt.Printf("  control plane: F forwarded %d, responses %d, answers %d, buddy %d, data msgs %d; U calls %d\n",
		ep.RequestsForwarded, ep.Responses, ep.AnswersSent, ep.BuddyMessages, ep.DataMessages, ip.ImportCalls)
	fmt.Printf("  peak framework buffer on p_s: %.1f MiB\n", float64(res.PeakBufferedBytes)/(1<<20))
}

func printTub(res *harness.TubResult) {
	fmt.Printf("T_ub ablation (U=%d, %d exports, match every %d):\n",
		res.Cfg.ImporterProcs, res.Cfg.Exports, res.Cfg.MatchEvery)
	row := func(name string, r *harness.Figure4Result) {
		st := r.SlowStats
		fmt.Printf("  %-10s memcpys %-6d skips %-6d unnecessary %-6d T_ub %-12v mean export %v\n",
			name, st.Copies, st.Skips, st.UnnecessaryCopies,
			st.UnnecessaryTime.Round(time.Microsecond), r.ExportTimes.Mean())
	}
	row("buddy on", res.With)
	row("buddy off", res.Without)
	fmt.Printf("  buddy-help saved %d memcpys and %v of unnecessary buffering on p_s\n",
		res.CopiesSaved(), res.UnnecessarySaved().Round(time.Microsecond))
}
