package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
)

// ftReport is the schema of the JSON file -ft writes (BENCH_PR10.json in the
// repository). It snapshots the fault-tolerant-collectives acceptance
// properties — the detection → agreement → shrink pipeline completes in
// bounded time, agreement converges even when a second rank dies during the
// agreement itself, and the shrunk communicator's steady state allocates
// nothing per operation — so CI can verify them without re-deriving.
type ftReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	FT *harness.FTReport `json:"ft"`
}

// runFT runs the fault-tolerance benchmark, writes the JSON report to path,
// and fails loudly if an acceptance gate regressed.
func runFT(path string) error {
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	report := ftReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fmt.Println("fault-tolerant collectives (5 ranks x 8 KiB, rank 2 killed):")
	rep, err := harness.RunFT(harness.FTConfig{})
	if err != nil {
		return err
	}
	report.FT = rep
	fmt.Printf("  %s\n", rep)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// Acceptance gates.
	if lim := 4 * time.Duration(rep.TimeoutNS); rep.TotalNS > lim.Nanoseconds() {
		return fmt.Errorf("end-to-end recovery took %v, want < %v (revocation must spare survivors serial timeouts)",
			time.Duration(rep.TotalNS), lim)
	}
	if !rep.AgreeKillConverged {
		return fmt.Errorf("agreement did not converge on one failed set with a rank dying mid-agreement (decided %v)",
			rep.AgreeKillFailed)
	}
	if len(rep.AgreeKillFailed) != 2 {
		return fmt.Errorf("agreement under a second kill decided %v, want both dead ranks", rep.AgreeKillFailed)
	}
	if rep.SteadyAllocsPerOp > 0.5 {
		return fmt.Errorf("shrunk steady-state AllReduce allocates %.2f per op, want 0", rep.SteadyAllocsPerOp)
	}
	return nil
}
