package main

import (
	"fmt"
	"time"

	"repro/internal/harness"
)

// runRecovery measures the crash-recovery subsystem on the Figure-4-style
// workload: checkpoint overhead on a fault-free run (plain vs checkpointed
// pass) and the kill-and-restart path (importer killed between checkpoints,
// restarted from its last collective-sequence checkpoint, every delivered
// block byte-identical to the fault-free run).
func runRecovery(gridN int) error {
	cfg := harness.DefaultRecovery()
	cfg.GridN = gridN
	cfg.Steps = 60
	cfg.CheckpointEvery = 10
	cfg.CrashAfter = 43 // checkpoint at 40 -> 3 steps re-executed

	res, err := harness.RunRecovery(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("crash recovery on the Figure-4 workload (%dx%d grid, %d steps, checkpoint every %d):\n",
		cfg.GridN, cfg.GridN, cfg.Steps, cfg.CheckpointEvery)
	fmt.Printf("  %-34s %v\n", "fault-free, no checkpoints", res.PlainElapsed.Round(time.Millisecond))
	fmt.Printf("  %-34s %v (overhead %+.1f%%)\n", "fault-free, checkpointed",
		res.CkptElapsed.Round(time.Millisecond), 100*res.Overhead())
	fmt.Printf("  %-34s %d checkpoints, %v driver time on rank 0\n", "checkpoint cost",
		res.Checkpoints, res.CheckpointTime.Round(time.Microsecond))
	fmt.Printf("  %-34s %v\n", "kill + restart pass", res.CrashElapsed.Round(time.Millisecond))
	fmt.Printf("  %-34s %v (restore + rejoin + %d steps replayed)\n", "recovery latency",
		res.RestartTime.Round(time.Millisecond), res.Replayed)
	fmt.Println("  every delivered block byte-identical to the fault-free run (verified)")
	return nil
}
