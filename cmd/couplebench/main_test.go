package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/testutil"
)

// smoke exercises each couplebench mode at a tiny scale.
func TestRunModes(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	svg := filepath.Join(t.TempDir(), "out.svg")
	fast, slow := 50*time.Microsecond, 200*time.Microsecond
	uwork := 2 * time.Millisecond

	if err := run("a", 16, 41, 20, 2.5, true, 1, fast, slow, uwork, csv, svg, false, "", false, "", "", "", ""); err != nil {
		t.Fatalf("figure a: %v", err)
	}
	if err := run("all", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", false, "", false, "", "", "", ""); err != nil {
		t.Fatalf("figure all: %v", err)
	}
	if err := run("c", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", true, "", false, "", "", "", ""); err != nil {
		t.Fatalf("tub: %v", err)
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", false, "2,4", false, "", "", "", ""); err != nil {
		t.Fatalf("onset: %v", err)
	}
	if err := run("", 64, 41, 20, 0, true, 1, fast, slow, uwork, "", "", false, "", false, "1,5", "", "", ""); err != nil {
		t.Fatalf("ratio: %v", err)
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", false, "", false, "", "0,1ms", "", ""); err != nil {
		t.Fatalf("latsweep: %v", err)
	}
}

// TestRunObservability runs one tiny figure with the introspection server
// and span tracing on, and checks the trace artifact is valid Chrome trace
// JSON and that the server and trace rings leak no goroutines.
func TestRunObservability(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	tr := filepath.Join(t.TempDir(), "trace.json")
	fast, slow := 50*time.Microsecond, 200*time.Microsecond
	if err := run("a", 16, 41, 20, 2.5, true, 1, fast, slow, 2*time.Millisecond,
		"", "", false, "", false, "", "", "127.0.0.1:0", tr); err != nil {
		t.Fatalf("figure a with observability: %v", err)
	}
	b, err := os.ReadFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace artifact does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace artifact has no events")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("z", 16, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "", false, "", "", "", ""); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "x", false, "", "", "", ""); err == nil {
		t.Error("bad onset accepted")
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "", false, "y", "", "", ""); err == nil {
		t.Error("bad ratio accepted")
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "", false, "", "zz", "", ""); err == nil {
		t.Error("bad latsweep accepted")
	}
}
