package main

import (
	"path/filepath"
	"testing"
	"time"
)

// smoke exercises each couplebench mode at a tiny scale.
func TestRunModes(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	svg := filepath.Join(t.TempDir(), "out.svg")
	fast, slow := 50*time.Microsecond, 200*time.Microsecond
	uwork := 2 * time.Millisecond

	if err := run("a", 16, 41, 20, 2.5, true, 1, fast, slow, uwork, csv, svg, false, "", false, "", ""); err != nil {
		t.Fatalf("figure a: %v", err)
	}
	if err := run("all", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", false, "", false, "", ""); err != nil {
		t.Fatalf("figure all: %v", err)
	}
	if err := run("c", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", true, "", false, "", ""); err != nil {
		t.Fatalf("tub: %v", err)
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", false, "2,4", false, "", ""); err != nil {
		t.Fatalf("onset: %v", err)
	}
	if err := run("", 64, 41, 20, 0, true, 1, fast, slow, uwork, "", "", false, "", false, "1,5", ""); err != nil {
		t.Fatalf("ratio: %v", err)
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, fast, slow, uwork, "", "", false, "", false, "", "0,1ms"); err != nil {
		t.Fatalf("latsweep: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("z", 16, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "", false, "", ""); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "x", false, "", ""); err == nil {
		t.Error("bad onset accepted")
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "", false, "y", ""); err == nil {
		t.Error("bad ratio accepted")
	}
	if err := run("", 64, 41, 20, 2.5, true, 1, 0, 0, 0, "", "", false, "", false, "", "zz"); err == nil {
		t.Error("bad latsweep accepted")
	}
}
