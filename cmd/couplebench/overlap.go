package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
)

// overlapReport is the schema of the JSON file -overlap writes
// (BENCH_PR3.json in the repository). It snapshots the slow-importer overlap
// scenario — synchronous versus asynchronous data plane — so CI can verify
// the headline property: the async exporter's per-iteration wall time is at
// most 60% of the synchronous baseline, with byte-identical match results
// and import contents.
type overlapReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Scenario overlapScenario `json:"scenario"`
	// Headline is the checked-in acceptance scenario; Sweep repeats the
	// comparison at further send-cost settings (the EXPERIMENTS.md table).
	Headline overlapPoint   `json:"headline"`
	Sweep    []overlapPoint `json:"send_cost_sweep"`
}

type overlapScenario struct {
	GridN         int    `json:"grid_n"`
	ExporterProcs int    `json:"exporter_procs"`
	ImporterProcs int    `json:"importer_procs"`
	Exports       int    `json:"exports"`
	ComputeUS     int64  `json:"compute_us"`
	SendCostUS    int64  `json:"send_cost_us"`
	Policy        string `json:"policy"`
}

type overlapPoint struct {
	SendCostUS    int64   `json:"send_cost_us"`
	SyncIterUS    float64 `json:"sync_iter_us"`
	AsyncIterUS   float64 `json:"async_iter_us"`
	Ratio         float64 `json:"async_over_sync"`
	AsyncDrainUS  float64 `json:"async_drain_us"`
	AsyncStallUS  float64 `json:"async_stall_us"`
	PeakQueue     int     `json:"async_peak_queue_depth"`
	PipelineJobs  uint64  `json:"async_pipeline_jobs"`
	DataSends     uint64  `json:"async_data_sends"`
	Matched       int     `json:"matched_requests"`
	Identical     bool    `json:"results_identical"`
	SyncChecksum  float64 `json:"sync_checksum"`
	AsyncChecksum float64 `json:"async_checksum"`
}

func toOverlapPoint(cmp *harness.OverlapComparison) overlapPoint {
	return overlapPoint{
		SendCostUS:    cmp.Config.SendCost.Microseconds(),
		SyncIterUS:    float64(cmp.Sync.IterNanos) / 1e3,
		AsyncIterUS:   float64(cmp.Async.IterNanos) / 1e3,
		Ratio:         cmp.Ratio(),
		AsyncDrainUS:  float64(cmp.Async.DrainNanos) / 1e3,
		AsyncStallUS:  float64(cmp.Async.Pipeline.ExportStallNanos) / 1e3,
		PeakQueue:     cmp.Async.Pipeline.PeakQueueDepth,
		PipelineJobs:  cmp.Async.Pipeline.Jobs,
		DataSends:     cmp.Async.Pipeline.DataSends,
		Matched:       cmp.Sync.Matched,
		Identical:     cmp.Identical(),
		SyncChecksum:  cmp.Sync.Checksum,
		AsyncChecksum: cmp.Async.Checksum,
	}
}

// runOverlap runs the overlap comparison suite and writes the JSON report.
func runOverlap(path string) error {
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	base := harness.DefaultOverlap()
	report := overlapReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scenario: overlapScenario{
			GridN:         base.GridN,
			ExporterProcs: base.ExporterProcs,
			ImporterProcs: base.ImporterProcs,
			Exports:       base.Exports,
			ComputeUS:     base.Compute.Microseconds(),
			SendCostUS:    base.SendCost.Microseconds(),
			Policy:        "REGL 2.5",
		},
	}

	fmt.Println("export overlap comparison (sync vs async data plane, slow-importer scenario):")
	fmt.Printf("  %-12s %-14s %-14s %-8s %-12s %s\n",
		"send cost", "sync iter", "async iter", "ratio", "async drain", "identical")
	row := func(pt overlapPoint) {
		fmt.Printf("  %-12s %-14s %-14s %-8.2f %-12s %v\n",
			time.Duration(pt.SendCostUS)*time.Microsecond,
			fmt.Sprintf("%.2fms", pt.SyncIterUS/1e3),
			fmt.Sprintf("%.2fms", pt.AsyncIterUS/1e3),
			pt.Ratio,
			fmt.Sprintf("%.2fms", pt.AsyncDrainUS/1e3),
			pt.Identical)
	}

	cmp, err := harness.RunOverlapComparison(base)
	if err != nil {
		return err
	}
	report.Headline = toOverlapPoint(cmp)
	row(report.Headline)

	for _, cost := range []time.Duration{500 * time.Microsecond, 3 * time.Millisecond} {
		cfg := base
		cfg.SendCost = cost
		cmp, err := harness.RunOverlapComparison(cfg)
		if err != nil {
			return err
		}
		pt := toOverlapPoint(cmp)
		report.Sweep = append(report.Sweep, pt)
		row(pt)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	// The headline acceptance properties, checked here so a -overlap run
	// (and the CI step wrapping it) fails loudly instead of silently
	// recording a regression in the report.
	if !report.Headline.Identical {
		return fmt.Errorf("async data plane diverged from the synchronous baseline (matched %d, checksums %v vs %v)",
			report.Headline.Matched, report.Headline.SyncChecksum, report.Headline.AsyncChecksum)
	}
	if r := report.Headline.Ratio; r > 0.6 {
		return fmt.Errorf("async/sync exporter iteration ratio %.2f exceeds the 0.6 acceptance bound", r)
	}
	return nil
}
