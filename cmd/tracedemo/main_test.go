package main

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestScenarioOutputs pins the demo's data source: every figure renders a
// non-empty, paper-style trace.
func TestScenarioOutputs(t *testing.T) {
	for _, fig := range []string{"5", "7", "8"} {
		sc, err := harness.RunScenario(fig)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		text := sc.Log.Format()
		if !strings.Contains(text, "memcpy") {
			t.Errorf("figure %s trace lacks memcpy lines:\n%s", fig, text)
		}
		if sc.Stats.Exports == 0 {
			t.Errorf("figure %s ran no exports", fig)
		}
	}
}
