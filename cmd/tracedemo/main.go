// Command tracedemo regenerates the paper's line-by-line scenario figures
// (Figure 5: a typical buddy-help run; Figure 7: with buddy-help at
// tolerance 5.0; Figure 8: the same without buddy-help) by replaying the
// exact export/request/buddy-help sequences against the framework's export
// pipeline and printing the recorded trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	figure := flag.String("figure", "all", "figure to replay: 5, 7, 8 or all")
	flag.Parse()

	figures := []string{"5", "7", "8"}
	if *figure != "all" {
		figures = []string{*figure}
	}
	for _, f := range figures {
		sc, err := harness.RunScenario(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedemo:", err)
			os.Exit(1)
		}
		fmt.Printf("=== Figure %s ===\n", sc.Figure)
		fmt.Println(sc.Log.Format())
		st := sc.Stats
		fmt.Printf("--- %d exports: %d memcpys, %d skips, %d sends, %d unnecessary copies (T_ub %v)\n\n",
			st.Exports, st.Copies, st.Skips, st.Sends, st.UnnecessaryCopies,
			st.UnnecessaryTime.Round(time.Nanosecond))
	}
}
