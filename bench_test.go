// Package repro's root benchmark suite regenerates the paper's evaluation:
// one benchmark per figure (Figure 4(a)-(d) export-time series, the Figure
// 5/7/8 scenario replays, the T_ub ablation of Equations (1)-(2)) plus
// microbenchmarks of every substrate the system is built from. Run with
//
//	go test -bench=. -benchmem
//
// Figure-4 benchmarks are scaled down by default; set -figfull to run the
// paper-sized 1001-export configurations (seconds per run).
package repro

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/collective"
	"repro/internal/decomp"
	"repro/internal/harness"
	"repro/internal/match"
	"repro/internal/rep"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

var figFull = flag.Bool("figfull", false, "run paper-sized Figure 4 benchmarks (1001 exports)")

// figure4Cfg builds the benchmark configuration for an importer of n procs.
func figure4Cfg(n int) harness.Figure4Config {
	cfg := harness.DefaultFigure4(n)
	if !*figFull {
		// Scaled: same regimes, ~20x shorter.
		cfg.GridN = 64
		cfg.Exports = 201
		cfg.FastWork = 100 * time.Microsecond
		cfg.SlowWork = 500 * time.Microsecond
		// Keep the paper's regime boundaries relative to p_s's 10ms cycle
		// (MatchEvery * SlowWork): U=4/8 at 30ms per process (slower than
		// F), U=16 just below 10ms, U=32 far below.
		switch {
		case n <= 8:
			cfg.ImporterWork = time.Duration(n) * 30 * time.Millisecond
		case n == 16:
			cfg.ImporterWork = 150 * time.Millisecond // 9.4ms per process
		default:
			cfg.ImporterWork = 75 * time.Millisecond // 2.3ms per process
		}
	}
	return cfg
}

// benchFigure4 runs one Figure-4 configuration per benchmark iteration and
// reports the paper's quantities as custom metrics.
func benchFigure4(b *testing.B, n int) {
	b.ReportAllocs()
	var res *harness.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFigure4(figure4Cfg(n))
		if err != nil {
			b.Fatal(err)
		}
	}
	s := res.ExportTimes
	b.ReportMetric(float64(s.Mean().Nanoseconds()), "export-ns/iter")
	b.ReportMetric(float64(s.Window(s.Len()-res.Cfg.MatchEvery, s.Len()).Nanoseconds()), "tail-export-ns")
	b.ReportMetric(float64(res.Settle), "settle-iter")
	b.ReportMetric(float64(res.SlowStats.Copies), "memcpys")
	b.ReportMetric(float64(res.SlowStats.Skips), "skips")
}

// BenchmarkFigure4a: importer U with 4 processes (paper Figure 4(a): U
// slower than F, flat export time, everything buffered).
func BenchmarkFigure4a(b *testing.B) { benchFigure4(b, 4) }

// BenchmarkFigure4b: U with 8 processes (Figure 4(b): still slower than F).
func BenchmarkFigure4b(b *testing.B) { benchFigure4(b, 8) }

// BenchmarkFigure4c: U with 16 processes (Figure 4(c): U catches up,
// buddy-help gradually reaches the optimal state).
func BenchmarkFigure4c(b *testing.B) { benchFigure4(b, 16) }

// BenchmarkFigure4d: U with 32 processes (Figure 4(d): optimal state almost
// immediately).
func BenchmarkFigure4d(b *testing.B) { benchFigure4(b, 32) }

// BenchmarkTub reproduces the Equations (1)-(2) ablation: identical workload
// with buddy-help on vs off; the metric of interest is the memcpys and T_ub
// removed from the slow process.
func BenchmarkTub(b *testing.B) {
	var res *harness.TubResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunTub(figure4Cfg(16))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CopiesSaved()), "memcpys-saved")
	b.ReportMetric(float64(res.UnnecessarySaved().Nanoseconds()), "tub-saved-ns")
	b.ReportMetric(float64(res.Without.SlowStats.UnnecessaryTime.Nanoseconds()), "tub-off-ns")
	b.ReportMetric(float64(res.With.SlowStats.UnnecessaryTime.Nanoseconds()), "tub-on-ns")
}

// BenchmarkOptimalStateOnset sweeps the importer size (generalizing the
// Figure 4(c)-vs-4(d) settle-iteration comparison).
func BenchmarkOptimalStateOnset(b *testing.B) {
	var points []harness.OnsetPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = harness.RunOptimalStateOnset(figure4Cfg(16), []int{8, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		b.ReportMetric(float64(pt.Settle), fmt.Sprintf("settle-U%d", pt.ImporterProcs))
	}
}

// BenchmarkExportOverlap runs the slow-importer overlap scenario (every
// export matched and redistributed through a transport that charges a fixed
// cost per bulk-data send) once per iteration, on both data planes, and
// reports the exporter's per-iteration wall time for each. The async plane's
// sender goroutines absorb the send cost, so async-iter-ns should track the
// compute period while sync-iter-ns carries compute + sends. The checked-in
// acceptance numbers come from couplebench -overlap (BENCH_PR3.json); this
// benchmark keeps the comparison runnable via go test -bench.
func BenchmarkExportOverlap(b *testing.B) {
	cfg := harness.DefaultOverlap()
	cfg.Exports = 20
	cfg.Compute = time.Millisecond
	cfg.SendCost = time.Millisecond
	var cmp *harness.OverlapComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = harness.RunOverlapComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.Identical() {
			b.Fatalf("async plane diverged from sync baseline: %s", cmp)
		}
	}
	b.ReportMetric(float64(cmp.Sync.IterNanos), "sync-iter-ns")
	b.ReportMetric(float64(cmp.Async.IterNanos), "async-iter-ns")
	b.ReportMetric(cmp.Ratio(), "async/sync")
	b.ReportMetric(float64(cmp.Async.Pipeline.ExportStallNanos), "stall-ns")
	b.ReportMetric(float64(cmp.Async.Pipeline.PeakQueueDepth), "peak-queue")
}

// Scenario benchmarks: Figures 5, 7 and 8 replayed per iteration (the cost
// of the full export-pipeline state machine on the paper's exact traces).
func BenchmarkScenarioFigure5(b *testing.B) { benchScenario(b, "5") }

// BenchmarkScenarioFigure7 replays Figure 7 (with buddy-help).
func BenchmarkScenarioFigure7(b *testing.B) { benchScenario(b, "7") }

// BenchmarkScenarioFigure8 replays Figure 8 (without buddy-help).
func BenchmarkScenarioFigure8(b *testing.B) { benchScenario(b, "8") }

func benchScenario(b *testing.B, fig string) {
	b.ReportAllocs()
	var sc *harness.Scenario
	for i := 0; i < b.N; i++ {
		var err error
		sc, err = harness.RunScenario(fig)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sc.Stats.Copies), "memcpys")
	b.ReportMetric(float64(sc.Stats.Skips), "skips")
}

// --- substrate microbenchmarks ---

// BenchmarkMatchEvaluate measures the approximate-matching decision on a
// realistic export history.
func BenchmarkMatchEvaluate(b *testing.B) {
	exports := make([]float64, 1000)
	for i := range exports {
		exports[i] = float64(i) + 0.6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := match.Evaluate(match.REGL, 2.5, float64(i%900)+20, exports)
		if d.Result == match.Pending && i%900 < 800 {
			b.Fatal("unexpected pending")
		}
	}
}

// BenchmarkBufferOfferCopy measures the buffered-export path (the memcpy the
// paper's Figure 4 measures), for the paper's per-process block size
// (512x512 float64 = 2 MiB).
func BenchmarkBufferOfferCopy(b *testing.B) {
	data := make([]float64, 512*512)
	m, err := buffer.NewManager(buffer.Config{Policy: match.REGL, Tol: 2.5})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Offer(float64(i)+0.5, data)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Buffered {
			b.Fatal("expected buffering")
		}
		b.StopTimer()
		// Free the buffer by moving the request horizon past everything.
		if _, err := m.OnRequest(float64(i) + 0.8); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBufferOfferSkip measures the skipped-export path buddy-help
// enables: no copy at all.
func BenchmarkBufferOfferSkip(b *testing.B) {
	data := make([]float64, 512*512)
	m, err := buffer.NewManager(buffer.Config{Policy: match.REGL, Tol: 2.5})
	if err != nil {
		b.Fatal(err)
	}
	// A decided request far in the future makes small timestamps skippable.
	res, err := m.OnRequest(1e12)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.OnFinal(res.ReqIndex, match.Match, 1e12-0.25); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := m.Offer(float64(i)+0.5, data)
		if err != nil {
			b.Fatal(err)
		}
		if r.Buffered {
			b.Fatal("expected skip")
		}
	}
}

// BenchmarkStoreSteadyState measures the pooled export hot path at steady
// state: after warm-up every buffered copy reuses a pool slice and a
// recycled Entry, so the timed path must report 0 allocs/op (the body
// fails the benchmark on any pool miss). Shared with couplebench -bench,
// which records the result in BENCH_PR2.json.
func BenchmarkStoreSteadyState(b *testing.B) {
	harness.StoreSteadyStateBench(b, 512*512)
}

// BenchmarkObsvOverhead prices the observability layer on the data plane's
// per-job instrument sequence. The disabled variant is the default
// production path (atomic counters plus one nil ring check) and must stay
// within noise of the pre-registry pipeline counters; the traced variant
// adds the lock-free span record. Shared with couplebench -bench.
func BenchmarkObsvOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { harness.ObsvOverheadBench(b, false) })
	b.Run("traced", func(b *testing.B) { harness.ObsvOverheadBench(b, true) })
}

// BenchmarkFrameRoundTrip measures the zero-copy binary wire codec of the
// TCP transport (encode into a reused buffer, decode with a warm interner).
func BenchmarkFrameRoundTrip(b *testing.B) {
	harness.FrameRoundTripBench(b)
}

// BenchmarkRepRoundTripCoalesced measures a rep-to-rep request/answer round
// trip through the coalescing transport with a window of outstanding
// requests (batches fill by count, as in the protocol's fan-out stages).
func BenchmarkRepRoundTripCoalesced(b *testing.B) {
	harness.RepRoundTripBench(b)
}

// BenchmarkTransportMem measures in-memory message round trips.
func BenchmarkTransportMem(b *testing.B) {
	net := transport.NewMemNetwork()
	defer net.Close()
	a, _ := net.Register(transport.Proc("B", 0))
	c, _ := net.Register(transport.Proc("B", 1))
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m.Kind == transport.KindControl {
				return
			}
			c.Send(transport.Message{Kind: transport.KindPoint, Dst: a.Addr()})
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(transport.Message{Kind: transport.KindPoint, Dst: c.Addr(), Payload: payload})
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	a.Send(transport.Message{Kind: transport.KindControl, Dst: c.Addr()})
	<-done
}

// BenchmarkTransportTCP measures localhost TCP round trips through the
// router (the framework's wide-area substrate).
func BenchmarkTransportTCP(b *testing.B) {
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()
	net := transport.NewTCPNetwork(router.ListenAddr())
	defer net.Close()
	a, err := net.Register(transport.Proc("B", 0))
	if err != nil {
		b.Fatal(err)
	}
	c, err := net.Register(transport.Proc("B", 1))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m.Kind == transport.KindControl {
				return
			}
			c.Send(transport.Message{Kind: transport.KindPoint, Dst: a.Addr()})
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(transport.Message{Kind: transport.KindPoint, Dst: c.Addr(), Payload: payload})
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	a.Send(transport.Message{Kind: transport.KindControl, Dst: c.Addr()})
	<-done
}

// BenchmarkCollectiveAllReduce measures a 8-process allreduce.
func BenchmarkCollectiveAllReduce(b *testing.B) {
	const n = 8
	net := transport.NewMemNetwork()
	defer net.Close()
	comms := make([]*collective.Comm, n)
	for r := 0; r < n; r++ {
		ep, _ := net.Register(transport.Proc("B", r))
		comms[r], _ = collective.New(transport.NewDispatcher(ep), "B", r, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if _, err := comms[r].AllReduceScalar(float64(r), collective.Sum); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkCollectiveAllReduceLarge compares the two large-vector AllReduce
// algorithms head to head at 1 MiB per rank on an 8-rank group (the
// bandwidth-bound regime where the ring's ~2x-per-rank traffic beats
// recursive doubling's log2(n)x). One benchmark op is one full group
// operation; with buffer reuse on, both report 0 allocs/op at steady state.
// Shared with couplebench -collectives, which records the numbers and the
// >=2x speedup gate in BENCH_PR8.json.
func BenchmarkCollectiveAllReduceLarge(b *testing.B) {
	const ranks, vecLen = 8, 1 << 17
	b.Run("rd", func(b *testing.B) {
		harness.CollectiveAllReduceBench(b, ranks, vecLen, collective.RecursiveDoubling)
	})
	b.Run("ring", func(b *testing.B) {
		harness.CollectiveAllReduceBench(b, ranks, vecLen, collective.Ring)
	})
}

// BenchmarkCollectiveAllReduceSteady is the zero-allocation hot path: 8 KiB
// vectors, buffer reuse on, algorithm chosen by the dispatch table.
func BenchmarkCollectiveAllReduceSteady(b *testing.B) {
	harness.CollectiveAllReduceBench(b, 8, 1024, collective.Auto)
}

// BenchmarkRedistribution measures an MxN redistribution (2x2 blocks to 8
// row bands of a 512x512 array) through Pack/Unpack.
func BenchmarkRedistribution(b *testing.B) {
	src, _ := decomp.NewBlock2D(512, 512, 2, 2)
	dst, _ := decomp.NewRowBlock(512, 512, 8)
	plan, err := decomp.FullSchedule(src, dst)
	if err != nil {
		b.Fatal(err)
	}
	srcGrids := make([]*decomp.Grid, src.Procs())
	for p := range srcGrids {
		srcGrids[p] = decomp.NewGridFor(src, p)
	}
	dstGrids := make([]*decomp.Grid, dst.Procs())
	for p := range dstGrids {
		dstGrids[p] = decomp.NewGridFor(dst, p)
	}
	b.SetBytes(512 * 512 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range plan {
			buf, err := srcGrids[tr.From].Pack(tr.Sub)
			if err != nil {
				b.Fatal(err)
			}
			if err := dstGrids[tr.To].Unpack(tr.Sub, buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkScheduleComputation measures computing a 4->32 process
// redistribution plan for the paper's 1024x1024 array.
func BenchmarkScheduleComputation(b *testing.B) {
	src, _ := decomp.NewBlock2D(1024, 1024, 2, 2)
	dst, _ := decomp.NewRowBlock(1024, 1024, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decomp.FullSchedule(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveStep measures one leapfrog step on a 256x256 grid (the
// importer program's computation).
func BenchmarkWaveStep(b *testing.B) {
	l, _ := decomp.NewRowBlock(256, 256, 1)
	s, err := sim.NewWaveSolver(nil, l, 0, -1)
	if err != nil {
		b.Fatal(err)
	}
	s.SetInitial(func(x, y float64) float64 { return x * y }, func(x, y float64) float64 { return 0 })
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveStepOverlapped measures the split-phase halo-overlap step on
// a 2-process 256x256 solve, against BenchmarkWaveStep's blocking exchange
// (the non-blocking-transfer style the paper's conclusion points to).
func BenchmarkWaveStepOverlapped(b *testing.B) {
	const n, p = 256, 2
	net := transport.NewMemNetwork()
	defer net.Close()
	l, _ := decomp.NewRowBlock(n, n, p)
	solvers := make([]*sim.WaveSolver, p)
	for r := 0; r < p; r++ {
		ep, _ := net.Register(transport.Proc("W", r))
		comm, _ := collective.New(transport.NewDispatcher(ep), "W", r, p)
		s, err := sim.NewWaveSolver(comm, l, r, -1)
		if err != nil {
			b.Fatal(err)
		}
		s.SetInitial(func(x, y float64) float64 { return x * y }, func(x, y float64) float64 { return 0 })
		solvers[r] = s
	}
	b.SetBytes(n * n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if err := solvers[r].StepOverlapped(); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkFiniteBuffer measures the buffered path under a finite capacity
// with recycling (the paper's future-work item on finite buffer space).
func BenchmarkFiniteBuffer(b *testing.B) {
	data := make([]float64, 64*1024)
	m, err := buffer.NewManager(buffer.Config{
		Policy:   match.REGL,
		Tol:      0.25,
		MaxBytes: int64(8 * len(data) * 4),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Offer(float64(i)+0.5, data); err != nil {
			b.Fatal(err)
		}
		// Advance the request horizon to keep the live set bounded.
		if _, err := m.OnRequest(float64(i) + 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForcingSample measures sampling the forcing field f(t,x,y) on a
// 512x512 block (program F's computation).
func BenchmarkForcingSample(b *testing.B) {
	l, _ := decomp.NewBlock2D(1024, 1024, 2, 2)
	f := sim.NewField(l, 0, sim.PulseForcing)
	dst := make([]float64, f.Block.Area())
	b.SetBytes(int64(8 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Sample(float64(i), dst)
	}
}

// BenchmarkWireFloat64s measures the bulk float codec.
func BenchmarkWireFloat64s(b *testing.B) {
	vals := make([]float64, 64*1024)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodeFloat64s(vals)
		if _, err := wire.DecodeFloat64s(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepAggregation measures the rep's response aggregation for a
// 32-process program (31 PENDING responses plus one decisive MATCH).
func BenchmarkRepAggregation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rep.NewRequest(20, 32)
		for rank := 0; rank < 31; rank++ {
			if _, err := r.Add(rep.Response{Rank: rank, Result: match.Pending}); err != nil {
				b.Fatal(err)
			}
		}
		ans, err := r.Add(rep.Response{Rank: 31, Result: match.Match, MatchTS: 19.6})
		if err != nil || ans == nil {
			b.Fatal("no answer")
		}
		if len(ans.BuddyRanks) != 31 {
			b.Fatal("wrong buddy ranks")
		}
	}
}
