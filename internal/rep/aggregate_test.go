package rep

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/match"
)

func mustAdd(t *testing.T, r *Request, resp Response) *Answer {
	t.Helper()
	ans, err := r.Add(resp)
	if err != nil {
		t.Fatalf("Add(%+v): %v", resp, err)
	}
	return ans
}

func TestAllMatch(t *testing.T) {
	r := NewRequest(20, 4)
	var final *Answer
	for rank := 0; rank < 4; rank++ {
		final = mustAdd(t, r, Response{Rank: rank, Result: match.Match, MatchTS: 19.6})
		if rank < 3 && final != nil {
			t.Fatalf("answer formed after %d of 4 responses", rank+1)
		}
	}
	if final == nil || final.Result != match.Match || final.MatchTS != 19.6 {
		t.Fatalf("final %+v", final)
	}
	if len(final.BuddyRanks) != 0 {
		t.Errorf("buddy ranks %v for all-MATCH", final.BuddyRanks)
	}
	if !r.Decided() {
		t.Error("not decided")
	}
}

func TestAllNoMatch(t *testing.T) {
	r := NewRequest(20, 3)
	mustAdd(t, r, Response{Rank: 0, Result: match.NoMatch})
	mustAdd(t, r, Response{Rank: 2, Result: match.NoMatch})
	final := mustAdd(t, r, Response{Rank: 1, Result: match.NoMatch})
	if final == nil || final.Result != match.NoMatch || len(final.BuddyRanks) != 0 {
		t.Fatalf("final %+v", final)
	}
}

func TestAllPendingThenUpdates(t *testing.T) {
	r := NewRequest(20, 3)
	for rank := 0; rank < 3; rank++ {
		if ans := mustAdd(t, r, Response{Rank: rank, Result: match.Pending, Latest: 14.6}); ans != nil {
			t.Fatal("answer from all-PENDING")
		}
	}
	if r.Decided() {
		t.Fatal("decided while all pending")
	}
	// Rank 1 advances and re-responds with MATCH.
	final := mustAdd(t, r, Response{Rank: 1, Result: match.Match, MatchTS: 19.6})
	if final == nil || final.Result != match.Match {
		t.Fatalf("final %+v", final)
	}
	if !reflect.DeepEqual(final.BuddyRanks, []int{0, 2}) {
		t.Errorf("buddy ranks %v, want [0 2]", final.BuddyRanks)
	}
}

func TestPendingMatchMixture(t *testing.T) {
	// The paper's key legal mixture: the fastest process answers MATCH, the
	// slow ones PENDING; the collective answer is MATCH and the pending
	// processes get buddy-help.
	r := NewRequest(20, 4)
	mustAdd(t, r, Response{Rank: 3, Result: match.Match, MatchTS: 19.6})
	mustAdd(t, r, Response{Rank: 0, Result: match.Pending})
	mustAdd(t, r, Response{Rank: 1, Result: match.Pending})
	final := mustAdd(t, r, Response{Rank: 2, Result: match.Pending})
	if final == nil || final.Result != match.Match || final.MatchTS != 19.6 {
		t.Fatalf("final %+v", final)
	}
	if !reflect.DeepEqual(final.BuddyRanks, []int{0, 1, 2}) {
		t.Errorf("buddy ranks %v", final.BuddyRanks)
	}
}

func TestPendingNoMatchMixture(t *testing.T) {
	r := NewRequest(20, 2)
	mustAdd(t, r, Response{Rank: 0, Result: match.Pending})
	final := mustAdd(t, r, Response{Rank: 1, Result: match.NoMatch})
	if final == nil || final.Result != match.NoMatch {
		t.Fatalf("final %+v", final)
	}
	if !reflect.DeepEqual(final.BuddyRanks, []int{0}) {
		t.Errorf("buddy ranks %v", final.BuddyRanks)
	}
}

func TestMatchNoMatchMixtureIsViolation(t *testing.T) {
	r := NewRequest(20, 2)
	mustAdd(t, r, Response{Rank: 0, Result: match.Match, MatchTS: 19.6})
	_, err := r.Add(Response{Rank: 1, Result: match.NoMatch})
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want ViolationError", err)
	}
}

func TestDisagreeingMatchTimestampsIsViolation(t *testing.T) {
	r := NewRequest(20, 3)
	mustAdd(t, r, Response{Rank: 0, Result: match.Match, MatchTS: 19.6})
	_, err := r.Add(Response{Rank: 1, Result: match.Match, MatchTS: 18.6})
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want ViolationError", err)
	}
}

func TestLateDecisiveMustAgree(t *testing.T) {
	r := NewRequest(20, 2)
	mustAdd(t, r, Response{Rank: 0, Result: match.Match, MatchTS: 19.6})
	final := mustAdd(t, r, Response{Rank: 1, Result: match.Pending})
	if final == nil {
		t.Fatal("no final")
	}
	// Rank 1 later decides consistently: fine.
	if _, err := r.Add(Response{Rank: 1, Result: match.Match, MatchTS: 19.6}); err != nil {
		t.Fatalf("consistent late answer rejected: %v", err)
	}
	// A second late answer flipping is a violation.
	if _, err := r.Add(Response{Rank: 1, Result: match.NoMatch}); err == nil {
		t.Error("flipped late answer accepted")
	}
}

func TestLateDecisiveDisagreeingViolation(t *testing.T) {
	r := NewRequest(20, 2)
	mustAdd(t, r, Response{Rank: 0, Result: match.NoMatch})
	final := mustAdd(t, r, Response{Rank: 1, Result: match.Pending})
	if final == nil || final.Result != match.NoMatch {
		t.Fatal("bad final")
	}
	if _, err := r.Add(Response{Rank: 1, Result: match.Match, MatchTS: 19}); err == nil {
		t.Error("late disagreeing answer accepted")
	}
}

func TestDecidedProcessCannotFlip(t *testing.T) {
	r := NewRequest(20, 2)
	mustAdd(t, r, Response{Rank: 0, Result: match.Match, MatchTS: 19.6})
	if _, err := r.Add(Response{Rank: 0, Result: match.NoMatch}); err == nil {
		t.Error("flip accepted")
	}
	if _, err := r.Add(Response{Rank: 0, Result: match.Match, MatchTS: 18}); err == nil {
		t.Error("re-match with new timestamp accepted")
	}
	// Identical repeat is harmless.
	if _, err := r.Add(Response{Rank: 0, Result: match.Match, MatchTS: 19.6}); err != nil {
		t.Errorf("identical repeat rejected: %v", err)
	}
}

func TestRankValidation(t *testing.T) {
	r := NewRequest(20, 2)
	if _, err := r.Add(Response{Rank: -1}); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := r.Add(Response{Rank: 2}); err == nil {
		t.Error("rank >= n accepted")
	}
}

func TestAnswerFormedExactlyOnce(t *testing.T) {
	r := NewRequest(20, 3)
	mustAdd(t, r, Response{Rank: 0, Result: match.Pending})
	mustAdd(t, r, Response{Rank: 1, Result: match.Pending})
	final := mustAdd(t, r, Response{Rank: 2, Result: match.Match, MatchTS: 5})
	if final == nil {
		t.Fatal("no final")
	}
	// Pending ranks updating afterwards must not re-form the answer.
	if ans := mustAdd(t, r, Response{Rank: 0, Result: match.Match, MatchTS: 5}); ans != nil {
		t.Error("answer formed twice")
	}
	if got := r.Final(); got.Result != match.Match || got.MatchTS != 5 {
		t.Errorf("Final() = %+v", got)
	}
	if r.ReqTS() != 20 {
		t.Errorf("ReqTS %v", r.ReqTS())
	}
}

func TestViolationErrorMessage(t *testing.T) {
	e := &ViolationError{ReqTS: 20, Detail: "boom"}
	if e.Error() == "" {
		t.Error("empty error message")
	}
}

// TestPropertyRandomLegalSchedules: generate random legal response schedules
// (a ground-truth decisive answer, each rank either answering it directly or
// answering PENDING first) and assert the aggregate always forms exactly one
// answer matching the ground truth, with buddy ranks = ranks still pending.
func TestPropertyRandomLegalSchedules(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		truth := match.Match
		truthTS := 10 + rng.Float64()
		if rng.Intn(2) == 0 {
			truth = match.NoMatch
			truthTS = 0
		}
		slow := make([]bool, n) // answers PENDING first
		anySlowFirst := false
		for i := range slow {
			slow[i] = rng.Intn(2) == 0
			if slow[i] {
				anySlowFirst = true
			}
		}
		_ = anySlowFirst

		r := NewRequest(20, n)
		order := rng.Perm(n)
		var got *Answer
		pendingAtDecision := map[int]bool{}
		responded := 0
		for _, rank := range order {
			resp := Response{Rank: rank, Result: truth, MatchTS: truthTS}
			if slow[rank] {
				resp = Response{Rank: rank, Result: match.Pending}
			}
			ans, err := r.Add(resp)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			responded++
			if ans != nil {
				if got != nil {
					t.Fatalf("seed %d: two answers", seed)
				}
				got = ans
				for rk := range slow {
					if slow[rk] {
						pendingAtDecision[rk] = true
					}
				}
			}
		}
		// Slow ranks now catch up.
		for rank := range slow {
			if !slow[rank] {
				continue
			}
			ans, err := r.Add(Response{Rank: rank, Result: truth, MatchTS: truthTS})
			if err != nil {
				t.Fatalf("seed %d catch-up: %v", seed, err)
			}
			if got == nil && ans != nil {
				got = ans
			} else if got != nil && ans != nil {
				t.Fatalf("seed %d: answer re-formed", seed)
			}
		}
		allSlow := true
		for _, s := range slow {
			if !s {
				allSlow = false
			}
		}
		if got == nil {
			t.Fatalf("seed %d: no answer formed (allSlow=%v)", seed, allSlow)
		}
		if got.Result != truth || (truth == match.Match && got.MatchTS != truthTS) {
			t.Fatalf("seed %d: answer %+v, truth %v/%g", seed, got, truth, truthTS)
		}
		for _, rk := range got.BuddyRanks {
			if !slow[rk] {
				t.Fatalf("seed %d: buddy rank %d was not pending", seed, rk)
			}
		}
	}
}
