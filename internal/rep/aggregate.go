// Package rep implements the decision logic of a program's representative
// process — the "low-overhead control gateway" each parallel program runs in
// the paper's framework (Section 4). For every import request forwarded to
// the program's processes, the rep collects their MATCH / NO MATCH / PENDING
// responses, validates that the mixture is one of the five legal cases, and
// produces the final collective answer plus the list of PENDING processes
// that should receive a buddy-help message.
//
// The aggregation state machine here is transport-agnostic (and so unit
// testable in isolation); the core package wires it to the network.
package rep

import (
	"fmt"

	"repro/internal/match"
)

// Response is one process's (possibly repeated) answer to a forwarded
// request. Processes re-respond when a previously PENDING request becomes
// locally decidable.
type Response struct {
	Rank    int
	Result  match.Result
	MatchTS float64
	Latest  float64
}

// Answer is the collective final answer for one request.
type Answer struct {
	Result  match.Result
	MatchTS float64
	// BuddyRanks lists the processes whose last response was PENDING when
	// the answer was formed — the recipients of buddy-help messages.
	BuddyRanks []int
}

// ViolationError reports a violation of the paper's Property 1: processes of
// the same program answered inconsistently for the same request.
type ViolationError struct {
	ReqTS  float64
	Detail string
}

// Error implements error.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("rep: Property 1 violation for request D@%g: %s", e.ReqTS, e.Detail)
}

// Request aggregates responses for one import request.
type Request struct {
	reqTS float64
	n     int

	responded int // distinct ranks that responded at least once
	seen      []bool
	last      []match.Result
	decided   bool
	final     Answer
}

// NewRequest returns an aggregator for a request at timestamp reqTS over a
// program with n processes.
func NewRequest(reqTS float64, n int) *Request {
	r := &Request{
		reqTS: reqTS,
		n:     n,
		seen:  make([]bool, n),
		last:  make([]match.Result, n),
	}
	for i := range r.last {
		r.last[i] = match.Pending
	}
	return r
}

// ReqTS returns the request timestamp being aggregated.
func (r *Request) ReqTS() float64 { return r.reqTS }

// Decided reports whether the final answer has been formed.
func (r *Request) Decided() bool { return r.decided }

// Final returns the final answer; valid only once Decided.
func (r *Request) Final() Answer { return r.final }

// Add incorporates one response. It returns a non-nil *Answer exactly once:
// when the final collective answer is formed — that is, when every process
// has responded at least once and at least one response is decisive. Until
// then it returns (nil, nil). Responses that contradict Property 1 (MATCH
// mixed with NO MATCH, disagreeing MATCH timestamps, a decided process
// re-deciding differently, or any decisive response after the final answer
// that disagrees with it) yield a ViolationError.
//
// A process may respond PENDING and then respond again when its local state
// advances; only its latest response counts.
func (r *Request) Add(resp Response) (*Answer, error) {
	if resp.Rank < 0 || resp.Rank >= r.n {
		return nil, fmt.Errorf("rep: response from rank %d outside program of %d", resp.Rank, r.n)
	}
	prev := r.last[resp.Rank]
	if prev != match.Pending {
		// A decided process must never change its answer.
		if resp.Result != prev {
			return nil, &ViolationError{ReqTS: r.reqTS, Detail: fmt.Sprintf(
				"rank %d answered %v after already answering %v", resp.Rank, resp.Result, prev)}
		}
		if prev == match.Match && resp.MatchTS != r.final.MatchTS {
			return nil, &ViolationError{ReqTS: r.reqTS, Detail: fmt.Sprintf(
				"rank %d re-matched D@%g after matching D@%g", resp.Rank, resp.MatchTS, r.final.MatchTS)}
		}
		return nil, nil
	}
	if !r.seen[resp.Rank] {
		r.seen[resp.Rank] = true
		r.responded++
	}
	r.last[resp.Rank] = resp.Result

	if resp.Result != match.Pending {
		if r.decided {
			// Late decisive response must agree with the formed answer.
			if resp.Result != r.final.Result ||
				(resp.Result == match.Match && resp.MatchTS != r.final.MatchTS) {
				return nil, &ViolationError{ReqTS: r.reqTS, Detail: fmt.Sprintf(
					"rank %d answered %v/D@%g after collective answer %v/D@%g",
					resp.Rank, resp.Result, resp.MatchTS, r.final.Result, r.final.MatchTS)}
			}
			return nil, nil
		}
		// Validate against other decisive responses received so far.
		for rank, res := range r.last {
			if rank == resp.Rank || res == match.Pending {
				continue
			}
			if res != resp.Result {
				return nil, &ViolationError{ReqTS: r.reqTS, Detail: fmt.Sprintf(
					"rank %d answered %v while rank %d answered %v", resp.Rank, resp.Result, rank, res)}
			}
		}
		if resp.Result == match.Match {
			if r.final.Result == match.Match && r.final.MatchTS != resp.MatchTS {
				return nil, &ViolationError{ReqTS: r.reqTS, Detail: fmt.Sprintf(
					"rank %d matched D@%g while others matched D@%g",
					resp.Rank, resp.MatchTS, r.final.MatchTS)}
			}
		}
		// Stash the decisive content (not yet final until all responded).
		r.final.Result = resp.Result
		r.final.MatchTS = resp.MatchTS
	}

	if r.responded < r.n || r.final.Result == match.Pending {
		return nil, nil
	}
	// All processes responded and at least one was decisive: the collective
	// answer is that decisive result (a PENDING+MATCH mixture answers MATCH;
	// PENDING+NOMATCH answers NO MATCH). The still-PENDING ranks get
	// buddy-help.
	r.decided = true
	for rank, res := range r.last {
		if res == match.Pending {
			r.final.BuddyRanks = append(r.final.BuddyRanks, rank)
		}
	}
	ans := r.final
	return &ans, nil
}
