package transport

import (
	"fmt"

	"repro/internal/wire"
)

// Binary frame codec for the TCP backend and the coalescing layer. It
// replaces the per-message gob encoder: encoding appends to a caller-owned
// buffer (no allocation at steady state) and decoding aliases the input for
// the payload and interns the three strings, so a decode allocates nothing
// once the connection's program names and tags have been seen.
//
// Frame layout (self-delimiting; the TCP stream adds an outer uvarint frame
// length so the reader can slice whole frames out of its buffer):
//
//	offset 0  : kind      (1 byte)
//	offset 1  : flags     (1 byte; bit 0 = trace word present)
//	offset 2  : seq       (8 bytes, little-endian, fixed offset)
//	offset 10 : src rank  (4 bytes, little-endian int32; -1 = rep)
//	offset 14 : dst rank  (4 bytes, little-endian int32)
//	offset 18 : trace     (8 bytes, little-endian — ONLY when flag bit 0 set)
//	then      : src program (uvarint length + bytes)
//	            dst program (uvarint length + bytes)
//	            tag         (uvarint length + bytes)
//	            payload     (uvarint length + bytes)
//
// Seq sits at a fixed offset so the router can stamp a sequence number into
// a received frame in place and forward the same bytes without re-encoding.
// The optional trace word carries the observability trace ID (Message.Trace)
// and costs zero bytes for untraced traffic.

const (
	// frameSeqOffset is the byte offset of the Seq field inside a frame.
	frameSeqOffset = 2
	// frameFixedLen is the length of the fixed-width header prefix.
	frameFixedLen = 18
	// frameFlagTrace marks that an 8-byte trace ID follows the fixed header.
	frameFlagTrace = 0x1
	// frameFlagsKnown masks every flag bit the decoder understands; unknown
	// bits make a frame undecodable and are rejected.
	frameFlagsKnown = frameFlagTrace
)

// AppendFrame appends the wire encoding of m to dst and returns the
// extended slice.
func AppendFrame(dst []byte, m Message) []byte {
	var flags byte
	if m.Trace != 0 {
		flags = frameFlagTrace
	}
	dst = append(dst, byte(m.Kind), flags)
	var fixed [16]byte
	putU64(fixed[0:], m.Seq)
	putU32(fixed[8:], uint32(int32(m.Src.Rank)))
	putU32(fixed[12:], uint32(int32(m.Dst.Rank)))
	dst = append(dst, fixed[:]...)
	if m.Trace != 0 {
		var tw [8]byte
		putU64(tw[:], m.Trace)
		dst = append(dst, tw[:]...)
	}
	dst = wire.AppendString(dst, m.Src.Program)
	dst = wire.AppendString(dst, m.Dst.Program)
	dst = wire.AppendString(dst, m.Tag)
	dst = wire.AppendBytes(dst, m.Payload)
	return dst
}

// FrameSize returns the encoded size of m in bytes (for preallocating).
func FrameSize(m Message) int {
	n := frameFixedLen
	if m.Trace != 0 {
		n += 8
	}
	n += wire.UvarintLen(uint64(len(m.Src.Program))) + len(m.Src.Program)
	n += wire.UvarintLen(uint64(len(m.Dst.Program))) + len(m.Dst.Program)
	n += wire.UvarintLen(uint64(len(m.Tag))) + len(m.Tag)
	n += wire.UvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	return n
}

// DecodeFrame decodes one frame. The returned message's Payload aliases buf
// — the caller copies it when the message is retained past the buffer's
// reuse (mailboxes) and skips the copy when it is consumed first (the
// router). Strings are interned through in when non-nil.
func DecodeFrame(buf []byte, in *wire.Interner) (Message, error) {
	var m Message
	if len(buf) < frameFixedLen {
		return m, fmt.Errorf("transport: frame of %d bytes shorter than the %d-byte header", len(buf), frameFixedLen)
	}
	m.Kind = Kind(buf[0])
	m.Seq = getU64(buf[frameSeqOffset:])
	m.Src.Rank = int(int32(getU32(buf[10:])))
	m.Dst.Rank = int(int32(getU32(buf[14:])))
	body, trace, err := frameBody(buf)
	if err != nil {
		return Message{}, err
	}
	m.Trace = trace
	r := wire.NewReader(body)
	if in != nil {
		m.Src.Program = in.Intern(r.StringBytes())
		m.Dst.Program = in.Intern(r.StringBytes())
		m.Tag = in.Intern(r.StringBytes())
	} else {
		m.Src.Program = r.String()
		m.Dst.Program = r.String()
		m.Tag = r.String()
	}
	if b := r.Bytes(); len(b) > 0 {
		m.Payload = b
	}
	if err := r.Err(); err != nil {
		return Message{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	if r.Len() != 0 {
		return Message{}, fmt.Errorf("transport: frame has %d trailing bytes", r.Len())
	}
	return m, nil
}

// frameBody validates the flags byte and returns the variable-length part of
// a frame (after the fixed header and the optional trace word), plus the
// decoded trace ID (0 when absent).
func frameBody(frame []byte) (body []byte, trace uint64, err error) {
	flags := frame[1]
	if flags&^frameFlagsKnown != 0 {
		return nil, 0, fmt.Errorf("transport: frame with unknown flags %#x", flags)
	}
	body = frame[frameFixedLen:]
	if flags&frameFlagTrace != 0 {
		if len(body) < 8 {
			return nil, 0, fmt.Errorf("transport: traced frame truncated before its trace word")
		}
		trace = getU64(body)
		body = body[8:]
	}
	return body, trace, nil
}

// FrameSeq reads the Seq field of an encoded frame.
func FrameSeq(frame []byte) uint64 { return getU64(frame[frameSeqOffset:]) }

// PatchFrameSeq overwrites the Seq field of an encoded frame in place, so
// the router can stamp sequence numbers without re-encoding.
func PatchFrameSeq(frame []byte, seq uint64) { putU64(frame[frameSeqOffset:], seq) }

// frameAddrs decodes only the source and destination addresses of a frame
// (what the router needs to route and validate without a full decode).
func frameAddrs(frame []byte, in *wire.Interner) (src, dst Addr, err error) {
	if len(frame) < frameFixedLen {
		return src, dst, fmt.Errorf("transport: frame of %d bytes shorter than the %d-byte header", len(frame), frameFixedLen)
	}
	src.Rank = int(int32(getU32(frame[10:])))
	dst.Rank = int(int32(getU32(frame[14:])))
	body, _, err := frameBody(frame)
	if err != nil {
		return Addr{}, Addr{}, err
	}
	r := wire.NewReader(body)
	src.Program = in.Intern(r.StringBytes())
	dst.Program = in.Intern(r.StringBytes())
	if err := r.Err(); err != nil {
		return Addr{}, Addr{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	return src, dst, nil
}

// Batch payload codec. A KindBatch message's payload is a sequence of fully
// addressed sub-messages — the batch groups traffic from every endpoint of
// the sending process to every endpoint of one destination program, so each
// item carries its own source and destination:
//
//	kind (1 byte) · src rank (u32) · dst rank (u32) ·
//	[trace (uvarint) — only when the kind byte's high bit is set] ·
//	src program (uvarint string) · dst program (uvarint string) ·
//	seq (uvarint) · tag (uvarint string) · payload (uvarint bytes)
//
// Kind values occupy the low bits of the kind byte; the high bit
// (batchItemTrace) marks a piggybacked trace ID, uvarint-encoded so the
// common small IDs cost a few bytes and untraced items cost none.
//
// AppendBatchItem packs one sub-message; decodeBatch walks them.

// batchItemTrace is the kind-byte flag marking a trace ID on a batch item.
const batchItemTrace = 0x80

// AppendBatchItem appends the batch encoding of m to dst.
func AppendBatchItem(dst []byte, m Message) []byte {
	var fixed [9]byte
	fixed[0] = byte(m.Kind)
	if m.Trace != 0 {
		fixed[0] |= batchItemTrace
	}
	putU32(fixed[1:], uint32(int32(m.Src.Rank)))
	putU32(fixed[5:], uint32(int32(m.Dst.Rank)))
	dst = append(dst, fixed[:]...)
	if m.Trace != 0 {
		dst = wire.AppendUvarint(dst, m.Trace)
	}
	dst = wire.AppendString(dst, m.Src.Program)
	dst = wire.AppendString(dst, m.Dst.Program)
	dst = wire.AppendUvarint(dst, m.Seq)
	dst = wire.AppendString(dst, m.Tag)
	dst = wire.AppendBytes(dst, m.Payload)
	return dst
}

// BatchItemSize returns the encoded size of m as a batch item.
func BatchItemSize(m Message) int {
	trace := 0
	if m.Trace != 0 {
		trace = wire.UvarintLen(m.Trace)
	}
	return 9 + trace +
		wire.UvarintLen(uint64(len(m.Src.Program))) + len(m.Src.Program) +
		wire.UvarintLen(uint64(len(m.Dst.Program))) + len(m.Dst.Program) +
		wire.UvarintLen(m.Seq) +
		wire.UvarintLen(uint64(len(m.Tag))) + len(m.Tag) +
		wire.UvarintLen(uint64(len(m.Payload))) + len(m.Payload)
}

// decodeBatch invokes yield for every sub-message of a batch payload, in
// order. Sub-message payloads alias the batch payload. yield returning an
// error stops the walk.
func decodeBatch(env Message, in *wire.Interner, yield func(Message) error) error {
	r := wire.NewReader(env.Payload)
	for r.Len() > 0 {
		var m Message
		kb := r.Byte()
		m.Kind = Kind(kb &^ batchItemTrace)
		m.Src.Rank = int(int32(r.Uint32()))
		m.Dst.Rank = int(int32(r.Uint32()))
		if kb&batchItemTrace != 0 {
			m.Trace = r.Uvarint()
		}
		if in != nil {
			m.Src.Program = in.Intern(r.StringBytes())
			m.Dst.Program = in.Intern(r.StringBytes())
		} else {
			m.Src.Program = r.String()
			m.Dst.Program = r.String()
		}
		m.Seq = r.Uvarint()
		if in != nil {
			m.Tag = in.Intern(r.StringBytes())
		} else {
			m.Tag = r.String()
		}
		if b := r.Bytes(); len(b) > 0 {
			m.Payload = b
		}
		if err := r.Err(); err != nil {
			return fmt.Errorf("transport: bad batch from %s: %w", env.Src, err)
		}
		if err := yield(m); err != nil {
			return err
		}
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
