package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// FaultConfig parameterizes a FaultNetwork. All faults are drawn from one
// seeded RNG, so a given seed and send sequence reproduces the same fault
// pattern — the property the chaos harness's seed matrix relies on.
type FaultConfig struct {
	// Seed seeds the fault RNG (0 behaves like 1).
	Seed int64
	// Clock supplies the time source for injected delays (nil = wall clock).
	// The deterministic simulation harness injects a virtual clock so held
	// messages are released by simulated time, not host time.
	Clock vclock.Clock
	// Drop is the probability an individual message is silently lost.
	Drop float64
	// DelayProb is the probability a delivered message is held for a uniform
	// random duration in (0, MaxDelay] before delivery. Delays never reorder:
	// each sender's messages pass through one FIFO pump, so a delayed message
	// delays everything behind it (as a congested link would).
	DelayProb float64
	MaxDelay  time.Duration
	// ResetEvery, when positive, injects a connection reset at the sender of
	// every ResetEvery-th message network-wide: that message and the next
	// ResetLen-1 messages the same endpoint sends are lost, modeling the
	// kernel discarding a socket's in-flight buffer on RST.
	ResetEvery int
	// ResetLen is the number of messages lost per reset (default 4).
	ResetLen int
}

// FaultStats counts the faults a FaultNetwork injected.
type FaultStats struct {
	Sent, Dropped, Delayed, Resets uint64
}

// FaultNetwork wraps another Network and deterministically (seeded RNG)
// injects one-way message drops, delivery delays, and connection resets,
// while preserving FIFO order among the messages it does deliver. It is the
// adversary half of the fault-tolerance test rig: layer ReliableNetwork on
// top and the combination must behave like a lossless transport.
type FaultNetwork struct {
	inner Network
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	count uint64 // messages judged, for ResetEvery

	stats struct {
		sent, dropped, delayed, resets atomic.Uint64
	}
}

// NewFaultNetwork wraps inner with the given fault plan.
func NewFaultNetwork(inner Network, cfg FaultConfig) *FaultNetwork {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.ResetLen <= 0 {
		cfg.ResetLen = 4
	}
	cfg.Clock = vclock.Or(cfg.Clock)
	return &FaultNetwork{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (n *FaultNetwork) Stats() FaultStats {
	return FaultStats{
		Sent:    n.stats.sent.Load(),
		Dropped: n.stats.dropped.Load(),
		Delayed: n.stats.delayed.Load(),
		Resets:  n.stats.resets.Load(),
	}
}

// Register implements Network.
func (n *FaultNetwork) Register(addr Addr) (Endpoint, error) {
	ep, err := n.inner.Register(addr)
	if err != nil {
		return nil, err
	}
	fe := &faultEndpoint{
		net:   n,
		inner: ep,
		queue: make(chan faultMsg, DefaultMailboxDepth),
		done:  make(chan struct{}),
	}
	go fe.pump()
	return fe, nil
}

// Close implements Network.
func (n *FaultNetwork) Close() error { return n.inner.Close() }

// Unwrap returns the wrapped Network (observability walks the layer stack).
func (n *FaultNetwork) Unwrap() Network { return n.inner }

// verdict is the fate drawn for one message.
type verdict struct {
	drop  bool
	delay time.Duration
}

// judge draws one message's fate under the network lock.
func (n *FaultNetwork) judge(e *faultEndpoint) verdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.sent.Add(1)
	if e.resetLeft > 0 {
		e.resetLeft--
		n.stats.dropped.Add(1)
		return verdict{drop: true}
	}
	n.count++
	if n.cfg.ResetEvery > 0 && n.count%uint64(n.cfg.ResetEvery) == 0 {
		// This message triggers a reset of its sender's connection: it and
		// the next ResetLen-1 messages from the endpoint are lost.
		e.resetLeft = n.cfg.ResetLen - 1
		n.stats.resets.Add(1)
		n.stats.dropped.Add(1)
		return verdict{drop: true}
	}
	if n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop {
		n.stats.dropped.Add(1)
		return verdict{drop: true}
	}
	if n.cfg.DelayProb > 0 && n.cfg.MaxDelay > 0 && n.rng.Float64() < n.cfg.DelayProb {
		n.stats.delayed.Add(1)
		return verdict{delay: time.Duration(1 + n.rng.Int63n(int64(n.cfg.MaxDelay)))}
	}
	return verdict{}
}

type faultMsg struct {
	due time.Time
	msg Message
}

// holdUntil blocks until the clock reaches due or done closes; it reports
// false when done won. Shared by the fault and latency pumps.
func holdUntil(clock vclock.Clock, due time.Time, done <-chan struct{}) bool {
	wait := clock.Until(due)
	if wait <= 0 {
		return true
	}
	t := clock.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-done:
		return false
	}
}

// faultEndpoint applies the fault plan on the send side. Surviving messages
// flow through a single FIFO pump goroutine so injected delays never reorder
// deliveries from this sender.
type faultEndpoint struct {
	net   *FaultNetwork
	inner Endpoint
	queue chan faultMsg
	done  chan struct{}

	closeOne sync.Once

	// resetLeft counts pending message losses from an injected connection
	// reset; guarded by net.mu.
	resetLeft int
}

func (e *faultEndpoint) pump() {
	for {
		select {
		case fm := <-e.queue:
			if !holdUntil(e.net.cfg.Clock, fm.due, e.done) {
				return
			}
			_ = e.inner.Send(fm.msg) // a vanished receiver is just another fault
		case <-e.done:
			return
		}
	}
}

func (e *faultEndpoint) Addr() Addr { return e.inner.Addr() }

func (e *faultEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	v := e.net.judge(e)
	if v.drop {
		return nil // silently lost, as the wire would lose it
	}
	select {
	case e.queue <- faultMsg{due: e.net.cfg.Clock.Now().Add(v.delay), msg: msg}:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

func (e *faultEndpoint) Recv() (Message, error) { return e.inner.Recv() }

func (e *faultEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	return e.inner.RecvTimeout(d)
}

func (e *faultEndpoint) Close() error {
	e.closeOne.Do(func() { close(e.done) })
	return e.inner.Close()
}
