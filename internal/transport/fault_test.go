package transport

import (
	"errors"
	"fmt"
	"repro/internal/testutil"
	"testing"
	"time"
)

// sendSeq sends k tagged messages a -> b. It reports failures with Errorf so
// it is safe to run from a goroutine; the receiving side's timeout converts a
// stalled stream into a test failure.
func sendSeq(t *testing.T, a Endpoint, dst Addr, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		if err := a.Send(Message{Kind: KindPoint, Dst: dst, Tag: fmt.Sprint(i)}); err != nil {
			t.Errorf("send %d: %v", i, err)
			return
		}
	}
}

// TestFaultDropsDeterministic: the same seed over the same send sequence
// loses the same messages.
func TestFaultDropsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		n := NewFaultNetwork(NewMemNetwork(), FaultConfig{Seed: seed, Drop: 0.4})
		defer n.Close()
		a, _ := n.Register(Proc("P", 0))
		b, _ := n.Register(Proc("P", 1))
		sendSeq(t, a, b.Addr(), 100)
		var got []string
		for {
			m, err := b.RecvTimeout(100 * time.Millisecond)
			if err != nil {
				break
			}
			got = append(got, m.Tag)
		}
		return got
	}
	first := run(7)
	second := run(7)
	if len(first) == 0 || len(first) == 100 {
		t.Fatalf("drop rate 0.4 delivered %d of 100", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d vs %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, first[i], second[i])
		}
	}
	other := run(8)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns")
	}
}

// TestFaultPreservesFIFO: delivered messages keep their send order even when
// delays are injected.
func TestFaultPreservesFIFO(t *testing.T) {
	n := NewFaultNetwork(NewMemNetwork(), FaultConfig{
		Seed: 3, DelayProb: 0.5, MaxDelay: 2 * time.Millisecond,
	})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	const k = 200
	go sendSeq(t, a, b.Addr(), k)
	for i := 0; i < k; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("out of order at %d: %q", i, m.Tag)
		}
	}
	st := n.Stats()
	if st.Delayed == 0 {
		t.Error("no delays injected at DelayProb 0.5")
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d messages with Drop=0", st.Dropped)
	}
}

// TestFaultResetBursts: every ResetEvery-th message triggers a reset that
// drops a burst from the sending endpoint.
func TestFaultResetBursts(t *testing.T) {
	n := NewFaultNetwork(NewMemNetwork(), FaultConfig{Seed: 1, ResetEvery: 10, ResetLen: 3})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	sendSeq(t, a, b.Addr(), 100)
	delivered := 0
	for {
		if _, err := b.RecvTimeout(100 * time.Millisecond); err != nil {
			break
		}
		delivered++
	}
	// A reset fires every 10 *surviving* messages and consumes 3 (itself plus
	// a burst of 2 that do not advance the counter): 100 sends = 8 full
	// 10+2 cycles plus a trailing reset, 8 resets, 24 lost.
	st := n.Stats()
	if st.Resets != 8 {
		t.Errorf("resets = %d, want 8", st.Resets)
	}
	if want := 100 - 8*3; delivered != want {
		t.Errorf("delivered %d, want %d (8 resets x 3 lost)", delivered, want)
	}
}

// TestReliableRecoversDrops: the reliable layer over a lossy network delivers
// every message exactly once, in order.
func TestReliableRecoversDrops(t *testing.T) {
	fn := NewFaultNetwork(NewMemNetwork(), FaultConfig{Seed: 11, Drop: 0.3, ResetEvery: 41})
	n := NewReliableNetwork(fn, ReliableConfig{ResendInterval: 5 * time.Millisecond})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	const k = 300
	go sendSeq(t, a, b.Addr(), k)
	for i := 0; i < k; i++ {
		m, err := b.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v (fault stats %+v)", i, err, fn.Stats())
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("delivery %d carries tag %q (reorder or duplicate)", i, m.Tag)
		}
	}
	// No duplicates behind: the stream must now be silent.
	if m, err := b.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery after the stream: %+v", m)
	}
	if st := fn.Stats(); st.Dropped == 0 {
		t.Error("fault layer dropped nothing; test exercised no recovery")
	}
}

// TestReliableAcksShrinkBuffer: acknowledged messages leave the resend
// buffer.
func TestReliableAcksShrinkBuffer(t *testing.T) {
	n := NewReliableNetwork(NewMemNetwork(), ReliableConfig{ResendInterval: 5 * time.Millisecond})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	sendSeq(t, a, b.Addr(), 50)
	for i := 0; i < 50; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	re := a.(*reliableEndpoint)
	deadline := testutil.Now().Add(5 * time.Second)
	for re.Unacked() > 0 {
		if testutil.Now().After(deadline) {
			t.Fatalf("resend buffer still holds %d messages after all were delivered", re.Unacked())
		}
		testutil.Sleep(time.Millisecond)
	}
}

// TestReliableMaxUnacked: a peer that never acks turns into a visible error
// instead of unbounded buffering.
func TestReliableMaxUnacked(t *testing.T) {
	n := NewReliableNetwork(NewMemNetwork(), ReliableConfig{
		ResendInterval: time.Hour, MaxUnacked: 8,
	})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	// Destination never registered: nothing is ever acked.
	dst := Proc("P", 9)
	var got error
	for i := 0; i < 20; i++ {
		if got = a.Send(Message{Kind: KindPoint, Dst: dst}); got != nil {
			break
		}
	}
	if !errors.Is(got, ErrResendBufferFull) {
		t.Fatalf("err = %v, want ErrResendBufferFull", got)
	}
}

// TestReliableBidirectional: both directions carry sequenced traffic plus
// acks without interference.
func TestReliableBidirectional(t *testing.T) {
	fn := NewFaultNetwork(NewMemNetwork(), FaultConfig{Seed: 5, Drop: 0.2})
	n := NewReliableNetwork(fn, ReliableConfig{ResendInterval: 5 * time.Millisecond})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	const k = 100
	go sendSeq(t, a, b.Addr(), k)
	go sendSeq(t, b, a.Addr(), k)
	check := func(ep Endpoint) error {
		for i := 0; i < k; i++ {
			m, err := ep.RecvTimeout(10 * time.Second)
			if err != nil {
				return fmt.Errorf("recv %d: %w", i, err)
			}
			if m.Tag != fmt.Sprint(i) {
				return fmt.Errorf("delivery %d carries tag %q", i, m.Tag)
			}
		}
		return nil
	}
	errc := make(chan error, 2)
	go func() { errc <- check(a) }()
	go func() { errc <- check(b) }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
