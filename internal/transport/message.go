// Package transport provides the message-passing substrate for the coupling
// framework. It plays the role MPI/PVM point-to-point messaging plays in the
// paper's system: every simulated process (and every program's representative)
// owns an Endpoint with a unique Addr, and sends typed, FIFO-ordered messages
// to any other Addr through a Network.
//
// Two Network implementations are provided: MemNetwork routes messages through
// Go channels inside one OS process, and TCPNetwork routes them through a
// star-topology router over real sockets (zero-copy binary frames, see
// frame.go), so the same framework code runs unchanged over either.
package transport

import "fmt"

// RepRank is the pseudo-rank reserved for a program's representative process
// (the low-overhead control gateway the paper calls the "rep").
const RepRank = -1

// Addr names one endpoint: a process of a parallel program, identified by
// program name and rank, or the program's representative (Rank == RepRank).
type Addr struct {
	Program string
	Rank    int
}

// Rep returns the address of program's representative.
func Rep(program string) Addr { return Addr{Program: program, Rank: RepRank} }

// Proc returns the address of rank r in program.
func Proc(program string, r int) Addr { return Addr{Program: program, Rank: r} }

// IsRep reports whether a names a representative endpoint.
func (a Addr) IsRep() bool { return a.Rank == RepRank }

// String renders the address in the "program:rank" form used in logs and
// traces ("F:rep" for representatives).
func (a Addr) String() string {
	if a.IsRep() {
		return a.Program + ":rep"
	}
	return fmt.Sprintf("%s:%d", a.Program, a.Rank)
}

// Kind classifies a message so the per-process Dispatcher can route it to the
// right consumer without decoding the payload.
type Kind uint8

const (
	// KindControl carries framework-internal control traffic (handshakes,
	// shutdown notices).
	KindControl Kind = iota
	// KindCollective carries intra-program collective-operation traffic
	// (barrier, broadcast, reduce, ...).
	KindCollective
	// KindImportCall is sent by an importer process to its own rep when the
	// process enters a collective import operation.
	KindImportCall
	// KindRequest is an import request forwarded from the importer program's
	// rep to the exporter program's rep.
	KindRequest
	// KindForward is the exporter rep fanning an import request out to all
	// processes of the exporting program.
	KindForward
	// KindResponse is an exporter process answering a forwarded request
	// (MATCH / NO MATCH / PENDING), possibly more than once as its local
	// state advances.
	KindResponse
	// KindAnswer is a final matching decision: exporter rep -> importer rep,
	// and importer rep -> its own processes.
	KindAnswer
	// KindBuddyHelp is the buddy-help message: the exporter rep sending the
	// final decision to those of its own processes that answered PENDING.
	KindBuddyHelp
	// KindData carries a piece of a matched, distributed data object from an
	// exporter process to an importer process.
	KindData
	// KindLayout carries region layout descriptions during the rep-to-rep
	// initialization handshake.
	KindLayout
	// KindPoint carries application-level point-to-point payloads (e.g. halo
	// exchange inside a simulation component).
	KindPoint
	// KindAck is a cumulative delivery acknowledgement of the reliable
	// transport layer (ReliableNetwork). Acks are consumed inside the
	// transport and never surface to Recv callers.
	KindAck
	// KindBatch is a coalesced frame: several fully addressed messages bound
	// for one program, packed into one payload by CoalescingNetwork and
	// addressed to that program's representative (the control gateway), whose
	// transport layer dispatches them. Batches are opened inside the
	// transport (unbatched in Recv) and never surface to Recv callers.
	KindBatch
)

var kindNames = [...]string{
	KindControl:    "control",
	KindCollective: "collective",
	KindImportCall: "import-call",
	KindRequest:    "request",
	KindForward:    "forward",
	KindResponse:   "response",
	KindAnswer:     "answer",
	KindBuddyHelp:  "buddy-help",
	KindData:       "data",
	KindLayout:     "layout",
	KindPoint:      "point",
	KindAck:        "ack",
	KindBatch:      "batch",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is the unit of communication. Payload is opaque to the transport;
// higher layers encode structs into it (encoding/gob for anything that must
// cross the TCP backend). Senders must not mutate Payload after Send: the
// in-memory backend passes the slice through without copying.
type Message struct {
	Kind     Kind
	Src, Dst Addr
	// Tag disambiguates streams within a kind (region name, collective op
	// sequence, request id). Interpretation is up to the layer owning Kind.
	Tag string
	// Seq is a per-(sender,receiver) sequence number stamped by Endpoint.Send
	// so receivers (and tests) can assert FIFO delivery. A Send that arrives
	// with Seq already nonzero keeps it: the reliable-delivery layer stamps
	// its own sequence numbers above the base transports and relies on them
	// surviving the trip for ack/resend bookkeeping.
	Seq     uint64
	Payload []byte
	// Trace is an optional observability trace ID piggybacked on the wire
	// (see internal/obsv). Zero means untraced and costs zero bytes in the
	// binary frame encoding; nonzero adds one fixed word to a frame and one
	// uvarint to a batch item. The transport never interprets it.
	Trace uint64
}
