package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/vclock"
)

// DefaultResendInterval is the retransmission period of a ReliableNetwork
// when the configuration leaves it zero.
const DefaultResendInterval = 25 * time.Millisecond

// ReliableConfig tunes a ReliableNetwork.
type ReliableConfig struct {
	// ResendInterval is how often unacknowledged messages are retransmitted
	// (0 means DefaultResendInterval).
	ResendInterval time.Duration
	// MaxUnacked, when positive, bounds the per-peer resend buffer; Send
	// fails with ErrResendBufferFull once a peer has that many outstanding
	// messages. It turns a permanently dead peer into a visible error instead
	// of unbounded memory growth (the framework's failure detector normally
	// fires long before the bound is hit).
	MaxUnacked int
	// SessionEpoch namespaces this process's sequence numbers: a stamped
	// sequence is epoch<<32 | counter. A restarted process comes back with a
	// larger epoch (the recovery layer increments it per restore), and
	// receivers treat "higher epoch, counter 1" as the start of a fresh
	// session rather than an unfillable gap — that is what lets in-flight
	// ack state survive a crash+rejoin instead of deadlocking both sides.
	SessionEpoch uint32
	// Clock drives the resend ticker and receive timeouts (nil = wall clock).
	Clock vclock.Clock
}

// ErrResendBufferFull is returned by Send when ReliableConfig.MaxUnacked
// messages to one peer are awaiting acknowledgement.
var ErrResendBufferFull = errors.New("transport: reliable resend buffer full (peer not acking)")

// ReliableNetwork layers exactly-once, in-order delivery on top of any
// Network: senders stamp a per-(src,dst) sequence number (reusing
// Message.Seq), keep every message in a resend buffer until the receiver's
// cumulative ack covers it, and retransmit on a timer; receivers deliver
// strictly in sequence order and drop duplicates. Over a FaultNetwork this
// recovers injected drops and resets; over a TCPNetwork with reconnection
// enabled it replays the messages a reset connection lost, so a link flap
// costs latency instead of correctness.
type ReliableNetwork struct {
	inner Network
	cfg   ReliableConfig

	mu     sync.Mutex
	eps    []*reliableEndpoint
	closed bool
}

// NewReliableNetwork wraps inner in the reliable-delivery layer.
func NewReliableNetwork(inner Network, cfg ReliableConfig) *ReliableNetwork {
	if cfg.ResendInterval <= 0 {
		cfg.ResendInterval = DefaultResendInterval
	}
	cfg.Clock = vclock.Or(cfg.Clock)
	return &ReliableNetwork{inner: inner, cfg: cfg}
}

// Register implements Network.
func (n *ReliableNetwork) Register(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	n.mu.Unlock()
	ep, err := n.inner.Register(addr)
	if err != nil {
		return nil, err
	}
	re := &reliableEndpoint{
		net:       n,
		inner:     ep,
		box:       make(chan Message, DefaultMailboxDepth),
		done:      make(chan struct{}),
		nextSeq:   make(map[Addr]uint64),
		unacked:   make(map[Addr][]Message),
		peerEpoch: make(map[string]uint32),
		delivered: make(map[Addr]uint64),
	}
	go re.recvLoop()
	go re.resendLoop()
	n.mu.Lock()
	n.eps = append(n.eps, re)
	n.mu.Unlock()
	return re, nil
}

// Unwrap returns the wrapped Network (observability walks the layer stack).
func (n *ReliableNetwork) Unwrap() Network { return n.inner }

// ResetPeer drops the sender-side reliable state every endpoint of this
// network holds toward program's addresses and starts the next session to
// them at the given epoch. The recovery layer calls it when a peer program
// rejoins after a crash: unacked messages of the dead session are discarded
// (the rejoin handshake regenerates whatever still matters), and subsequent
// sends open a fresh epoch the restarted receiver accepts from counter 1.
// Receiver-side delivery watermarks are kept — stale frames of the dead
// session keep being deduplicated, and the peer's new epoch is admitted by
// the higher-epoch rule.
func (n *ReliableNetwork) ResetPeer(program string, epoch uint32) {
	n.mu.Lock()
	eps := make([]*reliableEndpoint, len(n.eps))
	copy(eps, n.eps)
	n.mu.Unlock()
	for _, e := range eps {
		e.resetPeer(program, epoch)
	}
}

// Close implements Network.
func (n *ReliableNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	eps := n.eps
	n.eps = nil
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return n.inner.Close()
}

// reliableEndpoint is one address's attachment to a ReliableNetwork.
type reliableEndpoint struct {
	net   *ReliableNetwork
	inner Endpoint

	box      chan Message
	done     chan struct{}
	closeOne sync.Once

	// Sender side: next sequence number and resend buffer per destination,
	// plus the per-peer-program session epoch a ResetPeer installed (the
	// configured SessionEpoch when absent).
	smu       sync.Mutex
	nextSeq   map[Addr]uint64
	unacked   map[Addr][]Message // ascending Seq
	peerEpoch map[string]uint32

	// Receiver side: highest in-order sequence delivered per source.
	rmu       sync.Mutex
	delivered map[Addr]uint64

	errMu  sync.Mutex
	recErr error
}

func (e *reliableEndpoint) Addr() Addr { return e.inner.Addr() }

// Send stamps the pair sequence number, records the message for
// retransmission, and attempts immediate delivery. Transient transport
// errors (an unregistered peer, a connection mid-reconnect) are absorbed:
// the resend loop retries until the receiver acks or the endpoint closes.
func (e *reliableEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	msg.Src = e.inner.Addr()
	e.smu.Lock()
	if max := e.net.cfg.MaxUnacked; max > 0 && len(e.unacked[msg.Dst]) >= max {
		e.smu.Unlock()
		return fmt.Errorf("transport: %d messages to %s unacked: %w",
			e.net.cfg.MaxUnacked, msg.Dst, ErrResendBufferFull)
	}
	next, open := e.nextSeq[msg.Dst]
	if !open {
		// First message of a session to this peer: base the counter on the
		// session epoch (ours, or the one the peer's rejoin installed).
		epoch, ok := e.peerEpoch[msg.Dst.Program]
		if !ok {
			epoch = e.net.cfg.SessionEpoch
		}
		next = uint64(epoch) << 32
	}
	next++
	e.nextSeq[msg.Dst] = next
	msg.Seq = next
	e.unacked[msg.Dst] = append(e.unacked[msg.Dst], msg)
	e.smu.Unlock()
	if err := e.inner.Send(msg); err != nil && errors.Is(err, ErrClosed) {
		return err
	}
	return nil
}

// recvLoop pumps the inner endpoint: acks shrink the resend buffer, data
// messages are delivered exactly once in sequence order (gaps wait for
// retransmission, duplicates are re-acked and dropped).
func (e *reliableEndpoint) recvLoop() {
	for {
		m, err := e.inner.Recv()
		if err != nil {
			e.errMu.Lock()
			if e.recErr == nil && !errors.Is(err, ErrClosed) {
				e.recErr = err
			}
			e.errMu.Unlock()
			e.Close()
			return
		}
		if m.Kind == KindAck {
			e.handleAck(m)
			continue
		}
		if m.Seq == 0 {
			// Unsequenced traffic from a sender outside the reliable layer:
			// pass through untouched.
			if !e.deliver(m) {
				return
			}
			continue
		}
		e.rmu.Lock()
		last := e.delivered[m.Src]
		switch {
		case m.Seq == last+1:
			e.delivered[m.Src] = m.Seq
			e.rmu.Unlock()
			e.sendAck(m.Src, m.Seq)
			if !e.deliver(m) {
				return
			}
		case m.Seq>>32 > last>>32 && m.Seq&0xffffffff == 1:
			// First message of a higher session epoch: the peer restarted (or
			// our state toward it was reset) and opened a fresh stream. Accept
			// it as the new baseline instead of treating the epoch bump as a
			// gap that old-session retransmits could never fill.
			e.delivered[m.Src] = m.Seq
			e.rmu.Unlock()
			e.sendAck(m.Src, m.Seq)
			if !e.deliver(m) {
				return
			}
		case m.Seq <= last:
			// Duplicate (a retransmit that raced our ack): re-ack so the
			// sender can clear its buffer, and drop.
			e.rmu.Unlock()
			e.sendAck(m.Src, last)
		default:
			// Gap: an earlier message of this pair is still missing. Drop;
			// the sender retransmits in order, so the stream resumes from
			// the first hole without reordering.
			e.rmu.Unlock()
		}
	}
}

func (e *reliableEndpoint) deliver(m Message) bool {
	select {
	case e.box <- m:
		return true
	case <-e.done:
		return false
	}
}

// sendAck reports the highest in-order sequence received from dst, carried
// in the Seq field itself (cumulative, idempotent, safe to lose).
func (e *reliableEndpoint) sendAck(dst Addr, seq uint64) {
	_ = e.inner.Send(Message{Kind: KindAck, Dst: dst, Tag: "ack", Seq: seq})
}

// handleAck drops every buffered message the cumulative ack covers.
func (e *reliableEndpoint) handleAck(m Message) {
	e.smu.Lock()
	q := e.unacked[m.Src]
	i := 0
	for i < len(q) && q[i].Seq <= m.Seq {
		i++
	}
	if i > 0 {
		e.unacked[m.Src] = append(q[:0:0], q[i:]...)
	}
	e.smu.Unlock()
}

// resendLoop retransmits every unacknowledged message each interval, oldest
// first, preserving per-pair order. Receiver-side dedup makes spurious
// retransmits harmless.
func (e *reliableEndpoint) resendLoop() {
	t := e.net.cfg.Clock.NewTicker(e.net.cfg.ResendInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C():
		case <-e.done:
			return
		}
		e.smu.Lock()
		var pending []Message
		for _, q := range e.unacked {
			pending = append(pending, q...)
		}
		e.smu.Unlock()
		for _, m := range pending {
			_ = e.inner.Send(m) // transient failures retry next tick
		}
	}
}

func (e *reliableEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		select {
		case m := <-e.box:
			return m, nil
		default:
			return Message{}, e.closeErr()
		}
	}
}

func (e *reliableEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	t := e.net.cfg.Clock.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		return Message{}, e.closeErr()
	case <-t.C():
		return Message{}, ErrTimeout
	}
}

func (e *reliableEndpoint) closeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.recErr != nil {
		return e.recErr
	}
	return ErrClosed
}

// resetPeer implements ReliableNetwork.ResetPeer for one endpoint.
func (e *reliableEndpoint) resetPeer(program string, epoch uint32) {
	e.smu.Lock()
	e.peerEpoch[program] = epoch
	for dst := range e.nextSeq {
		if dst.Program == program {
			delete(e.nextSeq, dst)
		}
	}
	for dst := range e.unacked {
		if dst.Program == program {
			delete(e.unacked, dst)
		}
	}
	e.smu.Unlock()
}

// Unacked returns the number of messages awaiting acknowledgement across all
// peers (tests and diagnostics).
func (e *reliableEndpoint) Unacked() int {
	e.smu.Lock()
	defer e.smu.Unlock()
	n := 0
	for _, q := range e.unacked {
		n += len(q)
	}
	return n
}

func (e *reliableEndpoint) Close() error {
	e.closeOne.Do(func() { close(e.done) })
	return e.inner.Close()
}
