package transport

import (
	"errors"
	"fmt"
	"repro/internal/testutil"
	"testing"
	"time"
)

// TestReliableResumeGapFreeAfterBufferFull audits the Send ordering under
// MaxUnacked: a Send rejected with ErrResendBufferFull must NOT have
// advanced the pair's nextSeq — a skipped sequence number would leave the
// in-order receiver waiting forever for the hole. The test fills the resend
// buffer against an absent peer, drains the acks by registering the peer,
// and verifies the stream resumes gap-free.
func TestReliableResumeGapFreeAfterBufferFull(t *testing.T) {
	const window = 8
	n := NewReliableNetwork(NewMemNetwork(), ReliableConfig{
		ResendInterval: 2 * time.Millisecond,
		MaxUnacked:     window,
	})
	defer n.Close()
	a, err := n.Register(Proc("P", 0))
	if err != nil {
		t.Fatal(err)
	}
	dst := Proc("P", 1)

	// Fill: the peer is not registered, so nothing is ever acked and the
	// window closes after exactly `window` accepted sends.
	sent := 0
	for sent < window {
		if err := a.Send(Message{Kind: KindPoint, Dst: dst, Tag: fmt.Sprint(sent)}); err != nil {
			t.Fatalf("send %d within the window: %v", sent, err)
		}
		sent++
	}
	// Hammer the full buffer: every attempt must fail, and none may burn a
	// sequence number.
	for i := 0; i < 5; i++ {
		err := a.Send(Message{Kind: KindPoint, Dst: dst, Tag: "overflow"})
		if !errors.Is(err, ErrResendBufferFull) {
			t.Fatalf("overflow send %d: err = %v, want ErrResendBufferFull", i, err)
		}
	}

	// Drain: the peer appears; the resend loop delivers the buffered window
	// and the cumulative acks empty the buffer.
	b, err := n.Register(dst)
	if err != nil {
		t.Fatal(err)
	}
	re := a.(*reliableEndpoint)
	deadline := testutil.Now().Add(5 * time.Second)
	for re.Unacked() > 0 {
		if testutil.Now().After(deadline) {
			t.Fatalf("resend buffer still holds %d messages", re.Unacked())
		}
		testutil.Sleep(time.Millisecond)
	}

	// Resume: further sends must continue the sequence exactly where the
	// accepted prefix left off. More than a window's worth, so the sender
	// hits backpressure again mid-stream and retries — every rejection must
	// leave the sequence intact.
	const total = window + 12
	for ; sent < total; sent++ {
		for {
			err := a.Send(Message{Kind: KindPoint, Dst: dst, Tag: fmt.Sprint(sent)})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrResendBufferFull) {
				t.Fatalf("send %d after drain: %v", sent, err)
			}
			if testutil.Now().After(deadline) {
				t.Fatalf("send %d still rejected at deadline", sent)
			}
			testutil.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < total; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v (a gap would park the receiver here)", i, err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("delivery %d carries tag %q", i, m.Tag)
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d, want %d (rejected sends must not burn sequence numbers)",
				i, m.Seq, i+1)
		}
	}
}
