package transport

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// DefaultMailboxDepth is the buffered-channel depth of each in-memory
// mailbox. It is deep enough that control traffic never blocks senders in the
// workloads this repo runs; data-plane backpressure is handled above the
// transport.
const DefaultMailboxDepth = 1024

// MemNetwork routes messages through buffered channels inside one OS process.
// It is the default substrate: a "cluster" of goroutine processes.
type MemNetwork struct {
	// Clock drives receive timeouts (nil = wall clock). Set before Register.
	Clock vclock.Clock

	mu     sync.RWMutex
	boxes  map[Addr]*memEndpoint
	seq    map[seqKey]uint64
	depth  int
	closed bool
}

// NewMemNetwork returns an empty in-memory network with DefaultMailboxDepth
// mailboxes.
func NewMemNetwork() *MemNetwork { return NewMemNetworkDepth(DefaultMailboxDepth) }

// NewMemNetworkDepth returns an in-memory network whose mailboxes buffer
// depth messages before senders block.
func NewMemNetworkDepth(depth int) *MemNetwork {
	if depth < 1 {
		depth = 1
	}
	return &MemNetwork{
		boxes: make(map[Addr]*memEndpoint),
		seq:   make(map[seqKey]uint64),
		depth: depth,
	}
}

// Register claims addr and returns its endpoint.
func (n *MemNetwork) Register(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.boxes[addr]; dup {
		return nil, ErrDuplicateAddr
	}
	ep := &memEndpoint{
		net:  n,
		addr: addr,
		box:  make(chan Message, n.depth),
		done: make(chan struct{}),
	}
	n.boxes[addr] = ep
	return ep, nil
}

// Close shuts down the network and every endpoint registered on it.
func (n *MemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.boxes))
	for _, ep := range n.boxes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// deliver routes msg to its destination mailbox, blocking if the mailbox is
// full (providing natural backpressure, like a rendezvous send).
func (n *MemNetwork) deliver(msg Message) error {
	n.mu.RLock()
	dst, ok := n.boxes[msg.Dst]
	n.mu.RUnlock()
	if !ok {
		return ErrUnknownAddr
	}
	select {
	case dst.box <- msg:
		return nil
	case <-dst.done:
		return ErrClosed
	}
}

func (n *MemNetwork) nextSeq(k seqKey) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq[k]++
	return n.seq[k]
}

func (n *MemNetwork) unregister(addr Addr) {
	n.mu.Lock()
	delete(n.boxes, addr)
	n.mu.Unlock()
}

type memEndpoint struct {
	net      *MemNetwork
	addr     Addr
	box      chan Message
	done     chan struct{}
	closeOne sync.Once
}

func (e *memEndpoint) Addr() Addr { return e.addr }

func (e *memEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	msg.Src = e.addr
	if msg.Seq == 0 {
		msg.Seq = e.net.nextSeq(seqKey{src: e.addr, dst: msg.Dst})
	}
	return e.net.deliver(msg)
}

func (e *memEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		// Drain anything raced in before close was observed.
		select {
		case m := <-e.box:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (e *memEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	t := vclock.Or(e.net.Clock).NewTimer(d)
	defer t.Stop()
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		return Message{}, ErrClosed
	case <-t.C():
		return Message{}, ErrTimeout
	}
}

func (e *memEndpoint) Close() error {
	e.closeOne.Do(func() {
		close(e.done)
		e.net.unregister(e.addr)
	})
	return nil
}
