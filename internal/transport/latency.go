package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/vclock"
)

// LatencyConfig parameterizes a LatencyNetwork.
type LatencyConfig struct {
	// Latency is the fixed one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniform random amount in [0, Jitter) per message.
	Jitter time.Duration
	// Seed seeds the jitter RNG (0 behaves like 1), so a scenario seed
	// reproduces the same jitter sequence run to run.
	Seed int64
	// Clock supplies the time source for the delays (nil = wall clock).
	Clock vclock.Clock
}

// LatencyNetwork wraps another Network and delays every message by a fixed
// latency plus optional uniform jitter, preserving per-pair FIFO order. It
// models the cluster interconnect of the paper's testbed (Gigabit Ethernet,
// ~100 µs) or a WAN, and supports the ablation of how control-message
// latency erodes the buddy-help window: a buddy-help message only saves
// memcpys if it outruns the slow process's exports.
type LatencyNetwork struct {
	inner Network
	cfg   LatencyConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLatencyNetwork wraps inner, delaying each delivery by latency plus a
// uniform random amount in [0, jitter). The jitter RNG is seeded with 1;
// callers that sweep scenario seeds use NewLatencyNetworkCfg to plumb their
// own.
func NewLatencyNetwork(inner Network, latency, jitter time.Duration) *LatencyNetwork {
	return NewLatencyNetworkCfg(inner, LatencyConfig{Latency: latency, Jitter: jitter})
}

// NewLatencyNetworkCfg wraps inner with the given latency plan.
func NewLatencyNetworkCfg(inner Network, cfg LatencyConfig) *LatencyNetwork {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Clock = vclock.Or(cfg.Clock)
	return &LatencyNetwork{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Register implements Network.
func (n *LatencyNetwork) Register(addr Addr) (Endpoint, error) {
	ep, err := n.inner.Register(addr)
	if err != nil {
		return nil, err
	}
	le := &latencyEndpoint{
		net:   n,
		inner: ep,
		queue: make(chan delayedMsg, DefaultMailboxDepth),
		done:  make(chan struct{}),
	}
	go le.pump()
	return le, nil
}

// Close implements Network.
func (n *LatencyNetwork) Close() error { return n.inner.Close() }

// Unwrap returns the wrapped Network (observability walks the layer stack).
func (n *LatencyNetwork) Unwrap() Network { return n.inner }

// delay draws one delivery delay.
func (n *LatencyNetwork) delay() time.Duration {
	d := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	return d
}

type delayedMsg struct {
	due time.Time
	msg Message
}

// latencyEndpoint delays sends: each message is queued with a due time and a
// per-endpoint pump goroutine releases them in order, preserving FIFO (the
// fixed base latency dominates, and the pump never reorders).
type latencyEndpoint struct {
	net      *LatencyNetwork
	inner    Endpoint
	queue    chan delayedMsg
	done     chan struct{}
	closeOne sync.Once
}

func (e *latencyEndpoint) pump() {
	for {
		select {
		case dm := <-e.queue:
			if !holdUntil(e.net.cfg.Clock, dm.due, e.done) {
				return
			}
			if err := e.inner.Send(dm.msg); err != nil {
				return
			}
		case <-e.done:
			return
		}
	}
}

func (e *latencyEndpoint) Addr() Addr { return e.inner.Addr() }

func (e *latencyEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	select {
	case e.queue <- delayedMsg{due: e.net.cfg.Clock.Now().Add(e.net.delay()), msg: msg}:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

func (e *latencyEndpoint) Recv() (Message, error) { return e.inner.Recv() }

func (e *latencyEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	return e.inner.RecvTimeout(d)
}

func (e *latencyEndpoint) Close() error {
	e.closeOne.Do(func() { close(e.done) })
	return e.inner.Close()
}
