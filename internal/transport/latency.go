package transport

import (
	"math/rand"
	"sync"
	"time"
)

// LatencyNetwork wraps another Network and delays every message by a fixed
// latency plus optional uniform jitter, preserving per-pair FIFO order. It
// models the cluster interconnect of the paper's testbed (Gigabit Ethernet,
// ~100 µs) or a WAN, and supports the ablation of how control-message
// latency erodes the buddy-help window: a buddy-help message only saves
// memcpys if it outruns the slow process's exports.
type LatencyNetwork struct {
	inner   Network
	latency time.Duration
	jitter  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLatencyNetwork wraps inner, delaying each delivery by latency plus a
// uniform random amount in [0, jitter).
func NewLatencyNetwork(inner Network, latency, jitter time.Duration) *LatencyNetwork {
	return &LatencyNetwork{
		inner:   inner,
		latency: latency,
		jitter:  jitter,
		rng:     rand.New(rand.NewSource(1)),
	}
}

// Register implements Network.
func (n *LatencyNetwork) Register(addr Addr) (Endpoint, error) {
	ep, err := n.inner.Register(addr)
	if err != nil {
		return nil, err
	}
	le := &latencyEndpoint{
		net:   n,
		inner: ep,
		queue: make(chan delayedMsg, DefaultMailboxDepth),
		done:  make(chan struct{}),
	}
	go le.pump()
	return le, nil
}

// Close implements Network.
func (n *LatencyNetwork) Close() error { return n.inner.Close() }

// Unwrap returns the wrapped Network (observability walks the layer stack).
func (n *LatencyNetwork) Unwrap() Network { return n.inner }

// delay draws one delivery delay.
func (n *LatencyNetwork) delay() time.Duration {
	d := n.latency
	if n.jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
		n.mu.Unlock()
	}
	return d
}

type delayedMsg struct {
	due time.Time
	msg Message
}

// latencyEndpoint delays sends: each message is queued with a due time and a
// per-endpoint pump goroutine releases them in order, preserving FIFO (the
// fixed base latency dominates, and the pump never reorders).
type latencyEndpoint struct {
	net      *LatencyNetwork
	inner    Endpoint
	queue    chan delayedMsg
	done     chan struct{}
	closeOne sync.Once
}

func (e *latencyEndpoint) pump() {
	for {
		select {
		case dm := <-e.queue:
			if wait := time.Until(dm.due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-e.done:
					return
				}
			}
			if err := e.inner.Send(dm.msg); err != nil {
				return
			}
		case <-e.done:
			return
		}
	}
}

func (e *latencyEndpoint) Addr() Addr { return e.inner.Addr() }

func (e *latencyEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	select {
	case e.queue <- delayedMsg{due: time.Now().Add(e.net.delay()), msg: msg}:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

func (e *latencyEndpoint) Recv() (Message, error) { return e.inner.Recv() }

func (e *latencyEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	return e.inner.RecvTimeout(d)
}

func (e *latencyEndpoint) Close() error {
	e.closeOne.Do(func() { close(e.done) })
	return e.inner.Close()
}
