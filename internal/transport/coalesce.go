package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// Coalescing defaults: a pending batch is flushed when it reaches
// DefaultCoalesceBytes of encoded payload or DefaultCoalesceMsgs messages,
// or when the flush ticker fires (DefaultFlushInterval), whichever comes
// first. The deadline keeps the added latency of an underfull batch bounded
// and small next to the framework's own round-trip times. Messages whose
// payload exceeds DefaultCoalesceItemBytes (bulk data pieces) bypass the
// batching entirely — they are each worth a frame on their own, and copying
// them into a batch buffer would tax the hot export path.
const (
	DefaultCoalesceBytes     = 8 << 10
	DefaultCoalesceMsgs      = 32
	DefaultCoalesceItemBytes = 1 << 10
	DefaultFlushInterval     = 200 * time.Microsecond
	coalesceMailboxSlack     = 4 // extra mailbox room for unbatched fan-out
)

// CoalesceConfig tunes a CoalescingNetwork.
type CoalesceConfig struct {
	// MaxBytes flushes a program's batch when its encoded payload reaches
	// this many bytes (0 means DefaultCoalesceBytes).
	MaxBytes int
	// MaxMsgs flushes a program's batch at this many pending messages
	// (0 means DefaultCoalesceMsgs).
	MaxMsgs int
	// MaxItemBytes is the largest payload that rides in a batch; bigger
	// messages pass straight through as their own frame (0 means
	// DefaultCoalesceItemBytes).
	MaxItemBytes int
	// FlushInterval bounds how long a pending message waits for company
	// (0 means DefaultFlushInterval).
	FlushInterval time.Duration
	// Clock drives the flush ticker and receive timeouts (nil = wall clock).
	Clock vclock.Clock
	// Disabled turns coalescing off: every message passes straight through.
	// The layer still counts frames, so a disabled run is the baseline the
	// frame-reduction experiments compare against.
	Disabled bool
}

// FrameStats counts the traffic a CoalescingNetwork handed to its inner
// network. Messages is the logical message count; Frames is what actually
// hit the wire (Frames << Messages is the point of the layer).
type FrameStats struct {
	// Messages counts logical messages accepted by Send.
	Messages int64
	// Frames counts inner Send calls (passthrough messages + batch envelopes).
	Frames int64
	// Batches counts batch envelopes among Frames; Batched counts the
	// messages that traveled inside them.
	Batches, Batched int64
	// PayloadBytes totals payload bytes handed to the inner network
	// (envelope payloads count once; sub-message framing is included).
	PayloadBytes int64
	// DecodeErrors counts batch envelopes whose payload failed to decode
	// (protocol corruption; the receiving endpoint is failed).
	DecodeErrors int64
}

// CoalescingNetwork batches small messages into one frame per destination
// program per flush window — the message-combining optimization for the
// sparse repetitive control traffic of the match protocol (import calls,
// request fan-out, responses, answers, buddy-help) and the reliable layer's
// acks.
//
// The batch is shared by every endpoint registered on this network (one
// CoalescingNetwork per OS process; its endpoints share the process's link
// to the world) and is keyed by destination program, because a program's
// endpoints are colocated: its representative is the control gateway the
// batch envelope is addressed to, and the receiving CoalescingNetwork
// dispatches the fully addressed items to its local endpoints. This is
// where the collective-operation semantics pay off — a representative's
// fan-out to its processes, the processes' responses converging on their
// rep, and the importer ranks' simultaneous collective calls all become one
// frame each. Receivers see the original messages, unbatched inside Recv.
//
// Ordering: batched messages keep per-(src,dst) FIFO order (one shared
// batch per destination program, dispatched by one goroutine), and so do
// passthrough messages; the two classes may overtake each other. The
// framework never mixes the classes on one pair (bulk data and control
// travel on disjoint pairs), and a ReliableNetwork stacked on top restores
// total per-pair order by sequence number.
//
// Composability: stack it UNDER a ReliableNetwork
// (NewReliableNetwork(NewCoalescingNetwork(base, cfg), rcfg)) so the
// reliable layer's sequence numbers ride inside batch items and its acks
// get batched too.
type CoalescingNetwork struct {
	inner Network
	cfg   CoalesceConfig

	messages, frames, batches, batched, payloadBytes atomic.Int64
	decodeErrors                                     atomic.Int64

	mu      sync.Mutex
	eps     map[Addr]*coalescingEndpoint
	closed  bool
	started bool
	done    chan struct{}

	// bmu guards the shared send side: the per-program pending batches and
	// the per-pair sequence counters. It is held across inner.Send so a
	// flush and the passthrough message that forced it stay in order.
	bmu     sync.Mutex
	pending map[string]*pendingBatch
	nextSeq map[[2]Addr]uint64
}

// NewCoalescingNetwork wraps inner in the message-coalescing layer.
func NewCoalescingNetwork(inner Network, cfg CoalesceConfig) *CoalescingNetwork {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultCoalesceBytes
	}
	if cfg.MaxMsgs <= 0 {
		cfg.MaxMsgs = DefaultCoalesceMsgs
	}
	if cfg.MaxItemBytes <= 0 {
		cfg.MaxItemBytes = DefaultCoalesceItemBytes
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	cfg.Clock = vclock.Or(cfg.Clock)
	return &CoalescingNetwork{
		inner:   inner,
		cfg:     cfg,
		eps:     make(map[Addr]*coalescingEndpoint),
		done:    make(chan struct{}),
		pending: make(map[string]*pendingBatch),
		nextSeq: make(map[[2]Addr]uint64),
	}
}

// Stats returns a snapshot of the frame counters, aggregated over all
// endpoints of this network.
func (n *CoalescingNetwork) Stats() FrameStats {
	return FrameStats{
		Messages:     n.messages.Load(),
		Frames:       n.frames.Load(),
		Batches:      n.batches.Load(),
		Batched:      n.batched.Load(),
		PayloadBytes: n.payloadBytes.Load(),
		DecodeErrors: n.decodeErrors.Load(),
	}
}

// Register implements Network.
func (n *CoalescingNetwork) Register(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	startFlusher := !n.started && !n.cfg.Disabled
	n.started = true
	n.mu.Unlock()
	ep, err := n.inner.Register(addr)
	if err != nil {
		return nil, err
	}
	ce := &coalescingEndpoint{
		net:    n,
		inner:  ep,
		box:    make(chan Message, DefaultMailboxDepth+coalesceMailboxSlack),
		done:   make(chan struct{}),
		intern: wire.NewInterner(),
	}
	go ce.recvLoop()
	if startFlusher {
		go n.flushLoop()
	}
	n.mu.Lock()
	n.eps[addr] = ce
	n.mu.Unlock()
	return ce, nil
}

// Unwrap returns the wrapped Network (observability walks the layer stack).
func (n *CoalescingNetwork) Unwrap() Network { return n.inner }

// Close implements Network.
func (n *CoalescingNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := n.eps
	n.eps = make(map[Addr]*coalescingEndpoint)
	close(n.done)
	n.mu.Unlock()
	n.bmu.Lock()
	_ = n.flushAllLocked()
	n.bmu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return n.inner.Close()
}

// endpoint looks up a locally registered endpoint.
func (n *CoalescingNetwork) endpoint(addr Addr) *coalescingEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[addr]
}

// anyEndpoint returns some live endpoint (fallback frame sender).
func (n *CoalescingNetwork) anyEndpoint() *coalescingEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ep := range n.eps {
		return ep
	}
	return nil
}

// pendingBatch accumulates encoded batch items bound for one program.
type pendingBatch struct {
	buf []byte
	n   int
	// firstSrc/firstDst address the oldest pending item: the flush is sent
	// through firstSrc's inner endpoint, and firstDst is the fallback
	// envelope destination when the program has no representative.
	firstSrc, firstDst Addr
}

// send is the shared send path behind every endpoint's Send.
func (n *CoalescingNetwork) send(e *coalescingEndpoint, msg Message) error {
	msg.Src = e.inner.Addr()
	n.bmu.Lock()
	defer n.bmu.Unlock()
	// One per-pair counter covers batched and passthrough messages alike, so
	// sequence numbers stay monotonic across the two paths. Nonzero Seq (the
	// reliable layer's numbering) is preserved, as everywhere else.
	if msg.Seq == 0 {
		k := [2]Addr{msg.Src, msg.Dst}
		n.nextSeq[k]++
		msg.Seq = n.nextSeq[k]
	}
	n.messages.Add(1)
	if n.cfg.Disabled || msg.Kind == KindBatch || len(msg.Payload) > n.cfg.MaxItemBytes {
		if err := n.flushProgLocked(msg.Dst.Program); err != nil {
			return err
		}
		n.frames.Add(1)
		n.payloadBytes.Add(int64(len(msg.Payload)))
		return e.inner.Send(msg)
	}
	p := n.pending[msg.Dst.Program]
	if p == nil {
		p = &pendingBatch{}
		n.pending[msg.Dst.Program] = p
	}
	if p.n == 0 {
		p.firstSrc, p.firstDst = msg.Src, msg.Dst
	}
	if p.buf == nil {
		p.buf = make([]byte, 0, n.cfg.MaxBytes+n.cfg.MaxItemBytes+256)
	}
	p.buf = AppendBatchItem(p.buf, msg)
	p.n++
	n.batched.Add(1)
	if p.n >= n.cfg.MaxMsgs || len(p.buf) >= n.cfg.MaxBytes {
		return n.flushProgLocked(msg.Dst.Program)
	}
	return nil
}

// flushProgLocked sends the program's pending batch, if any. The envelope is
// addressed to the program's representative — the control gateway every
// program of the framework registers, colocated with the program's process
// endpoints — whose CoalescingNetwork dispatches the items. When no rep
// exists (bare point-to-point topologies), the oldest item's destination
// serves as the gateway instead. The buffer is handed off to the envelope
// (receivers alias into it), so a fresh one is lazily allocated on the next
// batched send — one allocation per frame.
func (n *CoalescingNetwork) flushProgLocked(prog string) error {
	p := n.pending[prog]
	if p == nil || p.n == 0 {
		return nil
	}
	buf := p.buf
	p.buf, p.n = nil, 0
	sender := n.endpoint(p.firstSrc)
	if sender == nil {
		if sender = n.anyEndpoint(); sender == nil {
			return ErrClosed
		}
	}
	n.frames.Add(1)
	n.batches.Add(1)
	n.payloadBytes.Add(int64(len(buf)))
	env := Message{Kind: KindBatch, Src: sender.inner.Addr(), Dst: Rep(prog), Tag: "batch", Payload: buf}
	err := sender.inner.Send(env)
	if errors.Is(err, ErrUnknownAddr) && !p.firstDst.IsRep() {
		env.Dst = p.firstDst
		err = sender.inner.Send(env)
	}
	return err
}

// flushAllLocked flushes every program (deadline ticks and close).
func (n *CoalescingNetwork) flushAllLocked() error {
	var first error
	for prog, p := range n.pending {
		if p.n == 0 {
			continue
		}
		if err := n.flushProgLocked(prog); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushLoop is the deadline trigger: every FlushInterval it flushes all
// pending batches, bounding the wait of an underfull batch.
func (n *CoalescingNetwork) flushLoop() {
	t := n.cfg.Clock.NewTicker(n.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C():
		case <-n.done:
			return
		}
		n.bmu.Lock()
		_ = n.flushAllLocked() // send errors resurface on the next explicit Send
		n.bmu.Unlock()
	}
}

// dispatch routes an unbatched item to its destination endpoint's mailbox.
// Items for endpoints that are not (or are no longer) registered here are
// dropped, like any send to an unknown address.
func (n *CoalescingNetwork) dispatch(m Message) {
	if target := n.endpoint(m.Dst); target != nil {
		target.deliver(m)
	}
}

// coalescingEndpoint is one address's attachment to a CoalescingNetwork.
type coalescingEndpoint struct {
	net   *CoalescingNetwork
	inner Endpoint

	box      chan Message
	done     chan struct{}
	closeOne sync.Once

	// intern is used only by recvLoop (single goroutine).
	intern *wire.Interner

	errMu  sync.Mutex
	recErr error
}

func (e *coalescingEndpoint) Addr() Addr { return e.inner.Addr() }

// Send implements Endpoint: small messages join the shared per-program
// batch, bulk ones flush it and pass through.
func (e *coalescingEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	return e.net.send(e, msg)
}

// recvLoop pumps the inner endpoint. Batch envelopes (addressed to this
// endpoint as the program's gateway) are opened and their items dispatched
// to the destination endpoints' mailboxes; everything else lands in this
// endpoint's own mailbox. Sub-message payloads alias the envelope payload —
// safe, because the flushing side handed the buffer off and never touches
// it again.
func (e *coalescingEndpoint) recvLoop() {
	for {
		m, err := e.inner.Recv()
		if err != nil {
			e.fail(err)
			return
		}
		if m.Kind != KindBatch {
			if !e.deliver(m) {
				return
			}
			continue
		}
		err = decodeBatch(m, e.intern, func(sub Message) error {
			select {
			case <-e.done:
				return ErrClosed
			default:
			}
			e.net.dispatch(sub)
			return nil
		})
		if err != nil {
			// A malformed batch is protocol corruption; count it and fail the
			// endpoint loudly rather than delivering a partial prefix silently.
			e.net.decodeErrors.Add(1)
			e.fail(err)
			return
		}
	}
}

func (e *coalescingEndpoint) fail(err error) {
	e.errMu.Lock()
	if e.recErr == nil && err != ErrClosed {
		e.recErr = err
	}
	e.errMu.Unlock()
	e.Close()
}

func (e *coalescingEndpoint) deliver(m Message) bool {
	select {
	case e.box <- m:
		return true
	case <-e.done:
		return false
	}
}

func (e *coalescingEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		select {
		case m := <-e.box:
			return m, nil
		default:
			return Message{}, e.closeErr()
		}
	}
}

func (e *coalescingEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	t := e.net.cfg.Clock.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		return Message{}, e.closeErr()
	case <-t.C():
		return Message{}, ErrTimeout
	}
}

func (e *coalescingEndpoint) closeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.recErr != nil {
		return e.recErr
	}
	return ErrClosed
}

// Close flushes the shared pending batches and detaches the endpoint.
func (e *coalescingEndpoint) Close() error {
	e.closeOne.Do(func() {
		e.net.bmu.Lock()
		_ = e.net.flushAllLocked()
		e.net.bmu.Unlock()
		e.net.mu.Lock()
		if e.net.eps[e.inner.Addr()] == e {
			delete(e.net.eps, e.inner.Addr())
		}
		e.net.mu.Unlock()
		close(e.done)
	})
	return e.inner.Close()
}
