package transport

import (
	"errors"
	"fmt"
	"time"
)

// Common transport errors.
var (
	// ErrClosed is returned by operations on a closed endpoint or network.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnknownAddr is returned when sending to an address nobody registered.
	ErrUnknownAddr = errors.New("transport: unknown address")
	// ErrDuplicateAddr is returned when registering an address twice.
	ErrDuplicateAddr = errors.New("transport: address already registered")
	// ErrTimeout is returned by RecvTimeout when the deadline expires.
	ErrTimeout = errors.New("transport: receive timeout")
)

// Network hands out endpoints for addresses and routes messages between them.
type Network interface {
	// Register claims addr and returns its endpoint. Each address may be
	// registered at most once per network.
	Register(addr Addr) (Endpoint, error)
	// Close shuts the network down; all endpoints become closed.
	Close() error
}

// Endpoint is one process's (or rep's) attachment to the network.
type Endpoint interface {
	// Addr returns the address this endpoint was registered under.
	Addr() Addr
	// Send delivers msg to msg.Dst. Delivery between a fixed (src, dst) pair
	// is FIFO. Send stamps msg.Src and msg.Seq.
	Send(msg Message) error
	// Recv blocks until a message arrives or the endpoint closes.
	Recv() (Message, error)
	// RecvTimeout is Recv with a deadline; it returns ErrTimeout on expiry.
	RecvTimeout(d time.Duration) (Message, error)
	// Close detaches the endpoint. Pending and future Recv calls return
	// ErrClosed; messages already queued are discarded.
	Close() error
}

// Unwrapper is implemented by layered networks (reliable, coalescing, fault,
// latency) that wrap another Network, so diagnostics can walk the stack down
// to the base transport.
type Unwrapper interface {
	Unwrap() Network
}

// seqKey identifies a directed sender->receiver pair for FIFO sequence
// numbering.
type seqKey struct {
	src, dst Addr
}

func routeString(m Message) string {
	return fmt.Sprintf("%s->%s kind=%s tag=%q", m.Src, m.Dst, m.Kind, m.Tag)
}
