package transport

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// Dispatcher owns an endpoint's receive loop and fans messages out to
// per-kind queues, so independent protocol layers (collective operations,
// framework control, bulk data) can share one endpoint without stealing each
// other's messages — the role MPI tags/communicators play in the paper's
// substrate.
//
// Queues are unbounded: the dispatcher never blocks on a slow consumer, so a
// process busy in a long compute phase cannot stall its peers' sends (the
// paper's framework likewise decouples request handling from the application
// loop).
type Dispatcher struct {
	ep    Endpoint
	clock vclock.Clock

	mu      sync.Mutex
	queues  map[Kind]*queue
	chans   map[Kind]chan Message
	err     error
	closed  bool
	stopped chan struct{}
}

// queue is an unbounded FIFO with blocking receive. The backing store is a
// ring buffer rather than an append/reslice slice: a steady-state
// producer/consumer pair reuses the same array forever instead of leaking
// capacity off the front and reallocating on every wrap, which keeps the
// collective hot path allocation-free.
type queue struct {
	mu     sync.Mutex
	buf    []Message
	head   int           // index of the oldest message
	n      int           // live messages
	signal chan struct{} // capacity 1; poked on push and on close
	closed bool
}

func newQueue() *queue {
	return &queue{signal: make(chan struct{}, 1)}
}

func (q *queue) push(m Message) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		grown := make([]Message, max(16, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = m
	q.n++
	q.mu.Unlock()
	q.poke()
}

func (q *queue) poke() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.poke()
}

// pop removes the head message, blocking until one is available, the queue
// closes (ErrClosed), or the deadline passes (ErrTimeout; zero deadline means
// no deadline).
func (q *queue) pop(deadline <-chan time.Time) (Message, error) {
	for {
		q.mu.Lock()
		if q.n > 0 {
			m := q.buf[q.head]
			q.buf[q.head] = Message{} // drop payload reference for the GC
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			again := q.n > 0
			q.mu.Unlock()
			if again {
				// More waiting: re-poke for other blocked receivers.
				// (Not a defer: a defer inside a loop heap-allocates its
				// record, which would put one malloc on every hot-path pop.)
				q.poke()
			}
			return m, nil
		}
		if q.closed {
			q.mu.Unlock()
			return Message{}, ErrClosed
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-deadline:
			return Message{}, ErrTimeout
		}
	}
}

// NewDispatcher wraps ep and starts its receive loop.
func NewDispatcher(ep Endpoint) *Dispatcher { return NewDispatcherClock(ep, nil) }

// NewDispatcherClock is NewDispatcher with an injected clock for receive
// deadlines (nil = wall clock).
func NewDispatcherClock(ep Endpoint, clock vclock.Clock) *Dispatcher {
	d := &Dispatcher{
		ep:      ep,
		clock:   vclock.Or(clock),
		queues:  make(map[Kind]*queue),
		chans:   make(map[Kind]chan Message),
		stopped: make(chan struct{}),
	}
	go d.run()
	return d
}

// Chan returns a channel delivering the messages of kind, in order, fed by a
// per-kind pump goroutine (so multiple kinds can be multiplexed with select).
// The channel closes when the dispatcher stops. For any given kind use
// either Chan or Recv/RecvTimeout, not both.
func (d *Dispatcher) Chan(kind Kind) <-chan Message {
	d.mu.Lock()
	ch, ok := d.chans[kind]
	if ok {
		d.mu.Unlock()
		return ch
	}
	ch = make(chan Message, 64)
	d.chans[kind] = ch
	d.mu.Unlock()
	q := d.queue(kind)
	go func() {
		for {
			m, err := q.pop(nil)
			if err != nil {
				close(ch)
				return
			}
			select {
			case ch <- m:
			case <-d.stopped:
				close(ch)
				return
			}
		}
	}()
	return ch
}

// Endpoint returns the wrapped endpoint (for Send; callers must not Recv on
// it directly once a Dispatcher owns it).
func (d *Dispatcher) Endpoint() Endpoint { return d.ep }

// Addr returns the wrapped endpoint's address.
func (d *Dispatcher) Addr() Addr { return d.ep.Addr() }

// Send forwards to the underlying endpoint.
func (d *Dispatcher) Send(msg Message) error { return d.ep.Send(msg) }

func (d *Dispatcher) queue(kind Kind) *queue {
	d.mu.Lock()
	defer d.mu.Unlock()
	q, ok := d.queues[kind]
	if !ok {
		q = newQueue()
		if d.closed {
			q.closed = true
		}
		d.queues[kind] = q
	}
	return q
}

// Recv receives the next message of kind, blocking until one arrives or the
// dispatcher stops (returning ErrClosed).
func (d *Dispatcher) Recv(kind Kind) (Message, error) {
	return d.queue(kind).pop(nil)
}

// RecvTimeout is Recv with a deadline.
func (d *Dispatcher) RecvTimeout(kind Kind, timeout time.Duration) (Message, error) {
	t := d.clock.NewTimer(timeout)
	defer t.Stop()
	return d.queue(kind).pop(t.C())
}

// RecvDeadline is Recv against a caller-owned deadline channel (typically a
// reused timer's C()), so hot paths can avoid allocating a timer per receive.
// A nil deadline blocks indefinitely.
func (d *Dispatcher) RecvDeadline(kind Kind, deadline <-chan time.Time) (Message, error) {
	return d.queue(kind).pop(deadline)
}

// Clock returns the clock receive deadlines are measured on, so callers can
// build reusable timers against the same (possibly virtual) time base.
func (d *Dispatcher) Clock() vclock.Clock { return d.clock }

// Err returns the error that stopped the receive loop, or nil while running.
func (d *Dispatcher) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Close closes the underlying endpoint, which stops the receive loop and
// closes all queues.
func (d *Dispatcher) Close() error { return d.ep.Close() }

func (d *Dispatcher) run() {
	for {
		m, err := d.ep.Recv()
		if err != nil {
			d.stop(err)
			return
		}
		d.queue(m.Kind).push(m)
	}
}

func (d *Dispatcher) stop(err error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.err = err
	qs := make([]*queue, 0, len(d.queues))
	for _, q := range d.queues {
		qs = append(qs, q)
	}
	d.mu.Unlock()
	close(d.stopped)
	for _, q := range qs {
		q.close()
	}
}
