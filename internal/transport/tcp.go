package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Reconnect backoff defaults (see TCPNetwork.MaxRetries).
const (
	DefaultRetryBase = 50 * time.Millisecond
	DefaultRetryCap  = 2 * time.Second
)

// TCPRouter is the hub of a star-topology TCP network. Every endpoint dials
// the router once, announces its address, and the router forwards messages by
// destination. A star keeps connection count linear in the number of
// processes, matching the "rep as low-overhead gateway" spirit of the paper,
// and means the framework code above needs no topology knowledge.
type TCPRouter struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[Addr]*routerConn
	seq    map[seqKey]uint64
	closed bool
	wg     sync.WaitGroup
}

type routerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	emu  sync.Mutex // serializes writes to enc
}

// StartTCPRouter listens on addr (e.g. "127.0.0.1:0") and serves endpoint
// connections until Close.
func StartTCPRouter(addr string) (*TCPRouter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: router listen: %w", err)
	}
	r := &TCPRouter{
		ln:    ln,
		conns: make(map[Addr]*routerConn),
		seq:   make(map[seqKey]uint64),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// ListenAddr returns the router's bound address, for clients to dial.
func (r *TCPRouter) ListenAddr() string { return r.ln.Addr().String() }

// Close stops the router and disconnects all endpoints.
func (r *TCPRouter) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := make([]*routerConn, 0, len(r.conns))
	for _, c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	err := r.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	r.wg.Wait()
	return err
}

func (r *TCPRouter) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

// serveConn reads the hello (a Message whose Src is the endpoint's claimed
// address; a nonzero Seq marks a reconnect epoch), registers the connection,
// then forwards every further message.
func (r *TCPRouter) serveConn(conn net.Conn) {
	defer r.wg.Done()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var hello Message
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return
	}
	addr := hello.Src
	rc := &routerConn{conn: conn, enc: enc}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	if old, dup := r.conns[addr]; dup {
		if hello.Seq == 0 {
			r.mu.Unlock()
			// Duplicate registration: refuse by closing; the dialer's Recv
			// will fail and Register report it.
			conn.Close()
			return
		}
		// Reconnect epoch: the endpoint lost its connection and dialed back
		// before we noticed the old socket die. The new connection takes
		// over; closing the old one unblocks its serveConn.
		delete(r.conns, addr)
		old.conn.Close()
	}
	r.conns[addr] = rc
	r.mu.Unlock()
	// Ack the hello so Register can fail fast on duplicates.
	rc.send(Message{Kind: KindControl, Tag: "hello-ok", Dst: addr})

	defer func() {
		r.mu.Lock()
		if r.conns[addr] == rc {
			delete(r.conns, addr)
		}
		r.mu.Unlock()
		conn.Close()
	}()
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		m.Src = addr // router stamps the true source
		r.forward(m)
	}
}

func (r *TCPRouter) forward(m Message) {
	r.mu.Lock()
	dst, ok := r.conns[m.Dst]
	if ok && m.Seq == 0 {
		// Stamp the pair sequence only for unsequenced traffic; the reliable
		// layer's own numbering (nonzero Seq) must survive the trip.
		r.seq[seqKey{src: m.Src, dst: m.Dst}]++
		m.Seq = r.seq[seqKey{src: m.Src, dst: m.Dst}]
	}
	r.mu.Unlock()
	if !ok {
		// No receiver: drop. TCP endpoints in this repo register before any
		// peer sends to them (the framework handshakes at startup).
		return
	}
	dst.send(m)
}

func (c *routerConn) send(m Message) {
	c.emu.Lock()
	defer c.emu.Unlock()
	_ = c.enc.Encode(m) // a failed peer is detected by its own read loop
}

// TCPNetwork is the client side of a router-based network. Register dials the
// router once per address.
//
// The reconnect fields must be set before Register; they apply to every
// endpoint subsequently registered through this network object.
type TCPNetwork struct {
	routerAddr string

	// MaxRetries is the number of reconnect attempts an endpoint makes after
	// losing its router connection, with exponential backoff from RetryBase
	// capped at RetryCap. Zero (the default) disables reconnection: a lost
	// connection closes the endpoint and Recv reports the underlying error.
	// Reconnection replays nothing by itself — pair it with ReliableNetwork
	// to recover the messages the dead connection swallowed.
	MaxRetries int
	RetryBase  time.Duration
	RetryCap   time.Duration

	mu     sync.Mutex
	eps    []*tcpEndpoint
	closed bool
}

// NewTCPNetwork returns a network whose endpoints connect to the router at
// routerAddr.
func NewTCPNetwork(routerAddr string) *TCPNetwork {
	return &TCPNetwork{routerAddr: routerAddr}
}

func (n *TCPNetwork) retryBase() time.Duration {
	if n.RetryBase > 0 {
		return n.RetryBase
	}
	return DefaultRetryBase
}

func (n *TCPNetwork) retryCap() time.Duration {
	if n.RetryCap > 0 {
		return n.RetryCap
	}
	return DefaultRetryCap
}

// Register dials the router and claims addr.
func (n *TCPNetwork) Register(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	n.mu.Unlock()

	conn, err := net.Dial("tcp", n.routerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial router: %w", err)
	}
	ep := &tcpEndpoint{
		net:  n,
		addr: addr,
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		box:  make(chan Message, DefaultMailboxDepth),
		done: make(chan struct{}),
	}
	// Hello handshake: announce our address, wait for the ack.
	if err := ep.enc.Encode(Message{Kind: KindControl, Tag: "hello", Src: addr}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	var ack Message
	if err := ep.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, ErrDuplicateAddr
	}
	go ep.readLoop()

	n.mu.Lock()
	n.eps = append(n.eps, ep)
	n.mu.Unlock()
	return ep, nil
}

// Close closes every endpoint registered through this network object.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	eps := n.eps
	n.eps = nil
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// ResetConnections abruptly closes the router socket of every endpoint
// without closing the endpoints themselves — the fault-injection hook the
// chaos tests use to simulate a link flap or router-side RST. Endpoints with
// reconnection enabled (MaxRetries > 0) dial back and resume; others fail
// with the connection error on their next Recv.
func (n *TCPNetwork) ResetConnections() {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, len(n.eps))
	copy(eps, n.eps)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.resetConn()
	}
}

type tcpEndpoint struct {
	net  *TCPNetwork
	addr Addr

	emu  sync.Mutex // guards conn/enc (writes and reconnect swaps)
	conn net.Conn
	enc  *gob.Encoder

	dec *gob.Decoder // owned by readLoop

	epoch uint64 // reconnect counter, carried in the re-hello's Seq

	box      chan Message
	done     chan struct{}
	closeOne sync.Once

	errMu  sync.Mutex
	recErr error
}

// readLoop receives until the connection dies; a non-deliberate death either
// reconnects (when the network enables it) or records the error so Recv can
// report why the endpoint stopped, instead of masquerading as a clean Close.
func (e *tcpEndpoint) readLoop() {
	for {
		var m Message
		if err := e.dec.Decode(&m); err != nil {
			select {
			case <-e.done: // deliberate Close
				return
			default:
			}
			if e.reconnect(err) {
				continue
			}
			return
		}
		select {
		case e.box <- m:
		case <-e.done:
			return
		}
	}
}

// reconnect dials the router again with capped exponential backoff. On
// success it swaps the connection under the write lock (in-flight Sends see
// either socket, never a torn one) and the read loop resumes. On exhaustion
// it records the root cause and closes the endpoint.
func (e *tcpEndpoint) reconnect(cause error) bool {
	max := e.net.MaxRetries
	if max <= 0 {
		e.fail(fmt.Errorf("transport: tcp %s: connection lost: %w", e.addr, cause))
		return false
	}
	backoff := e.net.retryBase()
	for attempt := 1; attempt <= max; attempt++ {
		select {
		case <-e.done:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > e.net.retryCap() {
			backoff = e.net.retryCap()
		}
		conn, err := net.Dial("tcp", e.net.routerAddr)
		if err != nil {
			continue
		}
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		epoch := atomic.AddUint64(&e.epoch, 1)
		if err := enc.Encode(Message{Kind: KindControl, Tag: "hello", Src: e.addr, Seq: epoch}); err != nil {
			conn.Close()
			continue
		}
		var ack Message
		if err := dec.Decode(&ack); err != nil {
			conn.Close()
			continue
		}
		e.emu.Lock()
		old := e.conn
		e.conn, e.enc = conn, enc
		e.emu.Unlock()
		e.dec = dec
		old.Close()
		return true
	}
	e.fail(fmt.Errorf("transport: tcp %s: connection lost, %d reconnect attempts failed: %w",
		e.addr, max, cause))
	return false
}

// fail records the endpoint's terminal error and closes it.
func (e *tcpEndpoint) fail(err error) {
	e.errMu.Lock()
	if e.recErr == nil {
		e.recErr = err
	}
	e.errMu.Unlock()
	e.Close()
}

// closeErr distinguishes a connection failure from a deliberate Close.
func (e *tcpEndpoint) closeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.recErr != nil {
		return e.recErr
	}
	return ErrClosed
}

// resetConn closes the current socket without closing the endpoint
// (fault injection; see TCPNetwork.ResetConnections).
func (e *tcpEndpoint) resetConn() {
	e.emu.Lock()
	conn := e.conn
	e.emu.Unlock()
	conn.Close()
}

func (e *tcpEndpoint) Addr() Addr { return e.addr }

func (e *tcpEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	msg.Src = e.addr
	e.emu.Lock()
	defer e.emu.Unlock()
	if err := e.enc.Encode(msg); err != nil {
		return fmt.Errorf("transport: tcp send %s: %w", routeString(msg), err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		select {
		case m := <-e.box:
			return m, nil
		default:
			return Message{}, e.closeErr()
		}
	}
}

func (e *tcpEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		return Message{}, e.closeErr()
	case <-t.C:
		return Message{}, ErrTimeout
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOne.Do(func() {
		close(e.done)
		e.emu.Lock()
		conn := e.conn
		e.emu.Unlock()
		conn.Close()
	})
	return nil
}
