package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPRouter is the hub of a star-topology TCP network. Every endpoint dials
// the router once, announces its address, and the router forwards messages by
// destination. A star keeps connection count linear in the number of
// processes, matching the "rep as low-overhead gateway" spirit of the paper,
// and means the framework code above needs no topology knowledge.
type TCPRouter struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[Addr]*routerConn
	seq    map[seqKey]uint64
	closed bool
	wg     sync.WaitGroup
}

type routerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	emu  sync.Mutex // serializes writes to enc
}

// StartTCPRouter listens on addr (e.g. "127.0.0.1:0") and serves endpoint
// connections until Close.
func StartTCPRouter(addr string) (*TCPRouter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: router listen: %w", err)
	}
	r := &TCPRouter{
		ln:    ln,
		conns: make(map[Addr]*routerConn),
		seq:   make(map[seqKey]uint64),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// ListenAddr returns the router's bound address, for clients to dial.
func (r *TCPRouter) ListenAddr() string { return r.ln.Addr().String() }

// Close stops the router and disconnects all endpoints.
func (r *TCPRouter) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := make([]*routerConn, 0, len(r.conns))
	for _, c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	err := r.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	r.wg.Wait()
	return err
}

func (r *TCPRouter) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

// serveConn reads the hello (a Message whose Src is the endpoint's claimed
// address), registers the connection, then forwards every further message.
func (r *TCPRouter) serveConn(conn net.Conn) {
	defer r.wg.Done()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var hello Message
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return
	}
	addr := hello.Src
	rc := &routerConn{conn: conn, enc: enc}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	if _, dup := r.conns[addr]; dup {
		r.mu.Unlock()
		// Duplicate registration: refuse by closing; the dialer's Recv will
		// fail and Register report it.
		conn.Close()
		return
	}
	r.conns[addr] = rc
	r.mu.Unlock()
	// Ack the hello so Register can fail fast on duplicates.
	rc.send(Message{Kind: KindControl, Tag: "hello-ok", Dst: addr})

	defer func() {
		r.mu.Lock()
		if r.conns[addr] == rc {
			delete(r.conns, addr)
		}
		r.mu.Unlock()
		conn.Close()
	}()
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		m.Src = addr // router stamps the true source
		r.forward(m)
	}
}

func (r *TCPRouter) forward(m Message) {
	r.mu.Lock()
	dst, ok := r.conns[m.Dst]
	if ok {
		r.seq[seqKey{src: m.Src, dst: m.Dst}]++
		m.Seq = r.seq[seqKey{src: m.Src, dst: m.Dst}]
	}
	r.mu.Unlock()
	if !ok {
		// No receiver: drop. TCP endpoints in this repo register before any
		// peer sends to them (the framework handshakes at startup).
		return
	}
	dst.send(m)
}

func (c *routerConn) send(m Message) {
	c.emu.Lock()
	defer c.emu.Unlock()
	_ = c.enc.Encode(m) // a failed peer is detected by its own read loop
}

// TCPNetwork is the client side of a router-based network. Register dials the
// router once per address.
type TCPNetwork struct {
	routerAddr string

	mu     sync.Mutex
	eps    []*tcpEndpoint
	closed bool
}

// NewTCPNetwork returns a network whose endpoints connect to the router at
// routerAddr.
func NewTCPNetwork(routerAddr string) *TCPNetwork {
	return &TCPNetwork{routerAddr: routerAddr}
}

// Register dials the router and claims addr.
func (n *TCPNetwork) Register(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	n.mu.Unlock()

	conn, err := net.Dial("tcp", n.routerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial router: %w", err)
	}
	ep := &tcpEndpoint{
		addr: addr,
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		box:  make(chan Message, DefaultMailboxDepth),
		done: make(chan struct{}),
	}
	// Hello handshake: announce our address, wait for the ack.
	if err := ep.enc.Encode(Message{Kind: KindControl, Tag: "hello", Src: addr}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	var ack Message
	if err := ep.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, ErrDuplicateAddr
	}
	go ep.readLoop()

	n.mu.Lock()
	n.eps = append(n.eps, ep)
	n.mu.Unlock()
	return ep, nil
}

// Close closes every endpoint registered through this network object.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	eps := n.eps
	n.eps = nil
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

type tcpEndpoint struct {
	addr Addr
	conn net.Conn
	enc  *gob.Encoder
	emu  sync.Mutex
	dec  *gob.Decoder

	box      chan Message
	done     chan struct{}
	closeOne sync.Once
}

func (e *tcpEndpoint) readLoop() {
	for {
		var m Message
		if err := e.dec.Decode(&m); err != nil {
			e.Close()
			return
		}
		select {
		case e.box <- m:
		case <-e.done:
			return
		}
	}
}

func (e *tcpEndpoint) Addr() Addr { return e.addr }

func (e *tcpEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	msg.Src = e.addr
	e.emu.Lock()
	defer e.emu.Unlock()
	if err := e.enc.Encode(msg); err != nil {
		return fmt.Errorf("transport: tcp send %s: %w", routeString(msg), err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		select {
		case m := <-e.box:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (e *tcpEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		return Message{}, ErrClosed
	case <-t.C:
		return Message{}, ErrTimeout
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOne.Do(func() {
		close(e.done)
		e.conn.Close()
	})
	return nil
}
