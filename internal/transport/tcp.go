package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// Reconnect backoff defaults (see TCPNetwork.MaxRetries).
const (
	DefaultRetryBase = 50 * time.Millisecond
	DefaultRetryCap  = 2 * time.Second
)

// maxFrameLen bounds a single frame so a corrupt or hostile length prefix
// cannot make a reader allocate unbounded memory.
const maxFrameLen = 1 << 30

// frameAllocChunk is the initial read-buffer allocation for frames larger
// than the current buffer: the buffer grows geometrically as the frame's
// bytes actually arrive, so a lying length prefix costs at most about twice
// the bytes received, never the full claimed length up front.
const frameAllocChunk = 1 << 20

// errFrameLength marks a frame whose length prefix exceeds maxFrameLen — a
// protocol (decode) error, counted in transport.decode_errors, unlike plain
// socket read failures.
var errFrameLength = errors.New("transport: frame length exceeds limit")

// The TCP stream is a sequence of length-prefixed binary frames: an outer
// uvarint frame length followed by the frame encoding of frame.go. Writes
// are vectored (net.Buffers): the header bytes come from a per-connection
// scratch buffer and the payload goes to the socket straight from the
// message, so bulk data is never copied into an intermediate buffer. Reads
// go through one reusable buffer per connection; the router forwards those
// bytes as-is (they are consumed before the next read), while client
// endpoints copy only the payload — the single piece of a received message
// that outlives the read buffer.

// frameWriter owns the write half of one socket. Methods are not
// concurrency-safe; callers serialize (the emu locks below).
type frameWriter struct {
	conn    net.Conn
	scratch []byte
	vecs    net.Buffers
}

// writeMessage encodes and writes one message as a length-prefixed frame.
// Everything but the payload is built in the scratch buffer; the payload is
// written from msg.Payload by the vectored write.
func (w *frameWriter) writeMessage(m Message) error {
	hdr := w.scratch[:0]
	hdr = wire.AppendUvarint(hdr, uint64(FrameSize(m)))
	hdr = append(hdr, byte(m.Kind), 0)
	var fixed [16]byte
	putU64(fixed[0:], m.Seq)
	putU32(fixed[8:], uint32(int32(m.Src.Rank)))
	putU32(fixed[12:], uint32(int32(m.Dst.Rank)))
	hdr = append(hdr, fixed[:]...)
	hdr = wire.AppendString(hdr, m.Src.Program)
	hdr = wire.AppendString(hdr, m.Dst.Program)
	hdr = wire.AppendString(hdr, m.Tag)
	hdr = wire.AppendUvarint(hdr, uint64(len(m.Payload)))
	w.scratch = hdr
	if len(m.Payload) == 0 {
		_, err := w.conn.Write(hdr)
		return err
	}
	w.vecs = append(w.vecs[:0], hdr, m.Payload)
	_, err := w.vecs.WriteTo(w.conn)
	return err
}

// writeRaw writes an already-encoded frame (the router's zero-copy forward
// path: received bytes go back out without a decode/re-encode round trip).
func (w *frameWriter) writeRaw(frame []byte) error {
	hdr := wire.AppendUvarint(w.scratch[:0], uint64(len(frame)))
	w.scratch = hdr
	w.vecs = append(w.vecs[:0], hdr, frame)
	_, err := w.vecs.WriteTo(w.conn)
	return err
}

// frameReader owns the read half of one socket: a buffered reader plus one
// reusable frame buffer. next returns frame bytes valid only until the
// following call.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(conn net.Conn) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(conn, 64<<10)}
}

func (fr *frameReader) next() ([]byte, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, err
	}
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: %d bytes", errFrameLength, n)
	}
	if uint64(cap(fr.buf)) >= n {
		buf := fr.buf[:n]
		if _, err := io.ReadFull(fr.r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	// The frame outgrows the buffer: grow geometrically, filling each new
	// stretch from the socket before growing again, so the allocation tracks
	// bytes that actually arrived rather than the claimed length.
	var buf []byte
	for uint64(len(buf)) < n {
		newCap := uint64(cap(buf)) * 2
		if newCap < frameAllocChunk {
			newCap = frameAllocChunk
		}
		if newCap > n {
			newCap = n
		}
		grown := make([]byte, newCap)
		copy(grown, buf)
		if _, err := io.ReadFull(fr.r, grown[len(buf):]); err != nil {
			return nil, err
		}
		buf = grown
	}
	fr.buf = buf
	return buf, nil
}

// TCPRouter is the hub of a star-topology TCP network. Every endpoint dials
// the router once, announces its address, and the router forwards messages by
// destination. A star keeps connection count linear in the number of
// processes, matching the "rep as low-overhead gateway" spirit of the paper,
// and means the framework code above needs no topology knowledge.
//
// Forwarding is zero-copy: the router never decodes a full message. It reads
// a frame, peeks at the addresses, stamps the pair sequence number in place
// (Seq sits at a fixed offset) and writes the same bytes to the destination
// socket before the next read reuses the buffer.
type TCPRouter struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[Addr]*routerConn
	seq    map[seqKey]uint64
	closed bool
	wg     sync.WaitGroup
}

type routerConn struct {
	conn net.Conn
	emu  sync.Mutex // serializes writes
	w    frameWriter
}

// StartTCPRouter listens on addr (e.g. "127.0.0.1:0") and serves endpoint
// connections until Close.
func StartTCPRouter(addr string) (*TCPRouter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: router listen: %w", err)
	}
	r := &TCPRouter{
		ln:    ln,
		conns: make(map[Addr]*routerConn),
		seq:   make(map[seqKey]uint64),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// ListenAddr returns the router's bound address, for clients to dial.
func (r *TCPRouter) ListenAddr() string { return r.ln.Addr().String() }

// Close stops the router and disconnects all endpoints.
func (r *TCPRouter) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := make([]*routerConn, 0, len(r.conns))
	for _, c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	err := r.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	r.wg.Wait()
	return err
}

func (r *TCPRouter) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

// serveConn reads the hello (a Message whose Src is the endpoint's claimed
// address; a nonzero Seq marks a reconnect epoch), registers the connection,
// then forwards every further frame.
func (r *TCPRouter) serveConn(conn net.Conn) {
	defer r.wg.Done()
	fr := newFrameReader(conn)
	intern := wire.NewInterner()
	helloFrame, err := fr.next()
	if err != nil {
		conn.Close()
		return
	}
	hello, err := DecodeFrame(helloFrame, intern)
	if err != nil || hello.Tag != "hello" {
		conn.Close()
		return
	}
	addr := hello.Src
	rc := &routerConn{conn: conn}
	rc.w.conn = conn
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	if old, dup := r.conns[addr]; dup {
		if hello.Seq == 0 {
			r.mu.Unlock()
			// Duplicate registration: refuse by closing; the dialer's Recv
			// will fail and Register report it.
			conn.Close()
			return
		}
		// Reconnect epoch: the endpoint lost its connection and dialed back
		// before we noticed the old socket die. The new connection takes
		// over; closing the old one unblocks its serveConn.
		delete(r.conns, addr)
		old.conn.Close()
	}
	r.conns[addr] = rc
	r.mu.Unlock()
	// Ack the hello so Register can fail fast on duplicates.
	rc.send(Message{Kind: KindControl, Tag: "hello-ok", Dst: addr})

	defer func() {
		r.mu.Lock()
		if r.conns[addr] == rc {
			delete(r.conns, addr)
		}
		r.mu.Unlock()
		conn.Close()
	}()
	for {
		frame, err := fr.next()
		if err != nil {
			return
		}
		src, dst, err := frameAddrs(frame, intern)
		if err != nil {
			return // corrupt stream: drop the connection
		}
		if src != addr {
			// The frame's source must be the address this connection
			// announced; anything else is a spoof or a bug. Drop the frame.
			continue
		}
		r.forward(frame, src, dst)
	}
}

// forward stamps the pair sequence into the frame in place (unsequenced
// traffic only — the reliable layer's nonzero numbering survives the trip)
// and writes the raw bytes to the destination. The frame aliases the
// caller's read buffer; the write below completes before serveConn reads
// the next frame, so no copy is needed.
func (r *TCPRouter) forward(frame []byte, src, dst Addr) {
	r.mu.Lock()
	to, ok := r.conns[dst]
	if ok && FrameSeq(frame) == 0 {
		k := seqKey{src: src, dst: dst}
		r.seq[k]++
		PatchFrameSeq(frame, r.seq[k])
	}
	r.mu.Unlock()
	if !ok {
		// No receiver: drop. TCP endpoints in this repo register before any
		// peer sends to them (the framework handshakes at startup).
		return
	}
	to.sendRaw(frame)
}

func (c *routerConn) send(m Message) {
	c.emu.Lock()
	defer c.emu.Unlock()
	_ = c.w.writeMessage(m) // a failed peer is detected by its own read loop
}

func (c *routerConn) sendRaw(frame []byte) {
	c.emu.Lock()
	defer c.emu.Unlock()
	_ = c.w.writeRaw(frame)
}

// TCPNetwork is the client side of a router-based network. Register dials the
// router once per address.
//
// The reconnect fields must be set before Register; they apply to every
// endpoint subsequently registered through this network object.
type TCPNetwork struct {
	routerAddr string

	// MaxRetries is the number of reconnect attempts an endpoint makes after
	// losing its router connection, with exponential backoff from RetryBase
	// capped at RetryCap. Zero (the default) disables reconnection: a lost
	// connection closes the endpoint and Recv reports the underlying error.
	// Reconnection replays nothing by itself — pair it with ReliableNetwork
	// to recover the messages the dead connection swallowed.
	MaxRetries int
	RetryBase  time.Duration
	RetryCap   time.Duration

	// RetrySeed seeds the reconnect-jitter RNG. Zero seeds it from the clock
	// at first use, decorrelating the processes of a real deployment; test
	// harnesses that sweep scenario seeds set it so backoff jitter replays.
	RetrySeed int64

	// Clock drives reconnect backoff waits and receive timeouts
	// (nil = wall clock).
	Clock vclock.Clock

	// SessionEpoch, when nonzero, marks this network object as a restarted
	// incarnation of its addresses: the initial hello carries it, so the
	// router hands any stale registration of the same address over to the
	// new connection instead of refusing it as a duplicate (the recovery
	// layer's session handoff). Reconnect epochs count on from it.
	SessionEpoch uint64

	// decodeErrors counts frames that failed to decode on any endpoint of
	// this network; reconnects counts successful re-registrations after a
	// lost router connection. Both feed the transport.* obsv counters.
	decodeErrors atomic.Uint64
	reconnects   atomic.Uint64

	mu     sync.Mutex
	eps    []*tcpEndpoint
	closed bool

	// jrng is the reconnect-jitter RNG, locally seeded from RetrySeed (never
	// the package-global rand, whose draw order depends on goroutine
	// interleaving and would break scenario-seed replay).
	jmu  sync.Mutex
	jrng *rand.Rand
}

// TCPStats is a snapshot of a TCPNetwork's error counters.
type TCPStats struct {
	// DecodeErrors counts received frames that failed to decode (corrupt or
	// truncated streams; each costs the connection, which then reconnects).
	DecodeErrors uint64
	// Reconnects counts successful endpoint re-registrations after a lost
	// router connection — the reconnect epochs the router has seen from this
	// process.
	Reconnects uint64
}

// Stats returns the network's accumulated error counters.
func (n *TCPNetwork) Stats() TCPStats {
	return TCPStats{
		DecodeErrors: n.decodeErrors.Load(),
		Reconnects:   n.reconnects.Load(),
	}
}

// NewTCPNetwork returns a network whose endpoints connect to the router at
// routerAddr.
func NewTCPNetwork(routerAddr string) *TCPNetwork {
	return &TCPNetwork{routerAddr: routerAddr}
}

func (n *TCPNetwork) retryBase() time.Duration {
	if n.RetryBase > 0 {
		return n.RetryBase
	}
	return DefaultRetryBase
}

func (n *TCPNetwork) retryCap() time.Duration {
	if n.RetryCap > 0 {
		return n.RetryCap
	}
	return DefaultRetryCap
}

func (n *TCPNetwork) clock() vclock.Clock { return vclock.Or(n.Clock) }

// jitter draws a uniform duration in [0, limit) from the reconnect RNG,
// lazily seeding it on first use.
func (n *TCPNetwork) jitter(limit int64) time.Duration {
	n.jmu.Lock()
	defer n.jmu.Unlock()
	if n.jrng == nil {
		seed := n.RetrySeed
		if seed == 0 {
			seed = n.clock().Now().UnixNano() | 1
		}
		n.jrng = rand.New(rand.NewSource(seed))
	}
	return time.Duration(n.jrng.Int63n(limit))
}

// Register dials the router and claims addr.
func (n *TCPNetwork) Register(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	n.mu.Unlock()

	conn, err := net.Dial("tcp", n.routerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial router: %w", err)
	}
	ep := &tcpEndpoint{
		net:    n,
		addr:   addr,
		conn:   conn,
		fr:     newFrameReader(conn),
		intern: wire.NewInterner(),
		box:    make(chan Message, DefaultMailboxDepth),
		done:   make(chan struct{}),
	}
	ep.w.conn = conn
	ep.epoch = n.SessionEpoch
	// Hello handshake: announce our address, wait for the ack. A nonzero Seq
	// (restarted incarnation) takes over any stale registration.
	if err := ep.w.writeMessage(Message{Kind: KindControl, Tag: "hello", Src: addr, Seq: n.SessionEpoch}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	if _, err := ep.fr.next(); err != nil {
		conn.Close()
		return nil, ErrDuplicateAddr
	}
	go ep.readLoop()

	n.mu.Lock()
	n.eps = append(n.eps, ep)
	n.mu.Unlock()
	return ep, nil
}

// Close closes every endpoint registered through this network object.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	eps := n.eps
	n.eps = nil
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// ResetConnections abruptly closes the router socket of every endpoint
// without closing the endpoints themselves — the fault-injection hook the
// chaos tests use to simulate a link flap or router-side RST. Endpoints with
// reconnection enabled (MaxRetries > 0) dial back and resume; others fail
// with the connection error on their next Recv.
func (n *TCPNetwork) ResetConnections() {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, len(n.eps))
	copy(eps, n.eps)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.resetConn()
	}
}

type tcpEndpoint struct {
	net  *TCPNetwork
	addr Addr

	emu  sync.Mutex // guards conn/w (writes and reconnect swaps)
	conn net.Conn
	w    frameWriter

	fr     *frameReader   // owned by readLoop
	intern *wire.Interner // owned by readLoop

	epoch uint64 // reconnect counter, carried in the re-hello's Seq

	box      chan Message
	done     chan struct{}
	closeOne sync.Once

	errMu  sync.Mutex
	recErr error
}

// readLoop receives until the connection dies; a non-deliberate death either
// reconnects (when the network enables it) or records the error so Recv can
// report why the endpoint stopped, instead of masquerading as a clean Close.
func (e *tcpEndpoint) readLoop() {
	for {
		frame, err := e.fr.next()
		if err == nil {
			var m Message
			if m, err = DecodeFrame(frame, e.intern); err == nil {
				// The decoded payload aliases the read buffer; the mailbox
				// retains the message past the next read, so the payload is
				// the one thing we copy.
				if len(m.Payload) > 0 {
					m.Payload = append([]byte(nil), m.Payload...)
				}
				select {
				case e.box <- m:
					continue
				case <-e.done:
					return
				}
			}
			// A frame that arrived but would not decode: corrupt stream. The
			// connection is dropped (and reconnected) like a read error, but
			// the cause is counted separately for /statusz.
			e.net.decodeErrors.Add(1)
		} else if errors.Is(err, errFrameLength) {
			// An impossible length prefix is protocol corruption too, not a
			// mere socket failure.
			e.net.decodeErrors.Add(1)
		}
		select {
		case <-e.done: // deliberate Close
			return
		default:
		}
		if e.reconnect(err) {
			continue
		}
		return
	}
}

// reconnect dials the router again with capped, jittered exponential
// backoff. On success it swaps the connection under the write lock
// (in-flight Sends see either socket, never a torn one) and the read loop
// resumes. On exhaustion it records the root cause and closes the endpoint.
func (e *tcpEndpoint) reconnect(cause error) bool {
	max := e.net.MaxRetries
	if max <= 0 {
		e.fail(fmt.Errorf("transport: tcp %s: connection lost: %w", e.addr, cause))
		return false
	}
	backoff := e.net.retryBase()
	for attempt := 1; attempt <= max; attempt++ {
		// Sleep a uniformly random duration in [backoff/2, backoff]: peers
		// that lost the same router would otherwise retry in lockstep and
		// keep colliding on every doubled interval.
		sleep := backoff/2 + e.net.jitter(int64(backoff/2)+1)
		t := e.net.clock().NewTimer(sleep)
		select {
		case <-e.done:
			t.Stop()
			return false
		case <-t.C():
		}
		if backoff *= 2; backoff > e.net.retryCap() {
			backoff = e.net.retryCap()
		}
		conn, err := net.Dial("tcp", e.net.routerAddr)
		if err != nil {
			continue
		}
		w := frameWriter{conn: conn}
		fr := newFrameReader(conn)
		epoch := atomic.AddUint64(&e.epoch, 1)
		if err := w.writeMessage(Message{Kind: KindControl, Tag: "hello", Src: e.addr, Seq: epoch}); err != nil {
			conn.Close()
			continue
		}
		if _, err := fr.next(); err != nil {
			conn.Close()
			continue
		}
		e.emu.Lock()
		old := e.conn
		e.conn, e.w = conn, w
		e.emu.Unlock()
		e.fr = fr
		old.Close()
		e.net.reconnects.Add(1)
		return true
	}
	e.fail(fmt.Errorf("transport: tcp %s: connection lost, %d reconnect attempts failed: %w",
		e.addr, max, cause))
	return false
}

// fail records the endpoint's terminal error and closes it.
func (e *tcpEndpoint) fail(err error) {
	e.errMu.Lock()
	if e.recErr == nil {
		e.recErr = err
	}
	e.errMu.Unlock()
	e.Close()
}

// closeErr distinguishes a connection failure from a deliberate Close.
func (e *tcpEndpoint) closeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.recErr != nil {
		return e.recErr
	}
	return ErrClosed
}

// resetConn closes the current socket without closing the endpoint
// (fault injection; see TCPNetwork.ResetConnections).
func (e *tcpEndpoint) resetConn() {
	e.emu.Lock()
	conn := e.conn
	e.emu.Unlock()
	conn.Close()
}

func (e *tcpEndpoint) Addr() Addr { return e.addr }

func (e *tcpEndpoint) Send(msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	msg.Src = e.addr
	e.emu.Lock()
	defer e.emu.Unlock()
	if err := e.w.writeMessage(msg); err != nil {
		return fmt.Errorf("transport: tcp send %s: %w", routeString(msg), err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (Message, error) {
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		select {
		case m := <-e.box:
			return m, nil
		default:
			return Message{}, e.closeErr()
		}
	}
}

func (e *tcpEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	t := e.net.clock().NewTimer(d)
	defer t.Stop()
	select {
	case m := <-e.box:
		return m, nil
	case <-e.done:
		return Message{}, e.closeErr()
	case <-t.C():
		return Message{}, ErrTimeout
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOne.Do(func() {
		close(e.done)
		e.emu.Lock()
		conn := e.conn
		e.emu.Unlock()
		conn.Close()
	})
	return nil
}
