package transport

import (
	"fmt"
	"repro/internal/testutil"
	"testing"
	"time"
)

func TestLatencyDelaysDelivery(t *testing.T) {
	n := NewLatencyNetwork(NewMemNetwork(), 30*time.Millisecond, 0)
	defer n.Close()
	a, err := n.Register(Proc("L", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(Proc("L", 1))
	if err != nil {
		t.Fatal(err)
	}
	start := testutil.Now()
	if err := a.Send(Message{Kind: KindPoint, Dst: b.Addr()}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestLatencyPreservesFIFO(t *testing.T) {
	n := NewLatencyNetwork(NewMemNetwork(), time.Millisecond, 500*time.Microsecond)
	defer n.Close()
	a, _ := n.Register(Proc("L", 0))
	b, _ := n.Register(Proc("L", 1))
	const k = 50
	for i := 0; i < k; i++ {
		if err := a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("out of order at %d: %q", i, m.Tag)
		}
	}
}

func TestLatencyZeroIsTransparent(t *testing.T) {
	n := NewLatencyNetwork(NewMemNetwork(), 0, 0)
	defer n.Close()
	a, _ := n.Register(Proc("L", 0))
	b, _ := n.Register(Proc("L", 1))
	a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Payload: []byte("x")})
	m, err := b.RecvTimeout(time.Second)
	if err != nil || string(m.Payload) != "x" {
		t.Fatalf("%v %q", err, m.Payload)
	}
	if m.Src != a.Addr() {
		t.Errorf("src %v", m.Src)
	}
}

func TestLatencyCloseUnblocks(t *testing.T) {
	n := NewLatencyNetwork(NewMemNetwork(), time.Minute, 0)
	a, _ := n.Register(Proc("L", 0))
	b, _ := n.Register(Proc("L", 1))
	a.Send(Message{Kind: KindPoint, Dst: b.Addr()}) // would deliver in a minute
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errc <- err
	}()
	testutil.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("recv succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not unblock")
	}
	if err := a.Send(Message{Dst: b.Addr()}); err == nil {
		// The pump may still accept into the queue before noticing; a send
		// after Close on the endpoint must fail though.
		a.Close()
		if err := a.Send(Message{Dst: b.Addr()}); err == nil {
			t.Error("send after endpoint close succeeded")
		}
	}
}

func TestLatencyDuplicateRegister(t *testing.T) {
	n := NewLatencyNetwork(NewMemNetwork(), 0, 0)
	defer n.Close()
	if _, err := n.Register(Proc("L", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(Proc("L", 0)); err == nil {
		t.Error("duplicate register accepted")
	}
}
