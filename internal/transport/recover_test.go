package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestReliableSessionEpochRejoin exercises the crash+rejoin path of the
// reliable layer: program B dies mid-stream with messages to it unacked,
// restarts under session epoch 1, and the survivor's ResetPeer opens a fresh
// epoch both directions. Dead-session messages are dropped (the recovery
// protocol regenerates state above the transport); post-rejoin traffic flows
// in order in both directions.
func TestReliableSessionEpochRejoin(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	base := NewMemNetwork()
	// One ReliableNetwork per simulated OS process, over one shared base —
	// the same shape core.Join builds in distributed mode.
	rnA := NewReliableNetwork(base, ReliableConfig{ResendInterval: 5 * time.Millisecond})
	rnB := NewReliableNetwork(base, ReliableConfig{ResendInterval: 5 * time.Millisecond})
	defer rnA.Close() // closes base too
	a, err := rnA.Register(Proc("A", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rnB.Register(Proc("B", 0))
	if err != nil {
		t.Fatal(err)
	}
	// Healthy traffic both ways.
	for i := 0; i < 3; i++ {
		a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: fmt.Sprint("pre", i)})
		if m, err := b.RecvTimeout(5 * time.Second); err != nil || m.Tag != fmt.Sprint("pre", i) {
			t.Fatalf("pre %d: %v %v", i, m, err)
		}
	}
	b.Send(Message{Kind: KindPoint, Dst: a.Addr(), Tag: "pre-back"})
	if m, err := a.RecvTimeout(5 * time.Second); err != nil || m.Tag != "pre-back" {
		t.Fatalf("pre-back: %v %v", m, err)
	}

	// B crashes. A keeps sending; the messages pile up unacked.
	b.Close()
	for i := 0; i < 4; i++ {
		a.Send(Message{Kind: KindPoint, Dst: Proc("B", 0), Tag: "lost"})
	}
	if got := a.(*reliableEndpoint).Unacked(); got == 0 {
		t.Fatal("outage sends were not buffered")
	}

	// B restarts under epoch 1; the survivor resets its state toward B.
	rnB2 := NewReliableNetwork(base, ReliableConfig{
		ResendInterval: 5 * time.Millisecond,
		SessionEpoch:   1,
	})
	b2, err := rnB2.Register(Proc("B", 0))
	if err != nil {
		t.Fatal(err)
	}
	rnA.ResetPeer("B", 1)
	if got := a.(*reliableEndpoint).Unacked(); got != 0 {
		t.Fatalf("%d dead-session messages survived ResetPeer", got)
	}

	// Fresh epoch, both directions. B2's first send to A must be admitted by
	// A's higher-epoch rule even though A's delivery watermark for B is from
	// the dead session.
	a.Send(Message{Kind: KindPoint, Dst: b2.Addr(), Tag: "post"})
	if m, err := b2.RecvTimeout(5 * time.Second); err != nil || m.Tag != "post" {
		t.Fatalf("post to rejoined B: %v %v", m, err)
	}
	b2.Send(Message{Kind: KindPoint, Dst: a.Addr(), Tag: "post-back"})
	if m, err := a.RecvTimeout(5 * time.Second); err != nil || m.Tag != "post-back" {
		t.Fatalf("post-back from rejoined B: %v %v", m, err)
	}
	// Nothing from the dead session leaks through.
	if m, err := b2.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Fatalf("dead-session message delivered after rejoin: %+v", m)
	}
	b2.Close()
	a.Close()
	// rnB/rnB2 share the base with rnA; close their endpoint bookkeeping
	// before the deferred rnA.Close tears the base down.
	for _, ep := range rnB.eps {
		ep.Close()
	}
	for _, ep := range rnB2.eps {
		ep.Close()
	}
}

// TestTCPSessionHandoffResend is the reconnect-epoch boundary test over real
// sockets: a restarted process re-registers its address with a nonzero
// SessionEpoch while the router still holds the dead incarnation's
// connection, takes the registration over, and reliable delivery resumes
// under the new epoch — with no goroutine leaked by the restart.
func TestTCPSessionHandoffResend(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	r := startRouter(t)

	tcpA := NewTCPNetwork(r.ListenAddr())
	tcpA.MaxRetries = 10
	tcpA.RetryBase = 5 * time.Millisecond
	rnA := NewReliableNetwork(tcpA, ReliableConfig{ResendInterval: 10 * time.Millisecond})
	defer rnA.Close()
	a, err := rnA.Register(Proc("A", 0))
	if err != nil {
		t.Fatal(err)
	}

	tcpB := NewTCPNetwork(r.ListenAddr())
	rnB := NewReliableNetwork(tcpB, ReliableConfig{ResendInterval: 10 * time.Millisecond})
	b, err := rnB.Register(Proc("B", 0))
	if err != nil {
		t.Fatal(err)
	}
	a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: "pre"})
	if m, err := b.RecvTimeout(5 * time.Second); err != nil || m.Tag != "pre" {
		t.Fatalf("pre: %v %v", m, err)
	}

	// B's process dies without telling the router: its registration is stale.
	// (Close only the reliable wrapper's endpoints, then the sockets, like a
	// SIGKILL tearing the connections down.)
	rnB.Close()
	// A's sends during the outage go nowhere and stay unacked.
	a.Send(Message{Kind: KindPoint, Dst: Proc("B", 0), Tag: "lost"})

	// Restart: same address, session epoch 1. The nonzero hello Seq makes
	// the router hand any stale registration over instead of refusing.
	tcpB2 := NewTCPNetwork(r.ListenAddr())
	tcpB2.SessionEpoch = 1
	rnB2 := NewReliableNetwork(tcpB2, ReliableConfig{
		ResendInterval: 10 * time.Millisecond,
		SessionEpoch:   1,
	})
	defer rnB2.Close()
	b2, err := rnB2.Register(Proc("B", 0))
	if err != nil {
		t.Fatalf("session handoff register: %v", err)
	}
	rnA.ResetPeer("B", 1)

	// Reliable delivery resumes under the new epoch, in order, exactly once.
	const k = 50
	go func() {
		for i := 0; i < k; i++ {
			a.Send(Message{Kind: KindPoint, Dst: b2.Addr(), Tag: fmt.Sprint(i)})
		}
	}()
	for i := 0; i < k; i++ {
		m, err := b2.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d after handoff: %v", i, err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("delivery %d carries tag %q (lost, reordered, or duplicated)", i, m.Tag)
		}
	}
	b2.Send(Message{Kind: KindPoint, Dst: a.Addr(), Tag: "back"})
	if m, err := a.RecvTimeout(5 * time.Second); err != nil || m.Tag != "back" {
		t.Fatalf("back: %v %v", m, err)
	}
}

// TestTCPStatsCounters checks the decode-error and reconnect counters the
// obsv layer surfaces.
func TestTCPStatsCounters(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	n.MaxRetries = 10
	n.RetryBase = 5 * time.Millisecond
	defer n.Close()
	a, err := n.Register(Proc("P", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(Proc("P", 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.Reconnects != 0 || s.DecodeErrors != 0 {
		t.Fatalf("fresh network stats = %+v", s)
	}
	n.ResetConnections()
	// Both endpoints reconnect; prove liveness, then check the counter.
	deadline := testutil.Now().Add(10 * time.Second)
	for {
		a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: "after"})
		if m, err := b.RecvTimeout(200 * time.Millisecond); err == nil && m.Tag == "after" {
			break
		}
		if testutil.Now().After(deadline) {
			t.Fatal("endpoints never recovered from the reset")
		}
	}
	if s := n.Stats(); s.Reconnects == 0 {
		t.Fatalf("reset produced no reconnect count: %+v", s)
	}
}
