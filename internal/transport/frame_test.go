package transport

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

func frameMessages() []Message {
	return []Message{
		{},
		{Kind: KindData, Src: Proc("solver", 3), Dst: Proc("viz", 0), Tag: "temp", Seq: 42, Payload: []byte{1, 2, 3, 4}},
		{Kind: KindRequest, Src: Rep("viz"), Dst: Rep("solver"), Tag: "temp->grid", Seq: 1 << 40},
		{Kind: KindAck, Src: Proc("a", 2147483647), Dst: Rep("b"), Seq: ^uint64(0)},
		{Kind: KindBatch, Src: Proc("x", 0), Dst: Proc("y", 1), Payload: bytes.Repeat([]byte{0xAB}, 300)},
		{Kind: KindData, Src: Proc("solver", 0), Dst: Proc("viz", 1), Tag: "temp", Seq: 7, Payload: []byte{5}, Trace: 0xDEADBEEF},
		{Kind: KindForward, Src: Rep("viz"), Dst: Proc("viz", 0), Tag: "temp", Trace: ^uint64(0)},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := wire.NewInterner()
	for _, want := range frameMessages() {
		frame := AppendFrame(nil, want)
		if len(frame) != FrameSize(want) {
			t.Fatalf("%v: FrameSize=%d, encoded %d", want, FrameSize(want), len(frame))
		}
		got, err := DecodeFrame(frame, in)
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if got.Kind != want.Kind || got.Src != want.Src || got.Dst != want.Dst ||
			got.Tag != want.Tag || got.Seq != want.Seq || got.Trace != want.Trace ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
		// Decode without an interner must agree.
		got2, err := DecodeFrame(frame, nil)
		if err != nil || got2.Tag != want.Tag || got2.Src != want.Src {
			t.Fatalf("nil-interner decode: %+v err=%v", got2, err)
		}
	}
}

// TestFrameTraceEncoding pins the wire cost of the trace field: zero bytes
// when unset, one 8-byte word when set, and the flags bit distinguishing the
// two. The seq patch and address peek must both work on traced frames.
func TestFrameTraceEncoding(t *testing.T) {
	plain := Message{Kind: KindData, Src: Proc("a", 0), Dst: Proc("b", 1), Tag: "t", Payload: []byte{1}}
	traced := plain
	traced.Trace = 9001
	pf, tf := AppendFrame(nil, plain), AppendFrame(nil, traced)
	if len(tf) != len(pf)+8 {
		t.Fatalf("traced frame is %d bytes, untraced %d; want +8", len(tf), len(pf))
	}
	if pf[1] != 0 {
		t.Fatalf("untraced frame flags = %#x, want 0", pf[1])
	}
	if tf[1] != frameFlagTrace {
		t.Fatalf("traced frame flags = %#x, want %#x", tf[1], frameFlagTrace)
	}
	PatchFrameSeq(tf, 55)
	src, dst, err := frameAddrs(tf, wire.NewInterner())
	if err != nil || src != traced.Src || dst != traced.Dst {
		t.Fatalf("frameAddrs on traced frame: %v -> %v, err=%v", src, dst, err)
	}
	got, err := DecodeFrame(tf, nil)
	if err != nil || got.Trace != 9001 || got.Seq != 55 || got.Tag != "t" {
		t.Fatalf("traced decode: %+v err=%v", got, err)
	}
	// Unknown flag bits are rejected, not silently misparsed.
	bad := append([]byte(nil), pf...)
	bad[1] = 0x40
	if _, err := DecodeFrame(bad, nil); err == nil {
		t.Fatal("unknown flags accepted")
	}
	if _, _, err := frameAddrs(bad, wire.NewInterner()); err == nil {
		t.Fatal("frameAddrs accepted unknown flags")
	}
}

func TestFrameSeqPatch(t *testing.T) {
	m := Message{Kind: KindData, Src: Proc("solver", 1), Dst: Proc("viz", 2), Tag: "t", Payload: []byte{9}}
	frame := AppendFrame(nil, m)
	if FrameSeq(frame) != 0 {
		t.Fatalf("fresh frame seq %d", FrameSeq(frame))
	}
	PatchFrameSeq(frame, 77)
	if FrameSeq(frame) != 77 {
		t.Fatalf("patched seq %d", FrameSeq(frame))
	}
	got, err := DecodeFrame(frame, nil)
	if err != nil || got.Seq != 77 {
		t.Fatalf("decode after patch: %+v err=%v", got, err)
	}
	if got.Payload[0] != 9 || got.Tag != "t" {
		t.Fatal("patch corrupted neighbouring fields")
	}
}

func TestFrameAddrs(t *testing.T) {
	in := wire.NewInterner()
	m := Message{Kind: KindData, Src: Proc("solver", 5), Dst: Rep("viz"), Tag: "x", Payload: []byte{1}}
	frame := AppendFrame(nil, m)
	src, dst, err := frameAddrs(frame, in)
	if err != nil {
		t.Fatal(err)
	}
	if src != m.Src || dst != m.Dst {
		t.Fatalf("frameAddrs: %v -> %v", src, dst)
	}
	if _, _, err := frameAddrs(frame[:10], in); err == nil {
		t.Fatal("no error on truncated header")
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	m := Message{Kind: KindData, Src: Proc("ab", 1), Dst: Proc("cd", 2), Tag: "tag", Payload: []byte{1, 2, 3}}
	frame := AppendFrame(nil, m)
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeFrame(frame[:cut], nil); err == nil {
			t.Fatalf("cut=%d: truncated frame decoded", cut)
		}
	}
	if _, err := DecodeFrame(append(frame, 0), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestFramePayloadAliasing(t *testing.T) {
	m := Message{Kind: KindData, Src: Proc("a", 0), Dst: Proc("b", 0), Payload: []byte{1, 2, 3}}
	frame := AppendFrame(nil, m)
	got, err := DecodeFrame(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] = 99
	if got.Payload[2] != 99 {
		t.Fatal("payload does not alias the frame buffer")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := wire.NewInterner()
	// Items are fully addressed: a batch groups traffic from several local
	// endpoints to several endpoints of the destination program.
	items := []Message{
		{Kind: KindResponse, Src: Proc("solver", 1), Dst: Rep("viz"), Tag: "temp", Seq: 5, Payload: []byte("r1")},
		{Kind: KindAck, Src: Rep("solver"), Dst: Rep("viz"), Seq: 12},
		{Kind: KindBuddyHelp, Src: Rep("solver"), Dst: Proc("viz", 2), Tag: "temp", Payload: bytes.Repeat([]byte{7}, 130)},
		{Kind: KindData, Src: Proc("solver", 0), Dst: Proc("viz", 1), Tag: "temp", Seq: 3, Payload: []byte("d"), Trace: 1 << 50},
	}
	var payload []byte
	wantSize := 0
	for _, it := range items {
		payload = AppendBatchItem(payload, it)
		wantSize += BatchItemSize(it)
	}
	if len(payload) != wantSize {
		t.Fatalf("BatchItemSize sum %d, encoded %d", wantSize, len(payload))
	}
	env := Message{Kind: KindBatch, Src: Proc("solver", 1), Dst: Rep("viz"), Payload: payload}
	var got []Message
	if err := decodeBatch(env, in, func(m Message) error {
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i, it := range items {
		g := got[i]
		if g.Kind != it.Kind || g.Tag != it.Tag || g.Seq != it.Seq || g.Trace != it.Trace ||
			!bytes.Equal(g.Payload, it.Payload) {
			t.Fatalf("item %d:\n got %+v\nwant %+v", i, g, it)
		}
		if g.Src != it.Src || g.Dst != it.Dst {
			t.Fatalf("item %d: addrs %v -> %v, want %v -> %v", i, g.Src, g.Dst, it.Src, it.Dst)
		}
	}
	// Corrupt batch reports the source.
	bad := env
	bad.Payload = payload[:len(payload)-1]
	if err := decodeBatch(bad, in, func(Message) error { return nil }); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func TestFrameDecodeAllocs(t *testing.T) {
	in := wire.NewInterner()
	m := Message{Kind: KindResponse, Src: Proc("solver", 3), Dst: Rep("viz"), Tag: "temp", Seq: 9, Payload: []byte("xyz")}
	frame := AppendFrame(nil, m)
	if _, err := DecodeFrame(frame, in); err != nil { // warm the interner
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeFrame(frame, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeFrame allocates %v per op after interner warm-up", allocs)
	}
}
