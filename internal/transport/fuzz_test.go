package transport

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// Fuzz targets for the wire-facing codecs: whatever bytes arrive, the
// decoders must return an error rather than panic or mis-parse, and anything
// they accept must survive a canonical re-encode/decode round trip
// unchanged. Seed corpora live in testdata/fuzz; CI runs each target for a
// short budget on every push.

func fuzzMessagesEqual(a, b Message) bool {
	return a.Kind == b.Kind && a.Seq == b.Seq && a.Trace == b.Trace &&
		a.Src == b.Src && a.Dst == b.Dst && a.Tag == b.Tag &&
		bytes.Equal(a.Payload, b.Payload)
}

func FuzzDecodeFrame(f *testing.F) {
	seeds := []Message{
		{Kind: KindData, Src: Proc("F", 0), Dst: Proc("U", 1), Tag: "F.f>U.f", Seq: 7,
			Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KindControl, Src: Rep("F"), Dst: Rep("U"), Tag: "hello"},
		{Kind: KindResponse, Src: Proc("F", 3), Dst: Rep("F"), Tag: "resp",
			Trace: 0xdeadbeef, Payload: []byte("x")},
	}
	for _, m := range seeds {
		f.Add(AppendFrame(nil, m))
	}
	f.Add([]byte{})
	f.Add(make([]byte, frameFixedLen-1)) // truncated header
	full := AppendFrame(nil, seeds[0])
	f.Add(full[:frameFixedLen+2]) // truncated body
	flags := append([]byte(nil), full...)
	flags[1] = 0x7e // unknown flag bits
	f.Add(flags)
	traced := append([]byte(nil), AppendFrame(nil, seeds[2])[:frameFixedLen+3]...) // trace flag, short trace word
	f.Add(traced)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeFrame(b, nil)
		mi, erri := DecodeFrame(b, wire.NewInterner())
		if (err == nil) != (erri == nil) {
			t.Fatalf("interned decode disagrees: %v vs %v", err, erri)
		}
		if err != nil {
			return
		}
		if !fuzzMessagesEqual(m, mi) {
			t.Fatalf("interned decode differs:\n%+v\n%+v", m, mi)
		}
		enc := AppendFrame(nil, m)
		if FrameSize(m) != len(enc) {
			t.Fatalf("FrameSize %d, encoded %d bytes", FrameSize(m), len(enc))
		}
		if FrameSeq(enc) != m.Seq {
			t.Fatalf("FrameSeq %d, want %d", FrameSeq(enc), m.Seq)
		}
		m2, err := DecodeFrame(enc, nil)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if !fuzzMessagesEqual(m, m2) {
			t.Fatalf("round trip changed the message:\n%+v\n%+v", m, m2)
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	var valid []byte
	valid = AppendBatchItem(valid, Message{Kind: KindResponse, Src: Proc("F", 0), Dst: Proc("U", 1),
		Seq: 3, Tag: "r", Payload: []byte{9, 9}})
	valid = AppendBatchItem(valid, Message{Kind: KindControl, Src: Rep("F"), Dst: Rep("U"),
		Seq: 4, Tag: "hb", Trace: 123})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{byte(KindData) | batchItemTrace}) // trace bit, truncated before everything
	// Kind bit 0x80 set but the stream ends right after the ranks — no trace
	// word. Must error, never mis-parse the following fields as the trace.
	f.Add([]byte{byte(KindData) | batchItemTrace, 0, 0, 0, 0, 1, 0, 0, 0})
	f.Add(valid[:len(valid)-3]) // truncated final item

	f.Fuzz(func(t *testing.T, payload []byte) {
		env := Message{Kind: KindBatch, Src: Rep("F"), Dst: Rep("U"), Payload: payload}
		var items []Message
		err := decodeBatch(env, wire.NewInterner(), func(m Message) error {
			if len(m.Payload) > 0 {
				m.Payload = append([]byte(nil), m.Payload...)
			}
			items = append(items, m)
			return nil
		})
		if err != nil {
			return
		}
		var enc []byte
		for _, m := range items {
			if m.Kind&Kind(batchItemTrace) != 0 {
				t.Fatalf("decoded item kind %#x still carries the trace bit", uint8(m.Kind))
			}
			start := len(enc)
			enc = AppendBatchItem(enc, m)
			if sz := BatchItemSize(m); len(enc)-start != sz {
				t.Fatalf("BatchItemSize %d, encoded %d bytes", sz, len(enc)-start)
			}
		}
		var again []Message
		err = decodeBatch(Message{Kind: KindBatch, Src: env.Src, Dst: env.Dst, Payload: enc},
			wire.NewInterner(), func(m Message) error {
				if len(m.Payload) > 0 {
					m.Payload = append([]byte(nil), m.Payload...)
				}
				again = append(again, m)
				return nil
			})
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("round trip changed item count: %d -> %d", len(items), len(again))
		}
		for i := range items {
			if !fuzzMessagesEqual(items[i], again[i]) {
				t.Fatalf("round trip changed item %d:\n%+v\n%+v", i, items[i], again[i])
			}
		}
	})
}
