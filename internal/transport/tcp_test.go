package transport

import (
	"errors"
	"fmt"
	"repro/internal/testutil"
	"strings"
	"testing"
	"time"
)

// startRouter starts a localhost router and registers cleanup.
func startRouter(t *testing.T) *TCPRouter {
	t.Helper()
	r, err := StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestTCPSendRecv(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, err := n.Register(Proc("P", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(Proc("P", 1))
	if err != nil {
		t.Fatal(err)
	}
	msg := Message{Kind: KindData, Dst: b.Addr(), Tag: "x", Payload: []byte("payload")}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != a.Addr() || got.Tag != "x" || string(got.Payload) != "payload" {
		t.Errorf("got %+v", got)
	}
}

func TestTCPFIFO(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	const k = 200
	go func() {
		for i := 0; i < k; i++ {
			a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: fmt.Sprint(i)})
		}
	}()
	for i := 0; i < k; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("out of order at %d: %q", i, m.Tag)
		}
	}
}

func TestTCPDuplicateRegister(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	if _, err := n.Register(Proc("P", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(Proc("P", 0)); err == nil {
		t.Error("duplicate register succeeded")
	}
}

func TestTCPBidirectional(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: "ping"})
	m, err := b.RecvTimeout(5 * time.Second)
	if err != nil || m.Tag != "ping" {
		t.Fatalf("ping: %v", err)
	}
	b.Send(Message{Kind: KindPoint, Dst: a.Addr(), Tag: "pong"})
	m, err = a.RecvTimeout(5 * time.Second)
	if err != nil || m.Tag != "pong" {
		t.Fatalf("pong: %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(Message{Kind: KindData, Dst: b.Addr(), Payload: payload}); err != nil {
		t.Fatal(err)
	}
	m, err := b.RecvTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != len(payload) {
		t.Fatalf("payload size %d, want %d", len(m.Payload), len(payload))
	}
	for i := 0; i < len(payload); i += 4097 {
		if m.Payload[i] != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errc <- err
	}()
	testutil.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTCPRouterClose(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	r.Close()
	// After the router dies, the endpoint's read loop closes it.
	_, err := a.RecvTimeout(2 * time.Second)
	if err == nil {
		t.Error("expected error after router close")
	}
}

// TestTCPRecvReportsConnectionError: a connection failure (here the router
// dying) surfaces as the recorded decode error, not as the ErrClosed a
// deliberate Close produces — callers can tell the two apart.
func TestTCPRecvReportsConnectionError(t *testing.T) {
	r := startRouter(t)
	n := NewTCPNetwork(r.ListenAddr())
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	r.Close()
	deadline := testutil.Now().Add(5 * time.Second)
	var err error
	for {
		_, err = a.RecvTimeout(100 * time.Millisecond)
		if err != nil && err != ErrTimeout {
			break
		}
		if testutil.Now().After(deadline) {
			t.Fatal("Recv never reported the connection failure")
		}
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("connection failure reported as ErrClosed: %v", err)
	}
	if !strings.Contains(err.Error(), "connection lost") {
		t.Errorf("err = %v, want a wrapped connection-lost error", err)
	}
}

// TestTCPReconnect: with MaxRetries set, an endpoint whose socket is reset
// dials the router back and keeps receiving; messages sent after the
// reconnect flow normally.
func TestTCPReconnect(t *testing.T) {
	r := startRouter(t)
	na := NewTCPNetwork(r.ListenAddr())
	na.MaxRetries = 10
	na.RetryBase = 10 * time.Millisecond
	defer na.Close()
	nb := NewTCPNetwork(r.ListenAddr())
	defer nb.Close()
	a, err := na.Register(Proc("P", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := nb.Register(Proc("P", 1))
	if err != nil {
		t.Fatal(err)
	}
	b.Send(Message{Kind: KindPoint, Dst: a.Addr(), Tag: "before"})
	if m, err := a.RecvTimeout(5 * time.Second); err != nil || m.Tag != "before" {
		t.Fatalf("before reset: %v %v", m, err)
	}

	na.ResetConnections()

	// The reconnect races the send; retry until a message gets through the
	// re-established connection (the reliable layer automates this retry in
	// production).
	deadline := testutil.Now().Add(10 * time.Second)
	for {
		b.Send(Message{Kind: KindPoint, Dst: a.Addr(), Tag: "after"})
		if m, err := a.RecvTimeout(200 * time.Millisecond); err == nil && m.Tag == "after" {
			return
		}
		if testutil.Now().After(deadline) {
			t.Fatal("endpoint never recovered from the connection reset")
		}
	}
}

// TestTCPReliableSurvivesReset: the reliable layer over a reconnecting TCP
// network replays the messages a reset connection swallowed — exactly once,
// in order.
func TestTCPReliableSurvivesReset(t *testing.T) {
	r := startRouter(t)
	tcp := NewTCPNetwork(r.ListenAddr())
	tcp.MaxRetries = 10
	tcp.RetryBase = 10 * time.Millisecond
	n := NewReliableNetwork(tcp, ReliableConfig{ResendInterval: 20 * time.Millisecond})
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	const k = 400
	go func() {
		for i := 0; i < k; i++ {
			a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: fmt.Sprint(i)})
			if i == k/4 {
				tcp.ResetConnections() // mid-stream link flap
			}
		}
	}()
	for i := 0; i < k; i++ {
		m, err := b.RecvTimeout(20 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("delivery %d carries tag %q (lost, reordered, or duplicated)", i, m.Tag)
		}
	}
	if m, err := b.RecvTimeout(100 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery after the stream: %+v", m)
	}
}
