package transport

import (
	"fmt"
	"repro/internal/testutil"
	"sync"
	"testing"
	"time"
)

// coalesceNet builds a coalescing layer over a fresh MemNetwork with a long
// flush deadline, so tests control flushing via the size/count triggers.
func coalesceNet(t *testing.T, cfg CoalesceConfig) *CoalescingNetwork {
	t.Helper()
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = time.Hour
	}
	n := NewCoalescingNetwork(NewMemNetwork(), cfg)
	t.Cleanup(func() { n.Close() })
	return n
}

func TestCoalesceBatchesByCount(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{MaxMsgs: 4})
	a, err := n.Register(Proc("A", 0))
	if err != nil {
		t.Fatal(err)
	}
	// B's rep is the batch gateway: envelopes to program B arrive there and
	// its transport layer dispatches the items to B's endpoints.
	if _, err := n.Register(Rep("B")); err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(Proc("B", 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		err := a.Send(Message{Kind: KindResponse, Dst: b.Addr(), Tag: "t", Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		m, err := b.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.Kind != KindResponse || len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("msg %d: %+v", i, m)
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("msg %d: seq %d, want %d", i, m.Seq, i+1)
		}
		if m.Src != a.Addr() || m.Dst != b.Addr() {
			t.Fatalf("msg %d: %v -> %v", i, m.Src, m.Dst)
		}
	}
	st := n.Stats()
	if st.Messages != 8 || st.Frames != 2 || st.Batches != 2 || st.Batched != 8 {
		t.Fatalf("stats %+v, want 8 messages in 2 batch frames", st)
	}
}

// TestCoalesceRepLessFallback: with no representative registered for the
// destination program, the envelope falls back to the oldest item's
// destination endpoint, which dispatches (bare point-to-point topologies).
func TestCoalesceRepLessFallback(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{MaxMsgs: 3})
	a, _ := n.Register(Proc("A", 0))
	b, _ := n.Register(Proc("B", 0))
	for i := 0; i < 3; i++ {
		if err := a.Send(Message{Kind: KindResponse, Dst: b.Addr(), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		m, err := b.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("msg %d: payload %d", i, m.Payload[0])
		}
	}
	if st := n.Stats(); st.Frames != 1 || st.Batched != 3 {
		t.Fatalf("stats %+v, want one 3-message batch", st)
	}
}

// TestCoalesceFanOutSharesFrame is the collective-semantics payoff: one
// sender's burst to several endpoints of a program (a representative's
// fan-out) travels as a single frame.
func TestCoalesceFanOutSharesFrame(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{MaxMsgs: 100})
	rep, _ := n.Register(Rep("F"))
	a, _ := n.Register(Rep("U"))
	const procs = 4
	eps := make([]Endpoint, procs)
	for i := range eps {
		eps[i], _ = n.Register(Proc("F", i))
	}
	for i := range eps {
		if err := a.Send(Message{Kind: KindForward, Dst: Proc("F", i), Tag: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	_ = rep
	n.bmu.Lock()
	err := n.flushAllLocked()
	n.bmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		m, err := ep.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
		if m.Dst != Proc("F", i) || m.Src != Rep("U") {
			t.Fatalf("proc %d got %v -> %v", i, m.Src, m.Dst)
		}
	}
	st := n.Stats()
	if st.Frames != 1 || st.Batched != int64(procs) {
		t.Fatalf("stats %+v, want the %d-message fan-out in 1 frame", st, procs)
	}
}

func TestCoalesceFlushOnBytes(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{MaxBytes: 64, MaxMsgs: 1000})
	a, _ := n.Register(Proc("A", 0))
	b, _ := n.Register(Proc("B", 0))
	if err := a.Send(Message{Kind: KindControl, Dst: b.Addr(), Payload: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	m, err := b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != 100 {
		t.Fatalf("payload %d bytes", len(m.Payload))
	}
	if st := n.Stats(); st.Frames != 1 {
		t.Fatalf("oversize message did not flush immediately: %+v", st)
	}
}

func TestCoalesceDeadlineFlush(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{FlushInterval: 2 * time.Millisecond})
	a, _ := n.Register(Proc("A", 0))
	b, _ := n.Register(Proc("B", 0))
	if err := a.Send(Message{Kind: KindRequest, Dst: b.Addr(), Tag: "lonely"}); err != nil {
		t.Fatal(err)
	}
	m, err := b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("deadline flush never happened: %v", err)
	}
	if m.Tag != "lonely" {
		t.Fatalf("got %+v", m)
	}
}

// TestCoalescePassthroughOrdering checks that a bulk message (payload over
// MaxItemBytes) flushes the pending batch first, so per-pair FIFO order
// survives the mixing here, where batch and bulk share one mailbox path.
func TestCoalescePassthroughOrdering(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{MaxMsgs: 100, MaxItemBytes: 512})
	a, _ := n.Register(Proc("A", 0))
	b, _ := n.Register(Proc("B", 0))
	send := func(k Kind, tag string, size int) {
		t.Helper()
		if err := a.Send(Message{Kind: k, Dst: b.Addr(), Tag: tag, Payload: make([]byte, size)}); err != nil {
			t.Fatal(err)
		}
	}
	send(KindResponse, "c1", 8)
	send(KindResponse, "c2", 8)
	send(KindData, "bulk", 2048) // over MaxItemBytes: must flush c1,c2 ahead of itself
	send(KindResponse, "c3", 8)
	a.Close() // flushes c3

	want := []string{"c1", "c2", "bulk", "c3"}
	for i, tag := range want {
		m, err := b.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.Tag != tag {
			t.Fatalf("msg %d: got %q, want %q", i, m.Tag, tag)
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("msg %d (%s): seq %d, want %d (one counter across both paths)", i, tag, m.Seq, i+1)
		}
	}
	st := n.Stats()
	if st.Frames != 3 { // batch(c1,c2) + bulk + batch(c3)
		t.Fatalf("stats %+v, want 3 frames", st)
	}
}

func TestCoalesceDisabledPassesThrough(t *testing.T) {
	n := coalesceNet(t, CoalesceConfig{Disabled: true})
	a, _ := n.Register(Proc("A", 0))
	b, _ := n.Register(Proc("B", 0))
	for i := 0; i < 5; i++ {
		if err := a.Send(Message{Kind: KindResponse, Dst: b.Addr()}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := b.RecvTimeout(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Frames != 5 || st.Batches != 0 {
		t.Fatalf("disabled stats %+v, want 5 unbatched frames", st)
	}
}

// TestCoalesceUnderReliable stacks the layers the intended way —
// Reliable(Coalescing(base)) — and checks the reliable sequence numbers
// survive batching and every message arrives exactly once in order.
func TestCoalesceUnderReliable(t *testing.T) {
	co := NewCoalescingNetwork(NewMemNetwork(), CoalesceConfig{FlushInterval: time.Millisecond})
	rel := NewReliableNetwork(co, ReliableConfig{})
	defer rel.Close()
	a, err := rel.Register(Proc("A", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rel.Register(Proc("B", 0))
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 200
	go func() {
		for i := 0; i < msgs; i++ {
			for {
				err := a.Send(Message{Kind: KindResponse, Dst: b.Addr(), Payload: []byte{byte(i)}})
				if err == nil {
					break
				}
				testutil.Sleep(time.Millisecond)
			}
		}
	}()
	for i := 0; i < msgs; i++ {
		m, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("msg %d: got payload %d (reordered or dropped)", i, m.Payload[0])
		}
	}
	st := co.Stats()
	if st.Frames >= st.Messages {
		t.Fatalf("no coalescing happened: %+v", st)
	}
}

// TestCoalesceRace hammers one coalescing network from many goroutines in
// both directions; run under -race in the CI chaos job. The program's rep
// is registered as the batch gateway, so batched traffic keeps per-pair
// FIFO order even under contention.
func TestCoalesceRace(t *testing.T) {
	n := NewCoalescingNetwork(NewMemNetwork(), CoalesceConfig{
		MaxMsgs:       8,
		FlushInterval: 100 * time.Microsecond,
	})
	defer n.Close()
	if _, err := n.Register(Rep("P")); err != nil {
		t.Fatal(err)
	}
	const peers = 4
	const msgsPerPair = 150
	eps := make([]Endpoint, peers)
	for i := range eps {
		ep, err := n.Register(Proc("P", i))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	var wg sync.WaitGroup
	errc := make(chan error, 2*peers)
	for i, ep := range eps {
		wg.Add(2)
		go func(i int, ep Endpoint) { // sender: to every other peer, varied kinds
			defer wg.Done()
			for s := 0; s < msgsPerPair; s++ {
				for j := range eps {
					if j == i {
						continue
					}
					k := KindResponse
					if s%10 == 9 {
						k = KindControl
					}
					if err := ep.Send(Message{Kind: k, Dst: Proc("P", j), Tag: "r", Payload: []byte{byte(s)}}); err != nil {
						errc <- fmt.Errorf("send %d->%d: %w", i, j, err)
						return
					}
				}
			}
		}(i, ep)
		go func(i int, ep Endpoint) { // receiver: per-source FIFO check
			defer wg.Done()
			last := make(map[Addr]uint64)
			for r := 0; r < (peers-1)*msgsPerPair; r++ {
				m, err := ep.RecvTimeout(10 * time.Second)
				if err != nil {
					errc <- fmt.Errorf("recv at %d after %d msgs: %w", i, r, err)
					return
				}
				if m.Seq != last[m.Src]+1 {
					errc <- fmt.Errorf("at %d: %s seq %d after %d", i, m.Src, m.Seq, last[m.Src])
					return
				}
				last[m.Src] = m.Seq
			}
		}(i, ep)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
