package transport

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"repro/internal/wire"
)

// newTestFrameReader wraps a byte stream in a frameReader.
func newTestFrameReader(stream []byte) *frameReader {
	return &frameReader{r: bufio.NewReader(bytes.NewReader(stream))}
}

// TestFrameReaderOversizedPrefix pins the hostile-length-prefix behaviour: a
// claimed frame beyond maxFrameLen must fail with the typed decode error
// (counted in transport.decode_errors by the read loop), not attempt the
// allocation.
func TestFrameReaderOversizedPrefix(t *testing.T) {
	stream := wire.AppendUvarint(nil, maxFrameLen+1)
	fr := newTestFrameReader(stream)
	if _, err := fr.next(); !errors.Is(err, errFrameLength) {
		t.Fatalf("oversized prefix: got %v, want errFrameLength", err)
	}
}

// TestFrameReaderLyingPrefix feeds a prefix claiming half a gigabyte with
// only a few bytes behind it: the reader must fail on the truncated stream
// after allocating no more than a growth chunk or so — the geometric-growth
// policy's whole point is that allocation tracks bytes received, not bytes
// claimed.
func TestFrameReaderLyingPrefix(t *testing.T) {
	stream := wire.AppendUvarint(nil, 512<<20)
	stream = append(stream, make([]byte, 100)...)
	fr := newTestFrameReader(stream)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := fr.next()
	runtime.ReadMemStats(&after)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lying prefix: got %v, want unexpected EOF", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Fatalf("lying 512MB prefix allocated %d bytes; growth should track received bytes", grew)
	}
}

// TestFrameReaderLargeFrame round-trips a frame bigger than frameAllocChunk
// through the growth loop, then a second frame through the reuse fast path.
func TestFrameReaderLargeFrame(t *testing.T) {
	payload := make([]byte, 2*frameAllocChunk+frameAllocChunk/2)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	msgs := []Message{
		{Kind: KindData, Src: Proc("F", 0), Dst: Proc("U", 1), Tag: "big", Seq: 9, Payload: payload},
		{Kind: KindControl, Src: Rep("F"), Dst: Rep("U"), Tag: "small", Seq: 10},
	}
	var stream []byte
	for _, m := range msgs {
		frame := AppendFrame(nil, m)
		stream = wire.AppendUvarint(stream, uint64(len(frame)))
		stream = append(stream, frame...)
	}
	fr := newTestFrameReader(stream)
	for i, want := range msgs {
		raw, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeFrame(raw, nil)
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if got.Tag != want.Tag || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round trip mismatch: got tag=%q seq=%d len=%d", i, got.Tag, got.Seq, len(got.Payload))
		}
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("expected EOF after the stream, got %v", err)
	}
}
