package transport

import (
	"fmt"
	"repro/internal/testutil"
	"sync"
	"testing"
	"time"
)

func TestAddrString(t *testing.T) {
	cases := []struct {
		a    Addr
		want string
	}{
		{Proc("F", 0), "F:0"},
		{Proc("U", 31), "U:31"},
		{Rep("F"), "F:rep"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("Addr%v.String() = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestAddrHelpers(t *testing.T) {
	if !Rep("X").IsRep() {
		t.Error("Rep(X).IsRep() = false")
	}
	if Proc("X", 0).IsRep() {
		t.Error("Proc(X,0).IsRep() = true")
	}
	if Proc("X", 2).Program != "X" || Proc("X", 2).Rank != 2 {
		t.Error("Proc fields wrong")
	}
}

func TestKindString(t *testing.T) {
	if KindBuddyHelp.String() != "buddy-help" {
		t.Errorf("KindBuddyHelp.String() = %q", KindBuddyHelp.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}

func TestMemSendRecv(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	a, err := n.Register(Proc("P", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(Proc("P", 1))
	if err != nil {
		t.Fatal(err)
	}
	want := Message{Kind: KindPoint, Dst: b.Addr(), Tag: "hi", Payload: []byte{1, 2, 3}}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != a.Addr() || got.Tag != "hi" || string(got.Payload) != "\x01\x02\x03" {
		t.Errorf("got %+v", got)
	}
	if got.Seq != 1 {
		t.Errorf("first message Seq = %d, want 1", got.Seq)
	}
}

func TestMemDuplicateRegister(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	if _, err := n.Register(Proc("P", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(Proc("P", 0)); err != ErrDuplicateAddr {
		t.Errorf("duplicate register err = %v, want ErrDuplicateAddr", err)
	}
}

func TestMemUnknownAddr(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	err := a.Send(Message{Dst: Proc("P", 9)})
	if err != ErrUnknownAddr {
		t.Errorf("send to unknown = %v, want ErrUnknownAddr", err)
	}
}

func TestMemFIFOPerPair(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	b, _ := n.Register(Proc("P", 1))
	const k = 100
	for i := 0; i < k; i++ {
		if err := a.Send(Message{Kind: KindPoint, Dst: b.Addr(), Tag: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != fmt.Sprint(i) {
			t.Fatalf("message %d out of order: tag %q", i, m.Tag)
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("message %d Seq = %d", i, m.Seq)
		}
	}
}

func TestMemRecvTimeout(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	start := testutil.Now()
	_, err := a.RecvTimeout(20 * time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("returned before deadline")
	}
}

func TestMemCloseUnblocksRecv(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errc <- err
	}()
	testutil.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestMemCloseReleasesAddr(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	a, _ := n.Register(Proc("P", 0))
	a.Close()
	if _, err := n.Register(Proc("P", 0)); err != nil {
		t.Errorf("re-register after close: %v", err)
	}
}

func TestMemNetworkClose(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Register(Proc("P", 0))
	n.Close()
	if err := a.Send(Message{Dst: Proc("P", 0)}); err != ErrClosed {
		t.Errorf("send after network close = %v, want ErrClosed", err)
	}
	if _, err := n.Register(Proc("Q", 0)); err != ErrClosed {
		t.Errorf("register after close = %v, want ErrClosed", err)
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	dst, _ := n.Register(Proc("P", 99))
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := n.Register(Proc("P", s))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send(Message{Kind: KindPoint, Dst: dst.Addr()})
			}
		}(ep)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		for got < senders*per {
			if _, err := dst.Recv(); err != nil {
				break
			}
			got++
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received %d of %d", got, senders*per)
	}
}

func TestDispatcherRoutesByKind(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	src, _ := n.Register(Proc("P", 0))
	ep, _ := n.Register(Proc("P", 1))
	d := NewDispatcher(ep)
	defer d.Close()

	src.Send(Message{Kind: KindData, Dst: ep.Addr(), Tag: "d1"})
	src.Send(Message{Kind: KindCollective, Dst: ep.Addr(), Tag: "c1"})
	src.Send(Message{Kind: KindData, Dst: ep.Addr(), Tag: "d2"})

	m, err := d.RecvTimeout(KindCollective, time.Second)
	if err != nil || m.Tag != "c1" {
		t.Fatalf("collective: %v %+v", err, m)
	}
	m, err = d.RecvTimeout(KindData, time.Second)
	if err != nil || m.Tag != "d1" {
		t.Fatalf("data 1: %v %+v", err, m)
	}
	m, err = d.RecvTimeout(KindData, time.Second)
	if err != nil || m.Tag != "d2" {
		t.Fatalf("data 2: %v %+v", err, m)
	}
}

func TestDispatcherBuffersBeforeSubscribe(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	src, _ := n.Register(Proc("P", 0))
	ep, _ := n.Register(Proc("P", 1))
	d := NewDispatcher(ep)
	defer d.Close()
	src.Send(Message{Kind: KindAnswer, Dst: ep.Addr(), Tag: "early"})
	testutil.Sleep(10 * time.Millisecond) // let the receive loop queue it
	m, err := d.RecvTimeout(KindAnswer, time.Second)
	if err != nil || m.Tag != "early" {
		t.Fatalf("buffered message lost: %v %+v", err, m)
	}
}

func TestDispatcherCloseUnblocks(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	ep, _ := n.Register(Proc("P", 0))
	d := NewDispatcher(ep)
	errc := make(chan error, 1)
	go func() {
		_, err := d.Recv(KindData)
		errc <- err
	}()
	testutil.Sleep(5 * time.Millisecond)
	d.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv(kind) did not unblock on Close")
	}
}

func TestDispatcherRecvTimeout(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	ep, _ := n.Register(Proc("P", 0))
	d := NewDispatcher(ep)
	defer d.Close()
	if _, err := d.RecvTimeout(KindData, 10*time.Millisecond); err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}
