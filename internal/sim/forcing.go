// Package sim provides the numerical substrate of the paper's
// micro-benchmark: program U solves the 2-D wave equation with forcing,
// u_tt = u_xx + u_yy + f(t,x,y), on the unit square, and program F computes
// the forcing field f. Both run as data-parallel components over the
// framework's process groups, using the collective layer for halo exchange.
package sim

import (
	"math"

	"repro/internal/decomp"
)

// Forcing is a space-time scalar field f(t, x, y) on the unit square.
type Forcing func(t, x, y float64) float64

// ZeroForcing is the homogeneous forcing (free wave equation).
func ZeroForcing(t, x, y float64) float64 { return 0 }

// PulseForcing is a smooth localized source that orbits the domain center —
// a stand-in for the external driving field of a multi-physics coupling
// (e.g. an energy deposition computed by another model).
func PulseForcing(t, x, y float64) float64 {
	cx := 0.5 + 0.25*math.Cos(t/3)
	cy := 0.5 + 0.25*math.Sin(t/3)
	d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
	return 5 * math.Exp(-50*d2) * math.Sin(2*t)
}

// StandingForcing drives the (1,1) eigenmode of the unit square.
func StandingForcing(t, x, y float64) float64 {
	return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Cos(3*t)
}

// Field samples a Forcing over one process's block of an N x N interior
// grid. Grid point (r, c) of an N x N array sits at
// x = (c+1)h, y = (r+1)h with h = 1/(N+1) (Dirichlet boundaries at the
// domain edge are not stored).
type Field struct {
	N     int
	Block decomp.Rect
	Fn    Forcing
}

// NewField builds a sampler for rank's block under layout (an N x N grid).
func NewField(layout decomp.Layout, rank int, fn Forcing) *Field {
	rows, _ := layout.Shape()
	return &Field{N: rows, Block: layout.Block(rank), Fn: fn}
}

// H returns the mesh spacing.
func (f *Field) H() float64 { return 1 / float64(f.N+1) }

// Sample fills dst (Block.Area() values, row-major) with f at time t.
func (f *Field) Sample(t float64, dst []float64) {
	h := f.H()
	i := 0
	for r := f.Block.R0; r < f.Block.R1; r++ {
		y := float64(r+1) * h
		for c := f.Block.C0; c < f.Block.C1; c++ {
			x := float64(c+1) * h
			dst[i] = f.Fn(t, x, y)
			i++
		}
	}
}

// SampleNew is Sample into a fresh slice.
func (f *Field) SampleNew(t float64) []float64 {
	dst := make([]float64, f.Block.Area())
	f.Sample(t, dst)
	return dst
}
