package sim

import (
	"sync"
	"testing"
)

// TestHeatOverlappedMatchesBlocking mirrors the wave solver's overlap test.
func TestHeatOverlappedMatchesBlocking(t *testing.T) {
	const n, steps, p = 20, 40, 4
	run := func(overlapped bool) [][]float64 {
		comms := newGroup(t, p)
		l := rowLayout(t, n, p)
		out := make([][]float64, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := NewHeatSolver(comms[r], l, r, -1)
				if err != nil {
					errs[r] = err
					return
				}
				s.SetInitial(func(x, y float64) float64 { return x * (1 - x) * y })
				field := NewField(l, r, PulseForcing)
				buf := make([]float64, s.Block().Area())
				for k := 0; k < steps; k++ {
					field.Sample(s.Time(), buf)
					s.SetForcing(buf)
					if overlapped {
						errs[r] = s.StepOverlapped()
					} else {
						errs[r] = s.Step()
					}
					if errs[r] != nil {
						return
					}
				}
				out[r] = append([]float64(nil), s.Local()...)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return out
	}
	a, b := run(false), run(true)
	for r := 0; r < p; r++ {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d index %d: %v != %v", r, i, a[r][i], b[r][i])
			}
		}
	}
}

func TestHeatOverlappedSingleProc(t *testing.T) {
	l := rowLayout(t, 8, 1)
	s, err := NewHeatSolver(nil, l, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInitial(func(x, y float64) float64 { return 1 })
	if err := s.StepOverlapped(); err != nil {
		t.Fatal(err)
	}
	if s.Time() <= 0 {
		t.Error("time did not advance")
	}
}
