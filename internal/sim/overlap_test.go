package sim

import (
	"math"
	"sync"
	"testing"

	"repro/internal/collective"
)

// TestOverlappedMatchesBlocking: StepOverlapped must be bitwise identical to
// Step on every rank.
func TestOverlappedMatchesBlocking(t *testing.T) {
	const n, steps, p = 24, 30, 3
	run := func(overlapped bool) [][]float64 {
		comms := newGroup(t, p)
		l := rowLayout(t, n, p)
		out := make([][]float64, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := NewWaveSolver(comms[r], l, r, -1)
				if err != nil {
					errs[r] = err
					return
				}
				s.SetInitial(
					func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y) },
					func(x, y float64) float64 { return x * y },
				)
				field := NewField(l, r, PulseForcing)
				buf := make([]float64, s.Block().Area())
				for k := 0; k < steps; k++ {
					field.Sample(s.Time(), buf)
					s.SetForcing(buf)
					if overlapped {
						errs[r] = s.StepOverlapped()
					} else {
						errs[r] = s.Step()
					}
					if errs[r] != nil {
						return
					}
				}
				local := make([]float64, len(s.Local()))
				copy(local, s.Local())
				out[r] = local
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return out
	}
	blocking := run(false)
	overlapped := run(true)
	for r := 0; r < p; r++ {
		for i := range blocking[r] {
			if blocking[r][i] != overlapped[r][i] {
				t.Fatalf("rank %d index %d: blocking %v != overlapped %v",
					r, i, blocking[r][i], overlapped[r][i])
			}
		}
	}
}

// TestOverlappedSingleProc: falls back to the plain step.
func TestOverlappedSingleProc(t *testing.T) {
	l := rowLayout(t, 8, 1)
	s, err := NewWaveSolver(nil, l, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInitial(func(x, y float64) float64 { return x }, func(x, y float64) float64 { return 0 })
	if err := s.StepOverlapped(); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 1 {
		t.Errorf("steps %d", s.Steps())
	}
}

// TestOverlappedSingleRowBands: blocks of height 1 have no interior; the
// boundary-only path must still be correct.
func TestOverlappedSingleRowBands(t *testing.T) {
	const n, p = 4, 4 // one row per rank
	comms := newGroup(t, p)
	l := rowLayout(t, n, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	outs := make([][]float64, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := NewWaveSolver(comms[r], l, r, -1)
			if err != nil {
				errs[r] = err
				return
			}
			s.SetInitial(func(x, y float64) float64 { return x + y }, func(x, y float64) float64 { return 0 })
			for k := 0; k < 10; k++ {
				if errs[r] = s.StepOverlapped(); errs[r] != nil {
					return
				}
			}
			outs[r] = append([]float64(nil), s.Local()...)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Compare against the serial result.
	serial, err := NewWaveSolver(nil, rowLayout(t, n, 1), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetInitial(func(x, y float64) float64 { return x + y }, func(x, y float64) float64 { return 0 })
	for k := 0; k < 10; k++ {
		if err := serial.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < p; r++ {
		for c := 0; c < n; c++ {
			if outs[r][c] != serial.Local()[r*n+c] {
				t.Fatalf("rank %d col %d: %v != %v", r, c, outs[r][c], serial.Local()[r*n+c])
			}
		}
	}
}

// TestOverlappedDriftAllowed: with overlapped stepping a rank can be a full
// iteration ahead of its neighbor without deadlock (the paper's condition
// for buddy-help to help: loose internal synchronization).
func TestOverlappedDriftAllowed(t *testing.T) {
	comms := newGroup(t, 2)
	l := rowLayout(t, 8, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := NewWaveSolver(comms[r], l, r, -1)
			if err != nil {
				errs[r] = err
				return
			}
			s.SetInitial(func(x, y float64) float64 { return 1 }, func(x, y float64) float64 { return 0 })
			for k := 0; k < 50; k++ {
				if errs[r] = s.StepOverlapped(); errs[r] != nil {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

var _ = collective.Sum // imported for the shared test helpers
