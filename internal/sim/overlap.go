package sim

import (
	"fmt"

	"repro/internal/wire"
)

// StepOverlapped advances one leapfrog step with communication/computation
// overlap: boundary rows are posted to the neighbors first, the interior
// (which needs no halo data) is computed while the halos are in flight, and
// the boundary rows are finished after the halos arrive. This is the
// non-blocking-transfer style the paper's conclusion points to for letting
// processes run ahead of their peers; the numerical result is bitwise
// identical to Step.
func (s *WaveSolver) StepOverlapped() error {
	if s.procs == 1 {
		return s.Step() // nothing to overlap
	}
	w := s.block.Cols()
	tagDn := fmt.Sprintf("halo-dn:%d", s.step)
	tagUp := fmt.Sprintf("halo-up:%d", s.step)

	// Phase 1: post boundary rows (sends are asynchronous).
	if s.rank > 0 {
		if err := s.comm.Send(s.rank-1, tagUp, wire.EncodeFloat64s(s.cur[:w])); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		if err := s.comm.Send(s.rank+1, tagDn, wire.EncodeFloat64s(s.cur[len(s.cur)-w:])); err != nil {
			return err
		}
	}

	lam := (s.dt * s.dt) / (s.h * s.h)
	dt2 := s.dt * s.dt
	update := func(r int) {
		base := (r - s.block.R0) * w
		for c := s.block.C0; c < s.block.C1; c++ {
			i := base + (c - s.block.C0)
			u := s.cur[i]
			lap := s.at(r-1, c) + s.at(r+1, c) + s.at(r, c-1) + s.at(r, c+1) - 4*u
			s.next[i] = 2*u - s.prev[i] + lam*lap + dt2*s.forcing[i]
		}
	}

	// Phase 2: interior rows (stencils that never touch a halo).
	for r := s.block.R0 + 1; r < s.block.R1-1; r++ {
		update(r)
	}

	// Phase 3: receive halos.
	if s.rank > 0 {
		b, err := s.comm.Recv(s.rank-1, tagDn)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloUp); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		b, err := s.comm.Recv(s.rank+1, tagUp)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloDn); err != nil {
			return err
		}
	}

	// Phase 4: boundary rows.
	update(s.block.R0)
	if s.block.Rows() > 1 {
		update(s.block.R1 - 1)
	}

	s.prev, s.cur, s.next = s.cur, s.next, s.prev
	s.step++
	return nil
}
