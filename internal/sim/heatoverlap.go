package sim

import (
	"fmt"

	"repro/internal/wire"
)

// StepOverlapped advances one explicit Euler step with communication/
// computation overlap, mirroring WaveSolver.StepOverlapped: boundary rows
// are posted, the interior is computed while halos are in flight, and the
// boundary rows finish after the halos arrive. Bitwise identical to Step.
func (s *HeatSolver) StepOverlapped() error {
	if s.procs == 1 {
		return s.Step()
	}
	w := s.block.Cols()
	tagDn := fmt.Sprintf("heat-dn:%d", s.step)
	tagUp := fmt.Sprintf("heat-up:%d", s.step)

	if s.rank > 0 {
		if err := s.comm.Send(s.rank-1, tagUp, wire.EncodeFloat64s(s.cur[:w])); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		if err := s.comm.Send(s.rank+1, tagDn, wire.EncodeFloat64s(s.cur[len(s.cur)-w:])); err != nil {
			return err
		}
	}

	lam := s.dt / (s.h * s.h)
	update := func(r int) {
		base := (r - s.block.R0) * w
		for c := s.block.C0; c < s.block.C1; c++ {
			i := base + (c - s.block.C0)
			u := s.cur[i]
			lap := s.at(r-1, c) + s.at(r+1, c) + s.at(r, c-1) + s.at(r, c+1) - 4*u
			s.next[i] = u + lam*lap + s.dt*s.forcing[i]
		}
	}
	for r := s.block.R0 + 1; r < s.block.R1-1; r++ {
		update(r)
	}

	if s.rank > 0 {
		b, err := s.comm.Recv(s.rank-1, tagDn)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloUp); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		b, err := s.comm.Recv(s.rank+1, tagUp)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloDn); err != nil {
			return err
		}
	}

	update(s.block.R0)
	if s.block.Rows() > 1 {
		update(s.block.R1 - 1)
	}

	s.cur, s.next = s.next, s.cur
	s.step++
	return nil
}
