package sim

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/decomp"
	"repro/internal/wire"
)

// WaveSolver integrates u_tt = u_xx + u_yy + f on the unit square with
// homogeneous Dirichlet boundaries, using the explicit leapfrog scheme on an
// N x N interior grid distributed by row bands. It is the "program U" of the
// paper's micro-benchmark.
type WaveSolver struct {
	comm  *collective.Comm // nil for a single-process (serial) solver
	rank  int
	procs int

	n     int // interior grid size
	block decomp.Rect
	h, dt float64

	prev, cur, next []float64
	forcing         []float64
	haloUp, haloDn  []float64 // neighbor rows: block.R0-1 and block.R1

	step int
}

// NewWaveSolver builds the solver for rank under a row-band layout of an
// N x N interior grid. comm may be nil only when the layout has one process.
// dt must satisfy the CFL condition dt <= h/sqrt(2); pass dt <= 0 to use
// 0.9 * h / sqrt(2).
func NewWaveSolver(comm *collective.Comm, layout decomp.RowBlock, rank int, dt float64) (*WaveSolver, error) {
	rows, cols := layout.Shape()
	if rows != cols {
		return nil, fmt.Errorf("sim: wave solver needs a square grid, got %dx%d", rows, cols)
	}
	if comm == nil && layout.Procs() != 1 {
		return nil, fmt.Errorf("sim: nil comm with %d processes", layout.Procs())
	}
	if comm != nil && (comm.Rank() != rank || comm.Size() != layout.Procs()) {
		return nil, fmt.Errorf("sim: comm rank/size %d/%d does not match layout rank/procs %d/%d",
			comm.Rank(), comm.Size(), rank, layout.Procs())
	}
	h := 1 / float64(rows+1)
	if dt <= 0 {
		dt = 0.9 * h / math.Sqrt2
	}
	if dt > h/math.Sqrt2 {
		return nil, fmt.Errorf("sim: dt %g violates the CFL bound %g", dt, h/math.Sqrt2)
	}
	block := layout.Block(rank)
	s := &WaveSolver{
		comm:    comm,
		rank:    rank,
		procs:   layout.Procs(),
		n:       rows,
		block:   block,
		h:       h,
		dt:      dt,
		prev:    make([]float64, block.Area()),
		cur:     make([]float64, block.Area()),
		next:    make([]float64, block.Area()),
		forcing: make([]float64, block.Area()),
		haloUp:  make([]float64, block.Cols()),
		haloDn:  make([]float64, block.Cols()),
	}
	return s, nil
}

// Block returns the solver's local block.
func (s *WaveSolver) Block() decomp.Rect { return s.block }

// N returns the interior grid size.
func (s *WaveSolver) N() int { return s.n }

// Dt returns the time step.
func (s *WaveSolver) Dt() float64 { return s.dt }

// Time returns the current simulation time (step * dt).
func (s *WaveSolver) Time() float64 { return float64(s.step) * s.dt }

// Step returns the number of completed time steps.
func (s *WaveSolver) Steps() int { return s.step }

// Local returns the current local solution block (live storage; callers must
// copy if they keep it across steps).
func (s *WaveSolver) Local() []float64 { return s.cur }

// SetInitial sets u(0) and u_t(0) from point functions of (x, y).
func (s *WaveSolver) SetInitial(u0, v0 func(x, y float64) float64) {
	i := 0
	for r := s.block.R0; r < s.block.R1; r++ {
		y := float64(r+1) * s.h
		for c := s.block.C0; c < s.block.C1; c++ {
			x := float64(c+1) * s.h
			u := u0(x, y)
			s.cur[i] = u
			// First-order start: u(-dt) = u(0) - dt*v(0).
			s.prev[i] = u - s.dt*v0(x, y)
			i++
		}
	}
}

// SetForcing installs the forcing field for subsequent steps (local block
// values, row-major). The slice is copied.
func (s *WaveSolver) SetForcing(vals []float64) error {
	if len(vals) != len(s.forcing) {
		return fmt.Errorf("sim: forcing has %d values, block has %d", len(vals), len(s.forcing))
	}
	copy(s.forcing, vals)
	return nil
}

// at reads the current solution at global (r, c), using halos and Dirichlet
// boundaries.
func (s *WaveSolver) at(r, c int) float64 {
	if c < 0 || c >= s.n || r < 0 || r >= s.n {
		return 0
	}
	switch {
	case r < s.block.R0:
		return s.haloUp[c]
	case r >= s.block.R1:
		return s.haloDn[c]
	default:
		return s.cur[(r-s.block.R0)*s.block.Cols()+c]
	}
}

// exchangeHalos swaps boundary rows with the neighboring ranks.
func (s *WaveSolver) exchangeHalos() error {
	if s.procs == 1 {
		return nil
	}
	w := s.block.Cols()
	tagDn := fmt.Sprintf("halo-dn:%d", s.step) // data moving to the next rank
	tagUp := fmt.Sprintf("halo-up:%d", s.step) // data moving to the previous rank
	if s.rank > 0 {
		if err := s.comm.Send(s.rank-1, tagUp, wire.EncodeFloat64s(s.cur[:w])); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		if err := s.comm.Send(s.rank+1, tagDn, wire.EncodeFloat64s(s.cur[len(s.cur)-w:])); err != nil {
			return err
		}
	}
	if s.rank > 0 {
		b, err := s.comm.Recv(s.rank-1, tagDn)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloUp); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		b, err := s.comm.Recv(s.rank+1, tagUp)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloDn); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the solution by one leapfrog time step:
//
//	u^{k+1} = 2u^k - u^{k-1} + dt^2 (lap u^k + f^k)
func (s *WaveSolver) Step() error {
	if err := s.exchangeHalos(); err != nil {
		return err
	}
	lam := (s.dt * s.dt) / (s.h * s.h)
	dt2 := s.dt * s.dt
	i := 0
	for r := s.block.R0; r < s.block.R1; r++ {
		for c := s.block.C0; c < s.block.C1; c++ {
			u := s.cur[i]
			lap := s.at(r-1, c) + s.at(r+1, c) + s.at(r, c-1) + s.at(r, c+1) - 4*u
			s.next[i] = 2*u - s.prev[i] + lam*lap + dt2*s.forcing[i]
			i++
		}
	}
	s.prev, s.cur, s.next = s.cur, s.next, s.prev
	s.step++
	return nil
}

// L2Norm returns the global discrete L2 norm of the current solution
// (sqrt(h^2 * sum u^2)), reduced across the group when parallel.
func (s *WaveSolver) L2Norm() (float64, error) {
	local := 0.0
	for _, v := range s.cur {
		local += v * v
	}
	total := local
	if s.comm != nil && s.procs > 1 {
		var err error
		total, err = s.comm.AllReduceScalar(local, collective.Sum)
		if err != nil {
			return 0, err
		}
	}
	return math.Sqrt(total) * s.h, nil
}

// MaxAbs returns the global max |u|, reduced across the group when parallel.
func (s *WaveSolver) MaxAbs() (float64, error) {
	local := 0.0
	for _, v := range s.cur {
		if a := math.Abs(v); a > local {
			local = a
		}
	}
	if s.comm == nil || s.procs == 1 {
		return local, nil
	}
	return s.comm.AllReduceScalar(local, collective.Max)
}
