package sim

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/decomp"
	"repro/internal/wire"
)

// HeatSolver integrates the diffusion equation u_t = u_xx + u_yy + f on the
// unit square with homogeneous Dirichlet boundaries, explicit Euler on an
// N x N interior grid distributed by row bands. Its much smaller stable time
// step (dt <= h^2/4) makes it the natural fine-time-scale partner in a
// multi-resolution coupling: many diffusion steps per coupled exchange.
type HeatSolver struct {
	comm  *collective.Comm
	rank  int
	procs int

	n     int
	block decomp.Rect
	h, dt float64

	cur, next      []float64
	forcing        []float64
	haloUp, haloDn []float64
	step           int
}

// NewHeatSolver builds the solver for rank under a row-band layout of an
// N x N interior grid. Pass dt <= 0 for 0.9 * h^2/4.
func NewHeatSolver(comm *collective.Comm, layout decomp.RowBlock, rank int, dt float64) (*HeatSolver, error) {
	rows, cols := layout.Shape()
	if rows != cols {
		return nil, fmt.Errorf("sim: heat solver needs a square grid, got %dx%d", rows, cols)
	}
	if comm == nil && layout.Procs() != 1 {
		return nil, fmt.Errorf("sim: nil comm with %d processes", layout.Procs())
	}
	h := 1 / float64(rows+1)
	if dt <= 0 {
		dt = 0.9 * h * h / 4
	}
	if dt > h*h/4 {
		return nil, fmt.Errorf("sim: dt %g violates the diffusion stability bound %g", dt, h*h/4)
	}
	block := layout.Block(rank)
	return &HeatSolver{
		comm:    comm,
		rank:    rank,
		procs:   layout.Procs(),
		n:       rows,
		block:   block,
		h:       h,
		dt:      dt,
		cur:     make([]float64, block.Area()),
		next:    make([]float64, block.Area()),
		forcing: make([]float64, block.Area()),
		haloUp:  make([]float64, block.Cols()),
		haloDn:  make([]float64, block.Cols()),
	}, nil
}

// Block returns the local block.
func (s *HeatSolver) Block() decomp.Rect { return s.block }

// Dt returns the time step.
func (s *HeatSolver) Dt() float64 { return s.dt }

// Time returns the current simulation time.
func (s *HeatSolver) Time() float64 { return float64(s.step) * s.dt }

// Local returns the live local solution block.
func (s *HeatSolver) Local() []float64 { return s.cur }

// SetInitial sets u(0) from a point function of (x, y).
func (s *HeatSolver) SetInitial(u0 func(x, y float64) float64) {
	i := 0
	for r := s.block.R0; r < s.block.R1; r++ {
		y := float64(r+1) * s.h
		for c := s.block.C0; c < s.block.C1; c++ {
			x := float64(c+1) * s.h
			s.cur[i] = u0(x, y)
			i++
		}
	}
}

// SetForcing installs the forcing for subsequent steps (copied).
func (s *HeatSolver) SetForcing(vals []float64) error {
	if len(vals) != len(s.forcing) {
		return fmt.Errorf("sim: forcing has %d values, block has %d", len(vals), len(s.forcing))
	}
	copy(s.forcing, vals)
	return nil
}

func (s *HeatSolver) at(r, c int) float64 {
	if c < 0 || c >= s.n || r < 0 || r >= s.n {
		return 0
	}
	switch {
	case r < s.block.R0:
		return s.haloUp[c]
	case r >= s.block.R1:
		return s.haloDn[c]
	default:
		return s.cur[(r-s.block.R0)*s.block.Cols()+c]
	}
}

func (s *HeatSolver) exchangeHalos() error {
	if s.procs == 1 {
		return nil
	}
	w := s.block.Cols()
	tagDn := fmt.Sprintf("heat-dn:%d", s.step)
	tagUp := fmt.Sprintf("heat-up:%d", s.step)
	if s.rank > 0 {
		if err := s.comm.Send(s.rank-1, tagUp, wire.EncodeFloat64s(s.cur[:w])); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		if err := s.comm.Send(s.rank+1, tagDn, wire.EncodeFloat64s(s.cur[len(s.cur)-w:])); err != nil {
			return err
		}
	}
	if s.rank > 0 {
		b, err := s.comm.Recv(s.rank-1, tagDn)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloUp); err != nil {
			return err
		}
	}
	if s.rank < s.procs-1 {
		b, err := s.comm.Recv(s.rank+1, tagUp)
		if err != nil {
			return err
		}
		if err := wire.DecodeFloat64sInto(b, s.haloDn); err != nil {
			return err
		}
	}
	return nil
}

// Step advances one explicit Euler step.
func (s *HeatSolver) Step() error {
	if err := s.exchangeHalos(); err != nil {
		return err
	}
	lam := s.dt / (s.h * s.h)
	i := 0
	for r := s.block.R0; r < s.block.R1; r++ {
		for c := s.block.C0; c < s.block.C1; c++ {
			u := s.cur[i]
			lap := s.at(r-1, c) + s.at(r+1, c) + s.at(r, c-1) + s.at(r, c+1) - 4*u
			s.next[i] = u + lam*lap + s.dt*s.forcing[i]
			i++
		}
	}
	s.cur, s.next = s.next, s.cur
	s.step++
	return nil
}

// L2Norm returns the global discrete L2 norm of the current solution,
// reduced across the group when parallel.
func (s *HeatSolver) L2Norm() (float64, error) {
	local := 0.0
	for _, v := range s.cur {
		local += v * v
	}
	total := local
	if s.comm != nil && s.procs > 1 {
		var err error
		total, err = s.comm.AllReduceScalar(local, collective.Sum)
		if err != nil {
			return 0, err
		}
	}
	return math.Sqrt(total) * s.h, nil
}

// MaxAbs returns the global max |u|.
func (s *HeatSolver) MaxAbs() (float64, error) {
	local := 0.0
	for _, v := range s.cur {
		if a := math.Abs(v); a > local {
			local = a
		}
	}
	if s.comm == nil || s.procs == 1 {
		return local, nil
	}
	return s.comm.AllReduceScalar(local, collective.Max)
}
