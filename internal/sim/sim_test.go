package sim

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/decomp"
	"repro/internal/transport"
)

// newGroup builds comms for an n-process group over an in-memory network.
func newGroup(t *testing.T, n int) []*collective.Comm {
	t.Helper()
	net := transport.NewMemNetwork()
	t.Cleanup(func() { net.Close() })
	comms := make([]*collective.Comm, n)
	for r := 0; r < n; r++ {
		ep, err := net.Register(transport.Proc("S", r))
		if err != nil {
			t.Fatal(err)
		}
		comms[r], err = collective.New(transport.NewDispatcher(ep), "S", r, n)
		if err != nil {
			t.Fatal(err)
		}
		comms[r].SetTimeout(20 * time.Second)
	}
	return comms
}

func rowLayout(t *testing.T, n, p int) decomp.RowBlock {
	t.Helper()
	l, err := decomp.NewRowBlock(n, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestWaveSolverValidation(t *testing.T) {
	l := rowLayout(t, 16, 1)
	if _, err := NewWaveSolver(nil, l, 0, 1.0); err == nil {
		t.Error("CFL-violating dt accepted")
	}
	l4 := rowLayout(t, 16, 4)
	if _, err := NewWaveSolver(nil, l4, 0, -1); err == nil {
		t.Error("nil comm with 4 procs accepted")
	}
	lr, err := decomp.NewRowBlock(16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWaveSolver(nil, lr, 0, -1); err == nil {
		t.Error("non-square grid accepted")
	}
	s, err := NewWaveSolver(nil, l, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetForcing(make([]float64, 3)); err == nil {
		t.Error("wrong forcing size accepted")
	}
	if s.N() != 16 || s.Block() != l.Block(0) || s.Dt() <= 0 {
		t.Error("accessors wrong")
	}
}

// TestWaveStandingMode checks the free solver against the analytic standing
// wave u = sin(pi x) sin(pi y) cos(sqrt(2) pi t).
func TestWaveStandingMode(t *testing.T) {
	const n = 48
	l := rowLayout(t, n, 1)
	s, err := NewWaveSolver(nil, l, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	omega := math.Sqrt2 * math.Pi
	s.SetInitial(
		func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) },
		func(x, y float64) float64 { return 0 },
	)
	steps := int(0.5 / s.Dt())
	for k := 0; k < steps; k++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	tEnd := s.Time()
	h := 1 / float64(n+1)
	maxErr := 0.0
	i := 0
	for r := 0; r < n; r++ {
		y := float64(r+1) * h
		for c := 0; c < n; c++ {
			x := float64(c+1) * h
			want := math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Cos(omega*tEnd)
			if e := math.Abs(s.Local()[i] - want); e > maxErr {
				maxErr = e
			}
			i++
		}
	}
	if maxErr > 0.05 {
		t.Errorf("max error %g vs analytic standing wave", maxErr)
	}
}

// runParallelWave runs a p-process wave solve and returns each rank's final
// local block.
func runParallelWave(t *testing.T, n, p, steps int, f Forcing) [][]float64 {
	t.Helper()
	comms := newGroup(t, p)
	l := rowLayout(t, n, p)
	out := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var comm *collective.Comm
			if p > 1 {
				comm = comms[r]
			}
			s, err := NewWaveSolver(comm, l, r, -1)
			if err != nil {
				errs[r] = err
				return
			}
			s.SetInitial(
				func(x, y float64) float64 { return math.Sin(2*math.Pi*x) * math.Sin(math.Pi*y) },
				func(x, y float64) float64 { return x * (1 - x) * y * (1 - y) },
			)
			field := NewField(l, r, f)
			buf := make([]float64, s.Block().Area())
			for k := 0; k < steps; k++ {
				field.Sample(s.Time(), buf)
				if err := s.SetForcing(buf); err != nil {
					errs[r] = err
					return
				}
				if err := s.Step(); err != nil {
					errs[r] = err
					return
				}
			}
			local := make([]float64, len(s.Local()))
			copy(local, s.Local())
			out[r] = local
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return out
}

// TestWaveParallelMatchesSerial: the distributed solve must be bitwise
// identical to the single-process solve (same stencil, same halo values).
func TestWaveParallelMatchesSerial(t *testing.T) {
	const n, steps = 24, 40
	serial := runParallelWave(t, n, 1, steps, PulseForcing)[0]
	for _, p := range []int{2, 3, 4} {
		blocks := runParallelWave(t, n, p, steps, PulseForcing)
		l := rowLayout(t, n, p)
		for r := 0; r < p; r++ {
			b := l.Block(r)
			for i := 0; i < b.Area(); i++ {
				row := b.R0 + i/b.Cols()
				col := i % b.Cols()
				want := serial[row*n+col]
				if blocks[r][i] != want {
					t.Fatalf("p=%d rank %d element (%d,%d): %v != serial %v",
						p, r, row, col, blocks[r][i], want)
				}
			}
		}
	}
}

// TestWaveEnergyBounded: with zero forcing the leapfrog scheme under CFL
// keeps the solution bounded over many steps.
func TestWaveEnergyBounded(t *testing.T) {
	l := rowLayout(t, 32, 1)
	s, err := NewWaveSolver(nil, l, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInitial(
		func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y) },
		func(x, y float64) float64 { return 0 },
	)
	norm0, err := s.L2Norm()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2000; k++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	norm, err := s.L2Norm()
	if err != nil {
		t.Fatal(err)
	}
	if norm > 2*norm0 || math.IsNaN(norm) {
		t.Errorf("norm grew from %g to %g over 2000 steps", norm0, norm)
	}
}

// TestWaveParallelNorm: reductions work across the group.
func TestWaveParallelNorm(t *testing.T) {
	const n, p = 16, 4
	comms := newGroup(t, p)
	l := rowLayout(t, n, p)
	var wg sync.WaitGroup
	norms := make([]float64, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := NewWaveSolver(comms[r], l, r, -1)
			if err != nil {
				errs[r] = err
				return
			}
			s.SetInitial(func(x, y float64) float64 { return 1 }, func(x, y float64) float64 { return 0 })
			norms[r], errs[r] = s.L2Norm()
			if errs[r] != nil {
				return
			}
			if _, err := s.MaxAbs(); err != nil {
				errs[r] = err
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if math.Abs(norms[r]-norms[0]) > 1e-12 {
			t.Errorf("norms differ across ranks: %v", norms)
		}
	}
	// All-ones on n^2 points: norm = h * n.
	h := 1 / float64(n+1)
	want := h * float64(n)
	if math.Abs(norms[0]-want) > 1e-12 {
		t.Errorf("norm %v, want %v", norms[0], want)
	}
}

// TestHeatDecay: with zero forcing the (1,1) mode decays like
// exp(-2 pi^2 t).
func TestHeatDecay(t *testing.T) {
	const n = 32
	l := rowLayout(t, n, 1)
	s, err := NewHeatSolver(nil, l, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInitial(func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) })
	tEnd := 0.02
	for s.Time() < tEnd {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.MaxAbs()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2 * math.Pi * math.Pi * s.Time())
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("peak after t=%g: %g, want ~%g", s.Time(), got, want)
	}
}

// TestHeatParallelMatchesSerial mirrors the wave test for the heat solver.
func TestHeatParallelMatchesSerial(t *testing.T) {
	const n, steps, p = 16, 50, 4
	run := func(p int) [][]float64 {
		comms := newGroup(t, p)
		l := rowLayout(t, n, p)
		out := make([][]float64, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var comm *collective.Comm
				if p > 1 {
					comm = comms[r]
				}
				s, err := NewHeatSolver(comm, l, r, -1)
				if err != nil {
					errs[r] = err
					return
				}
				s.SetInitial(func(x, y float64) float64 { return x * y })
				field := NewField(l, r, PulseForcing)
				buf := make([]float64, s.Block().Area())
				for k := 0; k < steps; k++ {
					field.Sample(s.Time(), buf)
					s.SetForcing(buf)
					if err := s.Step(); err != nil {
						errs[r] = err
						return
					}
				}
				local := make([]float64, len(s.Local()))
				copy(local, s.Local())
				out[r] = local
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return out
	}
	serial := run(1)[0]
	blocks := run(p)
	l := rowLayout(t, n, p)
	for r := 0; r < p; r++ {
		b := l.Block(r)
		for i := 0; i < b.Area(); i++ {
			row := b.R0 + i/b.Cols()
			col := i % b.Cols()
			if blocks[r][i] != serial[row*n+col] {
				t.Fatalf("rank %d element (%d,%d): %v != %v", r, row, col, blocks[r][i], serial[row*n+col])
			}
		}
	}
}

func TestHeatValidation(t *testing.T) {
	l := rowLayout(t, 8, 1)
	if _, err := NewHeatSolver(nil, l, 0, 1.0); err == nil {
		t.Error("unstable dt accepted")
	}
	l4 := rowLayout(t, 8, 4)
	if _, err := NewHeatSolver(nil, l4, 0, -1); err == nil {
		t.Error("nil comm with 4 procs accepted")
	}
	s, _ := NewHeatSolver(nil, l, 0, -1)
	if err := s.SetForcing(make([]float64, 1)); err == nil {
		t.Error("wrong forcing size accepted")
	}
	if s.Dt() <= 0 || s.Block() != l.Block(0) {
		t.Error("accessors wrong")
	}
}

func TestFieldSampling(t *testing.T) {
	l := rowLayout(t, 4, 2)
	f := NewField(l, 1, func(tm, x, y float64) float64 { return tm + 10*x + 100*y })
	vals := f.SampleNew(2)
	if len(vals) != 8 {
		t.Fatalf("len %d", len(vals))
	}
	h := f.H()
	// First element of rank 1's block: global (2, 0) -> x=h, y=3h.
	want := 2 + 10*h + 100*3*h
	if math.Abs(vals[0]-want) > 1e-12 {
		t.Errorf("vals[0] = %v, want %v", vals[0], want)
	}
}

func TestForcingFunctions(t *testing.T) {
	if ZeroForcing(1, 0.5, 0.5) != 0 {
		t.Error("ZeroForcing nonzero")
	}
	if PulseForcing(0.3, 0.5, 0.5) == 0 && PulseForcing(0.3, 0.55, 0.5) == 0 {
		t.Error("PulseForcing identically zero near center")
	}
	if math.Abs(StandingForcing(0, 0.5, 0.5)-1) > 1e-12 {
		t.Errorf("StandingForcing(0, .5, .5) = %v", StandingForcing(0, 0.5, 0.5))
	}
	for _, f := range []Forcing{ZeroForcing, PulseForcing, StandingForcing} {
		v := f(1.7, 0.25, 0.75)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("forcing produced %v", v)
		}
	}
}
