package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func chartOf(t *testing.T, series ...Series) string {
	t.Helper()
	c := Chart{Title: "T & T", XLabel: "iteration", YLabel: "ms", Series: series}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	return svg
}

func TestSVGWellFormed(t *testing.T) {
	svg := chartOf(t,
		Series{Name: "U=4", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
		Series{Name: "U=32", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
	)
	var doc struct{}
	if err := xml.Unmarshal([]byte(svg), &doc); err != nil {
		t.Fatalf("not well-formed XML: %v\n%s", err, svg)
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want 2 polylines:\n%s", svg)
	}
	if !strings.Contains(svg, "T &amp; T") {
		t.Error("title not escaped")
	}
	for _, want := range []string{"iteration", "ms", "U=4", "U=32"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSVGErrors(t *testing.T) {
	c := Chart{}
	if _, err := c.SVG(); err == nil {
		t.Error("no-series chart accepted")
	}
	c = Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: nil}}}
	if _, err := c.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	c = Chart{Series: []Series{{Name: "empty"}}}
	if _, err := c.SVG(); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	// Constant series and single points must not divide by zero.
	svg := chartOf(t, Series{Name: "flat", X: []float64{5, 5}, Y: []float64{7, 7}})
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Errorf("degenerate ranges leak NaN/Inf:\n%s", svg)
	}
}

func TestTicks(t *testing.T) {
	got := ticks(0, 1000, 6)
	if len(got) < 3 || got[0] < 0 || got[len(got)-1] > 1000+1e-6 {
		t.Errorf("ticks(0,1000) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ticks not increasing: %v", got)
		}
	}
	// Small fractional range.
	got = ticks(0, 0.003, 5)
	if len(got) < 2 {
		t.Errorf("fractional ticks %v", got)
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(100) != "100" {
		t.Errorf("fmtTick(100) = %q", fmtTick(100))
	}
	if fmtTick(0.25) != "0.25" {
		t.Errorf("fmtTick(0.25) = %q", fmtTick(0.25))
	}
	if s := fmtTick(math.Pi); !strings.HasPrefix(s, "3.14") {
		t.Errorf("fmtTick(pi) = %q", s)
	}
}
