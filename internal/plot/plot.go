// Package plot renders simple line charts as standalone SVG — enough to
// regenerate the paper's Figure 4 as an image from the measured
// per-iteration series, with no dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline.
type Series struct {
	Name string
	X, Y []float64
	// Color is any SVG color; empty picks from a default palette.
	Color string
}

// Chart is a titled line chart with linear axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// W, H are the image dimensions in pixels (defaults 800x480).
	W, H   int
	Series []Series
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const margin = 56.0

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	w, h := float64(c.W), float64(c.H)
	if w <= 0 {
		w = 800
	}
	if h <= 0 {
		h = 480
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if ymin > 0 {
		ymin = 0 // anchor durations at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*(w-2*margin) }
	py := func(y float64) float64 { return h - margin - (y-ymin)/(ymax-ymin)*(h-2*margin) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, margin, margin, h-margin)
	// Ticks and grid.
	for _, t := range ticks(xmin, xmax, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", x, margin, x, h-margin)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, h-margin+16, fmtTick(t))
	}
	for _, t := range ticks(ymin, ymax, 5) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", margin, y, w-margin, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			margin-6, y+4, fmtTick(t))
	}
	// Series.
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = palette[i%len(palette)]
		}
		var pts strings.Builder
		for j := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.X[j]), py(s.Y[j]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.2" points="%s"/>`+"\n",
			color, strings.TrimSpace(pts.String()))
		// Legend entry.
		lx, ly := w-margin-130, margin+14+float64(i)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n", lx+24, ly, esc(s.Name))
	}
	// Labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		w/2, margin/2, esc(c.Title))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
		w/2, h-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		h/2, h/2, esc(c.YLabel))
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ticks returns ~n nicely spaced values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag >= 5:
		step = 5 * mag
	case raw/mag >= 2:
		step = 2 * mag
	default:
		step = mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
