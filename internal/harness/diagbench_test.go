package harness

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obsv/diag"
)

// TestRunDiag is the acceptance scenario: 8 ranks, rank 5 sleeping 1ms per
// op, the straggler board must finger it for >= 95% of attributed ops, and
// the flight sample must decode.
func TestRunDiag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "flight-sample.cpfl")
	rep, err := RunDiag(DiagConfig{
		Ops: 20, Delay: time.Millisecond, Reps: 16, Attempts: 2, FlightOut: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.SlowRank != 5 || rep.Ranks != 8 {
		t.Fatalf("defaults wrong: %+v", rep)
	}
	if rep.AttributedOps == 0 {
		t.Fatal("no attributed ops")
	}
	if !raceDetectorOn() {
		if rep.Fraction < 0.95 {
			t.Fatalf("slow rank fingered in %.1f%% of attributed ops, want >= 95%%", 100*rep.Fraction)
		}
		if rep.TopRank != rep.SlowRank {
			t.Fatalf("top straggler rank %d, want %d", rep.TopRank, rep.SlowRank)
		}
	}
	if rep.FlightEvents == 0 {
		t.Fatal("flight recorder saw nothing")
	}
	d, err := diag.ReadDump(out)
	if err != nil {
		t.Fatalf("flight sample does not decode: %v", err)
	}
	if d.Program != "bench" || len(d.Events) == 0 {
		t.Fatalf("flight sample: program=%q events=%d", d.Program, len(d.Events))
	}
	if rep.BaseNsPerOp <= 0 || rep.DiagNsPerOp <= 0 {
		t.Fatalf("overhead timing missing: %+v", rep)
	}
}
