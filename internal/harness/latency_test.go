package harness

import (
	"testing"
	"time"
)

// TestLatencySweepRuns: the coupled protocol stays correct under injected
// network latency, and the sweep reports sane numbers.
func TestLatencySweepRuns(t *testing.T) {
	base := tinyFigure4(2, true)
	base.Exports = 81
	points, err := RunLatencySweep(base, []time.Duration{0, 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %v", points)
	}
	for _, pt := range points {
		if pt.CopiesWith <= 0 || pt.CopiesWithout <= 0 {
			t.Errorf("latency %v: degenerate copies %d/%d", pt.Latency, pt.CopiesWith, pt.CopiesWithout)
		}
		// The two runs see different live request-arrival timing, so allow
		// small run-to-run noise; buddy-help must never be much worse.
		if slack := base.Exports / 10; pt.CopiesWith > pt.CopiesWithout+slack {
			t.Errorf("latency %v: buddy-help increased copies %d > %d+%d",
				pt.Latency, pt.CopiesWith, pt.CopiesWithout, slack)
		}
	}
}

// TestFigure4WithLatencyCorrect: a full run over the latency network still
// matches and transfers everything.
func TestFigure4WithLatencyCorrect(t *testing.T) {
	cfg := tinyFigure4(2, true)
	cfg.Exports = 61
	cfg.NetLatency = time.Millisecond
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != cfg.Exports/cfg.MatchEvery {
		t.Errorf("matched %d of %d", res.Matched, cfg.Exports/cfg.MatchEvery)
	}
	if res.SlowStats.Sends != res.Matched {
		t.Errorf("sends %d, matched %d", res.SlowStats.Sends, res.Matched)
	}
}
