package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/recover"
	"repro/internal/transport"
)

// RecoveryConfig parameterizes one kill-and-restart run: a Figure-4-style
// F->U coupling over a real TCP router with collective-sequence checkpoints
// on, where the importer program is killed mid-run (its framework and
// transport vanish) and a fresh incarnation restores from its last
// checkpoint, rejoins, and finishes the workload. Every imported block —
// including the re-executed steps — must be byte-identical to a fault-free
// run of the same workload.
type RecoveryConfig struct {
	GridN         int
	ExporterProcs int
	ImporterProcs int

	// Steps is the number of collective steps; each step is one export at
	// timestamp k matched by one import request at k (REGL, Tolerance).
	Steps int
	// CheckpointEvery is the collective checkpoint schedule.
	CheckpointEvery int
	// CrashAfter kills the importer after it completes this step. Choose it
	// off the checkpoint schedule so the restarted incarnation must re-execute
	// the steps since the last checkpoint.
	CrashAfter int

	Tolerance      float64
	Heartbeat      time.Duration
	ResendInterval time.Duration
	Timeout        time.Duration
}

// DefaultRecovery returns a laptop-sized kill-and-restart configuration.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		GridN:           16,
		ExporterProcs:   2,
		ImporterProcs:   2,
		Steps:           30,
		CheckpointEvery: 5,
		CrashAfter:      23, // checkpoint at 20 -> steps 21..23 are re-executed
		Tolerance:       0.5,
		Heartbeat:       250 * time.Millisecond,
		ResendInterval:  20 * time.Millisecond,
		Timeout:         60 * time.Second,
	}
}

// RecoveryResult reports one completed kill-and-restart comparison.
type RecoveryResult struct {
	Cfg RecoveryConfig
	// Steps is the number of collective steps every pass completed.
	Steps int
	// Replayed is how many completed steps the restarted importer had to
	// re-execute (crash point minus last checkpointed sequence).
	Replayed int
	// Checkpoints is how many program checkpoints the importer saved during
	// the fault-free checkpointed pass.
	Checkpoints int
	// CheckpointTime is the total driver time importer rank 0 spent inside
	// Process.Checkpoint during that pass (the per-rank snapshot cost; the
	// completing rank additionally pays encode+save).
	CheckpointTime time.Duration
	// PlainElapsed / CkptElapsed are the fault-free wall times without and
	// with checkpointing — their difference is the end-to-end checkpoint
	// overhead on the workload.
	PlainElapsed time.Duration
	CkptElapsed  time.Duration
	// CrashElapsed is the wall time of the kill-and-restart pass.
	CrashElapsed time.Duration
	// RestartTime is the recovery latency: from the moment the restarted
	// importer begins loading its checkpoint until every rank has delivered
	// its first re-executed import.
	RestartTime time.Duration
}

// Overhead is the relative fault-free slowdown from checkpointing.
func (r *RecoveryResult) Overhead() float64 {
	if r.PlainElapsed <= 0 {
		return 0
	}
	return float64(r.CkptElapsed-r.PlainElapsed) / float64(r.PlainElapsed)
}

// recCell is the ground-truth value of global cell (r,c) at timestamp ts.
func recCell(ts float64, r, c int) float64 { return ts*1e6 + float64(r*1000+c) }

// blockHash fingerprints one delivered block (FNV-1a over the raw float
// bits, so equal hashes mean byte-identical data).
func blockHash(d []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range d {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// recPass accumulates one pass's delivered-block fingerprints: rank/step ->
// one hash per delivery (a re-executed step records a second copy).
type recPass struct {
	mu     sync.Mutex
	hashes map[string][]uint64

	ckN    int           // importer rank-0 checkpoints taken
	ckTime time.Duration // importer rank-0 driver time inside Checkpoint
}

func (rp *recPass) record(rank, step int, h uint64) {
	key := fmt.Sprintf("%d/%d", rank, step)
	rp.mu.Lock()
	rp.hashes[key] = append(rp.hashes[key], h)
	rp.mu.Unlock()
}

const (
	passPlain = iota // fault-free, no checkpointing
	passCkpt         // fault-free, collective checkpoints
	passCrash        // checkpoints + importer kill and restart
)

// joinRecoverable runs one side of the coupling: TCP + reliable transport at
// the given restart epoch, Join, DefineRegion, Start, app.
func joinRecoverable(routerAddr, program string, coupling *config.Config, layout decomp.Layout,
	cfg RecoveryConfig, rec *core.RecoveryOptions, epoch uint64, app func(*core.Program) error) error {
	tcp := transport.NewTCPNetwork(routerAddr)
	tcp.SessionEpoch = epoch
	net := transport.NewReliableNetwork(tcp, transport.ReliableConfig{
		SessionEpoch:   uint32(epoch),
		ResendInterval: cfg.ResendInterval,
	})
	fw, err := core.Join(coupling, program, core.Options{
		Network:   net,
		BuddyHelp: true,
		Timeout:   cfg.Timeout,
		Heartbeat: cfg.Heartbeat,
		Recovery:  rec,
	})
	if err != nil {
		net.Close()
		return err
	}
	defer fw.Close()
	prog, err := fw.Local()
	if err != nil {
		return err
	}
	if err := prog.DefineRegion("f", layout); err != nil {
		return err
	}
	if err := fw.Start(); err != nil {
		return err
	}
	if err := app(prog); err != nil {
		return err
	}
	return fw.Err()
}

// recExportAll drives the exporter ranks through the whole workload, then
// holds the program up until the importer — including a restarted
// incarnation — is done with it (shutdown coordination is application-level).
func recExportAll(prog *core.Program, cfg RecoveryConfig, ckpt bool, done <-chan struct{}) error {
	var wg sync.WaitGroup
	perr := make([]error, prog.Procs())
	for r := 0; r < prog.Procs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := prog.Process(r)
			block, err := p.Block("f")
			if err != nil {
				perr[r] = err
				return
			}
			g := decomp.NewGrid(block)
			for k := 1; k <= cfg.Steps; k++ {
				ts := float64(k)
				g.Fill(func(r, c int) float64 { return recCell(ts, r, c) })
				if err := p.Export("f", ts, g.Data); err != nil {
					perr[r] = err
					return
				}
				if ckpt && k%cfg.CheckpointEvery == 0 {
					if err := p.Checkpoint(uint64(k)); err != nil {
						perr[r] = err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for _, e := range perr {
		if e != nil {
			return e
		}
	}
	<-done
	return nil
}

// recImportSteps drives the importer ranks through steps [from, to],
// verifying each delivered block against the analytic ground truth,
// fingerprinting it, and checkpointing on the collective schedule. markFirst,
// when non-nil, is called once per rank after its first completed step (the
// recovery-latency probe).
func recImportSteps(prog *core.Program, cfg RecoveryConfig, from, to int, ckpt bool,
	rp *recPass, markFirst func()) error {
	var wg sync.WaitGroup
	perr := make([]error, prog.Procs())
	for r := 0; r < prog.Procs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := prog.Process(r)
			block, err := p.Block("f")
			if err != nil {
				perr[r] = err
				return
			}
			dst := make([]float64, block.Area())
			for k := from; k <= to; k++ {
				ts := float64(k)
				res, err := p.Import("f", ts, dst)
				if err != nil {
					perr[r] = err
					return
				}
				if !res.Matched || res.MatchTS != ts {
					perr[r] = fmt.Errorf("harness: recovery import rank %d step %d resolved %+v", r, k, res)
					return
				}
				g := decomp.Grid{Block: block, Data: dst}
				for rr := block.R0; rr < block.R1; rr += 3 {
					for cc := block.C0; cc < block.C1; cc += 3 {
						if got, want := g.At(rr, cc), recCell(ts, rr, cc); got != want {
							perr[r] = fmt.Errorf("harness: recovery data corrupt at (%d,%d)@%g: got %v, want %v",
								rr, cc, ts, got, want)
							return
						}
					}
				}
				rp.record(r, k, blockHash(dst))
				if k == from && markFirst != nil {
					markFirst()
				}
				if ckpt && k%cfg.CheckpointEvery == 0 {
					start := time.Now()
					err := p.Checkpoint(uint64(k))
					if r == 0 {
						rp.mu.Lock()
						rp.ckTime += time.Since(start)
						rp.ckN++
						rp.mu.Unlock()
					}
					if err != nil {
						perr[r] = err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for _, e := range perr {
		if e != nil {
			return e
		}
	}
	return nil
}

// recoveryPass executes the workload once in the given mode and returns its
// fingerprints plus (for passCrash) the measured restart latency.
func recoveryPass(cfg RecoveryConfig, mode int) (*recPass, time.Duration, error) {
	coupling := &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: cfg.ExporterProcs},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: cfg.ImporterProcs},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: cfg.Tolerance,
		}},
	}
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		return nil, 0, err
	}
	defer router.Close()

	expLayout, err := decomp.NewRowBlock(cfg.GridN, cfg.GridN, cfg.ExporterProcs)
	if err != nil {
		return nil, 0, err
	}
	impLayout, err := decomp.NewColBlock(cfg.GridN, cfg.GridN, cfg.ImporterProcs)
	if err != nil {
		return nil, 0, err
	}

	store := recover.NewMemStore()
	recOpts := func(restore bool) *core.RecoveryOptions {
		if mode == passPlain {
			return nil
		}
		return &core.RecoveryOptions{Store: store, Restore: restore, Every: cfg.CheckpointEvery}
	}
	ckpt := mode != passPlain

	rp := &recPass{hashes: make(map[string][]uint64)}
	done := make(chan struct{})
	var doneOnce sync.Once
	finish := func() { doneOnce.Do(func() { close(done) }) }
	defer finish()

	expErr := make(chan error, 1)
	go func() {
		expErr <- joinRecoverable(router.ListenAddr(), "F", coupling, expLayout, cfg, recOpts(false), 0,
			func(prog *core.Program) error { return recExportAll(prog, cfg, ckpt, done) })
	}()

	impTo := cfg.Steps
	if mode == passCrash {
		impTo = cfg.CrashAfter
	}
	err = joinRecoverable(router.ListenAddr(), "U", coupling, impLayout, cfg, recOpts(false), 0,
		func(prog *core.Program) error { return recImportSteps(prog, cfg, 1, impTo, ckpt, rp, nil) })
	if err != nil {
		return nil, 0, err
	}

	var restartTime time.Duration
	if mode == passCrash {
		// The importer's first incarnation is gone (framework and transport
		// closed — from the exporter's point of view the program died).
		// Restart: load the checkpoint to learn the restart epoch, build the
		// transport session under it, restore, rejoin and finish the workload.
		restartStart := time.Now()
		ck, err := store.Load("U")
		if err != nil {
			return nil, 0, err
		}
		if ck == nil {
			return nil, 0, fmt.Errorf("harness: no checkpoint saved before the crash")
		}
		var firstDone int32
		var recovered atomic.Int64
		markFirst := func() {
			if atomic.AddInt32(&firstDone, 1) == int32(cfg.ImporterProcs) {
				recovered.Store(int64(time.Since(restartStart)))
			}
		}
		err = joinRecoverable(router.ListenAddr(), "U", coupling, impLayout, cfg, recOpts(true), ck.Epoch+1,
			func(prog *core.Program) error {
				seq, ok := prog.RestoredSeq()
				if !ok {
					return fmt.Errorf("harness: restore did not surface the checkpoint")
				}
				return recImportSteps(prog, cfg, int(seq)+1, cfg.Steps, ckpt, rp, markFirst)
			})
		if err != nil {
			return nil, 0, err
		}
		restartTime = time.Duration(recovered.Load())
	}

	finish()
	if err := <-expErr; err != nil {
		return nil, 0, err
	}
	return rp, restartTime, nil
}

// comparePasses requires every delivery of got to be byte-identical to the
// reference pass's single delivery of the same rank/step.
func comparePasses(name string, ref, got *recPass, steps, ranks int) error {
	if len(ref.hashes) != ranks*steps {
		return fmt.Errorf("harness: reference pass recorded %d imports, want %d", len(ref.hashes), ranks*steps)
	}
	for key, want := range ref.hashes {
		if len(want) != 1 {
			return fmt.Errorf("harness: reference pass delivered import %s %d times", key, len(want))
		}
		copies, ok := got.hashes[key]
		if !ok {
			return fmt.Errorf("harness: %s pass never delivered import %s", name, key)
		}
		for i, h := range copies {
			if h != want[0] {
				return fmt.Errorf("harness: %s pass import %s copy %d differs from fault-free run", name, key, i)
			}
		}
	}
	return nil
}

// RunRecovery measures crash recovery end to end: a fault-free pass without
// checkpoints, a fault-free pass with the collective checkpoint schedule
// (their difference is the checkpoint overhead), and a kill-and-restart pass
// whose every delivered block — including the steps re-executed after the
// restore — must be byte-identical to the fault-free run.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	if cfg.CheckpointEvery <= 0 || cfg.CrashAfter <= cfg.CheckpointEvery ||
		cfg.CrashAfter >= cfg.Steps {
		return nil, fmt.Errorf("harness: recovery config wants 0 < CheckpointEvery < CrashAfter < Steps, got %d/%d/%d",
			cfg.CheckpointEvery, cfg.CrashAfter, cfg.Steps)
	}

	plainStart := time.Now()
	plain, _, err := recoveryPass(cfg, passPlain)
	if err != nil {
		return nil, fmt.Errorf("harness: plain pass: %w", err)
	}
	plainElapsed := time.Since(plainStart)

	ckptStart := time.Now()
	ckptPass, _, err := recoveryPass(cfg, passCkpt)
	if err != nil {
		return nil, fmt.Errorf("harness: checkpointed pass: %w", err)
	}
	ckptElapsed := time.Since(ckptStart)
	// Checkpointing must not perturb the data plane.
	if err := comparePasses("checkpointed", plain, ckptPass, cfg.Steps, cfg.ImporterProcs); err != nil {
		return nil, err
	}

	crashStart := time.Now()
	crash, restartTime, err := recoveryPass(cfg, passCrash)
	if err != nil {
		return nil, fmt.Errorf("harness: crash pass: %w", err)
	}
	crashElapsed := time.Since(crashStart)
	if err := comparePasses("recovered", plain, crash, cfg.Steps, cfg.ImporterProcs); err != nil {
		return nil, err
	}
	// The steps between the last checkpoint and the crash are delivered twice
	// — once by each incarnation — and were checked identical above.
	replayed := cfg.CrashAfter % cfg.CheckpointEvery
	for r := 0; r < cfg.ImporterProcs; r++ {
		for k := cfg.CrashAfter - replayed + 1; k <= cfg.CrashAfter; k++ {
			key := fmt.Sprintf("%d/%d", r, k)
			if n := len(crash.hashes[key]); n != 2 {
				return nil, fmt.Errorf("harness: replayed step %s delivered %d times, want 2 (crash + replay)", key, n)
			}
		}
	}

	return &RecoveryResult{
		Cfg:            cfg,
		Steps:          cfg.Steps,
		Replayed:       replayed,
		Checkpoints:    ckptPass.ckN,
		CheckpointTime: ckptPass.ckTime,
		PlainElapsed:   plainElapsed,
		CkptElapsed:    ckptElapsed,
		CrashElapsed:   crashElapsed,
		RestartTime:    restartTime,
	}, nil
}
