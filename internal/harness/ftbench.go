package harness

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/collective"
	"repro/internal/transport"
)

// This file holds the fault-tolerant-collectives benchmark: it prices every
// stage of the recovery pipeline — detection of a killed rank, revocation
// unblocking the group, agreement on the failed set (including a second
// failure during the agreement itself), shrink, and the first collective on
// the survivor group — and then proves the shrunk communicator's steady state
// is as cheap as a never-shrunk one (zero allocations per operation). Shared
// by couplebench's -ft mode and the harness tests.

// FTConfig tunes RunFT. Zero values pick the acceptance scenario: 5 ranks,
// 1 KiB float64 vectors, rank 2 killed, 300ms detection timeout.
type FTConfig struct {
	Ranks    int
	DeadRank int
	VecLen   int
	Timeout  time.Duration // receive deadline driving failure detection
	Reps     int           // steady-state reps per timing pass
	Attempts int           // best-of passes for the steady-state timing
}

func (c FTConfig) withDefaults() FTConfig {
	if c.Ranks == 0 {
		c.Ranks = 5
	}
	if c.DeadRank == 0 {
		c.DeadRank = 2
	}
	if c.VecLen == 0 {
		c.VecLen = 1024
	}
	if c.Timeout == 0 {
		c.Timeout = 300 * time.Millisecond
	}
	if c.Reps == 0 {
		c.Reps = 32
	}
	if c.Attempts == 0 {
		c.Attempts = 16
	}
	return c
}

// FTReport is RunFT's result (and the body of the -ft JSON report).
type FTReport struct {
	Ranks     int   `json:"ranks"`
	DeadRank  int   `json:"dead_rank"`
	VectorLen int   `json:"vector_len"`
	TimeoutNS int64 `json:"timeout_ns"`

	// Recovery pipeline latencies, measured from the kill on one live group:
	// first typed error, all survivors unblocked (revoke-assisted, so far
	// below the detection timeout on most ranks), agreement, shrink, first
	// collective on the survivor group, and the end-to-end total.
	DetectFirstNS int64 `json:"detect_first_ns"`
	DetectAllNS   int64 `json:"detect_all_ns"`
	AgreeNS       int64 `json:"agree_ns"`
	ShrinkNS      int64 `json:"shrink_ns"`
	FirstOpNS     int64 `json:"first_op_ns"`
	TotalNS       int64 `json:"total_ns"`

	// Agreement under a failure during the agreement itself: a second rank
	// dies after the revoke, before answering any sweep round. Convergence
	// then costs one receive deadline (the silent rank must be suspected by
	// non-participation) plus one more flooding round.
	AgreeKillConverged bool  `json:"agree_kill_converged"`
	AgreeKillFailed    []int `json:"agree_kill_failed"`
	AgreeKillNS        int64 `json:"agree_kill_ns"`

	// Shrunk steady state: allocations and latency per AllReduce on the
	// survivor communicator vs a never-shrunk group of the same size.
	// Acceptance: SteadyAllocsPerOp == 0.
	SteadyAllocsPerOp float64 `json:"shrunk_allocs_per_op"`
	SteadyNsPerOp     int64   `json:"shrunk_ns_per_op"`
	BaselineNsPerOp   int64   `json:"baseline_ns_per_op"`
}

func (r *FTReport) String() string {
	return fmt.Sprintf("%d ranks (rank %d killed, timeout %v): detect %v/%v (first/all), agree %v, shrink %v, first op %v, total %v; agree+kill %v (failed %v); shrunk steady state %d ns/op %.2f allocs/op (baseline %d ns/op)",
		r.Ranks, r.DeadRank, time.Duration(r.TimeoutNS),
		time.Duration(r.DetectFirstNS), time.Duration(r.DetectAllNS),
		time.Duration(r.AgreeNS), time.Duration(r.ShrinkNS),
		time.Duration(r.FirstOpNS), time.Duration(r.TotalNS),
		time.Duration(r.AgreeKillNS), r.AgreeKillFailed,
		r.SteadyNsPerOp, r.SteadyAllocsPerOp, r.BaselineNsPerOp)
}

// ftGroup is an in-memory collective group that, unlike collGroup, keeps the
// per-rank dispatchers so a benchmark can kill a rank by closing its endpoint.
type ftGroup struct {
	net   transport.Network
	comms []*collective.Comm
	disps []*transport.Dispatcher
}

func newFTGroup(size int, timeout time.Duration) (*ftGroup, error) {
	return newFTGroupNet(transport.NewMemNetwork(), size, timeout)
}

// newFTGroupNet builds the group over an arbitrary substrate (e.g. a
// delay-injecting fault network for the kill-a-rank chaos test). Closing the
// group closes net.
func newFTGroupNet(net transport.Network, size int, timeout time.Duration) (*ftGroup, error) {
	g := &ftGroup{
		net:   net,
		comms: make([]*collective.Comm, size),
		disps: make([]*transport.Dispatcher, size),
	}
	for r := 0; r < size; r++ {
		ep, err := g.net.Register(transport.Proc("ft", r))
		if err != nil {
			g.net.Close()
			return nil, err
		}
		g.disps[r] = transport.NewDispatcher(ep)
		c, err := collective.New(g.disps[r], "ft", r, size)
		if err != nil {
			g.net.Close()
			return nil, err
		}
		c.SetTimeout(timeout)
		c.SetBufferReuse(true)
		g.comms[r] = c
	}
	return g, nil
}

func (g *ftGroup) close() { g.net.Close() }

// run executes fn once per live rank concurrently (dead < 0 skips nobody) and
// returns the first error.
func (g *ftGroup) run(dead int, fn func(c *collective.Comm) error) error {
	errs := make(chan error, len(g.comms))
	n := 0
	for r, c := range g.comms {
		if r == dead {
			continue
		}
		n++
		go func(c *collective.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// isFault reports whether err is one of the typed faults a collective may
// return once a rank is dead (per-rank failure, revocation, or — for a rank
// that times out before any revoke reaches it — a bare deadline).
func isFault(err error) bool {
	var rf *collective.RankFailedError
	return errors.As(err, &rf) || errors.Is(err, collective.ErrRevoked) || errors.Is(err, transport.ErrTimeout)
}

// measureGroupAllocs runs warmup rounds, then measures the heap allocations of
// reps group operations and returns allocations per operation (all ranks
// together).
func measureGroupAllocs(g *collGroup, warmup, reps int, fn func(*collective.Comm) error) (float64, error) {
	for i := 0; i < warmup; i++ {
		if err := g.run(fn); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		if err := g.run(fn); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps), nil
}

// RunFT measures the fault-tolerance pipeline end to end: kill, detect,
// revoke, agree, shrink, resume — then the agreement's behavior under a
// second kill, then the shrunk group's steady-state cost.
func RunFT(cfg FTConfig) (*FTReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 4 {
		return nil, fmt.Errorf("harness: ft: need >= 4 ranks, have %d", cfg.Ranks)
	}
	if cfg.DeadRank <= 0 || cfg.DeadRank >= cfg.Ranks {
		return nil, fmt.Errorf("harness: ft: dead rank %d out of range for %d ranks", cfg.DeadRank, cfg.Ranks)
	}
	report := &FTReport{
		Ranks: cfg.Ranks, DeadRank: cfg.DeadRank, VectorLen: cfg.VecLen,
		TimeoutNS: cfg.Timeout.Nanoseconds(),
	}
	vecs := make([][]float64, cfg.Ranks)
	for r := range vecs {
		vecs[r] = exactContrib(r, cfg.VecLen)
	}
	op := func(c *collective.Comm) error {
		return c.AllReduceInPlaceWith(collective.Ring, vecs[c.Rank()], collective.Max)
	}

	// Phase 1: the recovery pipeline on one live group. Warm up, kill the
	// dead rank's endpoint, and time every stage on every survivor.
	g, err := newFTGroup(cfg.Ranks, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	defer g.close()
	for i := 0; i < 4; i++ {
		if err := g.run(-1, op); err != nil {
			return nil, fmt.Errorf("harness: ft warmup: %w", err)
		}
	}
	type stages struct {
		detect, agree, shrink, firstOp, total time.Duration
		failed                                []int
	}
	res := make([]stages, cfg.Ranks)
	shrunk := make([]*collective.Comm, cfg.Ranks)
	killT := time.Now()
	g.disps[cfg.DeadRank].Close()
	err = g.run(cfg.DeadRank, func(c *collective.Comm) error {
		r := c.Rank()
		if err := op(c); err == nil {
			return fmt.Errorf("rank %d: collective succeeded with rank %d dead", r, cfg.DeadRank)
		} else if !isFault(err) {
			return fmt.Errorf("rank %d: untyped failure %w", r, err)
		}
		res[r].detect = time.Since(killT)
		c.Revoke()
		t := time.Now()
		failed, err := c.AgreeFailures()
		if err != nil {
			return fmt.Errorf("rank %d agree: %w", r, err)
		}
		res[r].agree, res[r].failed = time.Since(t), failed
		t = time.Now()
		nc, err := c.Shrink(failed)
		if err != nil {
			return fmt.Errorf("rank %d shrink: %w", r, err)
		}
		res[r].shrink = time.Since(t)
		shrunk[r] = nc
		t = time.Now()
		if err := nc.AllReduceInPlaceWith(collective.Ring, vecs[r], collective.Max); err != nil {
			return fmt.Errorf("rank %d first shrunk op: %w", r, err)
		}
		res[r].firstOp = time.Since(t)
		res[r].total = time.Since(killT)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := 0; r < cfg.Ranks; r++ {
		if r == cfg.DeadRank {
			continue
		}
		if fmt.Sprint(res[r].failed) != fmt.Sprint([]int{cfg.DeadRank}) {
			return nil, fmt.Errorf("harness: ft: rank %d agreed %v, want [%d]", r, res[r].failed, cfg.DeadRank)
		}
		s := res[r]
		if report.DetectFirstNS == 0 || s.detect.Nanoseconds() < report.DetectFirstNS {
			report.DetectFirstNS = s.detect.Nanoseconds()
		}
		report.DetectAllNS = max(report.DetectAllNS, s.detect.Nanoseconds())
		report.AgreeNS = max(report.AgreeNS, s.agree.Nanoseconds())
		report.ShrinkNS = max(report.ShrinkNS, s.shrink.Nanoseconds())
		report.FirstOpNS = max(report.FirstOpNS, s.firstOp.Nanoseconds())
		report.TotalNS = max(report.TotalNS, s.total.Nanoseconds())
	}

	// Phase 3 setup rides on phase 1's survivors: wrap the shrunk comms in the
	// pre-spawned-worker harness (base-rank order; the group now owns g.net).
	survivors := make([]*collective.Comm, 0, cfg.Ranks-1)
	for r := 0; r < cfg.Ranks; r++ {
		if r != cfg.DeadRank {
			survivors = append(survivors, shrunk[r])
		}
	}

	// Phase 2: a second rank dies during the agreement itself. The victim
	// stays silent (it never enters AgreeFailures), so the survivors must
	// suspect it by non-participation and converge without it.
	g2, err := newFTGroup(cfg.Ranks, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	defer g2.close()
	deadB := cfg.Ranks - 1
	if deadB == cfg.DeadRank {
		deadB--
	}
	g2.disps[cfg.DeadRank].Close()
	kill2 := time.AfterFunc(cfg.Timeout/10, func() { g2.disps[deadB].Close() })
	defer kill2.Stop()
	var mu2 struct {
		agreed [][]int
	}
	mu2.agreed = make([][]int, cfg.Ranks)
	agreeT := time.Now()
	err = g2.run(cfg.DeadRank, func(c *collective.Comm) error {
		if c.Rank() == deadB {
			return nil // dies mid-agreement via the timer above
		}
		c.Revoke()
		failed, err := c.AgreeFailures()
		if err != nil {
			return fmt.Errorf("rank %d agree under second kill: %w", c.Rank(), err)
		}
		mu2.agreed[c.Rank()] = failed
		return nil
	})
	if err != nil {
		return nil, err
	}
	report.AgreeKillNS = time.Since(agreeT).Nanoseconds()
	report.AgreeKillConverged = true
	wantFailed := []int{cfg.DeadRank, deadB}
	if deadB < cfg.DeadRank {
		wantFailed = []int{deadB, cfg.DeadRank}
	}
	for r := 0; r < cfg.Ranks; r++ {
		if r == cfg.DeadRank || r == deadB {
			continue
		}
		if fmt.Sprint(mu2.agreed[r]) != fmt.Sprint(wantFailed) {
			report.AgreeKillConverged = false
		}
		if report.AgreeKillFailed == nil {
			report.AgreeKillFailed = mu2.agreed[r]
		}
	}

	// Phase 3: the shrunk steady state — allocations and latency per
	// operation on the survivor communicator, vs a never-shrunk group of the
	// same size built fresh.
	sg := newCollGroupFrom(g.net, survivors)
	svecs := make([][]float64, len(survivors))
	for i := range svecs {
		svecs[i] = exactContrib(i, cfg.VecLen)
	}
	sop := func(c *collective.Comm) error {
		return c.AllReduceInPlaceWith(collective.Ring, svecs[c.Rank()], collective.Max)
	}
	allocs, err := measureGroupAllocs(sg, 16, 64, sop)
	if err != nil {
		return nil, fmt.Errorf("harness: ft shrunk allocs: %w", err)
	}
	report.SteadyAllocsPerOp = allocs
	shrunkTime, err := sg.timeOp(4, cfg.Reps, cfg.Attempts, sop)
	if err != nil {
		return nil, fmt.Errorf("harness: ft shrunk timing: %w", err)
	}
	report.SteadyNsPerOp = shrunkTime.Nanoseconds() / int64(cfg.Reps)
	// sg shares g.net; leave teardown to g.close via the deferred close, but
	// stop the workers now.
	defer sg.closeWorkers()

	bg, err := newCollGroup(cfg.Ranks-1, true)
	if err != nil {
		return nil, err
	}
	defer bg.close()
	baseTime, err := bg.timeOp(4, cfg.Reps, cfg.Attempts, sop)
	if err != nil {
		return nil, fmt.Errorf("harness: ft baseline timing: %w", err)
	}
	report.BaselineNsPerOp = baseTime.Nanoseconds() / int64(cfg.Reps)
	return report, nil
}
