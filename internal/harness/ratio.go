package harness

import (
	"fmt"
	"time"
)

// RatioPoint is one entry of the tolerance-ratio sweep: the paper (Section
// 5) observes that buddy-help's benefit depends on the ratio of the
// acceptable region's size (the tolerance) to the inter-arrival spacing of
// requests (MatchEvery in export timestamps). A larger ratio puts more
// exports inside each acceptable region, where — without buddy-help — every
// one becomes a buffered candidate.
type RatioPoint struct {
	Tolerance float64
	// Ratio is Tolerance / MatchEvery.
	Ratio float64
	// CopiesWith / CopiesWithout are p_s's memcpy counts with and without
	// buddy-help.
	CopiesWith, CopiesWithout int
	// SavedFraction is 1 - CopiesWith/CopiesWithout.
	SavedFraction float64
	// TubWithout is p_s's unnecessary buffering time without the
	// optimization.
	TubWithout time.Duration
}

// RunRatioSweep measures the buddy-help saving across tolerances for a fixed
// request spacing (the Figure 7-vs-8 comparison, generalized to a curve).
func RunRatioSweep(base Figure4Config, tolerances []float64) ([]RatioPoint, error) {
	out := make([]RatioPoint, 0, len(tolerances))
	for _, tol := range tolerances {
		cfg := base
		cfg.Tolerance = tol
		cfg.Name = fmt.Sprintf("tol=%g", tol)
		res, err := RunTub(cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: ratio sweep tol %g: %w", tol, err)
		}
		pt := RatioPoint{
			Tolerance:     tol,
			Ratio:         tol / float64(cfg.MatchEvery),
			CopiesWith:    res.With.SlowStats.Copies,
			CopiesWithout: res.Without.SlowStats.Copies,
			TubWithout:    res.Without.SlowStats.UnnecessaryTime,
		}
		if pt.CopiesWithout > 0 {
			pt.SavedFraction = 1 - float64(pt.CopiesWith)/float64(pt.CopiesWithout)
		}
		out = append(out, pt)
	}
	return out, nil
}
