package harness

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/wire"
)

// Performance guidelines for the collective engine, after Hunold et al.'s
// self-consistent MPI performance guidelines: a specialized collective must
// not be slower than the obvious composition of more general ones (modulo a
// slack factor for measurement noise), and growing the problem must not make
// it faster. Violations mean the algorithm selection table is mis-tuned —
// the dispatcher picked an algorithm that loses to a composition the caller
// could have written by hand.

// Guideline is one measured inequality LHS <= Slack * RHS.
type Guideline struct {
	Name   string  `json:"name"`
	Detail string  `json:"detail"`
	LHSNs  int64   `json:"lhs_ns"`
	RHSNs  int64   `json:"rhs_ns"`
	Ratio  float64 `json:"ratio"` // LHS / RHS
	Slack  float64 `json:"slack"`
	Holds  bool    `json:"holds"`
}

func (g Guideline) String() string {
	verdict := "holds"
	if !g.Holds {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("%-24s %v vs %v (ratio %.2f, slack %.1f): %s",
		g.Name, time.Duration(g.LHSNs), time.Duration(g.RHSNs), g.Ratio, g.Slack, verdict)
}

// GuidelinesReport is the result of one RunGuidelines sweep.
type GuidelinesReport struct {
	Ranks       int         `json:"ranks"`
	GatherRanks int         `json:"gather_ranks"`
	VectorLen   int         `json:"vector_len"`
	Reps        int         `json:"reps"`
	Identical   bool        `json:"results_identical"`
	Guidelines  []Guideline `json:"guidelines"`
}

// Holds reports whether every measured guideline held.
func (r *GuidelinesReport) Holds() bool {
	for _, g := range r.Guidelines {
		if !g.Holds {
			return false
		}
	}
	return true
}

// GuidelinesConfig bounds the guideline measurements.
type GuidelinesConfig struct {
	Ranks       int     // AllReduce group size (default 8)
	GatherRanks int     // group size for the tree-vs-linear Gather guideline (default 24)
	VectorLen   int     // float64s per rank for the reduction guidelines (default 16384 = 128 KiB)
	Reps        int     // operations per timing pass (default 8)
	Attempts    int     // timing passes per side, best-of (default 3)
	Slack       float64 // allowed LHS/RHS ratio (default 1.5)
}

func (c *GuidelinesConfig) defaults() {
	if c.Ranks <= 0 {
		c.Ranks = 8
	}
	if c.GatherRanks <= 0 {
		c.GatherRanks = 24
	}
	if c.VectorLen <= 0 {
		c.VectorLen = 16384
	}
	if c.Reps <= 0 {
		c.Reps = 8
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Slack <= 0 {
		c.Slack = 1.5
	}
}

// RunGuidelines measures the performance guidelines on a live in-memory
// group and verifies that the algorithms are interchangeable bit-for-bit:
//
//	allreduce        <= slack * (reduce ; bcast)             (mock-up composition)
//	allreduce(ring)  <= slack * (reducescatter ; allgather)
//	allreduce(len L) <= slack * allreduce(len 4L)            (size monotonicity)
//	gather(auto)     <= slack * min(gather(linear), gather(tree))
//	                                       (dispatch self-consistency at GatherRanks)
func RunGuidelines(cfg GuidelinesConfig) (*GuidelinesReport, error) {
	cfg.defaults()
	rep := &GuidelinesReport{
		Ranks:       cfg.Ranks,
		GatherRanks: cfg.GatherRanks,
		VectorLen:   cfg.VectorLen,
		Reps:        cfg.Reps,
	}

	g, err := newCollGroup(cfg.Ranks, true)
	if err != nil {
		return nil, err
	}
	defer g.close()

	identical, err := checkIdentical(g, cfg.VectorLen)
	if err != nil {
		return nil, err
	}
	rep.Identical = identical

	vecs := make([][]float64, cfg.Ranks)
	for r := range vecs {
		vecs[r] = exactContrib(r, cfg.VectorLen)
	}
	timeFn := func(fn func(*collective.Comm) error) (time.Duration, error) {
		return g.timeOp(2, cfg.Reps, cfg.Attempts, fn)
	}
	add := func(name, detail string, lhs, rhs time.Duration, slack float64) {
		gl := Guideline{
			Name:   name,
			Detail: detail,
			LHSNs:  lhs.Nanoseconds() / int64(cfg.Reps),
			RHSNs:  rhs.Nanoseconds() / int64(cfg.Reps),
			Slack:  slack,
		}
		if gl.RHSNs > 0 {
			gl.Ratio = float64(gl.LHSNs) / float64(gl.RHSNs)
		}
		gl.Holds = float64(gl.LHSNs) <= slack*float64(gl.RHSNs)
		rep.Guidelines = append(rep.Guidelines, gl)
	}

	// Guideline 1: AllReduce must not lose to its Reduce+Bcast mock-up.
	allred, err := timeFn(func(c *collective.Comm) error {
		return c.AllReduceInPlace(vecs[c.Rank()], collective.Max)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: guideline allreduce: %w", err)
	}
	mockup, err := timeFn(func(c *collective.Comm) error {
		red, err := c.Reduce(0, vecs[c.Rank()], collective.Max)
		if err != nil {
			return err
		}
		_, err = c.BcastFloats(0, red) // red is nil off-root; BcastFloats ignores it there
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("harness: guideline reduce+bcast: %w", err)
	}
	add("allreduce<=reduce+bcast",
		fmt.Sprintf("%d ranks, %d floats", cfg.Ranks, cfg.VectorLen), allred, mockup, cfg.Slack)

	// Guideline 2: the fused ring AllReduce must not lose to its own
	// ReduceScatter + AllGather composition.
	ring, err := timeFn(func(c *collective.Comm) error {
		return c.AllReduceInPlaceWith(collective.Ring, vecs[c.Rank()], collective.Max)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: guideline ring allreduce: %w", err)
	}
	rsag, err := timeFn(func(c *collective.Comm) error {
		block, err := c.ReduceScatterWith(collective.Ring, vecs[c.Rank()], collective.Max)
		if err != nil {
			return err
		}
		_, err = c.AllGatherWith(collective.Ring, wire.AppendFloat64s(nil, block))
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("harness: guideline rs+ag: %w", err)
	}
	add("allreduce<=rs+ag",
		fmt.Sprintf("%d ranks, %d floats, ring both sides", cfg.Ranks, cfg.VectorLen), ring, rsag, cfg.Slack)

	// Guideline 4 (same group): growing the vector must not make AllReduce
	// faster.
	smallLen := cfg.VectorLen / 4
	if smallLen < 1 {
		smallLen = 1
	}
	smalls := make([][]float64, cfg.Ranks)
	for r := range smalls {
		smalls[r] = exactContrib(r, smallLen)
	}
	tSmall, err := timeFn(func(c *collective.Comm) error {
		return c.AllReduceInPlace(smalls[c.Rank()], collective.Max)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: guideline monotonicity small: %w", err)
	}
	add("allreduce-monotonic",
		fmt.Sprintf("%d ranks, %d vs %d floats", cfg.Ranks, smallLen, cfg.VectorLen), tSmall, allred, cfg.Slack)

	// Guideline 3: dispatch self-consistency — the table's automatic choice
	// must not lose to any algorithm the caller could force by hand
	// (separate, wider group; small payloads, where a mis-set gather
	// threshold hurts most).
	gg, err := newCollGroup(cfg.GatherRanks, true)
	if err != nil {
		return nil, err
	}
	defer gg.close()
	part := make([]byte, 64)
	timeGather := func(algo collective.Algo) (time.Duration, error) {
		return gg.timeOp(2, cfg.Reps, cfg.Attempts, func(c *collective.Comm) error {
			_, err := c.GatherWith(algo, 0, part)
			return err
		})
	}
	auto, err := timeGather(collective.Auto)
	if err != nil {
		return nil, fmt.Errorf("harness: guideline gather auto: %w", err)
	}
	tree, err := timeGather(collective.Binomial)
	if err != nil {
		return nil, fmt.Errorf("harness: guideline gather tree: %w", err)
	}
	linear, err := timeGather(collective.Linear)
	if err != nil {
		return nil, fmt.Errorf("harness: guideline gather linear: %w", err)
	}
	add("gather-auto<=forced",
		fmt.Sprintf("%d ranks, %d B parts; linear %v, tree %v", cfg.GatherRanks, len(part), linear, tree),
		auto, min(linear, tree), cfg.Slack)

	return rep, nil
}

// checkIdentical runs every algorithm pair that must be interchangeable and
// compares results bitwise across algorithms and ranks: rd vs ring AllReduce,
// segmented vs whole-payload Bcast, tree vs linear Gather.
func checkIdentical(g *collGroup, vecLen int) (bool, error) {
	ranks := len(g.comms)
	ok := true

	// AllReduce: one bitwise answer from both algorithms on every rank.
	var ref []byte
	for _, algo := range []collective.Algo{collective.RecursiveDoubling, collective.Ring} {
		algo := algo
		outs := make([][]byte, ranks)
		if err := g.run(func(c *collective.Comm) error {
			got, err := c.AllReduceWith(algo, exactContrib(c.Rank(), vecLen), collective.Sum)
			if err != nil {
				return err
			}
			outs[c.Rank()] = wire.AppendFloat64s(nil, got)
			return nil
		}); err != nil {
			return false, fmt.Errorf("harness: identical allreduce %v: %w", algo, err)
		}
		if ref == nil {
			ref = outs[0]
		}
		for r := 0; r < ranks; r++ {
			if !bytes.Equal(outs[r], ref) {
				ok = false
			}
		}
	}

	// Bcast: segmented delivery must reassemble the root's exact bytes.
	payload := make([]byte, 100_003)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for _, algo := range []collective.Algo{collective.Binomial, collective.BinomialSeg} {
		algo := algo
		if err := g.run(func(c *collective.Comm) error {
			var in []byte
			if c.Rank() == 0 {
				in = payload
			}
			got, err := c.BcastWith(algo, 0, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("bcast %v: rank %d got %d bytes, want %d", algo, c.Rank(), len(got), len(payload))
			}
			return nil
		}); err != nil {
			return false, err
		}
	}

	// Gather: the tree must deliver exactly what the linear loop delivers.
	byAlgo := map[collective.Algo][][]byte{}
	for _, algo := range []collective.Algo{collective.Linear, collective.Binomial} {
		algo := algo
		var got [][]byte
		if err := g.run(func(c *collective.Comm) error {
			part := wire.AppendFloat64s(nil, exactContrib(c.Rank(), 7))
			parts, err := c.GatherWith(algo, 0, part)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = parts
			}
			return nil
		}); err != nil {
			return false, fmt.Errorf("harness: identical gather %v: %w", algo, err)
		}
		byAlgo[algo] = got
	}
	lin, tree := byAlgo[collective.Linear], byAlgo[collective.Binomial]
	if len(lin) != len(tree) {
		ok = false
	} else {
		for r := range lin {
			if !bytes.Equal(lin[r], tree[r]) {
				ok = false
			}
		}
	}
	return ok, nil
}
