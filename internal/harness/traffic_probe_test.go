package harness

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/transport"
)

type countingNet struct {
	transport.Network
	mu    sync.Mutex
	kinds map[transport.Kind]int
	pairs map[string]int
}

type countingEp struct {
	transport.Endpoint
	n   *countingNet
	src transport.Addr
}

func (n *countingNet) Register(a transport.Addr) (transport.Endpoint, error) {
	ep, err := n.Network.Register(a)
	if err != nil {
		return nil, err
	}
	return &countingEp{Endpoint: ep, n: n, src: a}, nil
}

func (e *countingEp) Send(m transport.Message) error {
	e.n.mu.Lock()
	e.n.kinds[m.Kind]++
	e.n.pairs[fmt.Sprintf("%v->%v %v", e.src, m.Dst, m.Kind)]++
	e.n.mu.Unlock()
	return e.Endpoint.Send(m)
}

func TestTrafficBreakdown(t *testing.T) {
	cn := &countingNet{
		Network: transport.NewMemNetwork(),
		kinds:   map[transport.Kind]int{},
		pairs:   map[string]int{},
	}
	figure4TestNetwork = cn
	defer func() { figure4TestNetwork = nil }()
	cfg := DefaultFramingConfig()
	cfg.GridN = 16
	cfg.Exports = 200
	if _, err := runFigure4Once(cfg); err != nil {
		t.Fatal(err)
	}
	cn.mu.Lock()
	defer cn.mu.Unlock()
	total := 0
	for k, c := range cn.kinds {
		t.Logf("kind %-12v %d", k, c)
		total += c
	}
	t.Logf("total %d", total)
	type kv struct {
		k string
		v int
	}
	var ps []kv
	for k, v := range cn.pairs {
		ps = append(ps, kv{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v > ps[j].v })
	for i, p := range ps {
		if i > 45 {
			break
		}
		t.Logf("pair %-40s %d", p.k, p.v)
	}
	t.Logf("distinct pairs: %d", len(ps))
}
