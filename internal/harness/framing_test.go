package harness

import "testing"

// TestFramingComparison is the PR's framing acceptance gate: the coupled
// run must send at least 3x fewer transport frames with coalescing enabled,
// and the coalescing must be invisible to the coupling — identical MATCH
// count and byte-identical imported data (equal checksums).
func TestFramingComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("framing comparison runs two full couplings")
	}
	cfg := DefaultFramingConfig()
	cfg.GridN = 16
	cfg.Exports = 200
	fc, err := RunFramingComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("framing: %s", fc)
	t.Logf("baseline frames: %+v", fc.Baseline.Frames)
	t.Logf("coalesced frames: %+v", fc.Coalesced.Frames)

	if fc.Baseline.Frames.Batches != 0 {
		t.Errorf("baseline run built %d batches; the Disabled layer must only count", fc.Baseline.Frames.Batches)
	}
	if fc.Baseline.Frames.Frames != fc.Baseline.Frames.Messages {
		t.Errorf("baseline frames %d != messages %d (disabled layer must be one frame per message)",
			fc.Baseline.Frames.Frames, fc.Baseline.Frames.Messages)
	}
	if fc.Coalesced.Frames.Messages != fc.Baseline.Frames.Messages {
		// The two runs execute the same protocol; a large divergence would
		// mean coalescing changed the coupling's behavior, not just its
		// framing. Timing-dependent messages (buddy-help, pending responses)
		// allow a little slack.
		lo, hi := fc.Baseline.Frames.Messages*9/10, fc.Baseline.Frames.Messages*11/10
		if fc.Coalesced.Frames.Messages < lo || fc.Coalesced.Frames.Messages > hi {
			t.Errorf("coalesced run sent %d messages vs baseline %d — protocol diverged",
				fc.Coalesced.Frames.Messages, fc.Baseline.Frames.Messages)
		}
	}
	if red := fc.FrameReduction(); red < 3 {
		t.Errorf("frame reduction %.2fx (frames %d -> %d), want >= 3x",
			red, fc.Baseline.Frames.Frames, fc.Coalesced.Frames.Frames)
	}

	requests := cfg.Exports / cfg.MatchEvery
	if fc.Baseline.Matched != requests {
		t.Errorf("baseline matched %d of %d requests", fc.Baseline.Matched, requests)
	}
	if fc.Baseline.Matched != fc.Coalesced.Matched {
		t.Errorf("matched diverged: baseline %d, coalesced %d", fc.Baseline.Matched, fc.Coalesced.Matched)
	}
	if fc.Baseline.ImportChecksum != fc.Coalesced.ImportChecksum {
		t.Errorf("import checksum diverged: baseline %g, coalesced %g — coalescing changed the data",
			fc.Baseline.ImportChecksum, fc.Coalesced.ImportChecksum)
	}
	if fc.Baseline.ImportChecksum == 0 {
		t.Error("import checksum is zero — the runs imported nothing")
	}
	if !fc.Identical() {
		t.Error("Identical() = false")
	}
}
