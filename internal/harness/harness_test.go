package harness

import (
	"strings"
	"testing"
	"time"
)

// tinyFigure4 is a CI-sized configuration: small grid, short run, with the
// same speed relationships as the paper's setup.
func tinyFigure4(importerProcs int, buddy bool) Figure4Config {
	return Figure4Config{
		Name:          "tiny",
		GridN:         32,
		ExporterProcs: 4,
		ImporterProcs: importerProcs,
		Exports:       201,
		MatchEvery:    20,
		Tolerance:     2.5,
		BuddyHelp:     buddy,
		FastWork:      200 * time.Microsecond,
		SlowWork:      time.Millisecond,
		ImporterWork:  4 * time.Millisecond, // 2ms per proc << the 20ms cycle of p_s
		Runs:          1,
	}
}

func TestFigure4ConfigValidation(t *testing.T) {
	bad := tinyFigure4(2, true)
	bad.ExporterProcs = 3
	if _, err := RunFigure4(bad); err == nil {
		t.Error("odd exporter procs accepted")
	}
	bad = tinyFigure4(2, true)
	bad.Exports = 5
	if _, err := RunFigure4(bad); err == nil {
		t.Error("exports < matchEvery accepted")
	}
	bad = tinyFigure4(2, true)
	bad.Runs = 0
	if _, err := RunFigure4(bad); err == nil {
		t.Error("zero runs accepted")
	}
	bad = tinyFigure4(64, true)
	if _, err := RunFigure4(bad); err == nil {
		t.Error("more importer procs than rows accepted")
	}
}

// TestFigure4FastImporter: with a fast importer and buddy-help, p_s reaches
// the optimal state — its tail export times collapse to near zero and only
// matched objects are copied in the steady state.
func TestFigure4FastImporter(t *testing.T) {
	res, err := RunFigure4(tinyFigure4(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != res.Cfg.Exports/res.Cfg.MatchEvery {
		t.Errorf("matched %d of %d requests", res.Matched, res.Cfg.Exports/res.Cfg.MatchEvery)
	}
	s := res.ExportTimes
	if s.Len() != res.Cfg.Exports {
		t.Fatalf("series length %d, want %d", s.Len(), res.Cfg.Exports)
	}
	// The deterministic signal of the optimal state: after the startup
	// transient only matched objects are copied, so memcpys stay far below
	// the export count and most exports are skipped. (Wall-clock comparisons
	// are too noisy under -race on small machines; the copy/skip counts are
	// exact.)
	st := res.SlowStats
	if st.Copies > res.Cfg.Exports/4 {
		t.Errorf("%d of %d exports copied; optimal state not reached", st.Copies, res.Cfg.Exports)
	}
	if st.Skips < res.Cfg.Exports/2 {
		t.Errorf("only %d of %d exports skipped", st.Skips, res.Cfg.Exports)
	}
	if st.Sends != res.Matched {
		t.Errorf("sends %d, matched %d", st.Sends, res.Matched)
	}
}

// TestFigure4SlowImporter: with a slow importer (the paper's U=4 case) every
// export is buffered and the series stays flat.
func TestFigure4SlowImporter(t *testing.T) {
	cfg := tinyFigure4(2, true)
	cfg.Exports = 101
	cfg.ImporterWork = 120 * time.Millisecond // 60ms per proc >> p_s's ~21ms cycle
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.SlowStats
	// The very first request (issued before U's first compute phase) may
	// enable skips inside its own region; every later export must be
	// buffered because requests trail far behind.
	if st.Skips > cfg.MatchEvery {
		t.Errorf("slow importer but %d skips (should buffer nearly everything)", st.Skips)
	}
	if st.Copies < cfg.Exports-cfg.MatchEvery {
		t.Errorf("copies %d, want >= %d", st.Copies, cfg.Exports-cfg.MatchEvery)
	}
}

// TestFigure4BuddyAblation: buddy-help reduces p_s's copies and T_ub while
// transferring the same matches.
func TestFigure4BuddyAblation(t *testing.T) {
	res, err := RunTub(tinyFigure4(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.With.Matched != res.Without.Matched {
		t.Errorf("matched differ: %d vs %d", res.With.Matched, res.Without.Matched)
	}
	if res.CopiesSaved() <= 0 {
		t.Errorf("buddy-help saved %d copies", res.CopiesSaved())
	}
	if res.With.SlowStats.UnnecessaryCopies > res.Without.SlowStats.UnnecessaryCopies {
		t.Errorf("buddy-help increased unnecessary copies: %d vs %d",
			res.With.SlowStats.UnnecessaryCopies, res.Without.SlowStats.UnnecessaryCopies)
	}
	if res.With.SlowStats.Sends != res.Without.SlowStats.Sends {
		t.Errorf("sends differ: %d vs %d", res.With.SlowStats.Sends, res.Without.SlowStats.Sends)
	}
}

// TestFigure4OptimalStateTi: in the steady state with buddy-help, the
// per-request unnecessary buffering time T_i drops to zero (Figure 6).
func TestFigure4OptimalStateTi(t *testing.T) {
	res, err := RunFigure4(tinyFigure4(4, true))
	if err != nil {
		t.Fatal(err)
	}
	per := res.SlowStats.PerRequest
	if len(per) == 0 {
		t.Fatal("no per-request stats")
	}
	// The last few regions must be copy-free for p_s.
	tail := per[len(per)-3:]
	for i, pr := range tail {
		if pr.UnnecessaryCopies != 0 {
			t.Errorf("tail region %d: %d unnecessary copies (T_i > 0 in optimal state)",
				i, pr.UnnecessaryCopies)
		}
	}
}

// TestOptimalStateOnsetSweep: more importer processes -> the optimal state
// is reached no later (the Figure 4(c) vs 4(d) comparison).
func TestOptimalStateOnsetSweep(t *testing.T) {
	base := tinyFigure4(2, true)
	base.Exports = 161
	points, err := RunOptimalStateOnset(base, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %v", points)
	}
	for _, pt := range points {
		if pt.MeanExport <= 0 {
			t.Errorf("U=%d: zero mean export time", pt.ImporterProcs)
		}
	}
}

func TestScenarioFigure5Harness(t *testing.T) {
	sc, err := ScenarioFigure5()
	if err != nil {
		t.Fatal(err)
	}
	text := sc.Log.Format()
	for _, want := range []string{
		"export D@14.6, call memcpy.",
		"receive request for D@20.",
		"reply {D@20, PENDING, D@14.6}.",
		"remove D@1.6, ..., D@14.6.",
		"receive buddy-help {D@20, MATCH, D@19.6}.",
		"export D@15.6, skip memcpy.",
		"export D@18.6, skip memcpy.",
		"export D@19.6, call memcpy.",
		"send D@19.6 out.",
		"export D@20.6, call memcpy.",
		"receive request for D@40.",
		"remove D@19.6, ..., D@31.6.",
		"receive buddy-help {D@40, MATCH, D@39.6}.",
		"export D@38.6, skip memcpy.",
		"send D@39.6 out.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("figure 5 trace missing %q\n%s", want, text)
		}
	}
	// 4 skips in the first round, 7 in the second: T_i non-increasing.
	if sc.Stats.Sends != 2 {
		t.Errorf("sends %d", sc.Stats.Sends)
	}
}

func TestScenarioFigure7vs8(t *testing.T) {
	with, err := ScenarioFigure7()
	if err != nil {
		t.Fatal(err)
	}
	without, err := ScenarioFigure8()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7 (buddy-help): exports 4.6-8.6 skipped; only 1.6-3.6 + the
	// match 9.6 + 10.6 copied.
	if with.Stats.Copies != 5 || with.Stats.Skips != 5 {
		t.Errorf("figure 7 copies/skips = %d/%d, want 5/5", with.Stats.Copies, with.Stats.Skips)
	}
	// Figure 8 (no buddy-help): only 4.6 skipped; every candidate copied.
	if without.Stats.Skips != 1 {
		t.Errorf("figure 8 skips = %d, want 1", without.Stats.Skips)
	}
	if without.Stats.Copies <= with.Stats.Copies {
		t.Errorf("figure 8 should copy more: %d vs %d", without.Stats.Copies, with.Stats.Copies)
	}
	// Both transfer exactly the match D@9.6.
	if with.Stats.Sends != 1 || without.Stats.Sends != 1 {
		t.Errorf("sends %d/%d", with.Stats.Sends, without.Stats.Sends)
	}
	if !strings.Contains(with.Log.Format(), "export D@5.6, skip memcpy.") {
		t.Error("figure 7 lacks the buddy-enabled skip")
	}
	if !strings.Contains(without.Log.Format(), "export D@5.6, call memcpy.") {
		t.Error("figure 8 lacks the candidate memcpy")
	}
}

func TestRunScenarioDispatch(t *testing.T) {
	for _, fig := range []string{"5", "7", "8"} {
		sc, err := RunScenario(fig)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		if sc.Figure != fig || sc.Log.Len() == 0 {
			t.Errorf("figure %s scenario empty", fig)
		}
	}
	if _, err := RunScenario("6"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestWork(t *testing.T) {
	start := time.Now()
	work(2 * time.Millisecond)
	if time.Since(start) < 2*time.Millisecond {
		t.Error("work returned early")
	}
	work(0) // must not hang
}
