package harness

import (
	"testing"
	"time"
)

// TestRunFT runs the fault-tolerance benchmark at a small shape and checks
// the acceptance properties behind the numbers: every pipeline stage
// completes, the survivors agree on exactly the killed rank (and on both
// ranks when one dies mid-agreement), revocation unblocks the group well
// before a pile of detection timeouts, and the shrunk steady state allocates
// nothing per operation.
func TestRunFT(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark scenario")
	}
	cfg := FTConfig{Ranks: 5, VecLen: 256, Timeout: 500 * time.Millisecond, Reps: 8, Attempts: 4}
	rep, err := RunFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)

	if rep.DetectFirstNS <= 0 || rep.TotalNS <= 0 {
		t.Fatalf("empty pipeline timings: %+v", rep)
	}
	// All survivors must unblock in bounded time: the revoke flood spares
	// them serial detection timeouts, so even generously the whole pipeline
	// fits in a few timeouts.
	if got, lim := time.Duration(rep.TotalNS), 4*cfg.Timeout; got > lim {
		t.Fatalf("end-to-end recovery took %v, want < %v", got, lim)
	}
	if !rep.AgreeKillConverged {
		t.Fatalf("agreement did not converge under a mid-agreement kill: %+v", rep)
	}
	if len(rep.AgreeKillFailed) != 2 {
		t.Fatalf("agreement under second kill decided %v, want both dead ranks", rep.AgreeKillFailed)
	}
	if !raceDetectorOn() && rep.SteadyAllocsPerOp > 0.5 {
		t.Fatalf("shrunk steady state allocates %.2f per op, want 0", rep.SteadyAllocsPerOp)
	}
}
