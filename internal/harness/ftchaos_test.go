package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// sumContrib is the exact element-wise sum of exactContrib over the given
// ranks — the unique correct AllReduce(Sum) answer for that group.
func sumContrib(ranks []int, n int) []float64 {
	sum := make([]float64, n)
	for _, r := range ranks {
		for i, v := range exactContrib(r, n) {
			sum[i] += v
		}
	}
	return sum
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosKillRank is the kill-a-rank entry of the chaos matrix: a
// collective group over a delay-injecting fault network loses one rank mid
// collective. The fault layer swallows send errors (deliveries are
// asynchronous), so the survivors get no hard unreachable-address evidence at
// all — detection and agreement must work purely by receive deadlines and
// non-participation. Every seed must recover: typed errors only (no hangs),
// identical agreed sets, and exact survivor-subset results on the shrunk
// group, with stale delayed frames from before the crash dropped by the epoch
// check rather than corrupting the successor.
func TestChaosKillRank(t *testing.T) {
	const (
		ranks  = 5
		dead   = 2
		vecLen = 128
		// The detector is timeout-based, so under partial synchrony a live
		// rank starved by the scheduler can be agreed out (ErrExcluded).
		// The deadline must dwarf any plausible stall of a loaded CI
		// machine running the full suite alongside this test.
		timeout = 2500 * time.Millisecond
	)
	full := identityRanksHarness(ranks)
	survivors := make([]int, 0, ranks-1)
	for r := 0; r < ranks; r++ {
		if r != dead {
			survivors = append(survivors, r)
		}
	}
	fullSum := sumContrib(full, vecLen)
	survSum := sumContrib(survivors, vecLen)

	for _, seed := range []int64{1, 2, 3, 5, 8} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer testutil.CheckGoroutines(t)()
			faulty := transport.NewFaultNetwork(transport.NewMemNetwork(), transport.FaultConfig{
				Seed:      seed,
				DelayProb: 0.25,
				MaxDelay:  2 * time.Millisecond,
			})
			g, err := newFTGroupNet(faulty, ranks, timeout)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range g.comms {
				// The fault pump holds frames after Send returns, so sent
				// buffers may not be recycled (same contract as the reliable
				// layer's resend retention).
				c.SetBufferReuse(false)
			}
			defer g.close()
			defer func() {
				for _, d := range g.disps {
					d.Close() // stop the fault pumps before the leak check
				}
			}()

			agreed := make([][]int, ranks)
			start := time.Now()
			err = g.run(-1, func(c *collective.Comm) error {
				r := c.Rank()
				for k := 0; k < 2; k++ {
					got, err := c.AllReduceWith(collective.Ring, exactContrib(r, vecLen), collective.Sum)
					if err != nil {
						return fmt.Errorf("rank %d healthy round %d: %w", r, k, err)
					}
					if !equalVec(got, fullSum) {
						return fmt.Errorf("rank %d healthy round %d: wrong sum", r, k)
					}
				}
				if r == dead {
					// Crash strictly between collectives: the fault pump may
					// still hold this rank's final-round frames (delayed up to
					// MaxDelay after Send), and closing the endpoint destroys
					// them. Without the drain the "crash" would retroactively
					// reach into the healthy round the survivors are still
					// finishing.
					time.Sleep(20 * time.Millisecond)
					return g.disps[r].Close()
				}
				if _, err := c.AllReduceWith(collective.Ring, exactContrib(r, vecLen), collective.Sum); err == nil {
					return fmt.Errorf("rank %d: collective succeeded with rank %d dead", r, dead)
				} else if !isFault(err) {
					return fmt.Errorf("rank %d: untyped failure %w", r, err)
				}
				c.Revoke()
				failed, err := c.AgreeFailures()
				if err != nil {
					return fmt.Errorf("rank %d agree: %w", r, err)
				}
				agreed[r] = failed
				nc, err := c.Shrink(failed)
				if err != nil {
					return fmt.Errorf("rank %d shrink: %w", r, err)
				}
				got, err := nc.AllReduceWith(collective.Ring, exactContrib(r, vecLen), collective.Sum)
				if err != nil {
					return fmt.Errorf("rank %d shrunk allreduce: %w", r, err)
				}
				if !equalVec(got, survSum) {
					return fmt.Errorf("rank %d shrunk allreduce: wrong survivor-subset sum", r)
				}
				return nc.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			// No survivor may burn more than a few deadlines end to end.
			if el := time.Since(start); el > 6*timeout {
				t.Fatalf("recovery took %v, want well under %v", el, 6*timeout)
			}
			for _, r := range survivors {
				if fmt.Sprint(agreed[r]) != fmt.Sprint([]int{dead}) {
					t.Fatalf("rank %d agreed %v, want [%d]", r, agreed[r], dead)
				}
			}
		})
	}
}

// identityRanksHarness is 0..n-1 (the pre-failure base ranks).
func identityRanksHarness(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}
