package harness

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/collective"
	"repro/internal/obsv/diag"
)

// This file holds the coupling-aware diagnosis benchmark: the acceptance
// scenario for per-collective critical-path attribution (one delayed rank
// must be fingered as the straggler for >= 95% of operations) and the
// overhead measurement of the attribution trailer against the PR 8 zero-alloc
// baseline. Shared by couplebench's -diag mode and the harness tests.

// DiagConfig tunes RunDiag. Zero values pick the acceptance scenario: 8
// ranks, 1 KiB float64 vectors, 40 operations per algorithm, rank 5 sleeping
// 1ms before every operation.
type DiagConfig struct {
	Ranks    int
	VecLen   int
	Ops      int
	SlowRank int
	Delay    time.Duration
	// Reps/Attempts shape the overhead timing (reps per pass, best of
	// attempts passes).
	Reps     int
	Attempts int
	// FlightOut, when set, writes the attribution run's flight ring to this
	// file — the sample dump CI archives and coupleflight decodes.
	FlightOut string
}

func (c DiagConfig) withDefaults() DiagConfig {
	if c.Ranks == 0 {
		c.Ranks = 8
	}
	if c.VecLen == 0 {
		c.VecLen = 1024
	}
	if c.Ops == 0 {
		c.Ops = 40
	}
	if c.SlowRank == 0 {
		c.SlowRank = c.Ranks - 3
	}
	if c.Delay == 0 {
		c.Delay = time.Millisecond
	}
	if c.Reps == 0 {
		c.Reps = 8
	}
	if c.Attempts == 0 {
		c.Attempts = 192
	}
	return c
}

// DiagReport is RunDiag's result (and part of the -diag JSON report).
type DiagReport struct {
	Ranks     int   `json:"ranks"`
	VectorLen int   `json:"vector_len"`
	Ops       int   `json:"ops"`
	SlowRank  int   `json:"slow_rank"`
	DelayNS   int64 `json:"delay_ns"`

	// Attribution accuracy: of the attributed operations, the share whose
	// per-op consensus blamed the slow rank (acceptance: >= 0.95), plus the
	// board's top straggler.
	AttributedOps uint64  `json:"attributed_ops"`
	Fraction      float64 `json:"slow_rank_fraction"`
	TopRank       int     `json:"top_rank"`
	TopWaitNS     int64   `json:"top_wait_ns"`
	FlightEvents  int     `json:"flight_events"`

	// Overhead: steady-state AllReduce ns/op with the attribution trailer
	// off vs on, same group shape, no injected delay.
	BaseNsPerOp int64   `json:"base_ns_per_op"`
	DiagNsPerOp int64   `json:"diag_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

func (r *DiagReport) String() string {
	return fmt.Sprintf("%d ranks x %d B, %d ops, rank %d +%v: fingered %.1f%% (top=rank %d, wait=%v); overhead %v -> %v/op (%+.1f%%)",
		r.Ranks, 8*r.VectorLen, r.Ops, r.SlowRank, time.Duration(r.DelayNS),
		100*r.Fraction, r.TopRank, time.Duration(r.TopWaitNS),
		time.Duration(r.BaseNsPerOp), time.Duration(r.DiagNsPerOp), r.OverheadPct)
}

// RunDiag measures critical-path attribution end to end on an in-memory
// group. Phase one runs cfg.Ops AllReduces per algorithm with diagnosis on
// and cfg.SlowRank sleeping cfg.Delay before each, then reads the straggler
// board; phase two times the steady-state AllReduce with the trailer off and
// on to price the diagnosis hot path.
func RunDiag(cfg DiagConfig) (*DiagReport, error) {
	cfg = cfg.withDefaults()
	report := &DiagReport{
		Ranks: cfg.Ranks, VectorLen: cfg.VecLen, Ops: 2 * cfg.Ops,
		SlowRank: cfg.SlowRank, DelayNS: cfg.Delay.Nanoseconds(),
	}

	// Phase 1: attribution accuracy under an injected straggler.
	g, err := newCollGroup(cfg.Ranks, true)
	if err != nil {
		return nil, err
	}
	board := diag.NewBoard("bench", cfg.Ranks)
	flight := diag.NewRecorder("bench", 0, nil)
	for _, c := range g.comms {
		c.SetDiag(board, flight)
	}
	for _, algo := range []collective.Algo{collective.RecursiveDoubling, collective.Ring} {
		algo := algo
		vecs := make([][]float64, cfg.Ranks)
		for r := range vecs {
			vecs[r] = exactContrib(r, cfg.VecLen)
		}
		for i := 0; i < cfg.Ops; i++ {
			if err := g.run(func(c *collective.Comm) error {
				if c.Rank() == cfg.SlowRank {
					time.Sleep(cfg.Delay)
				}
				return c.AllReduceInPlaceWith(algo, vecs[c.Rank()], collective.Max)
			}); err != nil {
				g.close()
				return nil, err
			}
		}
	}
	s := board.Snapshot()
	report.AttributedOps = s.Attributed()
	report.Fraction = s.Fraction(cfg.SlowRank)
	if top := s.Top(1); len(top) > 0 {
		report.TopRank, report.TopWaitNS = top[0].Rank, top[0].WaitNS
	} else {
		report.TopRank = -1
	}
	report.FlightEvents = flight.Len()
	if cfg.FlightOut != "" {
		f, err := os.Create(cfg.FlightOut)
		if err != nil {
			g.close()
			return nil, err
		}
		if err := flight.Dump(f, "diag benchmark sample"); err != nil {
			f.Close()
			g.close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			g.close()
			return nil, err
		}
	}
	g.close()

	// Phase 2: trailer overhead on the steady-state hot path, no straggler.
	// Every attempt builds a FRESH pair of groups (one plain, one with the
	// trailer), times both back to back, and contributes one paired ratio;
	// the overhead estimate is the median ratio. Fresh pairs matter: a
	// long-lived group keeps its goroutine placement for the whole run, a
	// persistent few-percent bias no repetition averages away — re-rolling
	// the placement per attempt turns that bias into noise the median
	// strips. Creation and measurement order alternate so second-pass
	// effects (frequency scaling, timer coalescing) cancel too.
	vecs := make([][]float64, cfg.Ranks)
	for r := range vecs {
		vecs[r] = exactContrib(r, cfg.VecLen)
	}
	op := func(c *collective.Comm) error {
		return c.AllReduceInPlaceWith(collective.RecursiveDoubling, vecs[c.Rank()], collective.Max)
	}
	b := diag.NewBoard("bench", cfg.Ranks)
	newPair := func(diagFirst bool) (gOff, gOn *collGroup, err error) {
		mk := func(on bool) (*collGroup, error) {
			g, err := newCollGroup(cfg.Ranks, true)
			if err != nil {
				return nil, err
			}
			if on {
				for _, c := range g.comms {
					c.SetDiag(b, nil)
				}
			}
			return g, nil
		}
		if diagFirst {
			gOn, err = mk(true)
			if err == nil {
				gOff, err = mk(false)
			}
		} else {
			gOff, err = mk(false)
			if err == nil {
				gOn, err = mk(true)
			}
		}
		if err != nil {
			if gOff != nil {
				gOff.close()
			}
			if gOn != nil {
				gOn.close()
			}
			return nil, nil, err
		}
		return gOff, gOn, nil
	}
	var base, withDiag time.Duration
	ratios := make([]float64, 0, cfg.Attempts)
	for a := 0; a < cfg.Attempts; a++ {
		gOff, gOn, err := newPair(a%2 == 1)
		if err != nil {
			return nil, err
		}
		// ABBA within the attempt cancels linear load drift: the ratio uses
		// the sums, so a machine that speeds up or slows down monotonically
		// over the four passes biases neither side.
		measure := func(first, second *collGroup) (t1, t2, t3, t4 time.Duration, err error) {
			if t1, err = first.timeOp(4, cfg.Reps, 1, op); err != nil {
				return
			}
			if t2, err = second.timeOp(4, cfg.Reps, 1, op); err != nil {
				return
			}
			if t3, err = second.timeOp(0, cfg.Reps, 1, op); err != nil {
				return
			}
			t4, err = first.timeOp(0, cfg.Reps, 1, op)
			return
		}
		var tb, td time.Duration
		if a%2 == 0 {
			b1, d1, d2, b2, merr := measure(gOff, gOn)
			err, tb, td = merr, b1+b2, d1+d2
		} else {
			d1, b1, b2, d2, merr := measure(gOn, gOff)
			err, tb, td = merr, b1+b2, d1+d2
		}
		gOff.close()
		gOn.close()
		if err != nil {
			return nil, err
		}
		tb /= 2
		td /= 2
		if a == 0 || tb < base {
			base = tb
		}
		if a == 0 || td < withDiag {
			withDiag = td
		}
		if tb > 0 {
			ratios = append(ratios, float64(td)/float64(tb))
		}
	}
	report.BaseNsPerOp = base.Nanoseconds() / int64(cfg.Reps)
	report.DiagNsPerOp = withDiag.Nanoseconds() / int64(cfg.Reps)
	// Overhead is the median of the paired per-attempt ratios, not the ratio
	// of the minimums: each pair ran back to back under the same transient
	// load, so its ratio isolates the trailer cost even when the absolute
	// pass times swing by tens of percent between attempts.
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		report.OverheadPct = 100 * (ratios[len(ratios)/2] - 1)
	}
	return report, nil
}
