package harness

import (
	"fmt"
	"time"

	"repro/internal/buffer"
	"repro/internal/match"
	"repro/internal/obsv"
	"repro/internal/trace"
)

// Scenario replays one of the paper's line-by-line figures against the same
// per-process export pipeline (buffer.Manager) the framework runs in
// production, returning the resulting trace and buffer statistics.
type Scenario struct {
	Figure string
	Log    *trace.Log
	Stats  buffer.Stats
}

// scenarioPayload is the stand-in data object for scenario traces.
func scenarioPayload(ts float64) []float64 { return []float64{ts, ts, ts, ts} }

// ScenarioFigure5 reproduces Figure 5: REGL, tolerance 2.5, exports at
// k+0.6, requests at 20 and 40, buddy-help messages carrying the fastest
// process's answers (MATCH D@19.6, MATCH D@39.6).
func ScenarioFigure5() (*Scenario, error) {
	log := trace.NewLog()
	m, err := buffer.NewManager(buffer.Config{Policy: match.REGL, Tol: 2.5, Log: log})
	if err != nil {
		return nil, err
	}
	export := func(ts float64) error {
		_, err := m.Offer(ts, scenarioPayload(ts))
		return err
	}
	// Lines 1-4: exports 1.6 .. 14.6.
	for ts := 1.6; ts < 14.7; ts++ {
		if err := export(ts); err != nil {
			return nil, err
		}
	}
	// Lines 5-7: request D@20 (PENDING, remove everything below 17.5).
	r1, err := m.OnRequest(20)
	if err != nil {
		return nil, err
	}
	if r1.Decision.Result != match.Pending {
		return nil, fmt.Errorf("harness: figure 5 request 1 resolved %v", r1.Decision)
	}
	// Line 8: buddy-help {D@20, MATCH, D@19.6}.
	if _, err := m.OnFinal(r1.ReqIndex, match.Match, 19.6); err != nil {
		return nil, err
	}
	// Lines 10-20: exports 15.6 .. 31.6 (skips through 18.6, memcpy+send at
	// 19.6, memcpys beyond the region).
	for ts := 15.6; ts < 31.7; ts++ {
		if err := export(ts); err != nil {
			return nil, err
		}
	}
	// Lines 21-23: request D@40.
	r2, err := m.OnRequest(40)
	if err != nil {
		return nil, err
	}
	// Line 24: buddy-help {D@40, MATCH, D@39.6}.
	if _, err := m.OnFinal(r2.ReqIndex, match.Match, 39.6); err != nil {
		return nil, err
	}
	// Lines 26-33: exports 32.6 .. 40.6.
	for ts := 32.6; ts < 40.7; ts++ {
		if err := export(ts); err != nil {
			return nil, err
		}
	}
	return &Scenario{Figure: "5", Log: log, Stats: m.Stats()}, nil
}

// ScenarioFigure7 reproduces Figure 7: REGL, tolerance 5.0, request at 10.0,
// with buddy-help.
func ScenarioFigure7() (*Scenario, error) {
	log := trace.NewLog()
	m, err := buffer.NewManager(buffer.Config{Policy: match.REGL, Tol: 5, Log: log})
	if err != nil {
		return nil, err
	}
	for ts := 1.6; ts < 3.7; ts++ {
		if _, err := m.Offer(ts, scenarioPayload(ts)); err != nil {
			return nil, err
		}
	}
	r, err := m.OnRequest(10)
	if err != nil {
		return nil, err
	}
	if _, err := m.OnFinal(r.ReqIndex, match.Match, 9.6); err != nil {
		return nil, err
	}
	for ts := 4.6; ts < 10.7; ts++ {
		if _, err := m.Offer(ts, scenarioPayload(ts)); err != nil {
			return nil, err
		}
	}
	return &Scenario{Figure: "7", Log: log, Stats: m.Stats()}, nil
}

// ScenarioFigure8 reproduces Figure 8: the same configuration as Figure 7
// but WITHOUT buddy-help — the process must keep buffering each new best
// candidate until its own exports pass the acceptable region.
func ScenarioFigure8() (*Scenario, error) {
	log := trace.NewLog()
	m, err := buffer.NewManager(buffer.Config{Policy: match.REGL, Tol: 5, Log: log})
	if err != nil {
		return nil, err
	}
	for ts := 1.6; ts < 3.7; ts++ {
		if _, err := m.Offer(ts, scenarioPayload(ts)); err != nil {
			return nil, err
		}
	}
	if _, err := m.OnRequest(10); err != nil {
		return nil, err
	}
	for ts := 4.6; ts < 11.7; ts++ {
		if _, err := m.Offer(ts, scenarioPayload(ts)); err != nil {
			return nil, err
		}
	}
	return &Scenario{Figure: "8", Log: log, Stats: m.Stats()}, nil
}

// SpanTracer re-renders the scenario's paper-style event log as obsv
// protocol spans: the exporting process's events on one lane, the importer's
// requests on a second synthetic lane, with every event of one request cycle
// sharing a flow ID. The result loads in Perfetto exactly like a live run's
// /trace dump, so the line-by-line figures can be inspected next to real
// traces. Events are spaced one microsecond apart in log order (the log
// carries data timestamps, not wall times).
func (s *Scenario) SpanTracer() *obsv.Tracer {
	t := obsv.NewTracer(1 << 12)
	exp := t.Ring("F", 0)
	imp := t.Ring("U", -1)
	flows := make(map[float64]uint64)
	flowOf := func(req float64) uint64 {
		id, ok := flows[req]
		if !ok {
			id = t.NewSpanID()
			flows[req] = id
		}
		return id
	}
	step := int64(time.Microsecond)
	for i, e := range s.Log.Events() {
		ts := int64(i+1) * 2 * step
		sp := obsv.Span{TS: ts, Dur: step, Detail: e.String()}
		switch e.Op {
		case trace.OpExportCopy:
			sp.Name = "export.copy"
		case trace.OpExportSkip:
			sp.Name = "export.skip"
		case trace.OpRemove:
			sp.Name = "remove"
		case trace.OpRequest:
			sp.Name, sp.Flow = "request.recv", flowOf(e.Req)
			// The request originates at the importer: a matching span one
			// step earlier on the U lane gives the flow its cross-process
			// starting point.
			imp.Record(obsv.Span{Name: "request", TS: ts - step, Dur: step, Flow: sp.Flow})
		case trace.OpReply:
			sp.Name, sp.Flow = "reply", flowOf(e.Req)
		case trace.OpBuddyHelp:
			sp.Name, sp.Flow = "buddy", flowOf(e.Req)
		case trace.OpSend:
			sp.Name = "send"
		default:
			sp.Name = "event"
		}
		exp.Record(sp)
	}
	return t
}

// RunScenario dispatches by figure number ("5", "7", "8").
func RunScenario(figure string) (*Scenario, error) {
	switch figure {
	case "5":
		return ScenarioFigure5()
	case "7":
		return ScenarioFigure7()
	case "8":
		return ScenarioFigure8()
	default:
		return nil, fmt.Errorf("harness: no scenario for figure %q (have 5, 7, 8)", figure)
	}
}
