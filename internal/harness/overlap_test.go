package harness

import (
	"testing"
	"time"
)

// TestOverlapComparison runs a shrunken overlap scenario and checks the
// async data plane's two contracts: byte-identical results versus the
// synchronous baseline, and an exporter iteration that is measurably
// cheaper (the strict <= 0.6 ratio is enforced on the checked-in benchmark
// scenario by cmd/couplebench; here the bound is loose so scheduler noise
// on CI cannot flake the suite).
func TestOverlapComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based comparison in -short mode")
	}
	cfg := DefaultOverlap()
	cfg.Exports = 15
	cfg.Compute = 1 * time.Millisecond
	cfg.SendCost = 1 * time.Millisecond
	cmp, err := RunOverlapComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", cmp)
	if !cmp.Identical() {
		t.Errorf("async plane diverged: sync %d matched / checksum %v, async %d / %v",
			cmp.Sync.Matched, cmp.Sync.Checksum, cmp.Async.Matched, cmp.Async.Checksum)
	}
	if cmp.Sync.Matched != cfg.Exports-1 {
		t.Errorf("matched %d requests, want %d", cmp.Sync.Matched, cfg.Exports-1)
	}
	if r := cmp.Ratio(); r >= 0.9 {
		t.Errorf("async/sync iteration ratio %.2f, want < 0.9", r)
	}
	if cmp.Async.Pipeline.Jobs == 0 || cmp.Async.Pipeline.DataSends == 0 {
		t.Errorf("async pipeline counters empty: %+v", cmp.Async.Pipeline)
	}
	if cmp.Sync.DrainNanos > cmp.Async.DrainNanos {
		t.Logf("note: sync drain %v > async drain %v", cmp.Sync.DrainNanos, cmp.Async.DrainNanos)
	}
}
