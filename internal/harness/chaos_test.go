package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestChaos drives the coupled run over a deterministically faulty network
// for a fixed seed matrix: every seed must complete with exact match results
// and bit-correct data, no hangs, and no leaked goroutines. CI runs this
// under -race with -count=3.
func TestChaos(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer testutil.CheckGoroutines(t)()
			cfg := DefaultChaos(seed)
			res, err := RunChaos(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := cfg.Exports / cfg.MatchEvery; res.Matched != want {
				t.Errorf("matched %d of %d requests", res.Matched, want)
			}
			if res.Faults.Dropped == 0 && res.Faults.Delayed == 0 {
				t.Errorf("fault layer injected nothing: %+v", res.Faults)
			}
			t.Logf("seed %d: %d matches in %v over %+v", seed, res.Matched, res.Elapsed, res.Faults)
		})
	}
}

// TestChaosOrderingInvariants races the async export pipeline against
// randomized importer delays and asserts the data plane's ordering
// guarantees at the transport boundary: per-connection responses leave for
// the rep in ReqID order (pendings increasing, decisions increasing, no
// PENDING after its decision) and TransferDone is applied exactly once per
// send (checked inside RunChaos after the FinishRegion drain). The jitter
// shifts every request to an arbitrary point of the exporters' pipelines,
// so resolutions race fresh requests on the queue.
func TestChaosOrderingInvariants(t *testing.T) {
	for _, seed := range []int64{1, 4, 9, 16, 25} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer testutil.CheckGoroutines(t)()
			cfg := DefaultChaos(seed)
			cfg.ImporterJitter = 3 * time.Millisecond
			cfg.CheckOrdering = true
			res, err := RunChaos(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := cfg.Exports / cfg.MatchEvery; res.Matched != want {
				t.Errorf("matched %d of %d requests", res.Matched, want)
			}
		})
	}
}

// TestChaosHeavyLoss cranks the drop rate up: the run gets slower but must
// still complete exactly.
func TestChaosHeavyLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy-loss chaos run in -short mode")
	}
	defer testutil.CheckGoroutines(t)()
	cfg := DefaultChaos(13)
	cfg.Fault.Drop = 0.45
	cfg.Exports = 30
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Dropped == 0 {
		t.Error("no drops at 45% loss")
	}
}
