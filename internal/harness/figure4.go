// Package harness drives the paper's experiments: the Figure-4
// micro-benchmark (per-iteration data-export time of the slowest process of
// the forcing program F, for importer programs U of 4/8/16/32 processes),
// the Figure 5/7/8 scenario traces, and the T_ub ablation of Equations
// (1)-(2).
package harness

import (
	"fmt"
	"time"

	"repro/internal/buffer"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/transport"
)

// Figure4Config parameterizes one Figure-4 run. The defaults returned by
// DefaultFigure4 reproduce the paper's setup scaled to a laptop: program F
// has 4 processes on a 2x2 grid (one of them, p_s, artificially slowed);
// program U has 4/8/16/32 processes; 1001 exports with one of every 20
// matched (REGL, tolerance 2.5).
type Figure4Config struct {
	Name          string
	GridN         int // global array is GridN x GridN
	ExporterProcs int // process grid is 2 x ExporterProcs/2
	ImporterProcs int
	Exports       int
	MatchEvery    int // one request per MatchEvery exports
	Tolerance     float64
	BuddyHelp     bool
	// FastWork/SlowWork simulate the per-export computation of the fast
	// processes p1..p3 and the slow process p_s.
	FastWork, SlowWork time.Duration
	// ImporterWork simulates program U's total per-iteration computation;
	// each U process works for ImporterWork / ImporterProcs, so U speeds up as
	// it gets more processes (the paper keeps the 1024^2 array fixed).
	ImporterWork time.Duration
	// SyncImporter adds a neighbor token exchange to program U's iteration,
	// modeling the internal synchronization a real PDE solver's halo
	// exchange imposes (the paper's U is a coupled stencil code). Ranks may
	// then drift apart by at most one iteration per rank of distance, so
	// the request-issuing rank creeps ahead of the ranks gated by p_s only
	// gradually — reproducing the paper's slow approach to the optimal
	// state in Figure 4(c). Without it, unconstrained ranks run requests
	// ahead immediately and the optimal state arrives almost at once.
	SyncImporter bool
	// NetLatency, when positive, injects that much one-way latency (plus
	// 10% jitter) into every framework message, modeling the paper's
	// Gigabit-Ethernet testbed or a WAN. Buddy-help messages must outrun
	// the slow process's exports to save copies, so latency erodes the
	// optimization's window.
	NetLatency time.Duration
	// Coalesce batches same-destination control messages into shared
	// transport frames (transport.CoalescingNetwork). CountFrames wraps the
	// transport in the layer without batching, purely to count frames — the
	// baseline an enabled run is compared against. Coalesce implies the
	// counting.
	Coalesce    bool
	CountFrames bool
	Runs        int
	Trace       bool
	// Obsv, when non-nil, is the observability layer the run's framework
	// publishes into: metrics, /statusz sections and — when the observer
	// has a Tracer — protocol spans. Pass the same observer to obsv.Serve
	// to watch the run live.
	Obsv *obsv.Observer
}

// DefaultFigure4 returns the scaled paper configuration for an importer with
// n processes. The work constants are chosen so the four paper
// configurations land in the same regimes as Figure 4: U=4 and U=8 slower
// than F (flat export time, everything buffered), U=16 slightly faster than
// p_s (gradual approach to the optimal state), U=32 much faster (optimal
// almost immediately).
func DefaultFigure4(n int) Figure4Config {
	return Figure4Config{
		Name:          fmt.Sprintf("U=%d", n),
		GridN:         256,
		ExporterProcs: 4,
		ImporterProcs: n,
		Exports:       1001,
		MatchEvery:    20,
		Tolerance:     2.5,
		BuddyHelp:     true,
		FastWork:      200 * time.Microsecond,
		SlowWork:      time.Millisecond,
		// p_s produces one request cycle (MatchEvery exports) per
		// MatchEvery*SlowWork = 20ms, plus buffering. 300ms of importer
		// work per cycle puts U=4 (75ms) and U=8 (37.5ms) clearly behind F
		// (everything buffered, flat export times), U=16 (18.75ms) slightly
		// ahead of p_s's 20ms floor (gradual approach to the optimal
		// state), and U=32 (9.4ms) far ahead (optimal almost immediately) —
		// the same four regimes as the paper's Figure 4(a)-(d).
		ImporterWork: 300 * time.Millisecond,
		Runs:         1,
	}
}

// Figure4Result is one configuration's measurement.
type Figure4Result struct {
	Cfg Figure4Config
	// ExportTimes is the per-iteration duration of p_s's Export call,
	// averaged over Runs (the quantity Figure 4 plots).
	ExportTimes *metrics.Series
	// SlowStats are p_s's buffer statistics from the last run;
	// SlowPipeline its export-connection data-plane counters (queue depth,
	// stall time) from the same run.
	SlowStats    buffer.Stats
	SlowPipeline core.PipelineStats
	// Settle estimates the iteration at which the export-time series reaches
	// its final level (the paper's "iterations to reach the optimal state").
	Settle int
	// Matched counts requests answered MATCH (should be Exports/MatchEvery).
	Matched int
	// ExporterProto/ImporterProto are the programs' control-plane message
	// counts from the last run (the rep-overhead quantification).
	ExporterProto, ImporterProto core.ProtocolStats
	// PeakBufferedBytes is the largest framework buffer p_s held at any
	// export (last run) — the quantity behind the paper's future-work
	// concern about finite buffer space.
	PeakBufferedBytes int64
	// Frames holds the transport frame counters of the last run when the
	// configuration asked for them (Coalesce or CountFrames).
	Frames        transport.FrameStats
	FramesCounted bool
	// ImportChecksum sums every value program U imported (last run, ranks in
	// order). The matched versions and their contents are deterministic for
	// a given configuration, so two runs that match identically — coalesced
	// or not — produce the same checksum.
	ImportChecksum float64
}

// slowRank returns the rank playing p_s (the last exporter process; its
// block is the bottom-right quadrant, so only the importer processes owning
// the last rows wait for it).
func (c Figure4Config) slowRank() int { return c.ExporterProcs - 1 }

// validate rejects configurations the model cannot run.
func (c Figure4Config) validate() error {
	if c.ExporterProcs%2 != 0 || c.ExporterProcs < 2 {
		return fmt.Errorf("harness: exporter procs %d (need an even count for the 2xK grid)", c.ExporterProcs)
	}
	if c.GridN < 4 || c.Exports < c.MatchEvery || c.MatchEvery < 2 {
		return fmt.Errorf("harness: degenerate figure-4 config %+v", c)
	}
	if c.ImporterProcs < 1 || c.ImporterProcs > c.GridN {
		return fmt.Errorf("harness: importer procs %d for grid %d", c.ImporterProcs, c.GridN)
	}
	if c.Runs < 1 {
		return fmt.Errorf("harness: runs %d", c.Runs)
	}
	return nil
}

// work simulates a computation phase of duration d by sleeping. Sleeping —
// rather than busy-waiting — matters on small machines: the goroutine
// "processes" share real cores with the framework's control loops, and a
// busy-wait would starve them (Go preempts non-cooperative goroutines only
// at ~10ms granularity), destroying the timing dynamics the benchmark
// studies. A sleeping process still takes d wall-clock time per iteration,
// which is all the paper's speed relationships depend on.
func work(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// neighborSync exchanges an empty token with the adjacent ranks, the
// synchronization pattern a row-band stencil solver's halo swap induces.
func neighborSync(c interface {
	Rank() int
	Size() int
	Send(to int, tag string, payload []byte) error
	Recv(from int, tag string) ([]byte, error)
}, step int) error {
	tag := fmt.Sprintf("sync:%d", step)
	r, n := c.Rank(), c.Size()
	if r > 0 {
		if err := c.Send(r-1, tag, nil); err != nil {
			return err
		}
	}
	if r < n-1 {
		if err := c.Send(r+1, tag, nil); err != nil {
			return err
		}
	}
	if r > 0 {
		if _, err := c.Recv(r-1, tag); err != nil {
			return err
		}
	}
	if r < n-1 {
		if _, err := c.Recv(r+1, tag); err != nil {
			return err
		}
	}
	return nil
}

// RunFigure4 executes one configuration and returns the averaged series.
func RunFigure4(cfg Figure4Config) (*Figure4Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runs := make([]*metrics.Series, 0, cfg.Runs)
	var last *runOutcome
	for r := 0; r < cfg.Runs; r++ {
		out, err := runFigure4Once(cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, out.exportTimes)
		last = out
	}
	mean := metrics.MeanOf(cfg.Name, runs...)
	return &Figure4Result{
		Cfg:               cfg,
		ExportTimes:       mean,
		SlowStats:         last.slowStats,
		SlowPipeline:      last.slowPipeline,
		Settle:            mean.SettleIteration(cfg.MatchEvery, 1.5),
		Matched:           last.matched,
		ExporterProto:     last.expProto,
		ImporterProto:     last.impProto,
		PeakBufferedBytes: last.peakBuffered,
		Frames:            last.frames,
		FramesCounted:     last.framesCounted,
		ImportChecksum:    last.importChecksum,
	}, nil
}

// figure4TestNetwork, when non-nil, overrides the transport of
// runFigure4Once — a hook for tests that instrument the traffic.
var figure4TestNetwork transport.Network

type runOutcome struct {
	exportTimes    *metrics.Series
	slowStats      buffer.Stats
	slowPipeline   core.PipelineStats
	matched        int
	expProto       core.ProtocolStats
	impProto       core.ProtocolStats
	peakBuffered   int64
	frames         transport.FrameStats
	framesCounted  bool
	importChecksum float64
}

// runFigure4Once builds the F/U coupling and runs the workload.
func runFigure4Once(cfg Figure4Config) (*runOutcome, error) {
	coupling := &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: cfg.ExporterProcs},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: cfg.ImporterProcs},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: cfg.Tolerance,
		}},
	}
	opts := core.Options{
		BuddyHelp: cfg.BuddyHelp,
		Trace:     cfg.Trace,
		Timeout:   5 * time.Minute,
		Obsv:      cfg.Obsv,
	}
	if cfg.NetLatency > 0 {
		opts.Network = transport.NewLatencyNetwork(
			transport.NewMemNetwork(), cfg.NetLatency, cfg.NetLatency/10)
	}
	if figure4TestNetwork != nil {
		opts.Network = figure4TestNetwork
	}
	if cfg.Coalesce || cfg.CountFrames {
		opts.Coalesce = &transport.CoalesceConfig{Disabled: !cfg.Coalesce}
	}
	fw, err := core.New(coupling, opts)
	if err != nil {
		return nil, err
	}
	defer fw.Close()

	expLayout, err := decomp.NewBlock2D(cfg.GridN, cfg.GridN, 2, cfg.ExporterProcs/2)
	if err != nil {
		return nil, err
	}
	impLayout, err := decomp.NewRowBlock(cfg.GridN, cfg.GridN, cfg.ImporterProcs)
	if err != nil {
		return nil, err
	}
	progF, progU := fw.MustProgram("F"), fw.MustProgram("U")
	if err := progF.DefineRegion("f", expLayout); err != nil {
		return nil, err
	}
	if err := progU.DefineRegion("f", impLayout); err != nil {
		return nil, err
	}
	if err := fw.Start(); err != nil {
		return nil, err
	}

	slow := cfg.slowRank()
	series := metrics.NewSeries(cfg.Name)
	var peakBuffered int64
	requests := cfg.Exports / cfg.MatchEvery
	matched := make([]int, cfg.ImporterProcs)
	sums := make([]float64, cfg.ImporterProcs)

	total := cfg.ExporterProcs + cfg.ImporterProcs
	errs := make(chan error, total)

	// Program F: exports f at timestamps k+0.6 (k = 1..Exports); p_s does
	// extra work per iteration.
	for r := 0; r < cfg.ExporterProcs; r++ {
		go func(r int) {
			p := progF.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			data := make([]float64, block.Area())
			for i := range data {
				data[i] = float64(i)
			}
			compute := cfg.FastWork
			if r == slow {
				compute = cfg.SlowWork
			}
			for k := 1; k <= cfg.Exports; k++ {
				// The "computation" part of the iteration. Touch the data so
				// the export genuinely snapshots fresh values.
				data[k%len(data)] = float64(k)
				work(compute)
				ts := float64(k) + 0.6
				start := time.Now()
				if err := p.Export("f", ts, data); err != nil {
					errs <- err
					return
				}
				if r == slow {
					series.Append(time.Since(start))
					if held, err := p.BufferedBytes("f"); err == nil && held > peakBuffered {
						peakBuffered = held
					}
				}
			}
			errs <- nil
		}(r)
	}

	// Program U: imports f at timestamps 20, 40, ... and then computes.
	uWork := cfg.ImporterWork / time.Duration(cfg.ImporterProcs)
	for r := 0; r < cfg.ImporterProcs; r++ {
		go func(r int) {
			p := progU.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			dst := make([]float64, block.Area())
			for j := 1; j <= requests; j++ {
				res, err := p.Import("f", float64(j*cfg.MatchEvery), dst)
				if err != nil {
					errs <- err
					return
				}
				if res.Matched {
					matched[r]++
					for _, v := range dst {
						sums[r] += v
					}
				}
				work(uWork)
				if cfg.SyncImporter {
					// The halo-exchange synchronization of a real stencil
					// solver: a token swap with the neighboring ranks, so
					// adjacent ranks stay within one iteration of each
					// other while distant ranks may drift.
					if err := neighborSync(p.Comm(), j); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(r)
	}

	deadline := time.After(10 * time.Minute)
	var firstErr error
	for i := 0; i < total; i++ {
		select {
		case err := <-errs:
			if err != nil && firstErr == nil {
				firstErr = err
				fw.Close() // abort the remaining processes promptly
			}
		case <-deadline:
			return nil, fmt.Errorf("harness: figure-4 run timed out (%s)", cfg.Name)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := fw.Err(); err != nil {
		return nil, err
	}

	stats, err := progF.Process(slow).ExportStats("f")
	if err != nil {
		return nil, err
	}
	out := &runOutcome{
		exportTimes:  series,
		slowStats:    stats["U.f"].Stats,
		slowPipeline: stats["U.f"].Pipeline,
		matched:      matched[0],
		expProto:     progF.ProtocolStats(),
		impProto:     progU.ProtocolStats(),
		peakBuffered: peakBuffered,
	}
	for _, s := range sums {
		out.importChecksum += s
	}
	if fs, ok := fw.FrameStats(); ok {
		out.frames, out.framesCounted = fs, true
	}
	return out, nil
}
