package harness

import (
	"testing"

	"repro/internal/testutil"
)

// TestRecoveryKillRestart is the kill-and-restart acceptance run: the
// importer program is killed mid-run between two checkpoints, restarted from
// its last collective-sequence checkpoint, and the completed workload's
// import fingerprints — including the re-executed steps — must be
// byte-identical to a fault-free run. CI runs this under -race.
func TestRecoveryKillRestart(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := DefaultRecovery()
	res, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed == 0 {
		t.Error("crash point on the checkpoint schedule: no steps were re-executed")
	}
	if want := cfg.Steps / cfg.CheckpointEvery; res.Checkpoints != want {
		t.Errorf("importer took %d checkpoints, want %d", res.Checkpoints, want)
	}
	if res.RestartTime <= 0 {
		t.Error("restart latency was not measured")
	}
	t.Logf("steps %d, replayed %d, checkpoints %d (%v driver time), restart %v, plain %v vs ckpt %v (overhead %.1f%%)",
		res.Steps, res.Replayed, res.Checkpoints, res.CheckpointTime, res.RestartTime,
		res.PlainElapsed, res.CkptElapsed, 100*res.Overhead())
}

// TestRecoveryConfigValidation rejects schedules the comparison cannot
// interpret (crash before the first checkpoint, crash after the end).
func TestRecoveryConfigValidation(t *testing.T) {
	cfg := DefaultRecovery()
	cfg.CrashAfter = cfg.Steps
	if _, err := RunRecovery(cfg); err == nil {
		t.Error("crash at the final step accepted")
	}
	cfg = DefaultRecovery()
	cfg.CheckpointEvery = 0
	if _, err := RunRecovery(cfg); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
}
