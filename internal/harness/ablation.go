package harness

import (
	"fmt"
	"time"
)

// TubResult compares one Figure-4 configuration with buddy-help on and off:
// the paper's T_ub (Equation (2)) ablation. All quantities are for the
// slowest exporter process p_s.
type TubResult struct {
	Cfg Figure4Config
	// With/Without are the results of the two runs.
	With, Without *Figure4Result
}

// CopiesSaved returns how many memcpys buddy-help eliminated on p_s.
func (t *TubResult) CopiesSaved() int {
	return t.Without.SlowStats.Copies - t.With.SlowStats.Copies
}

// UnnecessarySaved returns the reduction in unnecessary buffering time
// (T_ub) on p_s.
func (t *TubResult) UnnecessarySaved() time.Duration {
	return t.Without.SlowStats.UnnecessaryTime - t.With.SlowStats.UnnecessaryTime
}

// RunTub runs the buddy-help on/off ablation for one configuration.
func RunTub(cfg Figure4Config) (*TubResult, error) {
	with := cfg
	with.BuddyHelp = true
	with.Name = cfg.Name + "/buddy-on"
	without := cfg
	without.BuddyHelp = false
	without.Name = cfg.Name + "/buddy-off"

	rw, err := RunFigure4(with)
	if err != nil {
		return nil, fmt.Errorf("harness: buddy-on run: %w", err)
	}
	rwo, err := RunFigure4(without)
	if err != nil {
		return nil, fmt.Errorf("harness: buddy-off run: %w", err)
	}
	return &TubResult{Cfg: cfg, With: rw, Without: rwo}, nil
}

// OnsetPoint is one entry of the optimal-state-onset sweep.
type OnsetPoint struct {
	ImporterProcs int
	Settle        int // iteration estimate of reaching the optimal state
	MeanExport    time.Duration
	TailExport    time.Duration // mean over the last MatchEvery iterations
}

// RunOptimalStateOnset sweeps the importer process count and reports when
// each configuration's export-time series settles — the generalization of
// the paper's "~400 iterations for U=16 vs ~25 for U=32" observation.
func RunOptimalStateOnset(base Figure4Config, procs []int) ([]OnsetPoint, error) {
	out := make([]OnsetPoint, 0, len(procs))
	for _, n := range procs {
		cfg := base
		cfg.ImporterProcs = n
		cfg.Name = fmt.Sprintf("U=%d", n)
		res, err := RunFigure4(cfg)
		if err != nil {
			return nil, err
		}
		s := res.ExportTimes
		out = append(out, OnsetPoint{
			ImporterProcs: n,
			Settle:        res.Settle,
			MeanExport:    s.Mean(),
			TailExport:    s.Window(s.Len()-cfg.MatchEvery, s.Len()),
		})
	}
	return out, nil
}
