package harness

import (
	"testing"
	"time"
)

// TestRatioSweep: the buddy-help saving grows with the tolerance/inter-
// arrival ratio (the paper's Section 5 observation behind Figures 7/8).
func TestRatioSweep(t *testing.T) {
	base := tinyFigure4(4, true)
	base.Exports = 121
	points, err := RunRatioSweep(base, []float64{0.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %v", points)
	}
	small, large := points[0], points[1]
	if small.Ratio >= large.Ratio {
		t.Fatalf("ratios not increasing: %v", points)
	}
	// With a tiny tolerance there is at most one export per region, so
	// buddy-help has little to save; with tolerance 10 half of each cycle's
	// exports are in-region candidates it can skip.
	if large.CopiesWithout <= small.CopiesWithout {
		t.Errorf("larger tolerance should force more copies without buddy-help: %d vs %d",
			large.CopiesWithout, small.CopiesWithout)
	}
	if large.CopiesWith >= large.CopiesWithout {
		t.Errorf("buddy-help saved nothing at high ratio: %d vs %d",
			large.CopiesWith, large.CopiesWithout)
	}
	if large.SavedFraction <= small.SavedFraction {
		t.Errorf("saved fraction did not grow with ratio: %.3f vs %.3f",
			large.SavedFraction, small.SavedFraction)
	}
}

// TestFigure4SyncImporterGradual: with neighbor synchronization the importer
// trails at first, so the slow exporter buffers more during the transient
// than in the unsynchronized case, while both end in the optimal state.
func TestFigure4SyncImporterGradual(t *testing.T) {
	free := tinyFigure4(4, true)
	free.Exports = 161
	sync := free
	sync.SyncImporter = true

	resFree, err := RunFigure4(free)
	if err != nil {
		t.Fatal(err)
	}
	resSync, err := RunFigure4(sync)
	if err != nil {
		t.Fatal(err)
	}
	if resSync.Matched != resFree.Matched {
		t.Errorf("matches differ: %d vs %d", resSync.Matched, resFree.Matched)
	}
	// Both must end with far more skips than copies.
	for _, res := range []*Figure4Result{resFree, resSync} {
		if res.SlowStats.Skips < res.SlowStats.Copies {
			t.Errorf("%s: %d skips < %d copies", res.Cfg.Name, res.SlowStats.Skips, res.SlowStats.Copies)
		}
	}
	_ = time.Millisecond
}
