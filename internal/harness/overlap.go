// Overlap benchmark: does the asynchronous data plane give the exporter its
// compute time back? One coupled run drives an exporter whose every
// iteration is compute (a fixed busy period) followed by Export, against
// importers that always have a request pending — so each Export resolves a
// request and triggers pack+send work. A wrapper network charges a fixed
// cost per bulk-data send, modeling a slow consumer/link. Under the
// synchronous plane that cost lands on the exporter's application
// goroutine, serially per destination; under the async plane it lands on
// the connection's sender goroutine and overlaps the next compute period.
// The comparison requires the two planes to produce byte-identical results.
package harness

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/transport"
)

// OverlapConfig parameterizes one sync-vs-async overlap comparison.
type OverlapConfig struct {
	GridN         int
	ExporterProcs int
	ImporterProcs int
	// Exports is the number of exporter iterations (compute + Export).
	Exports int
	// Compute is the busy period preceding each Export.
	Compute time.Duration
	// SendCost is charged inside every KindData transport send — the slow
	// importer/link. The exporter's redistribution fan-out pays it once per
	// destination rank per matched version.
	SendCost time.Duration
	// Workers caps the concurrent per-destination transfers of the async
	// fan-out (0 = framework default).
	Workers int
	Timeout time.Duration
}

// DefaultOverlap returns the checked-in benchmark scenario: every export
// matched and redistributed to two importer ranks, send cost comparable to
// the compute period, so the synchronous exporter spends more time in the
// framework than in its own computation.
func DefaultOverlap() OverlapConfig {
	return OverlapConfig{
		GridN:         32,
		ExporterProcs: 1,
		ImporterProcs: 2,
		Exports:       40,
		Compute:       2 * time.Millisecond,
		SendCost:      1500 * time.Microsecond,
		Timeout:       60 * time.Second,
	}
}

// OverlapOutcome reports one plane's run.
type OverlapOutcome struct {
	// IterNanos is the mean exporter wall time per compute+Export iteration
	// (rank 0), the quantity the paper's benefit model cares about.
	IterNanos int64
	// DrainNanos is the time FinishRegion spent waiting for the pipeline to
	// empty at the end of the run (0 for the synchronous plane) — the
	// deferred cost the overlap moved out of the loop.
	DrainNanos int64
	// Matched counts MATCH answers per importer rank 0; Checksum folds every
	// imported cell and match timestamp, for cross-plane identity checks.
	Matched  int
	Checksum float64
	// Pipeline is exporter rank 0's connection pipeline counters.
	Pipeline core.PipelineStats
}

// OverlapComparison pairs the synchronous baseline with the async run.
type OverlapComparison struct {
	Config      OverlapConfig
	Sync, Async OverlapOutcome
}

// Ratio is async exporter iteration time over sync (< 1 means overlap won).
func (c *OverlapComparison) Ratio() float64 {
	if c.Sync.IterNanos == 0 {
		return 0
	}
	return float64(c.Async.IterNanos) / float64(c.Sync.IterNanos)
}

// Identical reports whether both planes matched the same requests to the
// same versions with bit-identical redistributed data.
func (c *OverlapComparison) Identical() bool {
	return c.Sync.Matched == c.Async.Matched && c.Sync.Checksum == c.Async.Checksum
}

func (c *OverlapComparison) String() string {
	return fmt.Sprintf("sync %.2fms/iter, async %.2fms/iter (ratio %.2f, drain %.2fms, stall %.2fms, identical=%v)",
		float64(c.Sync.IterNanos)/1e6, float64(c.Async.IterNanos)/1e6, c.Ratio(),
		float64(c.Async.DrainNanos)/1e6, float64(c.Async.Pipeline.ExportStallNanos)/1e6, c.Identical())
}

// RunOverlapComparison runs the scenario twice — synchronous plane, then
// asynchronous — and returns both outcomes.
func RunOverlapComparison(cfg OverlapConfig) (*OverlapComparison, error) {
	syncOut, err := runOverlapOnce(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("harness: overlap sync run: %w", err)
	}
	asyncOut, err := runOverlapOnce(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("harness: overlap async run: %w", err)
	}
	return &OverlapComparison{Config: cfg, Sync: *syncOut, Async: *asyncOut}, nil
}

// slowDataNetwork charges cost per KindData send, after handing the frame to
// the inner network (delivery itself is not delayed — the cost models the
// sender-side transfer work of a slow link, which is what blocks the
// exporting goroutine).
type slowDataNetwork struct {
	transport.Network
	cost time.Duration
}

func (n *slowDataNetwork) Register(a transport.Addr) (transport.Endpoint, error) {
	ep, err := n.Network.Register(a)
	if err != nil {
		return nil, err
	}
	return &slowDataEndpoint{Endpoint: ep, cost: n.cost}, nil
}

type slowDataEndpoint struct {
	transport.Endpoint
	cost time.Duration
}

func (e *slowDataEndpoint) Send(m transport.Message) error {
	err := e.Endpoint.Send(m)
	if m.Kind == transport.KindData {
		time.Sleep(e.cost)
	}
	return err
}

func runOverlapOnce(cfg OverlapConfig, syncPlane bool) (*OverlapOutcome, error) {
	coupling := &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: cfg.ExporterProcs},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: cfg.ImporterProcs},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: 2.5,
		}},
	}
	net := &slowDataNetwork{Network: transport.NewMemNetwork(), cost: cfg.SendCost}
	fw, err := core.New(coupling, core.Options{
		Network:       net,
		BuddyHelp:     true,
		Timeout:       cfg.Timeout,
		SyncDataPlane: syncPlane,
		ExportWorkers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()

	expLayout, err := decomp.NewRowBlock(cfg.GridN, cfg.GridN, cfg.ExporterProcs)
	if err != nil {
		return nil, err
	}
	impLayout, err := decomp.NewColBlock(cfg.GridN, cfg.GridN, cfg.ImporterProcs)
	if err != nil {
		return nil, err
	}
	progF, progU := fw.MustProgram("F"), fw.MustProgram("U")
	if err := progF.DefineRegion("f", expLayout); err != nil {
		return nil, err
	}
	if err := progU.DefineRegion("f", impLayout); err != nil {
		return nil, err
	}
	if err := fw.Start(); err != nil {
		return nil, err
	}

	out := &OverlapOutcome{}
	total := cfg.ExporterProcs + cfg.ImporterProcs
	errs := make(chan error, total)

	// Exporters: compute then export at ts k+0.6, k = 1..Exports. Rank 0
	// times the loop. Every export past the first resolves the importers'
	// standing request (REGL decides request j once an export > j arrives),
	// so each iteration carries a full resolution + redistribution. The
	// compute phase is a sleep, not a spin: it models the application being
	// away from Export for a fixed period — on a small machine a spinning
	// exporter would starve the rest of the coupled run and the measurement
	// would be of scheduler preemption, not of the data plane.
	for r := 0; r < cfg.ExporterProcs; r++ {
		go func(r int) {
			p := progF.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			g := decomp.NewGrid(block)
			loopStart := time.Now()
			for k := 1; k <= cfg.Exports; k++ {
				ts := float64(k) + 0.6
				time.Sleep(cfg.Compute)
				g.Fill(func(rr, cc int) float64 { return chaosCell(ts, rr, cc) })
				if err := p.Export("f", ts, g.Data); err != nil {
					errs <- err
					return
				}
			}
			loopElapsed := time.Since(loopStart)
			drainStart := time.Now()
			if err := p.FinishRegion("f"); err != nil {
				errs <- err
				return
			}
			if r == 0 {
				out.IterNanos = loopElapsed.Nanoseconds() / int64(cfg.Exports)
				out.DrainNanos = time.Since(drainStart).Nanoseconds()
			}
			errs <- nil
		}(r)
	}

	// Importers: a standing stream of requests at ts j = 2..Exports, each
	// matching export (j-1)+0.6. No compute of their own: the next request
	// is on the rep before the export that decides it happens, so the
	// decision always lands inside the exporter's Export call.
	sums := make([]float64, cfg.ImporterProcs)
	matched := make([]int, cfg.ImporterProcs)
	for r := 0; r < cfg.ImporterProcs; r++ {
		go func(r int) {
			p := progU.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			dst := make([]float64, block.Area())
			g := decomp.Grid{Block: block, Data: dst}
			for j := 2; j <= cfg.Exports; j++ {
				res, err := p.Import("f", float64(j), dst)
				if err != nil {
					errs <- err
					return
				}
				wantTS := float64(j-1) + 0.6
				if !res.Matched || res.MatchTS != wantTS {
					errs <- fmt.Errorf("harness: overlap import @%d resolved %+v, want match @%g", j, res, wantTS)
					return
				}
				// Spot-check the redistributed contents against ground truth
				// (full coverage would dominate the timing runs).
				for rr := block.R0; rr < block.R1; rr += 5 {
					for cc := block.C0; cc < block.C1; cc += 5 {
						if got, want := g.At(rr, cc), chaosCell(wantTS, rr, cc); got != want {
							errs <- fmt.Errorf("harness: overlap data corrupt at (%d,%d)@%g: got %v, want %v",
								rr, cc, wantTS, got, want)
							return
						}
					}
				}
				matched[r]++
				sums[r] += res.MatchTS
				for _, v := range dst {
					sums[r] += v
				}
			}
			errs <- nil
		}(r)
	}

	for i := 0; i < total; i++ {
		if err := <-errs; err != nil {
			fw.Close()
			return nil, err
		}
	}
	if err := fw.Err(); err != nil {
		return nil, err
	}
	out.Matched = matched[0]
	for _, s := range sums {
		out.Checksum += s
	}
	// The pipeline counters are complete only now: late requests (the
	// importers may trail the exporter loop) keep producing sends after
	// FinishRegion returned on the exporter.
	stats, err := progF.Process(0).ExportStats("f")
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		out.Pipeline = st.Pipeline
	}
	return out, nil
}
