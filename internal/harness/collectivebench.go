package harness

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file holds the collective-operation benchmark bodies, shared between
// the repository's bench_test.go (go test -bench), the guidelines harness and
// couplebench's -collectives mode, so the checked-in BENCH_PR8.json report
// and the benchmarks a developer runs by hand can never drift apart.

// collGroup is an in-memory collective group with one pre-spawned worker
// goroutine per rank. Operations are injected as closures through per-rank
// channels, so a steady-state measurement loop performs no goroutine spawns
// and no allocations of its own.
type collGroup struct {
	net   transport.Network
	comms []*collective.Comm
	trig  []chan func(*collective.Comm) error
	done  chan error
	wg    sync.WaitGroup
}

func newCollGroup(size int, reuse bool) (*collGroup, error) {
	net := transport.NewMemNetwork()
	comms := make([]*collective.Comm, size)
	for r := 0; r < size; r++ {
		ep, err := net.Register(transport.Proc("bench", r))
		if err != nil {
			net.Close()
			return nil, err
		}
		c, err := collective.New(transport.NewDispatcher(ep), "bench", r, size)
		if err != nil {
			net.Close()
			return nil, err
		}
		c.SetTimeout(30 * time.Second)
		c.SetBufferReuse(reuse)
		comms[r] = c
	}
	return newCollGroupFrom(net, comms), nil
}

// newCollGroupFrom wraps already-built comms (e.g. the shrunk survivors of a
// fault-tolerance scenario) in the pre-spawned-worker harness. Closing the
// group closes net.
func newCollGroupFrom(net transport.Network, comms []*collective.Comm) *collGroup {
	g := &collGroup{
		net:   net,
		comms: comms,
		trig:  make([]chan func(*collective.Comm) error, len(comms)),
		done:  make(chan error, len(comms)),
	}
	for r := range comms {
		g.trig[r] = make(chan func(*collective.Comm) error)
	}
	for r := range comms {
		c, tr := g.comms[r], g.trig[r]
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			for fn := range tr {
				g.done <- fn(c)
			}
		}()
	}
	return g
}

// run executes fn once on every rank concurrently and waits for all of them.
func (g *collGroup) run(fn func(*collective.Comm) error) error {
	for _, tr := range g.trig {
		tr <- fn
	}
	var first error
	for range g.comms {
		if err := <-g.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeWorkers stops the worker goroutines without tearing down the network
// (for groups built with newCollGroupFrom over a substrate someone else owns).
func (g *collGroup) closeWorkers() {
	for _, tr := range g.trig {
		close(tr)
	}
	g.wg.Wait()
}

func (g *collGroup) close() {
	g.closeWorkers()
	g.net.Close()
}

// timeOp measures reps barrier-fenced rounds of fn across the group and
// returns the elapsed wall time, after warmup rounds outside the timing
// window. The result is the minimum over attempts passes, which strips
// scheduler noise the way best-of-N benchmark reporting does.
func (g *collGroup) timeOp(warmup, reps, attempts int, fn func(*collective.Comm) error) (time.Duration, error) {
	barrier := func(c *collective.Comm) error { return c.Barrier() }
	for i := 0; i < warmup; i++ {
		if err := g.run(fn); err != nil {
			return 0, err
		}
	}
	best := time.Duration(0)
	for a := 0; a < max(attempts, 1); a++ {
		if err := g.run(barrier); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := g.run(fn); err != nil {
				return 0, err
			}
		}
		if err := g.run(barrier); err != nil {
			return 0, err
		}
		if d := time.Since(start); a == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// exactContrib fills a deterministic per-rank vector of dyadic rationals
// (multiples of 1/8 with small magnitude); their sums are exact in float64
// under any combining order, so different reduction schedules must produce
// bit-identical results.
func exactContrib(rank, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((rank*131+i*17)%257-128) / 8.0
	}
	return v
}

// CollectiveAllReduceBench is the steady-state in-place AllReduce benchmark:
// an 8-rank in-memory group with buffer reuse, every iteration one collective
// on every rank. After warmup the hot path performs zero heap allocations —
// no per-round tag strings, no encode buffers, no timers. One benchmark op is
// one full group operation (all ranks).
func CollectiveAllReduceBench(b *testing.B, ranks, vecLen int, algo collective.Algo) {
	g, err := newCollGroup(ranks, true)
	if err != nil {
		b.Fatal(err)
	}
	defer g.close()
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = exactContrib(r, vecLen)
	}
	fn := func(c *collective.Comm) error {
		return c.AllReduceInPlaceWith(algo, vecs[c.Rank()], collective.Max)
	}
	for i := 0; i < 8; i++ {
		if err := g.run(fn); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * vecLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// RunTune runs the self-tuning sweep on a fresh in-memory group of the given
// size and returns the table every rank agreed on (all ranks install the
// identical table; rank 0's is returned).
func RunTune(ranks int, cfg collective.TuneConfig) (*collective.Table, error) {
	g, err := newCollGroup(ranks, true)
	if err != nil {
		return nil, err
	}
	defer g.close()
	tables := make([]*collective.Table, ranks)
	if err := g.run(func(c *collective.Comm) error {
		t, err := c.Tune(cfg)
		tables[c.Rank()] = t
		return err
	}); err != nil {
		return nil, err
	}
	for r := 1; r < ranks; r++ {
		if *tables[r] != *tables[0] {
			return nil, fmt.Errorf("harness: tune diverged: rank %d table %+v != rank 0 %+v", r, *tables[r], *tables[0])
		}
	}
	return tables[0], nil
}

// AllReduceComparison is the recursive-doubling vs ring/Rabenseifner AllReduce
// head-to-head on one live group: per-operation times for both algorithms on
// the same vectors, and the proof that switching algorithms is invisible to
// the application (bit-identical results on every rank).
type AllReduceComparison struct {
	Ranks     int     `json:"ranks"`
	VectorLen int     `json:"vector_len"`
	Bytes     int     `json:"vector_bytes"`
	RDNsPerOp int64   `json:"rd_ns_per_op"`
	RingNs    int64   `json:"ring_ns_per_op"`
	Speedup   float64 `json:"ring_speedup"`
	Identical bool    `json:"results_identical"`
}

func (c *AllReduceComparison) String() string {
	return fmt.Sprintf("%d ranks x %d B: rd %v/op, ring %v/op, speedup %.2fx, identical=%v",
		c.Ranks, c.Bytes, time.Duration(c.RDNsPerOp), time.Duration(c.RingNs), c.Speedup, c.Identical)
}

// CompareAllReduce times both AllReduce algorithms at the given vector length
// and verifies bit-identical results. reps operations per timing pass, best
// of attempts passes.
func CompareAllReduce(ranks, vecLen, reps, attempts int) (*AllReduceComparison, error) {
	g, err := newCollGroup(ranks, true)
	if err != nil {
		return nil, err
	}
	defer g.close()

	// Correctness first: both algorithms must produce bitwise the same sum
	// on every rank (the inputs are exact dyadic rationals, so there is one
	// correct answer regardless of fold order).
	var mu sync.Mutex
	results := map[collective.Algo][][]byte{
		collective.RecursiveDoubling: make([][]byte, ranks),
		collective.Ring:              make([][]byte, ranks),
	}
	for _, algo := range []collective.Algo{collective.RecursiveDoubling, collective.Ring} {
		algo := algo
		if err := g.run(func(c *collective.Comm) error {
			got, err := c.AllReduceWith(algo, exactContrib(c.Rank(), vecLen), collective.Sum)
			if err != nil {
				return err
			}
			mu.Lock()
			results[algo][c.Rank()] = wire.AppendFloat64s(nil, got)
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, fmt.Errorf("harness: allreduce %v: %w", algo, err)
		}
	}
	identical := true
	ref := results[collective.RecursiveDoubling][0]
	for _, algo := range []collective.Algo{collective.RecursiveDoubling, collective.Ring} {
		for r := 0; r < ranks; r++ {
			if !bytes.Equal(results[algo][r], ref) {
				identical = false
			}
		}
	}

	// Timing: in-place Max keeps the vector values stable across repeated
	// folding, so every rep does identical work.
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = exactContrib(r, vecLen)
	}
	timeAlgo := func(algo collective.Algo) (time.Duration, error) {
		return g.timeOp(2, reps, attempts, func(c *collective.Comm) error {
			return c.AllReduceInPlaceWith(algo, vecs[c.Rank()], collective.Max)
		})
	}
	rd, err := timeAlgo(collective.RecursiveDoubling)
	if err != nil {
		return nil, err
	}
	ring, err := timeAlgo(collective.Ring)
	if err != nil {
		return nil, err
	}
	cmp := &AllReduceComparison{
		Ranks:     ranks,
		VectorLen: vecLen,
		Bytes:     8 * vecLen,
		RDNsPerOp: rd.Nanoseconds() / int64(reps),
		RingNs:    ring.Nanoseconds() / int64(reps),
		Identical: identical,
	}
	if cmp.RingNs > 0 {
		cmp.Speedup = float64(cmp.RDNsPerOp) / float64(cmp.RingNs)
	}
	return cmp, nil
}
