package harness

import (
	"fmt"
	"time"
)

// LatencyPoint is one entry of the network-latency ablation.
type LatencyPoint struct {
	Latency time.Duration
	// CopiesWith/CopiesWithout are p_s's memcpys with and without
	// buddy-help at this latency.
	CopiesWith, CopiesWithout int
	// Saved is CopiesWithout - CopiesWith.
	Saved int
}

// RunLatencySweep measures how one-way network latency affects the
// buddy-help saving. The paper ran on Gigabit Ethernet (~100 µs); on higher
// latency links the buddy-help message arrives later relative to the slow
// process's export stream, shrinking the set of copies it can skip.
func RunLatencySweep(base Figure4Config, latencies []time.Duration) ([]LatencyPoint, error) {
	out := make([]LatencyPoint, 0, len(latencies))
	for _, lat := range latencies {
		cfg := base
		cfg.NetLatency = lat
		cfg.Name = fmt.Sprintf("lat=%v", lat)
		res, err := RunTub(cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: latency sweep %v: %w", lat, err)
		}
		out = append(out, LatencyPoint{
			Latency:       lat,
			CopiesWith:    res.With.SlowStats.Copies,
			CopiesWithout: res.Without.SlowStats.Copies,
			Saved:         res.CopiesSaved(),
		})
	}
	return out, nil
}
