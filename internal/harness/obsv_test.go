package harness

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/obsv"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// chromeDump decodes a WriteChromeTrace output into its event list.
func chromeDump(t *testing.T, tr *obsv.Tracer) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	return doc.TraceEvents
}

// TestScenarioSpanRoundTrip replays every paper scenario, bridges its event
// log to obsv spans and checks the Chrome trace round trip: every log line
// becomes a well-formed X event, and each request cycle's flow crosses from
// the importer lane to the exporter lane.
func TestScenarioSpanRoundTrip(t *testing.T) {
	for _, fig := range []string{"5", "7", "8"} {
		sc, err := RunScenario(fig)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		events := chromeDump(t, sc.SpanTracer())
		var slices, flowPhases int
		pids := make(map[float64]bool)
		names := make(map[string]bool)
		for _, ev := range events {
			switch ev["ph"] {
			case "X":
				slices++
				names[ev["name"].(string)] = true
				pids[ev["pid"].(float64)] = true
			case "s", "t", "f":
				flowPhases++
				pids[ev["pid"].(float64)] = true
			}
		}
		// Every log line plus one importer-side request span per request.
		requests := sc.Log.Count(trace.OpRequest)
		want := sc.Log.Len() + requests
		if slices != want {
			t.Errorf("figure %s: %d X events for %d log lines + %d requests",
				fig, slices, sc.Log.Len(), requests)
		}
		if len(pids) != 2 {
			t.Errorf("figure %s: spans on %d pids, want exporter + importer", fig, len(pids))
		}
		if flowPhases < 2*requests {
			t.Errorf("figure %s: %d flow phases for %d requests", fig, flowPhases, requests)
		}
		for _, n := range []string{"request", "request.recv", "reply"} {
			if !names[n] {
				t.Errorf("figure %s: no %q span", fig, n)
			}
		}
	}
}

// TestFigure4Observability is the acceptance run: a Figure-4 coupling with a
// tracing observer served over HTTP must expose well-formed Prometheus
// metrics, a Perfetto-loadable trace whose request flows cross the F/U
// process boundary, and a /statusz with per-connection pipeline state.
func TestFigure4Observability(t *testing.T) {
	verify := testutil.CheckGoroutines(t)
	obs := obsv.New(obsv.Config{Tracing: true})
	srv, err := obsv.Serve("127.0.0.1:0", obs)
	if err != nil {
		t.Fatal(err)
	}

	cfg := tinyFigure4(2, true)
	cfg.Exports = 101
	cfg.Obsv = obs
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != cfg.Exports/cfg.MatchEvery {
		t.Errorf("matched %d of %d requests", res.Matched, cfg.Exports/cfg.MatchEvery)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"core_import_calls", "core_data_sends", "core_export_skips",
		"buffer_pool_reuse", "core_pipeline_jobs",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/trace")), &doc); err != nil {
		t.Fatalf("/trace JSON does not parse: %v", err)
	}
	// A request flow must touch both programs: its s/t/f phases span at
	// least two distinct pids (U's rep mints the ID, F's processes resolve).
	flowPids := make(map[string]map[float64]bool)
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "s" || ph == "t" || ph == "f" {
			id, _ := ev["id"].(string)
			if flowPids[id] == nil {
				flowPids[id] = make(map[float64]bool)
			}
			flowPids[id][ev["pid"].(float64)] = true
		}
	}
	cross := 0
	for _, pids := range flowPids {
		if len(pids) >= 2 {
			cross++
		}
	}
	if cross == 0 {
		t.Errorf("no cross-process flow edges among %d flows", len(flowPids))
	}

	// /statusz sections live only while their framework is open (RunFigure4
	// closes its own), so drive a minimal live coupling for the status check.
	coupling := &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: 1},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: 1},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: 2.5,
		}},
	}
	fw, err := core.New(coupling, core.Options{Obsv: obs, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := decomp.NewRowBlock(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.MustProgram("F").DefineRegion("f", layout); err != nil {
		t.Fatal(err)
	}
	if err := fw.MustProgram("U").DefineRegion("f", layout); err != nil {
		t.Fatal(err)
	}
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 64)
	exp := fw.MustProgram("F").Process(0)
	for k := 1; k <= 6; k++ {
		if err := exp.Export("f", float64(k)+0.6, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fw.MustProgram("U").Process(0).Import("f", 2, data); err != nil {
		t.Fatal(err)
	}

	statusz := get("/statusz")
	for _, want := range []string{"coupling", "depth=", "stall="} {
		if !strings.Contains(statusz, want) {
			t.Errorf("/statusz missing %q:\n%s", want, statusz)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	http.DefaultClient.CloseIdleConnections()
	verify()
}
