package harness

import "testing"

// TestGuidelinesHold is the tier-1 performance-guidelines gate: the
// specialized collectives must not lose to their compositions, growing the
// vector must not make AllReduce faster, and every interchangeable algorithm
// pair must produce bit-identical results. Timing guidelines are measured
// best-of-N with slack and the whole sweep retried, so scheduler noise on a
// loaded CI machine does not flake the build; a persistent violation fails.
func TestGuidelinesHold(t *testing.T) {
	cfg := GuidelinesConfig{
		Ranks:       8,
		GatherRanks: 16,
		VectorLen:   8192,
		Reps:        6,
		Attempts:    3,
		Slack:       2.0,
	}
	var rep *GuidelinesReport
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		rep, err = RunGuidelines(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Identical {
			t.Fatal("algorithm pairs disagree bitwise (not a timing issue; no retry)")
		}
		if rep.Holds() {
			break
		}
	}
	for _, g := range rep.Guidelines {
		t.Log(g)
	}
	if !rep.Holds() {
		t.Fatal("performance guidelines violated after 3 attempts")
	}
}

// TestCompareAllReduceIdentical pins the bit-identity half of the
// rd-vs-ring comparison (the speedup half is asserted by couplebench
// -collectives, which runs on an idle machine and writes BENCH_PR8.json).
func TestCompareAllReduceIdentical(t *testing.T) {
	cmp, err := CompareAllReduce(8, 4096, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(cmp)
	if !cmp.Identical {
		t.Fatal("rd and ring AllReduce results are not bit-identical")
	}
}
