package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ChaosConfig parameterizes one chaos run: a Figure-4-style F->U coupling
// driven over a deterministically faulty network (transport.FaultNetwork
// under transport.ReliableNetwork), with rep heartbeats on. The run must
// complete with exact match results despite drops, delays and connection
// resets — or fail with a clean, typed error; it must never hang.
type ChaosConfig struct {
	GridN         int
	ExporterProcs int
	ImporterProcs int
	Exports       int
	MatchEvery    int // one import request per MatchEvery exports
	Tolerance     float64

	// Fault is the injected misbehavior (Seed selects the deterministic
	// pattern; see transport.FaultConfig).
	Fault transport.FaultConfig
	// ResendInterval drives the reliable layer's retransmits.
	ResendInterval time.Duration
	// ImporterJitter, when positive, makes every importer sleep a
	// seeded-random duration up to ImporterJitter before each Import, so
	// requests land at arbitrary points of the exporters' pipelines — the
	// racy interleavings the async data plane must keep ordered.
	ImporterJitter time.Duration
	// CheckOrdering layers a response-order assertion over the transport:
	// per (exporter process, connection), responses must leave for the rep
	// in non-decreasing ReqID order, each request decided at most once, and
	// never PENDING after its decisive answer. The run fails on the first
	// violation.
	CheckOrdering bool
	// Heartbeat enables rep failure detection during the run; the run
	// asserts it does NOT false-positive under the injected faults.
	Heartbeat time.Duration
	// Timeout bounds the whole run (the no-hang assertion).
	Timeout time.Duration
}

// DefaultChaos returns a laptop-sized configuration for one fault seed.
func DefaultChaos(seed int64) ChaosConfig {
	return ChaosConfig{
		GridN:         16,
		ExporterProcs: 2,
		ImporterProcs: 2,
		Exports:       60,
		MatchEvery:    10,
		Tolerance:     2.5,
		Fault: transport.FaultConfig{
			Seed:       seed,
			Drop:       0.2,
			DelayProb:  0.2,
			MaxDelay:   2 * time.Millisecond,
			ResetEvery: 97,
		},
		ResendInterval: 10 * time.Millisecond,
		Heartbeat:      250 * time.Millisecond,
		Timeout:        60 * time.Second,
	}
}

// ChaosResult reports one completed chaos run.
type ChaosResult struct {
	// Matched counts MATCH answers observed by importer rank 0 (the run
	// demands every request match, so Matched == Exports/MatchEvery).
	Matched int
	// Faults is what the fault layer actually injected.
	Faults transport.FaultStats
	// Elapsed is the wall-clock duration of the coupled run.
	Elapsed time.Duration
}

// chaosCell is the ground-truth value of global cell (r,c) at timestamp ts,
// so the importer can verify redistributed data end to end.
func chaosCell(ts float64, r, c int) float64 { return ts*1e6 + float64(r*1000+c) }

// RunChaos executes one seed of the chaos matrix and verifies exact-once
// protocol behavior: every import request must MATCH its deterministic
// REGL candidate and deliver bit-correct redistributed data.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Exports%cfg.MatchEvery != 0 {
		return nil, fmt.Errorf("harness: chaos exports %d not a multiple of match-every %d", cfg.Exports, cfg.MatchEvery)
	}
	coupling := &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: cfg.ExporterProcs},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: cfg.ImporterProcs},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: cfg.Tolerance,
		}},
	}
	faulty := transport.NewFaultNetwork(transport.NewMemNetwork(), cfg.Fault)
	var net transport.Network = transport.NewReliableNetwork(faulty, transport.ReliableConfig{
		ResendInterval: cfg.ResendInterval,
	})
	// The order check wraps the outermost layer: the reliable transport
	// delivers per-pair FIFO, so the order responses are handed to Send here
	// is the order the rep sees them.
	var oc *orderCheckNetwork
	if cfg.CheckOrdering {
		oc = newOrderCheckNetwork(net)
		net = oc
	}
	fw, err := core.New(coupling, core.Options{
		Network:   net,
		BuddyHelp: true,
		Timeout:   cfg.Timeout,
		Heartbeat: cfg.Heartbeat,
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()

	expLayout, err := decomp.NewRowBlock(cfg.GridN, cfg.GridN, cfg.ExporterProcs)
	if err != nil {
		return nil, err
	}
	impLayout, err := decomp.NewColBlock(cfg.GridN, cfg.GridN, cfg.ImporterProcs)
	if err != nil {
		return nil, err
	}
	progF, progU := fw.MustProgram("F"), fw.MustProgram("U")
	if err := progF.DefineRegion("f", expLayout); err != nil {
		return nil, err
	}
	if err := progU.DefineRegion("f", impLayout); err != nil {
		return nil, err
	}
	if err := fw.Start(); err != nil {
		return nil, err
	}

	start := time.Now()
	requests := cfg.Exports / cfg.MatchEvery
	matched := make([]int, cfg.ImporterProcs)
	total := cfg.ExporterProcs + cfg.ImporterProcs
	errs := make(chan error, total)

	// Program F exports at timestamps k+0.6, then declares the stream done so
	// trailing requests resolve even if they arrive after the last export.
	for r := 0; r < cfg.ExporterProcs; r++ {
		go func(r int) {
			p := progF.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			g := decomp.NewGrid(block)
			for k := 1; k <= cfg.Exports; k++ {
				ts := float64(k) + 0.6
				g.Fill(func(r, c int) float64 { return chaosCell(ts, r, c) })
				if err := p.Export("f", ts, g.Data); err != nil {
					errs <- err
					return
				}
			}
			errs <- p.FinishRegion("f")
		}(r)
	}

	// Program U imports at timestamps MatchEvery, 2*MatchEvery, ...; REGL
	// with tolerance >= 1 deterministically matches export j*MatchEvery-0.4.
	for r := 0; r < cfg.ImporterProcs; r++ {
		go func(r int) {
			p := progU.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			var jitter *rand.Rand
			if cfg.ImporterJitter > 0 {
				jitter = rand.New(rand.NewSource(cfg.Fault.Seed*1009 + int64(r)))
			}
			dst := make([]float64, block.Area())
			for j := 1; j <= requests; j++ {
				if jitter != nil {
					time.Sleep(time.Duration(jitter.Int63n(int64(cfg.ImporterJitter))))
				}
				reqTS := float64(j * cfg.MatchEvery)
				res, err := p.Import("f", reqTS, dst)
				if err != nil {
					errs <- err
					return
				}
				wantTS := float64(j*cfg.MatchEvery-1) + 0.6
				if !res.Matched || res.MatchTS != wantTS {
					errs <- fmt.Errorf("harness: chaos import @%g resolved %+v, want match @%g", reqTS, res, wantTS)
					return
				}
				g := decomp.Grid{Block: block, Data: dst}
				for rr := block.R0; rr < block.R1; rr += 3 {
					for cc := block.C0; cc < block.C1; cc += 3 {
						if got, want := g.At(rr, cc), chaosCell(wantTS, rr, cc); got != want {
							errs <- fmt.Errorf("harness: chaos data corrupt at (%d,%d)@%g: got %v, want %v",
								rr, cc, wantTS, got, want)
							return
						}
					}
				}
				matched[r]++
			}
			errs <- nil
		}(r)
	}

	deadline := time.After(cfg.Timeout)
	var firstErr error
	for i := 0; i < total; i++ {
		select {
		case err := <-errs:
			if err != nil && firstErr == nil {
				firstErr = err
				fw.Close() // abort the remaining processes promptly
			}
		case <-deadline:
			return nil, fmt.Errorf("harness: chaos run hung (seed %d, fault stats %+v)",
				cfg.Fault.Seed, faulty.Stats())
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w (fault stats %+v)", firstErr, faulty.Stats())
	}
	if err := fw.Err(); err != nil {
		return nil, err
	}
	for r, m := range matched {
		if m != requests {
			return nil, fmt.Errorf("harness: chaos importer rank %d matched %d of %d requests", r, m, requests)
		}
	}
	if oc != nil {
		if err := oc.err(); err != nil {
			return nil, err
		}
	}
	// The exactly-once transfer-accounting invariant: FinishRegion drained
	// every pipeline, so each connection must have applied TransferDone once
	// per data send batch — no more (double free) and no less (leak).
	for r := 0; r < cfg.ExporterProcs; r++ {
		stats, err := progF.Process(r).ExportStats("f")
		if err != nil {
			return nil, err
		}
		for conn, st := range stats {
			if st.TransferDones != st.Sends {
				return nil, fmt.Errorf("harness: chaos exporter rank %d conn %s: %d TransferDones for %d sends",
					r, conn, st.TransferDones, st.Sends)
			}
		}
	}
	return &ChaosResult{Matched: matched[0], Faults: faulty.Stats(), Elapsed: time.Since(start)}, nil
}

// respRecord is one observed KindResponse send (decoded mirror of the
// core-internal response message; gob matches fields by name).
type respRecord struct {
	Conn   string
	ReqID  int
	Rank   int
	Result match.Result
}

// orderCheckNetwork asserts the async data plane's per-connection response
// ordering guarantee at the transport boundary. It wraps each registered
// endpoint so every KindResponse handed to Send is checked against the
// stream's history before it leaves.
type orderCheckNetwork struct {
	transport.Network

	mu sync.Mutex
	// Per "src|conn" stream: requests are forwarded in ReqID order and
	// resolved in ReqID order, so PENDING responses must carry strictly
	// increasing ReqIDs, decisive responses must carry strictly increasing
	// ReqIDs, and a PENDING must never follow its request's decision. (A
	// decisive response may legally follow a PENDING for a *newer* request —
	// resolutions catch up on the backlog in order — so the combined stream
	// is not globally sorted.)
	lastPending map[string]int
	lastDecided map[string]int
	firstErr    error
}

func newOrderCheckNetwork(inner transport.Network) *orderCheckNetwork {
	return &orderCheckNetwork{
		Network:     inner,
		lastPending: make(map[string]int),
		lastDecided: make(map[string]int),
	}
}

func (n *orderCheckNetwork) Register(a transport.Addr) (transport.Endpoint, error) {
	ep, err := n.Network.Register(a)
	if err != nil {
		return nil, err
	}
	return &orderCheckEndpoint{Endpoint: ep, net: n}, nil
}

func (n *orderCheckNetwork) err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.firstErr
}

func (n *orderCheckNetwork) record(src transport.Addr, m transport.Message) {
	var rm respRecord
	if err := wire.Unmarshal(m.Payload, &rm); err != nil {
		return // not a process response (e.g. a coalesced frame); skip
	}
	key := src.String() + "|" + rm.Conn
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.firstErr != nil {
		return
	}
	fail := func(format string, args ...any) {
		n.firstErr = fmt.Errorf("harness: response order violation on %s: "+format,
			append([]any{key}, args...)...)
	}
	if rm.Result == match.Pending {
		if last, ok := n.lastPending[key]; ok && rm.ReqID <= last {
			fail("PENDING for req %d after PENDING for req %d", rm.ReqID, last)
			return
		}
		if decided, ok := n.lastDecided[key]; ok && rm.ReqID <= decided {
			fail("PENDING for req %d after req %d was decided", rm.ReqID, decided)
			return
		}
		n.lastPending[key] = rm.ReqID
		return
	}
	if decided, ok := n.lastDecided[key]; ok && rm.ReqID <= decided {
		if rm.ReqID == decided {
			fail("req %d decided twice", rm.ReqID)
		} else {
			fail("req %d decided after req %d", rm.ReqID, decided)
		}
		return
	}
	n.lastDecided[key] = rm.ReqID
}

type orderCheckEndpoint struct {
	transport.Endpoint
	net *orderCheckNetwork
}

func (e *orderCheckEndpoint) Send(m transport.Message) error {
	if m.Kind == transport.KindResponse {
		e.net.record(e.Addr(), m)
	}
	return e.Endpoint.Send(m)
}
