package harness

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/transport"
)

// ChaosConfig parameterizes one chaos run: a Figure-4-style F->U coupling
// driven over a deterministically faulty network (transport.FaultNetwork
// under transport.ReliableNetwork), with rep heartbeats on. The run must
// complete with exact match results despite drops, delays and connection
// resets — or fail with a clean, typed error; it must never hang.
type ChaosConfig struct {
	GridN         int
	ExporterProcs int
	ImporterProcs int
	Exports       int
	MatchEvery    int // one import request per MatchEvery exports
	Tolerance     float64

	// Fault is the injected misbehavior (Seed selects the deterministic
	// pattern; see transport.FaultConfig).
	Fault transport.FaultConfig
	// ResendInterval drives the reliable layer's retransmits.
	ResendInterval time.Duration
	// Heartbeat enables rep failure detection during the run; the run
	// asserts it does NOT false-positive under the injected faults.
	Heartbeat time.Duration
	// Timeout bounds the whole run (the no-hang assertion).
	Timeout time.Duration
}

// DefaultChaos returns a laptop-sized configuration for one fault seed.
func DefaultChaos(seed int64) ChaosConfig {
	return ChaosConfig{
		GridN:         16,
		ExporterProcs: 2,
		ImporterProcs: 2,
		Exports:       60,
		MatchEvery:    10,
		Tolerance:     2.5,
		Fault: transport.FaultConfig{
			Seed:       seed,
			Drop:       0.2,
			DelayProb:  0.2,
			MaxDelay:   2 * time.Millisecond,
			ResetEvery: 97,
		},
		ResendInterval: 10 * time.Millisecond,
		Heartbeat:      250 * time.Millisecond,
		Timeout:        60 * time.Second,
	}
}

// ChaosResult reports one completed chaos run.
type ChaosResult struct {
	// Matched counts MATCH answers observed by importer rank 0 (the run
	// demands every request match, so Matched == Exports/MatchEvery).
	Matched int
	// Faults is what the fault layer actually injected.
	Faults transport.FaultStats
	// Elapsed is the wall-clock duration of the coupled run.
	Elapsed time.Duration
}

// chaosCell is the ground-truth value of global cell (r,c) at timestamp ts,
// so the importer can verify redistributed data end to end.
func chaosCell(ts float64, r, c int) float64 { return ts*1e6 + float64(r*1000+c) }

// RunChaos executes one seed of the chaos matrix and verifies exact-once
// protocol behavior: every import request must MATCH its deterministic
// REGL candidate and deliver bit-correct redistributed data.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Exports%cfg.MatchEvery != 0 {
		return nil, fmt.Errorf("harness: chaos exports %d not a multiple of match-every %d", cfg.Exports, cfg.MatchEvery)
	}
	coupling := &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: cfg.ExporterProcs},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: cfg.ImporterProcs},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: cfg.Tolerance,
		}},
	}
	faulty := transport.NewFaultNetwork(transport.NewMemNetwork(), cfg.Fault)
	net := transport.NewReliableNetwork(faulty, transport.ReliableConfig{
		ResendInterval: cfg.ResendInterval,
	})
	fw, err := core.New(coupling, core.Options{
		Network:   net,
		BuddyHelp: true,
		Timeout:   cfg.Timeout,
		Heartbeat: cfg.Heartbeat,
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()

	expLayout, err := decomp.NewRowBlock(cfg.GridN, cfg.GridN, cfg.ExporterProcs)
	if err != nil {
		return nil, err
	}
	impLayout, err := decomp.NewColBlock(cfg.GridN, cfg.GridN, cfg.ImporterProcs)
	if err != nil {
		return nil, err
	}
	progF, progU := fw.MustProgram("F"), fw.MustProgram("U")
	if err := progF.DefineRegion("f", expLayout); err != nil {
		return nil, err
	}
	if err := progU.DefineRegion("f", impLayout); err != nil {
		return nil, err
	}
	if err := fw.Start(); err != nil {
		return nil, err
	}

	start := time.Now()
	requests := cfg.Exports / cfg.MatchEvery
	matched := make([]int, cfg.ImporterProcs)
	total := cfg.ExporterProcs + cfg.ImporterProcs
	errs := make(chan error, total)

	// Program F exports at timestamps k+0.6, then declares the stream done so
	// trailing requests resolve even if they arrive after the last export.
	for r := 0; r < cfg.ExporterProcs; r++ {
		go func(r int) {
			p := progF.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			g := decomp.NewGrid(block)
			for k := 1; k <= cfg.Exports; k++ {
				ts := float64(k) + 0.6
				g.Fill(func(r, c int) float64 { return chaosCell(ts, r, c) })
				if err := p.Export("f", ts, g.Data); err != nil {
					errs <- err
					return
				}
			}
			errs <- p.FinishRegion("f")
		}(r)
	}

	// Program U imports at timestamps MatchEvery, 2*MatchEvery, ...; REGL
	// with tolerance >= 1 deterministically matches export j*MatchEvery-0.4.
	for r := 0; r < cfg.ImporterProcs; r++ {
		go func(r int) {
			p := progU.Process(r)
			block, err := p.Block("f")
			if err != nil {
				errs <- err
				return
			}
			dst := make([]float64, block.Area())
			for j := 1; j <= requests; j++ {
				reqTS := float64(j * cfg.MatchEvery)
				res, err := p.Import("f", reqTS, dst)
				if err != nil {
					errs <- err
					return
				}
				wantTS := float64(j*cfg.MatchEvery-1) + 0.6
				if !res.Matched || res.MatchTS != wantTS {
					errs <- fmt.Errorf("harness: chaos import @%g resolved %+v, want match @%g", reqTS, res, wantTS)
					return
				}
				g := decomp.Grid{Block: block, Data: dst}
				for rr := block.R0; rr < block.R1; rr += 3 {
					for cc := block.C0; cc < block.C1; cc += 3 {
						if got, want := g.At(rr, cc), chaosCell(wantTS, rr, cc); got != want {
							errs <- fmt.Errorf("harness: chaos data corrupt at (%d,%d)@%g: got %v, want %v",
								rr, cc, wantTS, got, want)
							return
						}
					}
				}
				matched[r]++
			}
			errs <- nil
		}(r)
	}

	deadline := time.After(cfg.Timeout)
	var firstErr error
	for i := 0; i < total; i++ {
		select {
		case err := <-errs:
			if err != nil && firstErr == nil {
				firstErr = err
				fw.Close() // abort the remaining processes promptly
			}
		case <-deadline:
			return nil, fmt.Errorf("harness: chaos run hung (seed %d, fault stats %+v)",
				cfg.Fault.Seed, faulty.Stats())
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w (fault stats %+v)", firstErr, faulty.Stats())
	}
	if err := fw.Err(); err != nil {
		return nil, err
	}
	for r, m := range matched {
		if m != requests {
			return nil, fmt.Errorf("harness: chaos importer rank %d matched %d of %d requests", r, m, requests)
		}
	}
	return &ChaosResult{Matched: matched[0], Faults: faulty.Stats(), Elapsed: time.Since(start)}, nil
}
