package harness

import (
	"fmt"
	"time"
)

// FramingComparison is the allocation-and-framing experiment: one Figure-4
// configuration run twice over the frame-counting transport — once with
// coalescing disabled (every message its own frame, the baseline) and once
// enabled — so the frame reduction and the invariance of the match results
// can be read off directly.
type FramingComparison struct {
	Baseline, Coalesced *Figure4Result
}

// FrameReduction returns baseline frames per coalesced frame (>1 means the
// coalescing layer shrank the wire traffic).
func (fc *FramingComparison) FrameReduction() float64 {
	if fc.Coalesced.Frames.Frames == 0 {
		return 0
	}
	return float64(fc.Baseline.Frames.Frames) / float64(fc.Coalesced.Frames.Frames)
}

// Identical reports whether the two runs matched identically: same MATCH
// count and the same imported data, byte for byte (the checksum is a sum
// over every imported value, and the matched versions are deterministic).
func (fc *FramingComparison) Identical() bool {
	return fc.Baseline.Matched == fc.Coalesced.Matched &&
		fc.Baseline.ImportChecksum == fc.Coalesced.ImportChecksum
}

// String renders the comparison's headline numbers.
func (fc *FramingComparison) String() string {
	return fmt.Sprintf("frames %d -> %d (%.1fx), matched %d/%d, checksum equal %v",
		fc.Baseline.Frames.Frames, fc.Coalesced.Frames.Frames, fc.FrameReduction(),
		fc.Baseline.Matched, fc.Coalesced.Matched, fc.Identical())
}

// DefaultFramingConfig returns the configuration the framing experiment
// uses: the Figure-4 coupling made communication-bound (no simulated
// computation, a request every other export), because message combining
// pays off exactly when same-pair control messages cluster in time — the
// regime Träff et al. target. The Figure-4 timing configurations spread
// their control traffic across multi-millisecond work phases, where
// per-frame overhead is irrelevant by construction.
func DefaultFramingConfig() Figure4Config {
	return Figure4Config{
		Name:          "framing",
		GridN:         32,
		ExporterProcs: 4,
		ImporterProcs: 8,
		Exports:       400,
		MatchEvery:    2,
		Tolerance:     1.5,
		BuddyHelp:     true,
		Runs:          1,
	}
}

// RunFramingComparison runs cfg twice — frames counted, coalescing off then
// on — and returns both outcomes.
func RunFramingComparison(cfg Figure4Config) (*FramingComparison, error) {
	base := cfg
	base.Name = cfg.Name + "/uncoalesced"
	base.Coalesce, base.CountFrames = false, true
	baseline, err := RunFigure4(base)
	if err != nil {
		return nil, fmt.Errorf("harness: baseline framing run: %w", err)
	}
	co := cfg
	co.Name = cfg.Name + "/coalesced"
	co.Coalesce = true
	coalesced, err := RunFigure4(co)
	if err != nil {
		return nil, fmt.Errorf("harness: coalesced framing run: %w", err)
	}
	if !baseline.FramesCounted || !coalesced.FramesCounted {
		return nil, fmt.Errorf("harness: framing runs did not count frames")
	}
	return &FramingComparison{Baseline: baseline, Coalesced: coalesced}, nil
}

// T_ub convenience: UnnecessaryTime of the slow process, the quantity the
// bench harness reports alongside the framing numbers.
func (r *Figure4Result) TUb() time.Duration { return r.SlowStats.UnnecessaryTime }
