package harness

import (
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/match"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file holds the bodies of the allocation benchmarks, shared between
// the repository's bench_test.go (go test -bench) and couplebench's -bench
// mode, which runs them through testing.Benchmark and writes the numbers to
// a JSON report. Keeping one body for both means the checked-in report and
// the benchmark a developer runs by hand can never drift apart.

// StoreSteadyStateBench drives one connection's export pipeline at steady
// state: every iteration offers a blockN-float64 version that the manager
// must buffer, and the request horizon advances in lock-step so exactly one
// buffered entry is freed per cycle. After warm-up every copy target comes
// from the buffer pool and every Entry from the manager's freelist, so the
// timed path — the memcpy Figure 4 measures — performs zero heap
// allocations. The request bookkeeping runs with the timer (and allocation
// accounting) stopped: it models the importer side of the protocol, not the
// export hot path.
func StoreSteadyStateBench(b *testing.B, blockN int) {
	data := make([]float64, blockN)
	m, err := buffer.NewManager(buffer.Config{Policy: match.REGL, Tol: 2.5})
	if err != nil {
		b.Fatal(err)
	}
	// One cycle: export at ts+0.5, then a request at ts+0.3. The export
	// already on file exceeds the region's upper bound, so the request
	// decides immediately inside OnRequest — the next Offer has no pending
	// request work to do.
	ts := 0.0
	cycle := func(timed bool) {
		res, err := m.Offer(ts+0.5, data)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Buffered {
			b.Fatal("expected buffering")
		}
		if timed {
			b.StopTimer()
		}
		rr, err := m.OnRequest(ts + 0.3)
		if err != nil {
			b.Fatal(err)
		}
		// Consume the matched versions the way the framework does: the data
		// goes to the wire, then TransferDone releases the alias so the
		// buffer can recycle through the pool.
		for _, s := range rr.Sends {
			m.TransferDone(s.MatchTS)
		}
		ts++
		if timed {
			b.StartTimer()
		}
	}
	// Warm-up: populate the pool and the entry freelist so the steady state
	// starts recycling from iteration one.
	for i := 0; i < 8; i++ {
		cycle(false)
	}
	before := m.Stats().Pool
	b.SetBytes(int64(8 * blockN))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(true)
	}
	b.StopTimer()
	after := m.Stats().Pool
	if misses := after.Misses - before.Misses; misses > 0 {
		b.Fatalf("steady state took %d pool misses over %d offers", misses, b.N)
	}
}

// FrameRoundTripBench measures the binary wire codec of the TCP transport:
// encode a control-plane message into a reused buffer, decode it back with
// a warm string interner. Both directions are allocation-free — the decode
// aliases the frame for the payload and interns the address strings.
func FrameRoundTripBench(b *testing.B) {
	in := wire.NewInterner()
	m := transport.Message{
		Kind:    transport.KindResponse,
		Src:     transport.Proc("F", 3),
		Dst:     transport.Rep("U"),
		Tag:     "temp",
		Seq:     7,
		Payload: make([]byte, 96),
	}
	buf := transport.AppendFrame(nil, m)
	if _, err := transport.DecodeFrame(buf, in); err != nil { // warm the interner
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = transport.AppendFrame(buf[:0], m)
		got, err := transport.DecodeFrame(buf, in)
		if err != nil {
			b.Fatal(err)
		}
		if got.Seq != m.Seq {
			b.Fatal("bad round trip")
		}
	}
}

// RepRoundTripBench measures a rep-to-rep control round trip through the
// coalescing transport under load: a window of outstanding requests keeps
// the batches filling by count rather than by flush deadline, the way the
// protocol's fan-out stages do. One op is one completed request/answer
// round trip; the per-op allocations amortize the batch buffers over the
// messages that share them.
func RepRoundTripBench(b *testing.B) {
	inner := transport.NewMemNetwork()
	n := transport.NewCoalescingNetwork(inner, transport.CoalesceConfig{
		FlushInterval: 50 * time.Microsecond,
	})
	defer n.Close()
	cli, err := n.Register(transport.Rep("F"))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := n.Register(transport.Rep("U"))
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Recv()
			if err != nil {
				return
			}
			if m.Kind == transport.KindControl {
				return
			}
			srv.Send(transport.Message{Kind: transport.KindAnswer, Dst: m.Src, Tag: m.Tag})
		}
	}()
	payload := make([]byte, 64)
	send := func() {
		if err := cli.Send(transport.Message{
			Kind:    transport.KindRequest,
			Dst:     srv.Addr(),
			Tag:     "bench",
			Payload: payload,
		}); err != nil {
			b.Fatal(err)
		}
	}
	const window = 32
	for i := 0; i < window; i++ {
		send()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Recv(); err != nil {
			b.Fatal(err)
		}
		send()
	}
	b.StopTimer()
	for i := 0; i < window; i++ {
		if _, err := cli.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	cli.Send(transport.Message{Kind: transport.KindControl, Dst: srv.Addr()})
	<-done
}
