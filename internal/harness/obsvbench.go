package harness

import (
	"testing"

	"repro/internal/obsv"
)

// ObsvOverheadBench measures the observability cost the data plane pays per
// dispatched export job: the preallocated counter/gauge updates plus — when
// traced — a span record on the lock-free ring. With traced=false the ring
// is nil, so the benchmark prices exactly the disabled path the acceptance
// criterion bounds (one nil check on top of the atomic counters the pipeline
// maintained before the registry existed). Shared between the repository's
// bench_test.go and couplebench -bench.
func ObsvOverheadBench(b *testing.B, traced bool) {
	reg := obsv.NewRegistry()
	l := obsv.L("conn", "bench")
	stall := reg.Counter("core.export.stall.ns", l)
	queued := reg.Counter("core.pipeline.jobs", l)
	sends := reg.Counter("core.data.sends", l)
	flushes := reg.Counter("core.pipeline.flushes", l)
	depth := reg.Gauge("core.pipeline.peak.depth", l)
	var tracer *obsv.Tracer
	if traced {
		tracer = obsv.NewTracer(1 << 12)
	}
	ring := tracer.Ring("bench", 0) // nil when untraced
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The per-job instrument sequence of dispatchLocked + runJob.
		stall.Add(uint64(i & 1))
		queued.Inc()
		depth.SetMax(int64(i & 7))
		sends.Inc()
		flushes.Inc()
		if ring != nil {
			ring.Record(obsv.Span{
				Name: "send", TS: tracer.Now(), Dur: 1,
				Flow: uint64(i + 1), Arg: int64(i),
			})
		}
	}
}
