package wire

import (
	"math"
	"testing"
)

// FuzzDecodeFloat64s: the codec must never panic and must round-trip
// whatever it accepts.
func FuzzDecodeFloat64s(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Add(make([]byte, 7))
	f.Add(EncodeFloat64s([]float64{1, math.Inf(1), math.NaN()}))
	f.Fuzz(func(t *testing.T, b []byte) {
		vals, err := DecodeFloat64s(b)
		if err != nil {
			if len(b)%8 == 0 {
				t.Fatalf("rejected valid length %d: %v", len(b), err)
			}
			return
		}
		if len(vals) != len(b)/8 {
			t.Fatalf("decoded %d values from %d bytes", len(vals), len(b))
		}
		enc := EncodeFloat64s(vals)
		if len(enc) != len(b) {
			t.Fatalf("re-encode length %d != %d", len(enc), len(b))
		}
		for i := range b {
			if enc[i] != b[i] {
				t.Fatalf("round trip differs at byte %d", i)
			}
		}
	})
}
