package wire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFloat64sRoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1)}
	out, err := DecodeFloat64s(EncodeFloat64s(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: got %v want %v", out, in)
	}
}

func TestFloat64sRoundTripProperty(t *testing.T) {
	f := func(in []float64) bool {
		out, err := DecodeFloat64s(EncodeFloat64s(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			// NaN-safe comparison on bit patterns.
			if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64sNaNPreserved(t *testing.T) {
	out, err := DecodeFloat64s(EncodeFloat64s([]float64{math.NaN()}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out[0]) {
		t.Error("NaN not preserved")
	}
}

func TestDecodeFloat64sBadLength(t *testing.T) {
	if _, err := DecodeFloat64s(make([]byte, 7)); err == nil {
		t.Error("expected error for length 7")
	}
}

func TestDecodeFloat64sInto(t *testing.T) {
	b := EncodeFloat64s([]float64{1, 2, 3})
	dst := make([]float64, 3)
	if err := DecodeFloat64sInto(b, dst); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 3 {
		t.Errorf("dst = %v", dst)
	}
	if err := DecodeFloat64sInto(b, make([]float64, 2)); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestFloat64sSize(t *testing.T) {
	if Float64sSize(10) != 80 {
		t.Errorf("Float64sSize(10) = %d", Float64sSize(10))
	}
	if got := len(EncodeFloat64s(make([]float64, 5))); got != Float64sSize(5) {
		t.Errorf("encoded len %d != size %d", got, Float64sSize(5))
	}
}

func TestGobRoundTrip(t *testing.T) {
	type payload struct {
		A int
		B string
		C []float64
	}
	in := payload{A: 7, B: "x", C: []float64{1.5}}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %+v want %+v", out, in)
	}
}

func TestUnmarshalError(t *testing.T) {
	var v struct{ A int }
	if err := Unmarshal([]byte{0xff, 0x00}, &v); err == nil {
		t.Error("expected decode error")
	}
}

func TestMustMarshalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMarshal(chan) did not panic")
		}
	}()
	MustMarshal(make(chan int)) // gob cannot encode channels
}

func TestAppendFloat64s(t *testing.T) {
	prefix := []byte{0xAA}
	b := AppendFloat64s(prefix, []float64{1})
	if len(b) != 9 || b[0] != 0xAA {
		t.Errorf("append result %v", b)
	}
}
