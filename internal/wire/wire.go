// Package wire provides the small set of payload codecs shared by the
// framework layers: a fast flat codec for []float64 (the bulk data type of
// the coupled simulations) and gob helpers for control structures that must
// cross the TCP transport.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
)

// Float64sSize returns the encoded size in bytes of n float64 values.
func Float64sSize(n int) int { return 8 * n }

// AppendFloat64s appends the little-endian encoding of vals to dst and
// returns the extended slice.
func AppendFloat64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// EncodeFloat64s encodes vals into a fresh byte slice.
func EncodeFloat64s(vals []float64) []byte {
	return AppendFloat64s(make([]byte, 0, Float64sSize(len(vals))), vals)
}

// DecodeFloat64s decodes a buffer produced by EncodeFloat64s.
func DecodeFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("wire: float64 payload length %d not a multiple of 8", len(b))
	}
	vals := make([]float64, len(b)/8)
	if err := DecodeFloat64sInto(b, vals); err != nil {
		return nil, err
	}
	return vals, nil
}

// DecodeFloat64sInto decodes b into vals, which must have exactly
// len(b)/8 elements.
func DecodeFloat64sInto(b []byte, vals []float64) error {
	if len(b) != 8*len(vals) {
		return fmt.Errorf("wire: payload is %d bytes, destination wants %d", len(b), 8*len(vals))
	}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// Marshal gob-encodes v. It is used for low-rate control structures where
// convenience beats speed.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: marshal %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// MustMarshal is Marshal for values that cannot fail to encode (fixed control
// structs); it panics on error, which would indicate a programming bug.
func MustMarshal(v any) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Unmarshal gob-decodes b into v (a pointer).
func Unmarshal(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("wire: unmarshal %T: %w", v, err)
	}
	return nil
}
