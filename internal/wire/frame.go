package wire

import (
	"encoding/binary"
	"fmt"
)

// This file holds the allocation-free framing primitives used by the binary
// transport codec: append-style writers over a caller-owned []byte and a
// cursor Reader whose Bytes/String accessors alias the read buffer instead
// of copying. Callers that retain a decoded value past the buffer's reuse
// must copy it explicitly — the transport layer documents which values are
// consumed in place (router forwarding) and which are retained (mailboxes).

// AppendUvarint appends v in unsigned LEB128 and returns the extended slice.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendString appends a uvarint length prefix followed by the raw bytes of s.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length prefix followed by b.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// UvarintLen returns the encoded size of v in bytes.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Reader is a cursor over an encoded buffer. Decoding methods return zero
// values after the first error; check Err (or Len) once at the end instead
// of after every field. Bytes and String alias the underlying buffer —
// zero-copy, but only valid until the buffer is reused.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader positioned at the start of buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repoints the reader at buf, clearing any error (allocation-free
// reuse across frames).
func (r *Reader) Reset(buf []byte) {
	r.buf, r.off, r.err = buf, 0, nil
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated frame: %s at offset %d of %d", what, r.off, len(r.buf))
	}
}

// Uvarint decodes one unsigned LEB128 value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Byte decodes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uint32 decodes a fixed-width little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 decodes a fixed-width little-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Bytes decodes a length-prefixed byte string. The result aliases the
// reader's buffer: copy it if it outlives the buffer.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Len()) < n {
		r.fail("bytes body")
		return nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// String decodes a length-prefixed string, allocating. Use StringBytes with
// an Interner on hot paths.
func (r *Reader) String() string { return string(r.Bytes()) }

// StringBytes decodes a length-prefixed string as an aliasing []byte
// (feed it to Interner.Intern to get an alloc-free string on repeats).
func (r *Reader) StringBytes() []byte { return r.Bytes() }

// Interner converts byte slices to strings without allocating for values
// seen before: the map lookup with a string([]byte) key does not allocate,
// so repeated program names, region names, and tags — the only strings on
// the hot transport path — cost one allocation ever.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{m: make(map[string]string)} }

// Intern returns the canonical string for b.
func (in *Interner) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}
