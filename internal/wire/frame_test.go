package wire

import (
	"bytes"
	"testing"
)

func TestReaderRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 300)
	buf = append(buf, 0x7f)
	buf = AppendString(buf, "solver")
	buf = AppendBytes(buf, []byte{1, 2, 3})
	buf = AppendBytes(buf, nil)

	r := NewReader(buf)
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint 0: got %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("uvarint 300: got %d", got)
	}
	if got := r.Byte(); got != 0x7f {
		t.Fatalf("byte: got %#x", got)
	}
	if got := r.String(); got != "solver" {
		t.Fatalf("string: got %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes: got %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty bytes: got %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d unconsumed bytes", r.Len())
	}
}

func TestReaderFixedWidth(t *testing.T) {
	var buf []byte
	buf = append(buf, 0xAA)
	buf = append(buf, 0x01, 0x02, 0x03, 0x04)                         // u32 LE
	buf = append(buf, 0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01) // u64 LE
	r := NewReader(buf)
	if got := r.Byte(); got != 0xAA {
		t.Fatalf("byte %#x", got)
	}
	if got := r.Uint32(); got != 0x04030201 {
		t.Fatalf("u32 %#x", got)
	}
	if got := r.Uint64(); got != 0x0102030405060708 {
		t.Fatalf("u64 %#x", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	full := AppendString(AppendUvarint(nil, 7), "abcdef")
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("cut=%d: no error on truncated input", cut)
		}
		// After an error every accessor returns zero values, no panic.
		if r.Uvarint() != 0 || r.Byte() != 0 || r.Uint32() != 0 || r.Uint64() != 0 || r.Bytes() != nil {
			t.Fatalf("cut=%d: non-zero result after error", cut)
		}
	}
}

func TestReaderBytesAlias(t *testing.T) {
	buf := AppendBytes(nil, []byte("payload"))
	r := NewReader(buf)
	b := r.Bytes()
	buf[len(buf)-1] = 'X'
	if string(b) != "payloaX" {
		t.Fatalf("Bytes does not alias the buffer: %q", b)
	}
	// The alias must be capacity-clipped so appends cannot scribble past it.
	if cap(b) != len(b) {
		t.Fatalf("alias capacity %d exceeds length %d", cap(b), len(b))
	}
}

func TestReaderReset(t *testing.T) {
	r := NewReader(nil)
	r.Byte()
	if r.Err() == nil {
		t.Fatal("expected error on empty buffer")
	}
	r.Reset([]byte{5})
	if got := r.Byte(); got != 5 || r.Err() != nil {
		t.Fatalf("after Reset: byte=%d err=%v", got, r.Err())
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 + 5} {
		if got, want := UvarintLen(v), len(AppendUvarint(nil, v)); got != want {
			t.Fatalf("UvarintLen(%d)=%d, encoded %d", v, got, want)
		}
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern([]byte("solver"))
	b := in.Intern([]byte("solver"))
	if a != "solver" || b != "solver" {
		t.Fatalf("intern: %q %q", a, b)
	}
	if in.Intern(nil) != "" || in.Intern([]byte{}) != "" {
		t.Fatal("empty intern")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if in.Intern([]byte("solver")) != "solver" {
			t.Fatal("intern miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned lookup allocates %v per run", allocs)
	}
}
