package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents exercises every Op and every formatting branch of
// Event.String: copy, skip, single and ranged removes, MATCH / PENDING /
// NO MATCH replies, buddy-help, send, and an unknown op.
var goldenEvents = []Event{
	{Op: OpExportCopy, TS: 1.6},
	{Op: OpExportSkip, TS: 2.6},
	{Op: OpRemove, TS: 1.6, TS2: 1.6},
	{Op: OpRemove, TS: 1.6, TS2: 14.6},
	{Op: OpRequest, Req: 20},
	{Op: OpReply, Req: 20, Result: "MATCH", TS: 19.6},
	{Op: OpReply, Req: 20, Result: "PENDING", Latest: 14.6},
	{Op: OpReply, Req: 20, Result: "NO MATCH", Latest: 14.6},
	{Op: OpBuddyHelp, Req: 20, Result: "MATCH", TS: 19.6},
	{Op: OpSend, TS: 19.6},
	{Op: Op(99)},
}

// TestEventStringGolden pins the paper-style rendering of every event kind
// to testdata/events.golden (regenerate with go test -run Golden -update).
func TestEventStringGolden(t *testing.T) {
	log := NewLog()
	for _, e := range goldenEvents {
		log.Add(e)
	}
	got := log.Format() + "\n"
	path := filepath.Join("testdata", "events.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("event rendering drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}
