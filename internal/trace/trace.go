// Package trace records per-process framework events in the style of the
// paper's scenario figures (Figures 5, 7 and 8): one line per export /
// memcpy / skip / remove / request / reply / buddy-help / send. The
// tracedemo command and the scenario tests regenerate those figures from
// these logs.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Op is the kind of event.
type Op int

// Event kinds, in the vocabulary of the paper's figures.
const (
	// OpExportCopy is an export call that buffered its data ("call memcpy").
	OpExportCopy Op = iota
	// OpExportSkip is an export call that skipped buffering ("skip memcpy").
	OpExportSkip
	// OpRemove is the framework freeing buffered data objects.
	OpRemove
	// OpRequest is the arrival of a forwarded import request.
	OpRequest
	// OpReply is this process's response to a forwarded request.
	OpReply
	// OpBuddyHelp is the arrival of a buddy-help message.
	OpBuddyHelp
	// OpSend is the transfer of matched data to the importer.
	OpSend
)

// Event is one trace line. TS is the data timestamp the event concerns, Req
// the request timestamp when relevant. For OpRemove, TS..TS2 is the range of
// removed timestamps. Result carries the reply/answer spelling (PENDING,
// MATCH, NO MATCH); Latest the "current latest export" in a reply.
type Event struct {
	Op     Op
	TS     float64
	TS2    float64
	Req    float64
	Result string
	Latest float64
}

// String renders the event as one paper-style line.
func (e Event) String() string {
	switch e.Op {
	case OpExportCopy:
		return fmt.Sprintf("export D@%g, call memcpy.", e.TS)
	case OpExportSkip:
		return fmt.Sprintf("export D@%g, skip memcpy.", e.TS)
	case OpRemove:
		if e.TS == e.TS2 {
			return fmt.Sprintf("remove D@%g.", e.TS)
		}
		return fmt.Sprintf("remove D@%g, ..., D@%g.", e.TS, e.TS2)
	case OpRequest:
		return fmt.Sprintf("receive request for D@%g.", e.Req)
	case OpReply:
		if e.Result == "MATCH" {
			return fmt.Sprintf("reply {D@%g, MATCH, D@%g}.", e.Req, e.TS)
		}
		return fmt.Sprintf("reply {D@%g, %s, D@%g}.", e.Req, e.Result, e.Latest)
	case OpBuddyHelp:
		return fmt.Sprintf("receive buddy-help {D@%g, %s, D@%g}.", e.Req, e.Result, e.TS)
	case OpSend:
		return fmt.Sprintf("send D@%g out.", e.TS)
	default:
		return fmt.Sprintf("event(%d)", int(e.Op))
	}
}

// Log is a concurrency-safe append-only event log. A nil *Log is a valid
// no-op sink, so tracing can be disabled without branching at call sites.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends an event; Add on a nil log is a no-op.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a snapshot of the recorded events.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Lines renders every event as a numbered, paper-style line.
func (l *Log) Lines() []string {
	evs := l.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = fmt.Sprintf("%-3d %s", i+1, e.String())
	}
	return out
}

// Format joins Lines with newlines.
func (l *Log) Format() string { return strings.Join(l.Lines(), "\n") }

// Count returns how many events of op were recorded.
func (l *Log) Count(op Op) int {
	n := 0
	for _, e := range l.Events() {
		if e.Op == op {
			n++
		}
	}
	return n
}
