package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Op: OpExportCopy, TS: 1.6}, "export D@1.6, call memcpy."},
		{Event{Op: OpExportSkip, TS: 15.6}, "export D@15.6, skip memcpy."},
		{Event{Op: OpRemove, TS: 1.6, TS2: 14.6}, "remove D@1.6, ..., D@14.6."},
		{Event{Op: OpRemove, TS: 31.6, TS2: 31.6}, "remove D@31.6."},
		{Event{Op: OpRequest, Req: 20}, "receive request for D@20."},
		{Event{Op: OpReply, Req: 20, Result: "PENDING", Latest: 14.6}, "reply {D@20, PENDING, D@14.6}."},
		{Event{Op: OpReply, Req: 20, Result: "MATCH", TS: 19.6}, "reply {D@20, MATCH, D@19.6}."},
		{Event{Op: OpBuddyHelp, Req: 20, Result: "MATCH", TS: 19.6}, "receive buddy-help {D@20, MATCH, D@19.6}."},
		{Event{Op: OpSend, TS: 19.6}, "send D@19.6 out."},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
	if (Event{Op: Op(99)}).String() == "" {
		t.Error("unknown op renders empty")
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Add(Event{Op: OpSend})
	if l.Len() != 0 || l.Events() != nil {
		t.Error("nil log not a no-op")
	}
}

func TestLogAccumulates(t *testing.T) {
	l := NewLog()
	l.Add(Event{Op: OpExportCopy, TS: 1})
	l.Add(Event{Op: OpExportSkip, TS: 2})
	l.Add(Event{Op: OpExportSkip, TS: 3})
	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	if l.Count(OpExportSkip) != 2 || l.Count(OpExportCopy) != 1 || l.Count(OpSend) != 0 {
		t.Error("counts wrong")
	}
	lines := l.Lines()
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "1 ") {
		t.Errorf("lines %v", lines)
	}
	if !strings.Contains(l.Format(), "export D@2, skip memcpy.") {
		t.Errorf("format: %s", l.Format())
	}
}

func TestLogEventsSnapshot(t *testing.T) {
	l := NewLog()
	l.Add(Event{Op: OpSend, TS: 1})
	evs := l.Events()
	l.Add(Event{Op: OpSend, TS: 2})
	if len(evs) != 1 {
		t.Error("snapshot grew")
	}
}

func TestLogConcurrent(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Add(Event{Op: OpExportCopy, TS: float64(j)})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("len %d, want 800", l.Len())
	}
}
