package metrics

import (
	"strings"
	"testing"
	"time"
)

func seriesOf(name string, ns ...int) *Series {
	s := NewSeries(name)
	for _, v := range ns {
		s.Append(time.Duration(v))
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := seriesOf("x", 10, 20, 30)
	if s.Len() != 3 || s.At(1) != 20 || s.Total() != 60 || s.Mean() != 20 {
		t.Errorf("basics wrong: len=%d at1=%v total=%v mean=%v", s.Len(), s.At(1), s.Total(), s.Mean())
	}
	d := s.Durations()
	d[0] = 999
	if s.At(0) != 10 {
		t.Error("Durations not a copy")
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("e")
	if s.Mean() != 0 || s.Total() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series stats nonzero")
	}
	if s.Sparkline(10) != "" {
		t.Error("empty sparkline not empty")
	}
}

func TestPercentile(t *testing.T) {
	s := seriesOf("p", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if got := s.Percentile(50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestWindow(t *testing.T) {
	s := seriesOf("w", 10, 20, 30, 40)
	if got := s.Window(1, 3); got != 25 {
		t.Errorf("window = %v", got)
	}
	if got := s.Window(-5, 100); got != 25 {
		t.Errorf("clamped window = %v", got)
	}
	if got := s.Window(3, 3); got != 0 {
		t.Errorf("empty window = %v", got)
	}
}

func TestMeanOf(t *testing.T) {
	a := seriesOf("a", 10, 20, 30)
	b := seriesOf("b", 30, 40, 50, 60)
	m := MeanOf("m", a, b)
	if m.Len() != 3 {
		t.Fatalf("len %d", m.Len())
	}
	if m.At(0) != 20 || m.At(2) != 40 {
		t.Errorf("means %v %v", m.At(0), m.At(2))
	}
	if MeanOf("none").Len() != 0 {
		t.Error("MeanOf() not empty")
	}
}

// TestMeanOfShortenedRuns pins the unequal-length contract: a chaos- or
// error-shortened run must truncate the mean to the shortest run, never
// index past a short one — whichever argument position it arrives in.
func TestMeanOfShortenedRuns(t *testing.T) {
	long := seriesOf("long", 10, 20, 30, 40, 50)
	short := seriesOf("short", 100, 200)
	for _, runs := range [][]*Series{
		{long, short},
		{short, long},
		{long, short, seriesOf("mid", 1, 2, 3)},
	} {
		m := MeanOf("m", runs...)
		if m.Len() != short.Len() {
			t.Fatalf("MeanOf truncates to %d, want shortest run %d", m.Len(), short.Len())
		}
	}
	// An aborted run with zero iterations empties the mean rather than
	// panicking.
	if got := MeanOf("m", long, NewSeries("aborted")); got.Len() != 0 {
		t.Fatalf("mean over an empty run has %d points, want 0", got.Len())
	}
	if got := MeanOf("m", long); got.Len() != 5 || got.At(4) != 50 {
		t.Fatalf("single-run mean altered the data: %v", got.Durations())
	}
}

// TestWriteCSVMultiShortenedRuns pins the same truncation contract for the
// multi-series CSV writer.
func TestWriteCSVMultiShortenedRuns(t *testing.T) {
	a := seriesOf("a", 1, 2, 3, 4)
	b := seriesOf("b", 9)
	var sb strings.Builder
	if err := WriteCSVMulti(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || lines[1] != "0,1,9" {
		t.Fatalf("csv rows %v, want header plus one row truncated to the shortest series", lines)
	}
}

func TestWriteCSV(t *testing.T) {
	s := seriesOf("exp", 5, 7)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "iteration,exp_ns\n0,5\n1,7\n"
	if sb.String() != want {
		t.Errorf("csv = %q", sb.String())
	}
}

func TestWriteCSVMulti(t *testing.T) {
	a := seriesOf("a", 1, 2)
	b := seriesOf("b", 3, 4, 5)
	var sb strings.Builder
	if err := WriteCSVMulti(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "iteration,a_ns,b_ns" || lines[2] != "1,2,4" {
		t.Errorf("csv lines %v", lines)
	}
	if err := WriteCSVMulti(&sb); err != nil {
		t.Errorf("no-series csv: %v", err)
	}
}

func TestSparkline(t *testing.T) {
	s := seriesOf("s", 1, 1, 1, 1, 100, 100, 100, 100)
	sp := s.Sparkline(4)
	if len([]rune(sp)) != 4 {
		t.Fatalf("width %d", len([]rune(sp)))
	}
	runes := []rune(sp)
	if runes[0] >= runes[3] {
		t.Errorf("sparkline not increasing: %q", sp)
	}
}

func TestSettleIteration(t *testing.T) {
	// A staircase that settles at iteration 60.
	s := NewSeries("settle")
	for i := 0; i < 100; i++ {
		v := 100
		switch {
		case i >= 60:
			v = 10
		case i >= 30:
			v = 50
		}
		s.Append(time.Duration(v))
	}
	got := s.SettleIteration(10, 1.5)
	if got < 55 || got > 65 {
		t.Errorf("settle at %d, want ~60", got)
	}
	// A flat series settles immediately.
	flat := seriesOf("flat", 5, 5, 5, 5, 5, 5)
	if got := flat.SettleIteration(2, 1.5); got != 0 {
		t.Errorf("flat settles at %d, want 0", got)
	}
	if NewSeries("e").SettleIteration(2, 1.5) != 0 {
		t.Error("empty settle not len")
	}
}
