// Package metrics collects per-iteration timing series and aggregates
// repeated runs — the measurement layer behind the paper's Figure 4 plots
// (per-iteration data-export time of the slowest exporter process, averaged
// over several runs).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Series is one run's per-iteration duration series.
type Series struct {
	Name string
	durs []time.Duration
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append records the next iteration's duration.
func (s *Series) Append(d time.Duration) { s.durs = append(s.durs, d) }

// Len returns the number of recorded iterations.
func (s *Series) Len() int { return len(s.durs) }

// At returns iteration i's duration.
func (s *Series) At(i int) time.Duration { return s.durs[i] }

// Durations returns a copy of the raw series.
func (s *Series) Durations() []time.Duration {
	out := make([]time.Duration, len(s.durs))
	copy(out, s.durs)
	return out
}

// Total returns the sum of the series.
func (s *Series) Total() time.Duration {
	var t time.Duration
	for _, d := range s.durs {
		t += d
	}
	return t
}

// Mean returns the mean duration (0 for an empty series).
func (s *Series) Mean() time.Duration {
	if len(s.durs) == 0 {
		return 0
	}
	return s.Total() / time.Duration(len(s.durs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.durs) == 0 {
		return 0
	}
	sorted := s.Durations()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Window returns the mean over iterations [lo, hi).
func (s *Series) Window(lo, hi int) time.Duration {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.durs) {
		hi = len(s.durs)
	}
	if lo >= hi {
		return 0
	}
	var t time.Duration
	for _, d := range s.durs[lo:hi] {
		t += d
	}
	return t / time.Duration(hi-lo)
}

// MeanOf averages multiple equal-length series pointwise (the paper reports
// results from six runs per configuration). Series of different lengths are
// truncated to the shortest.
func MeanOf(name string, runs ...*Series) *Series {
	out := NewSeries(name)
	if len(runs) == 0 {
		return out
	}
	n := runs[0].Len()
	for _, r := range runs[1:] {
		if r.Len() < n {
			n = r.Len()
		}
	}
	for i := 0; i < n; i++ {
		var t time.Duration
		for _, r := range runs {
			t += r.At(i)
		}
		out.Append(t / time.Duration(len(runs)))
	}
	return out
}

// WriteCSV emits "iteration,<name>_ns" rows for plotting.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "iteration,%s_ns\n", s.Name); err != nil {
		return err
	}
	for i, d := range s.durs {
		if _, err := fmt.Fprintf(w, "%d,%d\n", i, d.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVMulti emits one column per series (truncated to the shortest).
func WriteCSVMulti(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	header := "iteration"
	n := series[0].Len()
	for _, s := range series {
		header += "," + s.Name + "_ns"
		if s.Len() < n {
			n = s.Len()
		}
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := fmt.Sprint(i)
		for _, s := range series {
			row += fmt.Sprintf(",%d", s.At(i).Nanoseconds())
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the series as a compact unicode plot (width buckets,
// bucket mean), handy for eyeballing the Figure-4 shape in a terminal.
func (s *Series) Sparkline(width int) string {
	if s.Len() == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	if width > s.Len() {
		width = s.Len()
	}
	buckets := make([]float64, width)
	for b := range buckets {
		lo := b * s.Len() / width
		hi := (b + 1) * s.Len() / width
		if hi == lo {
			hi = lo + 1
		}
		var t time.Duration
		for _, d := range s.durs[lo:hi] {
			t += d
		}
		buckets[b] = float64(t) / float64(hi-lo)
	}
	maxV := buckets[0]
	for _, v := range buckets {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]rune, width)
	for i, v := range buckets {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(ramp)-1))
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

// SettleIteration estimates when the series reaches its settled (final)
// level: the first iteration from which every remaining tail-window mean
// stays within factor x of the final window's mean. It is used to estimate
// the paper's "iterations needed to reach the optimal state" (~400 for the
// 16-process importer, ~25 for 32). Returns Len() if it never settles.
func (s *Series) SettleIteration(window int, factor float64) int {
	n := s.Len()
	if n == 0 || window <= 0 || window > n {
		return n
	}
	final := float64(s.Window(n-window, n))
	if final == 0 {
		final = 1
	}
	// Walk backwards while window means stay within factor of the final.
	settle := n
	for i := n - window; i >= 0; i-- {
		m := float64(s.Window(i, i+window))
		if m <= final*factor {
			settle = i
			continue
		}
		break
	}
	return settle
}
