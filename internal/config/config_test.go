package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/match"
)

// paperExample is the configuration of the paper's Figure 2 (program P4's
// line and connections retained, P2 import corrected to an existing row).
const paperExample = `
P0 cluster0 /home/meou/bin/P0 16 extra0
P1 cluster1 /home/meou/bin/P1 8
P2 cluster1 /home/meou/bin/P2 32
P4 cluster1 /home/meou/bin/P4 4
#
P0.r1 P1.r1 REGL 0.2
P0.r1 P2.r3 REG 0.1
P0.r2 P4.r2 REGU 0.3
`

func TestParsePaperExample(t *testing.T) {
	cfg, err := ParseString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Programs) != 4 || len(cfg.Connections) != 3 {
		t.Fatalf("parsed %d programs, %d connections", len(cfg.Programs), len(cfg.Connections))
	}
	p0, ok := cfg.Program("P0")
	if !ok || p0.Procs != 16 || p0.Cluster != "cluster0" || p0.Binary != "/home/meou/bin/P0" {
		t.Errorf("P0 = %+v", p0)
	}
	if len(p0.Extra) != 1 || p0.Extra[0] != "extra0" {
		t.Errorf("P0 extra = %v", p0.Extra)
	}
	c := cfg.Connections[0]
	if c.Export != (Endpoint{"P0", "r1"}) || c.Import != (Endpoint{"P1", "r1"}) {
		t.Errorf("connection 0 endpoints %+v", c)
	}
	if c.Policy != match.REGL || c.Tolerance != 0.2 {
		t.Errorf("connection 0 policy %v tol %v", c.Policy, c.Tolerance)
	}
	if cfg.Connections[1].Policy != match.REG || cfg.Connections[2].Policy != match.REGU {
		t.Error("policies wrong")
	}
}

func TestExportsImportsOf(t *testing.T) {
	cfg, err := ParseString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.ExportsOf("P0", "r1"); len(got) != 2 {
		t.Errorf("ExportsOf(P0,r1) = %v", got)
	}
	if got := cfg.ExportsOf("P0", "r9"); got != nil {
		t.Errorf("unconnected region has connections: %v", got)
	}
	if got := cfg.ImportsOf("P2", "r3"); len(got) != 1 || got[0].Export.Program != "P0" {
		t.Errorf("ImportsOf(P2,r3) = %v", got)
	}
}

func TestProgramLookupMissing(t *testing.T) {
	cfg, _ := ParseString(paperExample)
	if _, ok := cfg.Program("nope"); ok {
		t.Error("missing program found")
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coupling.cfg")
	if err := os.WriteFile(path, []byte(paperExample), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Programs) != 4 {
		t.Error("file parse differs")
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.cfg")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	cfg, err := ParseString(`
# leading comment
A c /bin/a 1

B c /bin/b 2
#
# connection comment
A.x B.y REGL 1.5
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Programs) != 2 || len(cfg.Connections) != 1 {
		t.Fatalf("%+v", cfg)
	}
}

func TestConnectionString(t *testing.T) {
	c := Connection{
		Export: Endpoint{"A", "x"}, Import: Endpoint{"B", "y"},
		Policy: match.REGL, Tolerance: 2.5,
	}
	if c.String() != "A.x B.y REGL 2.5" {
		t.Errorf("String = %q", c.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"short program line", "A c /bin/a\n#\n"},
		{"bad proc count", "A c /bin/a x\n#\n"},
		{"zero procs", "A c /bin/a 0\n#\n"},
		{"short connection", "A c /bin/a 1\nB c /bin/b 1\n#\nA.x B.y REGL\n"},
		{"bad endpoint", "A c /bin/a 1\nB c /bin/b 1\n#\nAx B.y REGL 1\n"},
		{"endpoint no region", "A c /bin/a 1\nB c /bin/b 1\n#\nA. B.y REGL 1\n"},
		{"bad policy", "A c /bin/a 1\nB c /bin/b 1\n#\nA.x B.y BOGUS 1\n"},
		{"bad tolerance", "A c /bin/a 1\nB c /bin/b 1\n#\nA.x B.y REGL -1\n"},
		{"unknown exporter", "A c /bin/a 1\n#\nZ.x A.y REGL 1\n"},
		{"unknown importer", "A c /bin/a 1\n#\nA.x Z.y REGL 1\n"},
		{"self coupling", "A c /bin/a 1\n#\nA.x A.y REGL 1\n"},
		{"duplicate program", "A c /bin/a 1\nA c /bin/a 1\n#\n"},
		{"double import wiring", "A c /bin/a 1\nB c /bin/b 1\nC c /bin/c 1\n#\nA.x C.z REGL 1\nB.y C.z REGL 1\n"},
		{"duplicate separator", "A c /bin/a 1\n#\n#\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Errorf("accepted: %q", tc.in)
			}
		})
	}
}

func TestSameTimestampDoubleImportAllowed(t *testing.T) {
	// One exported region feeding two different importers is legal (the
	// paper's P0.r1 feeds both P1 and P2); verify no false positive.
	_, err := ParseString("A c /bin/a 1\nB c /bin/b 1\nC c /bin/c 1\n#\nA.x B.y REGL 1\nA.x C.y REGL 2\n")
	if err != nil {
		t.Errorf("fan-out export rejected: %v", err)
	}
}

func TestEndpointString(t *testing.T) {
	if (Endpoint{"P0", "r1"}).String() != "P0.r1" {
		t.Error("endpoint string wrong")
	}
}

func TestWindowedConnectionParses(t *testing.T) {
	cfg, err := ParseString("A c /bin/a 1\nB c /bin/b 1\n#\nA.x B.y REGL 1.5 rect=2:3:7:9\n")
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Connections[0]
	if !c.Windowed() {
		t.Fatal("window not parsed")
	}
	if c.Window.R0 != 2 || c.Window.C0 != 3 || c.Window.R1 != 7 || c.Window.C1 != 9 {
		t.Errorf("window %v", c.Window)
	}
	if got := c.String(); got != "A.x B.y REGL 1.5 rect=2:3:7:9" {
		t.Errorf("String = %q", got)
	}
	// Unwindowed connections remain unwindowed.
	cfg2, err := ParseString("A c /bin/a 1\nB c /bin/b 1\n#\nA.x B.y REGL 1.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Connections[0].Windowed() {
		t.Error("full connection reports a window")
	}
}

func TestWindowedConnectionErrors(t *testing.T) {
	for _, tail := range []string{
		"bogus=1:2:3:4", "rect=1:2:3", "rect=a:2:3:4", "rect=-1:0:3:4", "rect=3:3:3:4", "rect=5:0:2:4",
	} {
		in := "A c /bin/a 1\nB c /bin/b 1\n#\nA.x B.y REGL 1 " + tail + "\n"
		if _, err := ParseString(in); err == nil {
			t.Errorf("accepted %q", tail)
		}
	}
}

func TestParseReaderError(t *testing.T) {
	if _, err := Parse(failingReader{}); err == nil || !strings.Contains(err.Error(), "read") {
		t.Errorf("reader error not surfaced: %v", err)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, os.ErrDeadlineExceeded }
