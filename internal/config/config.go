// Package config parses the framework-level configuration file that couples
// programs together (the paper's Figure 2): a program table followed by a
// "#" separator and the connection specifications. Keeping the coupling
// specification outside the user programs is what makes the framework
// loosely coupled — a program can be re-wired to new partners without
// recompilation (Section 3.1).
//
// File format:
//
//	# comment lines and blank lines are ignored in the program section
//	P0 cluster0 /home/meou/bin/P0 16
//	P1 cluster1 /home/meou/bin/P1 8
//	#
//	P0.r1 P1.r1 REGL 0.2
//	P0.r2 P1.r2 REG  0.1
//
// The single "#" on a line by itself separates the two sections (as in the
// paper's example); within the connection section, lines starting with "#"
// are comments.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/decomp"
	"repro/internal/match"
)

// Program is one row of the program table: a named (possibly parallel)
// simulation component and where/how to launch it.
type Program struct {
	Name    string
	Cluster string
	Binary  string
	Procs   int
	// Extra preserves any trailing fields (launch arguments etc.).
	Extra []string
}

// Endpoint names one region of one program, e.g. "P0.r1".
type Endpoint struct {
	Program string
	Region  string
}

// String renders the endpoint in configuration syntax.
func (e Endpoint) String() string { return e.Program + "." + e.Region }

// Connection couples an exported region to an imported region under a match
// policy and tolerance, e.g. "P0.r1 P1.r1 REGL 0.2". An optional trailing
// "rect=r0:c0:r1:c1" field restricts the transfer to a sub-rectangle of the
// shared index space — the "shared boundaries or the overlapped regions
// between physical models" of the paper's introduction. A zero Window means
// the whole array.
type Connection struct {
	Export    Endpoint
	Import    Endpoint
	Policy    match.Policy
	Tolerance float64
	// Window is the coupled sub-rectangle (global indices, half-open); the
	// zero rectangle couples the full arrays.
	Window decomp.Rect
}

// Windowed reports whether the connection couples only a sub-rectangle.
func (c Connection) Windowed() bool { return !c.Window.Empty() }

// String renders the connection in configuration syntax.
func (c Connection) String() string {
	s := fmt.Sprintf("%s %s %s %g", c.Export, c.Import, c.Policy, c.Tolerance)
	if c.Windowed() {
		s += fmt.Sprintf(" rect=%d:%d:%d:%d", c.Window.R0, c.Window.C0, c.Window.R1, c.Window.C1)
	}
	return s
}

// Config is a parsed coupling configuration.
type Config struct {
	Programs    []Program
	Connections []Connection
}

// Program returns the program table entry with the given name.
func (c *Config) Program(name string) (Program, bool) {
	for _, p := range c.Programs {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// ExportsOf returns the connections exporting from the given program region.
// An exported region with no connections gets the framework's low-overhead
// path (nothing is ever buffered for it).
func (c *Config) ExportsOf(program, region string) []Connection {
	var out []Connection
	for _, conn := range c.Connections {
		if conn.Export.Program == program && conn.Export.Region == region {
			out = append(out, conn)
		}
	}
	return out
}

// ImportsOf returns the connections importing into the given program region.
func (c *Config) ImportsOf(program, region string) []Connection {
	var out []Connection
	for _, conn := range c.Connections {
		if conn.Import.Program == program && conn.Import.Region == region {
			out = append(out, conn)
		}
	}
	return out
}

// Parse reads a configuration from r.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{}
	sc := bufio.NewScanner(r)
	inConnections := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "#" {
			if inConnections {
				return nil, fmt.Errorf("config: line %d: duplicate section separator", lineNo)
			}
			inConnections = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		fields := strings.Fields(line)
		if !inConnections {
			p, err := parseProgram(fields)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: %w", lineNo, err)
			}
			cfg.Programs = append(cfg.Programs, p)
			continue
		}
		conn, err := parseConnection(fields)
		if err != nil {
			return nil, fmt.Errorf("config: line %d: %w", lineNo, err)
		}
		cfg.Connections = append(cfg.Connections, conn)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("config: read: %w", err)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseFile reads a configuration from a file.
func ParseFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// ParseString reads a configuration from a string.
func ParseString(s string) (*Config, error) { return Parse(strings.NewReader(s)) }

func parseProgram(fields []string) (Program, error) {
	if len(fields) < 4 {
		return Program{}, fmt.Errorf("program line needs name cluster binary procs, got %d fields", len(fields))
	}
	procs, err := strconv.Atoi(fields[3])
	if err != nil || procs <= 0 {
		return Program{}, fmt.Errorf("invalid process count %q", fields[3])
	}
	return Program{
		Name:    fields[0],
		Cluster: fields[1],
		Binary:  fields[2],
		Procs:   procs,
		Extra:   append([]string(nil), fields[4:]...),
	}, nil
}

func parseConnection(fields []string) (Connection, error) {
	if len(fields) != 4 && len(fields) != 5 {
		return Connection{}, fmt.Errorf("connection line needs export import policy tolerance [rect=...], got %d fields", len(fields))
	}
	exp, err := parseEndpoint(fields[0])
	if err != nil {
		return Connection{}, err
	}
	imp, err := parseEndpoint(fields[1])
	if err != nil {
		return Connection{}, err
	}
	pol, err := match.ParsePolicy(fields[2])
	if err != nil {
		return Connection{}, err
	}
	tol, err := strconv.ParseFloat(fields[3], 64)
	if err != nil || tol < 0 {
		return Connection{}, fmt.Errorf("invalid tolerance %q", fields[3])
	}
	conn := Connection{Export: exp, Import: imp, Policy: pol, Tolerance: tol}
	if len(fields) == 5 {
		conn.Window, err = parseWindow(fields[4])
		if err != nil {
			return Connection{}, err
		}
	}
	return conn, nil
}

// parseWindow parses "rect=r0:c0:r1:c1".
func parseWindow(s string) (decomp.Rect, error) {
	const prefix = "rect="
	if !strings.HasPrefix(s, prefix) {
		return decomp.Rect{}, fmt.Errorf("unknown connection option %q (want rect=r0:c0:r1:c1)", s)
	}
	parts := strings.Split(s[len(prefix):], ":")
	if len(parts) != 4 {
		return decomp.Rect{}, fmt.Errorf("invalid rect %q (want r0:c0:r1:c1)", s)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return decomp.Rect{}, fmt.Errorf("invalid rect coordinate %q", p)
		}
		vals[i] = v
	}
	r := decomp.NewRect(vals[0], vals[1], vals[2], vals[3])
	if r.Empty() {
		return decomp.Rect{}, fmt.Errorf("empty rect %q", s)
	}
	return r, nil
}

func parseEndpoint(s string) (Endpoint, error) {
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return Endpoint{}, fmt.Errorf("invalid region endpoint %q (want program.region)", s)
	}
	return Endpoint{Program: s[:dot], Region: s[dot+1:]}, nil
}

// validate applies the checks the framework performs at initialization:
// duplicate programs, connections naming unknown programs, self-coupling,
// and duplicate import wiring (an imported region fed by two exporters has
// no defined semantics in the model).
func (c *Config) validate() error {
	seen := map[string]bool{}
	for _, p := range c.Programs {
		if seen[p.Name] {
			return fmt.Errorf("config: duplicate program %q", p.Name)
		}
		seen[p.Name] = true
	}
	imports := map[Endpoint]Endpoint{}
	for _, conn := range c.Connections {
		if !seen[conn.Export.Program] {
			return fmt.Errorf("config: connection %s: unknown exporting program %q", conn, conn.Export.Program)
		}
		if !seen[conn.Import.Program] {
			return fmt.Errorf("config: connection %s: unknown importing program %q", conn, conn.Import.Program)
		}
		if conn.Export.Program == conn.Import.Program {
			return fmt.Errorf("config: connection %s couples a program to itself", conn)
		}
		if prev, dup := imports[conn.Import]; dup {
			return fmt.Errorf("config: imported region %s wired to both %s and %s",
				conn.Import, prev, conn.Export)
		}
		imports[conn.Import] = conn.Export
	}
	return nil
}
