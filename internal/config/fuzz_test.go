package config

import "testing"

// FuzzParse hardens the configuration parser against arbitrary input: it
// must never panic, and anything it accepts must re-validate.
func FuzzParse(f *testing.F) {
	f.Add("P0 c /bin/p 4\nP1 c /bin/q 2\n#\nP0.r P1.r REGL 0.5\n")
	f.Add("A c b 1\nB c b 1\n#\nA.x B.y REG 1 rect=0:0:4:4\n")
	f.Add("#\n")
	f.Add("")
	f.Add("A c b 1\n#\nA.x A.y REGU 0\n")
	f.Add("# comment\nA c b 1\n\n#\n# another\n")
	f.Fuzz(func(t *testing.T, in string) {
		cfg, err := ParseString(in)
		if err != nil {
			return
		}
		// Accepted configurations must be internally consistent.
		seen := map[string]bool{}
		for _, p := range cfg.Programs {
			if p.Procs <= 0 {
				t.Fatalf("accepted program with %d procs", p.Procs)
			}
			if seen[p.Name] {
				t.Fatalf("accepted duplicate program %q", p.Name)
			}
			seen[p.Name] = true
		}
		for _, c := range cfg.Connections {
			if !seen[c.Export.Program] || !seen[c.Import.Program] {
				t.Fatalf("accepted connection to unknown program: %s", c)
			}
			if c.Tolerance < 0 {
				t.Fatalf("accepted negative tolerance: %s", c)
			}
			// String must re-parse to an equivalent connection.
			round, err := ParseString(
				c.Export.Program + " c b 1\n" + c.Import.Program + " c b 1\n#\n" + c.String() + "\n")
			if err != nil {
				t.Fatalf("connection %q does not re-parse: %v", c.String(), err)
			}
			if round.Connections[0].String() != c.String() {
				t.Fatalf("round trip changed %q -> %q", c.String(), round.Connections[0].String())
			}
		}
	})
}
