package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/match"
)

// TestPoolAlternatingSizesHit is the regression test for the freelist bug
// this pool replaces: the old ad-hoc freelist popped candidates and silently
// dropped every one whose length didn't match the request, so alternating
// two block sizes never reused a buffer. With size classes, both sizes keep
// hitting after the first round.
func TestPoolAlternatingSizesHit(t *testing.T) {
	p := NewPool(0)
	sizes := []int{100, 257}
	var held [][]float64
	for round := 0; round < 8; round++ {
		for _, n := range sizes {
			held = append(held, p.Get(n))
		}
		for _, buf := range held {
			p.Put(buf)
		}
		held = held[:0]
	}
	st := p.Stats()
	// Round 1 misses once per size; every later Get must hit.
	wantHits := (8 - 1) * len(sizes)
	if st.Misses != len(sizes) || st.Hits != wantHits {
		t.Fatalf("alternating sizes: hits=%d misses=%d, want hits=%d misses=%d (stats %+v)",
			st.Hits, st.Misses, wantHits, len(sizes), st)
	}
	if st.Discards != 0 {
		t.Fatalf("alternating sizes discarded %d buffers with depth %d", st.Discards, DefaultPoolDepth)
	}
}

// TestManagerAlternatingSizesReusePool drives the same scenario through the
// Manager: buffer-then-evict cycles alternating two region sizes must reuse
// pooled buffers instead of allocating fresh ones each cycle.
func TestManagerAlternatingSizesReusePool(t *testing.T) {
	m, err := NewManager(Config{Policy: match.REG, Tol: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts := 0.0
	sizes := []int{64, 200}
	const rounds = 6
	for round := 0; round < rounds; round++ {
		for _, n := range sizes {
			ts++
			// No requests registered: every export is beyond all known
			// regions and must be buffered.
			res, err := m.Offer(ts, make([]float64, n))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Buffered {
				t.Fatalf("export D@%g not buffered", ts)
			}
		}
		if got := m.Evict(); got != len(sizes) {
			t.Fatalf("Evict freed %d entries, want %d", got, len(sizes))
		}
	}
	st := m.Stats()
	wantHits := (rounds - 1) * len(sizes)
	if st.Pool.Hits != wantHits || st.Pool.Misses != len(sizes) {
		t.Fatalf("manager pool reuse: hits=%d misses=%d, want hits=%d misses=%d",
			st.Pool.Hits, st.Pool.Misses, wantHits, len(sizes))
	}
	if m.BufferedBytes() != 0 {
		t.Fatalf("BufferedBytes=%d after full eviction, want 0", m.BufferedBytes())
	}
}

// TestTransferDoneRecyclesSentBuffers checks the alias lifecycle of matched
// entries: a sent buffer is aliased by its SendItem and must go to the
// garbage collector if freed in that state, but once the consumer calls
// TransferDone (the framework does so after copying the data to the wire),
// freeing the entry recycles the buffer through the pool.
func TestTransferDoneRecyclesSentBuffers(t *testing.T) {
	run := func(ack bool) PoolStats {
		m, err := NewManager(Config{Policy: match.REGL, Tol: 2.5})
		if err != nil {
			t.Fatal(err)
		}
		ts := 0.0
		for i := 0; i < 6; i++ {
			res, err := m.Offer(ts+0.5, make([]float64, 64))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Buffered {
				t.Fatalf("export D@%g not buffered", ts+0.5)
			}
			// The request decides immediately: the previous export is the
			// REGL match and is handed out as a SendItem.
			rr, err := m.OnRequest(ts + 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && len(rr.Sends) != 1 {
				t.Fatalf("cycle %d: %d sends, want 1", i, len(rr.Sends))
			}
			if ack {
				for _, s := range rr.Sends {
					m.TransferDone(s.MatchTS)
				}
			}
			ts++
		}
		return m.Stats().Pool
	}
	acked := run(true)
	if acked.Puts == 0 || acked.Hits == 0 {
		t.Fatalf("acked transfers never recycled: %+v", acked)
	}
	unacked := run(false)
	if unacked.Puts != 0 {
		t.Fatalf("sent buffers recycled while still aliased: %+v", unacked)
	}
	// TransferDone for an unknown or never-sent timestamp is a no-op.
	m, err := NewManager(Config{Policy: match.REGL, Tol: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	m.TransferDone(42)
	if _, err := m.Offer(1, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	m.TransferDone(1)
	if m.Evict() != 1 {
		t.Fatal("entry not evicted")
	}
	if st := m.Stats().Pool; st.Puts != 1 {
		t.Fatalf("never-sent buffer not recycled after spurious TransferDone: %+v", st)
	}
}

// TestPoolBounds checks the pool's memory bounds: class depth caps retention
// and foreign-capacity buffers are discarded rather than polluting a class.
func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	for i := 0; i < 4; i++ {
		p.Put(make([]float64, 8))
	}
	if got := p.Free(); got != 2 {
		t.Fatalf("pool holds %d buffers, want depth bound 2", got)
	}
	if st := p.Stats(); st.Discards != 2 {
		t.Fatalf("discards=%d, want 2", st.Discards)
	}
	// cap 12 is not a power of two: must not enter class 4 (cap 16).
	p.Put(make([]float64, 10, 12))
	if st := p.Stats(); st.Discards != 3 {
		t.Fatalf("foreign-capacity buffer not discarded: %+v", st)
	}
	// Zero-length and nil puts are no-ops.
	p.Put(nil)
	if st := p.Stats(); st.Puts != 5 {
		t.Fatalf("puts=%d, want 5 (nil put not counted)", st.Puts)
	}
	// Oversized requests fall through to the allocator.
	var nilPool *Pool
	if got := len(nilPool.Get(3)); got != 3 {
		t.Fatalf("nil pool Get(3) length %d", got)
	}
	if got := len(p.Get(0)); got != 0 {
		t.Fatalf("Get(0) length %d", got)
	}
}

// TestQuickByteAccountingWithPool is the property test that Manager byte
// accounting stays exact across store/evict/sweep with pooled buffers of
// varying sizes. Unlike TestQuickManagerInvariants (fixed-size objects) it
// exports random sizes, shares one pool across two managers, and evicts.
func TestQuickByteAccountingWithPool(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pool := NewPool(8)
		mgrs := make([]*Manager, 2)
		for i := range mgrs {
			m, err := NewManager(Config{Policy: match.Policy(r.Intn(3)), Tol: r.Float64() * 4, Pool: pool})
			if err != nil {
				return false
			}
			mgrs[i] = m
		}
		type key struct{ mgr, ts int }
		sizeOf := make(map[key]int)
		exportTS := make([]int, len(mgrs))
		requestTS := make([]float64, len(mgrs))
		for step := 0; step < 80; step++ {
			i := r.Intn(len(mgrs))
			m := mgrs[i]
			switch r.Intn(5) {
			case 0, 1, 2: // export a random-size object
				exportTS[i]++
				n := 1 + r.Intn(300)
				sizeOf[key{i, exportTS[i]}] = n
				if _, err := m.Offer(float64(exportTS[i]), make([]float64, n)); err != nil {
					return false
				}
			case 3: // request (increasing)
				requestTS[i] += 0.5 + r.Float64()*4
				if _, err := m.OnRequest(requestTS[i]); err != nil {
					return false
				}
			case 4: // evict everything (dead-importer path)
				m.Evict()
			}
			// Invariant: bytes equals the sum over live entries of 8*len.
			for j, mj := range mgrs {
				var want int64
				live := 0
				for ts := 1; ts <= exportTS[j]; ts++ {
					if mj.Buffered(float64(ts)) {
						live++
						want += int64(8 * sizeOf[key{j, ts}])
					}
				}
				if mj.NumBuffered() != live || mj.BufferedBytes() != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
