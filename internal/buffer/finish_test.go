package buffer

import (
	"testing"

	"repro/internal/match"
)

func TestFinishResolvesPendingWithCandidate(t *testing.T) {
	m := newManager(t, match.REGL, 5, nil)
	offer(t, m, 7) // in the region of the upcoming request
	res := sendRequest(t, m, 10)
	if res.Decision.Result != match.Pending {
		t.Fatalf("decision %v", res.Decision)
	}
	resolutions, sends, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(resolutions) != 1 || resolutions[0].Decision.Result != match.Match ||
		resolutions[0].Decision.MatchTS != 7 {
		t.Fatalf("resolutions %v", resolutions)
	}
	if len(sends) != 1 || sends[0].MatchTS != 7 {
		t.Fatalf("sends %v", sends)
	}
	if !m.Finished() {
		t.Error("not finished")
	}
}

func TestFinishResolvesPendingNoMatch(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	offer(t, m, 2)
	res := sendRequest(t, m, 10) // region [9,10]: empty
	if res.Decision.Result != match.Pending {
		t.Fatalf("decision %v", res.Decision)
	}
	resolutions, sends, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(resolutions) != 1 || resolutions[0].Decision.Result != match.NoMatch {
		t.Fatalf("resolutions %v", resolutions)
	}
	if len(sends) != 0 {
		t.Fatalf("sends %v", sends)
	}
}

func TestRequestAfterFinish(t *testing.T) {
	m := newManager(t, match.REGL, 5, nil)
	offer(t, m, 7)
	offer(t, m, 9)
	if _, _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	// A request whose region holds buffered versions matches the best one.
	res := sendRequest(t, m, 10)
	if res.Decision.Result != match.Match || res.Decision.MatchTS != 9 {
		t.Fatalf("decision %v", res.Decision)
	}
	if len(res.Sends) != 1 || res.Sends[0].MatchTS != 9 {
		t.Fatalf("sends %v", res.Sends)
	}
	// A request beyond everything buffered is NO MATCH immediately.
	res = sendRequest(t, m, 100)
	if res.Decision.Result != match.NoMatch {
		t.Fatalf("far request %v", res.Decision)
	}
}

func TestOfferAfterFinishRejected(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	if _, _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Offer(1, payload(1)); err == nil {
		t.Error("export after Finish accepted")
	}
	if _, _, err := m.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestFinishWithUndeliveredBuddyMatchFails(t *testing.T) {
	m := newManager(t, match.REGL, 2.5, nil)
	res := sendRequest(t, m, 10)
	if _, err := m.OnFinal(res.ReqIndex, match.Match, 9.5); err != nil {
		t.Fatal(err)
	}
	// The peers exported 9.5; finishing without exporting it is a
	// Property 1 violation.
	if _, _, err := m.Finish(); err == nil {
		t.Error("Finish with undelivered match accepted")
	}
}

func TestFinishKeepsExactHitSemantics(t *testing.T) {
	// A request decided before Finish is unaffected.
	m := newManager(t, match.REGL, 2.5, nil)
	offer(t, m, 10)
	res := sendRequest(t, m, 10)
	if res.Decision.Result != match.Match {
		t.Fatalf("decision %v", res.Decision)
	}
	if _, _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Sends != 1 {
		t.Errorf("sends %d", st.Sends)
	}
}
