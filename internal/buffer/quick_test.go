package buffer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/match"
)

// opSequence drives a manager through a random but legal operation sequence
// and checks structural invariants after every step.
func opSequence(seed int64) bool {
	r := rand.New(rand.NewSource(seed))
	policy := match.Policy(r.Intn(3))
	tol := r.Float64() * 6
	m, err := NewManager(Config{Policy: policy, Tol: tol})
	if err != nil {
		return false
	}
	exportTS := 0.0
	requestTS := 0.0
	var pendingReqs []int

	check := func() bool {
		// Invariant: byte accounting matches the live entry set.
		var want int64
		live := 0
		for ts := exportTS; ts > 0; ts-- {
			if m.Buffered(ts) {
				live++
				want += 8 * 3
			}
		}
		if live != m.NumBuffered() || want != m.BufferedBytes() {
			return false
		}
		st := m.Stats()
		// Copies+Skips == Exports; Sends <= Copies; Removes <= Copies.
		if st.Copies+st.Skips != st.Exports {
			return false
		}
		if st.Sends > st.Copies || st.Removes > st.Copies {
			return false
		}
		if st.UnnecessaryCopies > st.Removes {
			return false
		}
		// Live entries + removed == copied.
		if st.Copies-st.Removes != m.NumBuffered() {
			return false
		}
		return true
	}

	for step := 0; step < 60; step++ {
		switch r.Intn(3) {
		case 0, 1: // export (integers so Buffered lookups in check() work)
			exportTS++
			if _, err := m.Offer(exportTS, []float64{exportTS, 0, 0}); err != nil {
				return false
			}
		case 2: // request ahead of the previous one
			requestTS += 1 + r.Float64()*5
			res, err := m.OnRequest(requestTS)
			if err != nil {
				return false
			}
			if res.Decision.Result == match.Pending {
				pendingReqs = append(pendingReqs, res.ReqIndex)
			}
		}
		// Occasionally deliver a truthful buddy answer for a pending request.
		if len(pendingReqs) > 0 && r.Intn(4) == 0 {
			idx := pendingReqs[0]
			x := m.Stats().PerRequest[idx].ReqTS
			// Oracle over the eventual export stream: integers 1..inf; the
			// true match under the policy on the region.
			region := m.Policy().Region(x, m.Tolerance())
			best, found := oracleIntMatch(m.Policy(), x, region.Lo, region.Hi)
			var err error
			if found {
				_, err = m.OnFinal(idx, match.Match, best)
			} else {
				_, err = m.OnFinal(idx, match.NoMatch, 0)
			}
			if err != nil {
				return false
			}
			pendingReqs = pendingReqs[1:]
		}
		if !check() {
			return false
		}
	}
	return true
}

// oracleIntMatch computes the match among the integer export grid 1,2,3,...
// for a request at x with region [lo, hi].
func oracleIntMatch(p match.Policy, x, lo, hi float64) (float64, bool) {
	first := math.Ceil(lo)
	if first < 1 {
		first = 1
	}
	last := math.Floor(hi)
	if first > last {
		return 0, false
	}
	switch p {
	case match.REGL:
		return last, true
	case match.REGU:
		return first, true
	default: // REG: integer closest to x within [first, last], ties earlier
		cand := math.Round(x)
		if cand < first {
			cand = first
		}
		if cand > last {
			cand = last
		}
		// Handle the .5 tie: Round rounds half away from zero; the model
		// breaks ties to the earlier timestamp.
		if math.Abs((cand-1)-x) == math.Abs(cand-x) && cand-1 >= first {
			cand--
		}
		return cand, true
	}
}

// TestQuickManagerInvariants drives random legal operation sequences.
func TestQuickManagerInvariants(t *testing.T) {
	f := func(seed int64) bool { return opSequence(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsMonotone: statistics only grow.
func TestQuickStatsMonotone(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := NewManager(Config{Policy: match.REGL, Tol: 2})
		if err != nil {
			return false
		}
		prev := m.Stats()
		ts, x := 0.0, 0.0
		for i := 0; i < int(steps%40); i++ {
			if r.Intn(2) == 0 {
				ts++
				if _, err := m.Offer(ts, []float64{1}); err != nil {
					return false
				}
			} else {
				x += 1 + r.Float64()
				if _, err := m.OnRequest(x); err != nil {
					return false
				}
			}
			cur := m.Stats()
			if cur.Exports < prev.Exports || cur.Copies < prev.Copies ||
				cur.Skips < prev.Skips || cur.Sends < prev.Sends ||
				cur.Removes < prev.Removes || cur.UnnecessaryCopies < prev.UnnecessaryCopies ||
				cur.CopyTime < prev.CopyTime || cur.UnnecessaryTime < prev.UnnecessaryTime {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
