package buffer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/match"
	"repro/internal/trace"
)

func newManager(t *testing.T, p match.Policy, tol float64, log *trace.Log) *Manager {
	t.Helper()
	m, err := NewManager(Config{Policy: p, Tol: tol, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// payload builds a small distinguishable data object for timestamp ts.
func payload(ts float64) []float64 { return []float64{ts, ts * 2, ts * 3} }

func offer(t *testing.T, m *Manager, ts float64) OfferResult {
	t.Helper()
	res, err := m.Offer(ts, payload(ts))
	if err != nil {
		t.Fatalf("Offer(%g): %v", ts, err)
	}
	return res
}

func sendRequest(t *testing.T, m *Manager, x float64) RequestResult {
	t.Helper()
	res, err := m.OnRequest(x)
	if err != nil {
		t.Fatalf("OnRequest(%g): %v", x, err)
	}
	return res
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{Policy: match.REGL, Tol: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestNoRequestsBuffersEverything(t *testing.T) {
	m := newManager(t, match.REGL, 2.5, nil)
	for ts := 1.0; ts <= 10; ts++ {
		res := offer(t, m, ts)
		if !res.Buffered {
			t.Fatalf("export %g not buffered with no requests", ts)
		}
	}
	if m.NumBuffered() != 10 {
		t.Errorf("buffered %d, want 10", m.NumBuffered())
	}
	st := m.Stats()
	if st.Copies != 10 || st.Skips != 0 || st.Exports != 10 {
		t.Errorf("stats %+v", st)
	}
}

func TestDecreasingExportRejected(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	offer(t, m, 5)
	if _, err := m.Offer(5, payload(5)); err == nil {
		t.Error("repeated timestamp accepted")
	}
	if _, err := m.Offer(4, payload(4)); err == nil {
		t.Error("decreasing timestamp accepted")
	}
}

func TestDecreasingRequestRejected(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	sendRequest(t, m, 10)
	if _, err := m.OnRequest(10); err == nil {
		t.Error("repeated request accepted")
	}
	if _, err := m.OnRequest(9); err == nil {
		t.Error("decreasing request accepted")
	}
}

// TestImporterSlower reproduces the Figure 3(a)/4(a) regime: requests trail
// exports, every export beyond the known horizon is buffered, and old
// buffered objects are freed (unsent, except matches) as requests arrive.
func TestImporterSlower(t *testing.T) {
	m := newManager(t, match.REGL, 2.5, nil)
	for ts := 1.6; ts < 20; ts++ {
		if res := offer(t, m, ts); !res.Buffered {
			t.Fatalf("export %g skipped in importer-slower regime", ts)
		}
	}
	// Request far behind the exports: immediate match.
	res := sendRequest(t, m, 10)
	if res.Decision.Result != match.Match || res.Decision.MatchTS != 9.6 {
		t.Fatalf("decision %v, want MATCH D@9.6", res.Decision)
	}
	if len(res.Sends) != 1 || res.Sends[0].MatchTS != 9.6 {
		t.Fatalf("sends %v", res.Sends)
	}
	// Everything at or below the region's lower bound (7.5) is freed, plus
	// in-region losers dominated by the match.
	if m.Buffered(1.6) || m.Buffered(7.6) || m.Buffered(8.6) {
		t.Error("dominated entries not freed after match")
	}
	for ts := 10.6; ts < 20; ts++ {
		if !m.Buffered(ts) {
			t.Errorf("beyond-horizon entry %g freed prematurely", ts)
		}
	}
}

// TestScenarioFigure7 replays the paper's Figure 7 line by line: REGL,
// tolerance 5.0, buddy-help on. The match D@9.6 is known before the slow
// process exports past 4.6, so every non-match export up to the region is
// skipped.
func TestScenarioFigure7(t *testing.T) {
	log := trace.NewLog()
	m := newManager(t, match.REGL, 5, log)

	offer(t, m, 1.6) // call memcpy
	offer(t, m, 2.6) // call memcpy
	offer(t, m, 3.6) // call memcpy
	res := sendRequest(t, m, 10.0)
	if res.Decision.Result != match.Pending || res.Decision.Latest != 3.6 {
		t.Fatalf("reply %v, want PENDING latest 3.6", res.Decision)
	}
	// Buffered 1.6..3.6 all lie below the region's lower bound 5.0: removed.
	if m.NumBuffered() != 0 {
		t.Fatalf("%d entries retained after request", m.NumBuffered())
	}
	// Buddy-help: the final answer is MATCH D@9.6.
	sends, err := m.OnFinal(res.ReqIndex, match.Match, 9.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sends) != 0 {
		t.Fatalf("premature send %v", sends)
	}
	// Lines 8-11: 4.6 (below region) and 5.6..8.6 (non-match, dominated by
	// the known match) all skip memcpy.
	for _, ts := range []float64{4.6, 5.6, 6.6, 7.6, 8.6} {
		if r := offer(t, m, ts); r.Buffered {
			t.Errorf("export %g buffered, want skip", ts)
		}
	}
	// Lines 12-14: the match itself is buffered and sent.
	r := offer(t, m, 9.6)
	if !r.Buffered || len(r.Sends) != 1 || r.Sends[0].MatchTS != 9.6 {
		t.Fatalf("match export outcome %+v", r)
	}
	// Line 15: 10.6 is beyond the region: buffered for future requests.
	if r := offer(t, m, 10.6); !r.Buffered {
		t.Error("export 10.6 not buffered")
	}

	got := log.Format()
	wantLines := []string{
		"export D@1.6, call memcpy.",
		"export D@2.6, call memcpy.",
		"export D@3.6, call memcpy.",
		"receive request for D@10.",
		"reply {D@10, PENDING, D@3.6}.",
		"remove D@1.6, ..., D@3.6.",
		"receive buddy-help {D@10, MATCH, D@9.6}.",
		"export D@4.6, skip memcpy.",
		"export D@5.6, skip memcpy.",
		"export D@6.6, skip memcpy.",
		"export D@7.6, skip memcpy.",
		"export D@8.6, skip memcpy.",
		"export D@9.6, call memcpy.",
		"send D@9.6 out.",
		"export D@10.6, call memcpy.",
	}
	for i, w := range wantLines {
		lines := log.Lines()
		if i >= len(lines) || !strings.Contains(lines[i], w) {
			t.Fatalf("trace line %d: want %q\nfull trace:\n%s", i+1, w, got)
		}
	}
	// The only memcpys in the region's span are 1.6-3.6 (pre-request) and
	// the match; unnecessary copies = the three pre-request ones.
	st := m.Stats()
	if st.Copies != 5 || st.Skips != 5 || st.Sends != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.UnnecessaryCopies != 3 {
		t.Errorf("unnecessary copies %d, want 3", st.UnnecessaryCopies)
	}
}

// TestScenarioFigure8 replays Figure 8: same configuration but WITHOUT
// buddy-help (no OnFinal). Every in-region export becomes the new best
// candidate and is buffered; the previous candidate is freed; the match is
// only decided when an export passes the region.
func TestScenarioFigure8(t *testing.T) {
	log := trace.NewLog()
	m := newManager(t, match.REGL, 5, log)

	offer(t, m, 1.6)
	offer(t, m, 2.6)
	offer(t, m, 3.6)
	res := sendRequest(t, m, 10.0)
	if res.Decision.Result != match.Pending {
		t.Fatalf("reply %v", res.Decision)
	}
	// Line 7: 4.6 below the region: skip.
	if r := offer(t, m, 4.6); r.Buffered {
		t.Error("4.6 buffered")
	}
	// Lines 8-18: each in-region export is buffered and displaces the
	// previous candidate.
	for _, ts := range []float64{5.6, 6.6, 7.6, 8.6, 9.6} {
		r := offer(t, m, ts)
		if !r.Buffered {
			t.Fatalf("candidate %g not buffered", ts)
		}
		if m.NumBuffered() != 1 {
			t.Fatalf("after %g: %d entries, want 1 (old candidate freed)", ts, m.NumBuffered())
		}
		if len(r.Resolutions) != 0 {
			t.Fatalf("premature resolution at %g: %v", ts, r.Resolutions)
		}
	}
	// Lines 19-21: 10.6 passes the region; the match D@9.6 is decided and
	// sent; 10.6 itself is buffered (beyond the region).
	r := offer(t, m, 10.6)
	if !r.Buffered {
		t.Error("10.6 not buffered")
	}
	if len(r.Resolutions) != 1 || r.Resolutions[0].Decision.Result != match.Match ||
		r.Resolutions[0].Decision.MatchTS != 9.6 {
		t.Fatalf("resolutions %v", r.Resolutions)
	}
	if len(r.Sends) != 1 || r.Sends[0].MatchTS != 9.6 {
		t.Fatalf("sends %v", r.Sends)
	}
	st := m.Stats()
	// memcpys: 1.6,2.6,3.6 + 5.6..9.6 + 10.6 = 9; skips: 4.6 only.
	if st.Copies != 9 || st.Skips != 1 {
		t.Errorf("copies/skips = %d/%d, want 9/1", st.Copies, st.Skips)
	}
	// Unnecessary: 1.6-3.6 and candidates 5.6-8.6 -> 7 (9.6 sent, 10.6 live).
	if st.UnnecessaryCopies != 7 {
		t.Errorf("unnecessary %d, want 7", st.UnnecessaryCopies)
	}
	// T_i for the region of request 10: the four displaced candidates.
	if len(st.PerRequest) != 1 || st.PerRequest[0].UnnecessaryCopies != 4 {
		t.Errorf("per-request stats %+v", st.PerRequest)
	}
}

// TestScenarioFigure5 replays the typical buddy-help scenario of Figure 5
// (REGL, tolerance 2.5, requests at 20 and 40).
func TestScenarioFigure5(t *testing.T) {
	log := trace.NewLog()
	m := newManager(t, match.REGL, 2.5, log)

	// Lines 1-4: exports 1.6 .. 14.6, all buffered (no request yet).
	for ts := 1.6; ts < 14.7; ts++ {
		if r := offer(t, m, ts); !r.Buffered {
			t.Fatalf("pre-request export %g skipped", ts)
		}
	}
	// Lines 5-7: request D@20 -> PENDING, remove D@1.6..D@14.6 (all below
	// the region [17.5, 20]).
	res := sendRequest(t, m, 20)
	if res.Decision.Result != match.Pending || res.Decision.Latest != 14.6 {
		t.Fatalf("reply %v", res.Decision)
	}
	if m.NumBuffered() != 0 {
		t.Fatalf("%d buffered after request", m.NumBuffered())
	}
	// Line 8: buddy-help {D@20, MATCH, D@19.6}.
	if _, err := m.OnFinal(res.ReqIndex, match.Match, 19.6); err != nil {
		t.Fatal(err)
	}
	// Lines 10-13: 15.6..18.6 skip memcpy.
	for _, ts := range []float64{15.6, 16.6, 17.6, 18.6} {
		if r := offer(t, m, ts); r.Buffered {
			t.Errorf("export %g buffered, want skip", ts)
		}
	}
	// Lines 14-16: the match 19.6: memcpy + send.
	r := offer(t, m, 19.6)
	if !r.Buffered || len(r.Sends) != 1 || r.Sends[0].MatchTS != 19.6 {
		t.Fatalf("match export %+v", r)
	}
	// Lines 17-20: 20.6..31.6 beyond the region: memcpy.
	for ts := 20.6; ts < 31.7; ts++ {
		if r := offer(t, m, ts); !r.Buffered {
			t.Fatalf("beyond-horizon export %g skipped", ts)
		}
	}
	// Lines 21-23: request D@40 -> PENDING; remove D@19.6..D@31.6.
	res2 := sendRequest(t, m, 40)
	if res2.Decision.Result != match.Pending || res2.Decision.Latest != 31.6 {
		t.Fatalf("second reply %v", res2.Decision)
	}
	if m.NumBuffered() != 0 {
		t.Fatalf("%d buffered after second request", m.NumBuffered())
	}
	// Line 24: buddy-help {D@40, MATCH, D@39.6}.
	if _, err := m.OnFinal(res2.ReqIndex, match.Match, 39.6); err != nil {
		t.Fatal(err)
	}
	// Lines 26-29: 32.6..38.6 skip (7 skipped memcpys, more than the 4 of
	// the first round: T_i is non-increasing once buddy-help engages).
	skips := 0
	for ts := 32.6; ts < 38.7; ts++ {
		if r := offer(t, m, ts); !r.Buffered {
			skips++
		}
	}
	if skips != 7 {
		t.Errorf("second-round skips = %d, want 7", skips)
	}
	// Lines 30-32: match 39.6 memcpy + send.
	r = offer(t, m, 39.6)
	if !r.Buffered || len(r.Sends) != 1 || r.Sends[0].MatchTS != 39.6 {
		t.Fatalf("second match export %+v", r)
	}
	st := m.Stats()
	if st.Sends != 2 {
		t.Errorf("sends %d, want 2", st.Sends)
	}
	if len(st.PerRequest) != 2 || !st.PerRequest[0].ViaBuddyHelp || !st.PerRequest[1].ViaBuddyHelp {
		t.Errorf("per-request %+v", st.PerRequest)
	}
}

// TestBuddyHelpNoMatch: a buddy-delivered NO MATCH decision frees nothing
// wrongly and later local exports confirm it.
func TestBuddyHelpNoMatch(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	offer(t, m, 1)
	res := sendRequest(t, m, 10) // region [9, 10]
	if res.Decision.Result != match.Pending {
		t.Fatal(res.Decision)
	}
	if _, err := m.OnFinal(res.ReqIndex, match.NoMatch, 0); err != nil {
		t.Fatal(err)
	}
	// Local exports later skip the region entirely, confirming NO MATCH.
	offer(t, m, 8.5)
	r := offer(t, m, 10.5)
	if len(r.Resolutions) != 0 {
		t.Errorf("already-decided request re-resolved: %v", r.Resolutions)
	}
	st := m.Stats()
	if st.PerRequest[0].Result != match.NoMatch {
		t.Errorf("per-request result %v", st.PerRequest[0].Result)
	}
}

// TestBuddyHelpConflictDetected: a buddy answer contradicting the local
// decision is a Property 1 violation.
func TestBuddyHelpConflictDetected(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	offer(t, m, 9.5)
	offer(t, m, 11)
	res := sendRequest(t, m, 10) // decided locally: MATCH D@9.5
	if res.Decision.Result != match.Match {
		t.Fatal(res.Decision)
	}
	if _, err := m.OnFinal(res.ReqIndex, match.Match, 9.9); err == nil {
		t.Error("conflicting buddy answer accepted")
	}
	if _, err := m.OnFinal(res.ReqIndex, match.NoMatch, 0); err == nil {
		t.Error("conflicting buddy NO MATCH accepted")
	}
	// A consistent confirmation is fine.
	if _, err := m.OnFinal(res.ReqIndex, match.Match, 9.5); err != nil {
		t.Errorf("consistent confirmation rejected: %v", err)
	}
}

// TestBuddyVerificationCatchesLies: a wrong buddy answer that cannot be
// checked immediately is caught when local exports reach the region.
func TestBuddyVerificationCatchesLies(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	res := sendRequest(t, m, 10) // region [9, 10], nothing exported yet
	if res.Decision.Result != match.Pending {
		t.Fatal(res.Decision)
	}
	if _, err := m.OnFinal(res.ReqIndex, match.Match, 9.5); err != nil {
		t.Fatal(err)
	}
	// Local exports never produce 9.5: Property-1 check must fire when the
	// region closes.
	offer(t, m, 9.7)
	if _, err := m.Offer(10.5, payload(10.5)); err == nil {
		t.Error("lying buddy answer went undetected")
	}
}

func TestOnFinalValidation(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	if _, err := m.OnFinal(0, match.Match, 1); err == nil {
		t.Error("unknown request accepted")
	}
	res := sendRequest(t, m, 10)
	if _, err := m.OnFinal(res.ReqIndex, match.Pending, 0); err == nil {
		t.Error("PENDING final accepted")
	}
}

// TestSendDataIntegrity: the sent data is the snapshot taken at export time.
func TestSendDataIntegrity(t *testing.T) {
	m := newManager(t, match.REGL, 2.5, nil)
	src := payload(9.6)
	if _, err := m.Offer(9.6, src); err != nil {
		t.Fatal(err)
	}
	src[0] = -999     // mutate the caller's buffer after the export
	offer(t, m, 10.5) // close the upcoming region [7.5, 10]
	res := sendRequest(t, m, 10)
	if len(res.Sends) != 1 {
		t.Fatal("no send")
	}
	if res.Sends[0].Data[0] != 9.6 {
		t.Errorf("send data %v, want snapshot at export time", res.Sends[0].Data)
	}
}

// TestOptimalState reproduces Figure 6: once requests and buddy-help answers
// arrive before the exports they concern, only matched objects are buffered
// and T_i is zero for every subsequent region.
func TestOptimalState(t *testing.T) {
	m := newManager(t, match.REGL, 2.5, nil)
	// Requests and buddy answers arrive ahead of the exports (fast importer
	// and a fast peer process, e.g. via buddy-help).
	for cycle := 0; cycle < 5; cycle++ {
		x := float64(20 * (cycle + 1))
		res := sendRequest(t, m, x)
		if res.Decision.Result != match.Pending {
			t.Fatalf("cycle %d: %v", cycle, res.Decision)
		}
		if _, err := m.OnFinal(res.ReqIndex, match.Match, x-0.4); err != nil {
			t.Fatal(err)
		}
		// Now the 20 exports of this cycle: only the match is copied.
		for k := 0; k < 20; k++ {
			ts := float64(20*cycle) + 0.6 + float64(k)
			r := offer(t, m, ts)
			if ts == x-0.4 {
				if !r.Buffered || len(r.Sends) != 1 {
					t.Fatalf("match %g: %+v", ts, r)
				}
			} else if r.Buffered {
				t.Fatalf("non-match %g buffered in optimal state", ts)
			}
		}
	}
	st := m.Stats()
	if st.Copies != 5 || st.Sends != 5 {
		t.Errorf("copies/sends = %d/%d, want 5/5", st.Copies, st.Sends)
	}
	if st.UnnecessaryCopies != 0 || st.UnnecessaryTime != 0 {
		t.Errorf("unnecessary %d/%v, want zero (optimal state)", st.UnnecessaryCopies, st.UnnecessaryTime)
	}
	for i, pr := range st.PerRequest {
		if pr.Unnecessary != 0 {
			t.Errorf("T_%d = %v, want 0", i, pr.Unnecessary)
		}
	}
}

// TestREGUImmediateMatch: under REGU the first in-region export decides and
// is sent immediately.
func TestREGUImmediateMatch(t *testing.T) {
	m := newManager(t, match.REGU, 3, nil)
	res := sendRequest(t, m, 10) // region [10, 13]
	if res.Decision.Result != match.Pending {
		t.Fatal(res.Decision)
	}
	if r := offer(t, m, 9.5); r.Buffered {
		t.Error("below-region export buffered")
	}
	r := offer(t, m, 11)
	if !r.Buffered || len(r.Resolutions) != 1 || len(r.Sends) != 1 || r.Sends[0].MatchTS != 11 {
		t.Fatalf("first in-region export %+v", r)
	}
	// Later in-region exports are not the match but may serve future REGU
	// requests in (10, ts]; they must be buffered.
	r = offer(t, m, 12)
	if !r.Buffered {
		t.Error("later in-region REGU export skipped; a future request could match it")
	}
}

// TestREGKeepsNonCandidates: under REG an in-region export that does not
// beat the candidate may still match a future request and must be buffered.
func TestREGKeepsNonCandidates(t *testing.T) {
	m := newManager(t, match.REG, 5, nil)
	sendRequest(t, m, 10) // region [5, 15]
	offer(t, m, 9)        // candidate, dist 1
	r := offer(t, m, 14)
	if !r.Buffered {
		t.Error("REG non-candidate in-region export skipped; future request at 14 could match it")
	}
	// And indeed a later request matches it.
	res := sendRequest(t, m, 14)
	// 14 is an exact hit: immediate match.
	if res.Decision.Result != match.Match || res.Decision.MatchTS != 14 {
		t.Fatalf("second request %v", res.Decision)
	}
	if len(res.Sends) != 1 || res.Sends[0].Data[0] != 14 {
		t.Fatalf("second request sends %v", res.Sends)
	}
}

// TestOverlappingRegionsSameMatch: two overlapping REGL regions can match
// the same timestamp; the entry must survive until both transfers happen.
func TestOverlappingRegionsSameMatch(t *testing.T) {
	m := newManager(t, match.REGL, 5, nil)
	offer(t, m, 9.6)
	offer(t, m, 10.4)
	res1 := sendRequest(t, m, 10) // region [5,10]: match 9.6
	if res1.Decision.MatchTS != 9.6 || len(res1.Sends) != 1 {
		t.Fatalf("first: %v sends %v", res1.Decision, res1.Sends)
	}
	offer(t, m, 11.5)
	res2 := sendRequest(t, m, 11) // region [6,11]: match 10.4
	if res2.Decision.MatchTS != 10.4 || len(res2.Sends) != 1 {
		t.Fatalf("second: %v sends %v", res2.Decision, res2.Sends)
	}
}

func TestFiniteBufferOverflow(t *testing.T) {
	m, err := NewManager(Config{Policy: match.REGL, Tol: 2.5, MaxBytes: 8 * 3 * 4}) // room for 4 entries
	if err != nil {
		t.Fatal(err)
	}
	for ts := 1.0; ts <= 4; ts++ {
		if _, err := m.Offer(ts, payload(ts)); err != nil {
			t.Fatalf("Offer(%g): %v", ts, err)
		}
	}
	// Fifth export with no requests: everything is live, nothing freeable.
	_, err = m.Offer(5, payload(5))
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
}

func TestFiniteBufferRecoversAfterFrees(t *testing.T) {
	m, err := NewManager(Config{Policy: match.REGL, Tol: 0.5, MaxBytes: 8 * 3 * 4})
	if err != nil {
		t.Fatal(err)
	}
	for ts := 1.0; ts <= 4; ts++ {
		if _, err := m.Offer(ts, payload(ts)); err != nil {
			t.Fatal(err)
		}
	}
	// A request whose region [9.5, 10] is above everything buffered frees
	// the stale entries (all below the new lower bound).
	if _, err := m.OnRequest(10); err != nil {
		t.Fatal(err)
	}
	if m.NumBuffered() != 0 {
		t.Fatalf("%d entries after freeing request", m.NumBuffered())
	}
	if _, err := m.Offer(20, payload(20)); err != nil {
		t.Fatalf("post-free offer: %v", err)
	}
}

func TestBufferedBytesAccounting(t *testing.T) {
	m := newManager(t, match.REGL, 1, nil)
	offer(t, m, 1)
	offer(t, m, 2)
	if m.BufferedBytes() != 2*8*3 {
		t.Errorf("bytes %d", m.BufferedBytes())
	}
	sendRequest(t, m, 10) // frees both (below region [9,10])
	if m.BufferedBytes() != 0 {
		t.Errorf("bytes after free %d", m.BufferedBytes())
	}
	st := m.Stats()
	if st.BytesCopied != 2*8*3 {
		t.Errorf("bytes copied %d", st.BytesCopied)
	}
	if st.Removes != 2 || st.UnnecessaryCopies != 2 {
		t.Errorf("removes/unnecessary = %d/%d", st.Removes, st.UnnecessaryCopies)
	}
}

// TestPropertyNeverLoseMatch drives random interleavings of exports and
// requests (with and without buddy-help) and asserts the fundamental safety
// property: every request that resolves to MATCH produces exactly one send
// whose payload is the data exported at the matched timestamp.
func TestPropertyNeverLoseMatch(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		policy := match.Policy(r.Intn(3))
		tol := 0.5 + r.Float64()*4
		useBuddy := r.Intn(2) == 0

		m, err := NewManager(Config{Policy: policy, Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		// The "fastest process": a plain matcher fed the same exports in
		// advance, standing in for the peer whose answer buddy-help relays.
		fast, err := match.New(policy, tol)
		if err != nil {
			t.Fatal(err)
		}
		exports := make([]float64, 60)
		ts := 0.0
		for i := range exports {
			ts += 0.1 + r.Float64()
			exports[i] = ts
		}
		for _, e := range exports {
			if err := fast.AddExport(e); err != nil {
				t.Fatal(err)
			}
		}

		type reqInfo struct {
			idx     int
			x       float64
			decided bool
			result  match.Result
			matchTS float64
			sends   int
		}
		var reqs []*reqInfo
		collect := func(sends []SendItem) {
			for _, s := range sends {
				ri := reqs[s.ReqIndex]
				ri.sends++
				if s.MatchTS != s.Data[0] {
					t.Fatalf("seed %d: send data[0]=%v for match %v", seed, s.Data[0], s.MatchTS)
				}
			}
		}
		record := func(idx int, d match.Decision) {
			ri := reqs[idx]
			ri.decided = true
			ri.result = d.Result
			ri.matchTS = d.MatchTS
		}

		nextExport := 0
		x := 0.0
		for nextExport < len(exports) {
			if r.Intn(3) == 0 && len(reqs) < 10 {
				// Issue a request somewhere ahead of the current position.
				x += 0.2 + r.Float64()*6
				res, err := m.OnRequest(x)
				if err != nil {
					t.Fatalf("seed %d OnRequest: %v", seed, err)
				}
				reqs = append(reqs, &reqInfo{idx: res.ReqIndex, x: x})
				if res.Decision.Result != match.Pending {
					record(res.ReqIndex, res.Decision)
				}
				collect(res.Sends)
				// Maybe deliver buddy-help using the fast process's answer.
				if useBuddy && res.Decision.Result == match.Pending {
					fd := fast.Evaluate(x)
					if fd.Result != match.Pending {
						sends, err := m.OnFinal(res.ReqIndex, fd.Result, fd.MatchTS)
						if err != nil {
							t.Fatalf("seed %d OnFinal: %v", seed, err)
						}
						record(res.ReqIndex, fd)
						collect(sends)
					}
				}
				continue
			}
			e := exports[nextExport]
			nextExport++
			// Requests must keep increasing; ensure future request base
			// stays ahead of issued ones.
			if e > x {
				x = e
			}
			res, err := m.Offer(e, payload(e))
			if err != nil {
				t.Fatalf("seed %d Offer(%g): %v", seed, e, err)
			}
			for _, rs := range res.Resolutions {
				record(rs.ReqIndex, rs.Decision)
			}
			collect(res.Sends)
		}

		// Every request decidable from the full export set must agree with
		// the oracle, and matched ones must have sent exactly once.
		for _, ri := range reqs {
			oracle := match.Evaluate(policy, tol, ri.x, exports)
			if oracle.Result == match.Pending {
				continue
			}
			if !ri.decided {
				continue // decision may legitimately still be pending if exports ended early
			}
			if ri.result != oracle.Result || (oracle.Result == match.Match && ri.matchTS != oracle.MatchTS) {
				t.Fatalf("seed %d: request %g decided %v/%g, oracle %v", seed, ri.x, ri.result, ri.matchTS, oracle)
			}
			if ri.result == match.Match && ri.sends != 1 {
				t.Fatalf("seed %d: request %g matched but sent %d times", seed, ri.x, ri.sends)
			}
		}
	}
}

// TestPropertyBuddyHelpOnlyReducesCopies: for identical export/request
// streams, enabling buddy-help never increases the number of memcpys and
// never changes which timestamps get transferred.
func TestPropertyBuddyHelpOnlyReducesCopies(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		tol := 1 + r.Float64()*4
		period := 2 + r.Intn(6)

		run := func(buddy bool) (Stats, []float64) {
			m, err := NewManager(Config{Policy: match.REGL, Tol: tol})
			if err != nil {
				t.Fatal(err)
			}
			// The fast peer process: it exports the same timestamp sequence
			// but runs far ahead, so its matcher can already decide any
			// request the slow process sees.
			fast, _ := match.New(match.REGL, tol)
			for k := 1; k <= 200; k++ {
				if err := fast.AddExport(float64(k)); err != nil {
					t.Fatal(err)
				}
			}
			var sent []float64
			ts := 0.0
			for i := 0; i < 80; i++ {
				ts++ // the slow process's export grid: 1, 2, 3, ...
				if i%period == 0 {
					x := ts + tol/2 + 1
					res, err := m.OnRequest(x)
					if err != nil {
						t.Fatalf("seed %d request: %v", seed, err)
					}
					for _, s := range res.Sends {
						sent = append(sent, s.MatchTS)
					}
					if buddy && res.Decision.Result == match.Pending {
						fd := fast.Evaluate(x)
						if fd.Result != match.Pending {
							sends, err := m.OnFinal(res.ReqIndex, fd.Result, fd.MatchTS)
							if err != nil {
								t.Fatalf("seed %d buddy: %v", seed, err)
							}
							for _, s := range sends {
								sent = append(sent, s.MatchTS)
							}
						}
					}
				}
				res, err := m.Offer(ts, payload(ts))
				if err != nil {
					t.Fatalf("seed %d offer: %v", seed, err)
				}
				for _, s := range res.Sends {
					sent = append(sent, s.MatchTS)
				}
			}
			// Drain: keep exporting past every region so all requests
			// resolve in both runs (no end-of-run truncation).
			for ts < 100 {
				ts++
				res, err := m.Offer(ts, payload(ts))
				if err != nil {
					t.Fatalf("seed %d drain: %v", seed, err)
				}
				for _, s := range res.Sends {
					sent = append(sent, s.MatchTS)
				}
			}
			return m.Stats(), sent
		}

		without, sentWithout := run(false)
		with, sentWith := run(true)
		if with.Copies > without.Copies {
			t.Fatalf("seed %d: buddy-help increased copies %d -> %d", seed, without.Copies, with.Copies)
		}
		if fmt.Sprint(sentWith) != fmt.Sprint(sentWithout) {
			t.Fatalf("seed %d: transfers differ with buddy-help: %v vs %v", seed, sentWith, sentWithout)
		}
	}
}

func TestAccessors(t *testing.T) {
	m := newManager(t, match.REG, 1.5, nil)
	if m.Policy() != match.REG || m.Tolerance() != 1.5 {
		t.Error("accessors wrong")
	}
	if m.Latest() != match.NoExports {
		t.Error("Latest before exports")
	}
	offer(t, m, 3)
	if m.Latest() != 3 {
		t.Error("Latest after export")
	}
	if !m.Buffered(3) || m.Buffered(4) {
		t.Error("Buffered lookup wrong")
	}
	if math.IsNaN(m.BufferedBytesFraction()) {
		t.Error("fraction NaN")
	}
}
