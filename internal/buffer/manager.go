// Package buffer implements the exporter-side version buffer of the coupling
// framework: the per-process, per-connection state machine that decides, for
// every export call, whether the framework must copy ("memcpy") the data
// object into its buffer or may skip the copy because the object can never be
// a match — the decision the paper's buddy-help optimization improves.
//
// The Manager reproduces the buffering rules of the paper's Figures 5, 7 and
// 8 exactly:
//
//   - An export beyond every known acceptable region is buffered (a future
//     request might want it — Figure 3(a)).
//   - An export inside an undecided acceptable region becomes the current
//     best candidate and is buffered; the candidate it replaces is freed
//     (Figure 8, lines 9-18).
//   - An export that cannot be the match of any current or future request is
//     skipped. This includes everything below the newest region's lower
//     bound, and — once the match for a region is known, locally or via a
//     buddy-help message — every non-match timestamp dominated by that known
//     match (Figure 5 lines 10-13, Figure 7 lines 8-11).
//   - The matched object is buffered and handed out for sending; freed
//     buffered objects that were never sent accumulate the paper's
//     unnecessary-buffering time T_i / T_ub (Equations (1)-(2)).
//
// A Manager handles one connection of one exporter process and is not safe
// for concurrent use; the framework layer serializes access.
package buffer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/match"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ErrBufferFull is returned by Offer when a finite-capacity buffer cannot
// hold a data object that the correctness rules require it to keep.
var ErrBufferFull = errors.New("buffer: capacity exhausted by live data objects")

// Entry is one buffered data object version.
type Entry struct {
	TS       float64
	Data     []float64
	CopyTime time.Duration
	Sent     bool
	// pendingTransfers counts SendItems handed out whose consumers have not
	// yet called TransferDone: while nonzero, Data is aliased outside the
	// manager and must not be recycled into the pool when the entry is freed.
	pendingTransfers int
}

// request tracks one import request's lifecycle inside the manager.
type request struct {
	index   int
	x       float64
	region  match.Interval
	decided bool
	result  match.Result
	matchTS float64
	// viaBuddy records that the decision arrived as a buddy-help message
	// before this process could decide locally.
	viaBuddy bool
	// verified records that a buddy-delivered decision was later confirmed
	// by this process's own exports (Property-1 self check).
	verified bool
	// dataSent records that the matched object was handed out for transfer.
	dataSent bool
	// released records that the importer has checkpointed past this request,
	// so its matched version no longer needs retention for crash resync
	// (meaningful only under Config.Retain).
	released bool
	// candTS is the current best in-region candidate while undecided
	// (NaN when none).
	candTS float64
	// unnecessary accumulates T_i: copy time of objects buffered for this
	// region and freed without being sent.
	unnecessary       time.Duration
	unnecessaryCopies int
}

// Config configures a Manager.
type Config struct {
	// Policy and Tol define the connection's acceptable regions.
	Policy match.Policy
	Tol    float64
	// Log, when non-nil, receives paper-style trace events.
	Log *trace.Log
	// MaxBytes bounds the buffer size (0 = unbounded). This implements the
	// paper's future-work item on finite buffer space: Offer fails with
	// ErrBufferFull when live objects exceed the bound.
	MaxBytes int64
	// Snapshot, when non-nil, supplies the buffered copy of an offered
	// object instead of the manager copying it. The framework uses it to
	// share one physical copy among the managers of a fanned-out export
	// region (one memcpy however many importers are wired). The manager
	// still times the call — the first manager to buffer a version pays the
	// copy, the others get it for free.
	Snapshot func(ts float64, data []float64) []float64
	// Release is called whenever the manager frees an entry obtained from
	// Snapshot (the refcounting hook paired with it).
	Release func(ts float64)
	// Pool, when non-nil, supplies the buffer recycling pool. The framework
	// passes one pool per process so every connection's manager shares the
	// same free buffers; nil gives the manager a private pool.
	Pool *Pool
	// Retain keeps matched-and-sent versions buffered until ReleaseThrough
	// says the importer checkpointed past them, so a restarted importer can
	// have them resent. Without it (the default) a sent version is freed as
	// soon as the normal retention rules allow.
	Retain bool
	// Now overrides the clock; nil means the wall clock. The framework wires
	// in its injected clock (core.Options.Clock) here.
	Now func() time.Time
}

// Manager is the export pipeline state machine for one connection.
type Manager struct {
	cfg     Config
	matcher *match.Matcher

	entries map[float64]*Entry
	bytes   int64
	// pool recycles released data slices in power-of-two size classes,
	// keeping steady-state buffering free of allocation and GC churn — the
	// memcpy alone is what Figure 4 measures. (It replaces an ad-hoc
	// freelist that dropped every popped candidate whose length mismatched,
	// so reuse stopped after any region-size change.)
	pool *Pool
	// entryFree recycles Entry structs so the buffered-export hot path does
	// zero heap allocation at steady state.
	entryFree []*Entry
	// sweepScratch is reused by sweep for the removed-timestamp list.
	sweepScratch []float64

	requests []*request
	// newestLo/newestHi cache the newest request's acceptable region; the
	// model requires request timestamps to be increasing, so future regions
	// lie strictly above newestLo.
	newestLo, newestHi, newestX float64

	// finished records that no further exports will occur (Finish), which
	// lets every pending and future request decide immediately.
	finished bool

	stats Stats
}

// Stats aggregates the manager's buffering behaviour; its fields map onto
// the quantities the paper's evaluation reports.
type Stats struct {
	// Exports counts Offer calls; Copies/Skips split them by outcome.
	Exports, Copies, Skips int
	// Sends counts matched objects handed out for transfer; Removes counts
	// freed buffer entries.
	Sends, Removes int
	// TransferDones counts TransferDone calls. The pipeline contract is one
	// call per SendItem, so after a drain barrier TransferDones == Sends —
	// the invariant the chaos harness asserts.
	TransferDones int
	// UnnecessaryCopies counts buffered objects freed without being sent.
	UnnecessaryCopies int
	// BytesCopied totals the bytes memcpy'd into the buffer.
	BytesCopied int64
	// CopyTime totals time spent copying; UnnecessaryTime is the subset
	// spent on objects later freed unsent (the paper's T_ub).
	CopyTime, UnnecessaryTime time.Duration
	// Pool snapshots the buffer pool's hit/miss counters. When the
	// framework shares one pool among a process's managers, every manager
	// reports the same (process-wide) pool counters.
	Pool PoolStats
	// PerRequest holds one record per import request, in arrival order.
	PerRequest []RequestStats
}

// RequestStats is the per-acceptable-region slice of Stats (T_i in the
// paper's Equation (1)).
type RequestStats struct {
	ReqTS             float64
	Result            match.Result
	MatchTS           float64
	ViaBuddyHelp      bool
	Unnecessary       time.Duration
	UnnecessaryCopies int
}

// SendItem is a matched data object ready for transfer to the importer.
// Data aliases the buffered copy; the caller must treat it as read-only.
type SendItem struct {
	ReqIndex int
	ReqTS    float64
	MatchTS  float64
	Data     []float64
	CopyTime time.Duration
}

// Resolution reports that a previously PENDING request became locally
// decidable (the caller forwards it to the rep as an updated response).
type Resolution struct {
	ReqIndex int
	ReqTS    float64
	Decision match.Decision
}

// OfferResult reports everything one export call caused.
type OfferResult struct {
	// Buffered is true when the framework copied the object ("call memcpy").
	Buffered bool
	// CopyTime is the wall time of that copy (zero when skipped).
	CopyTime time.Duration
	// Resolutions lists requests this export made locally decidable.
	Resolutions []Resolution
	// Sends lists matched objects now ready for transfer (including, when
	// this export *is* a known match, the object just buffered).
	Sends []SendItem
}

// RequestResult reports the immediate outcome of a new import request.
type RequestResult struct {
	ReqIndex int
	Decision match.Decision
	Sends    []SendItem
}

// NewManager returns a manager for one connection.
func NewManager(cfg Config) (*Manager, error) {
	matcher, err := match.New(cfg.Policy, cfg.Tol)
	if err != nil {
		return nil, err
	}
	if cfg.Now == nil {
		cfg.Now = vclock.Wall.Now
	}
	pool := cfg.Pool
	if pool == nil {
		pool = NewPool(0)
	}
	return &Manager{
		cfg:      cfg,
		matcher:  matcher,
		pool:     pool,
		entries:  make(map[float64]*Entry),
		newestLo: math.Inf(-1),
		newestHi: math.Inf(-1),
		newestX:  math.Inf(-1),
	}, nil
}

// Pool returns the manager's buffer pool (shared across a process's
// managers when Config.Pool was set).
func (m *Manager) Pool() *Pool { return m.pool }

// Policy returns the connection's match policy.
func (m *Manager) Policy() match.Policy { return m.cfg.Policy }

// Tolerance returns the connection's tolerance.
func (m *Manager) Tolerance() float64 { return m.cfg.Tol }

// NumBuffered returns the number of live buffered objects.
func (m *Manager) NumBuffered() int { return len(m.entries) }

// BufferedBytes returns the bytes held by live buffered objects.
func (m *Manager) BufferedBytes() int64 { return m.bytes }

// BufferedBytesFraction returns the fraction of a finite buffer in use
// (0 when the buffer is unbounded).
func (m *Manager) BufferedBytesFraction() float64 {
	if m.cfg.MaxBytes <= 0 {
		return 0
	}
	return float64(m.bytes) / float64(m.cfg.MaxBytes)
}

// Buffered reports whether a version with timestamp ts is held.
func (m *Manager) Buffered(ts float64) bool {
	_, ok := m.entries[ts]
	return ok
}

// Stats returns a snapshot of the accumulated statistics.
func (m *Manager) Stats() Stats {
	out := m.stats
	out.Pool = m.pool.Stats()
	out.PerRequest = make([]RequestStats, len(m.requests))
	for i, r := range m.requests {
		out.PerRequest[i] = RequestStats{
			ReqTS:             r.x,
			Result:            r.result,
			MatchTS:           r.matchTS,
			ViaBuddyHelp:      r.viaBuddy,
			Unnecessary:       r.unnecessary,
			UnnecessaryCopies: r.unnecessaryCopies,
		}
	}
	return out
}

// Latest returns the latest exported timestamp (match.NoExports if none).
func (m *Manager) Latest() float64 { return m.matcher.Latest() }

// Finish declares that this process will export no further versions of the
// region. Every pending request decides immediately — MATCH on its current
// best candidate if one exists, NO MATCH otherwise — and future requests
// resolve against the buffered versions alone. Finish is collective, like
// Export: either every process of the program calls it or none does.
// Resolutions for previously pending requests are returned so the caller can
// report them; Sends carry any matches that can now be transferred.
func (m *Manager) Finish() ([]Resolution, []SendItem, error) {
	if m.finished {
		return nil, nil, errors.New("buffer: Finish called twice")
	}
	// A buddy-delivered match this process never exported means its peers
	// exported timestamps it did not — finishing now violates Property 1.
	for _, r := range m.requests {
		if r.decided && r.result == match.Match && !r.dataSent {
			return nil, nil, fmt.Errorf(
				"buffer: Property 1 violation: Finish before exporting the matched D@%g of request D@%g",
				r.matchTS, r.x)
		}
	}
	m.finished = true
	var resolutions []Resolution
	var sends []SendItem
	for _, r := range m.requests {
		if r.decided {
			continue
		}
		d := m.closedDecision(r)
		resolutions = append(resolutions, Resolution{ReqIndex: r.index, ReqTS: r.x, Decision: d})
		m.cfg.Log.Add(replyEvent(r.x, d))
		sends = append(sends, m.decide(r, d.Result, d.MatchTS, false)...)
	}
	m.sweep()
	return resolutions, sends, nil
}

// Finished reports whether Finish has been called.
func (m *Manager) Finished() bool { return m.finished }

// Evict frees every buffered entry regardless of the retention rules and
// returns how many were dropped. It is the framework's response to a dead
// importer: no buffered version of this connection can ever be sent, so
// holding them would grow the buffer without bound while the exporter keeps
// running. Entries freed unsent still count toward the unnecessary-buffering
// statistics — they were real copies the coupling never used.
func (m *Manager) Evict() int {
	n := 0
	for _, e := range m.entries {
		m.free(e)
		n++
	}
	return n
}

// TransferDone tells the manager that one SendItem for the version at ts
// has been fully consumed (its data copied to the wire), releasing that
// alias of the buffered slice. Once every hand-out of an entry is done, the
// buffer re-enters the pool when the entry is freed, which keeps the
// steady-state export path allocation-free even when every version is
// matched and transferred. Callers must invoke it exactly once per
// SendItem; a ts whose entry is already gone is ignored (the entry was
// evicted mid-transfer and its buffer left to the garbage collector).
func (m *Manager) TransferDone(ts float64) {
	m.stats.TransferDones++
	if e, ok := m.entries[ts]; ok && e.pendingTransfers > 0 {
		e.pendingTransfers--
	}
}

// closedDecision resolves a request knowing no further exports will come:
// the match is the best buffered in-region version, if any. (Any in-region
// export that was skipped or freed is provably dominated by a buffered one —
// see the retention rules — so the buffered set suffices.)
func (m *Manager) closedDecision(r *request) match.Decision {
	d := match.Decision{Latest: m.matcher.Latest(), Region: r.region}
	best := m.currentCandidate(r)
	if math.IsNaN(best) {
		d.Result = match.NoMatch
		return d
	}
	d.Result = match.Match
	d.MatchTS = best
	return d
}

// OnRequest registers a new import request at timestamp x (request
// timestamps must be increasing), evaluates it against the exports seen so
// far, and returns the decision this process reports to its rep.
func (m *Manager) OnRequest(x float64) (RequestResult, error) {
	if len(m.requests) > 0 && x <= m.requests[len(m.requests)-1].x {
		return RequestResult{}, fmt.Errorf(
			"buffer: request timestamp %g not greater than previous %g (the model requires increasing requests)",
			x, m.requests[len(m.requests)-1].x)
	}
	r := &request{
		index:  len(m.requests),
		x:      x,
		region: m.cfg.Policy.Region(x, m.cfg.Tol),
		candTS: math.NaN(),
	}
	m.requests = append(m.requests, r)
	m.newestLo, m.newestHi, m.newestX = r.region.Lo, r.region.Hi, x

	m.cfg.Log.Add(trace.Event{Op: trace.OpRequest, Req: x})

	d := m.matcher.Evaluate(x)
	if d.Result == match.Pending && m.finished {
		// No further exports: decide from the buffered versions.
		d = m.closedDecision(r)
	}
	res := RequestResult{ReqIndex: r.index, Decision: d}
	m.cfg.Log.Add(replyEvent(x, d))

	var sends []SendItem
	switch d.Result {
	case match.Match:
		sends = m.decide(r, match.Match, d.MatchTS, false)
	case match.NoMatch:
		sends = m.decide(r, match.NoMatch, 0, false)
	default:
		// Pending: seed the candidate from buffered in-region entries.
		r.candTS = m.currentCandidate(r)
	}
	res.Sends = sends
	m.sweep()
	return res, nil
}

// OnFinal applies the rep's final answer for a request this process reported
// PENDING (the buddy-help message). If the process has already decided
// locally, the answers must agree — disagreement is a Property-1 violation.
func (m *Manager) OnFinal(reqIndex int, result match.Result, matchTS float64) ([]SendItem, error) {
	if reqIndex < 0 || reqIndex >= len(m.requests) {
		return nil, fmt.Errorf("buffer: OnFinal for unknown request %d", reqIndex)
	}
	r := m.requests[reqIndex]
	if result == match.Pending {
		return nil, fmt.Errorf("buffer: OnFinal with PENDING for request %d", reqIndex)
	}
	if r.decided {
		if r.result != result || (result == match.Match && r.matchTS != matchTS) {
			return nil, fmt.Errorf(
				"buffer: Property 1 violation: request D@%g decided %v/D@%g locally but %v/D@%g collectively",
				r.x, r.result, r.matchTS, result, matchTS)
		}
		return nil, nil
	}
	m.cfg.Log.Add(trace.Event{Op: trace.OpBuddyHelp, Req: r.x, Result: result.String(), TS: matchTS})
	sends := m.decide(r, result, matchTS, true)
	m.sweep()
	return sends, nil
}

// Offer processes one export call: it records the timestamp, resolves any
// requests this export decides, applies the buffer/skip rule (copying data
// when buffering is required), and releases newly freeable entries.
func (m *Manager) Offer(ts float64, data []float64) (OfferResult, error) {
	if m.finished {
		return OfferResult{}, fmt.Errorf("buffer: export D@%g after Finish", ts)
	}
	if err := m.matcher.AddExport(ts); err != nil {
		return OfferResult{}, err
	}
	m.stats.Exports++

	var out OfferResult

	// 1. Re-evaluate undecided requests: this export may close their
	// regions. Also update candidates for requests still pending.
	for _, r := range m.requests {
		if r.decided {
			continue
		}
		if r.region.Contains(ts) && m.beatsCandidate(r, ts) {
			r.candTS = ts
		}
		d := m.matcher.Evaluate(r.x)
		if d.Result == match.Pending {
			continue
		}
		out.Resolutions = append(out.Resolutions, Resolution{ReqIndex: r.index, ReqTS: r.x, Decision: d})
		m.cfg.Log.Add(replyEvent(r.x, d))
		out.Sends = append(out.Sends, m.decide(r, d.Result, d.MatchTS, false)...)
	}
	// Verify earlier buddy-delivered decisions once our own exports suffice
	// to check them (Property-1 self check).
	if err := m.verifyBuddyDecisions(); err != nil {
		return OfferResult{}, err
	}

	// 2. Buffer-or-skip decision for the new object.
	if m.needed(ts) {
		e, err := m.store(ts, data)
		if err != nil {
			return OfferResult{}, err
		}
		out.Buffered = true
		out.CopyTime = e.CopyTime
		m.cfg.Log.Add(trace.Event{Op: trace.OpExportCopy, TS: ts})
		// If this export is the known match of a decided request, it is
		// ready to send right now (Figure 5 lines 14-16).
		for _, r := range m.requests {
			if r.decided && r.result == match.Match && !r.dataSent && r.matchTS == ts {
				out.Sends = append(out.Sends, m.markSend(r, e))
			}
		}
	} else {
		m.stats.Skips++
		m.cfg.Log.Add(trace.Event{Op: trace.OpExportSkip, TS: ts})
	}

	m.sweep()
	return out, nil
}

// decide finalizes a request and returns any send that became possible.
func (m *Manager) decide(r *request, result match.Result, matchTS float64, viaBuddy bool) []SendItem {
	r.decided = true
	r.result = result
	r.matchTS = matchTS
	r.viaBuddy = viaBuddy
	if !viaBuddy {
		r.verified = true
	}
	if result != match.Match {
		return nil
	}
	if e, ok := m.entries[matchTS]; ok && !r.dataSent {
		return []SendItem{m.markSend(r, e)}
	}
	return nil
}

// markSend hands a matched entry out for transfer.
func (m *Manager) markSend(r *request, e *Entry) SendItem {
	r.dataSent = true
	e.Sent = true
	e.pendingTransfers++
	m.stats.Sends++
	m.cfg.Log.Add(trace.Event{Op: trace.OpSend, TS: e.TS})
	return SendItem{ReqIndex: r.index, ReqTS: r.x, MatchTS: e.TS, Data: e.Data, CopyTime: e.CopyTime}
}

// verifyBuddyDecisions re-derives buddy-delivered answers from local exports
// once possible, enforcing Property 1.
func (m *Manager) verifyBuddyDecisions() error {
	for _, r := range m.requests {
		if !r.decided || r.verified {
			continue
		}
		d := m.matcher.Evaluate(r.x)
		if d.Result == match.Pending {
			continue
		}
		if d.Result != r.result || (d.Result == match.Match && d.MatchTS != r.matchTS) {
			return fmt.Errorf(
				"buffer: Property 1 violation: buddy-help said %v/D@%g for D@%g but local exports give %v/D@%g",
				r.result, r.matchTS, r.x, d.Result, d.MatchTS)
		}
		r.verified = true
	}
	return nil
}

// beatsCandidate reports whether a new in-region export displaces the
// current candidate of an undecided request.
func (m *Manager) beatsCandidate(r *request, ts float64) bool {
	if math.IsNaN(r.candTS) {
		return true
	}
	switch m.cfg.Policy {
	case match.REGL:
		return ts > r.candTS // closer to x from below
	case match.REGU:
		return false // first candidate decides immediately; nothing displaces it
	default: // REG: strictly closer wins; ties keep the earlier
		return math.Abs(ts-r.x) < math.Abs(r.candTS-r.x)
	}
}

// currentCandidate seeds a new request's candidate from already-buffered
// entries (needed when a request's region covers past exports).
func (m *Manager) currentCandidate(r *request) float64 {
	best := math.NaN()
	for ts := range m.entries {
		if !r.region.Contains(ts) {
			continue
		}
		if math.IsNaN(best) {
			best = ts
			continue
		}
		if better(m.cfg.Policy, r.x, ts, best) {
			best = ts
		}
	}
	return best
}

// better reports whether a beats b as the match for request x.
func better(p match.Policy, x, a, b float64) bool {
	switch p {
	case match.REGL:
		return a > b
	case match.REGU:
		return a < b
	default:
		da, db := math.Abs(a-x), math.Abs(b-x)
		if da != db {
			return da < db
		}
		return a < b // tie to the earlier timestamp
	}
}

// needed decides whether a freshly exported object must be buffered.
func (m *Manager) needed(ts float64) bool {
	if len(m.requests) == 0 || ts > m.newestHi {
		// Beyond every known acceptable region: a future request may want it
		// (Figure 3(a), the importer-runs-slower case).
		return true
	}
	for _, r := range m.requests {
		if r.decided {
			if r.result == match.Match && r.matchTS == ts {
				return true // it IS a known match
			}
			continue
		}
		if r.region.Contains(ts) && ts == r.candTS {
			return true // current best candidate of a live request
		}
	}
	// Not required by any live request. Future requests have strictly larger
	// timestamps, so their regions lie strictly above the newest lower bound.
	if ts <= m.newestLo {
		return false
	}
	// ts in (newestLo, newestHi]:
	switch m.cfg.Policy {
	case match.REGL:
		// Skippable iff a committed later timestamp <= newest request
		// dominates it for every future region that could contain it: a
		// known match or live candidate above ts. (This is exactly the skip
		// buddy-help enables: Figure 5 lines 10-13.)
		return !m.committedAbove(ts)
	default:
		// REGU: a future request x' in (newestX, ts] could match ts.
		// REG: later exports do not dominate earlier ones for all future
		// requests. Keep it.
		return true
	}
}

// committedAbove reports whether some known match or live candidate t* with
// ts < t* <= newest request timestamp exists.
func (m *Manager) committedAbove(ts float64) bool {
	for _, r := range m.requests {
		var t float64
		switch {
		case r.decided && r.result == match.Match:
			t = r.matchTS
		case !r.decided && !math.IsNaN(r.candTS):
			t = r.candTS
		default:
			continue
		}
		if t > ts && t <= m.newestX {
			return true
		}
	}
	return false
}

// retain reports whether a buffered entry must be kept.
func (m *Manager) retain(e *Entry) bool {
	if len(m.requests) == 0 || e.TS > m.newestHi {
		return true
	}
	for _, r := range m.requests {
		if r.decided {
			if r.result == match.Match && r.matchTS == e.TS {
				if !r.dataSent {
					return true // matched, transfer still owed
				}
				if m.cfg.Retain && !r.released {
					return true // kept for crash resync until the importer checkpoints
				}
			}
			continue
		}
		if r.region.Contains(e.TS) && e.TS == r.candTS {
			return true // live candidate
		}
	}
	if e.TS <= m.newestLo {
		return false
	}
	switch m.cfg.Policy {
	case match.REGL:
		return !m.committedAbove(e.TS)
	default:
		return true
	}
}

// sweep frees every no-longer-retained entry, coalescing the removals into
// one paper-style trace line.
func (m *Manager) sweep() {
	removed := m.sweepScratch[:0]
	for ts, e := range m.entries {
		if m.retain(e) {
			continue
		}
		removed = append(removed, ts)
		m.free(e)
	}
	m.sweepScratch = removed[:0]
	if len(removed) == 0 {
		return
	}
	sort.Float64s(removed)
	m.cfg.Log.Add(trace.Event{Op: trace.OpRemove, TS: removed[0], TS2: removed[len(removed)-1]})
}

// free releases one entry and accounts unnecessary buffering time.
func (m *Manager) free(e *Entry) {
	delete(m.entries, e.TS)
	m.bytes -= int64(8 * len(e.Data))
	m.stats.Removes++
	if m.cfg.Release != nil {
		m.cfg.Release(e.TS)
	} else if e.pendingTransfers == 0 {
		// Recyclable: either never sent, or every consumer of a SendItem
		// aliasing this buffer has called TransferDone. An entry freed with
		// transfers still pending (Evict of a dead importer) goes to the
		// garbage collector instead — the in-flight transfer may still read
		// the slice.
		m.pool.Put(e.Data)
	}
	unsent := !e.Sent
	copyTime := e.CopyTime
	ts := e.TS
	// The Entry struct itself is never retained past free (SendItem copies
	// the fields it needs), so it is always recyclable; drop the data
	// reference so the slice can be collected when it wasn't pooled.
	e.Data = nil
	if len(m.entryFree) < 256 {
		m.entryFree = append(m.entryFree, e)
	}
	if !unsent {
		return
	}
	// Buffered but never transferred: the paper's unnecessary buffering.
	m.stats.UnnecessaryCopies++
	m.stats.UnnecessaryTime += copyTime
	if r := m.regionOf(ts); r != nil {
		r.unnecessary += copyTime
		r.unnecessaryCopies++
	}
}

// regionOf finds the most recent request whose acceptable region contains
// ts, for T_i attribution.
func (m *Manager) regionOf(ts float64) *request {
	for i := len(m.requests) - 1; i >= 0; i-- {
		if m.requests[i].region.Contains(ts) {
			return m.requests[i]
		}
	}
	return nil
}

// store copies data into the buffer ("call memcpy"), timing the copy.
func (m *Manager) store(ts float64, data []float64) (*Entry, error) {
	sz := int64(8 * len(data))
	if m.cfg.MaxBytes > 0 && m.bytes+sz > m.cfg.MaxBytes {
		// Free whatever is freeable before giving up.
		m.sweep()
		if m.bytes+sz > m.cfg.MaxBytes {
			return nil, fmt.Errorf("%w: need %d bytes, %d of %d in use",
				ErrBufferFull, sz, m.bytes, m.cfg.MaxBytes)
		}
	}
	var buf []float64
	var elapsed time.Duration
	if m.cfg.Snapshot != nil {
		start := m.cfg.Now()
		buf = m.cfg.Snapshot(ts, data)
		elapsed = m.cfg.Now().Sub(start)
	} else {
		buf = m.pool.Get(len(data))
		start := m.cfg.Now()
		copy(buf, data)
		elapsed = m.cfg.Now().Sub(start)
	}
	e := m.newEntry()
	e.TS, e.Data, e.CopyTime, e.Sent, e.pendingTransfers = ts, buf, elapsed, false, 0
	m.entries[ts] = e
	m.bytes += sz
	m.stats.Copies++
	m.stats.BytesCopied += sz
	m.stats.CopyTime += elapsed
	return e, nil
}

// newEntry reuses a recycled Entry struct when one is free.
func (m *Manager) newEntry() *Entry {
	if n := len(m.entryFree); n > 0 {
		e := m.entryFree[n-1]
		m.entryFree[n-1] = nil
		m.entryFree = m.entryFree[:n-1]
		return e
	}
	return &Entry{}
}

func replyEvent(x float64, d match.Decision) trace.Event {
	ev := trace.Event{Op: trace.OpReply, Req: x, Result: d.Result.String(), Latest: d.Latest}
	if d.Result == match.Match {
		ev.TS = d.MatchTS
	}
	return ev
}
