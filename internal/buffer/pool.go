package buffer

import (
	"fmt"
	"math/bits"
	"sync"
)

// poolClasses is the number of power-of-two size classes a Pool maintains.
// Class c holds slices with capacity exactly 1<<c, so the largest pooled
// buffer is 1<<(poolClasses-1) float64s (= 2 GiB of payload) — far beyond
// any block this framework moves; larger requests fall through to the
// allocator.
const poolClasses = 28

// DefaultPoolDepth is the per-class retention bound of a Pool when the
// depth passed to NewPool is zero: how many free slices of one size class
// are kept before Put starts discarding to the garbage collector.
const DefaultPoolDepth = 64

// PoolStats counts a Pool's traffic. Hits/Misses split Get calls by whether
// a pooled slice was reused; Discards counts slices dropped by Put because
// their class was full (bounded memory) or their capacity was not poolable.
type PoolStats struct {
	Hits, Misses, Puts, Discards int
}

// Pool recycles []float64 buffers in power-of-two size classes. It replaces
// the manager's former ad-hoc freelist, which popped candidates and silently
// dropped every one whose length didn't match the request — after any
// region-size change reuse stopped and the retained capacity leaked. A Pool
// serves any mix of sizes: Get rounds the request up to the next power of
// two and reslices, so alternating block sizes keep hitting.
//
// A Pool is safe for concurrent use: the framework shares one pool among a
// process's per-connection export pipelines, whose managers run under
// independent per-connection locks (and whose sender goroutines borrow pack
// scratch buffers concurrently).
type Pool struct {
	mu      sync.Mutex
	depth   int
	classes [poolClasses][][]float64
	stats   PoolStats

	// live tracks the backing arrays currently checked out of the pool (by
	// first-element pointer) when checked mode is on; violations records
	// every Put that broke the ownership discipline. Checked mode exists for
	// the deterministic simulation harness — the bookkeeping costs a map
	// operation per Get/Put, so production runs leave it off.
	checked    bool
	live       map[*float64]bool
	violations []string
}

// SetChecked turns ownership checking on or off. With checking on, every
// pooled buffer must alternate strictly Get -> Put: a Put of a buffer that is
// not checked out (a double free, or a free of a buffer the pool never saw
// while an identical one is pooled) is recorded as a violation instead of
// corrupting the freelist. Call before the pool is in use.
func (p *Pool) SetChecked(on bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.checked = on
	if on && p.live == nil {
		p.live = make(map[*float64]bool)
	}
	p.mu.Unlock()
}

// Violations returns the ownership violations recorded since checking was
// enabled (nil when none, or when checking is off).
func (p *Pool) Violations() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.violations...)
}

// key identifies buf's backing array while it has capacity.
func poolKey(buf []float64) *float64 { return &buf[:1][0] }

// NewPool returns a pool keeping at most depth free slices per size class
// (depth <= 0 means DefaultPoolDepth).
func NewPool(depth int) *Pool {
	if depth <= 0 {
		depth = DefaultPoolDepth
	}
	return &Pool{depth: depth}
}

// classOf returns the size class whose slices have capacity >= n, or -1 when
// n is not poolable.
func classOf(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c >= poolClasses {
		return -1
	}
	return c
}

// Get returns a slice of length n, reusing a pooled buffer of n's size class
// when one is free. The contents are unspecified — callers overwrite (the
// manager copies the export into it immediately).
func (p *Pool) Get(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := classOf(n)
	if c < 0 {
		p.stats.Misses++
		return make([]float64, n)
	}
	if free := p.classes[c]; len(free) > 0 {
		buf := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		p.stats.Hits++
		if p.checked {
			p.live[poolKey(buf)] = true
		}
		return buf[:n]
	}
	p.stats.Misses++
	// Allocate the class's full capacity so the buffer re-enters the same
	// class on Put whatever length it was used at.
	buf := make([]float64, n, 1<<c)
	if p.checked {
		p.live[poolKey(buf)] = true
	}
	return buf
}

// Put returns a buffer to its size class. Buffers whose capacity is not an
// exact class size (allocated elsewhere) and buffers beyond the class depth
// are discarded to the garbage collector, bounding pool memory.
func (p *Pool) Put(buf []float64) {
	if p == nil || cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	c := classOf(cap(buf))
	if p.checked && c >= 0 && cap(buf) == 1<<c {
		k := poolKey(buf)
		if !p.live[k] {
			p.violations = append(p.violations,
				fmt.Sprintf("buffer: Put of a buffer (cap %d) not checked out of the pool (double free?)", cap(buf)))
			return // refusing the Put keeps the freelist free of duplicates
		}
		delete(p.live, k)
	}
	if c < 0 || cap(buf) != 1<<c || len(p.classes[c]) >= p.depth {
		p.stats.Discards++
		return
	}
	p.classes[c] = append(p.classes[c], buf[:0])
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Free returns the number of pooled slices currently held across all
// classes (tests and diagnostics).
func (p *Pool) Free() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, free := range p.classes {
		n += len(free)
	}
	return n
}
