package buffer

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/match"
)

func driveManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{Policy: match.REGL, Tol: 2.5, Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	data := func(v float64) []float64 { return []float64{v, v + 1, v + 2} }
	for ts := 1.0; ts <= 5; ts++ {
		if _, err := m.Offer(ts, data(ts)); err != nil {
			t.Fatal(err)
		}
	}
	// Request at 4.6: REGL region (2.1, 4.6]; export 6 closes it -> match 4.
	if _, err := m.OnRequest(4.6); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Offer(6, data(6)); err != nil {
		t.Fatal(err)
	}
	// A second, still pending request.
	if _, err := m.OnRequest(8.6); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStateRoundTrip snapshots a mid-run manager, restores it into a fresh
// one, and checks the restored manager carries on identically.
func TestStateRoundTrip(t *testing.T) {
	m := driveManager(t)
	st := m.State()

	if len(st.Requests) != 2 || !st.Requests[0].Decided || st.Requests[0].MatchTS != 4 {
		t.Fatalf("unexpected snapshot requests: %+v", st.Requests)
	}

	r, err := NewManager(Config{Policy: match.REGL, Tol: 2.5, Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Latest(), m.Latest(); got != want {
		t.Fatalf("restored Latest = %g, want %g", got, want)
	}
	if got, want := r.NumRequests(), 2; got != want {
		t.Fatalf("restored NumRequests = %d, want %d", got, want)
	}
	if !r.Buffered(4) {
		t.Fatal("restored manager lost the matched version D@4")
	}
	// Snapshot of the restored manager must equal the original snapshot.
	st2 := r.State()
	if !statesEqual(st, st2) {
		t.Fatalf("restored state diverges:\n  orig %+v\n  rest %+v", st, st2)
	}

	// The restored manager continues: export 11 closes request 8.6 -> match 8?
	// No export at 8 happened; candidates in (6.1, 8.6] are none, latest=6.
	// Offer 7, then 9: 7 is in-region candidate, 9 closes region -> match 7.
	if _, err := r.Offer(7, []float64{7}); err != nil {
		t.Fatal(err)
	}
	res, err := r.Offer(9, []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resolutions) != 1 || res.Resolutions[0].Decision.Result != match.Match ||
		res.Resolutions[0].Decision.MatchTS != 7 {
		t.Fatalf("restored manager resolution = %+v, want match D@7", res.Resolutions)
	}
}

// TestOnRequestAtReplay exercises the idempotent re-request path a restarted
// importer triggers.
func TestOnRequestAtReplay(t *testing.T) {
	m := driveManager(t)

	// Replaying request 0 (decided, matched D@4, retained) re-answers and
	// re-sends the data.
	res, fresh, err := m.OnRequestAt(0, 4.6)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("replayed request reported fresh")
	}
	if res.Decision.Result != match.Match || res.Decision.MatchTS != 4 {
		t.Fatalf("replayed decision = %+v, want match D@4", res.Decision)
	}
	if len(res.Sends) != 1 || res.Sends[0].MatchTS != 4 {
		t.Fatalf("replayed sends = %+v, want one resend of D@4", res.Sends)
	}
	m.TransferDone(4)

	// Replaying with a mismatched timestamp is a protocol violation.
	if _, _, err := m.OnRequestAt(0, 4.7); err == nil {
		t.Fatal("mismatched replay timestamp not rejected")
	}
	// Replaying the pending request re-reports PENDING without duplicating it.
	res, fresh, err = m.OnRequestAt(1, 8.6)
	if err != nil || fresh {
		t.Fatalf("pending replay: fresh=%v err=%v", fresh, err)
	}
	if res.Decision.Result != match.Pending {
		t.Fatalf("pending replay decision = %v", res.Decision.Result)
	}
	if m.NumRequests() != 2 {
		t.Fatalf("replay duplicated requests: %d", m.NumRequests())
	}
	// A genuinely new request still appends.
	if _, fresh, err = m.OnRequestAt(2, 12.6); err != nil || !fresh {
		t.Fatalf("new request via OnRequestAt: fresh=%v err=%v", fresh, err)
	}
}

// TestRetainUntilRelease checks the recovery retention rule: a matched, sent
// version survives until ReleaseThrough, then is freed.
func TestRetainUntilRelease(t *testing.T) {
	m := driveManager(t)
	m.TransferDone(4) // drain the transfer handed out at decide time
	// D@4 is matched+sent; without Retain the next sweep would free it. It
	// must still be buffered (driveManager set Retain).
	if !m.Buffered(4) {
		t.Fatal("retained version freed before release")
	}
	m.ReleaseThrough(1)
	if m.Buffered(4) {
		t.Fatal("released version still buffered")
	}
	// Releasing again (or past the end) is harmless.
	m.ReleaseThrough(5)
}

func statesEqual(a, b ManagerState) bool {
	// NaN candidates make reflect.DeepEqual useless on Requests; compare
	// field-wise with NaN-aware float comparison.
	if !reflect.DeepEqual(a.Exports, b.Exports) || a.Finished != b.Finished ||
		!reflect.DeepEqual(a.Entries, b.Entries) || len(a.Requests) != len(b.Requests) {
		return false
	}
	feq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	for i := range a.Requests {
		x, y := a.Requests[i], b.Requests[i]
		if x.X != y.X || x.Decided != y.Decided || x.Result != y.Result ||
			!feq(x.MatchTS, y.MatchTS) || x.ViaBuddy != y.ViaBuddy ||
			x.Verified != y.Verified || x.DataSent != y.DataSent ||
			x.Released != y.Released || !feq(x.CandTS, y.CandTS) {
			return false
		}
	}
	return true
}
