package buffer

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/match"
)

// ManagerState is a serializable snapshot of one Manager: the matcher's
// export history, every live buffered version, and every request's lifecycle
// state. It is what the recovery layer writes into a checkpoint at a
// collective cut and feeds back through Restore after a crash.
//
// Statistics are deliberately not part of the state: counters (and the
// TransferDones == Sends drain invariant) are per-incarnation.
type ManagerState struct {
	Exports  []float64
	Finished bool
	Entries  []EntryState
	Requests []RequestState
}

// EntryState is one buffered data object version inside a ManagerState.
type EntryState struct {
	TS   float64
	Data []float64
	Sent bool
}

// RequestState is one import request's lifecycle inside a ManagerState.
type RequestState struct {
	X        float64
	Decided  bool
	Result   match.Result
	MatchTS  float64
	ViaBuddy bool
	Verified bool
	DataSent bool
	Released bool
	CandTS   float64 // NaN when no candidate
}

// State snapshots the manager. Entry data is copied, so the snapshot stays
// valid while the manager keeps running (and while the data plane reads the
// live buffers concurrently — callers serialize with the manager's owner
// lock, not with the sender goroutines, which only ever read entry data).
func (m *Manager) State() ManagerState {
	st := ManagerState{Exports: m.matcher.Exports(), Finished: m.finished}
	tss := make([]float64, 0, len(m.entries))
	for ts := range m.entries {
		tss = append(tss, ts)
	}
	sort.Float64s(tss)
	st.Entries = make([]EntryState, 0, len(tss))
	for _, ts := range tss {
		e := m.entries[ts]
		st.Entries = append(st.Entries, EntryState{
			TS:   ts,
			Data: append([]float64(nil), e.Data...),
			Sent: e.Sent,
		})
	}
	st.Requests = make([]RequestState, 0, len(m.requests))
	for _, r := range m.requests {
		st.Requests = append(st.Requests, RequestState{
			X:        r.x,
			Decided:  r.decided,
			Result:   r.result,
			MatchTS:  r.matchTS,
			ViaBuddy: r.viaBuddy,
			Verified: r.verified,
			DataSent: r.dataSent,
			Released: r.released,
			CandTS:   r.candTS,
		})
	}
	return st
}

// Restore rebuilds a freshly constructed manager from a checkpointed state.
// Buffered versions go through the Config.Snapshot hook when one is set, so
// fanned-out regions re-share physical copies exactly as they did before the
// crash (and Release stays correctly paired).
func (m *Manager) Restore(st ManagerState) error {
	if len(m.requests) != 0 || len(m.entries) != 0 || m.matcher.NumExports() != 0 {
		return errors.New("buffer: Restore on a manager that is not fresh")
	}
	if err := m.matcher.Restore(st.Exports); err != nil {
		return err
	}
	m.finished = st.Finished
	for _, es := range st.Entries {
		var buf []float64
		if m.cfg.Snapshot != nil {
			buf = m.cfg.Snapshot(es.TS, es.Data)
		} else {
			buf = m.pool.Get(len(es.Data))
			copy(buf, es.Data)
		}
		e := m.newEntry()
		e.TS, e.Data, e.CopyTime, e.Sent, e.pendingTransfers = es.TS, buf, 0, es.Sent, 0
		m.entries[es.TS] = e
		m.bytes += int64(8 * len(es.Data))
	}
	for i, rs := range st.Requests {
		if i > 0 && rs.X <= st.Requests[i-1].X {
			return fmt.Errorf("buffer: restore: request timestamp %g not greater than previous %g",
				rs.X, st.Requests[i-1].X)
		}
		r := &request{
			index:    i,
			x:        rs.X,
			region:   m.cfg.Policy.Region(rs.X, m.cfg.Tol),
			decided:  rs.Decided,
			result:   rs.Result,
			matchTS:  rs.MatchTS,
			viaBuddy: rs.ViaBuddy,
			verified: rs.Verified,
			dataSent: rs.DataSent,
			released: rs.Released,
			candTS:   rs.CandTS,
		}
		m.requests = append(m.requests, r)
		m.newestLo, m.newestHi, m.newestX = r.region.Lo, r.region.Hi, r.x
	}
	return nil
}

// NumRequests returns how many import requests the manager has seen (after a
// Restore, how many the checkpoint carried). The rejoin handshake reports it
// so the importer knows where replay must start.
func (m *Manager) NumRequests() int { return len(m.requests) }

// ReleaseThrough marks every request with index < n released: its matched
// version no longer needs to be retained for post-crash resync, because the
// importer has checkpointed past consuming it. Freed entries are swept
// immediately. It is a no-op unless Config.Retain is set.
func (m *Manager) ReleaseThrough(n int) {
	if n > len(m.requests) {
		n = len(m.requests)
	}
	changed := false
	for _, r := range m.requests[:n] {
		if !r.released {
			r.released = true
			changed = true
		}
	}
	if changed {
		m.sweep()
	}
}

// ResendData re-hands out the matched object of an already decided request
// (a crashed importer asked for it again). It returns ok=false when the
// request is undecided, unmatched, or its version is no longer buffered —
// the latter only happens when the importer released it, in which case the
// importer will never ask again.
func (m *Manager) ResendData(reqIndex int) (SendItem, bool, error) {
	if reqIndex < 0 || reqIndex >= len(m.requests) {
		return SendItem{}, false, fmt.Errorf("buffer: ResendData for unknown request %d", reqIndex)
	}
	r := m.requests[reqIndex]
	if !r.decided || r.result != match.Match {
		return SendItem{}, false, nil
	}
	e, ok := m.entries[r.matchTS]
	if !ok {
		return SendItem{}, false, nil
	}
	r.dataSent = true
	e.Sent = true
	e.pendingTransfers++
	m.stats.Sends++
	return SendItem{ReqIndex: r.index, ReqTS: r.x, MatchTS: e.TS, Data: e.Data, CopyTime: e.CopyTime}, true, nil
}

// OnRequestAt is the replay-tolerant form of OnRequest used under recovery:
// the rep names the request index explicitly, and an index the manager has
// already seen is re-answered idempotently (re-sending matched data when the
// version is still buffered) instead of failing the increasing-timestamps
// check. fresh reports whether the request was new to this manager.
func (m *Manager) OnRequestAt(reqID int, x float64) (res RequestResult, fresh bool, err error) {
	if reqID == len(m.requests) {
		rr, err := m.OnRequest(x)
		return rr, true, err
	}
	if reqID < 0 || reqID > len(m.requests) {
		return RequestResult{}, false, fmt.Errorf(
			"buffer: request id %d out of step with local request count %d", reqID, len(m.requests))
	}
	r := m.requests[reqID]
	if r.x != x {
		return RequestResult{}, false, fmt.Errorf(
			"buffer: replayed request %d timestamp %g != recorded %g", reqID, x, r.x)
	}
	res = RequestResult{ReqIndex: reqID}
	if r.decided {
		res.Decision = match.Decision{
			Latest: m.matcher.Latest(), Region: r.region,
			Result: r.result, MatchTS: r.matchTS,
		}
		if r.result == match.Match {
			item, ok, err := m.ResendData(reqID)
			if err != nil {
				return res, false, err
			}
			if ok {
				res.Sends = []SendItem{item}
			}
		}
		return res, false, nil
	}
	// Still undecided locally: report the current evaluation (normally
	// PENDING again; the decision flows through the usual resolution paths).
	d := m.matcher.Evaluate(x)
	if d.Result == match.Pending && m.finished {
		d = m.closedDecision(r)
	}
	if d.Result != match.Pending {
		res.Sends = m.decide(r, d.Result, d.MatchTS, false)
		m.sweep()
	}
	res.Decision = d
	if math.IsNaN(r.candTS) {
		r.candTS = m.currentCandidate(r)
	}
	return res, false, nil
}
