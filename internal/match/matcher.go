package match

import (
	"fmt"
	"math"
	"sort"
)

// NoExports is the Latest value of a Decision made before any export.
var NoExports = math.Inf(-1)

// Matcher evaluates import requests against the strictly increasing sequence
// of export timestamps observed by one exporter process, for one connection.
//
// The zero Matcher is not ready; use New.
type Matcher struct {
	policy Policy
	tol    float64

	// exports holds every export timestamp seen, increasing. It is the
	// process's view; the buffer layer decides separately what data to keep.
	exports []float64
}

// New returns a matcher for a connection with the given policy and
// tolerance. The tolerance must be non-negative.
func New(policy Policy, tol float64) (*Matcher, error) {
	if tol < 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("match: invalid tolerance %g", tol)
	}
	return &Matcher{policy: policy, tol: tol}, nil
}

// Policy returns the connection's match policy.
func (m *Matcher) Policy() Policy { return m.policy }

// Tolerance returns the connection's tolerance.
func (m *Matcher) Tolerance() float64 { return m.tol }

// Latest returns the latest export timestamp seen (NoExports if none).
func (m *Matcher) Latest() float64 {
	if len(m.exports) == 0 {
		return NoExports
	}
	return m.exports[len(m.exports)-1]
}

// NumExports returns how many exports have been recorded.
func (m *Matcher) NumExports() int { return len(m.exports) }

// Exports returns a copy of every export timestamp recorded, in increasing
// order. The recovery layer snapshots it into checkpoints.
func (m *Matcher) Exports() []float64 {
	return append([]float64(nil), m.exports...)
}

// Restore replaces the matcher's export history with a checkpointed one. The
// slice must be strictly increasing; it is copied.
func (m *Matcher) Restore(exports []float64) error {
	for i, ts := range exports {
		if math.IsNaN(ts) {
			return fmt.Errorf("match: restore: NaN export timestamp at %d", i)
		}
		if i > 0 && ts <= exports[i-1] {
			return fmt.Errorf("match: restore: export timestamp %g not greater than previous %g", ts, exports[i-1])
		}
	}
	m.exports = append(m.exports[:0:0], exports...)
	return nil
}

// AddExport records the next export timestamp, which must exceed all
// previous ones (the model requires strictly increasing timestamps).
func (m *Matcher) AddExport(ts float64) error {
	if math.IsNaN(ts) {
		return fmt.Errorf("match: NaN export timestamp")
	}
	if len(m.exports) > 0 && ts <= m.Latest() {
		return fmt.Errorf("match: export timestamp %g not greater than previous %g", ts, m.Latest())
	}
	m.exports = append(m.exports, ts)
	return nil
}

// Evaluate resolves a request at timestamp x against the exports seen so
// far. Evaluate is pure with respect to matcher state: calling it repeatedly
// without intervening AddExport returns the same decision.
func (m *Matcher) Evaluate(x float64) Decision {
	return Evaluate(m.policy, m.tol, x, m.exports)
}

// Evaluate resolves a request at timestamp x under (policy, tol) against an
// increasing slice of export timestamps.
//
// The decision is MATCH/NOMATCH only when no conforming future export (one
// greater than the latest seen) could change the answer; otherwise PENDING.
func Evaluate(policy Policy, tol, x float64, exports []float64) Decision {
	region := policy.Region(x, tol)
	latest := NoExports
	if n := len(exports); n > 0 {
		latest = exports[n-1]
	}
	d := Decision{Latest: latest, Region: region}

	best, hasBest := bestCandidate(policy, x, region, exports)

	// Could a future export beat (or become) the best candidate? Future
	// exports are > latest. They matter only if some t with t > latest,
	// t <= region.Hi would be chosen over the current best.
	if hasBest {
		if !betterPossible(policy, x, region, best, latest) {
			d.Result = Match
			d.MatchTS = best
			return d
		}
		d.Result = Pending
		return d
	}
	// No candidate yet: if the region's upper end is already unreachable,
	// nothing will ever land there.
	if latest >= region.Hi {
		d.Result = NoMatch
		return d
	}
	d.Result = Pending
	return d
}

// bestCandidate picks the current winner among in-region exports.
func bestCandidate(policy Policy, x float64, region Interval, exports []float64) (float64, bool) {
	// exports is increasing: binary search the window [Lo, Hi].
	lo := sort.SearchFloat64s(exports, region.Lo)
	hi := sort.Search(len(exports), func(i int) bool { return exports[i] > region.Hi })
	if lo >= hi {
		return 0, false
	}
	window := exports[lo:hi]
	switch policy {
	case REGL:
		// Largest not exceeding x == last in window (window Hi == x).
		return window[len(window)-1], true
	case REGU:
		// Smallest at or above x == first in window.
		return window[0], true
	default: // REG: minimize |t - x|, ties to the earlier timestamp.
		best := window[0]
		bestDist := math.Abs(window[0] - x)
		for _, t := range window[1:] {
			if d := math.Abs(t - x); d < bestDist {
				best, bestDist = t, d
			}
		}
		return best, true
	}
}

// betterPossible reports whether some future export t (t > latest,
// t <= region.Hi) would beat the current best candidate.
func betterPossible(policy Policy, x float64, region Interval, best, latest float64) bool {
	if latest >= region.Hi {
		return false // region closed; nothing can land in it any more
	}
	switch policy {
	case REGL:
		// Any later in-region export is closer to x (from below); if best is
		// exactly x nothing can beat it (timestamps are unique).
		return best != x
	case REGU:
		// best is the smallest in-region export; future exports are larger,
		// hence farther from x. Never improvable.
		return false
	default: // REG
		if best == x {
			return false
		}
		// A future export t beats best iff |t - x| < |best - x|, i.e.
		// t < x + |best-x| (t > x - |best-x| holds automatically for t >
		// latest >= best when best < x; for best > x no t > best can win).
		if best > x {
			return false // later exports are even farther above x
		}
		dist := x - best
		// Some t in (latest, min(region.Hi, x+dist)) must exist; with
		// continuous timestamps that is latest < x+dist (and latest <
		// region.Hi, already checked). Note t == x+dist ties and loses to
		// the earlier best.
		return latest < x+dist
	}
}
