// Package match implements the approximate temporal matching model the
// coupling framework is built on (the paper's Section 3.1, following Wu &
// Sussman 2004): every exported data object carries an increasing simulation
// timestamp; an import request names a timestamp, and a per-connection match
// policy plus tolerance define the acceptable region of export timestamps
// and which timestamp in that region is the match.
//
// Matching is incremental: evaluated against the exports seen so far, a
// request resolves to MATCH or NOMATCH only when no future export could
// change the answer; otherwise the result is PENDING. PENDING is what slower
// exporter processes report, and what the buddy-help optimization resolves
// for them.
package match

import "fmt"

// Policy selects the acceptable region around a requested timestamp and
// which in-region export wins. The names follow the paper's configuration
// syntax (Figure 2).
type Policy int

const (
	// REGL accepts exports in [x-tol, x]; the match is the in-region export
	// closest to (i.e. the largest not exceeding) the requested timestamp x.
	REGL Policy = iota
	// REGU accepts exports in [x, x+tol]; the match is the in-region export
	// closest to (the smallest at or above) x.
	REGU
	// REG accepts exports in [x-tol, x+tol]; the match is the in-region
	// export with minimum |export - x|, ties resolved to the earlier export.
	REG
)

var policyNames = map[Policy]string{REGL: "REGL", REGU: "REGU", REG: "REG"}

// String returns the configuration-file spelling of the policy.
func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts a configuration-file spelling into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "REGL":
		return REGL, nil
	case "REGU":
		return REGU, nil
	case "REG":
		return REG, nil
	default:
		return 0, fmt.Errorf("match: unknown policy %q", s)
	}
}

// Interval is a closed timestamp interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Lo && t <= iv.Hi }

// String renders the interval as [lo, hi].
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// Region returns the acceptable region for a request at timestamp x with the
// given tolerance.
func (p Policy) Region(x, tol float64) Interval {
	switch p {
	case REGL:
		return Interval{Lo: x - tol, Hi: x}
	case REGU:
		return Interval{Lo: x, Hi: x + tol}
	default: // REG
		return Interval{Lo: x - tol, Hi: x + tol}
	}
}

// Result is the outcome of evaluating a request against the exports seen so
// far by one process.
type Result int

const (
	// Pending means the best match cannot yet be decided: a future export
	// might still be (or beat) the match.
	Pending Result = iota
	// Match means the request resolves to a specific exported timestamp.
	Match
	// NoMatch means no export in the acceptable region exists or ever will.
	NoMatch
)

var resultNames = [...]string{Pending: "PENDING", Match: "MATCH", NoMatch: "NO MATCH"}

// String returns the paper's spelling of the result.
func (r Result) String() string {
	if int(r) < len(resultNames) {
		return resultNames[r]
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Decision is a process's full answer to a forwarded request: the result,
// the matched timestamp when Result == Match, and the latest timestamp the
// process has exported so far (the paper's replies carry this, e.g.
// "{D@20, PENDING, D@14.6}").
type Decision struct {
	Result  Result
	MatchTS float64 // valid when Result == Match
	Latest  float64 // latest export seen; NoExports if none
	// Region is the acceptable region the decision was evaluated against.
	Region Interval
}

// String renders the decision in the paper's reply style.
func (d Decision) String() string {
	switch d.Result {
	case Match:
		return fmt.Sprintf("{MATCH, D@%g, latest D@%g}", d.MatchTS, d.Latest)
	case NoMatch:
		return fmt.Sprintf("{NO MATCH, latest D@%g}", d.Latest)
	default:
		return fmt.Sprintf("{PENDING, latest D@%g}", d.Latest)
	}
}
