package match

import (
	"math"
	"math/rand"
	"testing"
)

// This file checks Evaluate against a brute-force oracle built directly from
// the model's definition: a request is decided (MATCH or NO MATCH) exactly
// when no conforming future export could change the winner, and the winner
// among in-region exports is defined per policy (REGL: largest not exceeding
// x; REGU: smallest at or above x; REG: minimum |t-x|, ties to the earlier
// export). The oracle makes no use of Evaluate's incremental reasoning: it
// enumerates candidate futures on a grid twice as fine as the one every
// export, request, and tolerance is drawn from, so every decision boundary —
// region endpoints x±tol, the REG beat threshold, exact ties — lies on the
// enumeration grid and boundary (exact-tolerance) behaviour is exercised
// exhaustively rather than by luck.

// oracleGrid is the grid all test timestamps and tolerances live on;
// oracleHalf is the finer grid future-export witnesses are enumerated on.
// Both are negative powers of two, so grid arithmetic is exact in float64
// and boundary comparisons carry no rounding slack.
const (
	oracleGrid = 0.25
	oracleHalf = 0.125
)

// gridOracleBetter reports whether export a beats export b for a request at x.
func gridOracleBetter(p Policy, x, a, b float64) bool {
	switch p {
	case REGL:
		return a > b
	case REGU:
		return a < b
	default: // REG
		da, db := math.Abs(a-x), math.Abs(b-x)
		if da != db {
			return da < db
		}
		return a < b
	}
}

// gridOracleBest picks the winner among candidates by linear scan.
func gridOracleBest(p Policy, x float64, cands []float64) (float64, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	best := cands[0]
	for _, t := range cands[1:] {
		if gridOracleBetter(p, x, t, best) {
			best = t
		}
	}
	return best, true
}

// oracleEvaluate resolves a request by definition: compute the current
// winner, then try every possible future export (any timestamp greater than
// the latest seen, enumerated on the half grid up to the region's upper
// bound — exports beyond it can never enter the region) and see whether one
// would change the winner. A single future export is a complete witness:
// any set of future exports changes the winner iff its best element does.
func oracleEvaluate(p Policy, tol, x float64, exports []float64) Decision {
	region := p.Region(x, tol)
	var in []float64
	for _, t := range exports {
		if region.Contains(t) {
			in = append(in, t)
		}
	}
	latest := NoExports
	if len(exports) > 0 {
		latest = exports[len(exports)-1]
	}
	d := Decision{Latest: latest, Region: region}

	best, has := gridOracleBest(p, x, in)
	start := region.Lo
	if latest+oracleHalf > start {
		start = latest + oracleHalf
	}
	for t := start; t <= region.Hi; t += oracleHalf {
		if !has || gridOracleBetter(p, x, t, best) {
			d.Result = Pending
			return d
		}
	}
	if has {
		d.Result = Match
		d.MatchTS = best
		return d
	}
	d.Result = NoMatch
	return d
}

func compareDecisions(t *testing.T, p Policy, tol, x float64, exports []float64) {
	t.Helper()
	got := Evaluate(p, tol, x, exports)
	want := oracleEvaluate(p, tol, x, exports)
	if got.Result != want.Result || (got.Result == Match && got.MatchTS != want.MatchTS) {
		t.Errorf("%s tol=%g x=%g exports=%v:\n  Evaluate: %s\n  oracle:   %s",
			p, tol, x, exports, got, want)
	}
}

// TestEvaluateOracleBoundaries pins the exact-tolerance boundary cases:
// exports landing precisely on x-tol, x, and x+tol, and latest landing
// precisely on the region's upper bound.
func TestEvaluateOracleBoundaries(t *testing.T) {
	const x, tol = 5, 1
	cases := [][]float64{
		{x - tol},                                                       // exactly on the lower bound
		{x + tol},                                                       // exactly on the upper bound
		{x},                                                             // exactly on the request
		{x - tol, x},                                                    // both ends of a REGL region
		{x - tol, x + tol},                                              // both ends, equidistant (REG tie)
		{x + tol},                                                       // REGU: first in-region export decides
		{x - tol - oracleGrid} /* just below */, {x + tol + oracleGrid}, // just above
		{x - tol, x - tol + oracleGrid, x + tol},
		{x - 2, x + tol}, // latest exactly at REGL's Hi+tol, REG's Hi
		{},
	}
	for _, p := range []Policy{REGL, REGU, REG} {
		for _, exports := range cases {
			compareDecisions(t, p, tol, x, exports)
		}
		// Zero tolerance: the region degenerates to the request point.
		compareDecisions(t, p, 0, x, []float64{x})
		compareDecisions(t, p, 0, x, []float64{x - oracleGrid})
		compareDecisions(t, p, 0, x, []float64{x + oracleGrid})
		compareDecisions(t, p, 0, x, nil)
	}
}

// TestEvaluateOracleSweep drives Evaluate through a seeded random sweep of
// grid-aligned histories and requests. Everything lives on a quarter-step
// grid while the oracle enumerates futures on an eighth-step grid, so
// exact-tolerance coincidences (export == x-tol, latest == region.Hi, exact
// REG ties) occur constantly.
func TestEvaluateOracleSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tols := []float64{0, oracleGrid, 0.5, 1, 2}
	for iter := 0; iter < 20000; iter++ {
		p := Policy(rng.Intn(3))
		tol := tols[rng.Intn(len(tols))]
		x := float64(rng.Intn(41)) * oracleGrid // [0, 10]

		n := rng.Intn(9)
		exports := make([]float64, 0, n)
		ts := -2.0
		for i := 0; i < n; i++ {
			ts += float64(1+rng.Intn(6)) * oracleGrid
			exports = append(exports, ts)
		}
		compareDecisions(t, p, tol, x, exports)

		// Incremental consistency: a decided answer must not change as the
		// remaining exports stream in (matcher monotonicity, the same
		// invariant the DST harness checks end to end).
		decidedAt := -1
		var decided Decision
		for k := 0; k <= len(exports); k++ {
			d := Evaluate(p, tol, x, exports[:k])
			if decidedAt >= 0 {
				if d.Result != decided.Result || (d.Result == Match && d.MatchTS != decided.MatchTS) {
					t.Fatalf("%s tol=%g x=%g exports=%v: decision %s at %d exports changed to %s at %d",
						p, tol, x, exports, decided, decidedAt, d, k)
				}
			} else if d.Result != Pending {
				decidedAt, decided = k, d
			}
		}
	}
}
