package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatcher(t *testing.T, p Policy, tol float64) *Matcher {
	t.Helper()
	m, err := New(p, tol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addAll(t *testing.T, m *Matcher, ts ...float64) {
	t.Helper()
	for _, v := range ts {
		if err := m.AddExport(v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPolicyParseString(t *testing.T) {
	for _, s := range []string{"REGL", "REGU", "REG"} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %q", s, p.String())
		}
	}
	if _, err := ParsePolicy("REGX"); err == nil {
		t.Error("bad policy accepted")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestPolicyRegion(t *testing.T) {
	cases := []struct {
		p    Policy
		want Interval
	}{
		{REGL, Interval{7.5, 10}},
		{REGU, Interval{10, 12.5}},
		{REG, Interval{7.5, 12.5}},
	}
	for _, c := range cases {
		if got := c.p.Region(10, 2.5); got != c.want {
			t.Errorf("%v.Region(10,2.5) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{1, 2}
	if !iv.Contains(1) || !iv.Contains(2) || !iv.Contains(1.5) {
		t.Error("closed interval endpoints/interior not contained")
	}
	if iv.Contains(0.999) || iv.Contains(2.001) {
		t.Error("outside points contained")
	}
}

func TestNewValidation(t *testing.T) {
	for _, tol := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := New(REGL, tol); err == nil {
			t.Errorf("tolerance %v accepted", tol)
		}
	}
}

func TestAddExportMonotonic(t *testing.T) {
	m := mustMatcher(t, REGL, 1)
	addAll(t, m, 1, 2, 3)
	if err := m.AddExport(3); err == nil {
		t.Error("equal timestamp accepted")
	}
	if err := m.AddExport(2.5); err == nil {
		t.Error("decreasing timestamp accepted")
	}
	if err := m.AddExport(math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	if m.NumExports() != 3 || m.Latest() != 3 {
		t.Errorf("state after rejects: n=%d latest=%v", m.NumExports(), m.Latest())
	}
}

func TestLatestNoExports(t *testing.T) {
	m := mustMatcher(t, REGL, 1)
	if m.Latest() != NoExports {
		t.Errorf("Latest() = %v", m.Latest())
	}
}

// TestPaperFigure5Evaluation walks the exact matching states of the paper's
// Figure 5 scenario: REGL, tolerance 2.5, exports at k+0.6, request at 20.
func TestPaperFigure5Evaluation(t *testing.T) {
	m := mustMatcher(t, REGL, 2.5)
	for ts := 1.6; ts < 14.7; ts++ {
		addAll(t, m, ts)
	}
	// Line 6: reply {D@20, PENDING, D@14.6}.
	d := m.Evaluate(20)
	if d.Result != Pending {
		t.Fatalf("after 14.6: %v", d)
	}
	if d.Latest != 14.6 {
		t.Fatalf("latest = %v", d.Latest)
	}
	if d.Region != (Interval{17.5, 20}) {
		t.Fatalf("region = %v", d.Region)
	}
	// The fastest process has exported through 20.6 and can decide: the
	// match is D@19.6 (closest to 20 within [17.5, 20]).
	fast := mustMatcher(t, REGL, 2.5)
	for ts := 1.6; ts < 20.7; ts++ {
		addAll(t, fast, ts)
	}
	d = fast.Evaluate(20)
	if d.Result != Match || d.MatchTS != 19.6 {
		t.Fatalf("fast decision = %v, want MATCH D@19.6", d)
	}
}

// TestPaperFigure7Evaluation checks the REGL tolerance-5.0 scenario of
// Figures 7/8: request at 10.0, acceptable region [5.0, 10.0], match D@9.6
// decided once D@10.6 is exported.
func TestPaperFigure7Evaluation(t *testing.T) {
	m := mustMatcher(t, REGL, 5)
	addAll(t, m, 1.6, 2.6, 3.6)
	d := m.Evaluate(10)
	if d.Result != Pending || d.Latest != 3.6 {
		t.Fatalf("after 3.6: %v", d)
	}
	addAll(t, m, 4.6, 5.6, 6.6, 7.6, 8.6, 9.6)
	d = m.Evaluate(10)
	if d.Result != Pending {
		t.Fatalf("9.6 in region but later export could still beat it: %v", d)
	}
	addAll(t, m, 10.6)
	d = m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 9.6 {
		t.Fatalf("after 10.6: %v, want MATCH D@9.6", d)
	}
}

func TestREGLExactHit(t *testing.T) {
	m := mustMatcher(t, REGL, 2)
	addAll(t, m, 8, 10)
	d := m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 10 {
		t.Fatalf("exact hit: %v", d)
	}
}

func TestREGLNoMatch(t *testing.T) {
	m := mustMatcher(t, REGL, 1)
	addAll(t, m, 1, 2, 8)
	// Region [4, 5]: no export inside, latest 8 >= 5 -> NOMATCH.
	d := m.Evaluate(5)
	if d.Result != NoMatch {
		t.Fatalf("got %v", d)
	}
}

func TestREGLPendingEmptyRegion(t *testing.T) {
	m := mustMatcher(t, REGL, 1)
	addAll(t, m, 1, 2)
	// Region [4, 5]: nothing inside yet, latest 2 < 5 -> PENDING.
	if d := m.Evaluate(5); d.Result != Pending {
		t.Fatalf("got %v", d)
	}
}

func TestREGUFirstInRegionWins(t *testing.T) {
	m := mustMatcher(t, REGU, 3)
	addAll(t, m, 9)
	// Region [10, 13]: no candidate, latest 9 < 13 -> PENDING.
	if d := m.Evaluate(10); d.Result != Pending {
		t.Fatalf("before candidate: %v", d)
	}
	addAll(t, m, 11)
	// 11 is in region and closest-from-above; later exports are farther.
	d := m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 11 {
		t.Fatalf("got %v, want MATCH 11", d)
	}
}

func TestREGUNoMatch(t *testing.T) {
	m := mustMatcher(t, REGU, 1)
	addAll(t, m, 5, 12)
	// Region [10, 11] skipped entirely.
	if d := m.Evaluate(10); d.Result != NoMatch {
		t.Fatalf("got %v", d)
	}
}

func TestREGBelowCandidateStaysPending(t *testing.T) {
	m := mustMatcher(t, REG, 5)
	addAll(t, m, 7)
	// Region [5, 15], best 7 at distance 3; an export in (7, 13) would beat
	// it -> PENDING.
	if d := m.Evaluate(10); d.Result != Pending {
		t.Fatalf("got %v", d)
	}
	addAll(t, m, 9)
	if d := m.Evaluate(10); d.Result != Pending {
		t.Fatalf("after 9: %v", d)
	}
	addAll(t, m, 10.5)
	// 10.5 at distance 0.5; a future export t > 10.5 has distance > 0.5.
	d := m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 10.5 {
		t.Fatalf("after 10.5: %v", d)
	}
}

func TestREGDecidesWithoutReachingHi(t *testing.T) {
	m := mustMatcher(t, REG, 100)
	addAll(t, m, 9, 12)
	// best 9 (dist 1) vs 12 (dist 2) -> 9; latest 12 > 10+1 -> nothing can
	// beat 9 even though region extends to 110.
	d := m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 9 {
		t.Fatalf("got %v", d)
	}
}

func TestREGTieGoesToEarlier(t *testing.T) {
	m := mustMatcher(t, REG, 5)
	addAll(t, m, 8, 12)
	// 8 and 12 both at distance 2; the earlier wins; latest 12 >= 10+2 so
	// decided.
	d := m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 8 {
		t.Fatalf("got %v", d)
	}
}

func TestREGAboveCandidateDecided(t *testing.T) {
	m := mustMatcher(t, REG, 5)
	addAll(t, m, 11)
	// best 11 above x=10: later exports are farther; decided immediately.
	d := m.Evaluate(10)
	if d.Result != Match || d.MatchTS != 11 {
		t.Fatalf("got %v", d)
	}
}

func TestEvaluateBeforeAnyExport(t *testing.T) {
	for _, p := range []Policy{REGL, REGU, REG} {
		m := mustMatcher(t, p, 1)
		d := m.Evaluate(10)
		if d.Result != Pending || d.Latest != NoExports {
			t.Errorf("%v: %v", p, d)
		}
	}
}

func TestDecisionString(t *testing.T) {
	m := mustMatcher(t, REGL, 2.5)
	addAll(t, m, 19.6, 20.6)
	d := m.Evaluate(20)
	if got := d.String(); got != "{MATCH, D@19.6, latest D@20.6}" {
		t.Errorf("String = %q", got)
	}
	if (Decision{Result: Pending, Latest: 3}).String() != "{PENDING, latest D@3}" {
		t.Errorf("pending string = %q", Decision{Result: Pending, Latest: 3}.String())
	}
	if (Decision{Result: NoMatch, Latest: 3}).String() != "{NO MATCH, latest D@3}" {
		t.Errorf("nomatch string = %q", Decision{Result: NoMatch, Latest: 3}.String())
	}
	if Result(9).String() == "" || Policy(9).String() == "" {
		t.Error("fallback strings empty")
	}
}

// genExports builds a random increasing export sequence.
func genExports(r *rand.Rand, n int) []float64 {
	out := make([]float64, 0, n)
	t := r.Float64() * 5
	for i := 0; i < n; i++ {
		t += 0.05 + r.Float64()*2
		out = append(out, t)
	}
	return out
}

// Property: a MATCH is always inside the acceptable region, and under REGL
// never exceeds the requested timestamp.
func TestPropertyMatchInRegion(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		policy := Policy(r.Intn(3))
		tol := r.Float64() * 4
		exports := genExports(r, r.Intn(20))
		x := r.Float64() * 30
		d := Evaluate(policy, tol, x, exports)
		if d.Result != Match {
			continue
		}
		region := policy.Region(x, tol)
		if !region.Contains(d.MatchTS) {
			t.Fatalf("match %v outside region %v (policy %v x %v exports %v)",
				d.MatchTS, region, policy, x, exports)
		}
		if policy == REGL && d.MatchTS > x {
			t.Fatalf("REGL match %v beyond request %v", d.MatchTS, x)
		}
		if policy == REGU && d.MatchTS < x {
			t.Fatalf("REGU match %v before request %v", d.MatchTS, x)
		}
	}
}

// Property (decision stability): once a request resolves to MATCH or
// NOMATCH, appending further (larger) exports never changes the decision.
// This is the exact guarantee buddy-help relies on: the fastest process's
// answer is final, so slower peers can act on it.
func TestPropertyDecisionStability(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		policy := Policy(r.Intn(3))
		tol := r.Float64() * 4
		exports := genExports(r, 3+r.Intn(15))
		x := exports[r.Intn(len(exports))] + (r.Float64()-0.3)*3
		// Find the first prefix where the decision is final.
		for k := 0; k <= len(exports); k++ {
			d := Evaluate(policy, tol, x, exports[:k])
			if d.Result == Pending {
				continue
			}
			for k2 := k + 1; k2 <= len(exports); k2++ {
				d2 := Evaluate(policy, tol, x, exports[:k2])
				if d2.Result != d.Result || (d.Result == Match && d2.MatchTS != d.MatchTS) {
					t.Fatalf("decision changed: prefix %d gave %v, prefix %d gave %v (policy %v tol %v x %v exports %v)",
						k, d, k2, d2, policy, tol, x, exports)
				}
			}
			break
		}
	}
}

// Property: with timestamps strictly increasing, every request eventually
// resolves once an export passes the region's upper bound.
func TestPropertyEventualResolution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		policy := Policy(r.Intn(3))
		tol := r.Float64() * 4
		exports := genExports(r, 5+r.Intn(15))
		x := r.Float64() * 10
		region := policy.Region(x, tol)
		if exports[len(exports)-1] < region.Hi {
			continue // never passed the region
		}
		d := Evaluate(policy, tol, x, exports)
		if d.Result == Pending {
			t.Fatalf("latest %v >= hi %v but still pending (policy %v x %v exports %v)",
				exports[len(exports)-1], region.Hi, policy, x, exports)
		}
	}
}

// Property: the decision equals the brute-force "oracle" that looks at the
// final export sequence, whenever the incremental evaluation is final.
func TestPropertyAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		policy := Policy(r.Intn(3))
		tol := r.Float64() * 4
		exports := genExports(r, 5+r.Intn(15))
		x := r.Float64() * 12
		d := Evaluate(policy, tol, x, exports)
		if d.Result == Pending {
			continue
		}
		oracleTS, oracleOK := oracleBest(policy, tol, x, exports)
		if oracleOK != (d.Result == Match) {
			t.Fatalf("oracle ok=%v decision=%v (policy %v tol %v x %v exports %v)",
				oracleOK, d, policy, tol, x, exports)
		}
		if oracleOK && oracleTS != d.MatchTS {
			t.Fatalf("oracle %v != match %v (policy %v tol %v x %v exports %v)",
				oracleTS, d.MatchTS, policy, tol, x, exports)
		}
	}
}

// oracleBest picks the best candidate given the complete export history.
func oracleBest(policy Policy, tol, x float64, exports []float64) (float64, bool) {
	region := policy.Region(x, tol)
	best, found := 0.0, false
	for _, t := range exports {
		if !region.Contains(t) {
			continue
		}
		if !found {
			best, found = t, true
			continue
		}
		if math.Abs(t-x) < math.Abs(best-x) {
			best = t
		}
	}
	return best, found
}

// quick-based sanity: Evaluate never panics and always returns a region
// containing any MATCH timestamp.
func TestQuickEvaluateTotal(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		exports := genExports(r, int(n%24))
		policy := Policy(r.Intn(3))
		tol := r.Float64() * 3
		x := r.Float64() * 20
		d := Evaluate(policy, tol, x, exports)
		if d.Result == Match && !d.Region.Contains(d.MatchTS) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
