package decomp

import (
	"fmt"
	"testing"
	"testing/quick"
)

// checkTiling asserts the layout's blocks exactly tile the global domain:
// disjoint, within bounds, covering every element, with Owner consistent.
func checkTiling(t *testing.T, l Layout) {
	t.Helper()
	rows, cols := l.Shape()
	seen := make([]int, rows*cols)
	for i := range seen {
		seen[i] = -1
	}
	total := 0
	for p := 0; p < l.Procs(); p++ {
		b := l.Block(p)
		if !Bounds(l).ContainsRect(b) {
			t.Fatalf("block %d = %v outside bounds %v", p, b, Bounds(l))
		}
		total += b.Area()
		for r := b.R0; r < b.R1; r++ {
			for c := b.C0; c < b.C1; c++ {
				if prev := seen[r*cols+c]; prev != -1 {
					t.Fatalf("element (%d,%d) owned by both %d and %d", r, c, prev, p)
				}
				seen[r*cols+c] = p
				if o := l.Owner(r, c); o != p {
					t.Fatalf("Owner(%d,%d) = %d, block says %d", r, c, o, p)
				}
			}
		}
	}
	if total != rows*cols {
		t.Fatalf("blocks cover %d of %d elements", total, rows*cols)
	}
}

func TestRowBlockTiling(t *testing.T) {
	for _, tc := range []struct{ rows, cols, p int }{
		{8, 8, 1}, {8, 8, 2}, {8, 8, 3}, {10, 4, 7}, {5, 5, 5}, {1024, 1024, 32},
	} {
		l, err := NewRowBlock(tc.rows, tc.cols, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, l)
	}
}

func TestColBlockTiling(t *testing.T) {
	for _, tc := range []struct{ rows, cols, p int }{
		{8, 8, 2}, {4, 10, 7}, {5, 5, 5}, {3, 9, 3},
	} {
		l, err := NewColBlock(tc.rows, tc.cols, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, l)
	}
}

func TestBlock2DTiling(t *testing.T) {
	for _, tc := range []struct{ rows, cols, pr, pc int }{
		{8, 8, 2, 2}, {9, 7, 3, 2}, {16, 16, 4, 4}, {1024, 1024, 2, 2}, {5, 5, 1, 5},
	} {
		l, err := NewBlock2D(tc.rows, tc.cols, tc.pr, tc.pc)
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, l)
	}
}

// Property-based tiling check over random shapes.
func TestRowBlockTilingProperty(t *testing.T) {
	f := func(rows, cols, p uint8) bool {
		nr := int(rows%40) + 1
		nc := int(cols%40) + 1
		np := int(p%8) + 1
		if np > nr {
			np = nr
		}
		l, err := NewRowBlock(nr, nc, np)
		if err != nil {
			return false
		}
		area := 0
		for i := 0; i < np; i++ {
			area += l.Block(i).Area()
		}
		return area == nr*nc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewRowBlock(0, 4, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewRowBlock(4, 4, 5); err == nil {
		t.Error("more procs than rows accepted")
	}
	if _, err := NewColBlock(4, 4, 5); err == nil {
		t.Error("more procs than cols accepted")
	}
	if _, err := NewBlock2D(4, 4, 0, 2); err == nil {
		t.Error("zero grid dim accepted")
	}
	if _, err := NewBlock2D(4, 4, 5, 1); err == nil {
		t.Error("grid larger than rows accepted")
	}
}

func TestPaperBenchmarkLayouts(t *testing.T) {
	// Program F: 1024x1024 over a 2x2 grid -> 512x512 per process.
	f, err := NewBlock2D(1024, 1024, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		b := f.Block(p)
		if b.Rows() != 512 || b.Cols() != 512 {
			t.Errorf("F block %d = %v, want 512x512", p, b)
		}
	}
	// Program U: 1024x1024 over 4/8/16/32 row bands.
	for _, n := range []int{4, 8, 16, 32} {
		u, err := NewRowBlock(1024, 1024, n)
		if err != nil {
			t.Fatal(err)
		}
		b := u.Block(0)
		if b.Rows() != 1024/n || b.Cols() != 1024 {
			t.Errorf("U(%d) block 0 = %v", n, b)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	layouts := []Layout{
		mustLayout(NewRowBlock(10, 6, 3)),
		mustLayout(NewColBlock(10, 6, 2)),
		mustLayout(NewBlock2D(10, 6, 2, 3)),
	}
	for _, l := range layouts {
		spec, err := SpecOf(l)
		if err != nil {
			t.Fatal(err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%#v", back) != fmt.Sprintf("%#v", l) {
			t.Errorf("round trip: %#v -> %#v", l, back)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := (Spec{Kind: "bogus"}).Build(); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := SpecOf(fakeLayout{}); err == nil {
		t.Error("unknown layout type accepted")
	}
}

type fakeLayout struct{}

func (fakeLayout) Shape() (int, int)  { return 1, 1 }
func (fakeLayout) Procs() int         { return 1 }
func (fakeLayout) Block(int) Rect     { return NewRect(0, 0, 1, 1) }
func (fakeLayout) Owner(int, int) int { return 0 }

func mustLayout[L Layout](l L, err error) Layout {
	if err != nil {
		panic(err)
	}
	return l
}
