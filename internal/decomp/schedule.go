package decomp

import "fmt"

// Transfer is one leg of a redistribution: the source rank sends the global
// sub-rectangle Sub to the destination rank.
type Transfer struct {
	From, To int
	Sub      Rect
}

// Schedule computes the full MxN redistribution plan from a source layout to
// a destination layout over the region rect (global coordinates): one
// Transfer per non-empty intersection of a source block, a destination
// block, and the region. Both programs compute the same schedule
// independently from the exchanged layout Specs, so no negotiation traffic
// is needed per transfer.
func Schedule(src, dst Layout, region Rect) ([]Transfer, error) {
	sr, sc := src.Shape()
	dr, dc := dst.Shape()
	if sr != dr || sc != dc {
		return nil, fmt.Errorf("decomp: schedule between different shapes %dx%d and %dx%d", sr, sc, dr, dc)
	}
	if !Bounds(src).ContainsRect(region) {
		return nil, fmt.Errorf("decomp: region %v outside array %v", region, Bounds(src))
	}
	var plan []Transfer
	for s := 0; s < src.Procs(); s++ {
		sb, ok := src.Block(s).Intersect(region)
		if !ok {
			continue
		}
		for d := 0; d < dst.Procs(); d++ {
			sub, ok := sb.Intersect(dst.Block(d))
			if !ok {
				continue
			}
			plan = append(plan, Transfer{From: s, To: d, Sub: sub})
		}
	}
	return plan, nil
}

// FullSchedule is Schedule over the entire array.
func FullSchedule(src, dst Layout) ([]Transfer, error) {
	return Schedule(src, dst, Bounds(src))
}

// Outgoing filters a schedule to the transfers sent by rank.
func Outgoing(plan []Transfer, rank int) []Transfer {
	var out []Transfer
	for _, t := range plan {
		if t.From == rank {
			out = append(out, t)
		}
	}
	return out
}

// Incoming filters a schedule to the transfers received by rank.
func Incoming(plan []Transfer, rank int) []Transfer {
	var out []Transfer
	for _, t := range plan {
		if t.To == rank {
			out = append(out, t)
		}
	}
	return out
}
