package decomp

import (
	"testing"
	"testing/quick"
)

// checkScheduleCovers asserts a schedule's transfers exactly cover region:
// each destination element of region receives exactly one value, and every
// sub-rect lies in both the source's and destination's blocks.
func checkScheduleCovers(t *testing.T, src, dst Layout, region Rect, plan []Transfer) {
	t.Helper()
	rows, cols := src.Shape()
	covered := make([]int, rows*cols)
	for _, tr := range plan {
		if !src.Block(tr.From).ContainsRect(tr.Sub) {
			t.Fatalf("transfer %+v outside source block %v", tr, src.Block(tr.From))
		}
		if !dst.Block(tr.To).ContainsRect(tr.Sub) {
			t.Fatalf("transfer %+v outside dest block %v", tr, dst.Block(tr.To))
		}
		if !region.ContainsRect(tr.Sub) {
			t.Fatalf("transfer %+v outside region %v", tr, region)
		}
		for r := tr.Sub.R0; r < tr.Sub.R1; r++ {
			for c := tr.Sub.C0; c < tr.Sub.C1; c++ {
				covered[r*cols+c]++
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want := 0
			if region.Contains(r, c) {
				want = 1
			}
			if covered[r*cols+c] != want {
				t.Fatalf("element (%d,%d) covered %d times, want %d", r, c, covered[r*cols+c], want)
			}
		}
	}
}

func TestFullScheduleCoverage(t *testing.T) {
	cases := []struct{ src, dst Layout }{
		{mustLayout(NewBlock2D(16, 16, 2, 2)), mustLayout(NewRowBlock(16, 16, 4))},
		{mustLayout(NewRowBlock(16, 16, 3)), mustLayout(NewColBlock(16, 16, 5))},
		{mustLayout(NewRowBlock(9, 9, 2)), mustLayout(NewRowBlock(9, 9, 2))},
		{mustLayout(NewBlock2D(12, 10, 3, 2)), mustLayout(NewBlock2D(12, 10, 2, 3))},
	}
	for _, c := range cases {
		plan, err := FullSchedule(c.src, c.dst)
		if err != nil {
			t.Fatal(err)
		}
		checkScheduleCovers(t, c.src, c.dst, Bounds(c.src), plan)
	}
}

func TestRegionSchedule(t *testing.T) {
	src := mustLayout(NewBlock2D(16, 16, 2, 2))
	dst := mustLayout(NewRowBlock(16, 16, 4))
	region := NewRect(3, 5, 11, 13)
	plan, err := Schedule(src, dst, region)
	if err != nil {
		t.Fatal(err)
	}
	checkScheduleCovers(t, src, dst, region, plan)
}

func TestScheduleShapeMismatch(t *testing.T) {
	src := mustLayout(NewRowBlock(8, 8, 2))
	dst := mustLayout(NewRowBlock(8, 9, 2))
	if _, err := FullSchedule(src, dst); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestScheduleRegionOutOfBounds(t *testing.T) {
	src := mustLayout(NewRowBlock(8, 8, 2))
	if _, err := Schedule(src, src, NewRect(0, 0, 9, 8)); err == nil {
		t.Error("out-of-bounds region accepted")
	}
}

func TestScheduleIdentityIsLocal(t *testing.T) {
	l := mustLayout(NewRowBlock(8, 8, 4))
	plan, err := FullSchedule(l, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range plan {
		if tr.From != tr.To {
			t.Errorf("identity redistribution has cross transfer %+v", tr)
		}
	}
	if len(plan) != 4 {
		t.Errorf("identity plan has %d transfers, want 4", len(plan))
	}
}

func TestOutgoingIncoming(t *testing.T) {
	src := mustLayout(NewBlock2D(8, 8, 2, 2))
	dst := mustLayout(NewRowBlock(8, 8, 4))
	plan, err := FullSchedule(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	nOut, nIn := 0, 0
	for r := 0; r < 4; r++ {
		nOut += len(Outgoing(plan, r))
		nIn += len(Incoming(plan, r))
	}
	if nOut != len(plan) || nIn != len(plan) {
		t.Errorf("partitions: out %d in %d plan %d", nOut, nIn, len(plan))
	}
	for _, tr := range Outgoing(plan, 2) {
		if tr.From != 2 {
			t.Errorf("Outgoing(2) returned %+v", tr)
		}
	}
	for _, tr := range Incoming(plan, 1) {
		if tr.To != 1 {
			t.Errorf("Incoming(1) returned %+v", tr)
		}
	}
}

// Property: a redistribution schedule conserves total area for random
// layout pairs.
func TestSchedulePropertyAreaConserved(t *testing.T) {
	f := func(rows, cols, p1, p2 uint8) bool {
		nr := int(rows%20) + 2
		nc := int(cols%20) + 2
		a := int(p1%4) + 1
		b := int(p2%4) + 1
		if a > nr || b > nc {
			return true // skip invalid
		}
		src, err := NewRowBlock(nr, nc, a)
		if err != nil {
			return false
		}
		dst, err := NewColBlock(nr, nc, b)
		if err != nil {
			return false
		}
		plan, err := FullSchedule(src, dst)
		if err != nil {
			return false
		}
		area := 0
		for _, tr := range plan {
			area += tr.Sub.Area()
		}
		return area == nr*nc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRedistributeEndToEnd simulates a full redistribution through
// Pack/Unpack and verifies the destination grids reconstruct the source
// array exactly.
func TestRedistributeEndToEnd(t *testing.T) {
	src := mustLayout(NewBlock2D(12, 12, 2, 2))
	dst := mustLayout(NewRowBlock(12, 12, 3))
	value := func(r, c int) float64 { return float64(100*r + c) }

	srcGrids := make([]*Grid, src.Procs())
	for p := range srcGrids {
		srcGrids[p] = NewGridFor(src, p)
		srcGrids[p].Fill(value)
	}
	dstGrids := make([]*Grid, dst.Procs())
	for p := range dstGrids {
		dstGrids[p] = NewGridFor(dst, p)
	}

	plan, err := FullSchedule(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range plan {
		buf, err := srcGrids[tr.From].Pack(tr.Sub)
		if err != nil {
			t.Fatal(err)
		}
		if err := dstGrids[tr.To].Unpack(tr.Sub, buf); err != nil {
			t.Fatal(err)
		}
	}
	for p, g := range dstGrids {
		for r := g.Block.R0; r < g.Block.R1; r++ {
			for c := g.Block.C0; c < g.Block.C1; c++ {
				if g.At(r, c) != value(r, c) {
					t.Fatalf("dst %d (%d,%d) = %v, want %v", p, r, c, g.At(r, c), value(r, c))
				}
			}
		}
	}
}
