package decomp

import "fmt"

// Grid is one process's local block of a distributed 2-D float64 array,
// stored row-major, addressed by global coordinates.
type Grid struct {
	// Block is the global rectangle this grid holds.
	Block Rect
	// Data holds Block.Area() values, row-major.
	Data []float64
}

// NewGrid allocates a zeroed grid covering block.
func NewGrid(block Rect) *Grid {
	return &Grid{Block: block, Data: make([]float64, block.Area())}
}

// NewGridFor allocates the grid for rank under layout l.
func NewGridFor(l Layout, rank int) *Grid { return NewGrid(l.Block(rank)) }

// index converts global coordinates to the flat offset; the caller must
// ensure containment.
func (g *Grid) index(row, col int) int {
	return (row-g.Block.R0)*g.Block.Cols() + (col - g.Block.C0)
}

// At returns the value at global (row, col).
func (g *Grid) At(row, col int) float64 { return g.Data[g.index(row, col)] }

// Set stores v at global (row, col).
func (g *Grid) Set(row, col int, v float64) { g.Data[g.index(row, col)] = v }

// Fill sets every element from f(row, col) in global coordinates.
func (g *Grid) Fill(f func(row, col int) float64) {
	i := 0
	for r := g.Block.R0; r < g.Block.R1; r++ {
		for c := g.Block.C0; c < g.Block.C1; c++ {
			g.Data[i] = f(r, c)
			i++
		}
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{Block: g.Block, Data: make([]float64, len(g.Data))}
	copy(out.Data, g.Data)
	return out
}

// Pack copies the global sub-rectangle sub (which must lie inside the grid's
// block) into a fresh contiguous row-major buffer.
func (g *Grid) Pack(sub Rect) ([]float64, error) {
	if !g.Block.ContainsRect(sub) {
		return nil, fmt.Errorf("decomp: pack %v outside block %v", sub, g.Block)
	}
	out := make([]float64, sub.Area())
	g.PackInto(sub, out)
	return out, nil
}

// PackInto copies sub into dst, which must have sub.Area() elements; sub
// must lie inside the grid's block.
func (g *Grid) PackInto(sub Rect, dst []float64) {
	w := sub.Cols()
	for r := 0; r < sub.Rows(); r++ {
		srcOff := g.index(sub.R0+r, sub.C0)
		copy(dst[r*w:(r+1)*w], g.Data[srcOff:srcOff+w])
	}
}

// Unpack copies a contiguous row-major buffer (as produced by Pack) into the
// global sub-rectangle sub of this grid.
func (g *Grid) Unpack(sub Rect, vals []float64) error {
	if !g.Block.ContainsRect(sub) {
		return fmt.Errorf("decomp: unpack %v outside block %v", sub, g.Block)
	}
	if len(vals) != sub.Area() {
		return fmt.Errorf("decomp: unpack %v needs %d values, got %d", sub, sub.Area(), len(vals))
	}
	w := sub.Cols()
	for r := 0; r < sub.Rows(); r++ {
		dstOff := g.index(sub.R0+r, sub.C0)
		copy(g.Data[dstOff:dstOff+w], vals[r*w:(r+1)*w])
	}
	return nil
}
