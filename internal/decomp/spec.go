package decomp

import "fmt"

// LayoutKind names a serializable layout family.
type LayoutKind string

// Supported layout kinds.
const (
	KindRowBlock LayoutKind = "rowblock"
	KindColBlock LayoutKind = "colblock"
	KindBlock2D  LayoutKind = "block2d"
)

// Spec is a wire-friendly layout description, exchanged between program
// representatives during coupling initialization so each side can compute
// redistribution schedules locally.
type Spec struct {
	Kind   LayoutKind
	Rows   int
	Cols   int
	P      int // processes (rowblock/colblock)
	PR, PC int // process grid (block2d)
}

// SpecOf returns the Spec describing a layout built by this package.
func SpecOf(l Layout) (Spec, error) {
	switch v := l.(type) {
	case RowBlock:
		return Spec{Kind: KindRowBlock, Rows: v.NRows, Cols: v.NCols, P: v.P}, nil
	case ColBlock:
		return Spec{Kind: KindColBlock, Rows: v.NRows, Cols: v.NCols, P: v.P}, nil
	case Block2D:
		return Spec{Kind: KindBlock2D, Rows: v.NRows, Cols: v.NCols, PR: v.PR, PC: v.PC}, nil
	default:
		return Spec{}, fmt.Errorf("decomp: layout type %T is not serializable", l)
	}
}

// Build reconstructs the layout a Spec describes.
func (s Spec) Build() (Layout, error) {
	switch s.Kind {
	case KindRowBlock:
		return NewRowBlock(s.Rows, s.Cols, s.P)
	case KindColBlock:
		return NewColBlock(s.Rows, s.Cols, s.P)
	case KindBlock2D:
		return NewBlock2D(s.Rows, s.Cols, s.PR, s.PC)
	default:
		return nil, fmt.Errorf("decomp: unknown layout kind %q", s.Kind)
	}
}
