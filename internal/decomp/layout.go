package decomp

import "fmt"

// Layout describes how a rows x cols global 2-D array is partitioned among
// the processes of one program. Blocks must tile the global rectangle
// exactly: disjoint, and their union is the whole domain.
type Layout interface {
	// Shape returns the global array extent.
	Shape() (rows, cols int)
	// Procs returns the number of processes holding blocks.
	Procs() int
	// Block returns the global rectangle owned by rank.
	Block(rank int) Rect
	// Owner returns the rank owning global element (row, col).
	Owner(row, col int) int
}

// Bounds returns the global rectangle of a layout.
func Bounds(l Layout) Rect {
	rows, cols := l.Shape()
	return NewRect(0, 0, rows, cols)
}

// splitExtent partitions length n into p near-equal contiguous pieces and
// returns the start offset of piece i (piece i spans [start(i), start(i+1))).
// The first n%p pieces get one extra element, matching the usual HPC block
// distribution.
func splitStart(n, p, i int) int {
	q, r := n/p, n%p
	if i < r {
		return i * (q + 1)
	}
	return r*(q+1) + (i-r)*q
}

// splitIndex returns which of the p pieces of an n-length extent holds x.
func splitIndex(n, p, x int) int {
	q, r := n/p, n%p
	boundary := r * (q + 1)
	if x < boundary {
		return x / (q + 1)
	}
	if q == 0 {
		return r - 1 // degenerate: more procs than elements; clamp
	}
	return r + (x-boundary)/q
}

// RowBlock partitions rows into contiguous near-equal bands, one per process
// (the layout program U uses in the paper's benchmark).
type RowBlock struct {
	NRows, NCols int
	P            int
}

// NewRowBlock returns a row-band layout of a rows x cols array over p
// processes.
func NewRowBlock(rows, cols, p int) (RowBlock, error) {
	if rows <= 0 || cols <= 0 || p <= 0 {
		return RowBlock{}, fmt.Errorf("decomp: invalid row-block %dx%d over %d", rows, cols, p)
	}
	if p > rows {
		return RowBlock{}, fmt.Errorf("decomp: %d processes for %d rows", p, rows)
	}
	return RowBlock{NRows: rows, NCols: cols, P: p}, nil
}

// Shape implements Layout.
func (l RowBlock) Shape() (int, int) { return l.NRows, l.NCols }

// Procs implements Layout.
func (l RowBlock) Procs() int { return l.P }

// Block implements Layout.
func (l RowBlock) Block(rank int) Rect {
	return NewRect(splitStart(l.NRows, l.P, rank), 0, splitStart(l.NRows, l.P, rank+1), l.NCols)
}

// Owner implements Layout.
func (l RowBlock) Owner(row, col int) int { return splitIndex(l.NRows, l.P, row) }

// ColBlock partitions columns into contiguous near-equal bands.
type ColBlock struct {
	NRows, NCols int
	P            int
}

// NewColBlock returns a column-band layout of a rows x cols array over p
// processes.
func NewColBlock(rows, cols, p int) (ColBlock, error) {
	if rows <= 0 || cols <= 0 || p <= 0 {
		return ColBlock{}, fmt.Errorf("decomp: invalid col-block %dx%d over %d", rows, cols, p)
	}
	if p > cols {
		return ColBlock{}, fmt.Errorf("decomp: %d processes for %d cols", p, cols)
	}
	return ColBlock{NRows: rows, NCols: cols, P: p}, nil
}

// Shape implements Layout.
func (l ColBlock) Shape() (int, int) { return l.NRows, l.NCols }

// Procs implements Layout.
func (l ColBlock) Procs() int { return l.P }

// Block implements Layout.
func (l ColBlock) Block(rank int) Rect {
	return NewRect(0, splitStart(l.NCols, l.P, rank), l.NRows, splitStart(l.NCols, l.P, rank+1))
}

// Owner implements Layout.
func (l ColBlock) Owner(row, col int) int { return splitIndex(l.NCols, l.P, col) }

// Block2D partitions the array into a PR x PC grid of near-equal tiles; rank
// r owns tile (r / PC, r % PC). Program F in the paper's benchmark uses a
// 2x2 Block2D of the 1024x1024 array (512x512 per process).
type Block2D struct {
	NRows, NCols int
	PR, PC       int
}

// NewBlock2D returns a pr x pc tile layout of a rows x cols array.
func NewBlock2D(rows, cols, pr, pc int) (Block2D, error) {
	if rows <= 0 || cols <= 0 || pr <= 0 || pc <= 0 {
		return Block2D{}, fmt.Errorf("decomp: invalid 2d-block %dx%d over %dx%d", rows, cols, pr, pc)
	}
	if pr > rows || pc > cols {
		return Block2D{}, fmt.Errorf("decomp: %dx%d process grid for %dx%d array", pr, pc, rows, cols)
	}
	return Block2D{NRows: rows, NCols: cols, PR: pr, PC: pc}, nil
}

// Shape implements Layout.
func (l Block2D) Shape() (int, int) { return l.NRows, l.NCols }

// Procs implements Layout.
func (l Block2D) Procs() int { return l.PR * l.PC }

// Block implements Layout.
func (l Block2D) Block(rank int) Rect {
	pr, pc := rank/l.PC, rank%l.PC
	return NewRect(
		splitStart(l.NRows, l.PR, pr), splitStart(l.NCols, l.PC, pc),
		splitStart(l.NRows, l.PR, pr+1), splitStart(l.NCols, l.PC, pc+1),
	)
}

// Owner implements Layout.
func (l Block2D) Owner(row, col int) int {
	return splitIndex(l.NRows, l.PR, row)*l.PC + splitIndex(l.NCols, l.PC, col)
}
