package decomp

import (
	"testing"
)

func TestGridAtSet(t *testing.T) {
	g := NewGrid(NewRect(2, 3, 5, 7))
	if len(g.Data) != 12 {
		t.Fatalf("data len %d", len(g.Data))
	}
	g.Set(2, 3, 1.5)
	g.Set(4, 6, -2)
	if g.At(2, 3) != 1.5 || g.At(4, 6) != -2 {
		t.Error("At/Set mismatch")
	}
	if g.Data[0] != 1.5 || g.Data[11] != -2 {
		t.Error("row-major placement wrong")
	}
}

func TestGridFill(t *testing.T) {
	g := NewGrid(NewRect(1, 1, 3, 4))
	g.Fill(func(r, c int) float64 { return float64(10*r + c) })
	if g.At(1, 1) != 11 || g.At(2, 3) != 23 {
		t.Errorf("fill produced %v", g.Data)
	}
}

func TestGridClone(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 2, 2))
	g.Set(0, 0, 7)
	h := g.Clone()
	h.Set(0, 0, 9)
	if g.At(0, 0) != 7 {
		t.Error("clone shares storage")
	}
}

func TestGridPackUnpack(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 4, 4))
	g.Fill(func(r, c int) float64 { return float64(r*4 + c) })
	sub := NewRect(1, 1, 3, 4)
	buf, err := g.Pack(sub)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 7, 9, 10, 11}
	for i, v := range want {
		if buf[i] != v {
			t.Fatalf("pack = %v, want %v", buf, want)
		}
	}
	h := NewGrid(NewRect(0, 0, 4, 4))
	if err := h.Unpack(sub, buf); err != nil {
		t.Fatal(err)
	}
	for r := sub.R0; r < sub.R1; r++ {
		for c := sub.C0; c < sub.C1; c++ {
			if h.At(r, c) != g.At(r, c) {
				t.Fatalf("unpack (%d,%d) = %v", r, c, h.At(r, c))
			}
		}
	}
	// Outside the sub-rect must stay zero.
	if h.At(0, 0) != 0 || h.At(3, 0) != 0 {
		t.Error("unpack wrote outside sub-rectangle")
	}
}

func TestGridPackErrors(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 4, 4))
	if _, err := g.Pack(NewRect(0, 0, 5, 4)); err == nil {
		t.Error("pack outside block accepted")
	}
	if err := g.Unpack(NewRect(0, 0, 5, 4), nil); err == nil {
		t.Error("unpack outside block accepted")
	}
	if err := g.Unpack(NewRect(0, 0, 2, 2), make([]float64, 3)); err == nil {
		t.Error("unpack with wrong value count accepted")
	}
}

func TestNewGridFor(t *testing.T) {
	l := mustLayout(NewRowBlock(8, 4, 2))
	g := NewGridFor(l, 1)
	if g.Block != l.Block(1) {
		t.Errorf("grid block %v, want %v", g.Block, l.Block(1))
	}
}
