package decomp

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(1, 2, 4, 7)
	if r.Rows() != 3 || r.Cols() != 5 || r.Area() != 15 {
		t.Errorf("rows/cols/area = %d/%d/%d", r.Rows(), r.Cols(), r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if r.String() != "[1:4,2:7]" {
		t.Errorf("String = %q", r.String())
	}
}

func TestRectEmpty(t *testing.T) {
	for _, r := range []Rect{
		NewRect(0, 0, 0, 5),
		NewRect(0, 0, 5, 0),
		NewRect(3, 3, 1, 9),
		{},
	} {
		if !r.Empty() || r.Area() != 0 {
			t.Errorf("%v should be empty with area 0, got area %d", r, r.Area())
		}
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 4, 4)
	cases := []struct {
		row, col int
		want     bool
	}{
		{0, 0, true}, {3, 3, true}, {4, 0, false}, {0, 4, false}, {-1, 2, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.row, c.col); got != c.want {
			t.Errorf("Contains(%d,%d) = %v", c.row, c.col, got)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.ContainsRect(NewRect(2, 3, 5, 7)) {
		t.Error("inner rect not contained")
	}
	if outer.ContainsRect(NewRect(5, 5, 11, 6)) {
		t.Error("overflowing rect contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Error("empty rect must be contained everywhere")
	}
	if !NewRect(0, 0, 10, 10).ContainsRect(outer) {
		t.Error("rect must contain itself")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	b := NewRect(3, 2, 8, 4)
	got, ok := a.Intersect(b)
	if !ok || got != NewRect(3, 2, 5, 4) {
		t.Errorf("intersect = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersect(NewRect(5, 0, 6, 5)); ok {
		t.Error("touching rects must not intersect (half-open)")
	}
	if _, ok := a.Intersect(NewRect(9, 9, 12, 12)); ok {
		t.Error("disjoint rects intersect")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestRectIntersectProperties(t *testing.T) {
	norm := func(v int8) int { return int(v) % 16 }
	f := func(a0, b0, a1, b1, c0, d0, c1, d1 int8) bool {
		a := NewRect(norm(a0), norm(b0), norm(a1), norm(b1))
		b := NewRect(norm(c0), norm(d0), norm(c1), norm(d1))
		x, okx := a.Intersect(b)
		y, oky := b.Intersect(a)
		if okx != oky {
			return false
		}
		if !okx {
			return true
		}
		return x == y && a.ContainsRect(x) && b.ContainsRect(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: intersection area never exceeds either operand's area, and every
// point in the intersection is in both rects.
func TestRectIntersectPointwise(t *testing.T) {
	a := NewRect(1, 1, 6, 7)
	b := NewRect(4, 0, 9, 5)
	x, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	for r := -1; r < 10; r++ {
		for c := -1; c < 10; c++ {
			in := a.Contains(r, c) && b.Contains(r, c)
			if in != x.Contains(r, c) {
				t.Fatalf("point (%d,%d): in-both=%v in-intersection=%v", r, c, in, x.Contains(r, c))
			}
		}
	}
}
