// Package decomp implements the distributed-data-structure substrate the
// coupling framework moves data between: rectangular index spaces, block
// decompositions of 2-D arrays over process groups, and MxN redistribution
// schedules (which exporter process sends which sub-rectangle to which
// importer process) — the role Meta-Chaos / InterComm data movement plays in
// the paper's system.
package decomp

import "fmt"

// Rect is a half-open rectangle of global array indices:
// rows [R0, R1), columns [C0, C1). An empty rectangle has R1 <= R0 or
// C1 <= C0.
type Rect struct {
	R0, C0, R1, C1 int
}

// NewRect returns the rectangle covering rows [r0,r1) and columns [c0,c1).
func NewRect(r0, c0, r1, c1 int) Rect { return Rect{R0: r0, C0: c0, R1: r1, C1: c1} }

// Rows returns the row extent (0 if empty).
func (r Rect) Rows() int {
	if r.R1 <= r.R0 {
		return 0
	}
	return r.R1 - r.R0
}

// Cols returns the column extent (0 if empty).
func (r Rect) Cols() int {
	if r.C1 <= r.C0 {
		return 0
	}
	return r.C1 - r.C0
}

// Area returns the number of elements covered.
func (r Rect) Area() int { return r.Rows() * r.Cols() }

// Empty reports whether the rectangle covers no elements.
func (r Rect) Empty() bool { return r.Area() == 0 }

// Contains reports whether global element (row, col) lies inside r.
func (r Rect) Contains(row, col int) bool {
	return row >= r.R0 && row < r.R1 && col >= r.C0 && col < r.C1
}

// ContainsRect reports whether s lies entirely inside r (an empty s is
// contained everywhere).
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.R0 >= r.R0 && s.R1 <= r.R1 && s.C0 >= r.C0 && s.C1 <= r.C1
}

// Intersect returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		R0: max(r.R0, s.R0),
		C0: max(r.C0, s.C0),
		R1: min(r.R1, s.R1),
		C1: min(r.C1, s.C1),
	}
	if out.Empty() {
		return Rect{}, false
	}
	return out, true
}

// String renders the rectangle as [r0:r1,c0:c1].
func (r Rect) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", r.R0, r.R1, r.C0, r.C1)
}
