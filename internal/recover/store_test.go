package recover

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/buffer"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Program: "U",
		Epoch:   2,
		Seq:     40,
		Procs: []ProcState{
			{
				Rank: 0,
				Exports: map[string]buffer.ManagerState{
					"U>V": {
						Exports:  []float64{1, 2, 3},
						Entries:  []buffer.EntryState{{TS: 3, Data: []float64{1.5, 2.5}, Sent: true}},
						Requests: []buffer.RequestState{{X: 2.6, Decided: true, MatchTS: 2, CandTS: math.NaN()}},
					},
				},
				Imports: map[string]ImportState{"F>U": {Issued: []float64{19.6, 39.6}}},
			},
			{Rank: 1, Imports: map[string]ImportState{"F>U": {Issued: []float64{19.6, 39.6}}}},
		},
	}
}

func checkRoundTrip(t *testing.T, s Store) {
	t.Helper()
	if ck, err := s.Load("U"); err != nil || ck != nil {
		t.Fatalf("empty store Load = (%v, %v), want (nil, nil)", ck, err)
	}
	want := sampleCheckpoint()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a later cut: Load must return the latest.
	want.Seq = 60
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("U")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 60 || got.Epoch != 2 || got.Program != "U" {
		t.Fatalf("Load header = %+v", got)
	}
	// NaN CandTS breaks DeepEqual; normalize it before comparing.
	gr := &got.Procs[0].Exports["U>V"].Requests[0].CandTS
	if !math.IsNaN(*gr) {
		t.Fatalf("NaN candidate did not round-trip: %g", *gr)
	}
	*gr = 0
	wr := &want.Procs[0].Exports["U>V"].Requests[0].CandTS
	*wr = 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestMemStoreRoundTrip(t *testing.T) { checkRoundTrip(t, NewMemStore()) }

func TestDirStoreRoundTrip(t *testing.T) {
	s, err := NewDirStore(t.TempDir() + "/ckpt")
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, s)
}

// TestMemStoreIsolation checks a loaded checkpoint shares no memory with the
// saved one (stores keep encoded bytes).
func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	ck := sampleCheckpoint()
	if err := s.Save(ck); err != nil {
		t.Fatal(err)
	}
	ck.Procs[0].Imports["F>U"].Issued[0] = -1 // mutate after save
	got, err := s.Load("U")
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs[0].Imports["F>U"].Issued[0] != 19.6 {
		t.Fatal("loaded checkpoint aliases the saver's memory")
	}
}
