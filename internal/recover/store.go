// Package recover persists and restores collective-sequence checkpoints of
// the coupling framework.
//
// The paper's collective Property 1 — every process of a program issues the
// identical export/import sequence — gives a natural consistent cut: when
// every rank of a program has completed the same number of collective
// operations, the program's framework state (buffer versions, skip decisions,
// matcher histories, import progress) forms a checkpoint no in-flight message
// can invalidate, because everything a peer might still send is derivable
// from the peers' own retained state. Checkpoints are therefore taken as a
// collective operation (core.Process.Checkpoint) and assembled per program
// from one snapshot per rank; the same observation underlies Collective
// Vector Clocks for MPI (see PAPERS.md).
package recover

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/buffer"
	"repro/internal/wire"
)

// Checkpoint is one program's state at a collective cut.
type Checkpoint struct {
	// Program names the checkpointed program.
	Program string
	// Epoch counts restarts: a freshly started program is epoch 0 and every
	// restore increments it. The rejoin handshake and the reliable
	// transport's session sequence numbers carry it.
	Epoch uint64
	// Seq is the application-chosen collective sequence number of the cut
	// (every rank passed the same value to Checkpoint). Drivers resume their
	// iteration loop from it after a restore.
	Seq uint64
	// Procs holds one state per rank, in rank order.
	Procs []ProcState
}

// ProcState is one rank's contribution to a Checkpoint.
type ProcState struct {
	Rank int
	// Exports maps connection keys ("exporter>importer") to the rank's
	// buffer-manager state for regions this program exports.
	Exports map[string]buffer.ManagerState
	// Imports maps connection keys to the rank's import progress for regions
	// this program imports.
	Imports map[string]ImportState
}

// ImportState is the import-side progress of one rank on one connection.
type ImportState struct {
	// Issued holds the request timestamp of every import call completed
	// before the cut, in issue order. Because the cut lies between
	// collective operations, there are no half-done imports: len(Issued) is
	// both the next request id and the replay floor.
	Issued []float64
}

// Store persists checkpoints, one latest checkpoint per program.
type Store interface {
	// Save atomically replaces the program's checkpoint.
	Save(ck *Checkpoint) error
	// Load returns the program's latest checkpoint, or (nil, nil) when none
	// has ever been saved.
	Load(program string) (*Checkpoint, error)
}

// Encode serializes a checkpoint (gob, via the wire package).
func Encode(ck *Checkpoint) ([]byte, error) { return wire.Marshal(ck) }

// Decode deserializes a checkpoint produced by Encode.
func Decode(b []byte) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := wire.Unmarshal(b, ck); err != nil {
		return nil, fmt.Errorf("recover: decode checkpoint: %w", err)
	}
	return ck, nil
}

// DirStore keeps one checkpoint file per program in a directory, written
// with the classic tmp-file-plus-rename dance so a crash mid-save leaves the
// previous checkpoint intact.
type DirStore struct {
	dir string
}

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recover: checkpoint dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(program string) string {
	// Program names are path-hostile in principle; flatten separators.
	safe := strings.NewReplacer("/", "_", string(filepath.Separator), "_").Replace(program)
	return filepath.Join(s.dir, safe+".ckpt")
}

// Save implements Store.
func (s *DirStore) Save(ck *Checkpoint) error {
	b, err := Encode(ck)
	if err != nil {
		return err
	}
	final := s.path(ck.Program)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("recover: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("recover: commit checkpoint: %w", err)
	}
	return nil
}

// Load implements Store.
func (s *DirStore) Load(program string) (*Checkpoint, error) {
	b, err := os.ReadFile(s.path(program))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("recover: read checkpoint: %w", err)
	}
	return Decode(b)
}

// MemStore is an in-memory Store for tests and single-process harness runs.
// Checkpoints are kept encoded, so a Load returns state fully isolated from
// the saver's live structures — exactly like a file store would.
type MemStore struct {
	mu   sync.Mutex
	byPn map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{byPn: make(map[string][]byte)} }

// Save implements Store.
func (s *MemStore) Save(ck *Checkpoint) error {
	b, err := Encode(ck)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.byPn[ck.Program] = b
	s.mu.Unlock()
	return nil
}

// Load implements Store.
func (s *MemStore) Load(program string) (*Checkpoint, error) {
	s.mu.Lock()
	b, ok := s.byPn[program]
	s.mu.Unlock()
	if !ok {
		return nil, nil
	}
	return Decode(b)
}
