package recover

import (
	"reflect"
	"testing"

	"repro/internal/buffer"
)

// FuzzCheckpoint hardens the checkpoint codec against corrupt or hostile
// stores: Decode must never panic, and any checkpoint it accepts must
// survive an Encode/Decode round trip unchanged (a restore that silently
// alters state would defeat the byte-identical recovery guarantee).
func FuzzCheckpoint(f *testing.F) {
	ck := &Checkpoint{
		Program: "U", Epoch: 1, Seq: 20,
		Procs: []ProcState{{
			Rank: 0,
			Exports: map[string]buffer.ManagerState{
				"F.f>U.f": {
					Exports:  []float64{1, 2, 3.5},
					Entries:  []buffer.EntryState{{TS: 3.5, Data: []float64{9, 8, 7}, Sent: true}},
					Requests: []buffer.RequestState{},
				},
			},
			Imports: map[string]ImportState{
				"F.f>U.f": {Issued: []float64{1, 2, 3}},
			},
		}},
	}
	if b, err := Encode(ck); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<20 {
			return // keep adversarial gob allocation bounded
		}
		ck, err := Decode(b)
		if err != nil {
			return
		}
		enc, err := Encode(ck)
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		ck2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatalf("checkpoint changed across re-encode:\n%+v\n%+v", ck, ck2)
		}
	})
}
