package testutil

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

// The framework's own packages draw every timestamp and timer from an
// injectable clock (package vclock); tests that genuinely need real-time
// pacing — settling asynchronous teardown, provoking heartbeat expiry over a
// live transport — go through these helpers so the production trees stay free
// of direct time.Now/time.Sleep calls.

// Sleep pauses the calling goroutine for d of real time.
func Sleep(d time.Duration) { vclock.Wall.Sleep(d) }

// Now returns the current wall-clock time.
func Now() time.Time { return vclock.Wall.Now() }

// Eventually polls cond every few milliseconds until it returns true, failing
// the test if timeout passes first. It replaces fixed sleeps in tests that
// wait for an asynchronous effect: the poll returns as soon as the condition
// holds, and the generous timeout only matters on overloaded machines.
func Eventually(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if Now().After(deadline) {
			t.Fatalf("condition not reached within %v: "+format, append([]any{timeout}, args...)...)
		}
		Sleep(2 * time.Millisecond)
	}
}
