// Package testutil holds helpers shared by the repository's test suites.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and returns a verify function
// that fails the test if, after the code under test tore everything down, the
// count has not returned to (near) the snapshot within a grace period.
//
// Typical use:
//
//	defer testutil.CheckGoroutines(t)()
//
// The comparison polls because teardown is asynchronous: Close returns before
// every reader goroutine has observed its channel close. A small slack (2) is
// tolerated for runtime-internal goroutines (finalizers, timer scavenging)
// that may start independently of the code under test.
func CheckGoroutines(t testing.TB) (verify func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		const slack = 2
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after teardown\n%s",
			before, after, condenseStacks(string(buf)))
	}
}

// condenseStacks keeps only the header line and top frame of each goroutine
// stack, enough to identify leakers without pages of output.
func condenseStacks(dump string) string {
	var b strings.Builder
	for _, g := range strings.Split(dump, "\n\n") {
		lines := strings.Split(g, "\n")
		n := len(lines)
		if n > 3 {
			n = 3
		}
		fmt.Fprintln(&b, strings.Join(lines[:n], "\n"))
	}
	return b.String()
}
