package collective

import (
	"fmt"
	"math"
	"time"
)

// TuneConfig bounds the Tune measurement sweep.
type TuneConfig struct {
	// MinBytes..MaxBytes is the geometric (×2) vector-size ladder swept for
	// the AllReduce algorithm crossover. Defaults: 1 KiB .. 256 KiB.
	MinBytes int
	MaxBytes int
	// Reps is the number of operations timed per (size, algorithm) point
	// (default 8, after 2 warmup operations).
	Reps int
}

// Tune measures the recursive-doubling vs ring AllReduce crossover on the
// live transport and installs a dispatch table using it (for both AllReduce
// and ReduceScatter byte thresholds). It is itself a collective: every rank
// must call it at the same point in the collective sequence. Rank 0's
// measurements decide; the chosen threshold is broadcast so all ranks
// install an identical table, and the installed table is returned (callers
// may persist it with Table.Save).
func (c *Comm) Tune(cfg TuneConfig) (*Table, error) {
	if cfg.MinBytes <= 0 {
		cfg.MinBytes = 1 << 10
	}
	if cfg.MaxBytes < cfg.MinBytes {
		cfg.MaxBytes = 256 << 10
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 8
	}
	if c.size == 1 {
		return c.table, nil
	}

	// Never-crossed sentinel: past the ladder, stick with recursive doubling.
	crossover := cfg.MaxBytes * 2
	found := false
	for bytes := cfg.MinBytes; bytes <= cfg.MaxBytes; bytes *= 2 {
		vec := make([]float64, bytes/8)
		for i := range vec {
			vec[i] = float64(i % 7)
		}
		rd, err := c.timeAlgo(RecursiveDoubling, vec, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("collective: tune rd %dB: %w", bytes, err)
		}
		ring, err := c.timeAlgo(Ring, vec, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("collective: tune ring %dB: %w", bytes, err)
		}
		if !found && ring < rd {
			crossover = bytes
			found = true
		}
	}

	// Rank 0's decision wins; everyone installs the same table.
	dec, err := c.BcastFloats(0, []float64{float64(crossover)})
	if err != nil {
		return nil, err
	}
	chosen := int(dec[0])
	if chosen <= 0 || chosen > math.MaxInt32 {
		return nil, fmt.Errorf("collective: tune produced threshold %v", dec[0])
	}
	t := *c.table
	t.AllReduceRingBytes = chosen
	t.ReduceScatterRingBytes = chosen
	c.SetTable(&t)
	return c.table, nil
}

// timeAlgo times reps forced-algorithm AllReduce operations after a barrier
// and 2 warmup operations. Max keeps the vector values stable across
// repeated in-place folding.
func (c *Comm) timeAlgo(algo Algo, vec []float64, reps int) (time.Duration, error) {
	for i := 0; i < 2; i++ {
		if err := c.AllReduceInPlaceWith(algo, vec, Max); err != nil {
			return 0, err
		}
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := c.AllReduceInPlaceWith(algo, vec, Max); err != nil {
			return 0, err
		}
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
