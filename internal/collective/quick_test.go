package collective

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/transport"
)

// runGroupQuick is runGroup without a *testing.T, for quick.Check bodies:
// it clears *ok on any rank error.
func runGroupQuick(n int, fn func(c *Comm) error, ok *bool) {
	net := transport.NewMemNetwork()
	defer net.Close()
	comms := make([]*Comm, n)
	for r := 0; r < n; r++ {
		ep, err := net.Register(transport.Proc("Q", r))
		if err != nil {
			*ok = false
			return
		}
		comms[r], err = New(transport.NewDispatcher(ep), "Q", r, n)
		if err != nil {
			*ok = false
			return
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(comms[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			*ok = false
		}
	}
}

// oracleFold applies op sequentially over per-rank contributions.
func oracleFold(contribs [][]float64, op Op) []float64 {
	acc := make([]float64, len(contribs[0]))
	copy(acc, contribs[0])
	for _, c := range contribs[1:] {
		op(acc, c)
	}
	return acc
}

// TestQuickAllReduceMatchesOracle: AllReduce equals the sequential fold for
// random group sizes, vector lengths and values, for every operator.
func TestQuickAllReduceMatchesOracle(t *testing.T) {
	ops := map[string]Op{"sum": Sum, "max": Max, "min": Min}
	f := func(seed int64, nRaw, lenRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		vecLen := int(lenRaw%5) + 1
		contribs := make([][]float64, n)
		for r := range contribs {
			contribs[r] = make([]float64, vecLen)
			for i := range contribs[r] {
				contribs[r][i] = math.Round(rng.Float64()*100) / 4 // exact-in-float values
			}
		}
		for name, op := range ops {
			want := oracleFold(contribs, op)
			ok := true
			runGroupQuick(n, func(c *Comm) error {
				got, err := c.AllReduce(contribs[c.Rank()], op)
				if err != nil {
					return err
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("%s rank %d: %v want %v", name, c.Rank(), got, want)
					}
				}
				return nil
			}, &ok)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickScanMatchesOracle: Scan equals the sequential prefix fold.
func TestQuickScanMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%7) + 1
		contribs := make([][]float64, n)
		for r := range contribs {
			contribs[r] = []float64{math.Round(rng.Float64() * 32), math.Round(rng.Float64() * 32)}
		}
		ok := true
		runGroupQuick(n, func(c *Comm) error {
			got, err := c.Scan(contribs[c.Rank()], Sum)
			if err != nil {
				return err
			}
			want := oracleFold(contribs[:c.Rank()+1], Sum)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("rank %d: %v want %v", c.Rank(), got, want)
				}
			}
			return nil
		}, &ok)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickGatherScatterRoundTrip: Scatter(Gather(x)) is the identity for
// random payloads and roots.
func TestQuickGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, rootRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		root := int(rootRaw) % n
		payloads := make([][]byte, n)
		for r := range payloads {
			payloads[r] = make([]byte, rng.Intn(32))
			rng.Read(payloads[r])
		}
		ok := true
		runGroupQuick(n, func(c *Comm) error {
			all, err := c.Gather(root, payloads[c.Rank()])
			if err != nil {
				return err
			}
			back, err := c.Scatter(root, all)
			if err != nil {
				return err
			}
			if string(back) != string(payloads[c.Rank()]) {
				return fmt.Errorf("rank %d round trip mismatch", c.Rank())
			}
			return nil
		}, &ok)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
