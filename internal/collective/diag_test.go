package collective

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/obsv/diag"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// runDiagGroup is runGroup with critical-path attribution wired on every
// rank: one shared board and flight recorder per group, as core wires them.
func runDiagGroup(t *testing.T, size int, fn func(c *Comm) error) (*diag.Board, *diag.Recorder) {
	t.Helper()
	board := diag.NewBoard("G", size)
	flight := diag.NewRecorder("G", 1<<10, nil)
	net := transport.NewMemNetwork()
	defer net.Close()
	comms := make([]*Comm, size)
	for r := 0; r < size; r++ {
		ep, err := net.Register(transport.Proc("G", r))
		if err != nil {
			t.Fatal(err)
		}
		comms[r], err = New(transport.NewDispatcher(ep), "G", r, size)
		if err != nil {
			t.Fatal(err)
		}
		comms[r].SetTimeout(30 * time.Second)
		comms[r].SetDiag(board, flight)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(comms[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	return board, flight
}

// TestDiagTrailerPreservesResults re-runs every operation with the
// attribution trailer on the wire and checks the results still come out
// right: the trailer must be invisible to the operation semantics.
func TestDiagTrailerPreservesResults(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runDiagGroup(t, n, func(c *Comm) error {
				vals := []float64{float64(c.Rank()), 2, 0.5}
				sum, err := c.AllReduce(vals, Sum)
				if err != nil {
					return err
				}
				wantSum := float64(n-1) * float64(n) / 2
				if sum[0] != wantSum || sum[1] != 2*float64(n) {
					return fmt.Errorf("allreduce got %v", sum)
				}
				if _, err := c.AllReduceWith(Ring, make([]float64, 64), Sum); err != nil {
					return err
				}
				msg := []byte("the payload")
				got, err := c.Bcast(0, append([]byte(nil), msg...))
				if err != nil {
					return err
				}
				if string(got) != string(msg) {
					return fmt.Errorf("bcast got %q", got)
				}
				big := make([]byte, 300<<10) // forces the segmented pipeline
				for i := range big {
					big[i] = byte(i)
				}
				gotBig, err := c.BcastWith(BinomialSeg, 0, big)
				if err != nil {
					return err
				}
				for i := range gotBig {
					if gotBig[i] != byte(i) {
						return fmt.Errorf("seg bcast corrupt at %d", i)
					}
				}
				part := []byte{byte(c.Rank())}
				parts, err := c.GatherWith(Binomial, 0, part)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					for r := range parts {
						if len(parts[r]) != 1 || parts[r][0] != byte(r) {
							return fmt.Errorf("gather entry %d = %v", r, parts[r])
						}
					}
				}
				all, err := c.AllGather(part)
				if err != nil {
					return err
				}
				for r := range all {
					if len(all[r]) != 1 || all[r][0] != byte(r) {
						return fmt.Errorf("allgather entry %d = %v", r, all[r])
					}
				}
				if _, err := c.Scan([]float64{1}, Sum); err != nil {
					return err
				}
				if _, err := c.ReduceScatter(make([]float64, n*3), Sum); err != nil {
					return err
				}
				return c.Barrier()
			})
		})
	}
}

// TestDiagBlamesSlowRank is the attribution acceptance check at the engine
// level: with one rank sleeping 1ms before every operation, the per-op
// consensus (largest-wait vote across the group) must converge on that rank
// for ≥95% of the attributed operations, under both AllReduce algorithms.
func TestDiagBlamesSlowRank(t *testing.T) {
	const (
		size = 8
		slow = 5
		ops  = 40
	)
	for _, algo := range []Algo{RecursiveDoubling, Ring} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			board, flight := runDiagGroup(t, size, func(c *Comm) error {
				vals := make([]float64, 256)
				for i := 0; i < ops; i++ {
					if c.Rank() == slow {
						time.Sleep(time.Millisecond)
					}
					if _, err := c.AllReduceWith(algo, vals, Sum); err != nil {
						return err
					}
				}
				return nil
			})
			s := board.Snapshot()
			if s.Ops != ops {
				t.Fatalf("ops = %d, want %d", s.Ops, ops)
			}
			if s.Attributed() == 0 {
				t.Fatal("no attributed ops at all")
			}
			// The race detector slows every rank by milliseconds, drowning
			// the 1ms signal; only assert attribution accuracy without it.
			if !raceEnabled {
				if f := s.Fraction(slow); f < 0.95 {
					t.Fatalf("slow rank fingered in %.1f%% of attributed ops, want >= 95%%\n%+v", 100*f, s)
				}
				top := s.Top(1)
				if len(top) == 0 || top[0].Rank != slow {
					t.Fatalf("top straggler %+v, want rank %d", top, slow)
				}
			}
			// The flight recorder saw the same ops.
			events := flight.Snapshot()
			coll := 0
			for _, e := range events {
				if e.Kind == diag.KindCollective {
					coll++
				}
			}
			if coll == 0 {
				t.Fatal("no collective events in the flight recorder")
			}
		})
	}
}

// TestDiagFoldWireFormat pins the trailer encoding: fold-word max semantics,
// int16 rank representation (-1 = none), cascade subtraction, and the noise
// floor.
func TestDiagFoldWireFormat(t *testing.T) {
	mk := func() *Comm {
		return &Comm{
			rank: 0, size: 8,
			hlen:    hdrLen + trailerLen,
			dclk:    vclock.Wall,
			minWait: int64(20 * time.Microsecond),
			dstate:  diagState{active: true, maxRank: -1},
		}
	}
	// A fresh comm stamps "no straggler yet".
	c := mk()
	p := make([]byte, c.hlen)
	c.stamp(p)
	d := mk()
	d.diagFold(3, p, false, 0, 0)
	if d.dstate.maxRank != -1 || d.dstate.maxWait != 0 {
		t.Fatalf("fold of empty trailer changed state: %+v", d.dstate)
	}
	// A peer-advertised wait wins the max fold.
	c = mk()
	c.dstate.maxWait, c.dstate.maxRank = 5_000_000, 6
	p = make([]byte, c.hlen)
	c.stamp(p)
	d = mk()
	d.dstate.maxWait, d.dstate.maxRank = 1_000_000, 2
	d.diagFold(3, p, false, 0, 0)
	if d.dstate.maxRank != 6 || d.dstate.maxWait != 5_000_000 {
		t.Fatalf("max fold lost: %+v", d.dstate)
	}
	// ... but a smaller advertised wait does not.
	d = mk()
	d.dstate.maxWait, d.dstate.maxRank = 9_000_000, 2
	d.diagFold(3, p, false, 0, 0)
	if d.dstate.maxRank != 2 || d.dstate.maxWait != 9_000_000 {
		t.Fatalf("smaller fold overwrote: %+v", d.dstate)
	}
	// Live receive: wait = send − post, and the peer's own advertised wait
	// is subtracted before blaming it (cascade collapse). Peer advertised
	// 5ms (blaming rank 6); we waited 6ms on the peer, so its intrinsic
	// contribution is 1ms < 5ms: rank 6 keeps the blame.
	sendNS := int64(10_000_000)
	putSendTS(p, sendNS)
	d = mk()
	post := sendNS - 6_000_000
	recv := sendNS + 1000
	d.diagFold(3, p, true, post, recv)
	if d.dstate.maxRank != 6 || d.dstate.maxWait != 5_000_000 {
		t.Fatalf("cascade not collapsed: %+v", d.dstate)
	}
	if d.dstate.waitNS != 6_000_000 {
		t.Fatalf("waitNS = %d, want 6ms", d.dstate.waitNS)
	}
	// If our wait dwarfs the peer's advertised wait, the peer itself is
	// blamed with the intrinsic difference.
	d = mk()
	post = sendNS - 20_000_000
	d.diagFold(3, p, true, post, sendNS+500)
	if d.dstate.maxRank != 3 || d.dstate.maxWait != 15_000_000 {
		t.Fatalf("intrinsic blame wrong: %+v", d.dstate)
	}
	// Waits below the noise floor blame nobody.
	d = mk()
	q := make([]byte, d.hlen)
	c2 := mk()
	c2.stamp(q)
	sendAt := time.Now().UnixNano()
	putSendTS(q, sendAt)
	d.diagFold(3, q, true, sendAt-5_000, sendAt+100)
	if d.dstate.maxRank != -1 {
		t.Fatalf("noise blamed: %+v", d.dstate)
	}
}

// TestDiagDetach verifies SetDiag(nil, nil) restores the bare-header wire
// format and drops the state.
func TestDiagDetach(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	ep, _ := net.Register(transport.Proc("G", 0))
	c, err := New(transport.NewDispatcher(ep), "G", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.diagEnabled() {
		t.Fatal("diag on by default")
	}
	c.SetDiag(diag.NewBoard("G", 1), nil)
	if !c.diagEnabled() || c.Board() == nil {
		t.Fatal("diag not enabled")
	}
	c.SetDiag(nil, nil)
	if c.diagEnabled() || c.Board() != nil {
		t.Fatal("diag not detached")
	}
	if _, err := c.AllReduce([]float64{1}, Sum); err != nil {
		t.Fatal(err)
	}
}

// TestDiagStragglerInstruments checks the collective.<op>.straggler.*
// instruments and the quantile status rendering fill in under diagnosis.
func TestDiagStragglerInstruments(t *testing.T) {
	reg := obsv.NewRegistry()
	const size, slow = 4, 2
	board := diag.NewBoard("G", size)
	net := transport.NewMemNetwork()
	defer net.Close()
	comms := make([]*Comm, size)
	for r := 0; r < size; r++ {
		ep, _ := net.Register(transport.Proc("G", r))
		c, err := New(transport.NewDispatcher(ep), "G", r, size)
		if err != nil {
			t.Fatal(err)
		}
		c.SetTimeout(30 * time.Second)
		c.SetDiag(board, nil)
		c.SetInstruments(NewInstruments(reg, "G"))
		comms[r] = c
	}
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if c.Rank() == slow {
					time.Sleep(500 * time.Microsecond)
				}
				c.AllReduce([]float64{1}, Sum)
			}
		}(comms[r])
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap[`collective.allreduce.straggler.wait_ns{program=G}_count`] == 0 {
		t.Fatalf("straggler wait histogram empty: %v", snap)
	}
	if got := snap[`collective.allreduce.straggler.rank{program=G}`]; got != slow && !raceEnabled {
		t.Fatalf("straggler rank gauge = %v, want %d", got, slow)
	}
}

// putSendTS overwrites a stamped trailer's send timestamp (test helper).
func putSendTS(p []byte, ts int64) {
	for i := 0; i < 8; i++ {
		p[hdrLen+8+i] = byte(uint64(ts) >> (8 * i))
	}
}
