package collective

// The ring (Rabenseifner) AllReduce: a ring ReduceScatter followed by a ring
// AllGather. The vector is split into size blocks; after size-1
// reduce-scatter steps rank r owns the fully reduced block r, and size-1
// allgather steps rotate every reduced block to every rank. Each rank sends
// and receives ~2·(size-1)/size·len elements total — bandwidth-optimal and
// independent of group size, versus log2(size)·len for recursive doubling —
// at the price of 2(size-1) latencies, which is why the dispatch table only
// routes large vectors here.
//
// Each block's reduction is a single chain (rank b+1 → b+2 → ... → b), so
// every rank observes the identical fold order and the results are bitwise
// identical on all ranks.

// blockRange returns the [lo, hi) element range of block b when an n-element
// vector is split across size blocks (blocks differ by at most one element;
// empty blocks are fine when n < size).
func blockRange(n, size, b int) (int, int) {
	return b * n / size, (b + 1) * n / size
}

func mod(a, n int) int { return ((a % n) + n) % n }

// ringAllReduce folds acc in place across the group. Rounds 0..size-2 are
// the reduce-scatter phase, rounds size-1..2*size-3 the allgather phase.
func (c *Comm) ringAllReduce(seq uint32, acc []float64, op Op) error {
	if err := c.ringReduceScatterPhase(seq, opAllReduce, acc, op); err != nil {
		return err
	}
	return c.ringAllGatherPhase(seq, opAllReduce, acc)
}

// ringReduceScatterPhase runs the reduce-scatter half: in step s rank r
// sends block (r-s-1) mod size to its right neighbor and folds its local
// contribution into the partial for block (r-s-2) mod size arriving from the
// left. After size-1 steps acc's block r holds the full reduction.
func (c *Comm) ringReduceScatterPhase(seq uint32, op opID, acc []float64, fold Op) error {
	n, sz, r := len(acc), c.size, c.rank
	right, left := (r+1)%sz, (r-1+sz)%sz
	for s := 0; s < sz-1; s++ {
		h := c.hdr(seq, s, op)
		lo, hi := blockRange(n, sz, mod(r-s-1, sz))
		if err := c.sendFloats(right, op, h, acc[lo:hi]); err != nil {
			return err
		}
		rlo, rhi := blockRange(n, sz, mod(r-s-2, sz))
		vals, err := c.recvScratch(left, op, h, rhi-rlo)
		if err != nil {
			return err
		}
		fold(acc[rlo:rhi], vals)
	}
	return nil
}

// ringAllGatherPhase rotates the reduced blocks: in step s rank r forwards
// block (r-s) mod size and receives block (r-s-1) mod size into place.
func (c *Comm) ringAllGatherPhase(seq uint32, op opID, acc []float64) error {
	n, sz, r := len(acc), c.size, c.rank
	right, left := (r+1)%sz, (r-1+sz)%sz
	for s := 0; s < sz-1; s++ {
		h := c.hdr(seq, sz-1+s, op)
		lo, hi := blockRange(n, sz, mod(r-s, sz))
		if err := c.sendFloats(right, op, h, acc[lo:hi]); err != nil {
			return err
		}
		rlo, rhi := blockRange(n, sz, mod(r-s-1, sz))
		if err := c.recvInto(left, op, h, acc[rlo:rhi]); err != nil {
			return err
		}
	}
	return nil
}
