package collective

// Barrier blocks until every rank in the group has entered the barrier. It
// uses the dissemination algorithm: ceil(log2(n)) rounds, in round k each
// rank signals (rank + 2^k) mod n and waits for (rank - 2^k) mod n, so no
// rank can leave before all have arrived.
func (c *Comm) Barrier() error {
	if c.revoked {
		return ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if c.size == 1 {
		c.obsDone(opBarrier, Dissemination, start)
		return nil
	}
	round := 0
	for dist := 1; dist < c.size; dist <<= 1 {
		h := c.hdr(seq, round, opBarrier)
		to := (c.rank + dist) % c.size
		from := (c.rank - dist%c.size + c.size) % c.size
		if err := c.sendBytes(to, opBarrier, h, nil); err != nil {
			return err
		}
		p, err := c.recv(from, opBarrier, h)
		if err != nil {
			return err
		}
		c.recycle(p)
		round++
	}
	c.obsDone(opBarrier, Dissemination, start)
	return nil
}
