package collective

// Barrier blocks until every rank in the group has entered the barrier. It
// uses the dissemination algorithm: ceil(log2(n)) rounds, in round k each
// rank signals (rank + 2^k) mod n and waits for (rank - 2^k) mod n, so no
// rank can leave before all have arrived.
func (c *Comm) Barrier() error {
	tag := c.nextTag("barrier")
	if c.size == 1 {
		return nil
	}
	for dist := 1; dist < c.size; dist <<= 1 {
		to := (c.rank + dist) % c.size
		from := (c.rank - dist%c.size + c.size) % c.size
		if err := c.sendRank(to, tag, nil); err != nil {
			return err
		}
		if _, err := c.recvRank(from, tag); err != nil {
			return err
		}
	}
	return nil
}
