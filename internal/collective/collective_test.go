package collective

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// runGroup creates a size-process group over an in-memory network and runs fn
// on every rank concurrently, failing the test on any returned error.
func runGroup(t *testing.T, size int, fn func(c *Comm) error) {
	t.Helper()
	net := transport.NewMemNetwork()
	defer net.Close()
	comms := make([]*Comm, size)
	for r := 0; r < size; r++ {
		ep, err := net.Register(transport.Proc("G", r))
		if err != nil {
			t.Fatal(err)
		}
		d := transport.NewDispatcher(ep)
		comms[r], err = New(d, "G", r, size)
		if err != nil {
			t.Fatal(err)
		}
		comms[r].SetTimeout(10 * time.Second)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(comms[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

var groupSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestNewValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	ep, _ := net.Register(transport.Proc("G", 0))
	d := transport.NewDispatcher(ep)
	if _, err := New(d, "G", 0, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(d, "G", 5, 4); err == nil {
		t.Error("rank out of range accepted")
	}
	c, err := New(d, "G", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 2 || c.Size() != 4 || c.Program() != "G" {
		t.Error("accessors wrong")
	}
}

func TestBarrierAllArrive(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			var entered int32
			runGroup(t, n, func(c *Comm) error {
				atomic.AddInt32(&entered, 1)
				if err := c.Barrier(); err != nil {
					return err
				}
				// After the barrier everyone must have entered it.
				if got := atomic.LoadInt32(&entered); got != int32(n) {
					return fmt.Errorf("left barrier with %d/%d entered", got, n)
				}
				return nil
			})
		})
	}
}

func TestBarrierRepeated(t *testing.T) {
	runGroup(t, 4, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			if err := c.Barrier(); err != nil {
				return fmt.Errorf("barrier %d: %w", i, err)
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, n := range groupSizes {
		for root := 0; root < n; root += 3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				want := []byte("broadcast-payload")
				runGroup(t, n, func(c *Comm) error {
					var in []byte
					if c.Rank() == root {
						in = want
					}
					out, err := c.Bcast(root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(out, want) {
						return fmt.Errorf("got %q", out)
					}
					return nil
				})
			})
		}
	}
}

func TestBcastBadRoot(t *testing.T) {
	runGroup(t, 2, func(c *Comm) error {
		if _, err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
}

func TestBcastFloats(t *testing.T) {
	want := []float64{1.5, -2.25, math.Pi}
	runGroup(t, 5, func(c *Comm) error {
		var in []float64
		if c.Rank() == 1 {
			in = want
		}
		out, err := c.BcastFloats(1, in)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(out, want) {
			return fmt.Errorf("got %v", out)
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			// rank r contributes [r, 2r]; sum over r in 0..n-1.
			wantA := float64(n * (n - 1) / 2)
			runGroup(t, n, func(c *Comm) error {
				r := float64(c.Rank())
				res, err := c.Reduce(0, []float64{r, 2 * r}, Sum)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					if res[0] != wantA || res[1] != 2*wantA {
						return fmt.Errorf("got %v, want [%v %v]", res, wantA, 2*wantA)
					}
				} else if res != nil {
					return fmt.Errorf("non-root got non-nil %v", res)
				}
				return nil
			})
		})
	}
}

func TestReduceNonzeroRoot(t *testing.T) {
	runGroup(t, 6, func(c *Comm) error {
		res, err := c.Reduce(4, []float64{1}, Sum)
		if err != nil {
			return err
		}
		if c.Rank() == 4 && res[0] != 6 {
			return fmt.Errorf("root got %v", res)
		}
		return nil
	})
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		want float64 // over ranks 0..3 with contribution rank+1
	}{
		{"sum", Sum, 10},
		{"prod", Prod, 24},
		{"max", Max, 4},
		{"min", Min, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runGroup(t, 4, func(c *Comm) error {
				v, err := c.ReduceScalar(0, float64(c.Rank()+1), tc.op)
				if err != nil {
					return err
				}
				if c.Rank() == 0 && v != tc.want {
					return fmt.Errorf("got %v want %v", v, tc.want)
				}
				return nil
			})
		})
	}
}

func TestAllReduce(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			want := float64(n*(n-1)) / 2
			runGroup(t, n, func(c *Comm) error {
				v, err := c.AllReduceScalar(float64(c.Rank()), Sum)
				if err != nil {
					return err
				}
				if v != want {
					return fmt.Errorf("rank %d got %v want %v", c.Rank(), v, want)
				}
				return nil
			})
		})
	}
}

func TestAllReduceVector(t *testing.T) {
	runGroup(t, 7, func(c *Comm) error {
		local := []float64{float64(c.Rank()), 1}
		res, err := c.AllReduce(local, Sum)
		if err != nil {
			return err
		}
		if res[0] != 21 || res[1] != 7 {
			return fmt.Errorf("got %v", res)
		}
		// Local buffer must be untouched.
		if local[0] != float64(c.Rank()) {
			return fmt.Errorf("local modified: %v", local)
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				part := []byte(fmt.Sprintf("part-%d", c.Rank()))
				all, err := c.Gather(0, part)
				if err != nil {
					return err
				}
				if c.Rank() != 0 {
					if all != nil {
						return fmt.Errorf("non-root got %v", all)
					}
					return nil
				}
				for r := 0; r < n; r++ {
					if string(all[r]) != fmt.Sprintf("part-%d", r) {
						return fmt.Errorf("slot %d = %q", r, all[r])
					}
				}
				return nil
			})
		})
	}
}

func TestScatter(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				var parts [][]byte
				if c.Rank() == 0 {
					for r := 0; r < n; r++ {
						parts = append(parts, []byte(fmt.Sprintf("piece-%d", r)))
					}
				}
				mine, err := c.Scatter(0, parts)
				if err != nil {
					return err
				}
				if string(mine) != fmt.Sprintf("piece-%d", c.Rank()) {
					return fmt.Errorf("got %q", mine)
				}
				return nil
			})
		})
	}
}

func TestScatterWrongPartCount(t *testing.T) {
	runGroup(t, 1, func(c *Comm) error {
		if _, err := c.Scatter(0, [][]byte{nil, nil}); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		return nil
	})
}

func TestAllGather(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				all, err := c.AllGather([]byte{byte(c.Rank())})
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if len(all[r]) != 1 || all[r][0] != byte(r) {
						return fmt.Errorf("rank %d slot %d = %v", c.Rank(), r, all[r])
					}
				}
				return nil
			})
		})
	}
}

func TestAllToAll(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				parts := make([][]byte, n)
				for r := 0; r < n; r++ {
					parts[r] = []byte(fmt.Sprintf("%d->%d", c.Rank(), r))
				}
				got, err := c.AllToAll(parts)
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					want := fmt.Sprintf("%d->%d", r, c.Rank())
					if string(got[r]) != want {
						return fmt.Errorf("from %d: %q want %q", r, got[r], want)
					}
				}
				return nil
			})
		})
	}
}

func TestPointToPoint(t *testing.T) {
	runGroup(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.SendFloats(1, "halo", []float64{3.5, 4.5}); err != nil {
				return err
			}
			return nil
		}
		vals, err := c.RecvFloats(0, "halo")
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(vals, []float64{3.5, 4.5}) {
			return fmt.Errorf("got %v", vals)
		}
		return nil
	})
}

func TestPointToPointOutOfOrderTags(t *testing.T) {
	runGroup(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, "a", []byte("A"))
			c.Send(1, "b", []byte("B"))
			return nil
		}
		// Receive in the opposite order; "a" must be buffered.
		b, err := c.Recv(0, "b")
		if err != nil || string(b) != "B" {
			return fmt.Errorf("b: %v %q", err, b)
		}
		a, err := c.Recv(0, "a")
		if err != nil || string(a) != "A" {
			return fmt.Errorf("a: %v %q", err, a)
		}
		return nil
	})
}

// TestMixedSequence runs a realistic mixed sequence of collectives to shake
// out tag collisions between operations.
func TestMixedSequence(t *testing.T) {
	runGroup(t, 8, func(c *Comm) error {
		for i := 0; i < 5; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			sum, err := c.AllReduceScalar(1, Sum)
			if err != nil {
				return err
			}
			if sum != 8 {
				return fmt.Errorf("iter %d: sum %v", i, sum)
			}
			out, err := c.Bcast(i%8, []byte{byte(i)})
			if err != nil {
				return err
			}
			if out[0] != byte(i) {
				return fmt.Errorf("iter %d: bcast %v", i, out)
			}
			all, err := c.AllGather([]byte{byte(c.Rank())})
			if err != nil {
				return err
			}
			if len(all) != 8 {
				return fmt.Errorf("allgather size %d", len(all))
			}
		}
		return nil
	})
}

// TestSkewedEntry verifies collectives tolerate ranks entering at very
// different times (the load-imbalance scenario central to the paper).
func TestSkewedEntry(t *testing.T) {
	runGroup(t, 4, func(c *Comm) error {
		time.Sleep(time.Duration(c.Rank()) * 20 * time.Millisecond)
		v, err := c.AllReduceScalar(float64(c.Rank()), Max)
		if err != nil {
			return err
		}
		if v != 3 {
			return fmt.Errorf("got %v", v)
		}
		return nil
	})
}

func TestReduceScalarOnTCP(t *testing.T) {
	r, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	net := transport.NewTCPNetwork(r.ListenAddr())
	defer net.Close()
	const n = 4
	comms := make([]*Comm, n)
	for i := 0; i < n; i++ {
		ep, err := net.Register(transport.Proc("T", i))
		if err != nil {
			t.Fatal(err)
		}
		comms[i], err = New(transport.NewDispatcher(ep), "T", i, n)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = comms[i].AllReduceScalar(float64(i+1), Sum)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("rank %d: %v", i, errs[i])
		}
		if vals[i] != 10 {
			t.Errorf("rank %d got %v", i, vals[i])
		}
	}
}

// TestAllReduceEquivalence checks the recursive-doubling AllReduce against
// the classic Reduce-to-root + Bcast composition it replaced, across the
// size matrix (power-of-two sizes exercise the plain doubling sweep, the
// others the remainder pre/post fold — 3 and 5 maximize the remainder, 6
// and 12 exercise even remainders, 7 is pow2-1) and across ops.
// Contributions are exact small integers, so every combining order yields
// bit-identical sums.
func TestAllReduceEquivalence(t *testing.T) {
	sizes := append([]int(nil), groupSizes...)
	sizes = append(sizes, 6, 12)
	for _, n := range sizes {
		n := n
		for _, tc := range []struct {
			name string
			op   Op
		}{{"sum", Sum}, {"max", Max}, {"min", Min}} {
			tc := tc
			t.Run(fmt.Sprintf("%s/%d", tc.name, n), func(t *testing.T) {
				runGroup(t, n, func(c *Comm) error {
					local := []float64{
						float64(c.Rank() + 1),
						float64((c.Rank()*7)%5 - 2),
						float64(-c.Rank()),
					}
					got, err := c.AllReduce(local, tc.op)
					if err != nil {
						return err
					}
					// Reference: the reduce+bcast composition on the same
					// contributions.
					ref, err := c.Reduce(0, local, tc.op)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						if _, err := c.Bcast(0, encodeFloats(ref)); err != nil {
							return err
						}
					} else {
						b, err := c.Bcast(0, nil)
						if err != nil {
							return err
						}
						if ref, err = c.decodeSameLen(b, len(local)); err != nil {
							return err
						}
					}
					for i := range got {
						if got[i] != ref[i] {
							return fmt.Errorf("rank %d elem %d: AllReduce %v, Reduce+Bcast %v", c.Rank(), i, got, ref)
						}
					}
					return nil
				})
			})
		}
	}
}
