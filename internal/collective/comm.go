// Package collective implements the collective-operation substrate the
// paper's title refers to: process groups with ranks and the classic SPMD
// collectives (barrier, broadcast, reduce, allreduce, gather, allgather,
// scatter, alltoall), built on the transport layer the way MPI builds them on
// point-to-point messaging.
//
// Every process of a parallel program holds a Comm. Collective calls must be
// made by all members of the group in the same order — exactly the collective
// property the coupling framework's export/import operations also obey
// (Property 1 in the paper).
package collective

import (
	"fmt"
	"time"

	"repro/internal/obsv"
	"repro/internal/transport"
)

// DefaultTimeout bounds how long a collective waits for a peer message before
// reporting a likely deadlock or dead peer. Coupled-simulation components can
// legitimately drift apart by long compute phases, so this is generous.
const DefaultTimeout = 60 * time.Second

// Comm is one process's handle on its program's process group.
type Comm struct {
	d       *transport.Dispatcher
	program string
	rank    int
	size    int
	opSeq   uint64
	timeout time.Duration

	// pending holds collective messages received out of the order this rank
	// consumes them (peers may progress into the next operation before this
	// rank finishes the current one).
	pending []transport.Message
	// pointPending does the same for application point-to-point messages.
	pointPending []transport.Message

	// allReduceHist, when set, observes every AllReduce's wall time in
	// nanoseconds (a nil histogram is a no-op, so the default costs nothing).
	allReduceHist *obsv.Histogram
}

// New returns the Comm for rank within a size-process group named program.
// The dispatcher must belong to transport address {program, rank}.
func New(d *transport.Dispatcher, program string, rank, size int) (*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("collective: group size %d", size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("collective: rank %d outside group of %d", rank, size)
	}
	return &Comm{d: d, program: program, rank: rank, size: size, timeout: DefaultTimeout}, nil
}

// Rank returns this process's rank in the group.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.size }

// Program returns the program (group) name.
func (c *Comm) Program() string { return c.program }

// SetTimeout overrides the per-message wait bound used by collectives.
func (c *Comm) SetTimeout(d time.Duration) { c.timeout = d }

// SetAllReduceHist attaches a latency histogram to AllReduce (nil detaches).
func (c *Comm) SetAllReduceHist(h *obsv.Histogram) { c.allReduceHist = h }

// nextTag allocates the operation tag for the next collective. Because every
// rank executes the same collective sequence, the per-Comm counter alone
// disambiguates concurrent operations.
func (c *Comm) nextTag(op string) string {
	c.opSeq++
	return fmt.Sprintf("%s#%d", op, c.opSeq)
}

// sendRank sends a collective message to another rank in the group.
func (c *Comm) sendRank(to int, tag string, payload []byte) error {
	return c.d.Send(transport.Message{
		Kind:    transport.KindCollective,
		Dst:     transport.Proc(c.program, to),
		Tag:     tag,
		Payload: payload,
	})
}

// recvRank receives the collective message with the given tag from the given
// rank, buffering any other collective traffic that arrives first.
func (c *Comm) recvRank(from int, tag string) ([]byte, error) {
	src := transport.Proc(c.program, from)
	for i, m := range c.pending {
		if m.Src == src && m.Tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.Payload, nil
		}
	}
	for {
		m, err := c.d.RecvTimeout(transport.KindCollective, c.timeout)
		if err != nil {
			return nil, fmt.Errorf("collective: %s waiting for %s tag %q: %w",
				transport.Proc(c.program, c.rank), src, tag, err)
		}
		if m.Src == src && m.Tag == tag {
			return m.Payload, nil
		}
		c.pending = append(c.pending, m)
	}
}

// Send delivers an application payload to another rank (point-to-point,
// tagged). It is the intra-program messaging used for e.g. halo exchange.
func (c *Comm) Send(to int, tag string, payload []byte) error {
	return c.d.Send(transport.Message{
		Kind:    transport.KindPoint,
		Dst:     transport.Proc(c.program, to),
		Tag:     tag,
		Payload: payload,
	})
}

// Recv receives the application payload with the given tag from the given
// rank, buffering mismatched point-to-point traffic.
func (c *Comm) Recv(from int, tag string) ([]byte, error) {
	src := transport.Proc(c.program, from)
	for i, m := range c.pointPending {
		if m.Src == src && m.Tag == tag {
			c.pointPending = append(c.pointPending[:i], c.pointPending[i+1:]...)
			return m.Payload, nil
		}
	}
	for {
		m, err := c.d.RecvTimeout(transport.KindPoint, c.timeout)
		if err != nil {
			return nil, fmt.Errorf("collective: %s waiting for point msg from %s tag %q: %w",
				transport.Proc(c.program, c.rank), src, tag, err)
		}
		if m.Src == src && m.Tag == tag {
			return m.Payload, nil
		}
		c.pointPending = append(c.pointPending, m)
	}
}

// SendFloats sends a float64 slice point-to-point.
func (c *Comm) SendFloats(to int, tag string, vals []float64) error {
	return c.Send(to, tag, encodeFloats(vals))
}

// RecvFloats receives a float64 slice point-to-point.
func (c *Comm) RecvFloats(from int, tag string) ([]float64, error) {
	b, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	return decodeFloats(b)
}
