// Package collective implements the collective-operation substrate the
// paper's title refers to: process groups with ranks and the classic SPMD
// collectives (barrier, broadcast, reduce, allreduce, gather, allgather,
// scatter, alltoall), built on the transport layer the way MPI builds them on
// point-to-point messaging.
//
// Every process of a parallel program holds a Comm. Collective calls must be
// made by all members of the group in the same order — exactly the collective
// property the coupling framework's export/import operations also obey
// (Property 1 in the paper).
//
// The engine is multi-algorithm: each operation carries a latency-optimal and
// a bandwidth-optimal implementation (see algo.go), dispatched per call on
// (group size, vector bytes) through a Table that Tune can calibrate against
// the live transport. Result slices returned by collectives never alias the
// caller's input slices.
package collective

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obsv"
	"repro/internal/obsv/diag"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// DefaultTimeout bounds how long a collective waits for a peer message before
// reporting a likely deadlock or dead peer. Coupled-simulation components can
// legitimately drift apart by long compute phases, so this is generous.
const DefaultTimeout = 60 * time.Second

// maxFreeBuffers bounds the per-Comm recycled-buffer list.
const maxFreeBuffers = 32

// defaultPendingCap bounds the parked out-of-order frame list: frames from a
// failed or stale rank must not accumulate forever, so past the cap the
// oldest parked frame is evicted (and counted). Legitimate traffic never
// comes close — a group's skew is bounded by rounds in flight.
const defaultPendingCap = 4096

// Comm is one process's handle on its program's process group.
type Comm struct {
	d       *transport.Dispatcher
	program string
	rank    int
	size    int
	opSeq   uint32
	timeout time.Duration
	table   *Table

	// pending holds collective messages received out of the order this rank
	// consumes them (peers may progress into later rounds or operations
	// before this rank finishes the current one).
	pending []transport.Message
	// pointPending does the same for application point-to-point messages.
	pointPending []transport.Message

	// timer is the reused receive-deadline timer (allocated on first use
	// from the dispatcher's clock, re-armed per receive). armedAt records
	// the clock reading at the latest re-arm so receive loops can tell a
	// genuine deadline from a stale fire (see deadline).
	timer   vclock.Timer
	clk     vclock.Clock
	armedAt time.Time

	// Fault tolerance (fault.go). epoch stamps the low header byte so a
	// shrunk group's frames never match a stale group's; peers maps
	// current-group ranks to base transport ranks after shrinks (nil =
	// identity); suspects is the local failure detector's output; revoked
	// poisons the Comm; agreeSeq counts AgreeFailures episodes; pendingCap
	// bounds the parked-frame list.
	epoch      uint8
	peers      []int
	suspects   rankSet
	deadSet    rankSet
	revoked    bool
	agreeSeq   uint32
	pendingCap int

	// reuse enables the zero-allocation hot path: send buffers come from
	// free, and received float-operation payloads — whose ownership
	// transfers to this rank at delivery — are recycled into it. Safe only
	// on transports that neither retain sent payloads (resend buffers) nor
	// deliver one payload to multiple endpoints; see SetBufferReuse.
	reuse    bool
	free     [][]byte
	fscratch []float64

	ins *Instruments
	// allReduceHist, when set, observes every AllReduce's wall time in
	// nanoseconds (a nil histogram is a no-op, so the default costs nothing).
	allReduceHist *obsv.Histogram

	// Diagnosis state (see diag.go). hlen is the per-payload prefix length:
	// hdrLen normally, hdrLen+trailerLen when critical-path attribution is
	// on and every payload carries the piggybacked fold trailer.
	hlen    int
	board   *diag.Board
	flight  *diag.Recorder
	dclk    vclock.Clock
	minWait int64
	dstate  diagState
}

// New returns the Comm for rank within a size-process group named program.
// The dispatcher must belong to transport address {program, rank}.
func New(d *transport.Dispatcher, program string, rank, size int) (*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("collective: group size %d", size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("collective: rank %d outside group of %d", rank, size)
	}
	return &Comm{
		d: d, program: program, rank: rank, size: size,
		timeout:    DefaultTimeout,
		table:      DefaultTable(),
		hlen:       hdrLen,
		pendingCap: defaultPendingCap,
	}, nil
}

// Rank returns this process's rank in the group.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.size }

// Program returns the program (group) name.
func (c *Comm) Program() string { return c.program }

// SetTimeout overrides the per-message wait bound used by collectives.
func (c *Comm) SetTimeout(d time.Duration) { c.timeout = d }

// SetAllReduceHist attaches a latency histogram to AllReduce (nil detaches).
func (c *Comm) SetAllReduceHist(h *obsv.Histogram) { c.allReduceHist = h }

// SetInstruments attaches per-op/per-algorithm latency histograms (nil
// detaches).
func (c *Comm) SetInstruments(ins *Instruments) { c.ins = ins }

// Instruments returns the attached instruments (possibly nil).
func (c *Comm) Instruments() *Instruments { return c.ins }

// Table returns the dispatch table in effect.
func (c *Comm) Table() *Table { return c.table }

// SetTable installs a dispatch table (nil restores the defaults). All ranks
// of a group must install identical tables — dispatch decisions are made
// independently per rank and must agree.
func (c *Comm) SetTable(t *Table) {
	if t == nil {
		t = DefaultTable()
	}
	c.table = t
}

// SetBufferReuse turns on the allocation-free hot path: wire buffers for
// collective sends are drawn from a per-Comm free list refilled with the
// payloads of received float-vector messages, whose ownership transfers to
// the receiver at delivery.
//
// This is safe on the plain in-memory transport, where a payload is passed
// by reference to exactly one receiver and the sender never touches it
// again. It is NOT safe under transports that retain sent payloads — the
// reliable layer keeps them for retransmission until acked — so it defaults
// to off; benchmarks and single-process in-memory deployments opt in.
func (c *Comm) SetBufferReuse(on bool) {
	c.reuse = on
	if !on {
		c.free = nil
	}
}

// nextSeq advances the per-Comm operation counter. Because every rank
// executes the same collective sequence, the counter alone identifies the
// operation instance on all ranks.
func (c *Comm) nextSeq() uint32 {
	c.opSeq++
	if c.diagEnabled() {
		c.dstate = diagState{active: true, maxRank: -1}
	}
	return c.opSeq
}

// buf returns a byte slice of length n, from the free list when reuse is on.
func (c *Comm) buf(n int) []byte {
	if c.reuse {
		for i := len(c.free) - 1; i >= 0; i-- {
			if cap(c.free[i]) >= n {
				b := c.free[i][:n]
				c.free = append(c.free[:i], c.free[i+1:]...)
				return b
			}
		}
	}
	return make([]byte, n)
}

// recycle returns a received payload to the free list. Only call with
// buffers this rank exclusively owns (point-to-point float-op payloads).
func (c *Comm) recycle(b []byte) {
	if !c.reuse || cap(b) == 0 || len(c.free) >= maxFreeBuffers {
		return
	}
	c.free = append(c.free, b)
}

// scratch returns the reused float64 decode buffer, valid until the next
// scratch or recvScratch call.
func (c *Comm) scratch(n int) []float64 {
	if cap(c.fscratch) < n {
		c.fscratch = make([]float64, n)
	}
	return c.fscratch[:n]
}

// deadline re-arms the per-Comm receive timer and returns its channel,
// avoiding a timer allocation per receive.
//
// Invariant (the classic time.Timer re-arm pattern): the timer channel is
// only ever consumed by the single goroutine driving this Comm, so after
// Stop reports false the one buffered fire — if it already landed — is
// drained by the non-blocking select and Reset arms cleanly. The remaining
// race (pre-Go 1.23 runtimes): a fire in flight between the drain and the
// Reset lands *after* re-arming, so the next wait can pop a tick that
// predates its arming. That stale tick is unavoidable here, which is why
// armedAt records each arming and every receive loop treats a timeout whose
// elapsed time (on the same clock) is short of the configured deadline as
// spurious, re-arming instead of suspecting a peer. TestDeadlineTimerHammer
// exercises this back-to-back.
func (c *Comm) deadline() <-chan time.Time {
	if c.timer == nil {
		c.clk = c.d.Clock()
		c.armedAt = c.clk.Now()
		c.timer = c.clk.NewTimer(c.timeout)
		return c.timer.C()
	}
	if !c.timer.Stop() {
		// Drain a stale fire so Reset arms cleanly.
		select {
		case <-c.timer.C():
		default:
		}
	}
	c.armedAt = c.clk.Now()
	c.timer.Reset(c.timeout)
	return c.timer.C()
}

// obsStart begins an operation latency measurement when instrumented.
func (c *Comm) obsStart() time.Time {
	if c.ins == nil && c.allReduceHist == nil {
		return time.Time{}
	}
	return time.Now()
}

// obsDone records an operation latency under (op, algo) and, with
// diagnosis on, flushes the operation's straggler attribution.
func (c *Comm) obsDone(op opID, algo Algo, start time.Time) {
	if c.dstate.active {
		c.diagEnd(op)
	}
	if start.IsZero() {
		return
	}
	ns := time.Since(start).Nanoseconds()
	if op == opAllReduce {
		c.allReduceHist.Observe(ns)
	}
	c.ins.observe(op, algo, ns)
}

// sendRaw sends a preassembled payload (already carrying its header) to
// another rank. Used when forwarding a received broadcast payload verbatim;
// the payload may reach several ranks, so it must never be recycled. A
// transport that knows the destination is gone (raw in-memory endpoints
// report ErrUnknownAddr; the reliable layer absorbs errors into its resend
// loop) turns into an immediate suspicion instead of a generic send error.
func (c *Comm) sendRaw(to int, op opID, payload []byte) error {
	err := c.d.Send(transport.Message{
		Kind:    transport.KindCollective,
		Dst:     c.addr(to),
		Tag:     opTags[op],
		Payload: payload,
	})
	if err != nil && errors.Is(err, transport.ErrUnknownAddr) {
		c.markDead(to)
		return &RankFailedError{Program: c.program, Rank: to, Op: opTags[op], Seq: c.opSeq}
	}
	return err
}

// sendBytes sends header h (plus the diagnosis trailer when attached)
// followed by body.
func (c *Comm) sendBytes(to int, op opID, h uint64, body []byte) error {
	b := c.buf(c.hlen + len(body))
	putHdr(b, h)
	if c.hlen != hdrLen {
		c.stamp(b)
	}
	copy(b[c.hlen:], body)
	return c.sendRaw(to, op, b)
}

// sendFloats sends header h followed by the flat float64 encoding of vals.
func (c *Comm) sendFloats(to int, op opID, h uint64, vals []float64) error {
	b := c.buf(c.hlen + wire.Float64sSize(len(vals)))
	putHdr(b, h)
	if c.hlen != hdrLen {
		c.stamp(b)
	}
	wire.AppendFloat64s(b[:c.hlen], vals)
	return c.sendRaw(to, op, b)
}

// recv receives the collective payload with header h from rank from,
// buffering any other collective traffic that arrives first. The returned
// slice includes the header; the caller owns it.
//
// Failure semantics: a revoked Comm fails immediately with ErrRevoked, as
// does the arrival of a current-epoch revocation frame; a deadline expiry
// (or waiting on an already-suspected rank) yields a RankFailedError naming
// the peer. Frames from older epochs are dropped, frames from future epochs
// — survivors that already shrunk — are parked for the successor Comm.
func (c *Comm) recv(from int, op opID, h uint64) ([]byte, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	if c.suspects != nil && c.suspects.has(from) {
		return nil, c.failedErr(from, op, h)
	}
	src := c.addr(from)
	tag := opTags[op]
	for i := range c.pending {
		m := &c.pending[i]
		if m.Src == src && m.Tag == tag && matchHdr(m.Payload, h) {
			p := m.Payload
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			if c.hlen != hdrLen {
				// The payload arrived while this rank was posted on some
				// other receive: no wait measurement, fold word only.
				c.diagFold(from, p, false, 0, 0)
			}
			return p, nil
		}
	}
	var postNS int64
	if c.hlen != hdrLen {
		postNS = c.nowNS()
	}
	for {
		m, err := c.d.RecvDeadline(transport.KindCollective, c.deadline())
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				if c.clk.Since(c.armedAt) < c.timeout {
					continue // stale timer fire; see deadline
				}
				c.suspect(from)
				return nil, c.failedErr(from, op, h)
			}
			return nil, fmt.Errorf("collective: %s waiting for %s op %s seq %d round %d: %w",
				c.addr(c.rank), src, tag, h>>32, uint16(h>>16), err)
		}
		if m.Src == src && m.Tag == tag && matchHdr(m.Payload, h) {
			if c.hlen != hdrLen {
				c.diagFold(from, m.Payload, true, postNS, c.nowNS())
			}
			return m.Payload, nil
		}
		switch d := epochDelta(m.Payload, c.epoch); {
		case m.Tag == tagRevoke:
			if d == 0 {
				c.markRevoked()
				return nil, fmt.Errorf("collective: %s op %s seq %d round %d: %w",
					c.addr(c.rank), tag, h>>32, uint16(h>>16), ErrRevoked)
			}
			if d > 0 {
				c.park(m)
			}
		case d < 0:
			c.ins.incFailure(ctrStaleDropped)
		default:
			c.park(m)
		}
	}
}

// recvInto receives header h from rank from and decodes exactly len(dst)
// floats into dst, recycling the transport buffer.
func (c *Comm) recvInto(from int, op opID, h uint64, dst []float64) error {
	p, err := c.recv(from, op, h)
	if err != nil {
		return err
	}
	if err := wire.DecodeFloat64sInto(p[c.hlen:], dst); err != nil {
		return fmt.Errorf("collective: %s from rank %d: %w", opTags[op], from, err)
	}
	c.recycle(p)
	return nil
}

// recvScratch is recvInto targeting the Comm's float scratch; the result is
// valid until the next scratch use, so fold it before receiving again.
func (c *Comm) recvScratch(from int, op opID, h uint64, n int) ([]float64, error) {
	s := c.scratch(n)
	if err := c.recvInto(from, op, h, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Send delivers an application payload to another rank (point-to-point,
// tagged). It is the intra-program messaging used for e.g. halo exchange.
func (c *Comm) Send(to int, tag string, payload []byte) error {
	return c.d.Send(transport.Message{
		Kind:    transport.KindPoint,
		Dst:     c.addr(to),
		Tag:     tag,
		Payload: payload,
	})
}

// Recv receives the application payload with the given tag from the given
// rank, buffering mismatched point-to-point traffic.
func (c *Comm) Recv(from int, tag string) ([]byte, error) {
	src := c.addr(from)
	for i, m := range c.pointPending {
		if m.Src == src && m.Tag == tag {
			c.pointPending = append(c.pointPending[:i], c.pointPending[i+1:]...)
			return m.Payload, nil
		}
	}
	for {
		m, err := c.d.RecvTimeout(transport.KindPoint, c.timeout)
		if err != nil {
			return nil, fmt.Errorf("collective: %s waiting for point msg from %s tag %q: %w",
				c.addr(c.rank), src, tag, err)
		}
		if m.Src == src && m.Tag == tag {
			return m.Payload, nil
		}
		c.pointPending = append(c.pointPending, m)
	}
}

// SendFloats sends a float64 slice point-to-point.
func (c *Comm) SendFloats(to int, tag string, vals []float64) error {
	return c.Send(to, tag, encodeFloats(vals))
}

// RecvFloats receives a float64 slice point-to-point.
func (c *Comm) RecvFloats(from int, tag string) ([]float64, error) {
	b, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	return decodeFloats(b)
}
