package collective

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
)

// Algo names a collective algorithm. Every public collective has a *With
// variant accepting an Algo so tests and the tuning harness can force a
// specific implementation; Auto consults the Comm's dispatch Table. Forcing
// an algorithm an operation does not implement falls back to its default.
type Algo uint8

const (
	// Auto picks by the dispatch table (group size, vector bytes).
	Auto Algo = iota
	// RecursiveDoubling is the latency-optimal log2(n)-round pairwise
	// exchange (AllReduce small vectors, Scan).
	RecursiveDoubling
	// Ring is the bandwidth-optimal ring: ReduceScatter+AllGather for
	// AllReduce (Rabenseifner), block rotation for AllGather.
	Ring
	// Binomial is the binomial tree (Bcast, Reduce, Gather, Scatter).
	Binomial
	// BinomialSeg is the segmented, pipelined binomial tree (large Bcast).
	BinomialSeg
	// Linear is the naive root loop or full exchange, kept as the reference
	// implementation every other algorithm is property-tested against.
	Linear
	// Pairwise is the pairwise exchange (AllToAll): step s trades with
	// rank±s, spreading load across distinct pairs each round.
	Pairwise
	// Dissemination is the dissemination pattern (Barrier).
	Dissemination
	// Composed is an operation built from other collectives
	// (ReduceScatter = Reduce + Scatter reference path).
	Composed

	numAlgos = int(Composed) + 1
)

var algoNames = [numAlgos]string{
	"auto", "rd", "ring", "binomial", "binomial-seg", "linear", "pairwise", "dissem", "composed",
}

// String returns the short metric-label name ("rd", "ring", ...).
func (a Algo) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("algo(%d)", uint8(a))
}

// opID indexes the collective operations for headers and instruments.
type opID uint8

const (
	opBarrier opID = iota
	opBcast
	opReduce
	opAllReduce
	opGather
	opScatter
	opAllGather
	opAllToAll
	opScan
	opReduceScatter

	numOps = int(opReduceScatter) + 1
)

// opTags are the static per-operation transport tags. Operation instances
// are disambiguated by the payload header (sequence number), not the tag, so
// no strings are built per call.
var opTags = [numOps]string{
	"barrier", "bcast", "reduce", "allreduce", "gather",
	"scatter", "allgather", "alltoall", "scan", "reducescatter",
}

// Every collective payload starts with an 8-byte little-endian header:
//
//	bits 32..63  operation sequence number (per-Comm counter)
//	bits 16..31  round within the operation
//	bits  8..15  opID
//	bits  0..7   reserved
//
// Together with the static tag and source rank this uniquely matches a
// message to the (operation instance, round) a receiver is waiting on, even
// when a reordering transport delivers rounds out of order or a rooted
// operation's source races several operations ahead.
const hdrLen = 8

func hdr(seq uint32, round int, op opID) uint64 {
	return uint64(seq)<<32 | uint64(uint16(round))<<16 | uint64(op)<<8
}

func putHdr(b []byte, h uint64) { binary.LittleEndian.PutUint64(b, h) }

func matchHdr(payload []byte, h uint64) bool {
	return len(payload) >= hdrLen && binary.LittleEndian.Uint64(payload) == h
}

// Table is the per-operation algorithm dispatch table. Decisions depend only
// on values identical on every rank — the group size and, for the symmetric
// vector operations, the vector byte count — so all ranks independently pick
// the same algorithm. Thresholds are in bytes of the local vector (8 bytes
// per float64) or in group size (ranks).
type Table struct {
	// AllReduceRingBytes: vectors at least this large use the ring
	// (Rabenseifner) AllReduce; smaller ones use recursive doubling.
	AllReduceRingBytes int `json:"allreduce_ring_bytes"`
	// ReduceScatterRingBytes: inputs at least this large use the ring
	// reduce-scatter; smaller ones the Reduce+Scatter composition.
	ReduceScatterRingBytes int `json:"reducescatter_ring_bytes"`
	// BcastSegBytes: payloads at least this large use the segmented,
	// pipelined binomial broadcast with BcastSegSize-byte segments.
	BcastSegBytes int `json:"bcast_seg_bytes"`
	BcastSegSize  int `json:"bcast_seg_size"`
	// GatherBinomialSize: groups at least this large use the binomial tree
	// for Gather and Scatter instead of the linear root loop. The tree pays
	// log(P) forwarding hops to spare the root its O(P) per-message receive
	// cost; on the in-process transport a receive is a cheap queue pop, so
	// the measured crossover sits far higher than LogP intuition suggests —
	// the default keeps the linear loop for every practical group and leaves
	// the tree to forcing, tuning, or overhead-bound transports.
	GatherBinomialSize int `json:"gather_binomial_size"`
	// AllGatherRingSize: groups at least this large use the ring AllGather.
	AllGatherRingSize int `json:"allgather_ring_size"`
	// AllToAllPairwiseSize: groups at least this large use pairwise exchange.
	AllToAllPairwiseSize int `json:"alltoall_pairwise_size"`
}

// DefaultTable returns the static thresholds. They are conservative
// crossovers for the in-memory transport; Tune measures the real ones on the
// live transport and SetTable installs them.
func DefaultTable() *Table {
	return &Table{
		AllReduceRingBytes:     32 << 10,
		ReduceScatterRingBytes: 32 << 10,
		BcastSegBytes:          256 << 10,
		BcastSegSize:           64 << 10,
		GatherBinomialSize:     64,
		AllGatherRingSize:      5,
		AllToAllPairwiseSize:   4,
	}
}

// Save writes the table as JSON (atomically via a temp file would be
// overkill for a tuning artifact; plain write).
func (t *Table) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("collective: encode table: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadTable reads a table previously written by Save.
func LoadTable(path string) (*Table, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := DefaultTable()
	if err := json.Unmarshal(b, t); err != nil {
		return nil, fmt.Errorf("collective: decode table %s: %w", path, err)
	}
	return t, nil
}

// maxRingRanks bounds ring round numbers to the header's uint16 round field
// (2n-2 rounds per operation).
const maxRingRanks = 32000

func (t *Table) allReduceAlgo(size, bytes int) Algo {
	if size > 1 && size <= maxRingRanks && bytes >= t.AllReduceRingBytes {
		return Ring
	}
	return RecursiveDoubling
}

func (t *Table) reduceScatterAlgo(size, bytes int) Algo {
	if size > 1 && size <= maxRingRanks && bytes >= t.ReduceScatterRingBytes {
		return Ring
	}
	return Composed
}

func (t *Table) gatherAlgo(size int) Algo {
	if size >= t.GatherBinomialSize {
		return Binomial
	}
	return Linear
}

func (t *Table) allGatherAlgo(size int) Algo {
	if size >= t.AllGatherRingSize && size <= maxRingRanks {
		return Ring
	}
	return Linear
}

func (t *Table) allToAllAlgo(size int) Algo {
	if size >= t.AllToAllPairwiseSize {
		return Pairwise
	}
	return Linear
}
