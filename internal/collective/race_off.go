//go:build !race

package collective

// raceEnabled reports whether the race detector is compiled in; allocation
// regression tests skip under it (instrumentation allocates).
const raceEnabled = false
