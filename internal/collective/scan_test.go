package collective

import (
	"fmt"
	"testing"
)

func TestScanScalarSum(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				// rank r contributes r+1; prefix sum = (r+1)(r+2)/2.
				got, err := c.ScanScalar(float64(c.Rank()+1), Sum)
				if err != nil {
					return err
				}
				want := float64((c.Rank() + 1) * (c.Rank() + 2) / 2)
				if got != want {
					return fmt.Errorf("rank %d: %v, want %v", c.Rank(), got, want)
				}
				return nil
			})
		})
	}
}

func TestScanVectorMax(t *testing.T) {
	runGroup(t, 5, func(c *Comm) error {
		// Alternating pattern: prefix max of [r, -r] is [r, -0] = [r, 0]...
		// use values where the max prefix is easy: rank r contributes
		// [r mod 3, 10-r].
		local := []float64{float64(c.Rank() % 3), float64(10 - c.Rank())}
		got, err := c.Scan(local, Max)
		if err != nil {
			return err
		}
		wantA, wantB := 0.0, 0.0
		for r := 0; r <= c.Rank(); r++ {
			if v := float64(r % 3); v > wantA {
				wantA = v
			}
			if v := float64(10 - r); v > wantB {
				wantB = v
			}
		}
		if got[0] != wantA || got[1] != wantB {
			return fmt.Errorf("rank %d: %v, want [%v %v]", c.Rank(), got, wantA, wantB)
		}
		// Input untouched.
		if local[0] != float64(c.Rank()%3) {
			return fmt.Errorf("input modified")
		}
		return nil
	})
}

func TestReduceScatter(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				// Every rank contributes [1, 2, ..., 2n]; the global sum is
				// [n, 2n, ..., 2n*n]; rank r gets its 2-element slice.
				local := make([]float64, 2*n)
				for i := range local {
					local[i] = float64(i + 1)
				}
				got, err := c.ReduceScatter(local, Sum)
				if err != nil {
					return err
				}
				if len(got) != 2 {
					return fmt.Errorf("got %d elements", len(got))
				}
				for i, v := range got {
					want := float64(n * (2*c.Rank() + i + 1))
					if v != want {
						return fmt.Errorf("rank %d elem %d: %v, want %v", c.Rank(), i, v, want)
					}
				}
				return nil
			})
		})
	}
}

func TestReduceScatterBadLength(t *testing.T) {
	runGroup(t, 3, func(c *Comm) error {
		if _, err := c.ReduceScatter(make([]float64, 4), Sum); err == nil {
			return fmt.Errorf("length 4 with 3 ranks accepted")
		}
		return nil
	})
}

func TestScanThenOtherCollectives(t *testing.T) {
	// Scans interleaved with other collectives must not cross wires.
	runGroup(t, 4, func(c *Comm) error {
		for i := 0; i < 5; i++ {
			s, err := c.ScanScalar(1, Sum)
			if err != nil {
				return err
			}
			if s != float64(c.Rank()+1) {
				return fmt.Errorf("iter %d scan %v", i, s)
			}
			total, err := c.AllReduceScalar(1, Sum)
			if err != nil {
				return err
			}
			if total != 4 {
				return fmt.Errorf("iter %d allreduce %v", i, total)
			}
		}
		return nil
	})
}
