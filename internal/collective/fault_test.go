package collective

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/obsv/diag"
	"repro/internal/transport"
)

// ftGroup builds a size-process group whose ranks the caller drives manually,
// returning the comms and the per-rank dispatchers (so tests can kill a rank
// by closing its dispatcher, which unregisters the in-memory address).
func ftGroup(t *testing.T, size int, timeout time.Duration) (*transport.MemNetwork, []*Comm, []*transport.Dispatcher) {
	t.Helper()
	net := transport.NewMemNetwork()
	t.Cleanup(func() { net.Close() })
	comms := make([]*Comm, size)
	disps := make([]*transport.Dispatcher, size)
	for r := 0; r < size; r++ {
		ep, err := net.Register(transport.Proc("G", r))
		if err != nil {
			t.Fatal(err)
		}
		disps[r] = transport.NewDispatcher(ep)
		comms[r], err = New(disps[r], "G", r, size)
		if err != nil {
			t.Fatal(err)
		}
		comms[r].SetTimeout(timeout)
	}
	return net, comms, disps
}

// runRanks runs fn concurrently on the listed ranks and returns each rank's
// error (indexed like ranks).
func runRanks(comms []*Comm, ranks []int, fn func(c *Comm) error) []error {
	errs := make([]error, len(ranks))
	var wg sync.WaitGroup
	for i, r := range ranks {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			errs[i] = fn(comms[r])
		}(i, r)
	}
	wg.Wait()
	return errs
}

func TestRankFailedErrorIsTimeout(t *testing.T) {
	err := error(&RankFailedError{Program: "G", Rank: 3, Op: "allreduce", Seq: 7, Round: 1})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Error("RankFailedError does not unwrap to transport.ErrTimeout")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 3 {
		t.Error("errors.As failed to recover the typed suspicion")
	}
	for _, want := range []string{"rank 3", "allreduce", "seq 7"} {
		if !containsStr(err.Error(), want) {
			t.Errorf("error text %q missing %q", err.Error(), want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAgreeFailuresNoFailure: a healthy group agrees on the empty set at
// every size, repeatedly (episode sequence numbers keep episodes apart).
func TestAgreeFailuresNoFailure(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runGroup(t, n, func(c *Comm) error {
				for ep := 0; ep < 3; ep++ {
					failed, err := c.AgreeFailures()
					if err != nil {
						return fmt.Errorf("episode %d: %w", ep, err)
					}
					if len(failed) != 0 {
						return fmt.Errorf("episode %d agreed non-empty set %v in a healthy group", ep, failed)
					}
				}
				return nil
			})
		})
	}
}

// TestAgreeFailuresDeadRank: one rank's address is gone (crashed process);
// every survivor runs the intended revoke→agree sequence and they all decide
// the identical singleton set.
func TestAgreeFailuresDeadRank(t *testing.T) {
	const n, dead = 5, 2
	_, comms, disps := ftGroup(t, n, 2*time.Second)
	disps[dead].Close()
	survivors := []int{0, 1, 3, 4}
	sets := make([][]int, len(survivors))
	errs := runRanks(comms, survivors, func(c *Comm) error {
		c.Revoke()
		failed, err := c.AgreeFailures()
		if err != nil {
			return err
		}
		for i, r := range survivors {
			if comms[r] == c {
				sets[i] = failed
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", survivors[i], err)
		}
	}
	for i, set := range sets {
		if !reflect.DeepEqual(set, []int{dead}) {
			t.Errorf("rank %d agreed %v, want [%d]", survivors[i], set, dead)
		}
	}
}

// TestAgreeFailuresSilentRank: the failed rank's endpoint is still registered
// but the rank never participates — detection must come from agreement
// timeouts (non-participation), not transport evidence, and all survivors
// still converge on the identical set.
func TestAgreeFailuresSilentRank(t *testing.T) {
	const n, dead = 4, 1
	_, comms, _ := ftGroup(t, n, 700*time.Millisecond)
	survivors := []int{0, 2, 3}
	sets := make([][]int, len(survivors))
	errs := runRanks(comms, survivors, func(c *Comm) error {
		failed, err := c.AgreeFailures()
		if err != nil {
			return err
		}
		for i, r := range survivors {
			if comms[r] == c {
				sets[i] = failed
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", survivors[i], err)
		}
	}
	for i, set := range sets {
		if !reflect.DeepEqual(set, []int{dead}) {
			t.Errorf("rank %d agreed %v, want [%d]", survivors[i], set, dead)
		}
	}
}

// TestAgreeKillDuringAgreement: a rank dies *during* the agreement episode —
// its address vanishes partway through — and the survivors still converge,
// adding it to the set on the fly.
func TestAgreeKillDuringAgreement(t *testing.T) {
	const n, dying = 5, 4
	_, comms, disps := ftGroup(t, n, 1*time.Second)
	survivors := []int{0, 1, 2, 3}
	go func() {
		time.Sleep(150 * time.Millisecond)
		disps[dying].Close()
	}()
	sets := make([][]int, len(survivors))
	errs := runRanks(comms, survivors, func(c *Comm) error {
		failed, err := c.AgreeFailures()
		if err != nil {
			return err
		}
		for i, r := range survivors {
			if comms[r] == c {
				sets[i] = failed
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", survivors[i], err)
		}
	}
	for i := 1; i < len(sets); i++ {
		if !reflect.DeepEqual(sets[i], sets[0]) {
			t.Fatalf("divergent agreement: rank %d got %v, rank %d got %v",
				survivors[i], sets[i], survivors[0], sets[0])
		}
	}
	if !reflect.DeepEqual(sets[0], []int{dying}) {
		t.Errorf("agreed %v, want [%d]", sets[0], dying)
	}
}

// TestOpsFailFastOnDeadRank is the op × algorithm failure matrix: with one
// rank's address gone, every collective on every survivor either succeeds or
// returns a typed suspicion within the deadline bound — never hangs — and at
// least one survivor reports the RankFailedError.
func TestOpsFailFastOnDeadRank(t *testing.T) {
	const n, dead = 5, 2
	vec := func(c *Comm) []float64 { return []float64{float64(c.Rank() + 1)} }
	parts := func(c *Comm) [][]byte {
		p := make([][]byte, n)
		for i := range p {
			p[i] = []byte{byte(c.Rank()), byte(i)}
		}
		return p
	}
	long := make([]float64, n)
	cases := []struct {
		name string
		run  func(c *Comm) error
	}{
		{"barrier", func(c *Comm) error { return c.Barrier() }},
		{"bcast/binomial", func(c *Comm) error { _, err := c.BcastWith(Binomial, 0, []byte("x")); return err }},
		{"bcast/binomial-seg", func(c *Comm) error { _, err := c.BcastWith(BinomialSeg, 0, make([]byte, 4096)); return err }},
		{"reduce", func(c *Comm) error { _, err := c.Reduce(0, vec(c), Sum); return err }},
		{"allreduce/recdbl", func(c *Comm) error { return c.AllReduceInPlaceWith(RecursiveDoubling, vec(c), Sum) }},
		{"allreduce/ring", func(c *Comm) error { return c.AllReduceInPlaceWith(Ring, long, Sum) }},
		{"gather/linear", func(c *Comm) error { _, err := c.GatherWith(Linear, 0, []byte{1}); return err }},
		{"gather/binomial", func(c *Comm) error { _, err := c.GatherWith(Binomial, 0, []byte{1}); return err }},
		{"scatter/linear", func(c *Comm) error {
			var in [][]byte
			if c.Rank() == 0 {
				in = parts(c)
			}
			_, err := c.ScatterWith(Linear, 0, in)
			return err
		}},
		{"scatter/binomial", func(c *Comm) error {
			var in [][]byte
			if c.Rank() == 0 {
				in = parts(c)
			}
			_, err := c.ScatterWith(Binomial, 0, in)
			return err
		}},
		{"allgather/linear", func(c *Comm) error { _, err := c.AllGatherWith(Linear, []byte{2}); return err }},
		{"allgather/ring", func(c *Comm) error { _, err := c.AllGatherWith(Ring, []byte{2}); return err }},
		{"alltoall/linear", func(c *Comm) error { _, err := c.AllToAllWith(Linear, parts(c)); return err }},
		{"alltoall/pairwise", func(c *Comm) error { _, err := c.AllToAllWith(Pairwise, parts(c)); return err }},
		{"scan", func(c *Comm) error { _, err := c.Scan(vec(c), Sum); return err }},
		{"reducescatter/composed", func(c *Comm) error { _, err := c.ReduceScatterWith(Composed, long, Sum); return err }},
		{"reducescatter/ring", func(c *Comm) error { _, err := c.ReduceScatterWith(Ring, long, Sum); return err }},
	}
	survivors := []int{0, 1, 3, 4}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const timeout = 500 * time.Millisecond
			_, comms, disps := ftGroup(t, n, timeout)
			disps[dead].Close()
			start := time.Now()
			errs := runRanks(comms, survivors, tc.run)
			elapsed := time.Since(start)
			// Survivors may chain timeouts (waiting on a live rank that itself
			// timed out), but the bound stays a small multiple of the deadline.
			if elapsed > 10*timeout+2*time.Second {
				t.Errorf("matrix case took %v, deadline bound violated", elapsed)
			}
			typed := 0
			for i, err := range errs {
				if err == nil {
					continue
				}
				var rf *RankFailedError
				if errors.As(err, &rf) {
					typed++
					continue
				}
				if errors.Is(err, ErrRevoked) || errors.Is(err, transport.ErrTimeout) {
					continue
				}
				t.Errorf("rank %d: untyped failure %v", survivors[i], err)
			}
			if typed == 0 {
				t.Error("no survivor returned a RankFailedError")
			}
		})
	}
}

// TestRevokeUnblocks: ranks blocked deep inside a collective with a long
// deadline unblock promptly — with ErrRevoked — when any rank revokes.
func TestRevokeUnblocks(t *testing.T) {
	const n = 3
	_, comms, _ := ftGroup(t, n, 60*time.Second)
	start := time.Now()
	errs := runRanks(comms, []int{0, 1, 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(100 * time.Millisecond)
			c.Revoke()
			return nil
		}
		err := c.Barrier()
		if !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("barrier returned %v, want ErrRevoked", err)
		}
		return nil
	})
	elapsed := time.Since(start)
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	if elapsed > 5*time.Second {
		t.Errorf("revocation took %v to unblock blocked ranks (deadline was 60s)", elapsed)
	}
}

// TestRevokedOpsReturnErrRevoked: every operation entry point refuses a
// revoked communicator.
func TestRevokedOpsReturnErrRevoked(t *testing.T) {
	_, comms, _ := ftGroup(t, 1, time.Second)
	c := comms[0]
	c.Revoke()
	v := []float64{1}
	ops := map[string]error{}
	_, err := c.Bcast(0, []byte{1})
	ops["bcast"] = err
	_, err = c.Reduce(0, v, Sum)
	ops["reduce"] = err
	ops["barrier"] = c.Barrier()
	ops["allreduce"] = c.AllReduceInPlace(v, Sum)
	_, err = c.Gather(0, []byte{1})
	ops["gather"] = err
	_, err = c.Scatter(0, [][]byte{{1}})
	ops["scatter"] = err
	_, err = c.AllGather([]byte{1})
	ops["allgather"] = err
	_, err = c.AllToAll([][]byte{{1}})
	ops["alltoall"] = err
	_, err = c.Scan(v, Sum)
	ops["scan"] = err
	_, err = c.ReduceScatter(v, Sum)
	ops["reducescatter"] = err
	for op, err := range ops {
		if !errors.Is(err, ErrRevoked) {
			t.Errorf("%s on revoked comm returned %v, want ErrRevoked", op, err)
		}
	}
}

// TestShrinkAndContinue is the full recovery pipeline: a rank dies
// mid-collective; every survivor suspects it, revokes, agrees on the
// identical set, shrinks, re-runs the interrupted operation on the survivor
// group, and then runs the whole op mix on the shrunk communicator. The
// shrunk-group result must equal the fault-free survivor-subset value.
func TestShrinkAndContinue(t *testing.T) {
	const n, dead = 5, 2
	_, comms, disps := ftGroup(t, n, time.Second)
	all := []int{0, 1, 2, 3, 4}
	survivors := []int{0, 1, 3, 4}
	// survivor-subset sum of rank+1 values
	const wantSum = 1 + 2 + 4 + 5

	errs := runRanks(comms, all, func(c *Comm) error {
		// Two healthy steps with the full group.
		for i := 0; i < 2; i++ {
			got, err := c.AllReduceScalar(float64(c.Rank()+1), Sum)
			if err != nil {
				return fmt.Errorf("healthy step %d: %w", i, err)
			}
			if got != 1+2+3+4+5 {
				return fmt.Errorf("healthy step %d: sum %v", i, got)
			}
		}
		if c.Rank() == dead {
			// Crash: the address disappears mid-step for everyone else.
			return disps[dead].Close()
		}
		// The interrupted step fails with a typed suspicion or a revocation
		// raced from a faster-detecting survivor.
		_, err := c.AllReduceScalar(float64(c.Rank()+1), Sum)
		if err == nil {
			return errors.New("step with dead rank succeeded")
		}
		if !errors.Is(err, transport.ErrTimeout) && !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("interrupted step: unexpected error %w", err)
		}
		// Recover: revoke, agree, shrink.
		c.Revoke()
		failed, err := c.AgreeFailures()
		if err != nil {
			return fmt.Errorf("agree: %w", err)
		}
		if !reflect.DeepEqual(failed, []int{dead}) {
			return fmt.Errorf("agreed %v, want [%d]", failed, dead)
		}
		nc, err := c.Shrink(failed)
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		if nc.Size() != n-1 || nc.Epoch() != 1 {
			return fmt.Errorf("shrunk comm size=%d epoch=%d", nc.Size(), nc.Epoch())
		}
		// The parent is poisoned.
		if err := c.Barrier(); !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("parent comm after shrink: %v, want ErrRevoked", err)
		}
		// Re-run the interrupted operation on the survivor group, carrying the
		// *original* rank value: results must equal the fault-free
		// survivor-subset run.
		got, err := nc.AllReduceScalar(float64(c.Rank()+1), Sum)
		if err != nil {
			return fmt.Errorf("re-run on shrunk comm: %w", err)
		}
		if got != wantSum {
			return fmt.Errorf("shrunk allreduce = %v, want %v", got, wantSum)
		}
		// Full op mix on the shrunk group.
		if err := nc.Barrier(); err != nil {
			return fmt.Errorf("shrunk barrier: %w", err)
		}
		var in []byte
		if nc.Rank() == 0 {
			in = []byte("post-shrink")
		}
		b, err := nc.Bcast(0, in)
		if err != nil || string(b) != "post-shrink" {
			return fmt.Errorf("shrunk bcast: %q %v", b, err)
		}
		sc, err := nc.ScanScalar(1, Sum)
		if err != nil || sc != float64(nc.Rank()+1) {
			return fmt.Errorf("shrunk scan: %v %v", sc, err)
		}
		parts, err := nc.AllGather([]byte{byte(nc.Rank())})
		if err != nil || len(parts) != nc.Size() {
			return fmt.Errorf("shrunk allgather: %v %v", parts, err)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", all[r], err)
		}
	}
	// Epochs, re-ranking and instruments are checked inside; finally make sure
	// survivors suspected/agreed/shrank through the counted path.
	_ = survivors
}

// TestShrinkEmptyRebuild: a spurious revocation (no actual death) recovers by
// agreeing on the empty set and shrinking in place — same size, bumped epoch,
// interrupted traffic discarded.
func TestShrinkEmptyRebuild(t *testing.T) {
	const n = 4
	_, comms, _ := ftGroup(t, n, 2*time.Second)
	errs := runRanks(comms, []int{0, 1, 2, 3}, func(c *Comm) error {
		c.Revoke()
		failed, err := c.AgreeFailures()
		if err != nil {
			return fmt.Errorf("agree: %w", err)
		}
		if len(failed) != 0 {
			return fmt.Errorf("agreed %v in a healthy group", failed)
		}
		nc, err := c.Shrink(failed)
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		if nc.Size() != n || nc.Rank() != c.Rank() || nc.Epoch() != 1 {
			return fmt.Errorf("rebuilt comm rank=%d size=%d epoch=%d", nc.Rank(), nc.Size(), nc.Epoch())
		}
		got, err := nc.AllReduceScalar(1, Sum)
		if err != nil || got != n {
			return fmt.Errorf("rebuilt allreduce: %v %v", got, err)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

// TestDoubleShrink: failures across two episodes compose — the second Shrink
// re-ranks relative to the first, and the epoch keeps climbing.
func TestDoubleShrink(t *testing.T) {
	const n = 5
	_, comms, disps := ftGroup(t, n, time.Second)
	// Episode 1 kills base rank 1, episode 2 kills base rank 3 (group rank 2
	// after the first shrink).
	disps[1].Close()
	survivors := []int{0, 2, 3, 4}
	var mu sync.Mutex
	second := map[int]*Comm{} // base rank -> comm after first shrink
	errs := runRanks(comms, survivors, func(c *Comm) error {
		c.Revoke()
		failed, err := c.AgreeFailures()
		if err != nil {
			return err
		}
		nc, err := c.Shrink(failed)
		if err != nil {
			return err
		}
		mu.Lock()
		second[c.Rank()] = nc
		mu.Unlock()
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("episode 1 rank %d: %v", survivors[i], err)
		}
	}
	disps[3].Close()
	final := []int{0, 2, 4}
	errs = runRanks(comms, final, func(c *Comm) error {
		nc := second[c.Rank()]
		nc.Revoke()
		failed, err := nc.AgreeFailures()
		if err != nil {
			return err
		}
		nc2, err := nc.Shrink(failed)
		if err != nil {
			return err
		}
		if nc2.Size() != 3 || nc2.Epoch() != 2 {
			return fmt.Errorf("second shrink size=%d epoch=%d", nc2.Size(), nc2.Epoch())
		}
		got, err := nc2.AllReduceScalar(float64(c.Rank()), Sum)
		if err != nil || got != 0+2+4 {
			return fmt.Errorf("post-double-shrink allreduce: %v %v", got, err)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("episode 2 rank %d: %v", final[i], err)
		}
	}
}

// TestShrinkValidation: out-of-range ranks are rejected and a set containing
// this rank yields ErrExcluded.
func TestShrinkValidation(t *testing.T) {
	_, comms, _ := ftGroup(t, 3, time.Second)
	if _, err := comms[0].Shrink([]int{7}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := comms[1].Shrink([]int{1}); !errors.Is(err, ErrExcluded) {
		t.Errorf("self-exclusion returned %v, want ErrExcluded", err)
	}
}

// TestPendingEvictionCap is the regression for the parked-frame leak: past
// the cap the oldest frame is evicted (and counted), so a dead peer's
// stragglers can never grow the list without bound.
func TestPendingEvictionCap(t *testing.T) {
	_, comms, _ := ftGroup(t, 2, time.Second)
	c := comms[0]
	c.SetInstruments(NewInstruments(obsv.NewRegistry(), "G"))
	c.SetPendingCap(3)
	mkMsg := func(i int) transport.Message {
		p := make([]byte, hdrLen)
		putHdr(p, c.hdr(uint32(i), 0, opBarrier))
		return transport.Message{Src: transport.Proc("G", 1), Tag: opTags[opBarrier], Payload: p}
	}
	for i := 0; i < 7; i++ {
		c.park(mkMsg(i))
	}
	if got := c.PendingLen(); got != 3 {
		t.Fatalf("pending list length %d, want cap 3", got)
	}
	if got := c.ins.FailureCount(ctrPendingEvict); got != 4 {
		t.Errorf("eviction counter %d, want 4", got)
	}
	// Oldest evicted: the survivors are frames 4, 5, 6.
	for i, m := range c.pending {
		if seq := uint32(m.Payload[7])<<24 | uint32(m.Payload[6])<<16 | uint32(m.Payload[5])<<8 | uint32(m.Payload[4]); seq != uint32(4+i) {
			t.Errorf("pending[%d] has seq %d, want %d (oldest-first eviction)", i, seq, 4+i)
		}
	}
}

// TestPruneSuspectPending: parked current-epoch frames from a suspected rank
// are dropped; future-epoch frames survive for the successor group.
func TestPruneSuspectPending(t *testing.T) {
	_, comms, _ := ftGroup(t, 3, time.Second)
	c := comms[0]
	cur := make([]byte, hdrLen)
	putHdr(cur, c.hdr(1, 0, opBarrier))
	fut := make([]byte, hdrLen)
	putHdr(fut, hdr(1, 0, opBarrier)|uint64(c.epoch+1))
	c.park(transport.Message{Src: transport.Proc("G", 1), Tag: opTags[opBarrier], Payload: cur})
	c.park(transport.Message{Src: transport.Proc("G", 1), Tag: opTags[opBarrier], Payload: fut})
	c.park(transport.Message{Src: transport.Proc("G", 2), Tag: opTags[opBarrier], Payload: append([]byte(nil), cur...)})
	c.suspect(1)
	c.pruneSuspectPending()
	if got := c.PendingLen(); got != 2 {
		t.Fatalf("pending after prune = %d, want 2 (suspect's current-epoch frame dropped)", got)
	}
	for _, m := range c.pending {
		if m.Src.Rank == 1 && epochDelta(m.Payload, c.epoch) == 0 {
			t.Error("suspect's current-epoch frame survived the prune")
		}
	}
}

// TestDeadlineTimerHammer exercises the reused receive-deadline timer's
// re-arm pattern back-to-back: random consume/ignore/sleep interleavings must
// never leave the timer in a state where a fresh arm hangs or delivers an
// un-detectable stale fire. The documented invariant (see Comm.deadline) is
// that any fire observed with Since(armedAt) < timeout is spurious and the
// caller re-arms; this test drives that loop thousands of times.
func TestDeadlineTimerHammer(t *testing.T) {
	_, comms, _ := ftGroup(t, 1, time.Millisecond)
	c := comms[0]
	// Phase 1: chaotic arm/fire interleavings to pollute the channel.
	for i := 0; i < 300; i++ {
		ch := c.deadline()
		switch i % 4 {
		case 0:
			// Let the fire land in the buffer, then re-arm over it.
			time.Sleep(2 * time.Millisecond)
		case 1:
			<-ch // consume the genuine fire
		case 2:
			// Immediate re-arm, fire still pending.
		case 3:
			time.Sleep(500 * time.Microsecond) // race the fire
		}
	}
	// Phase 2: the receive-loop discipline must always terminate promptly
	// with a genuine (post-arm) expiry, stale fires notwithstanding.
	for i := 0; i < 200; i++ {
		ch := c.deadline()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-ch:
			case <-deadline:
				t.Fatalf("iteration %d: deadline timer never delivered a genuine fire", i)
			}
			if c.clk.Since(c.armedAt) >= c.timeout {
				break // genuine expiry
			}
			ch = c.deadline() // spurious: stale fire from an earlier arm
		}
	}
}

// TestAgreeCodecRoundTrip pins the agreement wire format.
func TestAgreeCodecRoundTrip(t *testing.T) {
	cases := []struct {
		phase, attempt, round int
		mask                  rankSet
	}{
		{phaseSweep, 0, 0, rankSet{0}},
		{phaseConfirm, 3, 2, rankSet{0b1010}},
		{phaseDecided, 65535, 1, rankSet{1<<63 | 7, 42}},
		{phaseSweep, 1, 65535, rankSet{}},
	}
	for i, tc := range cases {
		h := hdr(9, 0, opAgree) | 5 // epoch 5
		b := appendAgree(nil, h, tc.phase, tc.attempt, tc.round, tc.mask)
		if !matchHdr(b, h) {
			t.Fatalf("case %d: header mismatch", i)
		}
		phase, attempt, round, mask, err := decodeAgree(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if phase != tc.phase || attempt != tc.attempt || round != tc.round || !mask.equal(tc.mask) {
			t.Errorf("case %d: decoded (%d,%d,%d,%v), want (%d,%d,%d,%v)",
				i, phase, attempt, round, mask, tc.phase, tc.attempt, tc.round, tc.mask)
		}
	}
	// Malformed frames are rejected, not panicked on.
	if _, _, _, _, err := decodeAgree([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
	lying := appendAgree(nil, hdr(1, 0, opAgree), phaseSweep, 0, 0, rankSet{1})
	lying[agreeBodyOff+5] = 200 // claim 200 mask words
	if _, _, _, _, err := decodeAgree(lying); err == nil {
		t.Error("lying word count accepted")
	}
	bad := appendAgree(nil, hdr(1, 0, opAgree), phaseSweep, 0, 0, rankSet{1})
	bad[agreeBodyOff] = 9 // invalid phase
	if _, _, _, _, err := decodeAgree(bad); err == nil {
		t.Error("invalid phase accepted")
	}
}

// FuzzAgreeCodec fuzzes the agreement/revocation frame decoder: arbitrary
// bytes must never panic, and every valid decode must re-encode to an
// equivalent frame (header bits the decoder doesn't cover excluded).
func FuzzAgreeCodec(f *testing.F) {
	f.Add(appendAgree(nil, hdr(1, 0, opAgree)|3, phaseSweep, 0, 0, rankSet{0b110}))
	f.Add(appendAgree(nil, hdr(9, 0, opAgree), phaseConfirm, 2, 1, rankSet{1 << 40, 5}))
	f.Add(appendAgree(nil, hdr(0, 0, opAgree)|255, phaseDecided, 65535, 65535, rankSet{}))
	f.Add([]byte{})
	f.Add(make([]byte, agreeMinLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		// The epoch classifier must tolerate anything.
		_ = epochDelta(b, 0)
		_ = epochDelta(b, 255)
		phase, attempt, round, mask, err := decodeAgree(b)
		if err != nil {
			return
		}
		if phase > phaseDecided || attempt > 65535 || round > 65535 {
			t.Fatalf("decode accepted out-of-range fields (%d,%d,%d)", phase, attempt, round)
		}
		var h uint64
		if len(b) >= hdrLen {
			for i := 0; i < hdrLen; i++ {
				h |= uint64(b[i]) << (8 * i)
			}
		}
		re := appendAgree(nil, h, phase, attempt, round, mask)
		p2, a2, r2, m2, err := decodeAgree(re)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if p2 != phase || a2 != attempt || r2 != round || !m2.equal(mask) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}

// TestShrunkSteadyStateZeroAlloc extends the zero-allocation regression to a
// post-recovery group: the epoch stamping, peer translation and failure
// bookkeeping on the hot path must not cost allocations, so a shrunk
// communicator's steady-state AllReduce allocates exactly like the original.
func TestShrunkSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const (
		base   = 5
		dead   = 2
		ranks  = base - 1
		vecLen = 1024
		iters  = 50
	)
	net := transport.NewMemNetwork()
	g := &allocGroup{
		net:     net,
		comms:   make([]*Comm, ranks),
		trigger: make([]chan struct{}, ranks),
		done:    make(chan error, ranks),
	}
	i := 0
	for r := 0; r < base; r++ {
		if r == dead {
			continue
		}
		ep, err := net.Register(transport.Proc("A", r))
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(transport.NewDispatcher(ep), "A", r, base)
		if err != nil {
			t.Fatal(err)
		}
		c.SetTimeout(30 * time.Second)
		c.SetBufferReuse(true)
		// Every survivor shrinks with the identical agreed set; no agreement
		// round needed when the set is known (as after AgreeFailures).
		nc, err := c.Shrink([]int{dead})
		if err != nil {
			t.Fatal(err)
		}
		g.comms[i] = nc
		g.trigger[i] = make(chan struct{})
		i++
	}
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = make([]float64, vecLen)
	}
	for r := 0; r < ranks; r++ {
		c := g.comms[r]
		tr := g.trigger[r]
		vec := vecs[r]
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			for range tr {
				g.done <- c.AllReduceInPlaceWith(RecursiveDoubling, vec, Max)
			}
		}()
	}
	defer g.close()
	for i := 0; i < 16; i++ {
		g.round(t)
	}
	mallocs := measureAllocs(t, g, iters)
	t.Logf("shrunk comm: %d mallocs over %d ops", mallocs, iters*ranks)
	if mallocs > 10 {
		t.Fatalf("steady-state AllReduce on a shrunk comm allocated %d times over %d ops (want 0)",
			mallocs, iters*ranks)
	}
}

// TestFlightRecorderFTEvents: revoke, agree and shrink leave their marks in
// the flight recorder and the failure counters reach /statusz.
func TestFlightRecorderFTEvents(t *testing.T) {
	const n, dead = 3, 2
	_, comms, disps := ftGroup(t, n, time.Second)
	reg := obsv.NewRegistry()
	recs := make([]*diag.Recorder, n)
	for r := 0; r < n; r++ {
		recs[r] = diag.NewRecorder("G", 64, nil)
		comms[r].SetFlightRecorder(recs[r])
		comms[r].SetInstruments(NewInstruments(reg, "G"))
	}
	disps[dead].Close()
	errs := runRanks(comms, []int{0, 1}, func(c *Comm) error {
		c.Revoke()
		failed, err := c.AgreeFailures()
		if err != nil {
			return err
		}
		_, err = c.Shrink(failed)
		return err
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for _, r := range []int{0, 1} {
		want := map[diag.Kind]bool{diag.KindRevoke: false, diag.KindAgree: false, diag.KindShrink: false}
		for _, e := range recs[r].Snapshot() {
			if _, ok := want[e.Kind]; ok {
				want[e.Kind] = true
			}
		}
		for k, seen := range want {
			if !seen {
				t.Errorf("rank %d: no %v event in the flight recorder", r, k)
			}
		}
	}
	ins := comms[0].Instruments()
	for ctr, name := range map[int]string{ctrRevokes: "revokes", ctrAgreed: "agreed", ctrShrinks: "shrinks"} {
		if ins.FailureCount(ctr) == 0 {
			t.Errorf("failure counter %s never incremented", name)
		}
	}
}

// TestAgreeDrainsParkedSweeps reproduces the sweep-before-revoke race: a
// peer that detects the failure first floods its agreement sweep, and the
// sweep reaches a rank still blocked inside the interrupted data operation
// — ahead of the revocation that unblocks it — so the data receive loop
// parks it. The rank's own AgreeFailures must absorb that parked answer
// instead of waiting a deadline for it, or its peers will agree the silent
// live rank out of the group (the seed-8 kill-a-rank chaos failure).
func TestAgreeDrainsParkedSweeps(t *testing.T) {
	const timeout = 30 * time.Second // generous: success must not need it
	_, comms, _ := ftGroup(t, 2, timeout)
	a, b := comms[0], comms[1]

	ready := make(chan struct{})
	blocked := make(chan error, 1)
	go func() {
		close(ready)
		blocked <- b.Barrier() // parks the sweep, then fails on the revoke
	}()
	<-ready
	time.Sleep(50 * time.Millisecond) // let rank 1 block in the barrier

	// Rank 0's agreement sweep for episode 0, then its revocation. Per-pair
	// FIFO guarantees rank 1 parks the sweep before the revoke unblocks it.
	sweep := appendAgree(nil, a.hdr(0, 0, opAgree), phaseSweep, 0, 0, newRankSet(2))
	a.sendCtl(1, tagAgree, sweep)
	a.markRevoked() // flag only: keep rank 0's flood out of the picture
	rev := make([]byte, hdrLen)
	putHdr(rev, a.hdr(0, 0, opRevoke))
	a.sendCtl(1, tagRevoke, rev)

	if err := <-blocked; !errors.Is(err, ErrRevoked) {
		t.Fatalf("barrier returned %v, want ErrRevoked", err)
	}
	start := time.Now()
	failed, err := b.AgreeFailures()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("AgreeFailures: %v", err)
	}
	if len(failed) != 0 {
		t.Fatalf("agreed failed set %v, want empty (rank 0 answered via the parked sweep)", failed)
	}
	if elapsed > timeout/2 {
		t.Fatalf("agreement took %v: the parked sweep was not drained (deadline %v)", elapsed, timeout)
	}
}
