package collective

import (
	"encoding/binary"
	"fmt"
)

// maxBcastSegs bounds segment counts to the header's uint16 round field.
const maxBcastSegs = 60000

// Bcast copies root's buffer to every rank using a binomial tree
// (ceil(log2 n) rounds). Payloads past the dispatch table's BcastSegBytes
// threshold are split into BcastSegSize-byte segments pipelined down the
// tree, so an interior rank forwards segment s while still receiving segment
// s+1 and the transfer overlaps across tree levels instead of serializing a
// full-payload copy per level.
//
// On the root, data is the source and is returned as-is; on other ranks the
// received copy is returned (never aliasing any forwarded buffer) and data
// is ignored. Only the root consults the algorithm choice: the wire format
// is self-describing (segment 0 carries total length and segment size), so
// receivers adapt to whatever the root chose.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	return c.BcastWith(Auto, root, data)
}

// BcastWith is Bcast with a forced algorithm on the root (Binomial or
// BinomialSeg).
func (c *Comm) BcastWith(algo Algo, root int, data []byte) ([]byte, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Bcast", root, c.size)
	}
	if c.size == 1 {
		c.obsDone(opBcast, Binomial, start)
		return data, nil
	}
	out, used, err := c.bcast(seq, root, data, algo)
	if err != nil {
		return nil, err
	}
	c.obsDone(opBcast, used, start)
	return out, nil
}

// bcastPrefixLen is the extra segment-0 payload: total length and segment
// size, both uint32, so receivers can size the result and count segments.
const bcastPrefixLen = 8

func (c *Comm) bcast(seq uint32, root int, data []byte, algo Algo) ([]byte, Algo, error) {
	rel := (c.rank - root + c.size) % c.size
	if rel == 0 {
		return c.bcastRoot(seq, root, data, algo)
	}

	// Find the binomial parent: the peer across this rank's lowest set bit.
	mask := 1
	for rel&mask == 0 {
		mask <<= 1
	}
	parent := (rel - mask + root) % c.size

	p0, err := c.recv(parent, opBcast, c.hdr(seq, 0, opBcast))
	if err != nil {
		return nil, Auto, err
	}
	if len(p0) < c.hlen+bcastPrefixLen {
		return nil, Auto, fmt.Errorf("collective: bcast segment 0 payload %d bytes", len(p0))
	}
	total := int(binary.LittleEndian.Uint32(p0[c.hlen:]))
	segSize := int(binary.LittleEndian.Uint32(p0[c.hlen+4:]))
	nseg := 1
	if segSize > 0 {
		nseg = (total + segSize - 1) / segSize
	}
	if nseg < 1 {
		nseg = 1
	}
	algo = Binomial
	if nseg > 1 {
		algo = BinomialSeg
	}

	// Forward before copying: the sends are cheap enqueues and the children
	// can start their own forwarding while we assemble locally. Forwarded
	// payloads go out verbatim (same header, multiple recipients), so they
	// are never recycled and the local result is assembled into a fresh
	// buffer rather than aliasing them. With diagnosis on, the trailer must
	// carry this hop's fold word and send time instead of the parent's —
	// but the received payload may still back a retransmit buffer upstream,
	// so it is re-stamped on a copy, never in place.
	hasChild := false
	for m := mask >> 1; m > 0; m >>= 1 {
		if rel+m < c.size {
			hasChild = true
			break
		}
	}
	out := make([]byte, total)
	forward := func(p []byte) error {
		if !hasChild {
			return nil
		}
		if c.diagEnabled() {
			fp := make([]byte, len(p))
			copy(fp, p)
			c.stamp(fp)
			p = fp
		}
		for m := mask >> 1; m > 0; m >>= 1 {
			if rel+m < c.size {
				if err := c.sendRaw((rel+m+root)%c.size, opBcast, p); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := forward(p0); err != nil {
		return nil, algo, err
	}
	if err := copySeg(out, 0, segSize, total, p0[c.hlen+bcastPrefixLen:]); err != nil {
		return nil, algo, err
	}
	for s := 1; s < nseg; s++ {
		p, err := c.recv(parent, opBcast, c.hdr(seq, s, opBcast))
		if err != nil {
			return nil, algo, err
		}
		if err := forward(p); err != nil {
			return nil, algo, err
		}
		if err := copySeg(out, s, segSize, total, p[c.hlen:]); err != nil {
			return nil, algo, err
		}
	}
	return out, algo, nil
}

func (c *Comm) bcastRoot(seq uint32, root int, data []byte, algo Algo) ([]byte, Algo, error) {
	total := len(data)
	segSize := total
	if algo == BinomialSeg || (algo == Auto && total >= c.table.BcastSegBytes) {
		segSize = c.table.BcastSegSize
		algo = BinomialSeg
	} else {
		algo = Binomial
	}
	if segSize <= 0 || segSize > total {
		segSize = total
	}
	nseg := 1
	if segSize > 0 {
		nseg = (total + segSize - 1) / segSize
	}
	if nseg > maxBcastSegs {
		segSize = (total + maxBcastSegs - 1) / maxBcastSegs
		nseg = (total + segSize - 1) / segSize
	}
	if nseg > 1 {
		algo = BinomialSeg
	}

	topmask := 1
	for topmask < c.size {
		topmask <<= 1
	}
	for s := 0; s < nseg; s++ {
		lo := s * segSize
		hi := min(lo+segSize, total)
		var p []byte
		if s == 0 {
			p = make([]byte, c.hlen+bcastPrefixLen+hi-lo)
			putHdr(p, c.hdr(seq, 0, opBcast))
			binary.LittleEndian.PutUint32(p[c.hlen:], uint32(total))
			binary.LittleEndian.PutUint32(p[c.hlen+4:], uint32(segSize))
			copy(p[c.hlen+bcastPrefixLen:], data[lo:hi])
		} else {
			p = make([]byte, c.hlen+hi-lo)
			putHdr(p, c.hdr(seq, s, opBcast))
			copy(p[c.hlen:], data[lo:hi])
		}
		if c.diagEnabled() {
			// Stamped once, before the first send, while exclusively owned.
			c.stamp(p)
		}
		// Largest subtree first, so the deepest chain starts earliest.
		for m := topmask >> 1; m > 0; m >>= 1 {
			if m < c.size {
				if err := c.sendRaw((m+root)%c.size, opBcast, p); err != nil {
					return nil, algo, err
				}
			}
		}
	}
	return data, algo, nil
}

// copySeg places a received segment body into the assembled result,
// validating its length against the self-describing geometry.
func copySeg(out []byte, s, segSize, total int, body []byte) error {
	lo := s * segSize
	hi := min(lo+segSize, total)
	if segSize == 0 {
		lo, hi = 0, 0
	}
	if len(body) != hi-lo || lo > total {
		return fmt.Errorf("collective: bcast segment %d is %d bytes, want %d", s, len(body), hi-lo)
	}
	copy(out[lo:hi], body)
	return nil
}

// BcastFloats broadcasts a float64 slice from root. On the root the input
// slice itself is returned.
func (c *Comm) BcastFloats(root int, vals []float64) ([]float64, error) {
	var payload []byte
	if c.rank == root {
		payload = encodeFloats(vals)
	}
	b, err := c.Bcast(root, payload)
	if err != nil {
		return nil, err
	}
	if c.rank == root {
		return vals, nil
	}
	return decodeFloats(b)
}
