package collective

// Bcast copies root's buffer to every rank using a binomial tree
// (ceil(log2 n) rounds). On the root, data is the source; on other ranks the
// received copy is returned and data is ignored.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	tag := c.nextTag("bcast")
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Bcast", root, c.size)
	}
	if c.size == 1 {
		return data, nil
	}
	rel := (c.rank - root + c.size) % c.size

	// Receive phase: a non-root rank receives from the peer that owns it in
	// the binomial tree.
	mask := 1
	for mask < c.size {
		if rel&mask != 0 {
			src := (rel - mask + root) % c.size
			b, err := c.recvRank(src, tag)
			if err != nil {
				return nil, err
			}
			data = b
			break
		}
		mask <<= 1
	}
	// Forward phase: pass the data down the subtree.
	mask >>= 1
	for mask > 0 {
		if rel+mask < c.size {
			dst := (rel + mask + root) % c.size
			if err := c.sendRank(dst, tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// BcastFloats broadcasts a float64 slice from root.
func (c *Comm) BcastFloats(root int, vals []float64) ([]float64, error) {
	var payload []byte
	if c.rank == root {
		payload = encodeFloats(vals)
	}
	b, err := c.Bcast(root, payload)
	if err != nil {
		return nil, err
	}
	if c.rank == root {
		return vals, nil
	}
	return decodeFloats(b)
}
