package collective

import (
	"fmt"

	"repro/internal/wire"
)

func errBadRoot(op string, root, size int) error {
	return fmt.Errorf("collective: %s root %d outside group of %d", op, root, size)
}

// Reduce folds every rank's local slice into one result delivered at root,
// using a binomial tree (ceil(log2 n) rounds). All ranks must pass slices of
// the same length. The result is returned at root; other ranks get nil. The
// local slice is not modified.
func (c *Comm) Reduce(root int, local []float64, op Op) ([]float64, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Reduce", root, c.size)
	}
	acc := make([]float64, len(local))
	copy(acc, local)
	if c.size == 1 {
		c.obsDone(opReduce, Binomial, start)
		return acc, nil
	}
	rel := (c.rank - root + c.size) % c.size
	round := 0
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask == 0 {
			peerRel := rel | mask
			if peerRel < c.size {
				peer := (peerRel + root) % c.size
				vals, err := c.recvScratch(peer, opReduce, c.hdr(seq, round, opReduce), len(acc))
				if err != nil {
					return nil, err
				}
				op(acc, vals)
			}
		} else {
			peer := (rel - mask + root) % c.size
			if err := c.sendFloats(peer, opReduce, c.hdr(seq, round, opReduce), acc); err != nil {
				return nil, err
			}
			c.obsDone(opReduce, Binomial, start)
			return nil, nil // contribution handed off; done
		}
		round++
	}
	c.obsDone(opReduce, Binomial, start)
	return acc, nil
}

// AllReduce folds every rank's local slice and returns the result on all
// ranks. Small vectors use recursive doubling (latency-optimal, log2(n)
// rounds, each moving the full vector); vectors past the dispatch table's
// AllReduceRingBytes threshold use the ring ReduceScatter + ring AllGather
// (Rabenseifner) algorithm, which moves only ~2·len elements per rank
// regardless of group size. The local slice is not modified and the result
// never aliases it.
func (c *Comm) AllReduce(local []float64, op Op) ([]float64, error) {
	return c.AllReduceWith(Auto, local, op)
}

// AllReduceWith is AllReduce with a forced algorithm (RecursiveDoubling or
// Ring; Auto dispatches by the table).
func (c *Comm) AllReduceWith(algo Algo, local []float64, op Op) ([]float64, error) {
	acc := make([]float64, len(local))
	copy(acc, local)
	if err := c.AllReduceInPlaceWith(algo, acc, op); err != nil {
		return nil, err
	}
	return acc, nil
}

// AllReduceInPlace is AllReduce folding the result into vals, avoiding the
// result allocation: with buffer reuse enabled on the in-memory transport
// the steady-state cost is zero allocations per operation.
func (c *Comm) AllReduceInPlace(vals []float64, op Op) error {
	return c.AllReduceInPlaceWith(Auto, vals, op)
}

// AllReduceInPlaceWith is AllReduceInPlace with a forced algorithm.
func (c *Comm) AllReduceInPlaceWith(algo Algo, vals []float64, op Op) error {
	if c.revoked {
		return ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if c.size == 1 {
		c.obsDone(opAllReduce, RecursiveDoubling, start)
		return nil
	}
	if algo == Auto {
		algo = c.table.allReduceAlgo(c.size, wire.Float64sSize(len(vals)))
	}
	var err error
	switch algo {
	case Ring:
		err = c.ringAllReduce(seq, vals, op)
	default:
		algo = RecursiveDoubling
		err = c.rdAllReduce(seq, vals, op)
	}
	if err != nil {
		return err
	}
	c.obsDone(opAllReduce, algo, start)
	return nil
}

// rdAllReduce runs recursive doubling on acc in place. Power-of-two groups
// run the classic log2(n) sweep of pairwise exchanges directly. Other sizes
// fold the remainder in first: with pow2 the largest power of two <= n and
// rem = n - pow2, the first 2*rem ranks pair up — each odd rank hands its
// contribution to its even neighbor and sits out — leaving exactly pow2
// active ranks to run the doubling sweep; a final pairwise send returns the
// full result to the ranks that sat out. That costs the remainder pairs two
// extra latencies but keeps every other rank on the single-sweep critical
// path, unlike the Reduce+Bcast composition it replaces (two full tree
// traversals for everyone).
//
// Rounds: 0 = remainder pre-fold, 1+k = sweep over bit k, 63 = post-fold.
func (c *Comm) rdAllReduce(seq uint32, acc []float64, op Op) error {
	const postRound = 63

	pow2 := 1
	for pow2<<1 <= c.size {
		pow2 <<= 1
	}
	rem := c.size - pow2
	// toGroup maps a doubling-group rank back to its group rank: the even ranks
	// of the paired prefix come first, then the unpaired suffix.
	toGroup := func(nr int) int {
		if nr < rem {
			return 2 * nr
		}
		return nr + rem
	}

	// Pre-fold: odd ranks of the paired prefix hand off and wait.
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 1:
		if err := c.sendFloats(c.rank-1, opAllReduce, c.hdr(seq, 0, opAllReduce), acc); err != nil {
			return err
		}
	case c.rank < 2*rem:
		vals, err := c.recvScratch(c.rank+1, opAllReduce, c.hdr(seq, 0, opAllReduce), len(acc))
		if err != nil {
			return err
		}
		op(acc, vals)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	// Doubling sweep over the pow2 active ranks: in round 1+k every active
	// rank swaps its partial accumulation with the peer across bit k and
	// folds it in. Sends are queued by the transport, so both partners may
	// send before receiving without deadlock.
	if newRank >= 0 {
		round := 1
		for mask := 1; mask < pow2; mask <<= 1 {
			peer := toGroup(newRank ^ mask)
			h := c.hdr(seq, round, opAllReduce)
			if err := c.sendFloats(peer, opAllReduce, h, acc); err != nil {
				return err
			}
			vals, err := c.recvScratch(peer, opAllReduce, h, len(acc))
			if err != nil {
				return err
			}
			op(acc, vals)
			round++
		}
	}

	// Post-fold: even ranks of the paired prefix return the full result to
	// the neighbor that sat the sweep out.
	if c.rank < 2*rem {
		h := c.hdr(seq, postRound, opAllReduce)
		if c.rank%2 == 0 {
			if err := c.sendFloats(c.rank+1, opAllReduce, h, acc); err != nil {
				return err
			}
		} else {
			if err := c.recvInto(c.rank-1, opAllReduce, h, acc); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReduceScalar reduces a single float64 to root (result valid at root only).
func (c *Comm) ReduceScalar(root int, v float64, op Op) (float64, error) {
	res, err := c.Reduce(root, []float64{v}, op)
	if err != nil || res == nil {
		return 0, err
	}
	return res[0], nil
}

// AllReduceScalar reduces a single float64 and returns it everywhere.
func (c *Comm) AllReduceScalar(v float64, op Op) (float64, error) {
	res, err := c.AllReduce([]float64{v}, op)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}
