package collective

import (
	"fmt"
	"time"
)

func errBadRoot(op string, root, size int) error {
	return fmt.Errorf("collective: %s root %d outside group of %d", op, root, size)
}

// Reduce folds every rank's local slice into one result delivered at root,
// using a binomial tree (ceil(log2 n) rounds). All ranks must pass slices of
// the same length. The result is returned at root; other ranks get nil. The
// local slice is not modified.
func (c *Comm) Reduce(root int, local []float64, op Op) ([]float64, error) {
	tag := c.nextTag("reduce")
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Reduce", root, c.size)
	}
	acc := make([]float64, len(local))
	copy(acc, local)
	if c.size == 1 {
		return acc, nil
	}
	rel := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask == 0 {
			peerRel := rel | mask
			if peerRel < c.size {
				peer := (peerRel + root) % c.size
				b, err := c.recvRank(peer, tag)
				if err != nil {
					return nil, err
				}
				vals, err := c.decodeSameLen(b, len(acc))
				if err != nil {
					return nil, err
				}
				op(acc, vals)
			}
		} else {
			peer := (rel - mask + root) % c.size
			if err := c.sendRank(peer, tag, encodeFloats(acc)); err != nil {
				return nil, err
			}
			return nil, nil // contribution handed off; done
		}
	}
	return acc, nil
}

// AllReduce folds every rank's local slice and returns the result on all
// ranks. Power-of-two groups use recursive doubling — one log2(n) sweep of
// pairwise exchanges where every rank ends with the full result, instead of
// the two tree traversals (reduce to root, then broadcast) of the classic
// composition. Other group sizes fall back to Reduce+Bcast; the usual
// remainder-folding pre/post steps would add the two extra latencies back
// for little gain at this scale.
func (c *Comm) AllReduce(local []float64, op Op) ([]float64, error) {
	if c.allReduceHist != nil {
		start := time.Now()
		defer func() { c.allReduceHist.Observe(time.Since(start).Nanoseconds()) }()
	}
	if c.size&(c.size-1) == 0 {
		return c.allReduceDoubling(local, op)
	}
	acc, err := c.Reduce(0, local, op)
	if err != nil {
		return nil, err
	}
	if c.rank == 0 {
		if _, err := c.Bcast(0, encodeFloats(acc)); err != nil {
			return nil, err
		}
		return acc, nil
	}
	b, err := c.Bcast(0, nil)
	if err != nil {
		return nil, err
	}
	return c.decodeSameLen(b, len(local))
}

// allReduceDoubling is the recursive-doubling exchange for power-of-two
// groups: in round k every rank swaps its partial accumulation with the
// peer across bit k (rank XOR 2^k) and folds the peer's half in, so after
// log2(n) rounds each rank holds the reduction of all n contributions.
// Sends are queued by the transport, so both partners may send before
// receiving without deadlock.
func (c *Comm) allReduceDoubling(local []float64, op Op) ([]float64, error) {
	tag := c.nextTag("allreduce")
	acc := make([]float64, len(local))
	copy(acc, local)
	for mask := 1; mask < c.size; mask <<= 1 {
		peer := c.rank ^ mask
		if err := c.sendRank(peer, tag, encodeFloats(acc)); err != nil {
			return nil, err
		}
		b, err := c.recvRank(peer, tag)
		if err != nil {
			return nil, err
		}
		vals, err := c.decodeSameLen(b, len(acc))
		if err != nil {
			return nil, err
		}
		op(acc, vals)
	}
	return acc, nil
}

// ReduceScalar reduces a single float64 to root (result valid at root only).
func (c *Comm) ReduceScalar(root int, v float64, op Op) (float64, error) {
	res, err := c.Reduce(root, []float64{v}, op)
	if err != nil || res == nil {
		return 0, err
	}
	return res[0], nil
}

// AllReduceScalar reduces a single float64 and returns it everywhere.
func (c *Comm) AllReduceScalar(v float64, op Op) (float64, error) {
	res, err := c.AllReduce([]float64{v}, op)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}
