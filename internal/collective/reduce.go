package collective

import (
	"fmt"
	"time"
)

func errBadRoot(op string, root, size int) error {
	return fmt.Errorf("collective: %s root %d outside group of %d", op, root, size)
}

// Reduce folds every rank's local slice into one result delivered at root,
// using a binomial tree (ceil(log2 n) rounds). All ranks must pass slices of
// the same length. The result is returned at root; other ranks get nil. The
// local slice is not modified.
func (c *Comm) Reduce(root int, local []float64, op Op) ([]float64, error) {
	tag := c.nextTag("reduce")
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Reduce", root, c.size)
	}
	acc := make([]float64, len(local))
	copy(acc, local)
	if c.size == 1 {
		return acc, nil
	}
	rel := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask == 0 {
			peerRel := rel | mask
			if peerRel < c.size {
				peer := (peerRel + root) % c.size
				b, err := c.recvRank(peer, tag)
				if err != nil {
					return nil, err
				}
				vals, err := c.decodeSameLen(b, len(acc))
				if err != nil {
					return nil, err
				}
				op(acc, vals)
			}
		} else {
			peer := (rel - mask + root) % c.size
			if err := c.sendRank(peer, tag, encodeFloats(acc)); err != nil {
				return nil, err
			}
			return nil, nil // contribution handed off; done
		}
	}
	return acc, nil
}

// AllReduce folds every rank's local slice and returns the result on all
// ranks, using recursive doubling for every group size. Power-of-two groups
// run the classic log2(n) sweep of pairwise exchanges directly. Other sizes
// fold the remainder in first: with pow2 the largest power of two <= n and
// rem = n - pow2, the first 2*rem ranks pair up — each odd rank hands its
// contribution to its even neighbor and sits out — leaving exactly pow2
// active ranks to run the doubling sweep; a final pairwise send returns the
// full result to the ranks that sat out. That costs the remainder pairs two
// extra latencies but keeps every other rank on the single-sweep critical
// path, unlike the Reduce+Bcast composition it replaces (two full tree
// traversals for everyone).
func (c *Comm) AllReduce(local []float64, op Op) ([]float64, error) {
	if c.allReduceHist != nil {
		start := time.Now()
		defer func() { c.allReduceHist.Observe(time.Since(start).Nanoseconds()) }()
	}
	tag := c.nextTag("allreduce")
	acc := make([]float64, len(local))
	copy(acc, local)
	if c.size == 1 {
		return acc, nil
	}

	pow2 := 1
	for pow2<<1 <= c.size {
		pow2 <<= 1
	}
	rem := c.size - pow2
	// toGroup maps a doubling-group rank back to its group rank: the even ranks
	// of the paired prefix come first, then the unpaired suffix.
	toGroup := func(nr int) int {
		if nr < rem {
			return 2 * nr
		}
		return nr + rem
	}

	// Pre-fold: odd ranks of the paired prefix hand off and wait.
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 1:
		if err := c.sendRank(c.rank-1, tag, encodeFloats(acc)); err != nil {
			return nil, err
		}
	case c.rank < 2*rem:
		b, err := c.recvRank(c.rank+1, tag)
		if err != nil {
			return nil, err
		}
		vals, err := c.decodeSameLen(b, len(acc))
		if err != nil {
			return nil, err
		}
		op(acc, vals)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	// Doubling sweep over the pow2 active ranks: in round k every active
	// rank swaps its partial accumulation with the peer across bit k and
	// folds it in. Sends are queued by the transport, so both partners may
	// send before receiving without deadlock. Each pair meets in exactly one
	// round (mask = XOR of their ranks), so one tag serves the whole sweep.
	if newRank >= 0 {
		for mask := 1; mask < pow2; mask <<= 1 {
			peer := toGroup(newRank ^ mask)
			if err := c.sendRank(peer, tag, encodeFloats(acc)); err != nil {
				return nil, err
			}
			b, err := c.recvRank(peer, tag)
			if err != nil {
				return nil, err
			}
			vals, err := c.decodeSameLen(b, len(acc))
			if err != nil {
				return nil, err
			}
			op(acc, vals)
		}
	}

	// Post-fold: even ranks of the paired prefix return the full result to
	// the neighbor that sat the sweep out.
	if c.rank < 2*rem {
		if c.rank%2 == 0 {
			if err := c.sendRank(c.rank+1, tag, encodeFloats(acc)); err != nil {
				return nil, err
			}
		} else {
			b, err := c.recvRank(c.rank-1, tag)
			if err != nil {
				return nil, err
			}
			vals, err := c.decodeSameLen(b, len(acc))
			if err != nil {
				return nil, err
			}
			copy(acc, vals)
		}
	}
	return acc, nil
}

// ReduceScalar reduces a single float64 to root (result valid at root only).
func (c *Comm) ReduceScalar(root int, v float64, op Op) (float64, error) {
	res, err := c.Reduce(root, []float64{v}, op)
	if err != nil || res == nil {
		return 0, err
	}
	return res[0], nil
}

// AllReduceScalar reduces a single float64 and returns it everywhere.
func (c *Comm) AllReduceScalar(v float64, op Op) (float64, error) {
	res, err := c.AllReduce([]float64{v}, op)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}
