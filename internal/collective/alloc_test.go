package collective

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv/diag"
	"repro/internal/transport"
)

// allocGroup spins up a MemNetwork group with pre-spawned per-rank worker
// goroutines that each run one operation per trigger, so the measurement
// loop allocates nothing itself (no goroutine spawns per iteration).
type allocGroup struct {
	net     *transport.MemNetwork
	comms   []*Comm
	trigger []chan struct{}
	done    chan error
	wg      sync.WaitGroup
}

func newAllocGroup(t *testing.T, size int, fn func(c *Comm) error) *allocGroup {
	t.Helper()
	g := &allocGroup{
		net:     transport.NewMemNetwork(),
		comms:   make([]*Comm, size),
		trigger: make([]chan struct{}, size),
		done:    make(chan error, size),
	}
	for r := 0; r < size; r++ {
		ep, err := g.net.Register(transport.Proc("A", r))
		if err != nil {
			t.Fatal(err)
		}
		g.comms[r], err = New(transport.NewDispatcher(ep), "A", r, size)
		if err != nil {
			t.Fatal(err)
		}
		g.comms[r].SetTimeout(30 * time.Second)
		g.comms[r].SetBufferReuse(true)
		g.trigger[r] = make(chan struct{})
	}
	for r := 0; r < size; r++ {
		c := g.comms[r]
		tr := g.trigger[r]
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			for range tr {
				g.done <- fn(c)
			}
		}()
	}
	return g
}

// round triggers one operation on every rank and waits for all to finish.
func (g *allocGroup) round(t *testing.T) {
	for _, tr := range g.trigger {
		tr <- struct{}{}
	}
	for range g.comms {
		if err := <-g.done; err != nil {
			t.Fatal(err)
		}
	}
}

func (g *allocGroup) close() {
	for _, tr := range g.trigger {
		close(tr)
	}
	g.wg.Wait()
	g.net.Close()
}

// measureAllocs returns total heap allocations (mallocs) across the whole
// process during iters rounds.
func measureAllocs(t *testing.T, g *allocGroup, iters int) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		g.round(t)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestAllReduceSteadyStateZeroAlloc pins the zero-allocation hot path: with
// buffer reuse on over the in-memory transport, steady-state in-place
// AllReduce (both algorithms) performs no heap allocations — no per-round
// tag strings, no encode buffers, no timer, no queue churn. This is the
// allocs-per-op regression test for the satellite "fix per-round tag
// allocation churn".
func TestAllReduceSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const (
		ranks  = 4
		vecLen = 1024
		iters  = 50
	)
	for _, algo := range []Algo{RecursiveDoubling, Ring} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			vecs := make([][]float64, ranks)
			for r := range vecs {
				vecs[r] = make([]float64, vecLen)
			}
			g := newAllocGroup(t, ranks, func(c *Comm) error {
				return c.AllReduceInPlaceWith(algo, vecs[c.Rank()], Max)
			})
			defer g.close()
			// Warm up pools, scratch, pending capacity and mailbox seq maps.
			for i := 0; i < 16; i++ {
				g.round(t)
			}
			mallocs := measureAllocs(t, g, iters)
			perOp := float64(mallocs) / float64(iters*ranks)
			t.Logf("%s: %d mallocs over %d ops (%.3f/op)", algo, mallocs, iters*ranks, perOp)
			// The whole process (all ranks, dispatchers, pumps) gets a tiny
			// slack for runtime-internal allocations; the collective path
			// itself must be allocation-free.
			if mallocs > 10 {
				t.Fatalf("%s steady-state AllReduce allocated %d times over %d ops (want 0)",
					algo, mallocs, iters*ranks)
			}
		})
	}
}

// TestDiagOnSteadyStateZeroAlloc extends the zero-alloc regression to the
// diagnosis path: the attribution trailer (stamping, folding, board votes)
// must not allocate either — it reuses the payload buffer, reads the clock,
// and votes through atomics.
func TestDiagOnSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const (
		ranks  = 8
		vecLen = 1024
		iters  = 50
	)
	vecs := make([][]float64, ranks)
	for r := range vecs {
		vecs[r] = make([]float64, vecLen)
	}
	g := newAllocGroup(t, ranks, func(c *Comm) error {
		return c.AllReduceInPlaceWith(RecursiveDoubling, vecs[c.Rank()], Max)
	})
	defer g.close()
	b := diag.NewBoard("A", ranks)
	for _, c := range g.comms {
		c.SetDiag(b, nil)
	}
	for i := 0; i < 16; i++ {
		g.round(t)
	}
	mallocs := measureAllocs(t, g, iters)
	if mallocs > 10 {
		t.Fatalf("steady-state AllReduce with diagnosis on allocated %d times over %d ops (want 0)",
			mallocs, iters*ranks)
	}
}

// TestBarrierSteadyStateZeroAlloc extends the regression to the header-only
// control path.
func TestBarrierSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := newAllocGroup(t, 4, func(c *Comm) error { return c.Barrier() })
	defer g.close()
	for i := 0; i < 16; i++ {
		g.round(t)
	}
	mallocs := measureAllocs(t, g, 50)
	if mallocs > 10 {
		t.Fatalf("steady-state Barrier allocated %d times over 200 ops (want 0)", mallocs)
	}
}
