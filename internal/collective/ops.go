package collective

import (
	"fmt"
	"math"

	"repro/internal/wire"
)

// Op is a commutative, associative elementwise reduction operator. It folds
// src into acc (both same length).
type Op func(acc, src []float64)

// Sum adds src into acc.
func Sum(acc, src []float64) {
	for i := range acc {
		acc[i] += src[i]
	}
}

// Prod multiplies acc by src elementwise.
func Prod(acc, src []float64) {
	for i := range acc {
		acc[i] *= src[i]
	}
}

// Max keeps the elementwise maximum.
func Max(acc, src []float64) {
	for i := range acc {
		acc[i] = math.Max(acc[i], src[i])
	}
}

// Min keeps the elementwise minimum.
func Min(acc, src []float64) {
	for i := range acc {
		acc[i] = math.Min(acc[i], src[i])
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func encodeFloats(vals []float64) []byte       { return wire.EncodeFloat64s(vals) }
func decodeFloats(b []byte) ([]float64, error) { return wire.DecodeFloat64s(b) }

func (c *Comm) decodeSameLen(b []byte, n int) ([]float64, error) {
	vals, err := decodeFloats(b)
	if err != nil {
		return nil, err
	}
	if len(vals) != n {
		return nil, fmt.Errorf("collective: peer contributed %d values, local has %d", len(vals), n)
	}
	return vals, nil
}
