package collective

import "repro/internal/wire"

// Scan computes the inclusive prefix reduction: rank r receives
// op(local_0, ..., local_r). It uses the recursive-distance algorithm
// (ceil(log2 n) rounds): in round k each rank sends its running value to
// rank+2^k and folds the value received from rank-2^k. The result never
// aliases local.
func (c *Comm) Scan(local []float64, op Op) ([]float64, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	acc := make([]float64, len(local))
	copy(acc, local)
	if c.size == 1 {
		c.obsDone(opScan, RecursiveDoubling, start)
		return acc, nil
	}
	round := 0
	for dist := 1; dist < c.size; dist <<= 1 {
		h := c.hdr(seq, round, opScan)
		// Send first, then receive: the dispatcher's unbounded queues make
		// the eager send safe.
		if peer := c.rank + dist; peer < c.size {
			if err := c.sendFloats(peer, opScan, h, acc); err != nil {
				return nil, err
			}
		}
		if peer := c.rank - dist; peer >= 0 {
			vals, err := c.recvScratch(peer, opScan, h, len(acc))
			if err != nil {
				return nil, err
			}
			op(acc, vals)
		}
		round++
	}
	c.obsDone(opScan, RecursiveDoubling, start)
	return acc, nil
}

// ScanScalar is Scan for a single value.
func (c *Comm) ScanScalar(v float64, op Op) (float64, error) {
	res, err := c.Scan([]float64{v}, op)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// ReduceScatter reduces every rank's length-n*size slice elementwise and
// scatters the result: rank r receives elements [r*n, (r+1)*n) of the global
// reduction, where n = len(local)/size (len(local) must divide evenly).
// Small inputs run the Reduce+Scatter composition (kept as the reference);
// large ones the ring reduce-scatter, which moves ~len elements per rank
// instead of funneling the full vector through a root twice.
func (c *Comm) ReduceScatter(local []float64, op Op) ([]float64, error) {
	return c.ReduceScatterWith(Auto, local, op)
}

// ReduceScatterWith is ReduceScatter with a forced algorithm (Composed or
// Ring).
func (c *Comm) ReduceScatterWith(algo Algo, local []float64, op Op) ([]float64, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	if len(local)%c.size != 0 {
		return nil, errf("collective: ReduceScatter input length %d not divisible by group size %d",
			len(local), c.size)
	}
	if algo != Composed && algo != Ring {
		algo = c.table.reduceScatterAlgo(c.size, wire.Float64sSize(len(local)))
	}
	if c.size == 1 {
		start := c.obsStart()
		c.nextSeq()
		out := make([]float64, len(local))
		copy(out, local)
		c.obsDone(opReduceScatter, algo, start)
		return out, nil
	}
	if algo == Ring {
		return c.reduceScatterRing(local, op)
	}
	return c.reduceScatterComposed(local, op)
}

// reduceScatterRing runs the reduce-scatter half of the ring on a working
// copy and returns this rank's fully reduced block.
func (c *Comm) reduceScatterRing(local []float64, op Op) ([]float64, error) {
	start := c.obsStart()
	seq := c.nextSeq()
	acc := make([]float64, len(local))
	copy(acc, local)
	if err := c.ringReduceScatterPhase(seq, opReduceScatter, acc, op); err != nil {
		return nil, err
	}
	lo, hi := blockRange(len(acc), c.size, c.rank)
	out := make([]float64, hi-lo)
	copy(out, acc[lo:hi])
	c.obsDone(opReduceScatter, Ring, start)
	return out, nil
}

// reduceScatterComposed is the Reduce-to-root + Scatter reference
// composition (the inner collectives record their own instruments).
func (c *Comm) reduceScatterComposed(local []float64, op Op) ([]float64, error) {
	start := c.obsStart()
	n := len(local) / c.size
	full, err := c.Reduce(0, local, op)
	if err != nil {
		return nil, err
	}
	var parts [][]byte
	if c.rank == 0 {
		parts = make([][]byte, c.size)
		for r := 0; r < c.size; r++ {
			parts[r] = encodeFloats(full[r*n : (r+1)*n])
		}
	}
	b, err := c.Scatter(0, parts)
	if err != nil {
		return nil, err
	}
	out, err := c.decodeSameLen(b, n)
	if err != nil {
		return nil, err
	}
	c.obsDone(opReduceScatter, Composed, start)
	return out, nil
}
