package collective

// Scan computes the inclusive prefix reduction: rank r receives
// op(local_0, ..., local_r). It uses the recursive-distance algorithm
// (ceil(log2 n) rounds): in round k each rank sends its running value to
// rank+2^k and folds the value received from rank-2^k.
func (c *Comm) Scan(local []float64, op Op) ([]float64, error) {
	tag := c.nextTag("scan")
	acc := make([]float64, len(local))
	copy(acc, local)
	if c.size == 1 {
		return acc, nil
	}
	// carry is the partial prefix received so far; acc = op(carry, local..).
	for dist := 1; dist < c.size; dist <<= 1 {
		// Send first, then receive: the dispatcher's unbounded queues make
		// the eager send safe.
		if peer := c.rank + dist; peer < c.size {
			if err := c.sendRank(peer, stepTag(tag, dist), encodeFloats(acc)); err != nil {
				return nil, err
			}
		}
		if peer := c.rank - dist; peer >= 0 {
			b, err := c.recvRank(peer, stepTag(tag, dist))
			if err != nil {
				return nil, err
			}
			vals, err := c.decodeSameLen(b, len(acc))
			if err != nil {
				return nil, err
			}
			op(acc, vals)
		}
	}
	return acc, nil
}

// ScanScalar is Scan for a single value.
func (c *Comm) ScanScalar(v float64, op Op) (float64, error) {
	res, err := c.Scan([]float64{v}, op)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// ReduceScatter reduces every rank's length-n*size slice elementwise and
// scatters the result: rank r receives elements [r*n, (r+1)*n) of the global
// reduction, where n = len(local)/size (len(local) must divide evenly).
// Implemented as reduce-to-root plus scatter, which is bandwidth-optimal
// enough for the control-plane uses in this repo.
func (c *Comm) ReduceScatter(local []float64, op Op) ([]float64, error) {
	if len(local)%c.size != 0 {
		return nil, errf("collective: ReduceScatter input length %d not divisible by group size %d",
			len(local), c.size)
	}
	n := len(local) / c.size
	full, err := c.Reduce(0, local, op)
	if err != nil {
		return nil, err
	}
	var parts [][]byte
	if c.rank == 0 {
		parts = make([][]byte, c.size)
		for r := 0; r < c.size; r++ {
			parts[r] = encodeFloats(full[r*n : (r+1)*n])
		}
	}
	b, err := c.Scatter(0, parts)
	if err != nil {
		return nil, err
	}
	return c.decodeSameLen(b, n)
}
