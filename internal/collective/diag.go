package collective

import (
	"encoding/binary"
	"time"

	"repro/internal/obsv/diag"
)

// Critical-path attribution piggybacks on the collective payloads
// themselves: with diagnosis enabled every payload carries, between the
// 8-byte operation header and the body, a 16-byte trailer
//
//	bytes 0..7   fold word: bits 16..63 the largest wait (ns) any rank on
//	             the sender's causal path attributed so far, bits 0..15 the
//	             blamed rank as an int16 (-1 = nobody yet)
//	bytes 8..15  send timestamp, nanoseconds on the group's clock
//
// On every receive a rank measures its own wait (send_ts − post_ts: how
// long the peer kept it blocked) and transfer time (arrival − max(send_ts,
// post_ts)), folds the peer's fold word with max-semantics, and — after
// subtracting the wait the peer itself was suffering, so cascaded stalls
// collapse onto their origin — considers blaming the peer directly. Because
// every collective's communication graph connects all ranks, the fold word
// converges exactly like the operation's own reduction: by the last round
// every rank knows the straggler and its critical-path wait, with zero
// extra messages (the same piggybacking trick Property 1 uses).
//
// The per-send cost is two clock reads and 16 bytes; with diagnosis off the
// trailer is absent and the hot path keeps its 0 allocs/op guarantee.
const trailerLen = 16

// DefaultDiagMinWait is the attribution noise floor: measured waits below
// it never blame anyone, so scheduler jitter does not elect stragglers.
const DefaultDiagMinWait = 20 * time.Microsecond

// diagState is the per-operation attribution accumulator, reset by nextSeq.
type diagState struct {
	active  bool
	lastNS  int64 // most recent receive-arrival clock read, reused by stamp
	waitNS  int64 // this rank's summed wait across the op's receives
	xferNS  int64 // this rank's summed transfer time
	maxWait int64 // largest attributed wait seen on any causal path
	maxRank int32 // rank blamed for maxWait; -1 = none
}

// SetDiag attaches critical-path attribution to this Comm: finished
// operations are Note()d on board, and — when flight is non-nil — recorded
// as flight-recorder events. Diagnosis changes the wire layout (every
// payload grows a trailerLen trailer), so like SetTable it must be applied
// group-consistently: every rank of the group, or none. A nil board turns
// diagnosis off again.
func (c *Comm) SetDiag(board *diag.Board, flight *diag.Recorder) {
	c.board, c.flight = board, flight
	if board == nil {
		c.hlen = hdrLen
		c.dclk = nil
		c.dstate = diagState{}
		return
	}
	c.hlen = hdrLen + trailerLen
	if c.minWait == 0 {
		c.minWait = int64(DefaultDiagMinWait)
	}
	// Timestamps must come from one clock per group. Prefer the flight
	// recorder's (the framework clock — virtual under DST, so dumped
	// timelines sort by simulated time); fall back to the dispatcher's.
	c.dclk = c.d.Clock()
	if flight != nil {
		c.dclk = flight.Clock()
		flight.SetOpNames(opTags[:])
	}
}

// SetDiagMinWait overrides the attribution noise floor (0 restores the
// default).
func (c *Comm) SetDiagMinWait(d time.Duration) {
	if d <= 0 {
		d = DefaultDiagMinWait
	}
	c.minWait = int64(d)
}

// Board returns the attached straggler board (possibly nil).
func (c *Comm) Board() *diag.Board { return c.board }

func (c *Comm) nowNS() int64 { return c.dclk.Now().UnixNano() }

// diagEnabled reports whether payloads carry the attribution trailer.
func (c *Comm) diagEnabled() bool { return c.hlen != hdrLen }

// stamp writes the attribution trailer into a payload this rank still
// exclusively owns (before its first send: transports may retain sent
// payloads for retransmission, so stamping after a send would race).
func (c *Comm) stamp(b []byte) {
	d := &c.dstate
	wait := d.maxWait
	if wait < 0 {
		wait = 0
	}
	fold := uint64(wait)<<16 | uint64(uint16(d.maxRank))
	binary.LittleEndian.PutUint64(b[hdrLen:], fold)
	// Clock reads dominate the trailer's cost on the latency-bound hot
	// path, so the send timestamp reuses the operation's latest
	// receive-arrival read when one exists. It backdates the stamp by the
	// local compute between receive and send — which only under-measures
	// the wait the peer attributes to us, a conservative error far below
	// the noise floor.
	ts := d.lastNS
	if ts == 0 {
		ts = c.nowNS()
		d.lastNS = ts
	}
	binary.LittleEndian.PutUint64(b[hdrLen+8:], uint64(ts))
}

// diagFold absorbs a received payload's trailer. live receives (the rank
// was actually posted, postNS/recvNS measured around the delivery) also
// contribute wait/transfer measurements; payloads consumed from the pending
// list arrived while this rank was posted elsewhere, so only their fold
// word is merged.
func (c *Comm) diagFold(from int, p []byte, live bool, postNS, recvNS int64) {
	d := &c.dstate
	if !d.active || len(p) < hdrLen+trailerLen {
		return
	}
	word := binary.LittleEndian.Uint64(p[hdrLen:])
	peerRank := int32(int16(uint16(word)))
	peerWait := int64(word >> 16)
	if peerRank >= 0 && peerWait > d.maxWait {
		d.maxWait, d.maxRank = peerWait, peerRank
	}
	if !live {
		return
	}
	d.lastNS = recvNS
	sendNS := int64(binary.LittleEndian.Uint64(p[hdrLen+8:]))
	wait := sendNS - postNS
	if wait < 0 {
		wait = 0
	}
	from64 := sendNS
	if postNS > from64 {
		from64 = postNS
	}
	if xfer := recvNS - from64; xfer > 0 {
		d.xferNS += xfer
	}
	d.waitNS += wait
	// The peer's stamp already accounts for the wait it was itself
	// suffering when it sent; subtract it so a cascaded stall is blamed on
	// its origin, not on every intermediate hop.
	intrinsic := wait
	if peerRank >= 0 {
		intrinsic -= peerWait
	}
	if intrinsic >= c.minWait && intrinsic > d.maxWait {
		d.maxWait, d.maxRank = intrinsic, int32(from)
	}
}

// diagEnd flushes the finished operation's attribution: one board note, the
// straggler instruments, and (when attached) a flight-recorder event. It is
// idempotent per operation, so composed collectives — whose inner ops each
// ran their own begin/end — no-op on the outer flush.
func (c *Comm) diagEnd(op opID) {
	d := &c.dstate
	if !d.active {
		return
	}
	d.active = false
	blamed := int(d.maxRank)
	c.board.Note(c.opSeq, c.rank, blamed, d.maxWait, d.xferNS)
	c.ins.observeStraggler(op, blamed, d.waitNS, d.xferNS)
	if c.flight != nil {
		c.flight.Record(diag.Event{
			Kind: diag.KindCollective,
			Seq:  c.opSeq,
			Op:   uint8(op),
			Rank: int32(c.rank),
			A1:   int64(blamed),
			A2:   d.waitNS,
		})
	}
}
