package collective

import (
	"encoding/binary"
	"fmt"
)

// Byte-slice collectives. Parts may have different sizes per rank, so
// algorithm dispatch keys on group size alone (identical on every rank).
// Returned slices never alias the caller's inputs: a root's own Gather
// entry, a Scatter root's part and an AllToAll self-entry are copies, so
// mutating an input after the call cannot corrupt the result (and vice
// versa).

// Gather collects each rank's part at root. At root the returned slice has
// one entry per rank, in rank order; other ranks get nil.
func (c *Comm) Gather(root int, part []byte) ([][]byte, error) {
	return c.GatherWith(Auto, root, part)
}

// GatherWith is Gather with a forced algorithm (Linear or Binomial).
func (c *Comm) GatherWith(algo Algo, root int, part []byte) ([][]byte, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Gather", root, c.size)
	}
	if algo != Linear && algo != Binomial {
		algo = c.table.gatherAlgo(c.size)
	}
	if c.size == 1 {
		c.obsDone(opGather, algo, start)
		return [][]byte{copyBytes(part)}, nil
	}
	var (
		out [][]byte
		err error
	)
	if algo == Binomial {
		out, err = c.gatherTree(seq, root, part)
	} else {
		out, err = c.gatherLinear(seq, root, part)
	}
	if err != nil {
		return nil, err
	}
	c.obsDone(opGather, algo, start)
	return out, nil
}

func (c *Comm) gatherLinear(seq uint32, root int, part []byte) ([][]byte, error) {
	h := c.hdr(seq, 0, opGather)
	if c.rank != root {
		return nil, c.sendBytes(root, opGather, h, part)
	}
	out := make([][]byte, c.size)
	out[root] = copyBytes(part)
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		p, err := c.recv(r, opGather, h)
		if err != nil {
			return nil, err
		}
		out[r] = p[c.hlen:]
	}
	return out, nil
}

// gatherTree runs the binomial-tree gather: leaves send their entry to their
// parent, interior nodes concatenate their subtree's entries and forward
// them up, so the root performs ceil(log2 n) receives instead of n-1. The
// combined payload is a sequence of [rank uint32][len uint32][bytes] entries.
func (c *Comm) gatherTree(seq uint32, root int, part []byte) ([][]byte, error) {
	rel := (c.rank - root + c.size) % c.size
	// M is this node's subtree span: children sit at rel+m for powers of two
	// m < M (clipped to the group); the parent is across bit M.
	M := c.size
	if rel != 0 {
		M = rel & (-rel)
	}
	buf := appendEntry(make([]byte, 0, 16+len(part)), uint32(c.rank), part)
	h := c.hdr(seq, 0, opGather)
	for m := 1; m < M && rel+m < c.size; m <<= 1 {
		p, err := c.recv((rel+m+root)%c.size, opGather, h)
		if err != nil {
			return nil, err
		}
		buf = append(buf, p[c.hlen:]...)
	}
	if rel != 0 {
		return nil, c.sendBytes((rel-M+root)%c.size, opGather, h, buf)
	}
	out := make([][]byte, c.size)
	if err := parseEntries(buf, func(r uint32, body []byte) error {
		if int(r) >= c.size || out[r] != nil {
			return fmt.Errorf("collective: gather entry for rank %d (group %d)", r, c.size)
		}
		out[r] = body
		return nil
	}); err != nil {
		return nil, err
	}
	for r := range out {
		if out[r] == nil {
			return nil, fmt.Errorf("collective: gather missing rank %d", r)
		}
	}
	return out, nil
}

// Scatter distributes parts[r] from root to rank r and returns the local
// part on every rank. Only root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	return c.ScatterWith(Auto, root, parts)
}

// ScatterWith is Scatter with a forced algorithm (Linear or Binomial).
func (c *Comm) ScatterWith(algo Algo, root int, parts [][]byte) ([]byte, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Scatter", root, c.size)
	}
	if c.rank == root && len(parts) != c.size {
		return nil, errPartCount("Scatter", len(parts), c.size)
	}
	if algo != Linear && algo != Binomial {
		algo = c.table.gatherAlgo(c.size)
	}
	if c.size == 1 {
		c.obsDone(opScatter, algo, start)
		return copyBytes(parts[root]), nil
	}
	var (
		out []byte
		err error
	)
	if algo == Binomial {
		out, err = c.scatterTree(seq, root, parts)
	} else {
		out, err = c.scatterLinear(seq, root, parts)
	}
	if err != nil {
		return nil, err
	}
	c.obsDone(opScatter, algo, start)
	return out, nil
}

func (c *Comm) scatterLinear(seq uint32, root int, parts [][]byte) ([]byte, error) {
	h := c.hdr(seq, 0, opScatter)
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.sendBytes(r, opScatter, h, parts[r]); err != nil {
				return nil, err
			}
		}
		return copyBytes(parts[root]), nil
	}
	p, err := c.recv(root, opScatter, h)
	if err != nil {
		return nil, err
	}
	return p[c.hlen:], nil
}

// scatterTree is the binomial mirror of gatherTree: the root packs each
// child's whole-subtree entries into one message, and interior nodes peel
// off their own entry and repack the remainder for their children.
func (c *Comm) scatterTree(seq uint32, root int, parts [][]byte) ([]byte, error) {
	rel := (c.rank - root + c.size) % c.size
	h := c.hdr(seq, 0, opScatter)
	relOf := func(r uint32) int { return (int(r) - root + c.size) % c.size }

	var entries []byte // the entry stream covering this node's subtree
	var own []byte
	if rel == 0 {
		var scratch []byte
		topmask := 1
		for topmask < c.size {
			topmask <<= 1
		}
		for m := topmask >> 1; m > 0; m >>= 1 {
			if m >= c.size {
				continue
			}
			scratch = scratch[:0]
			for pr := m; pr < min(2*m, c.size); pr++ {
				r := (pr + root) % c.size
				scratch = appendEntry(scratch, uint32(r), parts[r])
			}
			if err := c.sendBytes((m+root)%c.size, opScatter, h, scratch); err != nil {
				return nil, err
			}
		}
		return copyBytes(parts[root]), nil
	}

	M := rel & (-rel)
	p, err := c.recv((rel-M+root)%c.size, opScatter, h)
	if err != nil {
		return nil, err
	}
	entries = p[c.hlen:]
	// Repack per child: child at rel+m owns relative ranks [rel+m, rel+2m).
	var scratch []byte
	for m := M >> 1; m > 0; m >>= 1 {
		if rel+m >= c.size {
			continue
		}
		scratch = scratch[:0]
		err := parseEntries(entries, func(r uint32, body []byte) error {
			if pr := relOf(r); pr >= rel+m && pr < rel+2*m {
				scratch = appendEntry(scratch, r, body)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := c.sendBytes((rel+m+root)%c.size, opScatter, h, scratch); err != nil {
			return nil, err
		}
	}
	err = parseEntries(entries, func(r uint32, body []byte) error {
		if int(r) == c.rank {
			own = body
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if own == nil {
		return nil, fmt.Errorf("collective: scatter rank %d missing its part", c.rank)
	}
	return own, nil
}

// AllGather collects each rank's part on every rank. Small groups use the
// linear exchange; larger ones the ring (n-1 steps, each step passing the
// next block to the right neighbor), which keeps per-rank traffic at the sum
// of all parts regardless of group size and never funnels through a root.
func (c *Comm) AllGather(part []byte) ([][]byte, error) {
	return c.AllGatherWith(Auto, part)
}

// AllGatherWith is AllGather with a forced algorithm (Linear or Ring).
func (c *Comm) AllGatherWith(algo Algo, part []byte) ([][]byte, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if algo != Linear && algo != Ring {
		algo = c.table.allGatherAlgo(c.size)
	}
	out := make([][]byte, c.size)
	out[c.rank] = copyBytes(part)
	if c.size == 1 {
		c.obsDone(opAllGather, algo, start)
		return out, nil
	}
	var err error
	if algo == Ring {
		err = c.allGatherRing(seq, out)
	} else {
		err = c.allGatherLinear(seq, out)
	}
	if err != nil {
		return nil, err
	}
	c.obsDone(opAllGather, algo, start)
	return out, nil
}

func (c *Comm) allGatherLinear(seq uint32, out [][]byte) error {
	h := c.hdr(seq, 0, opAllGather)
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		if err := c.sendBytes(r, opAllGather, h, out[c.rank]); err != nil {
			return err
		}
	}
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		p, err := c.recv(r, opAllGather, h)
		if err != nil {
			return err
		}
		out[r] = p[c.hlen:]
	}
	return nil
}

func (c *Comm) allGatherRing(seq uint32, out [][]byte) error {
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	// In step s we forward the block that originated at rank-s (mod n).
	for s := 0; s < c.size-1; s++ {
		h := c.hdr(seq, s, opAllGather)
		sendOrigin := (c.rank - s + c.size) % c.size
		if err := c.sendBytes(right, opAllGather, h, out[sendOrigin]); err != nil {
			return err
		}
		p, err := c.recv(left, opAllGather, h)
		if err != nil {
			return err
		}
		recvOrigin := (c.rank - s - 1 + c.size) % c.size
		out[recvOrigin] = p[c.hlen:]
	}
	return nil
}

// AllToAll delivers parts[r] to rank r from every rank; the returned slice
// holds, per source rank, the block that source addressed to this rank.
// Small groups use the linear eager exchange; larger ones pairwise exchange
// (step s trades with rank±s), which spreads the traffic over disjoint pairs
// per step instead of all ranks bursting at once.
func (c *Comm) AllToAll(parts [][]byte) ([][]byte, error) {
	return c.AllToAllWith(Auto, parts)
}

// AllToAllWith is AllToAll with a forced algorithm (Linear or Pairwise).
func (c *Comm) AllToAllWith(algo Algo, parts [][]byte) ([][]byte, error) {
	if c.revoked {
		return nil, ErrRevoked
	}
	start := c.obsStart()
	seq := c.nextSeq()
	if len(parts) != c.size {
		return nil, errPartCount("AllToAll", len(parts), c.size)
	}
	if algo != Linear && algo != Pairwise {
		algo = c.table.allToAllAlgo(c.size)
	}
	out := make([][]byte, c.size)
	out[c.rank] = copyBytes(parts[c.rank])
	if c.size == 1 {
		c.obsDone(opAllToAll, algo, start)
		return out, nil
	}
	var err error
	if algo == Pairwise {
		err = c.allToAllPairwise(seq, parts, out)
	} else {
		err = c.allToAllLinear(seq, parts, out)
	}
	if err != nil {
		return nil, err
	}
	c.obsDone(opAllToAll, algo, start)
	return out, nil
}

func (c *Comm) allToAllLinear(seq uint32, parts, out [][]byte) error {
	h := c.hdr(seq, 0, opAllToAll)
	// Send everything, then collect. The dispatcher's unbounded queues make
	// the eager sends deadlock-free.
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		if err := c.sendBytes(r, opAllToAll, h, parts[r]); err != nil {
			return err
		}
	}
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		p, err := c.recv(r, opAllToAll, h)
		if err != nil {
			return err
		}
		out[r] = p[c.hlen:]
	}
	return nil
}

func (c *Comm) allToAllPairwise(seq uint32, parts, out [][]byte) error {
	for s := 1; s < c.size; s++ {
		h := c.hdr(seq, s, opAllToAll)
		to := (c.rank + s) % c.size
		from := (c.rank - s + c.size) % c.size
		if err := c.sendBytes(to, opAllToAll, h, parts[to]); err != nil {
			return err
		}
		p, err := c.recv(from, opAllToAll, h)
		if err != nil {
			return err
		}
		out[from] = p[c.hlen:]
	}
	return nil
}

// copyBytes clones b, preserving nil-ness as an empty (non-nil) slice only
// when b has bytes; nil and empty both come back empty.
func copyBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// appendEntry appends one [rank uint32][len uint32][bytes] record.
func appendEntry(dst []byte, rank uint32, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, rank)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// parseEntries walks a [rank uint32][len uint32][bytes] stream. Bodies
// passed to fn alias the stream.
func parseEntries(b []byte, fn func(rank uint32, body []byte) error) error {
	for len(b) > 0 {
		if len(b) < 8 {
			return fmt.Errorf("collective: truncated entry header (%d bytes)", len(b))
		}
		rank := binary.LittleEndian.Uint32(b)
		n := int(binary.LittleEndian.Uint32(b[4:]))
		if n < 0 || len(b)-8 < n {
			return fmt.Errorf("collective: entry for rank %d claims %d bytes, %d remain", rank, n, len(b)-8)
		}
		if err := fn(rank, b[8:8+n]); err != nil {
			return err
		}
		b = b[8+n:]
	}
	return nil
}

func errPartCount(op string, got, want int) error {
	return errf("collective: %s needs %d parts, got %d", op, want, got)
}
