package collective

// Gather collects each rank's part at root. At root the returned slice has
// one entry per rank, in rank order (root's own entry aliases part); other
// ranks get nil. Parts may have different sizes.
func (c *Comm) Gather(root int, part []byte) ([][]byte, error) {
	tag := c.nextTag("gather")
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Gather", root, c.size)
	}
	if c.rank != root {
		return nil, c.sendRank(root, tag, part)
	}
	out := make([][]byte, c.size)
	out[root] = part
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		b, err := c.recvRank(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = b
	}
	return out, nil
}

// Scatter distributes parts[r] from root to rank r and returns the local
// part on every rank. Only root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	tag := c.nextTag("scatter")
	if root < 0 || root >= c.size {
		return nil, errBadRoot("Scatter", root, c.size)
	}
	if c.rank == root {
		if len(parts) != c.size {
			return nil, errPartCount("Scatter", len(parts), c.size)
		}
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.sendRank(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	return c.recvRank(root, tag)
}

// AllGather collects each rank's part on every rank (ring algorithm:
// n-1 steps, each step passing the next block around the ring).
func (c *Comm) AllGather(part []byte) ([][]byte, error) {
	tag := c.nextTag("allgather")
	out := make([][]byte, c.size)
	out[c.rank] = part
	if c.size == 1 {
		return out, nil
	}
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	// In step s we forward the block that originated at rank-s (mod n).
	for s := 0; s < c.size-1; s++ {
		sendOrigin := (c.rank - s + c.size) % c.size
		if err := c.sendRank(right, stepTag(tag, s), out[sendOrigin]); err != nil {
			return nil, err
		}
		b, err := c.recvRank(left, stepTag(tag, s))
		if err != nil {
			return nil, err
		}
		recvOrigin := (c.rank - s - 1 + c.size) % c.size
		out[recvOrigin] = b
	}
	return out, nil
}

// AllToAll delivers parts[r] to rank r from every rank; the returned slice
// holds, per source rank, the block that source addressed to this rank.
func (c *Comm) AllToAll(parts [][]byte) ([][]byte, error) {
	tag := c.nextTag("alltoall")
	if len(parts) != c.size {
		return nil, errPartCount("AllToAll", len(parts), c.size)
	}
	out := make([][]byte, c.size)
	out[c.rank] = parts[c.rank]
	// Linear exchange: send everything, then collect. The dispatcher's
	// unbounded queues make the eager sends deadlock-free.
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		if err := c.sendRank(r, tag, parts[r]); err != nil {
			return nil, err
		}
	}
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		b, err := c.recvRank(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = b
	}
	return out, nil
}

func stepTag(tag string, step int) string {
	// Cheap concatenation; steps are < group size.
	return tag + "/" + itoa(step)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func errPartCount(op string, got, want int) error {
	return errf("collective: %s needs %d parts, got %d", op, want, got)
}
