package collective

// ULFM-style fault tolerance for the collective substrate. A rank dying
// mid-collective must not leave survivors hung or erroring inconsistently:
// the paper's Property 1 (identical collective sequences on every process)
// only survives a failure if every survivor observes the *same* failure at
// the *same* point in its sequence. The machinery here mirrors MPI's
// User-Level Failure Mitigation triplet:
//
//	suspect — per-round receive deadlines turn an unresponsive peer into a
//	          typed RankFailedError and a local suspect-list entry.
//	revoke  — Revoke floods a poison frame so ranks blocked in *other*
//	          rounds or operations unblock promptly with ErrRevoked instead
//	          of draining their own deadline.
//	agree   — AgreeFailures runs a fault-tolerant agreement (it tolerates
//	          failures during the agreement itself) producing an identical
//	          failed-rank set on every survivor.
//	shrink  — Shrink re-ranks the survivors into a fresh Comm whose frames
//	          carry a bumped epoch byte, so stale traffic from the old group
//	          can never match; every operation in the dispatch table works
//	          unchanged on the shrunk group.
//
// Epochs live in the previously reserved low byte of the 8-byte collective
// header (payload[0] in the little-endian encoding), so matchHdr's exact
// 64-bit compare enforces them for free and a receiver can classify any
// frame's epoch without decoding it. Epoch comparison is circular
// (signed-byte delta): frames from an older epoch are dropped, frames from
// a future epoch — survivors that already shrunk and raced ahead — are
// parked for the successor Comm, which inherits them through Shrink.
//
// The failure detector is timeout-based and therefore only accurate under
// partial synchrony: a live rank stalled past the receive deadline is
// indistinguishable from a dead one and may be agreed out of the group (it
// learns of its exclusion via ErrExcluded). The intended recovery sequence —
// Revoke, then AgreeFailures, then Shrink on every survivor — keeps that
// window small, because revocation unblocks every survivor long before its
// own deadline could elect a false suspect.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/obsv/diag"
	"repro/internal/transport"
)

// Control-plane transport tags. They share KindCollective so a control frame
// unblocks any collective receive, but are matched by tag, never by opTags.
const (
	tagRevoke = "ft.revoke"
	tagAgree  = "ft.agree"
)

// Control opIDs sit far outside the data-op range [0, numOps): they appear
// only in the header op byte of control frames and must never index the
// opTags or instrument arrays.
const (
	opRevoke opID = 250
	opAgree  opID = 251
)

// ErrRevoked reports that this communicator was revoked — by a local Revoke
// call, a revocation frame from a peer, or a completed Shrink (the parent
// Comm is poisoned so stray use fails fast instead of corrupting the
// successor group's traffic).
var ErrRevoked = errors.New("collective: communicator revoked")

// ErrExcluded reports that the agreed failed set contains this rank itself:
// the group has (or will have) shrunk without it, typically because it
// stalled past its peers' receive deadlines. The process should stop using
// the communicator and rejoin through the recovery layer.
var ErrExcluded = errors.New("collective: rank excluded by failure agreement")

// RankFailedError reports that a specific peer rank is suspected dead: a
// receive deadline expired waiting for it, or the transport rejected a send
// to it. It unwraps to transport.ErrTimeout so existing errors.Is checks
// keep working. Rank is in the Comm's current (possibly shrunk) numbering.
type RankFailedError struct {
	Program string
	Rank    int    // suspected rank, current group numbering
	Op      string // operation tag in flight ("" when outside an op)
	Seq     uint32 // operation sequence number
	Round   int    // round within the operation
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("collective: rank %d of program %q suspected failed (op %s seq %d round %d)",
		e.Rank, e.Program, e.Op, e.Seq, e.Round)
}

// Unwrap makes errors.Is(err, transport.ErrTimeout) hold: a suspicion is a
// refined timeout, and pre-existing callers treat it as one.
func (e *RankFailedError) Unwrap() error { return transport.ErrTimeout }

// rankSet is a fixed-width bitmap over group ranks.
type rankSet []uint64

func newRankSet(size int) rankSet { return make(rankSet, (size+63)/64) }

func (s rankSet) has(r int) bool {
	w := r >> 6
	return w < len(s) && s[w]>>(uint(r)&63)&1 == 1
}

func (s rankSet) add(r int) { s[r>>6] |= 1 << (uint(r) & 63) }

// or merges o into s and reports whether s grew.
func (s rankSet) or(o rankSet) bool {
	grew := false
	for i, w := range o {
		if i >= len(s) {
			break
		}
		if w&^s[i] != 0 {
			grew = true
			s[i] |= w
		}
	}
	return grew
}

func (s rankSet) equal(o rankSet) bool {
	for i := 0; i < len(s) || i < len(o); i++ {
		var a, b uint64
		if i < len(s) {
			a = s[i]
		}
		if i < len(o) {
			b = o[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

func (s rankSet) count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (s rankSet) clone() rankSet {
	o := make(rankSet, len(s))
	copy(o, s)
	return o
}

// ranks lists the set members ascending.
func (s rankSet) ranks() []int {
	out := make([]int, 0, s.count())
	for i, w := range s {
		for ; w != 0; w &= w - 1 {
			b := 0
			for ; w>>(uint(b))&1 == 0; b++ {
			}
			out = append(out, i*64+b)
		}
	}
	sort.Ints(out)
	return out
}

// hdr stamps this Comm's epoch into the header's low byte, so the exact
// compare in matchHdr rejects frames from any other epoch.
func (c *Comm) hdr(seq uint32, round int, op opID) uint64 {
	return hdr(seq, round, op) | uint64(c.epoch)
}

// epochDelta classifies a frame's epoch against ours: 0 current, >0 future
// (sender already shrunk past us), <0 stale. Deltas are circular signed
// bytes so the uint8 epoch may wrap. Malformed frames read as stale.
func epochDelta(payload []byte, epoch uint8) int {
	if len(payload) < hdrLen {
		return -1
	}
	return int(int8(payload[0] - epoch))
}

// Epoch returns this Comm's group epoch (bumped by every Shrink).
func (c *Comm) Epoch() uint8 { return c.epoch }

// Revoked reports whether this communicator has been revoked.
func (c *Comm) Revoked() bool { return c.revoked }

// Suspects returns the locally suspected ranks (current group numbering).
func (c *Comm) Suspects() []int {
	if c.suspects == nil {
		return nil
	}
	return c.suspects.ranks()
}

// BaseRank translates a current-group rank to its original pre-Shrink
// transport rank (identity on a never-shrunk group). Applications whose
// data placement was keyed by the original numbering use it to keep
// addressing stable across shrinks; out-of-range ranks return -1.
func (c *Comm) BaseRank(r int) int {
	if r < 0 || r >= c.size {
		return -1
	}
	return c.baseRank(r)
}

// baseRank translates a current-group rank to its base transport rank
// (identity before any Shrink; compositions of shrinks stay flat because
// each new peers slice is built through this translation).
func (c *Comm) baseRank(r int) int {
	if c.peers != nil {
		return c.peers[r]
	}
	return r
}

// addr is the transport address of a current-group rank.
func (c *Comm) addr(r int) transport.Addr {
	return transport.Proc(c.program, c.baseRank(r))
}

// suspect adds a rank to the local suspect list (idempotent). A timeout
// suspicion is a *hint*: the peer may merely be blocked behind the real
// failure, so suspicions fast-fail local receives but never seed the
// agreement — only hard evidence (markDead) does.
func (c *Comm) suspect(r int) {
	if c.suspects == nil {
		c.suspects = newRankSet(c.size)
	} else if c.suspects.has(r) {
		return
	}
	c.suspects.add(r)
	c.ins.incFailure(ctrSuspected)
}

// markDead records hard evidence of a rank's death — the transport reported
// its address gone — which both suspects it and seeds the next agreement.
func (c *Comm) markDead(r int) {
	c.suspect(r)
	if c.deadSet == nil {
		c.deadSet = newRankSet(c.size)
	}
	c.deadSet.add(r)
}

// failedErr builds the typed suspicion error for an in-flight operation.
func (c *Comm) failedErr(from int, op opID, h uint64) error {
	return &RankFailedError{
		Program: c.program, Rank: from, Op: opTags[op],
		Seq: uint32(h >> 32), Round: int(uint16(h >> 16)),
	}
}

// recordFT emits a fault-tolerance flight-recorder event (nil-safe).
func (c *Comm) recordFT(kind diag.Kind, a1, a2 int64, note string) {
	if c.flight == nil {
		return
	}
	c.flight.Record(diag.Event{
		Kind: kind, Seq: c.opSeq, Rank: int32(c.rank), A1: a1, A2: a2, Note: note,
	})
}

// SetFlightRecorder attaches only the flight recorder, without enabling
// payload attribution (SetDiag enables both). Fault events — revoke, agree,
// shrink — are then captured even when diagnosis is off.
func (c *Comm) SetFlightRecorder(r *diag.Recorder) {
	c.flight = r
	if r != nil {
		r.SetOpNames(opTags[:])
	}
}

// sendCtl best-effort-delivers a control frame; control floods never fail
// the caller (a dead destination is exactly the expected case), but a
// transport-confirmed dead address is harvested as hard evidence.
func (c *Comm) sendCtl(to int, tag string, payload []byte) {
	err := c.d.Send(transport.Message{
		Kind:    transport.KindCollective,
		Dst:     c.addr(to),
		Tag:     tag,
		Payload: payload,
	})
	if err != nil && errors.Is(err, transport.ErrUnknownAddr) {
		c.markDead(to)
	}
}

// Revoke poisons this communicator and floods a revocation frame to every
// other rank, so survivors blocked in unrelated rounds or operations
// unblock promptly with ErrRevoked instead of draining their own receive
// deadline. Call it after observing a RankFailedError, before
// AgreeFailures; revoking an already-revoked Comm is a cheap no-op.
func (c *Comm) Revoke() {
	if c.revoked {
		return
	}
	c.markRevoked()
	c.recordFT(diag.KindRevoke, int64(c.epoch), 1, "")
	b := make([]byte, hdrLen)
	putHdr(b, c.hdr(0, 0, opRevoke))
	for r := 0; r < c.size; r++ {
		if r != c.rank {
			c.sendCtl(r, tagRevoke, b)
		}
	}
	c.pruneSuspectPending()
}

// markRevoked flips the revoked flag on receipt or initiation of a
// revocation and counts it.
func (c *Comm) markRevoked() {
	if c.revoked {
		return
	}
	c.revoked = true
	c.ins.incFailure(ctrRevokes)
}

// pruneSuspectPending drops parked current-epoch frames sent by suspected
// ranks: nothing will ever consume them (satellite fix for the pending-list
// leak; Shrink prunes the remainder by dropping the old epoch wholesale).
func (c *Comm) pruneSuspectPending() {
	if c.suspects == nil {
		return
	}
	kept := c.pending[:0]
	for _, m := range c.pending {
		if epochDelta(m.Payload, c.epoch) == 0 && c.fromSuspect(m.Src) {
			c.ins.incFailure(ctrStaleDropped)
			continue
		}
		kept = append(kept, m)
	}
	for i := len(kept); i < len(c.pending); i++ {
		c.pending[i] = transport.Message{}
	}
	c.pending = kept
}

// fromSuspect reports whether a frame's source address belongs to a
// suspected rank.
func (c *Comm) fromSuspect(src transport.Addr) bool {
	for r := 0; r < c.size; r++ {
		if c.suspects.has(r) && c.addr(r) == src {
			return true
		}
	}
	return false
}

// park buffers an out-of-order frame, evicting the oldest entry once the
// configured cap is reached so a dead peer's stragglers can never grow the
// list without bound.
func (c *Comm) park(m transport.Message) {
	if lim := c.pendingCap; lim > 0 && len(c.pending) >= lim {
		copy(c.pending, c.pending[1:])
		c.pending[len(c.pending)-1] = m
		c.ins.incFailure(ctrPendingEvict)
		return
	}
	c.pending = append(c.pending, m)
}

// PendingLen returns the parked collective-frame count (for tests and
// status pages).
func (c *Comm) PendingLen() int { return len(c.pending) }

// SetPendingCap bounds the parked-frame list (<= 0 restores the default).
func (c *Comm) SetPendingCap(n int) {
	if n <= 0 {
		n = defaultPendingCap
	}
	c.pendingCap = n
}

// Agreement wire format: after the 8-byte header (seq = per-Comm agreement
// episode counter, round = 0, op byte = opAgree, epoch low byte) the body is
//
//	byte  0      phase (0 sweep, 1 confirm, 2 decided)
//	bytes 1..2   attempt, little-endian uint16
//	bytes 3..4   round within the phase, little-endian uint16
//	byte  5      mask word count
//	bytes 6..    mask words, 8 bytes each, little-endian
const (
	phaseSweep   = 0
	phaseConfirm = 1
	phaseDecided = 2

	agreeBodyOff = hdrLen
	agreeMinLen  = hdrLen + 6
)

// appendAgree encodes one agreement frame.
func appendAgree(dst []byte, h uint64, phase, attempt, round int, mask rankSet) []byte {
	var hb [hdrLen]byte
	putHdr(hb[:], h)
	dst = append(dst, hb[:]...)
	dst = append(dst, byte(phase), byte(attempt), byte(attempt>>8), byte(round), byte(round>>8), byte(len(mask)))
	for _, w := range mask {
		dst = append(dst, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// decodeAgree parses an agreement frame body (header already matched by
// tag/epoch). The returned mask aliases nothing in b.
func decodeAgree(b []byte) (phase, attempt, round int, mask rankSet, err error) {
	if len(b) < agreeMinLen {
		return 0, 0, 0, nil, fmt.Errorf("collective: agree frame %d bytes", len(b))
	}
	body := b[agreeBodyOff:]
	phase = int(body[0])
	if phase > phaseDecided {
		return 0, 0, 0, nil, fmt.Errorf("collective: agree phase %d", phase)
	}
	attempt = int(body[1]) | int(body[2])<<8
	round = int(body[3]) | int(body[4])<<8
	nwords := int(body[5])
	if len(body) < 6+8*nwords {
		return 0, 0, 0, nil, fmt.Errorf("collective: agree frame claims %d mask words, %d bytes remain", nwords, len(body)-6)
	}
	mask = make(rankSet, nwords)
	for i := range mask {
		p := body[6+8*i:]
		mask[i] = uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
	}
	return phase, attempt, round, mask, nil
}

// agreeState tracks one AgreeFailures episode: the flooding round this rank
// is collecting, the highest round each peer has answered, and the adopted
// decision once a DECIDED frame arrives.
type agreeState struct {
	round    int
	ansRound []int
	decided  rankSet
}

func newAgreeState(n int) *agreeState {
	st := &agreeState{ansRound: make([]int, n)}
	for i := range st.ansRound {
		st.ansRound[i] = -1
	}
	return st
}

// absorb merges one decoded agreement frame from group rank src (-1 when the
// source is not a group member). Masks merge monotonically — suspicion is
// permanent within an episode — and any frame for round r also answers every
// earlier round, so ansRound only moves forward.
func (st *agreeState) absorb(mask rankSet, src, phase, round int, peerMask rankSet) {
	mask.or(peerMask)
	if phase == phaseDecided {
		st.decided = peerMask
		return
	}
	if src >= 0 && round > st.ansRound[src] {
		st.ansRound[src] = round
	}
}

// roundComplete reports whether every rank still considered alive has
// answered the current collection round.
func (c *Comm) roundComplete(st *agreeState, mask rankSet) bool {
	for r := 0; r < c.size; r++ {
		if r != c.rank && !mask.has(r) && st.ansRound[r] < st.round {
			return false
		}
	}
	return true
}

// absorbFrame classifies one frame received during agreement.
func (c *Comm) absorbFrame(st *agreeState, seq uint32, mask rankSet, m transport.Message) {
	d := epochDelta(m.Payload, c.epoch)
	switch m.Tag {
	case tagAgree:
		if d != 0 {
			if d > 0 {
				c.park(m) // a successor group's episode; keep for it
			} else {
				c.ins.incFailure(ctrStaleDropped)
			}
			return
		}
		fseq := uint32(binary.LittleEndian.Uint64(m.Payload) >> 32)
		if fseq != seq {
			if fseq > seq {
				c.park(m) // a later episode in this epoch
			} else {
				c.ins.incFailure(ctrStaleDropped)
			}
			return
		}
		phase, _, round, peerMask, err := decodeAgree(m.Payload)
		if err != nil {
			c.ins.incFailure(ctrStaleDropped)
			return
		}
		src, ok := c.groupRankOf(m.Src)
		if !ok {
			src = -1
		}
		st.absorb(mask, src, phase, round, peerMask)
	case tagRevoke:
		// Already recovering: a current-epoch revocation is old news, a
		// future one belongs to the successor group.
		if d > 0 {
			c.park(m)
		}
	default:
		if d >= 0 {
			c.park(m) // interrupted-op traffic (current) or successor traffic (future)
		} else {
			c.ins.incFailure(ctrStaleDropped)
		}
	}
}

// drainParkedAgree absorbs this episode's agreement frames that arrived
// before the episode's collect loop was entered: a peer that detected the
// failure first floods its sweep — or even its DECIDED frame — while this
// rank is still blocked inside the interrupted data operation, ahead of the
// revocation that unblocks it, and the data receive loop parks such frames.
// Without the drain this rank would wait a full deadline for answers it is
// already holding, be agreed out as silent by its peers, and their
// fixpoint decision would exclude a live rank.
func (c *Comm) drainParkedAgree(st *agreeState, seq uint32, mask rankSet) {
	if len(c.pending) == 0 {
		return
	}
	var drained []transport.Message
	kept := c.pending[:0]
	for _, m := range c.pending {
		if m.Tag == tagAgree && epochDelta(m.Payload, c.epoch) == 0 &&
			uint32(binary.LittleEndian.Uint64(m.Payload)>>32) == seq {
			drained = append(drained, m)
			continue
		}
		kept = append(kept, m)
	}
	for i := len(kept); i < len(c.pending); i++ {
		c.pending[i] = transport.Message{}
	}
	c.pending = kept
	// Absorb after compacting: absorbFrame never re-parks frames of the
	// current (epoch, episode), which is exactly what was drained.
	for _, m := range drained {
		c.absorbFrame(st, seq, mask, m)
	}
}

// AgreeFailures runs fault-tolerant agreement on the failed-rank set. Every
// surviving rank of the group must call it once per failure episode (the
// intended sequence is Revoke, AgreeFailures, Shrink on each survivor);
// the returned slice — sorted, in current group numbering — is identical on
// every survivor, including survivors that fail *during* the agreement,
// which are added to the set on the fly. If the agreed set contains this
// rank itself the call returns ErrExcluded.
//
// The agreement decides on *non-participation*: its seed is only hard
// transport evidence (addresses the network reports gone), and any rank
// that fails to answer within the receive deadline during the agreement is
// added. Timeout suspicions from earlier data operations are deliberately
// not seeds — a live rank blocked behind the real failure times out on its
// peers exactly like a dead one, and seeding those hints would agree live
// ranks out of the group. Since Revoke has already unblocked every
// survivor, live ranks answer promptly here and only truly unresponsive
// ones are excluded.
//
// Protocol: all-to-all flooding rounds. In round r every rank sends its
// cumulative suspect mask to every rank not in it and then collects a
// round-≥r mask from each of them, merging monotonically; a peer silent past
// the receive deadline is added to the mask. Every wait is a *direct*
// observation of its peer — there is no relay chain — so a live rank can
// never be suspected merely because it sat behind the real failure, which is
// the false-suspicion cascade that log-topology dissemination suffers when
// all deadlines expire simultaneously. A round that ends with the mask
// unchanged is a witnessed fixpoint: every live peer's round-r mask merged
// into this rank's without growing it, so for any two such ranks the masks
// are mutually contained and therefore equal. The witness floods a DECIDED
// frame that every other rank adopts verbatim, rescuing ranks that kept
// growing past the fixpoint. Masks grow monotonically over at most n ranks,
// so the episode takes at most n+1 rounds, and each round costs one receive
// deadline at worst.
func (c *Comm) AgreeFailures() ([]int, error) {
	seq := c.agreeSeq
	c.agreeSeq++
	mask := newRankSet(c.size)
	if c.deadSet != nil {
		mask.or(c.deadSet)
	}
	if c.size > 1 {
		if err := c.agree(seq, mask); err != nil {
			return nil, err
		}
	}
	// Record the agreed set as suspicions so subsequent receives fail fast,
	// and drop parked frames nobody will consume.
	if c.suspects == nil {
		c.suspects = newRankSet(c.size)
	}
	c.suspects.or(mask)
	c.pruneSuspectPending()
	c.ins.incFailure(ctrAgreed)
	failed := mask.ranks()
	c.recordFT(diag.KindAgree, int64(len(failed)), int64(c.epoch), fmt.Sprint(failed))
	if mask.has(c.rank) {
		return failed, ErrExcluded
	}
	return failed, nil
}

// agree drives one agreement episode, folding the result into mask.
func (c *Comm) agree(seq uint32, mask rankSet) error {
	n := c.size
	st := newAgreeState(n)
	h := c.hdr(seq, 0, opAgree)
	var scratch []byte
	// flood sends (phase, round, mask) to every rank the filter approves;
	// payloads
	// are copied per send because the transport may retain them (agreement is
	// far off the hot path).
	flood := func(phase, round int, to func(r int) bool) {
		scratch = appendAgree(scratch[:0], h, phase, 0, round, mask)
		for r := 0; r < n; r++ {
			if r == c.rank || !to(r) {
				continue
			}
			p := make([]byte, len(scratch))
			copy(p, scratch)
			c.sendCtl(r, tagAgree, p)
		}
	}
	for {
		if c.deadSet != nil {
			// Hard evidence harvested since the last round (failed control
			// sends included) joins the mask before it is published.
			mask.or(c.deadSet)
		}
		start := mask.clone()
		flood(phaseSweep, st.round, func(r int) bool { return !mask.has(r) })
		c.drainParkedAgree(st, seq, mask)
		for st.decided == nil && !c.roundComplete(st, mask) {
			m, err := c.d.RecvDeadline(transport.KindCollective, c.deadline())
			if err != nil {
				if !errors.Is(err, transport.ErrTimeout) {
					return err // dispatcher closed or transport fault
				}
				if c.clk.Since(c.armedAt) < c.timeout {
					continue // stale timer fire; see Comm.deadline
				}
				// Deadline expired with live peers still silent: every one of
				// them is directly suspected.
				for r := 0; r < n; r++ {
					if r != c.rank && !mask.has(r) && st.ansRound[r] < st.round {
						c.suspect(r)
						mask.add(r)
					}
				}
				break
			}
			c.absorbFrame(st, seq, mask, m)
		}
		if st.decided != nil {
			// Adopt the decided set exactly — consistency requires every
			// survivor to return the decider's set, not its own merged view
			// (suspicions the decider never witnessed stay local and feed the
			// next episode instead).
			for i := range mask {
				mask[i] = 0
			}
			mask.or(st.decided)
			return nil
		}
		if mask.equal(start) {
			// Fixpoint witnessed. A rank that finds *itself* in the mask has
			// been excluded by its peers and must not publish a decision —
			// its own view (everyone who ghosted it) is not authoritative —
			// so it just returns and AgreeFailures yields ErrExcluded.
			if !mask.has(c.rank) {
				flood(phaseDecided, 0, func(int) bool { return true })
			}
			return nil
		}
		st.round++
	}
}

// Shrink builds the survivor communicator: failed (the exact set returned
// by AgreeFailures, current group numbering) is removed, survivors are
// re-ranked densely preserving order, and the group epoch is bumped so
// frames from the old group can never match. The parent Comm is poisoned
// (all further operations return ErrRevoked); buffers, dispatch table,
// instruments and diagnosis wiring carry over, as do parked frames already
// belonging to the successor epoch. An empty failed set is legal and
// rebuilds the group in place — useful after a spurious revocation, since
// the epoch bump discards any interrupted operation's traffic.
//
// All survivors must call Shrink with the identical failed set (guaranteed
// when it comes from AgreeFailures); they then derive the same re-ranking
// and the same epoch, so the shrunk groups line up without any extra
// communication.
func (c *Comm) Shrink(failed []int) (*Comm, error) {
	f := newRankSet(c.size)
	for _, r := range failed {
		if r < 0 || r >= c.size {
			return nil, fmt.Errorf("collective: Shrink rank %d outside group of %d", r, c.size)
		}
		f.add(r)
	}
	if f.has(c.rank) {
		return nil, ErrExcluded
	}
	newPeers := make([]int, 0, c.size-f.count())
	newRank := -1
	for r := 0; r < c.size; r++ {
		if f.has(r) {
			continue
		}
		if r == c.rank {
			newRank = len(newPeers)
		}
		newPeers = append(newPeers, c.baseRank(r))
	}
	nc := &Comm{
		d: c.d, program: c.program, rank: newRank, size: len(newPeers),
		timeout: c.timeout, table: c.table,
		epoch: c.epoch + 1, peers: newPeers, pendingCap: c.pendingCap,
		reuse: c.reuse, free: c.free, fscratch: c.fscratch,
		ins: c.ins, allReduceHist: c.allReduceHist,
		hlen: c.hlen, board: c.board, flight: c.flight,
		dclk: c.dclk, minWait: c.minWait,
		timer: c.timer, clk: c.clk, armedAt: c.armedAt,
	}
	// Carry parked frames that already belong to the successor (or a later)
	// epoch; everything at the old epoch dies with the old group. A parked
	// revocation of the successor epoch poisons it immediately (cascading
	// failure observed before the shrink completed).
	for _, m := range c.pending {
		d := epochDelta(m.Payload, nc.epoch)
		if d < 0 {
			c.ins.incFailure(ctrStaleDropped)
			continue
		}
		if m.Tag == tagRevoke && d == 0 {
			nc.markRevoked()
			continue
		}
		nc.park(m)
	}
	// Point-to-point frames are epoch-less; keep everything except traffic
	// from the failed ranks.
	for _, m := range c.pointPending {
		if src, ok := c.groupRankOf(m.Src); ok && f.has(src) {
			continue
		}
		nc.pointPending = append(nc.pointPending, m)
	}
	// Poison the parent so stray use fails instead of stealing the
	// successor's frames off the shared dispatcher.
	c.revoked = true
	c.pending, c.pointPending, c.free, c.fscratch, c.timer = nil, nil, nil, nil, nil
	nc.ins.incFailure(ctrShrinks)
	nc.recordFT(diag.KindShrink, int64(nc.epoch), int64(nc.size), fmt.Sprintf("%d->%d", c.rank, newRank))
	return nc, nil
}

// groupRankOf inverts addr: the current-group rank owning a transport
// address, if any.
func (c *Comm) groupRankOf(src transport.Addr) (int, bool) {
	for r := 0; r < c.size; r++ {
		if c.addr(r) == src {
			return r, true
		}
	}
	return -1, false
}
