package collective

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obsv"
)

// exactVec returns a vector of dyadic rationals whose sums stay exact in
// float64 under any combining order, so sum/max/min must be bit-identical
// across algorithms.
func exactVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Round(rng.Float64()*512-256) / 8
	}
	return v
}

// pow2Vec returns values from {±0.5, ±1, ±2}: their products are powers of
// two, exact under any combining order (sums of dyadics are not enough for
// Prod, whose result mantissa grows with every factor).
func pow2Vec(rng *rand.Rand, n int) []float64 {
	choices := []float64{0.5, 1, 2, -0.5, -1, -2}
	v := make([]float64, n)
	for i := range v {
		v[i] = choices[rng.Intn(len(choices))]
	}
	return v
}

var allOps = []struct {
	name string
	op   Op
}{{"sum", Sum}, {"prod", Prod}, {"max", Max}, {"min", Min}}

// TestAllReduceAlgosBitIdentical pits the ring (Rabenseifner) AllReduce
// against recursive doubling and the sequential oracle across group sizes
// (including non-powers-of-two), vector lengths (0, 1, odd, smaller than the
// group, large) and all operators, with buffer reuse both off and on. The
// ring's per-block fold is a single chain, so with exact-in-float inputs all
// results must be bitwise identical on every rank.
func TestAllReduceAlgosBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 16} {
		for _, vecLen := range []int{0, 1, 3, 5, 64, 257} {
			for _, reuse := range []bool{false, true} {
				n, vecLen, reuse := n, vecLen, reuse
				t.Run(fmt.Sprintf("n=%d/len=%d/reuse=%v", n, vecLen, reuse), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(n*1000 + vecLen)))
					contribs := make([][]float64, n)
					prodContribs := make([][]float64, n)
					for r := range contribs {
						contribs[r] = exactVec(rng, vecLen)
						prodContribs[r] = pow2Vec(rng, vecLen)
					}
					for _, tc := range allOps {
						in := contribs
						if tc.name == "prod" {
							in = prodContribs
						}
						contribs := in
						want := oracleFold(contribs, tc.op)
						runGroup(t, n, func(c *Comm) error {
							c.SetBufferReuse(reuse)
							rd, err := c.AllReduceWith(RecursiveDoubling, contribs[c.Rank()], tc.op)
							if err != nil {
								return err
							}
							ring, err := c.AllReduceWith(Ring, contribs[c.Rank()], tc.op)
							if err != nil {
								return err
							}
							for i := range want {
								if rd[i] != want[i] || ring[i] != want[i] {
									return fmt.Errorf("%s rank %d elem %d: rd=%v ring=%v want %v",
										tc.name, c.Rank(), i, rd[i], ring[i], want[i])
								}
							}
							return nil
						})
					}
				})
			}
		}
	}
}

// TestReduceScatterRingMatchesComposed checks the ring reduce-scatter
// against the Reduce+Scatter reference for divisible lengths.
func TestReduceScatterRingMatchesComposed(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, per := range []int{1, 3, 16} {
			n, per := n, per
			t.Run(fmt.Sprintf("n=%d/per=%d", n, per), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100*n + per)))
				contribs := make([][]float64, n)
				for r := range contribs {
					contribs[r] = exactVec(rng, n*per)
				}
				full := oracleFold(contribs, Sum)
				runGroup(t, n, func(c *Comm) error {
					want := full[c.Rank()*per : (c.Rank()+1)*per]
					ring, err := c.ReduceScatterWith(Ring, contribs[c.Rank()], Sum)
					if err != nil {
						return err
					}
					composed, err := c.ReduceScatterWith(Composed, contribs[c.Rank()], Sum)
					if err != nil {
						return err
					}
					for i := range want {
						if ring[i] != want[i] || composed[i] != want[i] {
							return fmt.Errorf("rank %d elem %d: ring=%v composed=%v want %v",
								c.Rank(), i, ring[i], composed[i], want[i])
						}
					}
					return nil
				})
			})
		}
	}
}

// TestBcastSegmented drives the pipelined broadcast across segment
// geometries (payload exactly divisible, with remainder, smaller than one
// segment, empty) and roots, against the plain binomial result.
func TestBcastSegmented(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16} {
		for _, payloadLen := range []int{0, 1, 63, 64, 65, 1000} {
			n, payloadLen := n, payloadLen
			t.Run(fmt.Sprintf("n=%d/len=%d", n, payloadLen), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n*10000 + payloadLen)))
				want := make([]byte, payloadLen)
				rng.Read(want)
				root := n / 2
				runGroup(t, n, func(c *Comm) error {
					tab := *DefaultTable()
					tab.BcastSegSize = 64
					c.SetTable(&tab)
					var in []byte
					if c.Rank() == root {
						in = want
					}
					out, err := c.BcastWith(BinomialSeg, root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(out, want) {
						return fmt.Errorf("rank %d: got %d bytes, want %d", c.Rank(), len(out), len(want))
					}
					plain, err := c.BcastWith(Binomial, root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(plain, want) {
						return fmt.Errorf("rank %d: binomial got %d bytes", c.Rank(), len(plain))
					}
					return nil
				})
			})
		}
	}
}

// TestGatherScatterTreeMatchesLinear checks the binomial tree gather and
// scatter against the linear reference for random (including empty) parts,
// every root, and non-power-of-two sizes.
func TestGatherScatterTreeMatchesLinear(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 6, 8, 13} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			parts := make([][]byte, n)
			for r := range parts {
				parts[r] = make([]byte, rng.Intn(40))
				rng.Read(parts[r])
			}
			for root := 0; root < n; root += 2 {
				root := root
				runGroup(t, n, func(c *Comm) error {
					tree, err := c.GatherWith(Binomial, root, parts[c.Rank()])
					if err != nil {
						return err
					}
					lin, err := c.GatherWith(Linear, root, parts[c.Rank()])
					if err != nil {
						return err
					}
					if c.Rank() == root {
						for r := 0; r < n; r++ {
							if !bytes.Equal(tree[r], parts[r]) || !bytes.Equal(lin[r], parts[r]) {
								return fmt.Errorf("root %d slot %d mismatch", root, r)
							}
						}
					} else if tree != nil || lin != nil {
						return fmt.Errorf("non-root got non-nil")
					}

					var in [][]byte
					if c.Rank() == root {
						in = parts
					}
					st, err := c.ScatterWith(Binomial, root, in)
					if err != nil {
						return err
					}
					sl, err := c.ScatterWith(Linear, root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(st, parts[c.Rank()]) || !bytes.Equal(sl, parts[c.Rank()]) {
						return fmt.Errorf("rank %d scatter mismatch", c.Rank())
					}
					return nil
				})
			}
		})
	}
}

// TestAllGatherAllToAllAlgos checks ring AllGather and pairwise AllToAll
// against their linear references.
func TestAllGatherAllToAllAlgos(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 * n)))
			parts := make([][][]byte, n) // parts[src][dst]
			own := make([][]byte, n)     // allgather contribution per rank
			for r := range parts {
				parts[r] = make([][]byte, n)
				for d := range parts[r] {
					parts[r][d] = []byte(fmt.Sprintf("%d->%d:%d", r, d, rng.Intn(1000)))
				}
				own[r] = make([]byte, rng.Intn(30))
				rng.Read(own[r])
			}
			runGroup(t, n, func(c *Comm) error {
				ring, err := c.AllGatherWith(Ring, own[c.Rank()])
				if err != nil {
					return err
				}
				lin, err := c.AllGatherWith(Linear, own[c.Rank()])
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if !bytes.Equal(ring[r], own[r]) || !bytes.Equal(lin[r], own[r]) {
						return fmt.Errorf("rank %d allgather slot %d mismatch", c.Rank(), r)
					}
				}
				pw, err := c.AllToAllWith(Pairwise, parts[c.Rank()])
				if err != nil {
					return err
				}
				ll, err := c.AllToAllWith(Linear, parts[c.Rank()])
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if !bytes.Equal(pw[r], parts[r][c.Rank()]) || !bytes.Equal(ll[r], parts[r][c.Rank()]) {
						return fmt.Errorf("rank %d alltoall from %d mismatch", c.Rank(), r)
					}
				}
				return nil
			})
		})
	}
}

// TestNoAliasContracts pins the ownership contract: slices returned by
// collectives never alias the caller's inputs, so mutating an input after
// the call cannot corrupt results.
func TestNoAliasContracts(t *testing.T) {
	const n = 4
	runGroup(t, n, func(c *Comm) error {
		part := []byte{byte(c.Rank()), 1, 2, 3}
		all, err := c.Gather(0, part)
		if err != nil {
			return err
		}
		part[0] = 0xFF // mutate after the call
		if c.Rank() == 0 && all[0][0] != 0 {
			return fmt.Errorf("gather root slot aliases caller part")
		}

		parts := make([][]byte, n)
		for r := range parts {
			parts[r] = []byte{byte(c.Rank()), byte(r)}
		}
		out, err := c.AllToAll(parts)
		if err != nil {
			return err
		}
		parts[c.Rank()][0] = 0xEE
		if out[c.Rank()][0] != byte(c.Rank()) {
			return fmt.Errorf("alltoall self-entry aliases caller part")
		}

		mine := []byte{9, byte(c.Rank())}
		ag, err := c.AllGather(mine)
		if err != nil {
			return err
		}
		mine[0] = 0
		if ag[c.Rank()][0] != 9 {
			return fmt.Errorf("allgather self-entry aliases caller part")
		}

		var sparts [][]byte
		if c.Rank() == 1 {
			sparts = make([][]byte, n)
			for r := range sparts {
				sparts[r] = []byte{byte(r), 7}
			}
		}
		sp, err := c.Scatter(1, sparts)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			sparts[1][0] = 0xCC
		}
		if sp[0] != byte(c.Rank()) {
			return fmt.Errorf("scatter root part aliases caller slice")
		}

		local := []float64{float64(c.Rank()), 1}
		res, err := c.AllReduce(local, Sum)
		if err != nil {
			return err
		}
		local[1] = 99
		if res[1] != n {
			return fmt.Errorf("allreduce result aliases local input")
		}
		return nil
	})
}

// TestDispatchByTable verifies Auto dispatch switches algorithms at the
// table thresholds, observed through the per-op/per-algo instruments.
func TestDispatchByTable(t *testing.T) {
	const n = 4
	reg := obsv.NewRegistry()
	runGroup(t, n, func(c *Comm) error {
		c.SetInstruments(NewInstruments(reg, "G"))
		tab := *DefaultTable()
		tab.AllReduceRingBytes = 8 * 16 // vectors >= 16 floats go ring
		c.SetTable(&tab)
		small := make([]float64, 4)
		big := make([]float64, 64)
		if _, err := c.AllReduce(small, Sum); err != nil {
			return err
		}
		if _, err := c.AllReduce(big, Sum); err != nil {
			return err
		}
		return nil
	})
	rd := reg.Histogram("collective.allreduce.rd.ns", obsv.L("program", "G")).Count()
	ring := reg.Histogram("collective.allreduce.ring.ns", obsv.L("program", "G")).Count()
	if rd != n || ring != n {
		t.Fatalf("instrument counts rd=%d ring=%d, want %d each", rd, ring, n)
	}
}

// TestTune smoke-runs the crossover measurement on a small ladder and
// checks every rank installs the identical table.
func TestTune(t *testing.T) {
	const n = 4
	tables := make([]*Table, n)
	runGroup(t, n, func(c *Comm) error {
		tab, err := c.Tune(TuneConfig{MinBytes: 256, MaxBytes: 2048, Reps: 2})
		if err != nil {
			return err
		}
		tables[c.Rank()] = tab
		// The tuned Comm must still reduce correctly.
		v, err := c.AllReduceScalar(1, Sum)
		if err != nil {
			return err
		}
		if v != n {
			return fmt.Errorf("post-tune allreduce: %v", v)
		}
		return nil
	})
	for r := 1; r < n; r++ {
		if !reflect.DeepEqual(tables[0], tables[r]) {
			t.Fatalf("rank %d table %+v differs from rank 0 %+v", r, tables[r], tables[0])
		}
	}
	if tables[0].AllReduceRingBytes <= 0 {
		t.Fatalf("tuned threshold %d", tables[0].AllReduceRingBytes)
	}
}

// TestTableSaveLoad round-trips the dispatch table through its JSON
// persistence.
func TestTableSaveLoad(t *testing.T) {
	tab := DefaultTable()
	tab.AllReduceRingBytes = 12345
	tab.BcastSegSize = 777
	path := filepath.Join(t.TempDir(), "table.json")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, got) {
		t.Fatalf("round trip: %+v != %+v", got, tab)
	}
	if _, err := LoadTable(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestMixedSequenceForcedAlgos interleaves every operation with forced
// non-default algorithms to shake out header collisions between rounds of
// concurrent in-flight operations.
func TestMixedSequenceForcedAlgos(t *testing.T) {
	const n = 8
	runGroup(t, n, func(c *Comm) error {
		c.SetBufferReuse(true)
		for i := 0; i < 4; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			vec := []float64{float64(c.Rank()), float64(i), 1}
			ring, err := c.AllReduceWith(Ring, vec, Sum)
			if err != nil {
				return err
			}
			if ring[2] != n {
				return fmt.Errorf("iter %d: ring allreduce %v", i, ring)
			}
			out, err := c.BcastWith(BinomialSeg, i%n, bytes.Repeat([]byte{byte(i)}, 100))
			if err != nil {
				return err
			}
			if len(out) != 100 || out[99] != byte(i) {
				return fmt.Errorf("iter %d: bcast %d bytes", i, len(out))
			}
			g, err := c.GatherWith(Binomial, i%n, []byte{byte(c.Rank())})
			if err != nil {
				return err
			}
			if c.Rank() == i%n && len(g) != n {
				return fmt.Errorf("iter %d: gather %d slots", i, len(g))
			}
			rs, err := c.ReduceScatterWith(Ring, make([]float64, n), Sum)
			if err != nil {
				return err
			}
			if len(rs) != 1 {
				return fmt.Errorf("iter %d: reducescatter %d", i, len(rs))
			}
		}
		return nil
	})
}
