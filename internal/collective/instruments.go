package collective

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obsv"
)

// opAlgoPairs enumerates every (operation, algorithm) combination the engine
// can execute, i.e. the full instrument catalog.
var opAlgoPairs = []struct {
	op   opID
	algo Algo
}{
	{opBarrier, Dissemination},
	{opBcast, Binomial},
	{opBcast, BinomialSeg},
	{opReduce, Binomial},
	{opAllReduce, RecursiveDoubling},
	{opAllReduce, Ring},
	{opGather, Linear},
	{opGather, Binomial},
	{opScatter, Linear},
	{opScatter, Binomial},
	{opAllGather, Linear},
	{opAllGather, Ring},
	{opAllToAll, Linear},
	{opAllToAll, Pairwise},
	{opScan, RecursiveDoubling},
	{opReduceScatter, Composed},
	{opReduceScatter, Ring},
}

// Instruments holds the per-operation, per-algorithm latency histograms
// (instrument names "collective.<op>.<algo>.ns", labeled by program). A nil
// *Instruments is a no-op, so uninstrumented Comms pay one nil check.
type Instruments struct {
	hist [numOps][numAlgos]*obsv.Histogram
}

// NewInstruments registers (or looks up) the collective instrument catalog
// for one program in reg. A nil registry yields inert instruments.
func NewInstruments(reg *obsv.Registry, program string) *Instruments {
	ins := &Instruments{}
	for _, p := range opAlgoPairs {
		name := "collective." + opTags[p.op] + "." + p.algo.String() + ".ns"
		ins.hist[p.op][p.algo] = reg.Histogram(name, obsv.L("program", program))
	}
	return ins
}

func (ins *Instruments) observe(op opID, algo Algo, ns int64) {
	if ins == nil {
		return
	}
	ins.hist[op][algo].Observe(ns)
}

// WriteStatus renders one line per (op, algo) pair that has observations —
// count and mean latency — for the /statusz collectives section.
func (ins *Instruments) WriteStatus(w io.Writer) {
	if ins == nil {
		return
	}
	for _, p := range opAlgoPairs {
		h := ins.hist[p.op][p.algo]
		n := h.Count()
		if n == 0 {
			continue
		}
		mean := time.Duration(h.Sum() / int64(n))
		fmt.Fprintf(w, "    %s.%s: n=%d mean=%v\n", opTags[p.op], p.algo, n, mean)
	}
}
