package collective

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obsv"
)

// opAlgoPairs enumerates every (operation, algorithm) combination the engine
// can execute, i.e. the full instrument catalog.
var opAlgoPairs = []struct {
	op   opID
	algo Algo
}{
	{opBarrier, Dissemination},
	{opBcast, Binomial},
	{opBcast, BinomialSeg},
	{opReduce, Binomial},
	{opAllReduce, RecursiveDoubling},
	{opAllReduce, Ring},
	{opGather, Linear},
	{opGather, Binomial},
	{opScatter, Linear},
	{opScatter, Binomial},
	{opAllGather, Linear},
	{opAllGather, Ring},
	{opAllToAll, Linear},
	{opAllToAll, Pairwise},
	{opScan, RecursiveDoubling},
	{opReduceScatter, Composed},
	{opReduceScatter, Ring},
}

// Instruments holds the per-operation, per-algorithm latency histograms
// (instrument names "collective.<op>.<algo>.ns", labeled by program) plus,
// per operation, the straggler-attribution instruments
// "collective.<op>.straggler.{wait_ns,xfer_ns,rank}" diagnosis feeds. A nil
// *Instruments is a no-op, so uninstrumented Comms pay one nil check.
type Instruments struct {
	hist      [numOps][numAlgos]*obsv.Histogram
	stragWait [numOps]*obsv.Histogram
	stragXfer [numOps]*obsv.Histogram
	stragRank [numOps]*obsv.Gauge

	// Fault-tolerance counters ("collective.failures.<name>"): the suspect →
	// agree → revoke → shrink pipeline plus the pending-list hygiene
	// counters (evictions past the cap, stale-epoch frame drops).
	failures [numFailureCtrs]*obsv.Counter
}

// Failure-counter indices (names in failureCtrNames).
const (
	ctrSuspected = iota
	ctrAgreed
	ctrRevokes
	ctrShrinks
	ctrPendingEvict
	ctrStaleDropped

	numFailureCtrs
)

var failureCtrNames = [numFailureCtrs]string{
	"suspected", "agreed", "revokes", "shrinks", "pending_evicted", "stale_dropped",
}

// incFailure bumps one fault-tolerance counter (nil-safe: uninstrumented
// Comms pay a nil check).
func (ins *Instruments) incFailure(ctr int) {
	if ins == nil {
		return
	}
	ins.failures[ctr].Inc()
}

// FailureCount returns one fault-tolerance counter's value.
func (ins *Instruments) FailureCount(ctr int) uint64 {
	if ins == nil {
		return 0
	}
	return ins.failures[ctr].Load()
}

// FailureCounts returns the fault-tolerance counters by name (the
// "collective.failures.<name>" suffixes) for exit summaries and reports.
func (ins *Instruments) FailureCounts() map[string]uint64 {
	m := make(map[string]uint64, numFailureCtrs)
	if ins == nil {
		return m
	}
	for i, name := range failureCtrNames {
		m[name] = ins.failures[i].Load()
	}
	return m
}

// NewInstruments registers (or looks up) the collective instrument catalog
// for one program in reg. A nil registry yields inert instruments.
func NewInstruments(reg *obsv.Registry, program string) *Instruments {
	ins := &Instruments{}
	for _, p := range opAlgoPairs {
		name := "collective." + opTags[p.op] + "." + p.algo.String() + ".ns"
		ins.hist[p.op][p.algo] = reg.Histogram(name, obsv.L("program", program))
	}
	for op := 0; op < numOps; op++ {
		base := "collective." + opTags[op] + ".straggler."
		ins.stragWait[op] = reg.Histogram(base+"wait_ns", obsv.L("program", program))
		ins.stragXfer[op] = reg.Histogram(base+"xfer_ns", obsv.L("program", program))
		ins.stragRank[op] = reg.Gauge(base+"rank", obsv.L("program", program))
		ins.stragRank[op].Set(-1)
	}
	for i, name := range failureCtrNames {
		ins.failures[i] = reg.Counter("collective.failures."+name, obsv.L("program", program))
	}
	return ins
}

func (ins *Instruments) observe(op opID, algo Algo, ns int64) {
	if ins == nil {
		return
	}
	ins.hist[op][algo].Observe(ns)
}

// observeStraggler records one finished operation's attribution: the
// observing rank's wait/transfer split and, when somebody was blamed, the
// latest straggler rank.
func (ins *Instruments) observeStraggler(op opID, blamed int, waitNS, xferNS int64) {
	if ins == nil {
		return
	}
	ins.stragWait[op].Observe(waitNS)
	ins.stragXfer[op].Observe(xferNS)
	if blamed >= 0 {
		ins.stragRank[op].Set(int64(blamed))
	}
}

// quantiles renders a histogram's p50/p95/p99 for status lines.
func quantiles(h *obsv.Histogram) string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v",
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.95)),
		time.Duration(h.Quantile(0.99)))
}

// WriteStatus renders one line per (op, algo) pair that has observations —
// count, mean and p50/p95/p99 latency — for the /statusz collectives
// section, followed by straggler wait quantiles for diagnosed operations.
func (ins *Instruments) WriteStatus(w io.Writer) {
	if ins == nil {
		return
	}
	for _, p := range opAlgoPairs {
		h := ins.hist[p.op][p.algo]
		n := h.Count()
		if n == 0 {
			continue
		}
		mean := time.Duration(h.Sum() / int64(n))
		fmt.Fprintf(w, "    %s.%s: n=%d mean=%v %s\n", opTags[p.op], p.algo, n, mean, quantiles(h))
	}
	for op := 0; op < numOps; op++ {
		h := ins.stragWait[op]
		n := h.Count()
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "    %s.straggler: n=%d rank=%d wait %s\n",
			opTags[op], n, ins.stragRank[op].Load(), quantiles(h))
	}
	line := ""
	for i, name := range failureCtrNames {
		if v := ins.failures[i].Load(); v != 0 {
			line += fmt.Sprintf(" %s=%d", name, v)
		}
	}
	if line != "" {
		fmt.Fprintf(w, "    failures:%s\n", line)
	}
}
