package dst

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Rank-failure scenario: a group of raw collective.Comm ranks runs healthy
// rounds under the virtual clock, then one rank dies mid-collective (its
// endpoint closes, so in-flight deliveries vanish and new sends bounce). The
// survivors must all fail with a typed fault — never hang — then revoke,
// agree on the identical failed set, shrink, re-run the interrupted round on
// the survivor group and keep computing through an op mix. The outcome digest
// is a pure function of the inputs, so it must be identical across seeds and
// equal to the composed fault-free reference: a full-group run of the healthy
// prefix plus a survivor-subset run of the remainder
// (RunRankFailureReference).

// RankFailureConfig sizes one rank-failure run.
type RankFailureConfig struct {
	Seed          int64
	Ranks         int // default 5
	DeadRank      int // rank that crashes (default 2)
	PreRounds     int // healthy full-group rounds before the crash (default 2)
	PostRounds    int // rounds on the shrunk group, incl. the re-run (default 3)
	VecLen        int // AllReduce floats per rank (default 64)
	DelayPermille int // delivery-delay chaos; drops stay off (death ≠ loss)
}

func (c *RankFailureConfig) defaults() {
	if c.Ranks <= 0 {
		c.Ranks = 5
	}
	if c.DeadRank <= 0 || c.DeadRank >= c.Ranks {
		c.DeadRank = 2 % c.Ranks
	}
	if c.PreRounds <= 0 {
		c.PreRounds = 2
	}
	if c.PostRounds <= 0 {
		c.PostRounds = 3
	}
	if c.VecLen <= 0 {
		c.VecLen = 64
	}
}

// RankFailureResult summarizes one run.
type RankFailureResult struct {
	Seed   int64
	Digest uint64
	Ops    int   // recorded outcomes folded into the digest
	Agreed []int // the failed set every survivor agreed on
	// Traffic counters (schedule-dependent; informational).
	Delivered, Dropped, Delayed, Vanished uint64
}

// ftRound runs one post-recovery round of the op mix on comm c and records
// its outcomes under the pre-failure base rank ids, which are stable across
// the shrink re-numbering. baseOf maps the comm's dense ranks to base ranks.
func ftRound(c *collective.Comm, k, vecLen int, baseOf []int, out *outcomes) error {
	base := baseOf[c.Rank()]

	in := chaosVec(base, k, vecLen)
	sum, err := c.AllReduceWith(collective.Ring, in, collective.Sum)
	if err != nil {
		return fmt.Errorf("round %d allreduce: %w", k, err)
	}
	out.record(base, 10*k+0, 0, hashBytes(wire.AppendFloat64s(nil, sum)))

	root := k % c.Size()
	var payload []byte
	if c.Rank() == root {
		payload = make([]byte, 256)
		for i := range payload {
			payload[i] = byte(i*31 + k*7)
		}
	}
	got, err := c.BcastWith(collective.Binomial, root, payload)
	if err != nil {
		return fmt.Errorf("round %d bcast: %w", k, err)
	}
	out.record(base, 10*k+1, 0, hashBytes(got))

	part := wire.AppendFloat64s(nil, chaosVec(base, k+1000, 7))
	parts, err := c.GatherWith(collective.Binomial, root, part)
	if err != nil {
		return fmt.Errorf("round %d gather: %w", k, err)
	}
	if c.Rank() == root {
		out.record(base, 10*k+2, 0, hashBytes(bytes.Join(parts, []byte{0xff})))
	}

	if err := c.Barrier(); err != nil {
		return fmt.Errorf("round %d barrier: %w", k, err)
	}
	return nil
}

// identityRanks is the base-rank map of an unshrunk comm.
func identityRanks(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// RunRankFailure executes one seeded rank-failure run and returns its outcome
// digest and the agreed failed set.
func RunRankFailure(cfg RankFailureConfig) (*RankFailureResult, error) {
	cfg.defaults()
	w := NewWorld(Config{
		Seed:           cfg.Seed,
		DelayPermille:  cfg.DelayPermille,
		MaxDelayQuanta: 8,
		Quantum:        time.Millisecond,
	})
	defer w.Close()
	out := newOutcomes()
	agreed := make([][]int, cfg.Ranks)

	err := w.Run(func() error {
		net := w.View()
		defer net.Close()

		comms := make([]*collective.Comm, cfg.Ranks)
		disps := make([]*transport.Dispatcher, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			ep, err := net.Register(transport.Proc("F", r))
			if err != nil {
				return err
			}
			disps[r] = transport.NewDispatcherClock(ep, w.Clock())
			c, err := collective.New(disps[r], "F", r, cfg.Ranks)
			if err != nil {
				return err
			}
			// Virtual seconds: long enough that delay chaos (≤8ms) can never
			// fake a death, short enough that real detection is instant wall
			// time under the driver.
			c.SetTimeout(2 * time.Second)
			comms[r] = c
		}

		errs := make(chan error, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			go func(r int) {
				errs <- func() error {
					c := comms[r]

					// Healthy prefix: full-group AllReduce rounds.
					for k := 0; k < cfg.PreRounds; k++ {
						in := chaosVec(r, k, cfg.VecLen)
						sum, err := c.AllReduceWith(collective.Ring, in, collective.Sum)
						if err != nil {
							return fmt.Errorf("pre round %d: %w", k, err)
						}
						out.record(r, 10*k+0, 0, hashBytes(wire.AppendFloat64s(nil, sum)))
					}

					if r == cfg.DeadRank {
						// Crash: the endpoint disappears mid-round from the
						// survivors' point of view.
						return disps[r].Close()
					}

					// The interrupted round: must fail typed, never hang.
					kill := cfg.PreRounds
					_, err := c.AllReduceWith(collective.Ring, chaosVec(r, kill, cfg.VecLen), collective.Sum)
					if err == nil {
						return fmt.Errorf("round %d allreduce succeeded with rank %d dead", kill, cfg.DeadRank)
					}
					var rf *collective.RankFailedError
					if !errors.As(err, &rf) && !errors.Is(err, collective.ErrRevoked) {
						return fmt.Errorf("round %d: untyped failure %w", kill, err)
					}

					// Recover: revoke, agree, shrink.
					c.Revoke()
					failed, err := c.AgreeFailures()
					if err != nil {
						return fmt.Errorf("agree: %w", err)
					}
					agreed[r] = failed
					nc, err := c.Shrink(failed)
					if err != nil {
						return fmt.Errorf("shrink: %w", err)
					}

					// Survivor base ranks in dense shrunk order.
					baseOf := make([]int, nc.Size())
					for nr := range baseOf {
						baseOf[nr] = nc.BaseRank(nr)
					}

					// Re-run the interrupted round, then the rest of the mix.
					for k := kill; k < kill+cfg.PostRounds; k++ {
						if err := ftRound(nc, k, cfg.VecLen, baseOf, out); err != nil {
							return err
						}
					}
					return nil
				}()
			}(r)
		}
		for r := 0; r < cfg.Ranks; r++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dst: rank failure seed %d: %w", cfg.Seed, err)
	}

	// Property 1 for failures: every survivor agreed on the identical set.
	var ref []int
	for r := 0; r < cfg.Ranks; r++ {
		if r == cfg.DeadRank {
			continue
		}
		if ref == nil {
			ref = agreed[r]
		}
		if fmt.Sprint(agreed[r]) != fmt.Sprint(ref) {
			return nil, fmt.Errorf("dst: rank failure seed %d: rank %d agreed %v, others %v",
				cfg.Seed, r, agreed[r], ref)
		}
	}
	return &RankFailureResult{
		Seed:      cfg.Seed,
		Digest:    out.digest(),
		Ops:       out.total(),
		Agreed:    ref,
		Delivered: w.delivered.Load(),
		Dropped:   w.dropped.Load(),
		Delayed:   w.delayed.Load(),
		Vanished:  w.vanished.Load(),
	}, nil
}

// RunRankFailureReference computes the fault-free composed digest a
// RunRankFailure run must reproduce: a full-group run of the healthy prefix
// rounds plus a survivor-subset run (the dead rank never created) of the
// re-run and post-recovery rounds, all on a calm network. Both pieces fold
// into one outcome set under base-rank ids, exactly as the failure run
// records them.
func RunRankFailureReference(cfg RankFailureConfig) (*RankFailureResult, error) {
	cfg.defaults()
	out := newOutcomes()

	// Piece 1: full group, healthy prefix (AllReduce rounds only).
	if err := runCalmGroup(cfg.Seed, identityRanks(cfg.Ranks), func(c *collective.Comm, baseOf []int) error {
		base := baseOf[c.Rank()]
		for k := 0; k < cfg.PreRounds; k++ {
			in := chaosVec(base, k, cfg.VecLen)
			sum, err := c.AllReduceWith(collective.Ring, in, collective.Sum)
			if err != nil {
				return fmt.Errorf("pre round %d: %w", k, err)
			}
			out.record(base, 10*k+0, 0, hashBytes(wire.AppendFloat64s(nil, sum)))
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dst: rank failure reference (prefix): %w", err)
	}

	// Piece 2: survivor subset, re-run + post-recovery op mix.
	survivors := make([]int, 0, cfg.Ranks-1)
	for r := 0; r < cfg.Ranks; r++ {
		if r != cfg.DeadRank {
			survivors = append(survivors, r)
		}
	}
	if err := runCalmGroup(cfg.Seed, survivors, func(c *collective.Comm, baseOf []int) error {
		for k := cfg.PreRounds; k < cfg.PreRounds+cfg.PostRounds; k++ {
			if err := ftRound(c, k, cfg.VecLen, baseOf, out); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dst: rank failure reference (survivors): %w", err)
	}

	return &RankFailureResult{Seed: cfg.Seed, Digest: out.digest(), Ops: out.total()}, nil
}

// runCalmGroup runs body on every rank of a fault-free virtual-clock group
// whose dense ranks map to the given base ranks.
func runCalmGroup(seed int64, baseOf []int, body func(c *collective.Comm, baseOf []int) error) error {
	w := NewWorld(Config{Seed: seed})
	defer w.Close()
	return w.Run(func() error {
		net := w.View()
		defer net.Close()
		n := len(baseOf)
		comms := make([]*collective.Comm, n)
		for r := 0; r < n; r++ {
			ep, err := net.Register(transport.Proc("R", r))
			if err != nil {
				return err
			}
			c, err := collective.New(transport.NewDispatcherClock(ep, w.Clock()), "R", r, n)
			if err != nil {
				return err
			}
			c.SetTimeout(2 * time.Second)
			comms[r] = c
		}
		errs := make(chan error, n)
		for r := 0; r < n; r++ {
			go func(c *collective.Comm) { errs <- body(c, baseOf) }(comms[r])
		}
		for r := 0; r < n; r++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
}
