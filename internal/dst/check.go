package dst

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/match"
	"repro/internal/obsv/diag"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Checker is the per-message invariant monitor. It wraps the outermost
// transport layer of every framework in a scenario (above the reliable
// layer), so each message is checked the moment it crosses the boundary:
//
//   - Receive side, per directed (peer address -> local endpoint) stream:
//     exactly-once in-order delivery. Above ReliableNetwork every sequenced
//     message must carry either the successor of the last delivered sequence
//     number or the opening counter of a higher session epoch (a restarted
//     incarnation's fresh stream). A duplicate, a gap, or an old-epoch
//     straggler here is a reliable-layer bug.
//
//   - Send side, per (process, connection) response stream: matcher
//     monotonicity as the protocol exposes it. PENDING responses carry
//     strictly increasing request IDs, decisive responses carry strictly
//     increasing request IDs, no request is decided twice, and no PENDING
//     follows its request's decision — once the matcher has committed an
//     answer, nothing may un-commit it.
//
// One Checker is shared by every framework of a scenario so cross-
// incarnation streams (a restarted process re-answering) stay under watch.
// The first violation is latched and reported by Err.
type Checker struct {
	mu sync.Mutex
	// seen is the highest delivered sequence per "src->dst" stream.
	seen map[string]uint64
	// lastPending / lastDecided track the response-order invariant per
	// "src|conn" stream.
	lastPending map[string]int
	lastDecided map[string]int
	firstErr    error

	// flightDir/flightRecs: when SetFlight armed them, the first violation
	// records a KindViolation event in every recorder and dumps them all —
	// the deterministic world's last protocol events around the bug.
	flightDir  string
	flightRecs []*diag.Recorder
	flightOut  []string
}

// NewChecker returns an empty invariant monitor.
func NewChecker() *Checker {
	return &Checker{
		seen:        make(map[string]uint64),
		lastPending: make(map[string]int),
		lastDecided: make(map[string]int),
	}
}

// Err returns the first invariant violation observed, or nil.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

func (c *Checker) fail(format string, args ...any) {
	if c.firstErr == nil {
		c.firstErr = fmt.Errorf("dst: invariant violation: "+format, args...)
		if len(c.flightRecs) > 0 {
			for _, r := range c.flightRecs {
				r.Record(diag.Event{Kind: diag.KindViolation, Rank: -1, Note: c.firstErr.Error()})
			}
			c.flightOut, _ = diag.DumpAll(c.flightDir, c.firstErr.Error(), c.flightRecs...)
		}
	}
}

// SetFlight arms crash-safe flight dumps: when the first invariant violation
// is latched, every recorder gets a KindViolation event and all are dumped
// to dir ("" = the OS temp directory). FlightDumps returns the files.
func (c *Checker) SetFlight(dir string, recs ...*diag.Recorder) {
	c.mu.Lock()
	c.flightDir, c.flightRecs = dir, recs
	c.mu.Unlock()
}

// FlightDumps returns the dump files written when a violation was latched.
func (c *Checker) FlightDumps() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.flightOut...)
}

// Wrap layers the checker over a framework's outermost network.
func (c *Checker) Wrap(inner transport.Network) transport.Network {
	return &checkNetwork{inner: inner, chk: c}
}

// respRecord is the decoded mirror of the core-internal response message
// (gob matches fields by name), enough to observe the matcher's decisions.
type respRecord struct {
	Conn   string
	ReqID  int
	Rank   int
	Result match.Result
}

// observeSend records a KindResponse leaving src.
func (c *Checker) observeSend(src transport.Addr, m transport.Message) {
	var rm respRecord
	if err := wire.Unmarshal(m.Payload, &rm); err != nil {
		return // not a process response; skip
	}
	key := src.String() + "|" + rm.Conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.firstErr != nil {
		return
	}
	if rm.Result == match.Pending {
		if last, ok := c.lastPending[key]; ok && rm.ReqID <= last {
			c.fail("response order on %s: PENDING for req %d after PENDING for req %d", key, rm.ReqID, last)
			return
		}
		if decided, ok := c.lastDecided[key]; ok && rm.ReqID <= decided {
			c.fail("response order on %s: PENDING for req %d after req %d was decided", key, rm.ReqID, decided)
			return
		}
		c.lastPending[key] = rm.ReqID
		return
	}
	if decided, ok := c.lastDecided[key]; ok && rm.ReqID <= decided {
		if rm.ReqID == decided {
			c.fail("response order on %s: req %d decided twice", key, rm.ReqID)
		} else {
			c.fail("response order on %s: req %d decided after req %d", key, rm.ReqID, decided)
		}
		return
	}
	c.lastDecided[key] = rm.ReqID
}

// observeRecv checks the exactly-once in-order contract for one delivered
// message. Unsequenced messages (traffic injected outside the reliable
// layer) are exempt.
func (c *Checker) observeRecv(dst transport.Addr, m transport.Message) {
	if m.Seq == 0 || m.Kind == transport.KindAck {
		return
	}
	key := m.Src.String() + "->" + dst.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.firstErr != nil {
		return
	}
	last := c.seen[key]
	switch {
	case m.Seq == last+1:
		// In-order successor (covers the very first message of epoch 0).
	case m.Seq>>32 > last>>32 && m.Seq&0xffffffff == 1:
		// Opening counter of a higher session epoch: a restarted peer.
	default:
		c.fail("delivery order on %s: seq %d (epoch %d ctr %d) after seq %d (epoch %d ctr %d)",
			key, m.Seq, m.Seq>>32, m.Seq&0xffffffff, last, last>>32, last&0xffffffff)
		return
	}
	c.seen[key] = m.Seq
}

// checkNetwork wires the Checker into a transport stack.
type checkNetwork struct {
	inner transport.Network
	chk   *Checker
}

func (n *checkNetwork) Register(a transport.Addr) (transport.Endpoint, error) {
	ep, err := n.inner.Register(a)
	if err != nil {
		return nil, err
	}
	return &checkEndpoint{Endpoint: ep, chk: n.chk}, nil
}

func (n *checkNetwork) Close() error { return n.inner.Close() }

// Unwrap lets core's recovery layer walk down to the ReliableNetwork when a
// peer rejoins (resetPeerSessions).
func (n *checkNetwork) Unwrap() transport.Network { return n.inner }

type checkEndpoint struct {
	transport.Endpoint
	chk *Checker
}

func (e *checkEndpoint) Send(m transport.Message) error {
	if m.Kind == transport.KindResponse {
		e.chk.observeSend(e.Addr(), m)
	}
	return e.Endpoint.Send(m)
}

func (e *checkEndpoint) Recv() (transport.Message, error) {
	m, err := e.Endpoint.Recv()
	if err == nil {
		e.chk.observeRecv(e.Addr(), m)
	}
	return m, err
}

func (e *checkEndpoint) RecvTimeout(d time.Duration) (transport.Message, error) {
	m, err := e.Endpoint.RecvTimeout(d)
	if err == nil {
		e.chk.observeRecv(e.Addr(), m)
	}
	return m, err
}
