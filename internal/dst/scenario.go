package dst

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/recover"
	"repro/internal/transport"
)

// The scenarios replay the repository's three protocol workloads inside a
// World: a Figure-4-style coupled run over a delaying network, the same run
// under message loss (the reliable layer's burden), and a kill-and-restart
// run exercising checkpoint recovery. Each asserts the full invariant set:
// Property-1 conformance (the framework's own violation detection), exact
// deterministic match results against the analytic ground truth,
// byte-identical delivered data, exactly-once in-order delivery and matcher
// monotonicity (Checker), buffer-pool ownership (CheckedPools), and
// exactly-once transfer accounting.

// Result summarizes one scenario run.
type Result struct {
	Seed int64
	// Digest fingerprints the run's protocol outcomes — every (rank, step)
	// match timestamp and delivered-block hash, folded in deterministic
	// order. For a fixed seed it must be identical on every run: this is the
	// paper's collective-semantics determinism, checked end to end.
	Digest uint64
	// Matched counts delivered import matches across all ranks.
	Matched int
	// Traffic counters (schedule-dependent; informational).
	Delivered, Dropped, Delayed, Vanished uint64
}

// simCell is the ground-truth value of global cell (r,c) at timestamp ts.
func simCell(ts float64, r, c int) float64 { return ts*1e6 + float64(r*1000+c) }

// hashBlock fingerprints one delivered block (FNV-1a over raw float bits:
// equal hashes mean byte-identical data).
func hashBlock(d []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range d {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// outcome is one delivered import: which export it matched and what bytes
// arrived.
type outcome struct {
	MatchTS float64
	Hash    uint64
}

// outcomes accumulates per-(rank, step) deliveries; a re-executed step after
// a restart records a second copy.
type outcomes struct {
	mu   sync.Mutex
	recs map[string][]outcome
}

func newOutcomes() *outcomes { return &outcomes{recs: make(map[string][]outcome)} }

func (o *outcomes) record(rank, step int, ts float64, h uint64) {
	key := fmt.Sprintf("%d/%d", rank, step)
	o.mu.Lock()
	o.recs[key] = append(o.recs[key], outcome{MatchTS: ts, Hash: h})
	o.mu.Unlock()
}

// digest folds every outcome in sorted key order into one fingerprint.
func (o *outcomes) digest() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]string, 0, len(o.recs))
	for k := range o.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	var b [8]byte
	for _, k := range keys {
		io.WriteString(h, k)
		h.Write([]byte{0})
		for _, oc := range o.recs[k] {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(oc.MatchTS))
			h.Write(b[:])
			binary.LittleEndian.PutUint64(b[:], oc.Hash)
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// total counts recorded deliveries.
func (o *outcomes) total() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, recs := range o.recs {
		n += len(recs)
	}
	return n
}

// fuCoupling is the canonical F (exporter) -> U (importer) coupling.
func fuCoupling(expProcs, impProcs int, tol float64) *config.Config {
	return &config.Config{
		Programs: []config.Program{
			{Name: "F", Cluster: "local", Binary: "builtin", Procs: expProcs},
			{Name: "U", Cluster: "local", Binary: "builtin", Procs: impProcs},
		},
		Connections: []config.Connection{{
			Export:    config.Endpoint{Program: "F", Region: "f"},
			Import:    config.Endpoint{Program: "U", Region: "f"},
			Policy:    match.REGL,
			Tolerance: tol,
		}},
	}
}

// coupledCfg sizes the Figure-4-style scenarios.
type coupledCfg struct {
	gridN      int
	expProcs   int
	impProcs   int
	exports    int
	matchEvery int
	tolerance  float64
	heartbeat  time.Duration
	resend     time.Duration
	timeout    time.Duration
}

func defaultCoupled() coupledCfg {
	return coupledCfg{
		gridN:      8,
		expProcs:   2,
		impProcs:   2,
		exports:    24,
		matchEvery: 4,
		tolerance:  2.5,
		heartbeat:  200 * time.Millisecond,
		resend:     5 * time.Millisecond,
		timeout:    60 * time.Second,
	}
}

// runCoupled drives one single-framework (core.New) coupled run inside w:
// F exports at timestamps k+0.6 and U imports at j*matchEvery, so REGL with
// tolerance >= 1 deterministically matches export j*matchEvery-0.4 — any
// other answer, on any seed, is a protocol bug.
func runCoupled(w *World, cfg coupledCfg) (*Result, error) {
	out := newOutcomes()
	chk := NewChecker()
	err := w.Run(func() error {
		view := w.View()
		rel := transport.NewReliableNetwork(view, transport.ReliableConfig{
			ResendInterval: cfg.resend,
			Clock:          w.Clock(),
		})
		net := chk.Wrap(rel)
		fw, err := core.New(fuCoupling(cfg.expProcs, cfg.impProcs, cfg.tolerance), core.Options{
			Network:      net,
			BuddyHelp:    true,
			Timeout:      cfg.timeout,
			Heartbeat:    cfg.heartbeat,
			Clock:        w.Clock(),
			CheckedPools: true,
		})
		if err != nil {
			net.Close()
			return err
		}
		defer fw.Close()

		expLayout, err := decomp.NewRowBlock(cfg.gridN, cfg.gridN, cfg.expProcs)
		if err != nil {
			return err
		}
		impLayout, err := decomp.NewColBlock(cfg.gridN, cfg.gridN, cfg.impProcs)
		if err != nil {
			return err
		}
		progF, progU := fw.MustProgram("F"), fw.MustProgram("U")
		if err := progF.DefineRegion("f", expLayout); err != nil {
			return err
		}
		if err := progU.DefineRegion("f", impLayout); err != nil {
			return err
		}
		if err := fw.Start(); err != nil {
			return err
		}

		requests := cfg.exports / cfg.matchEvery
		total := cfg.expProcs + cfg.impProcs
		errs := make(chan error, total)
		for r := 0; r < cfg.expProcs; r++ {
			go func(r int) {
				p := progF.Process(r)
				block, err := p.Block("f")
				if err != nil {
					errs <- err
					return
				}
				g := decomp.NewGrid(block)
				for k := 1; k <= cfg.exports; k++ {
					ts := float64(k) + 0.6
					g.Fill(func(r, c int) float64 { return simCell(ts, r, c) })
					if err := p.Export("f", ts, g.Data); err != nil {
						errs <- err
						return
					}
				}
				errs <- p.FinishRegion("f")
			}(r)
		}
		for r := 0; r < cfg.impProcs; r++ {
			go func(r int) {
				p := progU.Process(r)
				block, err := p.Block("f")
				if err != nil {
					errs <- err
					return
				}
				dst := make([]float64, block.Area())
				for j := 1; j <= requests; j++ {
					reqTS := float64(j * cfg.matchEvery)
					res, err := p.Import("f", reqTS, dst)
					if err != nil {
						errs <- err
						return
					}
					wantTS := float64(j*cfg.matchEvery-1) + 0.6
					if !res.Matched || res.MatchTS != wantTS {
						errs <- fmt.Errorf("dst: import @%g resolved %+v, want match @%g", reqTS, res, wantTS)
						return
					}
					g := decomp.Grid{Block: block, Data: dst}
					for rr := block.R0; rr < block.R1; rr++ {
						for cc := block.C0; cc < block.C1; cc++ {
							if got, want := g.At(rr, cc), simCell(wantTS, rr, cc); got != want {
								errs <- fmt.Errorf("dst: data corrupt at (%d,%d)@%g: got %v, want %v",
									rr, cc, wantTS, got, want)
								return
							}
						}
					}
					out.record(r, j, res.MatchTS, hashBlock(dst))
				}
				errs <- nil
			}(r)
		}
		for i := 0; i < total; i++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		if err := fw.Err(); err != nil {
			return err
		}
		if v := fw.PoolViolations(); len(v) > 0 {
			return fmt.Errorf("dst: buffer pool violations: %v", v)
		}
		// Exactly-once transfer accounting: FinishRegion drained every
		// pipeline, so TransferDones must equal Sends on each connection.
		for r := 0; r < cfg.expProcs; r++ {
			stats, err := progF.Process(r).ExportStats("f")
			if err != nil {
				return err
			}
			for conn, st := range stats {
				if st.TransferDones != st.Sends {
					return fmt.Errorf("dst: exporter rank %d conn %s: %d TransferDones for %d sends",
						r, conn, st.TransferDones, st.Sends)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := chk.Err(); err != nil {
		return nil, err
	}
	want := cfg.impProcs * (cfg.exports / cfg.matchEvery)
	if got := out.total(); got != want {
		return nil, fmt.Errorf("dst: %d deliveries recorded, want %d", got, want)
	}
	return &Result{
		Seed:      w.cfg.Seed,
		Digest:    out.digest(),
		Matched:   out.total(),
		Delivered: w.delivered.Load(),
		Dropped:   w.dropped.Load(),
		Delayed:   w.delayed.Load(),
		Vanished:  w.vanished.Load(),
	}, nil
}

// RunFigure4 is the delay-only scenario: no message is lost, but a third of
// them arrive late and out of order, exploring a different interleaving of
// the matcher/buddy-help protocol per seed.
func RunFigure4(seed int64) (*Result, error) {
	w := NewWorld(Config{
		Seed:           seed,
		DelayPermille:  350,
		MaxDelayQuanta: 4,
		Quantum:        time.Millisecond,
	})
	defer w.Close()
	return runCoupled(w, defaultCoupled())
}

// RunChaos adds message loss below the reliable layer: drops must cost
// retransmission latency, never correctness.
func RunChaos(seed int64) (*Result, error) {
	w := NewWorld(Config{
		Seed:           seed,
		DropPermille:   150,
		DelayPermille:  250,
		MaxDelayQuanta: 3,
		Quantum:        time.Millisecond,
	})
	defer w.Close()
	return runCoupled(w, defaultCoupled())
}

// killRestartCfg sizes the crash-recovery scenario.
type killRestartCfg struct {
	gridN      int
	expProcs   int
	impProcs   int
	steps      int
	ckptEvery  int
	crashAfter int
	tolerance  float64
	heartbeat  time.Duration
	resend     time.Duration
	timeout    time.Duration
}

func defaultKillRestart() killRestartCfg {
	return killRestartCfg{
		gridN:      8,
		expProcs:   2,
		impProcs:   2,
		steps:      12,
		ckptEvery:  4,
		crashAfter: 10, // checkpoint at 8 -> steps 9..10 re-executed
		tolerance:  0.5,
		heartbeat:  200 * time.Millisecond,
		resend:     5 * time.Millisecond,
		timeout:    60 * time.Second,
	}
}

// killRestartPass runs the workload once inside its own World: exporter F
// and importer U join as separate frameworks (separate Views) over the
// shared substrate, checkpointing on the collective schedule; when crash is
// set, U's framework is torn down after crashAfter steps and a fresh
// incarnation restores, rejoins under the next session epoch, and finishes.
func killRestartPass(seed int64, cfg killRestartCfg, crash bool) (*outcomes, *Result, error) {
	w := NewWorld(Config{
		Seed:           seed,
		DropPermille:   100,
		DelayPermille:  250,
		MaxDelayQuanta: 3,
		Quantum:        time.Millisecond,
	})
	defer w.Close()

	coupling := fuCoupling(cfg.expProcs, cfg.impProcs, cfg.tolerance)
	out := newOutcomes()
	chk := NewChecker()
	store := recover.NewMemStore()

	joinSim := func(program string, layout decomp.Layout, rec *core.RecoveryOptions,
		epoch uint64, app func(*core.Program) error) error {
		view := w.View()
		rel := transport.NewReliableNetwork(view, transport.ReliableConfig{
			SessionEpoch:   uint32(epoch),
			ResendInterval: cfg.resend,
			Clock:          w.Clock(),
		})
		net := chk.Wrap(rel)
		fw, err := core.Join(coupling, program, core.Options{
			Network:      net,
			BuddyHelp:    true,
			Timeout:      cfg.timeout,
			Heartbeat:    cfg.heartbeat,
			Recovery:     rec,
			Clock:        w.Clock(),
			CheckedPools: true,
		})
		if err != nil {
			net.Close()
			return err
		}
		defer fw.Close()
		prog, err := fw.Local()
		if err != nil {
			return err
		}
		if err := prog.DefineRegion("f", layout); err != nil {
			return err
		}
		if err := fw.Start(); err != nil {
			return err
		}
		if err := app(prog); err != nil {
			return err
		}
		if v := fw.PoolViolations(); len(v) > 0 {
			return fmt.Errorf("dst: buffer pool violations in %s: %v", program, v)
		}
		return fw.Err()
	}

	exportAll := func(prog *core.Program, done <-chan struct{}) error {
		var wg sync.WaitGroup
		perr := make([]error, prog.Procs())
		for r := 0; r < prog.Procs(); r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				p := prog.Process(r)
				block, err := p.Block("f")
				if err != nil {
					perr[r] = err
					return
				}
				g := decomp.NewGrid(block)
				for k := 1; k <= cfg.steps; k++ {
					ts := float64(k)
					g.Fill(func(r, c int) float64 { return simCell(ts, r, c) })
					if err := p.Export("f", ts, g.Data); err != nil {
						perr[r] = err
						return
					}
					if k%cfg.ckptEvery == 0 {
						if err := p.Checkpoint(uint64(k)); err != nil {
							perr[r] = err
							return
						}
					}
				}
			}(r)
		}
		wg.Wait()
		for _, e := range perr {
			if e != nil {
				return e
			}
		}
		<-done
		return nil
	}

	importSteps := func(prog *core.Program, from, to int) error {
		var wg sync.WaitGroup
		perr := make([]error, prog.Procs())
		for r := 0; r < prog.Procs(); r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				p := prog.Process(r)
				block, err := p.Block("f")
				if err != nil {
					perr[r] = err
					return
				}
				dst := make([]float64, block.Area())
				for k := from; k <= to; k++ {
					ts := float64(k)
					res, err := p.Import("f", ts, dst)
					if err != nil {
						perr[r] = err
						return
					}
					if !res.Matched || res.MatchTS != ts {
						perr[r] = fmt.Errorf("dst: recovery import rank %d step %d resolved %+v", r, k, res)
						return
					}
					g := decomp.Grid{Block: block, Data: dst}
					for rr := block.R0; rr < block.R1; rr++ {
						for cc := block.C0; cc < block.C1; cc++ {
							if got, want := g.At(rr, cc), simCell(ts, rr, cc); got != want {
								perr[r] = fmt.Errorf("dst: recovery data corrupt at (%d,%d)@%g: got %v, want %v",
									rr, cc, ts, got, want)
								return
							}
						}
					}
					out.record(r, k, res.MatchTS, hashBlock(dst))
					if k%cfg.ckptEvery == 0 {
						if err := p.Checkpoint(uint64(k)); err != nil {
							perr[r] = err
							return
						}
					}
				}
			}(r)
		}
		wg.Wait()
		for _, e := range perr {
			if e != nil {
				return e
			}
		}
		return nil
	}

	err := w.Run(func() error {
		recOpts := func(restore bool) *core.RecoveryOptions {
			return &core.RecoveryOptions{Store: store, Restore: restore, Every: cfg.ckptEvery}
		}
		done := make(chan struct{})
		var doneOnce sync.Once
		finish := func() { doneOnce.Do(func() { close(done) }) }
		defer finish()

		expLayout, err := decomp.NewRowBlock(cfg.gridN, cfg.gridN, cfg.expProcs)
		if err != nil {
			return err
		}
		impLayout, err := decomp.NewColBlock(cfg.gridN, cfg.gridN, cfg.impProcs)
		if err != nil {
			return err
		}

		expErr := make(chan error, 1)
		go func() {
			expErr <- joinSim("F", expLayout, recOpts(false), 0,
				func(prog *core.Program) error { return exportAll(prog, done) })
		}()

		impTo := cfg.steps
		if crash {
			impTo = cfg.crashAfter
		}
		err = joinSim("U", impLayout, recOpts(false), 0,
			func(prog *core.Program) error { return importSteps(prog, 1, impTo) })
		if err != nil {
			return err
		}

		if crash {
			// U's first incarnation is gone — framework and endpoints closed.
			// Restart: load the checkpoint, rebuild the transport session
			// under the next epoch, restore and finish the workload.
			ck, err := store.Load("U")
			if err != nil {
				return err
			}
			if ck == nil {
				return fmt.Errorf("dst: no checkpoint saved before the crash")
			}
			err = joinSim("U", impLayout, recOpts(true), ck.Epoch+1,
				func(prog *core.Program) error {
					seq, ok := prog.RestoredSeq()
					if !ok {
						return fmt.Errorf("dst: restore did not surface the checkpoint")
					}
					return importSteps(prog, int(seq)+1, cfg.steps)
				})
			if err != nil {
				return err
			}
		}

		finish()
		return <-expErr
	})
	if err != nil {
		return nil, nil, err
	}
	if err := chk.Err(); err != nil {
		return nil, nil, err
	}
	return out, &Result{
		Seed:      seed,
		Digest:    out.digest(),
		Matched:   out.total(),
		Delivered: w.delivered.Load(),
		Dropped:   w.dropped.Load(),
		Delayed:   w.delayed.Load(),
		Vanished:  w.vanished.Load(),
	}, nil
}

// RunKillRestart executes the crash-recovery scenario: a fault-free
// reference pass and a kill-and-restart pass under the same seed. Every
// block the recovering run delivers — including the steps re-executed from
// the last checkpoint — must be byte-identical to the reference pass, and
// exactly the replayed steps must be delivered twice.
func RunKillRestart(seed int64) (*Result, error) {
	cfg := defaultKillRestart()
	ref, _, err := killRestartPass(seed, cfg, false)
	if err != nil {
		return nil, fmt.Errorf("dst: reference pass: %w", err)
	}
	crash, res, err := killRestartPass(seed, cfg, true)
	if err != nil {
		return nil, fmt.Errorf("dst: crash pass: %w", err)
	}

	if want := cfg.impProcs * cfg.steps; len(ref.recs) != want {
		return nil, fmt.Errorf("dst: reference pass recorded %d import keys, want %d", len(ref.recs), want)
	}
	replayed := cfg.crashAfter % cfg.ckptEvery
	for key, want := range ref.recs {
		if len(want) != 1 {
			return nil, fmt.Errorf("dst: reference pass delivered import %s %d times", key, len(want))
		}
		copies := crash.recs[key]
		if len(copies) == 0 {
			return nil, fmt.Errorf("dst: crash pass never delivered import %s", key)
		}
		for i, oc := range copies {
			if oc != want[0] {
				return nil, fmt.Errorf("dst: crash pass import %s copy %d = %+v differs from fault-free %+v",
					key, i, oc, want[0])
			}
		}
	}
	// The steps between the last checkpoint and the crash are delivered
	// twice — once per incarnation; every other step exactly once.
	for r := 0; r < cfg.impProcs; r++ {
		for k := 1; k <= cfg.steps; k++ {
			key := fmt.Sprintf("%d/%d", r, k)
			want := 1
			if k > cfg.crashAfter-replayed && k <= cfg.crashAfter {
				want = 2
			}
			if n := len(crash.recs[key]); n != want {
				return nil, fmt.Errorf("dst: crash pass delivered import %s %d times, want %d", key, n, want)
			}
		}
	}
	return res, nil
}
