// Package dst is the deterministic simulation testing harness: it runs a
// whole coupled simulation — every program, process, representative and
// transport layer — inside one OS process under a virtual clock (package
// vclock), with every message-delivery fate (drop, delay, deliver) drawn from
// a pure hash of (seed, src, dst, pair sequence). A World owns the shared
// in-memory substrate and a discrete-event queue of delayed deliveries; the
// driver (sim.go) alternates between letting the application goroutines run
// to quiescence and advancing virtual time to the next scheduled event or
// timer, so hours of protocol time (heartbeats, resend timers, blocking
// timeouts) elapse in milliseconds of wall time.
//
// Determinism is defined at the level the paper's collective-operation
// semantics promise it: for a fixed seed, every import request must resolve
// to the same match timestamp and deliver byte-identical data on every run,
// no matter how the runtime schedules goroutines. The scenario digests
// (scenario.go) fold exactly those outcomes, and the test suite replays seeds
// to hold the framework to that contract. Traffic-level counters (how many
// frames a resend timer retransmitted before the ack won the race) are
// legitimately schedule-dependent and are reported, not replayed.
package dst

import (
	"container/heap"
	"encoding/binary"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/vclock"
)

// DefaultMailboxDepth is the World's in-memory mailbox depth. It is generous
// so that fate-delayed deliveries flushed by the driver in a burst never
// block the simulation loop behind a slow consumer.
const DefaultMailboxDepth = 4096

// Config parameterizes a World's fault model. All fates are pure functions
// of (Seed, src, dst, per-pair send count): re-running the same scenario
// under the same seed draws the same fate for the n-th message of every
// directed pair, and a retransmission of a dropped message is a new send
// with a fresh fate — so drops are always eventually recovered by the
// reliable layer above.
type Config struct {
	// Seed selects the deterministic fault pattern.
	Seed int64
	// DropPermille is the per-message drop probability in 1/1000 units,
	// applied below the reliable layer (the message vanishes; the sender's
	// retransmission draws a fresh fate).
	DropPermille int
	// DelayPermille is the chance a non-dropped message is held in the
	// event queue instead of delivered immediately.
	DelayPermille int
	// MaxDelayQuanta and Quantum bound the virtual delivery delay of a
	// delayed message: uniform in {1..MaxDelayQuanta} quanta.
	MaxDelayQuanta int
	Quantum        time.Duration
	// MailboxDepth overrides DefaultMailboxDepth when positive.
	MailboxDepth int
}

// pairKey identifies a directed sender->receiver pair for fate sequencing.
type pairKey struct {
	src, dst transport.Addr
}

// event is one fate-delayed message delivery.
type event struct {
	due time.Time
	tie uint64 // fate hash, deterministic tiebreak at equal deadlines
	seq uint64 // scheduling order, final tiebreak
	ep  transport.Endpoint
	msg transport.Message
}

// World is one deterministic simulation universe: a virtual clock, a shared
// in-memory network, and the event queue of in-flight delayed messages.
// Frameworks attach through per-framework Views so that closing one
// framework (a simulated crash) tears down only its own endpoints.
type World struct {
	cfg Config
	clk *vclock.Virtual
	mem *transport.MemNetwork

	// activity counts every send, scheduled delivery and receive the world
	// observes; the driver's settle loop waits for it to stop moving before
	// advancing virtual time.
	activity atomic.Uint64

	mu     sync.Mutex
	events eventHeap
	eseq   uint64
	pair   map[pairKey]uint64

	delivered atomic.Uint64 // messages handed to a mailbox
	dropped   atomic.Uint64 // messages erased by fate
	delayed   atomic.Uint64 // messages routed through the event queue
	vanished  atomic.Uint64 // delayed messages whose endpoint died in flight
}

// NewWorld builds a simulation universe for one seeded run. The virtual
// clock starts at the Unix epoch so timestamps are reproducible.
func NewWorld(cfg Config) *World {
	depth := cfg.MailboxDepth
	if depth <= 0 {
		depth = DefaultMailboxDepth
	}
	clk := vclock.NewVirtual(time.Unix(0, 0))
	mem := transport.NewMemNetworkDepth(depth)
	mem.Clock = clk
	return &World{
		cfg:  cfg,
		clk:  clk,
		mem:  mem,
		pair: make(map[pairKey]uint64),
	}
}

// Clock returns the world's virtual clock, for injection into core.Options
// and the transport layer configs of every framework under test.
func (w *World) Clock() *vclock.Virtual { return w.clk }

// Close tears down the shared substrate (every view's endpoints with it).
func (w *World) Close() error { return w.mem.Close() }

// fate hashes one directed message occurrence into 64 deterministic bits.
func (w *World) fate(src, dst transport.Addr, n uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(w.cfg.Seed))
	h.Write(b[:])
	io.WriteString(h, src.String())
	h.Write([]byte{0})
	io.WriteString(h, dst.String())
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(b[:], n)
	h.Write(b[:])
	return h.Sum64()
}

// nextPair increments and returns the send count of a directed pair.
func (w *World) nextPair(src, dst transport.Addr) uint64 {
	k := pairKey{src: src, dst: dst}
	w.mu.Lock()
	w.pair[k]++
	n := w.pair[k]
	w.mu.Unlock()
	return n
}

// schedule queues a delayed delivery.
func (w *World) schedule(ev event) {
	w.mu.Lock()
	w.eseq++
	ev.seq = w.eseq
	heap.Push(&w.events, ev)
	w.mu.Unlock()
}

// nextDue reports the earliest scheduled delivery deadline, if any.
func (w *World) nextDue() (time.Time, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.events) == 0 {
		return time.Time{}, false
	}
	return w.events[0].due, true
}

// deliverDue flushes every event due at or before the current virtual time
// into its destination mailbox and returns how many it delivered. Deliveries
// to endpoints that died while the message was in flight (a crashed
// incarnation's mailbox) vanish, exactly as they would on a real network.
func (w *World) deliverDue() int {
	now := w.clk.Now()
	var due []event
	w.mu.Lock()
	for len(w.events) > 0 && !w.events[0].due.After(now) {
		due = append(due, heap.Pop(&w.events).(event))
	}
	w.mu.Unlock()
	for _, ev := range due {
		w.activity.Add(1)
		if err := ev.ep.Send(ev.msg); err != nil {
			w.vanished.Add(1)
		} else {
			w.delivered.Add(1)
		}
	}
	return len(due)
}

// View returns a new per-framework attachment to the world. Each simulated
// process (core.Join incarnation) gets its own View: Close detaches only
// that view's endpoints, leaving the shared substrate — and every other
// framework — running, which is what makes kill-and-restart scenarios
// possible inside one World.
func (w *World) View() *View {
	return &View{world: w}
}

// View is one framework's window onto the World, implementing
// transport.Network.
type View struct {
	world *World

	mu     sync.Mutex
	eps    []*viewEndpoint
	closed bool
}

// Register implements transport.Network.
func (v *View) Register(addr transport.Addr) (transport.Endpoint, error) {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil, transport.ErrClosed
	}
	v.mu.Unlock()
	inner, err := v.world.mem.Register(addr)
	if err != nil {
		return nil, err
	}
	ep := &viewEndpoint{world: v.world, inner: inner}
	v.mu.Lock()
	v.eps = append(v.eps, ep)
	v.mu.Unlock()
	return ep, nil
}

// Close implements transport.Network: it detaches this view's endpoints
// only. The shared World stays up for the other frameworks.
func (v *View) Close() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil
	}
	v.closed = true
	eps := v.eps
	v.eps = nil
	v.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// viewEndpoint applies the world's fate function on the send path.
type viewEndpoint struct {
	world *World
	inner transport.Endpoint
}

func (e *viewEndpoint) Addr() transport.Addr { return e.inner.Addr() }

// Send draws the message's fate: erased, scheduled for a future virtual
// instant, or delivered immediately. Drops and delays report success to the
// caller — from the sender's point of view the message left; whether it
// arrives is the network's business, and recovering it is the reliable
// layer's.
func (e *viewEndpoint) Send(msg transport.Message) error {
	w := e.world
	w.activity.Add(1)
	cfg := &w.cfg
	if cfg.DropPermille > 0 || (cfg.DelayPermille > 0 && cfg.MaxDelayQuanta > 0 && cfg.Quantum > 0) {
		h := w.fate(e.inner.Addr(), msg.Dst, w.nextPair(e.inner.Addr(), msg.Dst))
		if cfg.DropPermille > 0 && int(h%1000) < cfg.DropPermille {
			w.dropped.Add(1)
			return nil
		}
		if cfg.DelayPermille > 0 && cfg.MaxDelayQuanta > 0 && cfg.Quantum > 0 &&
			int((h>>16)%1000) < cfg.DelayPermille {
			quanta := 1 + (h>>32)%uint64(cfg.MaxDelayQuanta)
			w.schedule(event{
				due: w.clk.Now().Add(time.Duration(quanta) * cfg.Quantum),
				tie: h,
				ep:  e.inner,
				msg: msg,
			})
			w.delayed.Add(1)
			return nil
		}
	}
	w.delivered.Add(1)
	return e.inner.Send(msg)
}

func (e *viewEndpoint) Recv() (transport.Message, error) {
	m, err := e.inner.Recv()
	if err == nil {
		e.world.activity.Add(1)
	}
	return m, err
}

func (e *viewEndpoint) RecvTimeout(d time.Duration) (transport.Message, error) {
	m, err := e.inner.RecvTimeout(d)
	if err == nil {
		e.world.activity.Add(1)
	}
	return m, err
}

func (e *viewEndpoint) Close() error { return e.inner.Close() }

// eventHeap orders scheduled deliveries by (due, fate hash, schedule order).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	if h[i].tie != h[j].tie {
		return h[i].tie < h[j].tie
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
