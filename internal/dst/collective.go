package dst

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/collective"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Collective-chaos scenario: a group of raw collective.Comm ranks — no
// framework above them — runs forced-algorithm AllReduce, segmented Bcast and
// tree Gather rounds over the reliable layer while the world drops and delays
// messages underneath. Collective results are pure functions of the inputs
// (deterministic algorithms over exact dyadic values), so the outcome digest
// must not merely replay per seed: it must be identical across every seed and
// equal to a calm run's. Any divergence means a fault unmasked a protocol bug
// — a mis-matched round, a stale buffer, a segment stitched in wrong.

// CollectiveChaosConfig sizes one collective-chaos run.
type CollectiveChaosConfig struct {
	Seed          int64
	Ranks         int // default 5
	Rounds        int // default 6
	VecLen        int // AllReduce floats per rank (default 96)
	BcastBytes    int // Bcast payload size (default 1500; segmented at 256 B)
	DropPermille  int
	DelayPermille int
}

func (c *CollectiveChaosConfig) defaults() {
	if c.Ranks <= 0 {
		c.Ranks = 5
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.VecLen <= 0 {
		c.VecLen = 96
	}
	if c.BcastBytes <= 0 {
		c.BcastBytes = 1500
	}
}

// CollectiveChaosResult summarizes one run.
type CollectiveChaosResult struct {
	Seed   int64
	Digest uint64
	Ops    int // recorded outcomes folded into the digest
	// Traffic counters (schedule-dependent; informational).
	Delivered, Dropped, Delayed, Vanished uint64
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// chaosVec is rank r's deterministic AllReduce contribution for one round:
// dyadic rationals, so sums are exact and every fold order bit-identical.
func chaosVec(rank, round, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((rank*131+round*29+i*17)%257-128) / 8.0
	}
	return v
}

// RunCollectiveChaos executes one seeded collective-chaos run and returns its
// outcome digest.
func RunCollectiveChaos(cfg CollectiveChaosConfig) (*CollectiveChaosResult, error) {
	cfg.defaults()
	w := NewWorld(Config{
		Seed:           cfg.Seed,
		DropPermille:   cfg.DropPermille,
		DelayPermille:  cfg.DelayPermille,
		MaxDelayQuanta: 8,
		Quantum:        time.Millisecond,
	})
	defer w.Close()
	out := newOutcomes()
	chk := NewChecker()

	err := w.Run(func() error {
		rel := transport.NewReliableNetwork(w.View(), transport.ReliableConfig{
			ResendInterval: 5 * time.Millisecond,
			Clock:          w.Clock(),
		})
		net := chk.Wrap(rel)
		defer net.Close()

		// A table with a tiny segment size so the Bcast payload really
		// exercises the pipelined multi-segment path under loss.
		table := collective.DefaultTable()
		table.BcastSegBytes = 512
		table.BcastSegSize = 256

		comms := make([]*collective.Comm, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			ep, err := net.Register(transport.Proc("C", r))
			if err != nil {
				return err
			}
			// The dispatcher deadline clock must be the virtual one, or every
			// blocked receive would hold a wall timer the driver cannot see.
			c, err := collective.New(transport.NewDispatcherClock(ep, w.Clock()), "C", r, cfg.Ranks)
			if err != nil {
				return err
			}
			c.SetTimeout(2 * time.Minute) // virtual; resends recover long before
			c.SetTable(table)
			// Buffer reuse stays off: the reliable layer retains sent payloads
			// for resend, so recycling them is unsafe by contract.
			comms[r] = c
		}

		errs := make(chan error, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			go func(c *collective.Comm) {
				errs <- func() error {
					for k := 0; k < cfg.Rounds; k++ {
						// Phase 0/1: AllReduce under both algorithms; the ring
						// result must match recursive doubling bit for bit.
						in := chaosVec(c.Rank(), k, cfg.VecLen)
						ring, err := c.AllReduceWith(collective.Ring, in, collective.Sum)
						if err != nil {
							return fmt.Errorf("round %d ring allreduce: %w", k, err)
						}
						rd, err := c.AllReduceWith(collective.RecursiveDoubling, in, collective.Sum)
						if err != nil {
							return fmt.Errorf("round %d rd allreduce: %w", k, err)
						}
						out.record(c.Rank(), 10*k+0, 0, hashBytes(wire.AppendFloat64s(nil, ring)))
						out.record(c.Rank(), 10*k+1, 0, hashBytes(wire.AppendFloat64s(nil, rd)))

						// Phase 2: segmented broadcast from a rotating root.
						root := k % cfg.Ranks
						var payload []byte
						if c.Rank() == root {
							payload = make([]byte, cfg.BcastBytes)
							for i := range payload {
								payload[i] = byte(i*31 + k*7)
							}
						}
						got, err := c.BcastWith(collective.BinomialSeg, root, payload)
						if err != nil {
							return fmt.Errorf("round %d bcast: %w", k, err)
						}
						out.record(c.Rank(), 10*k+2, 0, hashBytes(got))

						// Phase 3: tree gather to the same root.
						part := wire.AppendFloat64s(nil, chaosVec(c.Rank(), k+1000, 9))
						parts, err := c.GatherWith(collective.Binomial, root, part)
						if err != nil {
							return fmt.Errorf("round %d gather: %w", k, err)
						}
						if c.Rank() == root {
							out.record(c.Rank(), 10*k+3, 0, hashBytes(bytes.Join(parts, []byte{0xff})))
						}

						if err := c.Barrier(); err != nil {
							return fmt.Errorf("round %d barrier: %w", k, err)
						}
					}
					return nil
				}()
			}(comms[r])
		}
		for r := 0; r < cfg.Ranks; r++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dst: collective chaos seed %d: %w", cfg.Seed, err)
	}
	if err := chk.Err(); err != nil {
		return nil, err
	}
	return &CollectiveChaosResult{
		Seed:      cfg.Seed,
		Digest:    out.digest(),
		Ops:       out.total(),
		Delivered: w.delivered.Load(),
		Dropped:   w.dropped.Load(),
		Delayed:   w.delayed.Load(),
		Vanished:  w.vanished.Load(),
	}, nil
}
