package dst

import (
	"fmt"
	"testing"
)

// TestRankFailureDeterministic replays the rank-failure scenario: for every
// seed the survivors must agree on exactly the dead rank, no survivor may
// hang, and the outcome digest must be identical across seeds, across
// replays, and equal to the composed fault-free reference (healthy full-group
// prefix + survivor-subset remainder). Recovery may cost virtual time, never
// answers.
func TestRankFailureDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation scenario")
	}
	cfg := RankFailureConfig{Seed: 1}
	ref, err := RunRankFailureReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reference: digest %016x over %d outcomes", ref.Digest, ref.Ops)

	for _, seed := range []int64{1, 7, 4242} {
		cfg := RankFailureConfig{Seed: seed, DelayPermille: 150}
		a, err := RunRankFailure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunRankFailure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: digest %016x, %d outcomes, agreed %v, delivered %d delayed %d vanished %d",
			seed, a.Digest, a.Ops, a.Agreed, a.Delivered, a.Delayed, a.Vanished)
		if fmt.Sprint(a.Agreed) != fmt.Sprint([]int{2}) {
			t.Fatalf("seed %d agreed %v, want [2]", seed, a.Agreed)
		}
		if a.Digest != b.Digest || a.Ops != b.Ops {
			t.Fatalf("seed %d did not replay: %016x/%d vs %016x/%d", seed, a.Digest, a.Ops, b.Digest, b.Ops)
		}
		if a.Digest != ref.Digest || a.Ops != ref.Ops {
			t.Fatalf("seed %d digest %016x/%d diverged from fault-free reference %016x/%d: the crash changed survivor results",
				seed, a.Digest, a.Ops, ref.Digest, ref.Ops)
		}
	}
}

// TestRankFailureShapes varies the group size and dead rank: agreement and
// shrink must hold whoever dies, including the base rank whose death re-ranks
// every survivor.
func TestRankFailureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation scenario")
	}
	for _, tc := range []struct{ ranks, dead int }{
		{3, 1},
		{4, 3},
		{6, 1},
	} {
		cfg := RankFailureConfig{Seed: 11, Ranks: tc.ranks, DeadRank: tc.dead, PreRounds: 1, PostRounds: 2}
		a, err := RunRankFailure(cfg)
		if err != nil {
			t.Fatalf("ranks=%d dead=%d: %v", tc.ranks, tc.dead, err)
		}
		ref, err := RunRankFailureReference(cfg)
		if err != nil {
			t.Fatalf("ranks=%d dead=%d reference: %v", tc.ranks, tc.dead, err)
		}
		if fmt.Sprint(a.Agreed) != fmt.Sprint([]int{tc.dead}) {
			t.Fatalf("ranks=%d: agreed %v, want [%d]", tc.ranks, a.Agreed, tc.dead)
		}
		if a.Digest != ref.Digest || a.Ops != ref.Ops {
			t.Fatalf("ranks=%d dead=%d: digest %016x/%d != reference %016x/%d",
				tc.ranks, tc.dead, a.Digest, a.Ops, ref.Digest, ref.Ops)
		}
	}
}
