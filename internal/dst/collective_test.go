package dst

import "testing"

// TestCollectiveChaosDeterministic replays the collective-chaos scenario:
// per seed the digest must reproduce exactly, and because collective results
// are pure functions of the inputs, every seed's digest — and the calm run's
// — must be the same value. Faults may cost retransmissions, never answers.
func TestCollectiveChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation scenario")
	}
	calm, err := RunCollectiveChaos(CollectiveChaosConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if calm.Dropped != 0 || calm.Delayed != 0 {
		t.Fatalf("calm run saw faults: %+v", calm)
	}
	t.Logf("calm: digest %016x over %d outcomes (%d delivered)", calm.Digest, calm.Ops, calm.Delivered)

	for _, seed := range []int64{1, 7, 4242} {
		cfg := CollectiveChaosConfig{
			Seed:          seed,
			DropPermille:  30,
			DelayPermille: 150,
		}
		a, err := RunCollectiveChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunCollectiveChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: digest %016x, %d outcomes, delivered %d dropped %d delayed %d",
			seed, a.Digest, a.Ops, a.Delivered, a.Dropped, a.Delayed)
		if a.Digest != b.Digest || a.Ops != b.Ops {
			t.Fatalf("seed %d did not replay: %016x/%d vs %016x/%d", seed, a.Digest, a.Ops, b.Digest, b.Ops)
		}
		if a.Dropped == 0 && a.Delayed == 0 {
			t.Fatalf("seed %d drew no faults; scenario is not exercising chaos", seed)
		}
		if a.Digest != calm.Digest {
			t.Fatalf("seed %d digest %016x diverged from calm %016x: faults changed collective results",
				seed, a.Digest, calm.Digest)
		}
	}
}
