package dst

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/testutil"
)

// seedCount returns how many seeds a sweep should cover: def locally, or
// the DST_SEEDS environment variable when set (the CI seed sweep raises it).
func seedCount(t *testing.T, def int) int {
	if s := os.Getenv("DST_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad DST_SEEDS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		def = (def + 3) / 4
		if def < 1 {
			def = 1
		}
	}
	return def
}

func TestFigure4Sweep(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	n := seedCount(t, 8)
	for seed := int64(1); seed <= int64(n); seed++ {
		res, err := RunFigure4(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Dropped != 0 {
			t.Fatalf("seed %d: delay-only run dropped %d messages", seed, res.Dropped)
		}
		if res.Delayed == 0 {
			t.Fatalf("seed %d: fault injection inert (no message delayed)", seed)
		}
	}
}

func TestChaosSweep(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	n := seedCount(t, 8)
	for seed := int64(1); seed <= int64(n); seed++ {
		res, err := RunChaos(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Dropped == 0 {
			t.Fatalf("seed %d: fault injection inert (no message dropped)", seed)
		}
	}
}

func TestKillRestartSweep(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	n := seedCount(t, 4)
	for seed := int64(1); seed <= int64(n); seed++ {
		if _, err := RunKillRestart(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFaultIndependence pins the paper's central promise from the fault
// side: the Figure-4 and chaos scenarios run the identical workload under
// different fault models (delays only vs drops+delays), so their outcome
// digests must agree seed by seed — injected faults may cost latency, never
// answers. Seeds 1..4 are pinned as regressions: they cover the deepest
// interleavings the development sweeps explored.
func TestFaultIndependence(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for seed := int64(1); seed <= 4; seed++ {
		fig, err := RunFigure4(seed)
		if err != nil {
			t.Fatalf("figure4 seed %d: %v", seed, err)
		}
		cha, err := RunChaos(seed)
		if err != nil {
			t.Fatalf("chaos seed %d: %v", seed, err)
		}
		if fig.Digest != cha.Digest {
			t.Fatalf("seed %d: outcome digest differs across fault models: %#x (delay-only) vs %#x (drops)",
				seed, fig.Digest, cha.Digest)
		}
	}
}

// TestReplayDigest holds the framework to the paper's determinism property:
// for a fixed seed, re-running a scenario must reproduce the exact same
// protocol outcomes — every match timestamp and every delivered byte — no
// matter how the runtime schedules goroutines. Traffic counters may differ
// between runs; the outcome digest may not.
func TestReplayDigest(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	scenarios := []struct {
		name string
		run  func(int64) (*Result, error)
	}{
		{"figure4", RunFigure4},
		{"chaos", RunChaos},
		{"killrestart", RunKillRestart},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			const seed = 42
			a, err := sc.run(seed)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := sc.run(seed)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Digest != b.Digest {
				t.Fatalf("seed %d digest not reproducible: %#x vs %#x", seed, a.Digest, b.Digest)
			}
			if a.Matched != b.Matched {
				t.Fatalf("seed %d matched count not reproducible: %d vs %d", seed, a.Matched, b.Matched)
			}
		})
	}
}
