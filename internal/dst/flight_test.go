package dst

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obsv/diag"
	"repro/internal/transport"
)

// TestCheckerFlightDumpOnViolation arms the invariant checker with two
// programs' flight recorders, forces a delivery-order violation through the
// wrapped network (a sequence gap, the reliable-layer bug class the checker
// exists for), and asserts the violation produced decodable dumps whose
// merged timeline orders events across both recorders.
func TestCheckerFlightDumpOnViolation(t *testing.T) {
	dir := t.TempDir()
	chk := NewChecker()
	rf := diag.NewRecorder("F", 64, nil)
	ru := diag.NewRecorder("U", 64, nil)
	rf.Record(diag.Event{Kind: diag.KindMark, Rank: 0, Note: "f-before"})
	ru.Record(diag.Event{Kind: diag.KindMark, Rank: 0, Note: "u-before"})
	chk.SetFlight(dir, rf, ru)

	net := chk.Wrap(transport.NewMemNetwork())
	defer net.Close()
	src, err := net.Register(transport.Proc("F", 0))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := net.Register(transport.Proc("U", 0))
	if err != nil {
		t.Fatal(err)
	}
	// Seq 1 then seq 3: above the reliable layer that gap is exactly-once
	// in-order delivery broken.
	for _, seq := range []uint64{1, 3} {
		if err := src.Send(transport.Message{
			Kind: transport.KindControl, Dst: dst.Addr(), Seq: seq,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	verr := chk.Err()
	if verr == nil {
		t.Fatal("sequence gap not latched as a violation")
	}

	paths := chk.FlightDumps()
	if len(paths) != 2 {
		t.Fatalf("violation wrote %d dumps, want 2: %v", len(paths), paths)
	}
	dumps := make([]*diag.Dump, len(paths))
	for i, path := range paths {
		d, err := diag.ReadDump(path)
		if err != nil {
			t.Fatalf("dump %s does not decode: %v", path, err)
		}
		if !strings.Contains(d.Reason, "delivery order") {
			t.Fatalf("dump reason %q misses the violation", d.Reason)
		}
		found := false
		for _, e := range d.Events {
			if e.Kind == diag.KindViolation && strings.Contains(e.Note, "seq 3") {
				found = true
			}
		}
		if !found {
			t.Fatalf("dump %s has no violation event naming the bad seq", path)
		}
		dumps[i] = d
	}

	// The merged timeline interleaves both programs in time order and
	// renders their lanes.
	var out bytes.Buffer
	if err := diag.WriteTimeline(&out, dumps...); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"F:0", "U:0", "f-before", "u-before", "violation"} {
		if !strings.Contains(text, want) {
			t.Fatalf("timeline missing %q:\n%s", want, text)
		}
	}
	tl := diag.MergeTimeline(dumps...)
	for i := 1; i < len(tl); i++ {
		if tl[i].Event.TS < tl[i-1].Event.TS {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
}
