package dst

import (
	"fmt"
	"runtime"
	"time"
)

// Driver tuning. The settle loop is a heuristic: the driver cannot see
// goroutines that are about to send (only ones that have), so it requires
// the world's activity counter to hold still for several consecutive polls
// before concluding the application is quiescent and virtual time may move.
// Premature advances are safe by construction — every virtual deadline in
// the scenarios (resend tickers, heartbeat leases, blocking timeouts) has
// orders-of-magnitude more slack than one settle round — but the stability
// requirement keeps the event order, and therefore the run time, tight.
const (
	settleRounds = 3
	settlePause  = 100 * time.Microsecond
	// idleGrace and idleLimit bound how long the driver waits in real time
	// when the simulation has nothing scheduled at all (no events, no
	// timers) before declaring the scenario stalled.
	idleGrace = 5 * time.Millisecond
	idleLimit = 400
	// maxVirtual bounds the total virtual time one scenario may consume; a
	// protocol livelock otherwise advances from resend tick to resend tick
	// forever without making progress.
	maxVirtual = 10 * time.Minute
)

// Run executes fn — the scenario body, which builds frameworks against the
// world's Views and drives the coupled workload — while this goroutine acts
// as the simulation driver: it lets the application run to quiescence,
// flushes message deliveries that have come due, and advances the virtual
// clock to the next scheduled delivery or timer deadline, whichever is
// earlier. It returns fn's result, or a stall diagnosis if the simulation
// stops making progress with fn still running.
func (w *World) Run(fn func() error) error {
	done := make(chan error, 1)
	go func() { done <- fn() }()

	limit := w.clk.Now().Add(maxVirtual)
	idle := 0
	for {
		select {
		case err := <-done:
			return err
		default:
		}
		w.settle()
		if w.deliverDue() > 0 {
			idle = 0
			continue
		}
		// Quiescent with nothing deliverable now: advance virtual time.
		next, okE := w.nextDue()
		tnext, okT := w.clk.NextDeadline()
		var target time.Time
		switch {
		case okE && (!okT || next.Before(tnext)):
			target = next
		case okT:
			target = tnext
		default:
			// Nothing scheduled anywhere. Either fn is about to return, or
			// every goroutine is blocked on a message that will never come.
			select {
			case err := <-done:
				return err
			case <-time.After(idleGrace):
			}
			idle++
			if idle > idleLimit {
				return w.stallErr("no scheduled events or timers")
			}
			continue
		}
		idle = 0
		if target.After(limit) {
			return w.stallErr(fmt.Sprintf("virtual time limit %v exceeded", maxVirtual))
		}
		w.clk.AdvanceTo(target)
	}
}

// settle spins until the world's activity counter holds still for
// settleRounds consecutive polls, yielding the processor to the application
// goroutines between polls.
func (w *World) settle() {
	last := w.activity.Load()
	stable := 0
	for stable < settleRounds {
		runtime.Gosched()
		time.Sleep(settlePause)
		cur := w.activity.Load()
		if cur == last {
			stable++
		} else {
			stable = 0
			last = cur
		}
	}
}

// stallErr reports a wedged simulation with enough state to reproduce and
// diagnose it.
func (w *World) stallErr(why string) error {
	w.mu.Lock()
	pending := len(w.events)
	w.mu.Unlock()
	return fmt.Errorf("dst: simulation stalled (%s): seed=%d vnow=%v pending_events=%d delivered=%d dropped=%d delayed=%d vanished=%d sleepers=%d",
		why, w.cfg.Seed, w.clk.Now().Sub(time.Unix(0, 0)), pending,
		w.delivered.Load(), w.dropped.Load(), w.delayed.Load(), w.vanished.Load(),
		w.clk.Sleepers())
}
