//go:build race

package core

// raceDetectorOn reports whether the race detector is compiled in; its
// scheduling overhead drowns the timing signals the diag accuracy
// assertions depend on.
func raceDetectorOn() bool { return true }
