package core

import (
	"repro/internal/testutil"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/transport"
)

// TestStrayDataFrameDropped: a KindData frame for a connection key the
// receiver does not import — a straggler delayed past its peer's teardown,
// or a duplicate from a flaky transport — must be dropped and counted
// (ProtocolStats.DataDropped), not fail the program. Regression: handleData
// used to call prog.fail on the unknown key, so one late frame tore down
// the whole coupled run. The run rides a FaultNetwork with delivery delays,
// the condition that produces such stragglers in the wild.
func TestStrayDataFrameDropped(t *testing.T) {
	cfg, err := config.ParseString("E local b 1\nI local b 1\n#\nE.d I.d REGL 1\n")
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewFaultNetwork(transport.NewMemNetwork(), transport.FaultConfig{
		Seed:      42,
		DelayProb: 0.5,
		MaxDelay:  2 * time.Millisecond,
	})
	f, err := New(cfg, Options{Network: net, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, _ := decomp.NewRowBlock(4, 4, 1)
	f.MustProgram("E").DefineRegion("d", l)
	f.MustProgram("I").DefineRegion("d", l)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	// An outside endpoint injects data frames whose connection key the
	// importer never configured.
	ghost, err := net.Register(transport.Proc("X", 0))
	if err != nil {
		t.Fatal(err)
	}
	const strays = 3
	for i := 0; i < strays; i++ {
		err := ghost.Send(transport.Message{
			Kind:    transport.KindData,
			Dst:     transport.Proc("I", 0),
			Tag:     "E.ghost->I.ghost",
			Payload: []byte("late straggler"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// The coupled exchange must still complete normally around the strays.
	exp := f.MustProgram("E").Process(0)
	imp := f.MustProgram("I").Process(0)
	done := make(chan error, 1)
	go func() {
		for k := 1; k <= 3; k++ {
			if err := exp.Export("d", float64(k), fillBlock(decomp.NewRect(0, 0, 4, 4), float64(k))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	dst := make([]float64, 16)
	res, err := imp.Import("d", 2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.MatchTS != 2 {
		t.Fatalf("import resolved %+v", res)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The strays are delayed by the fault layer; poll for the counter.
	deadline := testutil.Now().Add(5 * time.Second)
	for f.MustProgram("I").ProtocolStats().DataDropped < strays {
		if testutil.Now().After(deadline) {
			t.Fatalf("DataDropped = %d, want %d", f.MustProgram("I").ProtocolStats().DataDropped, strays)
		}
		testutil.Sleep(time.Millisecond)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("stray data frame failed the program: %v", err)
	}
}
