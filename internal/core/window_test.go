package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/decomp"
)

// TestWindowedCoupling couples only a sub-rectangle (the paper's "shared
// boundary" case): the importer receives exactly the window and nothing
// else; importer processes whose blocks miss the window complete without
// waiting for data.
func TestWindowedCoupling(t *testing.T) {
	const size = 12
	window := decomp.NewRect(2, 3, 7, 9)
	cfg, err := config.ParseString(fmt.Sprintf(`
E local b 2
I local b 3
#
E.d I.d REGL 2.5 rect=%d:%d:%d:%d
`, window.R0, window.C0, window.R1, window.C1))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Connections[0].Windowed() || cfg.Connections[0].Window != window {
		t.Fatalf("window parsed as %v", cfg.Connections[0].Window)
	}
	f, err := New(cfg, Options{BuddyHelp: true, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	le, _ := decomp.NewRowBlock(size, size, 2)
	li, _ := decomp.NewRowBlock(size, size, 3)
	f.MustProgram("E").DefineRegion("d", le)
	f.MustProgram("I").DefineRegion("d", li)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, f.MustProgram("E"), func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 12; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, f.MustProgram("I"), func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		const sentinel = -7777.0
		for i := range dst {
			dst[i] = sentinel
		}
		res, err := p.Import("d", 10, dst)
		if err != nil {
			return err
		}
		if !res.Matched || res.MatchTS != 10 {
			return fmt.Errorf("resolved %+v", res)
		}
		g := decomp.Grid{Block: block, Data: dst}
		for r := block.R0; r < block.R1; r++ {
			for c := block.C0; c < block.C1; c++ {
				if window.Contains(r, c) {
					if got := g.At(r, c); got != cell(10, r, c) {
						return fmt.Errorf("in-window (%d,%d) = %v, want %v", r, c, got, cell(10, r, c))
					}
				} else if g.At(r, c) != sentinel {
					return fmt.Errorf("out-of-window (%d,%d) overwritten to %v", r, c, g.At(r, c))
				}
			}
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowOutsideBoundsRejected: Start validates the window.
func TestWindowOutsideBoundsRejected(t *testing.T) {
	cfg, err := config.ParseString("E local b 1\nI local b 1\n#\nE.d I.d REGL 1 rect=0:0:9:9\n")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, _ := decomp.NewRowBlock(4, 4, 1) // window 9x9 exceeds 4x4
	f.MustProgram("E").DefineRegion("d", l)
	f.MustProgram("I").DefineRegion("d", l)
	if err := f.Start(); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("Start: %v", err)
	}
}

// TestWindowedCornerOnly: a window confined to one importer rank leaves all
// other ranks pieceless but the collective import still completes everywhere.
func TestWindowedCornerOnly(t *testing.T) {
	cfg, err := config.ParseString("E local b 1\nI local b 4\n#\nE.d I.d REGL 1 rect=0:0:2:2\n")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg, Options{BuddyHelp: true, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	le, _ := decomp.NewRowBlock(8, 8, 1)
	li, _ := decomp.NewRowBlock(8, 8, 4)
	f.MustProgram("E").DefineRegion("d", le)
	f.MustProgram("I").DefineRegion("d", li)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, f.MustProgram("E"), func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 6; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, f.MustProgram("I"), func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		res, err := p.Import("d", 5, dst)
		if err != nil {
			return err
		}
		if !res.Matched {
			return fmt.Errorf("no match")
		}
		// Only rank 0 (rows 0-1) intersects the window.
		if p.Rank() == 0 {
			g := decomp.Grid{Block: block, Data: dst}
			if g.At(0, 0) != cell(5, 0, 0) {
				return fmt.Errorf("window corner = %v", g.At(0, 0))
			}
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFanOutSharedSnapshots: a region exported to two importers buffers one
// shared physical copy per timestamp, not one per connection.
func TestFanOutSharedSnapshots(t *testing.T) {
	cfg, err := config.ParseString(`
E local b 1
A local b 1
B local b 1
#
E.d A.d REGL 2.5
E.d B.d REGL 2.5
`)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg, Options{BuddyHelp: true, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, _ := decomp.NewRowBlock(4, 4, 1)
	f.MustProgram("E").DefineRegion("d", l)
	f.MustProgram("A").DefineRegion("d", l)
	f.MustProgram("B").DefineRegion("d", l)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	p := f.MustProgram("E").Process(0)
	data := make([]float64, 16)
	for k := 1; k <= 5; k++ {
		if err := p.Export("d", float64(k), data); err != nil {
			t.Fatal(err)
		}
	}
	reg := p.exps["d"]
	if reg.store == nil {
		t.Fatal("fan-out region has no shared store")
	}
	// Both managers buffered all 5 versions (no requests yet), but the
	// store holds exactly 5 shared copies.
	live := reg.store.live()
	aAlias := lockedNumBuffered(reg.conns[0])
	bAlias := lockedNumBuffered(reg.conns[1])
	if live != 5 {
		t.Errorf("store holds %d versions, want 5", live)
	}
	if aAlias != 5 || bAlias != 5 {
		t.Errorf("managers hold %d/%d entries", aAlias, bAlias)
	}
	// Refcounting: a request on connection A frees its references; the
	// versions stay alive for B.
	imp := f.MustProgram("A").Process(0)
	dst := make([]float64, 16)
	res, err := imp.Import("d", 5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.MatchTS != 5 {
		t.Fatalf("A import resolved %+v", res)
	}
	// Drain the async pipeline: the store releases a version on the sender
	// goroutine's TransferDone, which may lag the Import return.
	if err := p.Flush("d"); err != nil {
		t.Fatal(err)
	}
	liveAfter := reg.store.live()
	bAfter := lockedNumBuffered(reg.conns[1])
	if bAfter != 5 {
		t.Errorf("B lost entries: %d", bAfter)
	}
	if liveAfter != 5 {
		// A freed 1..2 (below the region) and dominated candidates, but B
		// still references everything, so all 5 stay live.
		t.Errorf("store live %d after A's request, want 5", liveAfter)
	}
	// B's request frees the last references to the dominated versions.
	impB := f.MustProgram("B").Process(0)
	resB, err := impB.Import("d", 5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Matched {
		t.Fatal("B unmatched")
	}
	if err := p.Flush("d"); err != nil {
		t.Fatal(err)
	}
	liveEnd := reg.store.live()
	if liveEnd >= 5 {
		t.Errorf("store live %d after both requests, want < 5", liveEnd)
	}
}

// lockedNumBuffered reads a connection manager's entry count under its lock.
func lockedNumBuffered(ec *exportConn) int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.mgr.NumBuffered()
}
