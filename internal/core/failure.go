package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// ErrPeerDown is the sentinel matched (errors.Is) by every peer-failure
// error the framework produces. The concrete error is a *PeerDownError
// naming the dead program.
var ErrPeerDown = errors.New("core: peer program down")

// PeerDownError reports that a coupled peer program was declared dead — by
// heartbeat silence, or by the peer announcing its own failure. It fails the
// observing program: blocked Export/Import calls return it promptly instead
// of hanging until the blanket timeout, and export buffers held only for the
// dead peer's connections are evicted.
type PeerDownError struct {
	// Peer is the program declared dead; Observer the program that noticed.
	Peer, Observer string
	// Silence is how long the peer had been quiet (zero when the peer
	// announced its failure instead of going silent).
	Silence time.Duration
	// Cause carries the peer's own error text when it announced a failure.
	Cause string
}

// Error implements error.
func (e *PeerDownError) Error() string {
	switch {
	case e.Cause != "":
		return fmt.Sprintf("core: %s: peer program %s down: %s", e.Observer, e.Peer, e.Cause)
	case e.Silence > 0:
		return fmt.Sprintf("core: %s: peer program %s down (silent for %v)",
			e.Observer, e.Peer, e.Silence.Round(time.Millisecond))
	default:
		return fmt.Sprintf("core: %s: peer program %s down", e.Observer, e.Peer)
	}
}

// Is matches the ErrPeerDown sentinel.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// Heartbeat control-message tags (KindControl, rep -> peer rep).
const (
	hbTag   = "hb"   // periodic liveness beacon
	downTag = "down" // the sender's program failed; payload is an errorMsg
)

// failureDetector is the rep-side peer-liveness tracker. Heartbeats are sent
// at half the configured interval and act as leases: ANY message from a peer
// rep (heartbeat, request, answer, layout) renews its lease, so a busy
// coupling pays no false-positive risk. A peer that has been heard from at
// least once and then stays silent for more than 1.5x the interval is
// declared dead — within the 2x-interval bound the framework documents.
// Peers never heard from are not judged: a late joiner is the startup
// handshake's business (Options.Timeout), not the failure detector's.
type failureDetector struct {
	interval time.Duration
	clock    vclock.Clock

	mu       sync.Mutex
	lastSeen map[string]time.Time
	declared map[string]bool
}

func newFailureDetector(interval time.Duration, clock vclock.Clock) *failureDetector {
	return &failureDetector{
		interval: interval,
		clock:    vclock.Or(clock),
		lastSeen: make(map[string]time.Time),
		declared: make(map[string]bool),
	}
}

// touch renews a peer's lease.
func (fd *failureDetector) touch(peer string) {
	fd.mu.Lock()
	fd.lastSeen[peer] = fd.clock.Now()
	fd.mu.Unlock()
}

// expired returns the peers whose lease ran out, with their silence, marking
// them declared so each is reported once.
func (fd *failureDetector) expired() map[string]time.Duration {
	threshold := fd.interval + fd.interval/2
	fd.mu.Lock()
	defer fd.mu.Unlock()
	var out map[string]time.Duration
	for peer, seen := range fd.lastSeen {
		if fd.declared[peer] {
			continue
		}
		if silence := fd.clock.Since(seen); silence > threshold {
			fd.declared[peer] = true
			if out == nil {
				out = make(map[string]time.Duration)
			}
			out[peer] = silence
		}
	}
	return out
}

// reset un-declares a peer and renews its lease — a declared-dead peer
// rejoined (crash recovery), so the detector judges it afresh.
func (fd *failureDetector) reset(peer string) {
	fd.mu.Lock()
	fd.lastSeen[peer] = fd.clock.Now()
	fd.declared[peer] = false
	fd.mu.Unlock()
}

// peerStatus is one peer's liveness view for /statusz.
type peerStatus struct {
	Peer     string
	Since    time.Duration // silence since the last lease renewal
	Declared bool
}

// peers snapshots the detector's view of every peer heard from, sorted by
// name (diagnostics; the detector's own decisions use expired).
func (fd *failureDetector) peers() []peerStatus {
	fd.mu.Lock()
	out := make([]peerStatus, 0, len(fd.lastSeen))
	for peer, seen := range fd.lastSeen {
		out = append(out, peerStatus{Peer: peer, Since: fd.clock.Since(seen), Declared: fd.declared[peer]})
	}
	fd.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// peerPrograms returns the distinct peer programs the named program is
// coupled with (either side of any connection), excluding itself.
func (f *Framework) peerPrograms(name string) []string {
	seen := map[string]bool{name: true}
	var peers []string
	for _, conn := range f.cfg.Connections {
		for _, p := range []string{conn.Export.Program, conn.Import.Program} {
			if !seen[p] {
				seen[p] = true
				peers = append(peers, p)
			}
		}
	}
	return peers
}

// touchPeer renews the liveness lease of the sending rep when a message
// arrives from a peer program's representative — heartbeats are leases, and
// so is every piece of real protocol traffic (requests, answers, layouts).
func (r *repRunner) touchPeer(m transport.Message) {
	if m.Src.IsRep() && m.Src.Program != r.prog.name {
		r.fd.touch(m.Src.Program)
	}
}

// handleControl processes rep-to-rep control traffic: heartbeat beacons and
// peer failure announcements.
func (r *repRunner) handleControl(m transport.Message) {
	switch m.Tag {
	case hbTag:
		r.touchPeer(m)
	case downTag:
		var em errorMsg
		if err := wire.Unmarshal(m.Payload, &em); err != nil {
			r.prog.fail(err)
			return
		}
		r.prog.peerDown(&PeerDownError{Peer: m.Src.Program, Observer: r.prog.name, Cause: em.Text})
	case rejoinTag:
		r.handleRejoin(m)
	case releaseTag:
		// Checkpoint ack from an importing peer: fan to our processes, whose
		// managers drop the retained versions it covers.
		r.toProcs(releaseTag, m.Payload, 0)
	default:
		r.prog.fail(fmt.Errorf("core: rep of %s: unknown control tag %q", r.prog.name, m.Tag))
	}
}

// heartbeatLoop is the rep's liveness goroutine: it beacons to every peer rep
// at interval/2 and checks leases at interval/4, so a dead peer is declared
// within 2x the configured interval. Send failures are ignored — an
// unreachable peer is exactly what the lease expiry will catch.
func (r *repRunner) heartbeatLoop(interval time.Duration, peers []string) {
	tick := r.prog.fw.opts.Clock.NewTicker(interval / 4)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-r.hbStop:
			return
		case <-tick.C():
		}
		if n++; n%2 == 1 {
			for _, peer := range peers {
				_ = r.d.Send(transport.Message{
					Kind: transport.KindControl,
					Dst:  transport.Rep(peer),
					Tag:  hbTag,
				})
			}
		}
		for peer, silence := range r.fd.expired() {
			r.prog.peerDown(&PeerDownError{Peer: peer, Observer: r.prog.name, Silence: silence})
		}
	}
}

// announceFailure tells every peer rep this program is going down, so their
// detectors can fire immediately instead of waiting out the lease. Best
// effort: a peer that cannot be reached learns it from the silence.
func (r *repRunner) announceFailure(peers []string, cause error) {
	text := ""
	if cause != nil {
		text = cause.Error()
	}
	payload := wire.MustMarshal(errorMsg{Text: text})
	for _, peer := range peers {
		_ = r.d.Send(transport.Message{
			Kind:    transport.KindControl,
			Dst:     transport.Rep(peer),
			Tag:     downTag,
			Payload: payload,
		})
	}
}
