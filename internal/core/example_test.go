package core_test

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
)

// Example couples a 2-process simulation exporting a distributed field to a
// single-process consumer with approximate temporal matching — the minimal
// end-to-end use of the framework.
func Example() {
	cfg, err := config.ParseString(`
sim  local builtin 2
view local builtin 1
#
sim.u view.u REGL 0.5
`)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(cfg, core.Options{BuddyHelp: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	const n = 4
	simLayout, _ := decomp.NewRowBlock(n, n, 2)
	viewLayout, _ := decomp.NewRowBlock(n, n, 1)
	if err := fw.MustProgram("sim").DefineRegion("u", simLayout); err != nil {
		log.Fatal(err)
	}
	if err := fw.MustProgram("view").DefineRegion("u", viewLayout); err != nil {
		log.Fatal(err)
	}
	if err := fw.Start(); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := fw.MustProgram("sim").Process(rank)
			block, _ := p.Block("u")
			data := make([]float64, block.Area())
			for t := 1.0; t <= 6; t++ {
				for i := range data {
					data[i] = t * 10
				}
				if err := p.Export("u", t, data); err != nil {
					log.Fatal(err)
				}
			}
		}(rank)
	}

	viewer := fw.MustProgram("view").Process(0)
	dst := make([]float64, n*n)
	res, err := viewer.Import("u", 3.2, dst) // acceptable region [2.7, 3.2]
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Printf("matched export @%g, value %g\n", res.MatchTS, dst[0])
	// Output: matched export @3, value 30
}
