package core

import (
	"testing"

	"repro/internal/decomp"
)

// FuzzDecodeData: the binary data-message decoder must never panic on
// malformed payloads and must round-trip valid ones.
func FuzzDecodeData(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, dataHeaderSize-1))
	f.Add(encodeData(3, 19.6, decomp.NewRect(0, 0, 2, 2), []float64{1, 2, 3, 4}))
	f.Add(encodeData(0, 0, decomp.Rect{}, nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		reqID, matchTS, sub, vals, err := decodeData(b)
		if err != nil {
			return
		}
		if len(vals) != sub.Area() {
			t.Fatalf("decoded %d values for %v", len(vals), sub)
		}
		enc := encodeData(reqID, matchTS, sub, vals)
		if len(enc) != len(b) {
			// Rect normalization may differ for degenerate rects; only
			// demand byte-identical round trips for non-empty payloads.
			if sub.Area() > 0 {
				t.Fatalf("round trip length %d != %d", len(enc), len(b))
			}
			return
		}
		for i := range b {
			if enc[i] != b[i] && sub.Area() > 0 {
				t.Fatalf("round trip differs at %d", i)
			}
		}
	})
}
