package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/obsv/diag"
)

// TestRecoverGroupShrinkAndContinue exercises the full intra-program recovery
// path through the core layer: a 4-process program runs a healthy step, one
// rank crashes (its dispatcher closes), the survivors' next collective fails
// with a typed error, and RecoverGroup revokes, agrees on the failed set, and
// swaps in a shrunk communicator on which the step re-runs with the
// survivor-subset result. Property 1: every survivor sees the identical
// failed set and the identical re-run result.
func TestRecoverGroupShrinkAndContinue(t *testing.T) {
	f := buildCoupling(t, Options{Diag: true, Timeout: 2 * time.Second}, 4, 2, 8, "REGL 1")
	prog := f.MustProgram("E")
	const dead = 2

	type outcome struct {
		failed []int
		sum    float64
		size   int
	}
	n := prog.Procs()
	results := make([]outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := prog.Process(r)

			// Healthy step: full-group sum 1+2+3+4.
			v, err := p.Comm().AllReduceScalar(float64(r+1), collective.Sum)
			if err != nil {
				errs[r] = err
				return
			}
			if v != 10 {
				errs[r] = fmt.Errorf("healthy step: got %v, want 10", v)
				return
			}
			if r == dead {
				p.d.Close() // crash: endpoint gone, peers see ErrUnknownAddr
				return
			}

			// Doomed step: must fail with a typed fault, never hang.
			if _, err := p.Comm().AllReduceScalar(float64(r+1), collective.Sum); err == nil {
				errs[r] = errors.New("doomed step succeeded with a dead rank")
				return
			} else if !isRankFault(err) {
				errs[r] = fmt.Errorf("doomed step: untyped error %v", err)
				return
			}

			failed, err := p.RecoverGroup()
			if err != nil {
				errs[r] = fmt.Errorf("RecoverGroup: %w", err)
				return
			}
			nc := p.Comm()
			if err := nc.Barrier(); err != nil {
				errs[r] = fmt.Errorf("shrunk barrier: %w", err)
				return
			}
			// Re-run the step on the shrunk group, keeping the original
			// contribution: survivor-subset sum 1+2+4.
			v, err = nc.AllReduceScalar(float64(r+1), collective.Sum)
			if err != nil {
				errs[r] = fmt.Errorf("shrunk allreduce: %w", err)
				return
			}
			results[r] = outcome{failed: failed, sum: v, size: nc.Size()}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	for r := 0; r < n; r++ {
		if r == dead {
			continue
		}
		got := results[r]
		if len(got.failed) != 1 || got.failed[0] != dead {
			t.Fatalf("rank %d agreed failed set %v, want [%d]", r, got.failed, dead)
		}
		if got.size != n-1 {
			t.Fatalf("rank %d shrunk size %d, want %d", r, got.size, n-1)
		}
		if got.sum != 7 {
			t.Fatalf("rank %d shrunk sum %v, want 7 (survivor subset)", r, got.sum)
		}
	}

	// The recovery sequence is visible in the flight recorder...
	kinds := map[diag.Kind]bool{}
	for _, e := range prog.flight.Snapshot() {
		kinds[e.Kind] = true
	}
	for _, k := range []diag.Kind{diag.KindRevoke, diag.KindAgree, diag.KindShrink} {
		if !kinds[k] {
			t.Errorf("flight recorder missing %v event", k)
		}
	}

	// ...and in /statusz via the failure counters, which carry over to the
	// shrunk communicator.
	var status strings.Builder
	f.writeStatus(&status)
	for _, want := range []string{"failures:", "agreed=", "shrinks=", "revokes="} {
		if !strings.Contains(status.String(), want) {
			t.Errorf("statusz missing %q:\n%s", want, status.String())
		}
	}
}

// isRankFault reports whether err is one of the typed intra-program fault
// errors a collective may return once a sibling rank is gone.
func isRankFault(err error) bool {
	var rf *collective.RankFailedError
	return errors.As(err, &rf) || errors.Is(err, collective.ErrRevoked)
}
