package core

import (
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/obsv"
	"repro/internal/rep"
	"repro/internal/transport"
	"repro/internal/wire"
)

// repRunner is a program's representative process: the low-overhead control
// gateway of Section 4. On the exporting side it fans import requests out to
// the program's processes, aggregates their responses (package rep), answers
// the importing program's rep, and — with buddy-help enabled — relays the
// final answer to its own still-PENDING processes. On the importing side it
// serializes the program's collective import calls into one request stream
// per connection and fans answers back out.
type repRunner struct {
	prog   *Program
	d      *transport.Dispatcher
	tracer *obsv.Tracer // nil when tracing is off
	ring   *obsv.Ring   // the rep's span lane; nil when tracing is off

	// Exporter-side state, by connection key.
	expConns map[string]config.Connection
	aggs     map[string]map[int]*pendingReq

	// Importer-side state.
	impConns map[string]config.Connection // by connection key
	impSeq   map[string]*importSeq        // by import region name

	// peerEpochs records the highest rejoin epoch processed per peer program,
	// deduplicating re-announced rejoin handshakes.
	peerEpochs map[string]uint64

	// Failure detection (active when Options.Heartbeat > 0).
	fd     *failureDetector
	hbStop chan struct{}
	hbOnce sync.Once
}

// pendingReq is one aggregating import request plus the observability flow
// it rides on (the trace ID minted by the importer's rep, zero when off).
// Once the collective answer forms it is kept in final, so a crashed importer
// replaying the request is re-answered without re-aggregating.
type pendingReq struct {
	agg   *rep.Request
	flow  uint64
	final *answerMsg
}

// importSeq tracks the collective import-call sequence of one region. flows
// holds the trace ID minted per request (parallel to seq; only when tracing).
// delivered is the number of answers fanned out to the processes — the
// watermark that deduplicates replayed answers after a peer restart.
type importSeq struct {
	conn      config.Connection
	key       string
	seq       []float64
	perRank   []int
	flows     []uint64
	delivered int
}

func newRepRunner(p *Program, d *transport.Dispatcher) *repRunner {
	return &repRunner{
		prog:       p,
		d:          d,
		tracer:     p.fw.tracer,
		ring:       p.fw.tracer.Ring(p.name, -1),
		expConns:   make(map[string]config.Connection),
		aggs:       make(map[string]map[int]*pendingReq),
		impConns:   make(map[string]config.Connection),
		impSeq:     make(map[string]*importSeq),
		peerEpochs: make(map[string]uint64),
		fd:         newFailureDetector(p.fw.opts.Heartbeat, p.fw.opts.Clock),
		hbStop:     make(chan struct{}),
	}
}

func (r *repRunner) start() {
	for _, conn := range r.prog.fw.cfg.Connections {
		key := connKey(conn.Export.String(), conn.Import.String())
		if conn.Export.Program == r.prog.name {
			r.expConns[key] = conn
			r.aggs[key] = make(map[int]*pendingReq)
		}
		if conn.Import.Program == r.prog.name {
			r.impConns[key] = conn
			is := &importSeq{
				conn:    conn,
				key:     key,
				perRank: make([]int, r.prog.n),
			}
			// After a restore, the request stream resumes where the checkpoint
			// cut it: the checkpointed issue sequence is re-seeded (identical
			// across ranks — Property 1 — so rank 0's copy is THE sequence)
			// and every checkpointed answer counts as delivered.
			if ps := r.prog.rec.procState(0); ps != nil {
				if ims, ok := ps.Imports[key]; ok {
					is.seq = append([]float64(nil), ims.Issued...)
					for i := range is.perRank {
						is.perRank[i] = len(is.seq)
					}
					is.flows = make([]uint64, len(is.seq))
					is.delivered = len(is.seq)
				}
			}
			r.impSeq[conn.Import.Region] = is
		}
	}
	if hb := r.prog.fw.opts.Heartbeat; hb > 0 {
		go r.heartbeatLoop(hb, r.prog.fw.peerPrograms(r.prog.name))
	}
	go r.run()
}

func (r *repRunner) close() {
	r.hbOnce.Do(func() { close(r.hbStop) })
	r.d.Close()
}

// sendLayout ships a layout announcement to a peer rep (invoked by
// Framework.Start on this rep's behalf).
func (r *repRunner) sendLayout(dst transport.Addr, lm layoutMsg) error {
	return r.d.Send(transport.Message{
		Kind:    transport.KindLayout,
		Dst:     dst,
		Tag:     lm.Conn,
		Payload: wire.MustMarshal(lm),
	})
}

func (r *repRunner) run() {
	calls := r.d.Chan(transport.KindImportCall)
	resps := r.d.Chan(transport.KindResponse)
	reqs := r.d.Chan(transport.KindRequest)
	answers := r.d.Chan(transport.KindAnswer)
	layouts := r.d.Chan(transport.KindLayout)
	ctl := r.d.Chan(transport.KindControl)
	for {
		select {
		case m, ok := <-ctl:
			if !ok {
				return
			}
			r.handleControl(m)
		case m, ok := <-calls:
			if !ok {
				return
			}
			r.handleImportCall(m)
		case m, ok := <-resps:
			if !ok {
				return
			}
			r.handleResponse(m)
		case m, ok := <-reqs:
			if !ok {
				return
			}
			r.handleRequest(m)
		case m, ok := <-answers:
			if !ok {
				return
			}
			r.handleAnswer(m)
		case m, ok := <-layouts:
			if !ok {
				return
			}
			r.handleLayout(m)
		}
	}
}

// toProcs fans a control message out to every process of the program,
// piggybacking the trace ID so the receiving processes join the flow.
func (r *repRunner) toProcs(tag string, payload []byte, trace uint64) {
	for rank := 0; rank < r.prog.n; rank++ {
		err := r.d.Send(transport.Message{
			Kind:    transport.KindControl,
			Dst:     transport.Proc(r.prog.name, rank),
			Tag:     tag,
			Payload: payload,
			Trace:   trace,
		})
		if err != nil {
			r.prog.fail(err)
			return
		}
	}
}

// handleLayout forwards a peer rep's layout announcement to the processes
// and replies with this side's layout. The reply makes the handshake mutual:
// a peer that joined after our initial announcement (distributed mode) still
// learns our layout, because receiving its announcement proves it is
// reachable now. Every non-reply announcement is answered — a peer that
// restarts after a crash re-announces, and suppressing the reply would
// strand its handshake — while replies are never answered (no loops);
// processes deduplicate the repeats.
func (r *repRunner) handleLayout(m transport.Message) {
	r.touchPeer(m)
	r.toProcs("layout", m.Payload, 0)
	var lm layoutMsg
	if err := wire.Unmarshal(m.Payload, &lm); err != nil {
		r.prog.fail(err)
		return
	}
	if lm.IsReply {
		return
	}
	var conn config.Connection
	var ourRegion, peerRegion, peerProgram string
	if c, ok := r.expConns[lm.Conn]; ok {
		conn, ourRegion, peerRegion, peerProgram = c, c.Export.Region, c.Import.Region, c.Import.Program
	} else if c, ok := r.impConns[lm.Conn]; ok {
		conn, ourRegion, peerRegion, peerProgram = c, c.Import.Region, c.Export.Region, c.Export.Program
	} else {
		r.prog.fail(fmt.Errorf("core: %s got layout for unknown connection %q", r.prog.name, lm.Conn))
		return
	}
	_ = conn
	def, ok := r.prog.regions[ourRegion]
	if !ok {
		r.prog.fail(fmt.Errorf("core: program %s never defined region %q named in the coupling configuration",
			r.prog.name, ourRegion))
		return
	}
	spec, err := decomp.SpecOf(def.layout)
	if err != nil {
		r.prog.fail(err)
		return
	}
	if err := r.sendLayout(transport.Rep(peerProgram), layoutMsg{
		Conn: lm.Conn, Region: peerRegion, Remote: spec, IsReply: true,
	}); err != nil {
		r.prog.fail(err)
	}
}

// handleImportCall serializes the program's collective import calls: the
// first process to request a new timestamp triggers the request to the
// exporting program's rep; later processes are validated against the
// sequence (Property 1 on the importer side).
func (r *repRunner) handleImportCall(m transport.Message) {
	var cm importCallMsg
	if err := wire.Unmarshal(m.Payload, &cm); err != nil {
		r.prog.fail(err)
		return
	}
	r.prog.proto.importCalls.Add(1)
	is, ok := r.impSeq[cm.Region]
	if !ok {
		r.prog.fail(fmt.Errorf("core: %s imports region %q, which no connection feeds", r.prog.name, cm.Region))
		return
	}
	rank := m.Src.Rank
	if rank < 0 || rank >= r.prog.n {
		r.prog.fail(fmt.Errorf("core: import call from unexpected source %s", m.Src))
		return
	}
	idx := is.perRank[rank]
	if idx < len(is.seq) {
		if is.seq[idx] != cm.ReqTS {
			r.prog.fail(fmt.Errorf(
				"core: Property 1 violation in importer %s: rank %d requested %s@%g as call #%d, others requested @%g",
				r.prog.name, rank, cm.Region, cm.ReqTS, idx, is.seq[idx]))
			return
		}
		is.perRank[rank]++
		return
	}
	// First arrival of a new collective import: validate monotonicity and
	// forward to the exporter's rep.
	if len(is.seq) > 0 && cm.ReqTS <= is.seq[len(is.seq)-1] {
		r.prog.fail(fmt.Errorf("core: importer %s: request timestamps must increase (%g after %g)",
			r.prog.name, cm.ReqTS, is.seq[len(is.seq)-1]))
		return
	}
	is.seq = append(is.seq, cm.ReqTS)
	is.perRank[rank]++
	reqID := len(is.seq) - 1
	// Mint the flow ID the whole collective request will travel under: it
	// rides the wire as Message.Trace and stitches the importer's request,
	// the exporter's forwards/resolutions and the answer into one arrow.
	flow := r.tracer.NewSpanID()
	is.flows = append(is.flows, flow)
	start := r.tracer.Now()
	err := r.d.Send(transport.Message{
		Kind:    transport.KindRequest,
		Dst:     transport.Rep(is.conn.Export.Program),
		Tag:     is.key,
		Payload: wire.MustMarshal(requestMsg{Conn: is.key, ReqID: reqID, ReqTS: cm.ReqTS}),
		Trace:   flow,
	})
	if err != nil {
		r.prog.fail(err)
		return
	}
	r.ring.Record(obsv.Span{
		Name: "request", TS: start, Dur: r.tracer.Now() - start,
		Flow: flow, Arg: int64(reqID), Detail: is.key,
	})
}

// handleRequest (exporter side) registers an aggregator for the request and
// forwards it to all processes — the rep's steps (1) of Section 4.
func (r *repRunner) handleRequest(m transport.Message) {
	r.touchPeer(m)
	var rm requestMsg
	if err := wire.Unmarshal(m.Payload, &rm); err != nil {
		r.prog.fail(err)
		return
	}
	conns := r.aggs[rm.Conn]
	if conns == nil {
		r.prog.fail(fmt.Errorf("core: %s got request for unknown connection %q", r.prog.name, rm.Conn))
		return
	}
	if pr, dup := conns[rm.ReqID]; dup {
		if r.prog.rec == nil {
			r.prog.fail(fmt.Errorf("core: %s got duplicate request %d on %q", r.prog.name, rm.ReqID, rm.Conn))
			return
		}
		// A restarted importer replaying its request stream. When the
		// collective answer already formed, re-answer from the stored final
		// and have the processes re-send the matched data; when aggregation
		// is still in progress, the answer will flow when it completes.
		if pr.final != nil {
			r.prog.proto.answersSent.Add(1)
			if err := r.d.Send(transport.Message{
				Kind:    transport.KindAnswer,
				Dst:     transport.Rep(r.expConns[rm.Conn].Import.Program),
				Tag:     rm.Conn,
				Payload: wire.MustMarshal(*pr.final),
				Trace:   pr.flow,
			}); err != nil {
				r.prog.fail(err)
				return
			}
			if pr.final.Result == match.Match {
				r.toProcs(resendTag, m.Payload, pr.flow)
			}
		}
		return
	}
	start := r.tracer.Now()
	conns[rm.ReqID] = &pendingReq{agg: rep.NewRequest(rm.ReqTS, r.prog.n), flow: m.Trace}
	r.prog.proto.requestsForwarded.Add(uint64(r.prog.n))
	r.toProcs("forward", m.Payload, m.Trace)
	r.ring.Record(obsv.Span{
		Name: "forward", TS: start, Dur: r.tracer.Now() - start,
		Flow: m.Trace, Arg: int64(rm.ReqID), Detail: rm.Conn,
	})
}

// handleResponse (exporter side) aggregates one process response; when the
// final collective answer forms, it is sent to the importing program's rep
// and — the buddy-help optimization — to the still-PENDING local processes.
func (r *repRunner) handleResponse(m transport.Message) {
	var sm responseMsg
	if err := wire.Unmarshal(m.Payload, &sm); err != nil {
		r.prog.fail(err)
		return
	}
	conns := r.aggs[sm.Conn]
	if conns == nil {
		r.prog.fail(fmt.Errorf("core: %s got response for unknown connection %q", r.prog.name, sm.Conn))
		return
	}
	entry, ok := conns[sm.ReqID]
	if !ok {
		if r.prog.rec != nil {
			// A restored process re-resolving a request this restarted rep has
			// not been re-sent (yet, or ever — the importer may have released
			// it). The importer's replay re-registers whatever still matters.
			r.prog.rec.stale.Inc()
			return
		}
		r.prog.fail(fmt.Errorf("core: %s got response for unknown request %d on %q", r.prog.name, sm.ReqID, sm.Conn))
		return
	}
	r.prog.proto.responses.Add(1)
	ans, err := entry.agg.Add(rep.Response{
		Rank: sm.Rank, Result: sm.Result, MatchTS: sm.MatchTS, Latest: sm.Latest,
	})
	if err != nil {
		r.prog.fail(err)
		return
	}
	if ans == nil {
		return
	}
	start := r.tracer.Now()
	conn := r.expConns[sm.Conn]
	final := answerMsg{
		Conn: sm.Conn, ReqID: sm.ReqID, ReqTS: sm.ReqTS,
		Result: ans.Result, MatchTS: ans.MatchTS,
	}
	entry.final = &final
	payload := wire.MustMarshal(final)
	r.prog.proto.answersSent.Add(1)
	if err := r.d.Send(transport.Message{
		Kind:    transport.KindAnswer,
		Dst:     transport.Rep(conn.Import.Program),
		Tag:     sm.Conn,
		Payload: payload,
		Trace:   entry.flow,
	}); err != nil {
		r.prog.fail(err)
		return
	}
	if r.prog.fw.opts.BuddyHelp {
		r.prog.proto.buddy.Add(uint64(len(ans.BuddyRanks)))
		for _, rank := range ans.BuddyRanks {
			if err := r.d.Send(transport.Message{
				Kind:    transport.KindControl,
				Dst:     transport.Proc(r.prog.name, rank),
				Tag:     "buddy",
				Payload: payload,
				Trace:   entry.flow,
			}); err != nil {
				r.prog.fail(err)
				return
			}
		}
	}
	r.ring.Record(obsv.Span{
		Name: "answer", TS: start, Dur: r.tracer.Now() - start,
		Flow: entry.flow, Arg: int64(sm.ReqID), Detail: ans.Result.String(),
	})
}

// handleAnswer (importer side) fans the exporter rep's final answer out to
// the program's processes.
func (r *repRunner) handleAnswer(m transport.Message) {
	r.touchPeer(m)
	var am answerMsg
	if err := wire.Unmarshal(m.Payload, &am); err != nil {
		r.prog.fail(err)
		return
	}
	conn, ok := r.impConns[am.Conn]
	if !ok {
		r.prog.fail(fmt.Errorf("core: %s got answer for unknown connection %q", r.prog.name, am.Conn))
		return
	}
	am.Region = conn.Import.Region
	if am.Result != match.Match && am.Result != match.NoMatch {
		r.prog.fail(fmt.Errorf("core: %s got non-final answer %v", r.prog.name, am.Result))
		return
	}
	is := r.impSeq[conn.Import.Region]
	if am.ReqID < is.delivered {
		// Replayed answer for a request whose original answer was already
		// fanned out (recovery re-sends overlap the delivery watermark).
		return
	}
	is.delivered = am.ReqID + 1
	r.prog.proto.answersDelivered.Add(uint64(r.prog.n))
	start := r.tracer.Now()
	r.toProcs("answer", wire.MustMarshal(am), m.Trace)
	r.ring.Record(obsv.Span{
		Name: "answer.deliver", TS: start, Dur: r.tracer.Now() - start,
		Flow: m.Trace, Arg: int64(am.ReqID), Detail: am.Conn,
	})
}
